// Benchmarks regenerating every table and figure of the paper's evaluation
// at benchmark-friendly scale, plus ablations of MIFO's design choices.
// Each bench reports the figure's headline quantity as a custom metric so
// `go test -bench=. -benchmem` doubles as a miniature reproduction run;
// cmd/mifo-sim produces the full-scale series.
package repro

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/testbed"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// benchOpts keeps the per-iteration cost low enough for -bench=. runs
// while staying in the operating regime of the full experiments (the
// arrival rate is pinned because the auto-scaled default would saturate a
// 400-AS core; see EXPERIMENTS.md on load sensitivity).
var benchOpts = experiments.Options{N: 400, Flows: 1200, PairSamples: 400, ArrivalRate: 1000, Seed: 1}

// BenchmarkTableI regenerates the topology data-set attributes (Table I).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum, err := experiments.TableI(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		_ = sum
	}
}

// BenchmarkFig7PathDiversity counts available paths per pair for MIFO and
// MIRO at 50%/100% deployment (Fig. 7).
func BenchmarkFig7PathDiversity(b *testing.B) {
	var f *experiments.Fig7
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.RunFig7(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.MedianMIFO100, "median-paths-mifo")
	b.ReportMetric(f.MedianMIRO100, "median-paths-miro")
}

// BenchmarkFig5Throughput reproduces the three deployment panels of Fig. 5
// (uniform traffic, BGP vs MIRO vs MIFO).
func BenchmarkFig5Throughput(b *testing.B) {
	for _, tc := range []struct {
		name   string
		deploy float64
	}{
		{"100pct", 1.0}, {"50pct", 0.5}, {"10pct", 0.1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var c *experiments.ThroughputComparison
			var err error
			for i := 0; i < b.N; i++ {
				c, err = experiments.RunFig5(benchOpts, tc.deploy)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*c.AtLeast500["BGP"], "pct>=500Mbps-bgp")
			for name, frac := range c.AtLeast500 {
				switch {
				case name == "BGP":
				case len(name) > 4 && name[len(name)-4:] == "MIFO":
					b.ReportMetric(100*frac, "pct>=500Mbps-mifo")
				default:
					b.ReportMetric(100*frac, "pct>=500Mbps-miro")
				}
			}
		})
	}
}

// BenchmarkFig6PowerLaw reproduces the three skew panels of Fig. 6
// (power-law traffic at 50% deployment).
func BenchmarkFig6PowerLaw(b *testing.B) {
	for _, tc := range []struct {
		name  string
		alpha float64
	}{
		{"alpha0.8", 0.8}, {"alpha1.0", 1.0}, {"alpha1.2", 1.2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var c *experiments.ThroughputComparison
			var err error
			for i := 0; i < b.N; i++ {
				c, err = experiments.RunFig6(benchOpts, tc.alpha)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*c.AtLeast500["BGP"], "pct>=500Mbps-bgp")
			b.ReportMetric(100*c.AtLeast500["50% Deployed MIFO"], "pct>=500Mbps-mifo")
		})
	}
}

// BenchmarkFig8Offload sweeps MIFO deployment 10%..100% and reports the
// share of flows carried on alternative paths (Fig. 8).
func BenchmarkFig8Offload(b *testing.B) {
	var f *experiments.Fig8
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.RunFig8(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.Rows[0].Y, "offload-pct-at-10")
	b.ReportMetric(f.Rows[len(f.Rows)-1].Y, "offload-pct-at-100")
}

// BenchmarkFig9Stability measures the path-switch distribution (Fig. 9).
func BenchmarkFig9Stability(b *testing.B) {
	var f *experiments.Fig9
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.RunFig9(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*f.OnceFraction, "pct-switched-once")
	b.ReportMetric(100*f.AtMostTwiceFraction, "pct-at-most-twice")
}

// BenchmarkFig12Testbed runs the Section V prototype experiment (Figs. 11
// and 12) under BGP and MIFO and reports the aggregate throughputs.
func BenchmarkFig12Testbed(b *testing.B) {
	for _, tc := range []struct {
		name string
		mifo bool
	}{
		{"BGP", false}, {"MIFO", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res *testbed.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = testbed.Run(testbed.Config{MIFO: tc.mifo, FlowsPerPair: 10})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanAggregateGbps, "aggregate-Gbps")
			b.ReportMetric(res.FCT.Max(), "max-FCT-s")
		})
	}
}

// --- Ablations of the design choices DESIGN.md calls out ---

// benchWorkload builds the shared ablation workload.
func benchWorkload(b *testing.B) (*topo.Graph, []traffic.Flow) {
	b.Helper()
	g, err := topo.Generate(topo.GenConfig{N: benchOpts.N, Seed: benchOpts.Seed})
	if err != nil {
		b.Fatal(err)
	}
	flows, err := traffic.Uniform(traffic.UniformConfig{
		N: g.N(), Flows: benchOpts.Flows, ArrivalRate: benchOpts.ArrivalRate,
		Seed: benchOpts.Seed + 300,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g, flows
}

// BenchmarkAblationQuality compares the two alternative-ranking mechanisms
// of Section III-C: end-to-end probing vs the greedy local-link monitor.
func BenchmarkAblationQuality(b *testing.B) {
	g, flows := benchWorkload(b)
	for _, tc := range []struct {
		name string
		q    netsim.Quality
	}{
		{"probe", netsim.QualityProbe},
		{"local-link", netsim.QualityLocalLink},
		{"route-preference", netsim.QualityFirst},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res *netsim.Results
			var err error
			for i := 0; i < b.N; i++ {
				res, err = netsim.Run(g, flows, netsim.Config{Policy: netsim.PolicyMIFO, Quality: tc.q})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanThroughputMbps(), "mean-Mbps")
		})
	}
}

// BenchmarkAblationControlInterval shows why the flow-level model must
// re-evaluate at near-line-rate granularity: MIFO's reactivity is its
// advantage over control-plane schemes.
func BenchmarkAblationControlInterval(b *testing.B) {
	g, flows := benchWorkload(b)
	for _, tc := range []struct {
		name string
		ci   float64
	}{
		{"5ms", 0.005}, {"50ms", 0.05}, {"500ms", 0.5},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res *netsim.Results
			var err error
			for i := 0; i < b.N; i++ {
				res, err = netsim.Run(g, flows, netsim.Config{Policy: netsim.PolicyMIFO, ControlInterval: tc.ci})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanThroughputMbps(), "mean-Mbps")
		})
	}
}

// BenchmarkAblationHysteresis compares the default switch-back hysteresis
// against disabling returns entirely.
func BenchmarkAblationHysteresis(b *testing.B) {
	g, flows := benchWorkload(b)
	for _, tc := range []struct {
		name string
		ret  float64
	}{
		{"return-at-0.3", 0.3}, {"never-return", 1e-9},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res *netsim.Results
			var err error
			for i := 0; i < b.N; i++ {
				res, err = netsim.Run(g, flows, netsim.Config{Policy: netsim.PolicyMIFO, ReturnThreshold: tc.ret})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MeanThroughputMbps(), "mean-Mbps")
		})
	}
}

// BenchmarkExtResilience runs the link-failure extension experiment: the
// busiest link fails mid-run; MIFO's data-plane failover is compared with
// BGP/MIRO reconvergence stalls.
func BenchmarkExtResilience(b *testing.B) {
	opts := experiments.Options{N: 250, Flows: 600, ArrivalRate: 100, Seed: 3}
	var r *experiments.Resilience
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunResilience(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		switch row.Policy {
		case "BGP":
			b.ReportMetric(row.MeanStallSec, "bgp-mean-stall-s")
		case "MIFO":
			b.ReportMetric(row.MeanStallSec, "mifo-mean-stall-s")
		}
	}
}

// BenchmarkAblationRIBParallel measures the speedup of parallel
// per-destination BGP table computation.
func BenchmarkAblationRIBParallel(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 2000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	dsts := make([]int, 64)
	for i := range dsts {
		dsts[i] = (i * 31) % g.N()
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bgp.ComputeAll(g, dsts, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bgp.ComputeAll(g, dsts, 0)
		}
	})
}
