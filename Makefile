# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race audit-race fib-race span-race tsdb-race conv-smoke vet lint lint-json bench bench-json fuzz figures testbed results clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# mifolint: the repository's own analyzer suite (internal/lint) — FIB
# generation immutability, the //mifo:hotpath cost budget, obs metric and
# span naming, lock-scope hygiene, the //mifo:ring publish protocol
# (ringorder), builder-published arena freezing (arenafreeze), goroutine
# lifecycle ownership (lifecycle), and the
# shadow/unusedwrite/nilness/droppederr sweeps. Standalone mode enables
# the whole-tree checks; the same binary also runs as
# `go vet -vettool=$$(which mifo-lint) ./...`. The driver reports its own
# wall time on stderr.
lint:
	$(GO) run ./cmd/mifo-lint ./...

# Machine-readable findings for CI: exit status is preserved, stdout is a
# {file,line,col,analyzer,message} JSON array.
lint-json:
	$(GO) run ./cmd/mifo-lint -json ./...

test: vet lint
	$(GO) test ./...

race:
	# Extra -count on the packages with the most cross-goroutine traffic
	# (metrics/trace hot paths, simulator epochs) before the full sweep.
	$(GO) test -race -count=2 ./internal/obs ./internal/netsim
	$(GO) test -race ./...

# The flight recorder's concurrency surface: hop hooks fire from simulator
# workers and netd receive loops while the batcher drains rings, seals
# Merkle batches, and answers Stats/Flush/Close barriers. Stress the async
# sink's own tests first, then the packages that drive it.
audit-race:
	$(GO) test -race -count=5 -run 'Recorder|Merkle|Proof|Verify' ./internal/audit
	$(GO) test -race -count=2 ./internal/audit ./internal/dataplane ./internal/netsim ./internal/packetsim ./internal/netd

# The versioned-FIB concurrency surface: wait-free lookups racing batched
# generation commits (map FIB and LPM trie), plus the daemon runtime driving
# real routers' FIBs while packets forward, and the incremental route table
# feeding them.
fib-race:
	$(GO) test -race -count=2 ./internal/dataplane ./internal/lpm ./internal/core ./internal/bgp

# The convergence tracer's concurrency surface: producers push spans into
# lock-free ring segments from simulator/daemon goroutines while the
# collector drains, counts sheds, and answers Flush/Close barriers — and
# the netsim mirror deployment drives the whole pipeline per failure.
span-race:
	$(GO) test -race -count=5 ./internal/obs/span
	$(GO) test -race -count=2 -run 'Convergence|Trace' ./internal/netsim ./internal/bgpsim

# The tsdb concurrency surface: the single-writer sample path racing
# snapshot/query/episode readers — both the store's own torn-read tests
# and the debug mux serving every endpoint while a sampler runs flat out,
# plus the simulator feeding a live store per epoch.
tsdb-race:
	$(GO) test -race -count=5 ./internal/obs/tsdb
	$(GO) test -race -count=2 -run 'TSDB|DebugTSDB' ./internal/obs ./internal/netsim ./internal/packetsim

# End-to-end convergence gate, same as CI: every failure event injected by
# a resilience run must provably reach data-plane consistency.
conv-smoke:
	$(GO) run ./cmd/mifo-sim -exp resilience -n 300 -flows 800 -span-log /tmp/mifo-spans.jsonl > /dev/null
	$(GO) run ./cmd/mifo-conv -events -min-events 6 /tmp/mifo-spans.jsonl

bench:
	$(GO) test -run xxx -bench=. -benchmem . ./internal/dataplane ./internal/audit ./internal/bgp ./internal/lpm ./internal/obs/span ./internal/obs/tsdb

# Machine-readable benchmark results for regression tracking: the
# forwarding hot path plus the flight recorder at every setting
# (disabled / unsampled flow / full sampling). The committed
# BENCH_dataplane.json is the reference snapshot backing the <2%
# disabled-recorder overhead claim.
bench-json:
	$(GO) test -run xxx -bench 'Forward|Journey' -benchmem -json ./internal/dataplane ./internal/audit > BENCH_dataplane.json
	@echo "wrote BENCH_dataplane.json"
	$(GO) test -run xxx -bench 'FIBLookup|FIBCommit|TableIncremental|TableFullRebuild' -benchmem -json ./internal/dataplane ./internal/bgp > BENCH_routing.json
	@echo "wrote BENCH_routing.json"
	$(GO) test -run xxx -bench 'Sample|Query|Analyze' -benchmem -json ./internal/obs/tsdb > BENCH_tsdb.json
	@echo "wrote BENCH_tsdb.json"
	$(GO) test -run xxx -bench 'TableScale|GraphRel|GraphRemoveLinks' -benchmem -timeout 30m -json ./internal/bgp ./internal/topo > BENCH_scale.json
	@echo "wrote BENCH_scale.json"

# Short fuzzing pass over every fuzz target.
fuzz:
	$(GO) test ./internal/dataplane -fuzz FuzzUnmarshalPacket -fuzztime 30s
	$(GO) test ./internal/topo -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/traffic -fuzz FuzzReadCSV -fuzztime 30s
	$(GO) test ./internal/audit -fuzz FuzzChecker -fuzztime 30s
	$(GO) test ./internal/bgp -fuzz FuzzIncrementalTable -fuzztime 30s
	$(GO) test ./internal/bgp -fuzz FuzzCompactDest -fuzztime 30s

# Regenerate every figure at default scale into results/.
figures:
	$(GO) run ./cmd/mifo-sim -exp all -o results | tee results/simulation.txt

testbed:
	$(GO) run ./cmd/mifo-testbed | tee results/testbed.txt
	$(GO) run ./cmd/mifo-testbed -packet -size-mb 20 | tee -a results/testbed.txt

results: figures testbed

clean:
	rm -rf results/*.dat results/*.txt
