// Testbed runs a compact version of the paper's prototype experiment
// (Section V): the Fig. 11 six-AS topology with 10 back-to-back 100 MB
// flows per source, under BGP and under MIFO, printing the Fig. 12-style
// summary. The forwarding decisions come from the real MIFO forwarding
// engine (Algorithm 1), including the IP-in-IP hand-off between the two
// AS-3 border routers.
//
//	go run ./examples/testbed
package main

import (
	"fmt"
	"log"

	"repro/internal/testbed"
)

func main() {
	cfg := testbed.Config{FlowsPerPair: 10}

	cfg.MIFO = false
	bgp, err := testbed.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.MIFO = true
	mifo, err := testbed.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("S1->D1 and S2->D2 each send 10 flows of 100 MB back to back;")
	fmt.Println("the AS3->AS4 link is the shared bottleneck (Fig. 11).")
	fmt.Println()
	fmt.Printf("%-6s %-18s %-12s %-10s %s\n", "", "aggregate (Gbps)", "total (s)", "max FCT", "alt flows")
	fmt.Printf("%-6s %-18.2f %-12.1f %-10.2f %d\n", "BGP", bgp.MeanAggregateGbps, bgp.TotalTime, bgp.FCT.Max(), bgp.AltFlowCount)
	fmt.Printf("%-6s %-18.2f %-12.1f %-10.2f %d\n", "MIFO", mifo.MeanAggregateGbps, mifo.TotalTime, mifo.FCT.Max(), mifo.AltFlowCount)
	fmt.Println()
	fmt.Printf("aggregate throughput improvement: %.0f%% (the paper reports 81%%)\n",
		testbed.ImprovementPercent(mifo, bgp))

	fmt.Println("\naggregate over time (Gbps):")
	fmt.Println("  t(s)  BGP    MIFO")
	for i := 0; i < len(bgp.Aggregate.Rows) || i < len(mifo.Aggregate.Rows); i++ {
		b, m := "-", "-"
		var ts float64
		if i < len(bgp.Aggregate.Rows) {
			b = fmt.Sprintf("%.2f", bgp.Aggregate.Rows[i].Y)
			ts = bgp.Aggregate.Rows[i].X
		}
		if i < len(mifo.Aggregate.Rows) {
			m = fmt.Sprintf("%.2f", mifo.Aggregate.Rows[i].Y)
			ts = mifo.Aggregate.Rows[i].X
		}
		fmt.Printf("  %4.0f  %-6s %-6s\n", ts, b, m)
	}
}
