// Failover demonstrates the resilience extension: the busiest inter-AS
// link dies mid-run. Plain BGP (and MIRO, whose multipath is control-plane
// state) black-holes traffic until routes reconverge; MIFO's forwarding
// engine treats the dead egress as the ultimate congestion signal and
// deflects affected flows onto RIB alternatives within one control epoch.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	opts := experiments.Options{N: 400, Flows: 800, ArrivalRate: 120, Seed: 9}

	fmt.Println("Failing the busiest inter-AS link one third into the run...")
	r, err := experiments.RunResilience(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failed link: AS %d <-> AS %d\n\n", r.FailedLink[0], r.FailedLink[1])
	fmt.Printf("%-6s %10s %13s %12s %9s\n", "policy", "affected", "mean stall", "max stall", "forever")
	for _, row := range r.Rows {
		fmt.Printf("%-6s %10d %12.3fs %11.3fs %9d\n",
			row.Policy, row.AffectedFlows, row.MeanStallSec, row.MaxStallSec, row.StalledForever)
	}

	// Where does the BGP outage window come from? Measure the protocol's
	// own reconvergence with the message-level simulator (averaged over
	// several random failures on the same topology).
	ov, err := experiments.RunOverhead(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmessage-level BGP: %.0f UPDATEs to converge a prefix; mean reconvergence\n",
		ov.BGPUpdatesPerPrefix)
	fmt.Printf("after a link failure %.2f s — the outage window above.\n", ov.ReconvergenceSec)
	fmt.Println("\nMIFO keeps forwarding through that window wherever a valley-free")
	fmt.Println("alternative exists at the router adjacent to the failure.")
}
