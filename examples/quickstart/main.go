// Quickstart: generate a small Internet-like topology, drive the same flow
// workload through BGP, MIRO and MIFO, and compare per-flow throughput.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	// 1. A 500-AS topology calibrated to the paper's Table I mix
	//    (69% provider-customer links, 31% peering).
	g, err := topo.Generate(topo.GenConfig{N: 500, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	s := g.Stats()
	fmt.Printf("topology: %d ASes, %d links (%.0f%% peering)\n",
		s.Nodes, s.Links, 100*s.PeerFraction)

	// 2. A Poisson workload of 10 MB flows between random AS pairs.
	flows, err := traffic.Uniform(traffic.UniformConfig{
		N: g.N(), Flows: 3000, ArrivalRate: 1200, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d flows of 10 MB, Poisson arrivals\n\n", len(flows))

	// 3. Same flows, three routing policies.
	for _, policy := range []netsim.Policy{netsim.PolicyBGP, netsim.PolicyMIRO, netsim.PolicyMIFO} {
		res, err := netsim.Run(g, flows, netsim.Config{Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		cdf := res.ThroughputCDF()
		fmt.Printf("%-5v mean %4.0f Mbps | median %4.0f Mbps | >=500 Mbps %4.1f%% | offloaded %4.1f%%\n",
			policy, cdf.Mean(), cdf.Quantile(0.5),
			100*res.FractionAtLeastMbps(500), 100*res.OffloadFraction())
	}

	fmt.Println("\nMIFO forwards the same BGP routes — the gain comes purely from")
	fmt.Println("deflecting flows off congested default paths on the data plane.")
}
