// Loopbreak walks through the paper's two correctness mechanisms on the
// packet level:
//
//  1. Fig. 2(a): three peering ASes all deflect away from congested
//     customer links — without the valley-free tag-check the packet loops
//     forever; with it, the loop is cut by a drop at the second AS.
//
//  2. Fig. 2(b): a deflection crosses iBGP inside an AS — IP-in-IP
//     encapsulation stops the alternative-egress router from bouncing the
//     packet straight back.
//
//     go run ./examples/loopbreak
package main

import (
	"fmt"
	"log"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/topo"
)

func main() {
	fig2a()
	fig2b()
}

func fig2a() {
	fmt.Println("== Fig. 2(a): loop on the data plane ==")
	// AS 0 is a customer of ASes 1, 2, 3, which peer in a triangle.
	g, err := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	dep := core.NewDeployment(g, core.Config{})
	dep.InstallDestination(bgp.Compute(g, 0))

	// Worst case: every AS's direct (default) link to AS 0 is congested.
	for as := 1; as <= 3; as++ {
		if err := dep.SetLinkLoad(as, 0, 1e9); err != nil {
			log.Fatal(err)
		}
	}
	dep.Refresh() // daemons install the peer alternatives

	send := func(label string) {
		res := dep.Send(dataplane.FlowKey{SrcAddr: 1, DstAddr: 0}, 1, 0)
		fmt.Printf("  %-18s", label)
		switch {
		case res.Verdict == dataplane.VerdictDeliver:
			fmt.Printf("delivered after %d hops\n", len(res.Hops))
		case res.Reason == dataplane.DropValleyFree:
			fmt.Printf("dropped by tag-check after %d hops (loop cut)\n", len(res.Hops))
		case res.Reason == dataplane.DropTTL:
			fmt.Printf("TTL expired after %d hops — the packet LOOPED\n", len(res.Hops))
		}
	}
	send("with tag-check:")
	for _, r := range dep.Net.Routers {
		r.DisableTagCheck = true
	}
	send("without it:")
	fmt.Println()
}

func fig2b() {
	fmt.Println("== Fig. 2(b): cycling between iBGP peers ==")
	// AS 0 has two border routers: the default egress towards AS 1 and the
	// alternative egress towards AS 2; destination 3 is reachable via both.
	g, err := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0). // 1 and 2 are providers of 0
		AddPC(1, 3).AddPC(2, 3). // both provide the destination 3
		Build()
	if err != nil {
		log.Fatal(err)
	}
	dep := core.NewDeployment(g, core.Config{ExpandASes: []int{0}})
	dep.InstallDestination(bgp.Compute(g, 3))
	if loadErr := dep.SetLinkLoad(0, 1, 1e9); loadErr != nil { // congest the default egress
		log.Fatal(loadErr)
	}
	dep.Refresh()

	// Inject at the *default egress* router: the deflection must cross
	// iBGP to the alternative egress.
	egress, _, err := dep.EgressPort(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	p := &dataplane.Packet{Flow: dataplane.FlowKey{SrcAddr: 9, DstAddr: 3}, Dst: 3}
	res := dep.Net.Send(p, egress.ID)
	fmt.Printf("  packet injected at the congested default egress router\n")
	for i, h := range res.Hops {
		r := dep.Net.Router(h.Router)
		kind := "default"
		if h.Deflected {
			kind = "deflected"
		}
		fmt.Printf("  hop %d: AS %d router %d (%s)\n", i, r.AS, h.Router, kind)
	}
	fmt.Printf("  verdict: %v — the outer IP header told the iBGP peer not to bounce it back\n", res.Verdict)
}
