// Contentprovider reproduces the paper's motivating scenario (and Fig. 6's
// workload): a handful of hypergiant content providers source most of the
// interdomain traffic, Zipf-distributed by popularity, towards stub ASes.
// Under plain BGP the providers' default egress paths congest; MIFO
// spreads their flows over alternative RIB paths at 50% deployment.
//
//	go run ./examples/contentprovider
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	g, err := topo.Generate(topo.GenConfig{N: 800, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Rank content providers the way the paper does: by the number of
	// providers and peers they have.
	providers := traffic.RankContentProviders(g, 80)
	consumers := traffic.StubASes(g)
	fmt.Printf("%d candidate content providers, %d stub consumers\n", len(providers), len(consumers))
	fmt.Printf("top provider AS %d has %d transit neighbors\n\n",
		providers[0], g.TransitNeighborCount(providers[0]))

	for _, alpha := range []float64{0.8, 1.0, 1.2} {
		flows, err := traffic.PowerLaw(traffic.PowerLawConfig{
			Providers: providers, Consumers: consumers,
			Alpha: alpha, Flows: 3000, ArrivalRate: 1400, Seed: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		mask := experiments.DeploymentMask(g.N(), 0.5, 99)

		fmt.Printf("alpha = %.1f (traffic skew):\n", alpha)
		for _, policy := range []netsim.Policy{netsim.PolicyBGP, netsim.PolicyMIFO} {
			res, err := netsim.Run(g, flows, netsim.Config{Policy: policy, Capable: mask})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-5v mean %4.0f Mbps | >=500 Mbps %4.1f%% | offloaded %4.1f%%\n",
				policy, res.MeanThroughputMbps(),
				100*res.FractionAtLeastMbps(500), 100*res.OffloadFraction())
		}
	}

	fmt.Println("\nThe more skewed the matrix, the harder BGP's fixed defaults are hit;")
	fmt.Println("MIFO's data-plane deflection absorbs the hot content providers' bursts.")
}
