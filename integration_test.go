package repro

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/bgpsim"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/netd"
	"repro/internal/topo"
)

// TestFullStack drives every layer in one scenario: generate an
// Internet-like topology, converge routes with the message-level BGP
// simulator, cross-check the static solver, build the router-level
// deployment, run daemons concurrently, and forward real datagrams over
// UDP sockets with congestion-driven deflection — asserting loop freedom
// and delivery at the end.
func TestFullStack(t *testing.T) {
	const n = 80
	g, err := topo.Generate(topo.GenConfig{N: n, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}

	// Control plane: message-level convergence must match the solver.
	dst := 3
	sim := bgpsim.New(g, dst, bgpsim.Config{})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	table := bgp.Compute(g, dst)
	for v := 0; v < n; v++ {
		conv := sim.Best(v)
		static := table.ASPath(v)
		if (conv == nil) != (static == nil) || len(conv) != len(static) {
			t.Fatalf("AS %d: protocol converged to %v, solver says %v", v, conv, static)
		}
	}

	// Data plane: deployment + UDP fabric + concurrent daemons.
	dep := core.NewDeployment(g, core.Config{})
	dep.InstallDestination(table)
	fabric, err := netd.NewFabric(dep.Net)
	if err != nil {
		t.Fatal(err)
	}
	fabric.Start()
	defer fabric.Stop()
	rt := core.NewRuntime(dep, 2*time.Millisecond)
	rt.Start()
	defer rt.Stop()

	// Congest every AS's default egress towards the destination.
	congested := 0
	for v := 0; v < n; v++ {
		if v == dst || !table.Reachable(v) {
			continue
		}
		if err := dep.SetLinkLoad(v, table.NextHop(v), 1e9); err == nil {
			congested++
		}
	}
	if congested == 0 {
		t.Fatal("no link congested; scenario broken")
	}
	time.Sleep(20 * time.Millisecond) // daemons install alternatives

	const packets = 120
	sent := 0
	for i := 0; i < packets; i++ {
		src := (i*7 + 1) % n
		if src == dst || !table.Reachable(src) {
			continue
		}
		sent++
		fabric.Inject(&dataplane.Packet{
			Flow: dataplane.FlowKey{
				SrcAddr: uint32(src),
				DstAddr: dataplane.PrefixAddr(int32(dst)),
				SrcPort: uint16(i),
				Proto:   6,
			},
			Dst: int32(dst),
		}, dep.Routers(src)[0].ID)
		if i%16 == 15 {
			time.Sleep(time.Millisecond)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := fabric.TotalStats()
		if s.Delivered+s.DropValleyFree+s.DropNoRoute >= int64(sent) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := fabric.TotalStats()
	if s.DropTTL != 0 {
		t.Fatalf("LOOP: %d TTL drops across the full stack", s.DropTTL)
	}
	if s.Delivered == 0 {
		t.Fatalf("nothing delivered; stats %+v", s)
	}
	if s.Deflected == 0 {
		t.Fatalf("congestion never caused a deflection; stats %+v", s)
	}
	if s.ParseErrors != 0 {
		t.Fatalf("wire format corrupted %d datagrams", s.ParseErrors)
	}
}
