// Package repro is a from-scratch Go reproduction of "MIFO: Multi-Path
// Interdomain Forwarding" (Zhu et al., ICPP 2015): data-plane multipath
// forwarding for BGP networks, where border routers deflect traffic from
// congested default paths onto alternatives mined from the local BGP RIB,
// kept loop-free by a one-bit valley-free tag-check and an IP-in-IP
// hand-off between iBGP peers.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), is exercised by the runnable tools under cmd/ and the
// walkthroughs under examples/, and regenerates every table and figure of
// the paper's evaluation via bench_test.go and cmd/mifo-sim
// (paper-vs-measured numbers are recorded in EXPERIMENTS.md).
package repro
