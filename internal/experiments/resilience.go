package experiments

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Resilience is an extension experiment beyond the paper's evaluation,
// motivated by its related work (R-BGP: "staying connected"): fail the
// busiest inter-AS link mid-run and compare how long traffic stays
// black-holed under each policy. MIFO's data-plane deflection reacts to a
// dead egress instantly; BGP and MIRO wait out route reconvergence.
type Resilience struct {
	// FailedLink is the (A, B) link chosen for the failure.
	FailedLink [2]int
	// AffectedAtFailure is how many in-flight flows crossed it.
	Rows []ResilienceRow
}

// ResilienceRow is one policy's outcome.
type ResilienceRow struct {
	Policy         string
	AffectedFlows  int     // flows that stalled at all
	MeanStallSec   float64 // over affected flows
	MaxStallSec    float64
	StalledForever int
	MeanMbps       float64
	// Routing counts the run's route-computation work: FullComputes for the
	// intact tables, IncrementalComputes for the failure/recovery events,
	// and CleanSkipped for the recomputes the incremental table proved
	// unnecessary (the work a from-scratch rebuild would have wasted).
	Routing bgp.TableStats
}

// RunResilience executes the failure scenario for BGP, MIRO and MIFO.
func RunResilience(o Options) (*Resilience, error) {
	o = o.withDefaults()
	g, err := Topology(o)
	if err != nil {
		return nil, err
	}
	flows, err := traffic.Uniform(traffic.UniformConfig{
		N: g.N(), Flows: o.Flows, ArrivalRate: o.ArrivalRate, Seed: o.Seed + 1000,
	})
	if err != nil {
		return nil, err
	}

	// Pick the busiest directed link over the default paths of the
	// workload — the failure that hurts the most. The outage spans the
	// middle third of the arrival horizon and reconvergence takes a
	// quarter of the outage, so both the outage and the repair window are
	// well represented.
	a, b := busiestLink(g, flows, o.Workers)
	horizon := flows[len(flows)-1].Arrival
	failure := netsim.LinkFailure{A: a, B: b, At: horizon / 3, RecoverAt: 2 * horizon / 3}
	delay := horizon / 12

	out := &Resilience{FailedLink: [2]int{a, b}}
	for _, pol := range []netsim.Policy{netsim.PolicyBGP, netsim.PolicyMIRO, netsim.PolicyMIFO} {
		res, err := netsim.Run(g, flows, netsim.Config{
			Policy:             pol,
			Workers:            o.Workers,
			Failures:           []netsim.LinkFailure{failure},
			ReconvergenceDelay: delay,
			Recorder:           o.Recorder,
			Spans:              o.Spans,
			TSDB:               o.TSDB,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: resilience %v: %v", pol, err)
		}
		row := ResilienceRow{Policy: pol.String(), MeanMbps: res.MeanThroughputMbps(), Routing: res.Routing}
		stall := &metrics.CDF{}
		for i := range res.Flows {
			f := &res.Flows[i]
			if f.Unroutable {
				continue
			}
			if f.Stalled {
				row.StalledForever++
			}
			if f.StalledTime > 0 {
				row.AffectedFlows++
				stall.Add(f.StalledTime)
			}
		}
		if stall.N() > 0 {
			row.MeanStallSec = stall.Mean()
			row.MaxStallSec = stall.Max()
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// busiestLink returns the busiest inter-AS link (by default-path
// traversals of the workload) whose failure does NOT partition the policy
// graph — there is no point comparing failover mechanisms on a failure
// nothing can route around. Candidates are tried busiest-first; each is
// verified by recomputing routes without the link and checking that the
// flows crossing it can still reach their destinations.
func busiestLink(g *topo.Graph, flows []traffic.Flow, workers int) (int, int) {
	seen := map[int]bool{}
	var dsts []int
	for _, f := range flows {
		if !seen[f.Dst] {
			seen[f.Dst] = true
			dsts = append(dsts, f.Dst)
		}
	}
	tables := bgp.ComputeAll(g, dsts, workers)
	byDst := make(map[int]*bgp.Dest, len(dsts))
	for i, dst := range dsts {
		byDst[dst] = tables[i]
	}

	type edge struct{ a, b int }
	counts := map[edge]int{}
	crossing := map[edge][]traffic.Flow{}
	var pathBuf []int // reused across the whole workload scan
	for _, f := range flows {
		t := byDst[f.Dst]
		if t == nil || !t.Reachable(f.Src) {
			continue
		}
		path := t.ASPathInto(f.Src, pathBuf)
		pathBuf = path
		for i := 0; i+1 < len(path); i++ {
			a, b := path[i], path[i+1]
			if a > b {
				a, b = b, a
			}
			e := edge{a, b}
			counts[e]++
			if len(crossing[e]) < 16 {
				crossing[e] = append(crossing[e], f)
			}
		}
	}

	// Order candidates by traversal count (deterministic tie-break).
	candidates := make([]edge, 0, len(counts))
	for e := range counts {
		candidates = append(candidates, e)
	}
	for i := 1; i < len(candidates); i++ {
		for j := i; j > 0; j-- {
			a, b := candidates[j], candidates[j-1]
			if counts[a] > counts[b] || (counts[a] == counts[b] &&
				(a.a < b.a || (a.a == b.a && a.b < b.b))) {
				candidates[j], candidates[j-1] = candidates[j-1], candidates[j]
			} else {
				break
			}
		}
	}
	if len(candidates) > 10 {
		candidates = candidates[:10]
	}
	for _, e := range candidates {
		removed, err := topo.RemoveLinks(g, []topo.LinkRef{{A: e.a, B: e.b}})
		if err != nil {
			continue
		}
		ok := true
		repaired := map[int]*bgp.Dest{}
		for _, f := range crossing[e] {
			t, cached := repaired[f.Dst]
			if !cached {
				t = bgp.Compute(removed, f.Dst)
				repaired[f.Dst] = t
			}
			if !t.Reachable(f.Src) {
				ok = false
				break
			}
		}
		if ok {
			return e.a, e.b
		}
	}
	// Fall back to the absolute busiest link.
	if len(candidates) > 0 {
		return candidates[0].a, candidates[0].b
	}
	return 0, 1
}
