package experiments

import "testing"

func TestResilienceOrdering(t *testing.T) {
	r, err := RunResilience(Options{N: 250, Flows: 600, ArrivalRate: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 policies", len(r.Rows))
	}
	byName := map[string]ResilienceRow{}
	for _, row := range r.Rows {
		byName[row.Policy] = row
	}
	bgpRow, mifoRow := byName["BGP"], byName["MIFO"]
	if bgpRow.AffectedFlows == 0 {
		t.Fatal("the busiest-link failure affected no BGP flow; scenario broken")
	}
	// BGP flows stall for up to the reconvergence delay (horizon/12 =
	// 0.5 s here; arrivals mid-convergence stall proportionally less).
	if bgpRow.MeanStallSec < 0.2 {
		t.Errorf("BGP mean stall = %v s, want a substantial outage", bgpRow.MeanStallSec)
	}
	if bgpRow.MaxStallSec < 0.45 {
		t.Errorf("BGP max stall = %v s, want ~the reconvergence delay", bgpRow.MaxStallSec)
	}
	// MIFO's data-plane failover must cut the outage dramatically: fewer
	// affected flows and far less stalled time overall.
	bgpTotal := bgpRow.MeanStallSec * float64(bgpRow.AffectedFlows)
	mifoTotal := mifoRow.MeanStallSec * float64(mifoRow.AffectedFlows)
	if mifoTotal > bgpTotal/2 {
		t.Errorf("MIFO total stall %v s vs BGP %v s: failover not pulling its weight",
			mifoTotal, bgpTotal)
	}
}

func TestBusiestLinkIsReal(t *testing.T) {
	o := Options{N: 150, Flows: 200, Seed: 5}.withDefaults()
	g, err := Topology(o)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := uniformFor(o, g)
	if err != nil {
		t.Fatal(err)
	}
	a, b := busiestLink(g, fl, 0)
	if !g.HasLink(a, b) {
		t.Fatalf("busiest link (%d, %d) does not exist", a, b)
	}
}
