package experiments

import (
	"repro/internal/netsim"
)

// Sensitivity sweeps MIFO's two main control knobs — the congestion
// threshold that triggers deflection and the control interval that paces
// re-evaluation — and reports the headline throughput statistic for each
// point. DESIGN.md calls these out as the design choices worth ablating;
// this is the full curve behind the spot-check benchmarks.
type Sensitivity struct {
	// Thresholds rows: x = congestion threshold, y = % of flows ≥500 Mbps.
	Thresholds []SensitivityRow
	// Intervals rows: x = control interval (seconds), y likewise.
	Intervals []SensitivityRow
}

// SensitivityRow is one sweep point.
type SensitivityRow struct {
	X          float64
	AtLeast500 float64
	Offload    float64
}

// RunSensitivity executes both sweeps on a fixed workload.
func RunSensitivity(o Options) (*Sensitivity, error) {
	o = o.withDefaults()
	g, err := Topology(o)
	if err != nil {
		return nil, err
	}
	flows, err := uniformFor(o, g)
	if err != nil {
		return nil, err
	}
	out := &Sensitivity{}
	run := func(cfg netsim.Config) (SensitivityRow, error) {
		cfg.Policy = netsim.PolicyMIFO
		cfg.Workers = o.Workers
		cfg.Recorder = o.Recorder
		res, err := netsim.Run(g, flows, cfg)
		if err != nil {
			return SensitivityRow{}, err
		}
		return SensitivityRow{
			AtLeast500: 100 * res.FractionAtLeastMbps(500),
			Offload:    100 * res.OffloadFraction(),
		}, nil
	}
	for _, th := range []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.99} {
		row, err := run(netsim.Config{CongestionThreshold: th})
		if err != nil {
			return nil, err
		}
		row.X = th
		out.Thresholds = append(out.Thresholds, row)
	}
	for _, ci := range []float64{0.002, 0.005, 0.02, 0.05, 0.2} {
		row, err := run(netsim.Config{ControlInterval: ci})
		if err != nil {
			return nil, err
		}
		row.X = ci
		out.Intervals = append(out.Intervals, row)
	}
	return out, nil
}
