package experiments

import (
	"math"
	"testing"
)

func TestNewStat(t *testing.T) {
	s := newStat([]float64{1, 2, 3})
	if s.Mean != 2 || s.N != 3 {
		t.Errorf("stat = %+v", s)
	}
	if math.Abs(s.Std-1) > 1e-12 {
		t.Errorf("std = %v, want 1", s.Std)
	}
	if got := s.String(); got != "2.0 ± 1.0" {
		t.Errorf("string = %q", got)
	}
	if z := newStat(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty stat = %+v", z)
	}
	if one := newStat([]float64{5}); one.Std != 0 {
		t.Errorf("single-sample std = %v", one.Std)
	}
}

func TestRunRepeatedOrderingHolds(t *testing.T) {
	r, err := RunRepeated(Options{N: 300, Flows: 600, ArrivalRate: 1500, Seed: 2}, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"BGP", "MIRO", "MIFO"} {
		s, ok := r.AtLeast500[name]
		if !ok || s.N != 3 {
			t.Fatalf("missing or short stat for %s: %+v", name, s)
		}
	}
	// Mean ordering must hold across seeds, not just on one lucky draw.
	if r.MeanMbps["MIFO"].Mean <= r.MeanMbps["BGP"].Mean {
		t.Errorf("MIFO mean %v must beat BGP %v across seeds",
			r.MeanMbps["MIFO"], r.MeanMbps["BGP"])
	}
	// MIFO's advantage over BGP should exceed seed noise.
	gap := r.MeanMbps["MIFO"].Mean - r.MeanMbps["BGP"].Mean
	noise := r.MeanMbps["MIFO"].Std + r.MeanMbps["BGP"].Std
	if gap < noise/2 {
		t.Errorf("MIFO-BGP gap %v within noise %v", gap, noise)
	}
}
