package experiments

import (
	"strings"
	"testing"
)

// small keeps unit tests fast; the figure-scale defaults run in benches and
// cmd/mifo-sim.
var small = Options{N: 200, Flows: 400, PairSamples: 100, Seed: 7}

func TestTableI(t *testing.T) {
	sum, err := TableI(small)
	if err != nil {
		t.Fatal(err)
	}
	out := sum.String()
	for _, key := range []string{"# of Nodes", "# of Links", "P/C Links", "Peering Links"} {
		if !strings.Contains(out, key) {
			t.Errorf("Table I output missing %q:\n%s", key, out)
		}
	}
	if sum.Get("# of Nodes") != "200" {
		t.Errorf("nodes = %q, want 200", sum.Get("# of Nodes"))
	}
}

func TestDeploymentMask(t *testing.T) {
	if DeploymentMask(100, 1.0, 1) != nil {
		t.Error("full deployment should be nil")
	}
	mask := DeploymentMask(100, 0.3, 1)
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	if n != 30 {
		t.Errorf("capable count = %d, want 30", n)
	}
	// Deterministic per seed.
	mask2 := DeploymentMask(100, 0.3, 1)
	for i := range mask {
		if mask[i] != mask2[i] {
			t.Fatal("mask not deterministic")
		}
	}
}

func TestFig7Ordering(t *testing.T) {
	f, err := RunFig7(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(f.Series))
	}
	// The paper's headline: MIFO offers (vastly) more paths than MIRO.
	if f.MedianMIFO100 <= f.MedianMIRO100 {
		t.Errorf("median paths MIFO=%v should exceed MIRO=%v", f.MedianMIFO100, f.MedianMIRO100)
	}
	// Each complementary series must be non-increasing.
	for _, s := range f.Series {
		for i := 1; i < len(s.Rows); i++ {
			if s.Rows[i].Y > s.Rows[i-1].Y+1e-9 {
				t.Errorf("%s not non-increasing at %d: %v", s.Name, i, s.Rows)
				break
			}
		}
	}
}

func TestFig5FullDeploymentOrdering(t *testing.T) {
	c, err := RunFig5(small, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(c.Series))
	}
	bgp := c.AtLeast500["BGP"]
	mifo := c.AtLeast500["100% Deployed MIFO"]
	if mifo < bgp {
		t.Errorf("MIFO >=500Mbps fraction %v must be >= BGP's %v", mifo, bgp)
	}
	// MIFO must offload something under full deployment.
	if c.Results["100% Deployed MIFO"].OffloadFraction() <= 0 {
		t.Error("MIFO offloaded nothing; congestion never triggered?")
	}
}

func TestFig6PowerLawOrdering(t *testing.T) {
	c, err := RunFig6(small, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	bgp := c.AtLeast500["BGP"]
	miro := c.AtLeast500["50% Deployed MIRO"]
	mifo := c.AtLeast500["50% Deployed MIFO"]
	if mifo < miro || mifo < bgp {
		t.Errorf("ordering violated: MIFO=%v MIRO=%v BGP=%v", mifo, miro, bgp)
	}
}

func TestFig8MonotoneOffload(t *testing.T) {
	f, err := RunFig8(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(f.Rows))
	}
	if f.Rows[0].X != 10 || f.Rows[9].X != 100 {
		t.Errorf("x range = %v..%v", f.Rows[0].X, f.Rows[9].X)
	}
	// Offload must grow with deployment overall (tolerate small local dips
	// from the random masks).
	if f.Rows[9].Y <= f.Rows[0].Y {
		t.Errorf("offload at 100%% (%v) should exceed 10%% (%v)", f.Rows[9].Y, f.Rows[0].Y)
	}
	for _, r := range f.Rows {
		if r.Y < 0 || r.Y > 100 {
			t.Fatalf("offload %v out of range", r)
		}
	}
}

func TestFig9Stability(t *testing.T) {
	f, err := RunFig9(small)
	if err != nil {
		t.Fatal(err)
	}
	if f.Histogram.Total() == 0 {
		t.Fatal("no flow ever switched; workload too light for Fig. 9")
	}
	// The paper's stability claim: switching is dominated by 1-2 switches.
	if f.OnceFraction < 0.3 {
		t.Errorf("once fraction = %v, want the mode at one switch", f.OnceFraction)
	}
	if f.AtMostTwiceFraction < f.OnceFraction {
		t.Error("cumulative fraction cannot decrease")
	}
	if f.AtMostTwiceFraction < 0.6 {
		t.Errorf("at-most-twice = %v, want stability-dominated distribution", f.AtMostTwiceFraction)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.N != 1000 || o.Flows != 5000 || o.PairSamples != 1000 || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestComplementaryEmpty(t *testing.T) {
	s := complementary("x", nil)
	if len(s.Rows) != 0 {
		t.Error("empty input should produce empty series")
	}
	if median(nil) != 0 {
		t.Error("median of empty should be 0")
	}
}
