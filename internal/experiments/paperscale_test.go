package experiments

import (
	"testing"

	"repro/internal/topo"
)

func TestRunPaperScaleFlows(t *testing.T) {
	o := Options{N: 300, Flows: 500, Seed: 3}
	r, err := RunPaperScale(o, PaperScaleConfig{Dests: 8, StreamFlows: 400, MemBudgetMB: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if r.TableOnly {
		t.Fatal("flow mode reported TableOnly")
	}
	if r.Nodes != 300 {
		t.Fatalf("nodes = %d, want 300", r.Nodes)
	}
	if r.Dests != 8 {
		t.Fatalf("dests = %d, want 8", r.Dests)
	}
	if r.Stream == nil || r.Stream.Flows != 400 {
		t.Fatalf("stream did not pull 400 flows: %+v", r.Stream)
	}
	if r.Stream.PeakFlowSlots > r.Stream.PeakActive+1 {
		t.Fatalf("flow slots not bounded: %d slots for %d active", r.Stream.PeakFlowSlots, r.Stream.PeakActive)
	}
	if r.Routing.LinkEvents < 2 {
		t.Fatalf("link events = %d, want the failure and the recovery", r.Routing.LinkEvents)
	}
	if r.TableMem.Dests != 8 || r.TableMem.BytesPerEntry <= 0 {
		t.Fatalf("table memory accounting: %+v", r.TableMem)
	}
	if r.TableMem.ArenaRetainedBytes == 0 {
		t.Fatal("flow-mode table should report the arena build footprint")
	}
	if r.PeakRSS <= 0 || r.RSSSource == "" {
		t.Fatalf("peak RSS not read: %d via %q", r.PeakRSS, r.RSSSource)
	}
	if r.OverBudget {
		t.Fatalf("a 300-AS run cannot exceed 4 GiB (peak %d bytes)", r.PeakRSS)
	}
}

func TestRunPaperScaleTableOnly(t *testing.T) {
	o := Options{N: 250, Seed: 5}
	r, err := RunPaperScale(o, PaperScaleConfig{AllDests: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TableOnly {
		t.Fatal("AllDests did not select table-only mode")
	}
	if r.Dests != 250 || r.TableMem.Dests != 250 {
		t.Fatalf("dests = %d / %d, want 250", r.Dests, r.TableMem.Dests)
	}
	if r.TableMem.ArenaRetainedBytes != 0 {
		t.Fatal("table-only build must be heap-backed (collectable on recompute)")
	}
	if r.Routing.FullComputes != 250 {
		t.Fatalf("full computes = %d, want 250", r.Routing.FullComputes)
	}
	if r.Routing.LinkEvents != 2 {
		t.Fatalf("link events = %d, want 2", r.Routing.LinkEvents)
	}
	if r.Routing.IncrementalComputes+r.Routing.CleanSkipped != 2*250 {
		t.Fatalf("incremental accounting: %+v", r.Routing)
	}
	if r.Stream != nil {
		t.Fatal("table-only mode must not run the flow simulator")
	}
	if r.BudgetBytes != 0 || r.OverBudget {
		t.Fatalf("no budget was set: %+v", r)
	}
}

func TestRunPaperScaleGraphOverride(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunPaperScale(Options{N: g.N(), Graph: g, Flows: 100}, PaperScaleConfig{Dests: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != 120 || r.Links != g.Links() {
		t.Fatalf("override graph not used: %d nodes, %d links", r.Nodes, r.Links)
	}
}
