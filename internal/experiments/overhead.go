package experiments

import (
	"math/rand"

	"repro/internal/bgp"
	"repro/internal/bgpsim"
	"repro/internal/metrics"
	"repro/internal/miro"
)

// Overhead quantifies the paper's "multiple paths with zero overhead"
// claim (Section II-B / VI): every multipath proposal pays some
// control-plane cost on top of baseline BGP — MIRO per-pair negotiation
// messages, PDAR-style schemes extra UPDATEs — while MIFO mines the RIB it
// already has.
type Overhead struct {
	// BGPUpdatesPerPrefix is the average number of UPDATE messages needed
	// to converge one prefix (message-level simulation).
	BGPUpdatesPerPrefix float64
	// MIROMessagesPerPair is the average number of extra negotiation
	// messages per (src, dst) pair (request + response per alternate).
	MIROMessagesPerPair float64
	// MIFOExtraMessages is always zero — the point of the design.
	MIFOExtraMessages float64
	// ReconvergenceSec is the mean BGP reconvergence latency after a
	// single link failure (message-level), the window during which MIFO
	// keeps forwarding while plain BGP black-holes.
	ReconvergenceSec float64
}

// RunOverhead measures control-plane costs on the experiment topology.
func RunOverhead(o Options) (*Overhead, error) {
	o = o.withDefaults()
	g, err := Topology(o)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.Seed + 1500))

	// Convergence cost and reconvergence latency over sampled prefixes.
	nPrefixes := 8
	msgs := 0.0
	reconv := &metrics.CDF{}
	for i := 0; i < nPrefixes; i++ {
		dst := rng.Intn(g.N())
		s := bgpsim.New(g, dst, bgpsim.Config{})
		if err := s.Run(); err != nil {
			return nil, err
		}
		msgs += float64(s.Messages)

		// Fail a link on some converged path and measure reconvergence.
		src := rng.Intn(g.N())
		path := s.Best(src)
		if len(path) < 2 {
			continue
		}
		hop := rng.Intn(len(path) - 1)
		failAt := s.Now()
		if err := s.FailLink(int(path[hop]), int(path[hop+1])); err != nil {
			return nil, err
		}
		if err := s.Run(); err != nil {
			return nil, err
		}
		if d := s.LastChange - failAt; d > 0 {
			reconv.Add(d)
		}
	}

	// MIRO negotiation cost over sampled pairs.
	cfg := miro.DefaultConfig()
	nPairs := 200
	negotiation := 0.0
	counted := 0
	for i := 0; i < nPairs; i++ {
		src, dst := rng.Intn(g.N()), rng.Intn(g.N())
		if src == dst {
			continue
		}
		table := bgp.Compute(g, dst)
		if !table.Reachable(src) {
			continue
		}
		alts := cfg.Alternates(g, table, src, nil)
		negotiation += 2 * float64(len(alts)) // request + response per tunnel
		counted++
	}

	out := &Overhead{
		BGPUpdatesPerPrefix: msgs / float64(nPrefixes),
		MIFOExtraMessages:   0,
	}
	if counted > 0 {
		out.MIROMessagesPerPair = negotiation / float64(counted)
	}
	if reconv.N() > 0 {
		out.ReconvergenceSec = reconv.Mean()
	}
	return out, nil
}
