package experiments

import (
	"fmt"
	"math"

	"repro/internal/netsim"
	"repro/internal/traffic"
)

// Stat is a mean with a sample standard deviation over repeated runs.
type Stat struct {
	Mean, Std float64
	N         int
}

// String renders "mean ± std".
func (s Stat) String() string {
	return fmt.Sprintf("%.1f ± %.1f", s.Mean, s.Std)
}

func newStat(samples []float64) Stat {
	st := Stat{N: len(samples)}
	if st.N == 0 {
		return st
	}
	for _, v := range samples {
		st.Mean += v
	}
	st.Mean /= float64(st.N)
	if st.N > 1 {
		var ss float64
		for _, v := range samples {
			d := v - st.Mean
			ss += d * d
		}
		st.Std = math.Sqrt(ss / float64(st.N-1))
	}
	return st
}

// Repeated holds the per-policy headline statistic (percentage of flows at
// ≥500 Mbps) over several independent seeds — error bars for Fig. 5/6.
type Repeated struct {
	Deployment float64
	AtLeast500 map[string]Stat // policy name -> stat (percent)
	MeanMbps   map[string]Stat
}

// RunRepeated executes the Fig. 5 comparison `repeats` times with
// different workload and deployment seeds and aggregates the headline
// statistics. Topology is held fixed (it is the population under study);
// traffic and adopter draws vary.
func RunRepeated(o Options, deployment float64, repeats int) (*Repeated, error) {
	o = o.withDefaults()
	if repeats < 1 {
		repeats = 3
	}
	g, err := Topology(o)
	if err != nil {
		return nil, err
	}
	at500 := map[string][]float64{}
	mbps := map[string][]float64{}
	for rep := 0; rep < repeats; rep++ {
		seed := o.Seed + int64(rep)*10007
		flows, err := traffic.Uniform(traffic.UniformConfig{
			N: g.N(), Flows: o.Flows, ArrivalRate: o.ArrivalRate, Seed: seed + 300,
		})
		if err != nil {
			return nil, err
		}
		mask := DeploymentMask(g.N(), deployment, seed+500)
		for _, pol := range []netsim.Policy{netsim.PolicyBGP, netsim.PolicyMIRO, netsim.PolicyMIFO} {
			res, err := netsim.Run(g, flows, netsim.Config{
				Policy: pol, Capable: mask, Workers: o.Workers, Recorder: o.Recorder,
			})
			if err != nil {
				return nil, err
			}
			name := pol.String()
			at500[name] = append(at500[name], 100*res.FractionAtLeastMbps(500))
			mbps[name] = append(mbps[name], res.MeanThroughputMbps())
		}
	}
	out := &Repeated{
		Deployment: deployment,
		AtLeast500: map[string]Stat{},
		MeanMbps:   map[string]Stat{},
	}
	for name, samples := range at500 {
		out.AtLeast500[name] = newStat(samples)
	}
	for name, samples := range mbps {
		out.MeanMbps[name] = newStat(samples)
	}
	return out, nil
}
