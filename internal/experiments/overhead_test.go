package experiments

import "testing"

func TestOverheadZeroForMIFO(t *testing.T) {
	o, err := RunOverhead(Options{N: 200, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if o.MIFOExtraMessages != 0 {
		t.Error("MIFO must add zero control-plane messages")
	}
	if o.BGPUpdatesPerPrefix < float64(200-1) {
		t.Errorf("BGP updates per prefix = %v, must at least reach every AS", o.BGPUpdatesPerPrefix)
	}
	if o.MIROMessagesPerPair <= 0 {
		t.Errorf("MIRO negotiation cost = %v, want positive", o.MIROMessagesPerPair)
	}
	if o.ReconvergenceSec <= 0 {
		t.Errorf("reconvergence = %v, want positive", o.ReconvergenceSec)
	}
}
