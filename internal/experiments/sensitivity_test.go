package experiments

import "testing"

func TestRunSensitivity(t *testing.T) {
	s, err := RunSensitivity(Options{N: 250, Flows: 500, ArrivalRate: 1500, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Thresholds) != 6 || len(s.Intervals) != 5 {
		t.Fatalf("rows = %d/%d", len(s.Thresholds), len(s.Intervals))
	}
	for _, r := range append(append([]SensitivityRow{}, s.Thresholds...), s.Intervals...) {
		if r.AtLeast500 < 0 || r.AtLeast500 > 100 || r.Offload < 0 || r.Offload > 100 {
			t.Fatalf("row out of range: %+v", r)
		}
	}
	// Offload should fall as the threshold rises (fewer links count as
	// congested); allow small non-monotonic wiggle.
	first, last := s.Thresholds[0].Offload, s.Thresholds[len(s.Thresholds)-1].Offload
	if last > first+5 {
		t.Errorf("offload rose with threshold: %.1f%% -> %.1f%%", first, last)
	}
	// Faster control must not be materially worse than the slowest.
	fast, slow := s.Intervals[0].AtLeast500, s.Intervals[len(s.Intervals)-1].AtLeast500
	if fast < slow-5 {
		t.Errorf("2ms epochs (%.1f%%) materially worse than 200ms (%.1f%%)", fast, slow)
	}
}
