// Package experiments contains one harness per table/figure of the paper's
// evaluation (Section IV and V). Each harness builds its workload, runs the
// appropriate simulator, and returns the same rows/series the paper plots,
// so cmd/mifo-sim, the examples, and bench_test.go all share one
// implementation.
//
// Default scales are laptop-sized (the paper simulates 44,340 ASes and one
// million flows; CDF shapes and orderings are scale-stable — see
// EXPERIMENTS.md). Paper-scale runs are a flag away in cmd/mifo-sim.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/audit"
	"repro/internal/bgp"
	"repro/internal/metrics"
	"repro/internal/miro"
	"repro/internal/netsim"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Options control workload scale. Zero values select defaults.
type Options struct {
	// N is the topology size in ASes (default 1000).
	N int
	// Flows is the number of simulated flows (default 5000).
	Flows int
	// PairSamples is the number of (src, dst) pairs sampled for path
	// diversity (default 1000).
	PairSamples int
	// ArrivalRate is the Poisson flow arrival rate in flows/s. The paper
	// uses 100/s on a 44,340-AS topology; at smaller scales the rate must
	// grow for the transit core to see contention at all. The default,
	// 25 * (44340 / N) flows/s (min 100), puts the scaled-down network in
	// the paper's operating regime: BGP's single paths congest while
	// adaptive multipath still finds spare capacity. See EXPERIMENTS.md
	// for the load-sensitivity discussion.
	ArrivalRate float64
	// Seed makes runs reproducible (default 1).
	Seed int64
	// Workers bounds parallelism (0 = all CPUs).
	Workers int

	// Graph, when non-nil, is used as the experiment topology instead of
	// generating one from N and Seed (mifo-sim's -topo flag). Callers
	// should set N to Graph.N() so rate auto-scaling sees the real size.
	Graph *topo.Graph

	// CongestionThreshold, ReturnThreshold and Quality tune MIFO's control
	// loop (zero values take netsim's defaults). Exposed for the ablation
	// benchmarks.
	CongestionThreshold float64
	ReturnThreshold     float64
	Quality             netsim.Quality

	// Recorder, when non-nil, attaches the packet flight recorder to every
	// flow-level simulation an experiment runs: each installed path is
	// recorded as a JSONL flight record and audited online (mifo-sim's
	// -flight-log / -flight-sample flags).
	Recorder *audit.Recorder

	// Spans, when non-nil, attaches the convergence span tracer to every
	// flow-level simulation an experiment runs: each injected link event
	// is traced from failure injection to data-plane consistency
	// (mifo-sim's -span-log flag; analyze with cmd/mifo-conv).
	Spans *span.Tracer

	// TSDB, when non-nil, attaches the link-utilization time-series store
	// to every flow-level simulation an experiment runs: per-epoch link
	// samples plus the cumulative deflection/offload series the episode
	// analyzer joins (mifo-sim's -tsdb-log flag; analyze with
	// cmd/mifo-top). Each simulation gets its own run label.
	TSDB *tsdb.Store
}

func (o Options) withDefaults() Options {
	if o.N <= 0 {
		o.N = 1000
	}
	if o.Flows <= 0 {
		o.Flows = 5000
	}
	if o.PairSamples <= 0 {
		o.PairSamples = 1000
	}
	if o.ArrivalRate <= 0 {
		o.ArrivalRate = 25 * 44340 / float64(o.N)
		if o.ArrivalRate < 100 {
			o.ArrivalRate = 100
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Topology returns the experiment topology for the given options: the
// explicit Graph override when set, a generated one otherwise.
func Topology(o Options) (*topo.Graph, error) {
	if o.Graph != nil {
		return o.Graph, nil
	}
	o = o.withDefaults()
	return topo.Generate(topo.GenConfig{N: o.N, Seed: o.Seed})
}

// DeploymentMask marks a random fraction of ASes as MIFO/MIRO-capable.
// frac >= 1 returns nil (full deployment).
func DeploymentMask(n int, frac float64, seed int64) []bool {
	if frac >= 1 {
		return nil
	}
	mask := make([]bool, n)
	rng := rand.New(rand.NewSource(seed))
	for _, v := range rng.Perm(n)[:int(frac*float64(n))] {
		mask[v] = true
	}
	return mask
}

// uniformFor builds the standard uniform workload for a topology.
func uniformFor(o Options, g *topo.Graph) ([]traffic.Flow, error) {
	return traffic.Uniform(traffic.UniformConfig{
		N: g.N(), Flows: o.Flows, ArrivalRate: o.ArrivalRate, Seed: o.Seed + 300,
	})
}

// TableI regenerates Table I: the attributes of the topology data set.
func TableI(o Options) (*metrics.Summary, error) {
	g, err := Topology(o)
	if err != nil {
		return nil, err
	}
	s := g.Stats()
	sum := metrics.NewSummary("Table I: Attributes of Data-set (synthetic)")
	sum.Set("# of Nodes", "%d", s.Nodes)
	sum.Set("# of Links", "%d", s.Links)
	sum.Set("P/C Links", "%d (%.0f%%)", s.PCLinks, 100*float64(s.PCLinks)/float64(s.Links))
	sum.Set("Peering Links", "%d (%.0f%%)", s.PeerLinks, 100*s.PeerFraction)
	sum.Set("Avg Degree", "%.2f", s.AvgDegree)
	sum.Set("Max Degree", "%d", s.MaxDegree)
	sum.Set("Stub ASes", "%d (%.0f%%)", s.Stubs, 100*float64(s.Stubs)/float64(s.Nodes))
	sum.Set("Multi-homed", "%d (%.0f%%)", s.MultiHomed, 100*float64(s.MultiHomed)/float64(s.Nodes))
	return sum, nil
}

// Fig7 reproduces Fig. 7: the number of available paths per AS pair for
// MIFO and MIRO at 50% and 100% deployment, as a complementary
// distribution over sampled pairs (x: percentage of pairs, y: paths).
type Fig7 struct {
	Series []metrics.Series
	// MedianMIFO100 and MedianMIRO100 summarize the full-deployment gap.
	MedianMIFO100, MedianMIRO100 float64
}

// RunFig7 executes the path-diversity comparison.
func RunFig7(o Options) (*Fig7, error) {
	o = o.withDefaults()
	g, err := Topology(o)
	if err != nil {
		return nil, err
	}
	half := DeploymentMask(g.N(), 0.5, o.Seed+100)
	rng := rand.New(rand.NewSource(o.Seed + 200))

	// Sample destination-grouped pairs so each BGP table is reused.
	nDsts := o.PairSamples / 20
	if nDsts < 1 {
		nDsts = 1
	}
	perDst := o.PairSamples / nDsts
	dsts := make([]int, nDsts)
	for i := range dsts {
		dsts[i] = rng.Intn(g.N())
	}
	tables := bgp.ComputeAll(g, dsts, o.Workers)

	cfgMIRO := miro.DefaultConfig()
	var mifo100, mifo50, miro100, miro50 []float64
	for i, t := range tables {
		pcFull := bgp.NewPathCounter(g, t, nil)
		pcHalf := bgp.NewPathCounter(g, t, half)
		for k := 0; k < perDst; k++ {
			src := rng.Intn(g.N())
			if src == dsts[i] || !t.Reachable(src) {
				continue
			}
			mifo100 = append(mifo100, float64(pcFull.Count(src)))
			mifo50 = append(mifo50, float64(pcHalf.Count(src)))
			miro100 = append(miro100, float64(cfgMIRO.AvailablePaths(g, t, src, nil)))
			miro50 = append(miro50, float64(cfgMIRO.AvailablePaths(g, t, src, half)))
		}
	}

	f := &Fig7{
		Series: []metrics.Series{
			complementary("50% Deployed MIRO", miro50),
			complementary("100% Deployed MIRO", miro100),
			complementary("50% Deployed MIFO", mifo50),
			complementary("100% Deployed MIFO", mifo100),
		},
		MedianMIFO100: median(mifo100),
		MedianMIRO100: median(miro100),
	}
	return f, nil
}

// complementary sorts values descending and reports the value at each
// percentage of pairs — Fig. 7's axes.
func complementary(name string, vals []float64) metrics.Series {
	sorted := append([]float64(nil), vals...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	s := metrics.Series{Name: name}
	if len(sorted) == 0 {
		return s
	}
	for pct := 0; pct <= 100; pct += 5 {
		idx := pct * (len(sorted) - 1) / 100
		s.Rows = append(s.Rows, metrics.Row{X: float64(pct), Y: sorted[idx]})
	}
	return s
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

// ThroughputComparison is the output of the Fig. 5 / Fig. 6 harnesses: one
// throughput CDF per policy plus the paper's headline statistic.
type ThroughputComparison struct {
	// Deployment is the capable fraction used for MIFO and MIRO.
	Deployment float64
	// Series holds the BGP, MIRO and MIFO throughput CDFs (x: Mbps,
	// y: CDF %).
	Series []metrics.Series
	// AtLeast500 maps policy name to the fraction of flows that reached
	// 500 Mbps — half the link capacity.
	AtLeast500 map[string]float64
	// Results holds the raw per-policy results for further analysis.
	Results map[string]*netsim.Results
}

// RunFig5 reproduces one panel of Fig. 5: uniform traffic at the given
// deployment ratio (1.0, 0.5 or 0.1 in the paper).
func RunFig5(o Options, deployment float64) (*ThroughputComparison, error) {
	o = o.withDefaults()
	g, err := Topology(o)
	if err != nil {
		return nil, err
	}
	flows, err := traffic.Uniform(traffic.UniformConfig{
		N: g.N(), Flows: o.Flows, ArrivalRate: o.ArrivalRate, Seed: o.Seed + 300,
	})
	if err != nil {
		return nil, err
	}
	return comparePolicies(g, flows, deployment, o)
}

// RunFig6 reproduces one panel of Fig. 6: power-law traffic with skew alpha
// at 50% deployment.
func RunFig6(o Options, alpha float64) (*ThroughputComparison, error) {
	o = o.withDefaults()
	g, err := Topology(o)
	if err != nil {
		return nil, err
	}
	providers := traffic.RankContentProviders(g, g.N()/10)
	consumers := traffic.StubASes(g)
	flows, err := traffic.PowerLaw(traffic.PowerLawConfig{
		Providers: providers, Consumers: consumers,
		Alpha: alpha, Flows: o.Flows, ArrivalRate: o.ArrivalRate, Seed: o.Seed + 400,
	})
	if err != nil {
		return nil, err
	}
	return comparePolicies(g, flows, 0.5, o)
}

func comparePolicies(g *topo.Graph, flows []traffic.Flow, deployment float64, o Options) (*ThroughputComparison, error) {
	mask := DeploymentMask(g.N(), deployment, o.Seed+500)
	out := &ThroughputComparison{
		Deployment: deployment,
		AtLeast500: make(map[string]float64),
		Results:    make(map[string]*netsim.Results),
	}
	base := netsim.Config{
		Workers:             o.Workers,
		CongestionThreshold: o.CongestionThreshold,
		ReturnThreshold:     o.ReturnThreshold,
		Quality:             o.Quality,
		Recorder:            o.Recorder,
		TSDB:                o.TSDB,
	}
	bgpCfg, miroCfg, mifoCfg := base, base, base
	bgpCfg.Policy = netsim.PolicyBGP
	miroCfg.Policy, miroCfg.Capable = netsim.PolicyMIRO, mask
	mifoCfg.Policy, mifoCfg.Capable = netsim.PolicyMIFO, mask
	runs := []struct {
		name string
		cfg  netsim.Config
	}{
		{"BGP", bgpCfg},
		{fmt.Sprintf("%.0f%% Deployed MIRO", 100*deployment), miroCfg},
		{fmt.Sprintf("%.0f%% Deployed MIFO", 100*deployment), mifoCfg},
	}
	for _, r := range runs {
		res, err := netsim.Run(g, flows, r.cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s run: %v", r.name, err)
		}
		cdf := res.ThroughputCDF()
		out.Series = append(out.Series, metrics.Series{Name: r.name, Rows: cdf.Rows(0, 1000, 50)})
		out.AtLeast500[r.name] = cdf.FractionAtLeast(500)
		out.Results[r.name] = res
	}
	return out, nil
}

// Fig8 reproduces Fig. 8: the share of flows carried on alternative paths
// as MIFO deployment grows from 10% to 100%.
type Fig8 struct {
	// Rows pair deployment percentage with offloaded-traffic percentage.
	Rows []metrics.Row
}

// RunFig8 sweeps the deployment ratio.
func RunFig8(o Options) (*Fig8, error) {
	o = o.withDefaults()
	g, err := Topology(o)
	if err != nil {
		return nil, err
	}
	flows, err := traffic.Uniform(traffic.UniformConfig{
		N: g.N(), Flows: o.Flows, ArrivalRate: o.ArrivalRate, Seed: o.Seed + 600,
	})
	if err != nil {
		return nil, err
	}
	f := &Fig8{}
	for pct := 10; pct <= 100; pct += 10 {
		mask := DeploymentMask(g.N(), float64(pct)/100, o.Seed+700)
		res, err := netsim.Run(g, flows, netsim.Config{
			Policy: netsim.PolicyMIFO, Capable: mask, Workers: o.Workers, Recorder: o.Recorder, TSDB: o.TSDB,
		})
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, metrics.Row{X: float64(pct), Y: 100 * res.OffloadFraction()})
	}
	return f, nil
}

// Fig9 reproduces Fig. 9: the distribution of per-flow path-switch counts
// at 50% deployment.
type Fig9 struct {
	// Histogram is over flows that switched at least once.
	Histogram *metrics.Histogram
	// OnceFraction and AtMostTwiceFraction are the paper's headline
	// numbers (67.7% and 97.5%).
	OnceFraction        float64
	AtMostTwiceFraction float64
}

// RunFig9 measures path-switching stability.
func RunFig9(o Options) (*Fig9, error) {
	o = o.withDefaults()
	g, err := Topology(o)
	if err != nil {
		return nil, err
	}
	flows, err := traffic.Uniform(traffic.UniformConfig{
		N: g.N(), Flows: o.Flows, ArrivalRate: o.ArrivalRate, Seed: o.Seed + 800,
	})
	if err != nil {
		return nil, err
	}
	res, err := netsim.Run(g, flows, netsim.Config{
		Policy:   netsim.PolicyMIFO,
		Capable:  DeploymentMask(g.N(), 0.5, o.Seed+900),
		Workers:  o.Workers,
		Recorder: o.Recorder,
		TSDB:     o.TSDB,
	})
	if err != nil {
		return nil, err
	}
	h := res.SwitchHistogram()
	return &Fig9{
		Histogram:           h,
		OnceFraction:        h.Fraction(1),
		AtMostTwiceFraction: h.FractionAtMost(2),
	}, nil
}
