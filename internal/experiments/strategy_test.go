package experiments

import (
	"testing"

	"repro/internal/topo"
)

func TestTopDegreeMask(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mask := TopDegreeMask(g, 0.1)
	count, minCapable, maxLegacy := 0, 1<<30, 0
	for v, c := range mask {
		d := g.Degree(v)
		if c {
			count++
			if d < minCapable {
				minCapable = d
			}
		} else if d > maxLegacy {
			maxLegacy = d
		}
	}
	if count != 20 {
		t.Fatalf("capable = %d, want 20", count)
	}
	// Degrees may tie at the boundary, but no legacy AS may strictly
	// out-rank a capable one.
	if maxLegacy > minCapable {
		t.Errorf("legacy AS with degree %d outranks capable AS with %d", maxLegacy, minCapable)
	}
	if TopDegreeMask(g, 1.0) != nil {
		t.Error("full deployment should be nil")
	}
}

func TestStrategyTopDegreeWins(t *testing.T) {
	s, err := RunStrategy(Options{N: 300, Flows: 800, ArrivalRate: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Random) != 5 || len(s.TopDegree) != 5 {
		t.Fatalf("rows = %d/%d, want 5/5", len(s.Random), len(s.TopDegree))
	}
	// Aggregate over the sweep: targeting transit hubs must offload more
	// and deliver at least as much throughput as random adoption.
	var randOff, topOff, randMean, topMean float64
	for i := range s.Random {
		randOff += s.Random[i].Offload
		topOff += s.TopDegree[i].Offload
		randMean += s.Random[i].MeanMbps
		topMean += s.TopDegree[i].MeanMbps
	}
	if topOff <= randOff {
		t.Errorf("top-degree offload %v should exceed random %v", topOff, randOff)
	}
	if topMean < 0.98*randMean {
		t.Errorf("top-degree mean %v markedly below random %v", topMean, randMean)
	}
	series := s.Series()
	if len(series) != 2 || len(series[0].Rows) != 5 {
		t.Errorf("series malformed: %+v", series)
	}
}
