package experiments

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/topo"
)

// Strategy compares *who* should deploy MIFO first — an extension beyond
// the paper, whose partial-deployment results (Figs. 5, 8) assume random
// adopters. Since a deflection can only happen at a capable AS, and transit
// hubs sit on most paths, deploying at the highest-degree ASes first should
// yield far more benefit per adopter.
type Strategy struct {
	// Rows map deployment fraction to the ≥500 Mbps share and offload for
	// each adopter-selection strategy.
	Random, TopDegree []StrategyRow
}

// StrategyRow is one (deployment fraction, outcome) sample.
type StrategyRow struct {
	Deployment float64
	AtLeast500 float64
	Offload    float64
	MeanMbps   float64
}

// TopDegreeMask marks the ceil(frac*N) highest-degree ASes as capable.
func TopDegreeMask(g *topo.Graph, frac float64) []bool {
	if frac >= 1 {
		return nil
	}
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	mask := make([]bool, g.N())
	for _, v := range order[:int(frac*float64(g.N()))] {
		mask[v] = true
	}
	return mask
}

// RunStrategy sweeps deployment 10%..50% under both adopter strategies.
func RunStrategy(o Options) (*Strategy, error) {
	o = o.withDefaults()
	g, err := Topology(o)
	if err != nil {
		return nil, err
	}
	flows, err := uniformFor(o, g)
	if err != nil {
		return nil, err
	}
	out := &Strategy{}
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		for _, strat := range []string{"random", "top-degree"} {
			var mask []bool
			if strat == "random" {
				mask = DeploymentMask(g.N(), frac, o.Seed+700)
			} else {
				mask = TopDegreeMask(g, frac)
			}
			res, err := netsim.Run(g, flows, netsim.Config{
				Policy: netsim.PolicyMIFO, Capable: mask, Workers: o.Workers, Recorder: o.Recorder,
			})
			if err != nil {
				return nil, err
			}
			row := StrategyRow{
				Deployment: frac,
				AtLeast500: res.FractionAtLeastMbps(500),
				Offload:    res.OffloadFraction(),
				MeanMbps:   res.MeanThroughputMbps(),
			}
			if strat == "random" {
				out.Random = append(out.Random, row)
			} else {
				out.TopDegree = append(out.TopDegree, row)
			}
		}
	}
	return out, nil
}

// Series renders the two strategies as plot series (x: deployment %, y:
// % of flows >= 500 Mbps).
func (s *Strategy) Series() []metrics.Series {
	mk := func(name string, rows []StrategyRow) metrics.Series {
		out := metrics.Series{Name: name}
		for _, r := range rows {
			out.Rows = append(out.Rows, metrics.Row{X: 100 * r.Deployment, Y: 100 * r.AtLeast500})
		}
		return out
	}
	return []metrics.Series{mk("random adopters", s.Random), mk("top-degree adopters", s.TopDegree)}
}
