package experiments

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/internal/bgp"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Paper-scale harness: the memory and convergence story at the paper's
// 44,340-AS topology. Two modes share one entry point:
//
//   - Flow mode (Dests = K): install routes for K sampled stub
//     destinations, stream StreamFlows power-law flows from the top content
//     providers through netsim.RunStream with a hub link failing mid-run and
//     recovering later. This exercises the full pipeline — streaming
//     generator, bounded flow slots, incremental recompute, and (with
//     Options.Spans) the failure-to-data-plane convergence trace that
//     cmd/mifo-conv turns into latency CDFs.
//
//   - Table-only mode (AllDests): install a route table for every AS — the
//     full N×N routing state, the run that must fit the memory budget — and
//     converge one hub LinkDown/LinkUp pair through the incremental
//     recompute path. No flow simulation: a router-level mirror at N
//     destinations would cost routers × dests FIB entries, which is exactly
//     the quadratic blow-up the compact tables avoid.
//
// Peak RSS is read from /proc/self/status (VmHWM) so the number includes
// everything the process touched, not just the Go heap; MemBudgetMB turns
// the budget into a soft runtime memory limit for the run's duration and
// into a hard pass/fail verdict on the result.

// PaperScaleConfig selects the paper-scale mode and budget.
type PaperScaleConfig struct {
	// Dests is how many destination ASes get routing tables in flow mode
	// (default 12). Ignored when AllDests is set.
	Dests int
	// AllDests switches to table-only mode: every AS is a destination.
	AllDests bool
	// StreamFlows is how many flows the streaming simulator pulls in flow
	// mode (default Options.Flows).
	StreamFlows int
	// MemBudgetMB, when positive, is the peak-RSS budget. The run gets a
	// soft runtime memory limit just under it and the result's OverBudget
	// verdict compares VmHWM against it.
	MemBudgetMB int
}

// PaperScale is the result of one paper-scale run.
type PaperScale struct {
	// Nodes and Links describe the topology; GraphMem its CSR footprint.
	Nodes, Links int
	GraphMem     topo.MemStats

	// Dests is the number of installed destinations; TableOnly reports
	// which mode ran.
	Dests     int
	TableOnly bool
	// BuildSec is the wall-clock time of the initial full table build.
	BuildSec float64
	// TableMem is the packed routing state's footprint after the build.
	TableMem bgp.TableMemStats

	// FailedLink is the hub link the run fails and recovers.
	FailedLink [2]int
	// DownSec and UpSec are the wall-clock incremental repair times for
	// the LinkDown and LinkUp events (table-only mode).
	DownSec, UpSec float64
	// SimSec is the wall-clock time of the streaming simulation (flow
	// mode); Stream holds its aggregate results.
	SimSec float64
	Stream *netsim.StreamResults

	// Routing counts the run's route-computation work; SkippedPct is the
	// share of per-destination recomputes the dirty-set derivation proved
	// unnecessary.
	Routing    bgp.TableStats
	SkippedPct float64

	// PeakRSS is the process peak resident set in bytes, from RSSSource
	// ("VmHWM" or the runtime fallback). Note VmHWM is a process-lifetime
	// high-water mark: run paperscale in its own process for a clean read.
	PeakRSS   int64
	RSSSource string
	// BudgetBytes and OverBudget report the MemBudgetMB verdict.
	BudgetBytes int64
	OverBudget  bool
}

// RunPaperScale executes the paper-scale memory/convergence experiment.
func RunPaperScale(o Options, cfg PaperScaleConfig) (*PaperScale, error) {
	o = o.withDefaults()
	g, err := Topology(o)
	if err != nil {
		return nil, err
	}
	if cfg.MemBudgetMB > 0 {
		// Soft-limit the heap a sliver under the budget so the GC defends
		// the VmHWM verdict; restored before returning.
		budget := int64(cfg.MemBudgetMB) << 20
		prev := debug.SetMemoryLimit(-1)
		debug.SetMemoryLimit(budget - budget/16)
		defer debug.SetMemoryLimit(prev)
	}

	r := &PaperScale{Nodes: g.N(), Links: g.Links(), GraphMem: g.MemStats(), TableOnly: cfg.AllDests}
	a, b := hubLink(g)
	r.FailedLink = [2]int{a, b}

	if cfg.AllDests {
		err = r.runTableOnly(g, o)
	} else {
		err = r.runFlows(g, o, cfg)
	}
	if err != nil {
		return nil, err
	}

	if total := r.Routing.IncrementalComputes + r.Routing.CleanSkipped; total > 0 {
		r.SkippedPct = 100 * float64(r.Routing.CleanSkipped) / float64(total)
	}
	r.PeakRSS, r.RSSSource = peakRSS()
	if cfg.MemBudgetMB > 0 {
		r.BudgetBytes = int64(cfg.MemBudgetMB) << 20
		r.OverBudget = r.PeakRSS > r.BudgetBytes
	}
	return r, nil
}

// runTableOnly builds the all-destinations table and converges one
// LinkDown/LinkUp pair. The build is heap-backed, not arena-backed: the
// superseded tables of the convergence events must be collectable, or the
// run would retain live + dirty instead of live.
func (r *PaperScale) runTableOnly(g *topo.Graph, o Options) error {
	dsts := make([]int, g.N())
	for i := range dsts {
		dsts[i] = i
	}
	r.Dests = len(dsts)

	start := time.Now()
	t := bgp.NewHeapTable(g, dsts, o.Workers)
	r.BuildSec = time.Since(start).Seconds()
	r.TableMem = t.MemStats()

	start = time.Now()
	t.LinkDown(r.FailedLink[0], r.FailedLink[1])
	r.DownSec = time.Since(start).Seconds()
	start = time.Now()
	t.LinkUp(r.FailedLink[0], r.FailedLink[1])
	r.UpSec = time.Since(start).Seconds()
	r.Routing = t.Stats()
	return nil
}

// runFlows streams power-law traffic from the top content providers to the
// sampled stub destinations while the hub link fails and recovers.
func (r *PaperScale) runFlows(g *topo.Graph, o Options, cfg PaperScaleConfig) error {
	k := cfg.Dests
	if k <= 0 {
		k = 12
	}
	dsts := sampleStubs(g, k)
	if len(dsts) == 0 {
		return fmt.Errorf("experiments: paperscale: topology has no stub ASes to use as destinations")
	}
	r.Dests = len(dsts)

	nProviders := 64
	if nProviders > g.N() {
		nProviders = g.N()
	}
	providers := traffic.RankContentProviders(g, nProviders)

	// The committed table footprint: same arena-backed build the serving
	// path uses. The simulator below builds its own copy.
	start := time.Now()
	r.TableMem = bgp.NewTable(g, dsts, o.Workers).MemStats()
	r.BuildSec = time.Since(start).Seconds()

	flows := cfg.StreamFlows
	if flows <= 0 {
		flows = o.Flows
	}
	stream, err := traffic.NewPowerLawStream(traffic.PowerLawConfig{
		Providers: providers, Consumers: dsts, Alpha: 1.0,
		ArrivalRate: o.ArrivalRate, SizeBits: 8e6, Seed: o.Seed + 1100,
	})
	if err != nil {
		return err
	}
	// Outage across the middle of the horizon, as in the resilience
	// experiment: failure injection, repair, and recovery all land while
	// flows are in flight.
	horizon := float64(flows) / o.ArrivalRate
	failure := netsim.LinkFailure{
		A: r.FailedLink[0], B: r.FailedLink[1],
		At: 0.35 * horizon, RecoverAt: 0.7 * horizon,
	}
	ncfg := netsim.Config{
		Policy:              netsim.PolicyMIFO,
		Workers:             o.Workers,
		Failures:            []netsim.LinkFailure{failure},
		ReconvergenceDelay:  horizon / 20,
		CongestionThreshold: o.CongestionThreshold,
		ReturnThreshold:     o.ReturnThreshold,
		Quality:             o.Quality,
		Recorder:            o.Recorder,
		Spans:               o.Spans,
		TSDB:                o.TSDB,
	}
	start = time.Now()
	res, err := netsim.RunStream(g, stream, dsts, flows, ncfg)
	if err != nil {
		return err
	}
	r.SimSec = time.Since(start).Seconds()
	r.Stream = res
	r.Routing = res.Routing
	return nil
}

// hubLink returns the highest-degree AS and its lowest-indexed neighbor —
// the deterministic "big blast radius" failure used at paper scale, where
// the resilience experiment's busiest-link search (a full workload scan
// plus trial recomputes) would dwarf the measurement.
func hubLink(g *topo.Graph) (int, int) {
	hub := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	return hub, int(g.Neighbors(hub)[0].AS)
}

// sampleStubs returns up to k stub ASes spread evenly across the stub
// population, deterministically.
func sampleStubs(g *topo.Graph, k int) []int {
	stubs := traffic.StubASes(g)
	if k >= len(stubs) {
		return stubs
	}
	out := make([]int, k)
	for i := range out {
		out[i] = stubs[i*len(stubs)/k]
	}
	return out
}

// peakRSS reads the process peak resident set from /proc/self/status
// (VmHWM), falling back to the runtime's OS-memory estimate on platforms
// without procfs.
func peakRSS() (int64, string) {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			f := strings.Fields(line)
			if len(f) >= 2 {
				if kb, perr := strconv.ParseInt(f[1], 10, 64); perr == nil {
					return kb << 10, "VmHWM"
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys), "runtime.MemStats.Sys"
}
