package netd

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dataplane"
)

// TestFlightRecorderStitchesAcrossUDP: with a recorder attached, a
// packet's hops — observed at different nodes, carried between them as
// real datagrams — are stitched into one journey by the packet ID in the
// IPv4 Identification field, and the journey passes the invariant auditor.
func TestFlightRecorderStitchesAcrossUDP(t *testing.T) {
	g := fig2aGraph(t)
	dep := core.NewDeployment(g, core.Config{})
	dep.InstallDestination(bgp.Compute(g, 0))
	// Congest AS 1's default so the journey includes a deflection.
	if err := dep.SetLinkLoad(1, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	dep.Refresh()
	f, err := NewFabric(dep.Net)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := audit.NewRecorder(audit.Options{Writer: &buf})
	f.AttachRecorder(rec)
	f.Start()
	defer f.Stop()

	const packets = 20
	for i := 0; i < packets; i++ {
		f.Inject(&dataplane.Packet{
			Flow: dataplane.FlowKey{SrcAddr: 9, DstAddr: dataplane.PrefixAddr(0), SrcPort: uint16(i), Proto: 6},
			Dst:  0,
		}, dep.Routers(1)[0].ID)
	}
	// Loopback UDP is best-effort; wait for most journeys to finalize
	// rather than demanding all twenty.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && rec.Stats().Delivered < packets/2 {
		time.Sleep(5 * time.Millisecond)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	st := rec.Stats()
	if st.Delivered == 0 {
		t.Fatalf("no delivered journeys recorded: %+v", st)
	}
	if st.Violations != 0 {
		t.Fatalf("invariant violations across the UDP fabric: %+v\nrecords: %+v",
			st, rec.ViolatingRecords())
	}
	if st.Deflections == 0 {
		t.Fatalf("deflection never recorded despite congested default: %+v", st)
	}

	// Each delivered journey must span multiple hops at distinct routers —
	// proof the packet ID survived marshaling and stitched cross-node
	// observations into one record.
	checked := 0
	if err := audit.ReadRecords(&buf, func(r audit.Record) error {
		if r.Verdict != audit.VerdictDelivered {
			return nil
		}
		checked++
		if len(r.Steps) < 2 {
			t.Fatalf("delivered journey has %d steps, want the full multi-hop trip: %+v", len(r.Steps), r)
		}
		if r.Steps[0].Router == r.Steps[len(r.Steps)-1].Router {
			t.Fatalf("journey start and end at the same router: %+v", r)
		}
		if r.PktID == 0 {
			t.Fatalf("journey missing the stamped packet ID: %+v", r)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no delivered records in the JSONL stream")
	}
}

// TestFlightRecorderSeesTagDropOverUDP: when every default is congested,
// the tag-check drops the packet at the second AS; the recorder must
// finalize that journey as a justified valley-free drop, not a violation.
func TestFlightRecorderSeesTagDropOverUDP(t *testing.T) {
	g := fig2aGraph(t)
	dep := core.NewDeployment(g, core.Config{})
	dep.InstallDestination(bgp.Compute(g, 0))
	for as := 1; as <= 3; as++ {
		dep.SetLinkLoad(as, 0, 1e9)
	}
	dep.Refresh()
	f, err := NewFabric(dep.Net)
	if err != nil {
		t.Fatal(err)
	}
	rec := audit.NewRecorder(audit.Options{})
	f.AttachRecorder(rec)
	f.Start()
	defer f.Stop()

	f.Inject(&dataplane.Packet{
		Flow: dataplane.FlowKey{SrcAddr: 10, DstAddr: dataplane.PrefixAddr(0), DstPort: 81, Proto: 6},
		Dst:  0,
	}, dep.Routers(1)[0].ID)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && rec.Stats().Dropped == 0 {
		time.Sleep(5 * time.Millisecond)
	}

	st := rec.Stats()
	if st.Dropped != 1 {
		t.Fatalf("tag-drop journey not finalized: %+v", st)
	}
	if st.Violations != 0 {
		t.Fatalf("justified tag-drop flagged as a violation: %+v", rec.ViolatingRecords())
	}
}
