package netd

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dataplane"
)

// BenchmarkUDPForwarding measures end-to-end datagram throughput of the
// socket fabric on the Fig. 2(a) topology (inject at AS 1, deliver at
// AS 0, two sockets on the path).
func BenchmarkUDPForwarding(b *testing.B) {
	g := fig2aGraph(b)
	dep := core.NewDeployment(g, core.Config{})
	dep.InstallDestination(bgp.Compute(g, 0))
	f, err := NewFabric(dep.Net)
	if err != nil {
		b.Fatal(err)
	}
	f.Start()
	defer f.Stop()
	origin := dep.Routers(1)[0].ID

	b.ResetTimer()
	delivered := 0
	for i := 0; i < b.N; i++ {
		f.Inject(&dataplane.Packet{
			Flow: dataplane.FlowKey{
				SrcAddr: 1, DstAddr: dataplane.PrefixAddr(0),
				SrcPort: uint16(i), Proto: 6,
			},
			Dst: 0,
		}, origin)
		select {
		case <-f.Deliveries():
			delivered++
		case <-time.After(2 * time.Second):
			b.Fatalf("delivery %d timed out", i)
		}
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkWireMarshal measures the serialization hot path.
func BenchmarkWireMarshal(b *testing.B) {
	p := &dataplane.Packet{
		Flow: dataplane.FlowKey{SrcAddr: 1, DstAddr: dataplane.PrefixAddr(3), DstPort: 80, Proto: 6},
		Dst:  3, Tag: true, TTL: 64, Encap: true, OuterSrc: 1, OuterDst: 2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire := dataplane.MarshalPacket(p)
		if _, err := dataplane.UnmarshalPacket(wire); err != nil {
			b.Fatal(err)
		}
	}
}
