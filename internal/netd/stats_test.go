package netd

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/obs"
	"repro/internal/topo"
)

// outcomes sums the terminal counters a received or injected packet can
// land in.
func outcomes(s Stats) int64 {
	return s.Forwarded + s.Delivered + s.DropNoRoute + s.DropValleyFree + s.DropTTL + s.ParseErrors
}

// TestStatsInvariantUnderLoad asserts the conservation invariant documented
// on Stats — Received + Injected == Forwarded + Delivered + drops +
// ParseErrors — after a multi-node run with concurrent daemon goroutines,
// live tracing, and the link monitor all running. The Makefile's race
// matrix runs this package under -race, so the invariant doubles as a data
// race probe over every counter path.
func TestStatsInvariantUnderLoad(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dep := core.NewDeployment(g, core.Config{})
	dep.InstallDestination(bgp.Compute(g, 0))
	for v := 0; v < g.N(); v++ {
		for j, nb := range g.Neighbors(v) {
			if (v+j)%3 == 0 {
				dep.SetLinkLoad(v, int(nb.AS), 1e9)
			}
		}
	}

	f, err := NewFabric(dep.Net)
	if err != nil {
		t.Fatal(err)
	}
	f.EnableTrace(obs.NewTrace(512))
	f.Start()
	defer f.Stop()
	stopMon := f.MonitorLoads(2 * time.Millisecond)
	defer stopMon()
	rt := core.NewRuntime(dep, 2*time.Millisecond)
	rt.Instrument(f.Registry())
	rt.Start()
	defer rt.Stop()

	const packets = 400
	for i := 0; i < packets; i++ {
		if i%16 == 15 {
			time.Sleep(time.Millisecond) // avoid loopback buffer overruns
		}
		src := 1 + i%(g.N()-1)
		f.Inject(&dataplane.Packet{
			Flow: dataplane.FlowKey{SrcAddr: uint32(src), DstAddr: dataplane.PrefixAddr(0), SrcPort: uint16(i), Proto: 6},
			Dst:  0,
		}, dep.Routers(src)[0].ID)
	}

	// Quiescence: every injected packet (and every hop it spawned) has
	// reached a terminal counter and the totals have stopped moving.
	waitStats(t, f, func(s Stats) bool { return s.Injected == packets && outcomes(s) == s.Received+s.Injected })
	var last Stats
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur := f.TotalStats()
		if cur == last {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never quiesced; totals: %+v", cur)
		}
		last = cur
		time.Sleep(20 * time.Millisecond)
	}

	s := f.TotalStats()
	if got, want := outcomes(s), s.Received+s.Injected; got != want {
		t.Errorf("outcome sum %d != received+injected %d; totals: %+v", got, want, s)
	}
	if s.Delivered == 0 {
		t.Error("nothing was delivered")
	}
	// The invariant holds per node too, not just in aggregate.
	for i := range dep.Net.Routers {
		ns := f.StatsOf(dataplane.RouterID(i))
		if outcomes(ns) != ns.Received+ns.Injected {
			t.Errorf("router %d violates the invariant: %+v", i, ns)
		}
	}
}
