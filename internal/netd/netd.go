// Package netd runs a dataplane.Network as a distributed system: every
// router becomes a goroutine with its own UDP socket on the loopback
// interface, packets travel between routers as real IPv4 datagrams
// (dataplane.MarshalPacket), and the forwarding engine — tag-check,
// IP-in-IP hand-off, FIB lookups — executes on the receive path of each
// node.
//
// Together with core.Runtime (daemon goroutines updating FIBs) this is the
// in-process analog of the paper's prototype: forwarding engine in the
// kernel, MIFO daemon beside it, real packets in between (Section V).
package netd

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
)

// Delivery is a packet that reached its destination AS.
type Delivery struct {
	// Packet is the delivered (decapsulated) packet.
	Packet dataplane.Packet
	// At is the router that delivered it.
	At dataplane.RouterID
}

// Stats aggregates a node's counters.
type Stats struct {
	Received                             int64
	Forwarded                            int64
	Deflected                            int64
	Delivered                            int64
	DropNoRoute, DropValleyFree, DropTTL int64
	ParseErrors                          int64
}

// node is one router's networked incarnation.
type node struct {
	router *dataplane.Router
	conn   *net.UDPConn
	// peerAddr[port] is the UDP address of the router on the other side.
	peerAddr []*net.UDPAddr
	// portBySender resolves an incoming datagram's source address to the
	// local port it arrived on.
	portBySender map[string]int
	// txBytes counts bytes written per port, sampled by the link monitor.
	txBytes []atomic.Int64

	received, forwarded, deflected, delivered atomic.Int64
	dropNoRoute, dropValleyFree, dropTTL      atomic.Int64
	parseErrors                               atomic.Int64
}

// Fabric wires and runs all nodes of a network.
type Fabric struct {
	Net   *dataplane.Network
	nodes []*node

	deliveries chan Delivery
	wg         sync.WaitGroup
	started    bool
	mu         sync.Mutex
}

// NewFabric binds one loopback UDP socket per router and cross-wires peer
// addresses according to the network's ports. Call Start to begin serving.
func NewFabric(n *dataplane.Network) (*Fabric, error) {
	f := &Fabric{Net: n, deliveries: make(chan Delivery, 1024)}
	f.nodes = make([]*node, len(n.Routers))
	for i, r := range n.Routers {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			f.closeAll()
			return nil, fmt.Errorf("netd: bind router %d: %w", i, err)
		}
		f.nodes[i] = &node{
			router:       r,
			conn:         conn,
			peerAddr:     make([]*net.UDPAddr, len(r.Ports)),
			portBySender: make(map[string]int, len(r.Ports)),
			txBytes:      make([]atomic.Int64, len(r.Ports)),
		}
	}
	// Second pass: every port learns its peer's socket address.
	for i, nd := range f.nodes {
		r := n.Routers[i]
		for pi := range r.Ports {
			port := &r.Ports[pi]
			if port.Peer < 0 {
				continue
			}
			peer := f.nodes[port.Peer].conn.LocalAddr().(*net.UDPAddr)
			nd.peerAddr[pi] = peer
			nd.portBySender[peer.String()] = pi
		}
	}
	return f, nil
}

func (f *Fabric) closeAll() {
	for _, nd := range f.nodes {
		if nd != nil && nd.conn != nil {
			nd.conn.Close()
		}
	}
}

// Start launches every node's receive loop.
func (f *Fabric) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return
	}
	f.started = true
	for _, nd := range f.nodes {
		f.wg.Add(1)
		go f.serve(nd)
	}
}

// Stop closes all sockets and waits for the receive loops to exit.
func (f *Fabric) Stop() {
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return
	}
	f.started = false
	f.mu.Unlock()
	f.closeAll()
	f.wg.Wait()
}

// Deliveries streams packets that reached their destination AS.
func (f *Fabric) Deliveries() <-chan Delivery { return f.deliveries }

// Inject originates a packet at a router's host port: the node processes
// it exactly as the engine would process host traffic (in = -1).
func (f *Fabric) Inject(p *dataplane.Packet, origin dataplane.RouterID) {
	if p.TTL <= 0 {
		p.TTL = dataplane.DefaultTTL
	}
	f.process(f.nodes[origin], p, -1)
}

// Addr returns the UDP address a router listens on (for external senders).
func (f *Fabric) Addr(id dataplane.RouterID) *net.UDPAddr {
	return f.nodes[id].conn.LocalAddr().(*net.UDPAddr)
}

// StatsOf returns a router's counters.
func (f *Fabric) StatsOf(id dataplane.RouterID) Stats {
	nd := f.nodes[id]
	return Stats{
		Received:       nd.received.Load(),
		Forwarded:      nd.forwarded.Load(),
		Deflected:      nd.deflected.Load(),
		Delivered:      nd.delivered.Load(),
		DropNoRoute:    nd.dropNoRoute.Load(),
		DropValleyFree: nd.dropValleyFree.Load(),
		DropTTL:        nd.dropTTL.Load(),
		ParseErrors:    nd.parseErrors.Load(),
	}
}

// TotalStats sums counters across all routers.
func (f *Fabric) TotalStats() Stats {
	var t Stats
	for i := range f.nodes {
		s := f.StatsOf(dataplane.RouterID(i))
		t.Received += s.Received
		t.Forwarded += s.Forwarded
		t.Deflected += s.Deflected
		t.Delivered += s.Delivered
		t.DropNoRoute += s.DropNoRoute
		t.DropValleyFree += s.DropValleyFree
		t.DropTTL += s.DropTTL
		t.ParseErrors += s.ParseErrors
	}
	return t
}

// serve is one node's receive loop.
func (f *Fabric) serve(nd *node) {
	defer f.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := nd.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed by Stop
		}
		nd.received.Add(1)
		p, perr := dataplane.UnmarshalPacket(buf[:n])
		if perr != nil {
			nd.parseErrors.Add(1)
			continue
		}
		in, known := nd.portBySender[from.String()]
		if !known {
			in = -1 // treat unknown senders as host traffic
		}
		f.process(nd, p, in)
	}
}

// process runs the forwarding engine and acts on its verdict.
func (f *Fabric) process(nd *node, p *dataplane.Packet, in int) {
	if p.TTL <= 0 {
		nd.dropTTL.Add(1)
		return
	}
	p.TTL--
	act := nd.router.Forward(p, in)
	switch act.Verdict {
	case dataplane.VerdictDeliver:
		nd.delivered.Add(1)
		select {
		case f.deliveries <- Delivery{Packet: *p, At: nd.router.ID}:
		default: // consumer not keeping up; stats still count it
		}
	case dataplane.VerdictDrop:
		switch act.Reason {
		case dataplane.DropValleyFree:
			nd.dropValleyFree.Add(1)
		case dataplane.DropTTL:
			nd.dropTTL.Add(1)
		default:
			nd.dropNoRoute.Add(1)
		}
	case dataplane.VerdictForward:
		addr := nd.peerAddr[act.Port]
		if addr == nil {
			nd.dropNoRoute.Add(1)
			return
		}
		if act.Deflected {
			nd.deflected.Add(1)
		}
		nd.forwarded.Add(1)
		// Best-effort datagram send, like the real data plane.
		wire := dataplane.MarshalPacket(p)
		nd.txBytes[act.Port].Add(int64(len(wire)))
		nd.conn.WriteToUDP(wire, addr)
	}
}

// MonitorLoads starts the MIFO link monitor: every interval each node
// samples its per-port transmit counters, smooths them with an EWMA meter
// (core.Meter), and publishes the result as the port's utilization and
// queue-ratio signal. From then on congestion detection — and therefore
// deflection — is driven entirely by the traffic actually crossing the
// sockets. The returned stop function halts the monitor.
func (f *Fabric) MonitorLoads(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		meters := make([][]*core.Meter, len(f.nodes))
		prev := make([][]int64, len(f.nodes))
		for i, nd := range f.nodes {
			meters[i] = make([]*core.Meter, len(nd.txBytes))
			prev[i] = make([]int64, len(nd.txBytes))
			for p := range meters[i] {
				meters[i][p] = core.NewMeter(4 * interval.Seconds())
			}
		}
		start := time.Now()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				now := time.Since(start).Seconds()
				for i, nd := range f.nodes {
					for p := range nd.txBytes {
						cur := nd.txBytes[p].Load()
						meters[i][p].Observe(float64(cur-prev[i][p])*8, now)
						prev[i][p] = cur
						rate := meters[i][p].Rate(now)
						nd.router.SetUtilization(p, rate)
						capacity := nd.router.Ports[p].CapacityBps
						if capacity > 0 {
							ratio := rate / capacity
							if ratio > 1 {
								ratio = 1
							}
							nd.router.SetQueueRatio(p, ratio)
						}
					}
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
