// Package netd runs a dataplane.Network as a distributed system: every
// router becomes a goroutine with its own UDP socket on the loopback
// interface, packets travel between routers as real IPv4 datagrams
// (dataplane.MarshalPacket), and the forwarding engine — tag-check,
// IP-in-IP hand-off, FIB lookups — executes on the receive path of each
// node.
//
// Together with core.Runtime (daemon goroutines updating FIBs) this is the
// in-process analog of the paper's prototype: forwarding engine in the
// kernel, MIFO daemon beside it, real packets in between (Section V).
package netd

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// Delivery is a packet that reached its destination AS.
type Delivery struct {
	// Packet is the delivered (decapsulated) packet.
	Packet dataplane.Packet
	// At is the router that delivered it.
	At dataplane.RouterID
}

// Stats aggregates a node's counters.
type Stats struct {
	// Received counts datagrams that arrived on the node's socket;
	// Injected counts packets originated locally through Inject. Every
	// received or injected packet ends in exactly one of the outcome
	// counters below, so
	//
	//	Received + Injected ==
	//	    Forwarded + Delivered + drops + ParseErrors
	//
	// holds at quiescence (the invariant TestStatsInvariantUnderLoad
	// asserts under -race).
	Received                             int64
	Injected                             int64
	Forwarded                            int64
	Deflected                            int64
	Delivered                            int64
	DropNoRoute, DropValleyFree, DropTTL int64
	ParseErrors                          int64
}

// node is one router's networked incarnation. Its counters are handles
// into the fabric's metrics registry (label router="<id>"), resolved once
// at construction so the receive path never touches the registry's locks.
type node struct {
	router *dataplane.Router
	conn   *net.UDPConn
	// peerAddr[port] is the UDP address of the router on the other side.
	peerAddr []*net.UDPAddr
	// portBySender resolves an incoming datagram's source address to the
	// local port it arrived on.
	portBySender map[string]int
	// txBytes counts bytes written per port, sampled by the link monitor.
	txBytes []atomic.Int64

	received, injected, forwarded, deflected, delivered *obs.Counter
	dropNoRoute, dropValleyFree, dropTTL                *obs.Counter
	parseErrors                                         *obs.Counter
	// procLatency is the node's receive-path processing time: unmarshal
	// plus forwarding decision plus transmit.
	procLatency *obs.Histogram
}

// Fabric wires and runs all nodes of a network.
type Fabric struct {
	Net   *dataplane.Network
	nodes []*node

	reg      *obs.Registry
	linkRate *obs.GaugeVec

	deliveries chan Delivery
	wg         sync.WaitGroup
	started    bool
	mu         sync.Mutex

	recorder *audit.Recorder
	// tsLinkUtil[router][port] is the per-link utilization series the
	// link monitor samples each tick (nil until AttachTSDB).
	tsLinkUtil [][]*tsdb.Series
	// nextPktID stamps injected packets that carry no ID of their own, so
	// the flight recorder can stitch each packet's hops — observed at
	// different nodes — into one journey. The ID rides in the IPv4
	// Identification field of the marshaled datagram.
	nextPktID atomic.Uint32
}

// NewFabric binds one loopback UDP socket per router and cross-wires peer
// addresses according to the network's ports. Call Start to begin serving.
func NewFabric(n *dataplane.Network) (*Fabric, error) {
	f := &Fabric{Net: n, deliveries: make(chan Delivery, 1024), reg: obs.NewRegistry()}
	recv := f.reg.CounterVec("netd_received_total", "datagrams received on the node's UDP socket", "router")
	inj := f.reg.CounterVec("netd_injected_total", "packets originated locally via Inject", "router")
	fwd := f.reg.CounterVec("netd_forwarded_total", "packets sent towards a peer router", "router")
	defl := f.reg.CounterVec("netd_deflected_total", "packets forwarded on the alternative path", "router")
	delv := f.reg.CounterVec("netd_delivered_total", "packets delivered at their destination AS", "router")
	drops := f.reg.CounterVec("netd_drops_total", "packets discarded, by reason", "router", "reason")
	perr := f.reg.CounterVec("netd_parse_errors_total", "datagrams that failed to unmarshal", "router")
	lat := f.reg.HistogramVec("netd_process_seconds", "receive-path processing time per datagram", obs.DurationBuckets, "router")
	f.linkRate = f.reg.GaugeVec("netd_link_rate_bps", "EWMA-smoothed transmit rate per port (bits/s), from the link monitor", "router", "port")
	f.nodes = make([]*node, len(n.Routers))
	for i, r := range n.Routers {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			f.closeAll()
			return nil, fmt.Errorf("netd: bind router %d: %w", i, err)
		}
		id := strconv.Itoa(i)
		f.nodes[i] = &node{
			router:         r,
			conn:           conn,
			peerAddr:       make([]*net.UDPAddr, len(r.Ports)),
			portBySender:   make(map[string]int, len(r.Ports)),
			txBytes:        make([]atomic.Int64, len(r.Ports)),
			received:       recv.With(id),
			injected:       inj.With(id),
			forwarded:      fwd.With(id),
			deflected:      defl.With(id),
			delivered:      delv.With(id),
			dropNoRoute:    drops.With(id, "no_route"),
			dropValleyFree: drops.With(id, "valley_free"),
			dropTTL:        drops.With(id, "ttl"),
			parseErrors:    perr.With(id),
			procLatency:    lat.With(id),
		}
	}
	// Second pass: every port learns its peer's socket address.
	for i, nd := range f.nodes {
		r := n.Routers[i]
		for pi := range r.Ports {
			port := &r.Ports[pi]
			if port.Peer < 0 {
				continue
			}
			peer := f.nodes[port.Peer].conn.LocalAddr().(*net.UDPAddr)
			nd.peerAddr[pi] = peer
			nd.portBySender[peer.String()] = pi
		}
	}
	return f, nil
}

func (f *Fabric) closeAll() {
	for _, nd := range f.nodes {
		if nd != nil && nd.conn != nil {
			nd.conn.Close() //mifolint:ignore droppederr teardown of an in-memory pipe during Stop; the peer end is closed concurrently and a double-close error is expected
		}
	}
}

// Start launches every node's receive loop.
func (f *Fabric) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return
	}
	f.started = true
	for _, nd := range f.nodes {
		f.wg.Add(1)
		go f.serve(nd)
	}
}

// Stop closes all sockets and waits for the receive loops to exit.
func (f *Fabric) Stop() {
	f.mu.Lock()
	if !f.started {
		f.mu.Unlock()
		return
	}
	f.started = false
	f.mu.Unlock()
	f.closeAll()
	f.wg.Wait()
}

// Deliveries streams packets that reached their destination AS.
func (f *Fabric) Deliveries() <-chan Delivery { return f.deliveries }

// Inject originates a packet at a router's host port: the node processes
// it exactly as the engine would process host traffic (in = -1).
func (f *Fabric) Inject(p *dataplane.Packet, origin dataplane.RouterID) {
	if p.TTL <= 0 {
		p.TTL = dataplane.DefaultTTL
	}
	if p.ID == 0 {
		p.ID = uint16(f.nextPktID.Add(1))
	}
	nd := f.nodes[origin]
	nd.injected.Inc()
	f.process(nd, p, -1)
}

// Registry exposes the fabric's metrics registry — per-node counters,
// drop reasons, and receive-path latency histograms — for exposition on a
// debug endpoint or for sharing with other instrumented components.
func (f *Fabric) Registry() *obs.Registry { return f.reg }

// EnableTrace attaches a forwarding-decision trace to every router of the
// fabric. Pass nil to detach.
func (f *Fabric) EnableTrace(tr *obs.Trace) {
	for _, nd := range f.nodes {
		nd.router.Trace = tr
	}
}

// AttachRecorder installs a flight recorder as the hop hook on every
// router, so each sampled packet's journey across the UDP fabric is
// recorded and audited (hops are stitched by the packet ID carried in the
// IPv4 Identification field). Pass nil to detach. Like EnableTrace, call
// it before Start: the hook field is read unlocked on the receive path.
func (f *Fabric) AttachRecorder(rec *audit.Recorder) {
	f.recorder = rec
	var hook dataplane.HopFunc
	if rec != nil {
		hook = rec.RouterHook()
	}
	for _, nd := range f.nodes {
		nd.router.Hop = hook
	}
}

// AttachTSDB registers one utilization time series per wired port and
// has the link monitor sample it every tick, so congestion on the UDP
// fabric becomes episode-analyzable history (timestamps are wall-clock
// nanoseconds). Call it before MonitorLoads; the monitor goroutine is
// the single writer the tsdb sample path requires.
func (f *Fabric) AttachTSDB(db *tsdb.Store) {
	if db == nil {
		f.tsLinkUtil = nil
		return
	}
	vec := db.SeriesVec("netd_link_util", "per-port transmit utilization (smoothed rate / capacity)", "router", "port")
	f.tsLinkUtil = make([][]*tsdb.Series, len(f.nodes))
	for i, nd := range f.nodes {
		f.tsLinkUtil[i] = make([]*tsdb.Series, len(nd.txBytes))
		r := f.Net.Routers[i]
		for p := range r.Ports {
			if r.Ports[p].Peer < 0 {
				continue
			}
			f.tsLinkUtil[i][p] = vec.With(strconv.Itoa(i), strconv.Itoa(p))
		}
	}
	db.SetEpisodeSpec(tsdb.EpisodeSpec{Util: "netd_link_util"})
}

// Addr returns the UDP address a router listens on (for external senders).
func (f *Fabric) Addr(id dataplane.RouterID) *net.UDPAddr {
	return f.nodes[id].conn.LocalAddr().(*net.UDPAddr)
}

// StatsOf returns a router's counters.
func (f *Fabric) StatsOf(id dataplane.RouterID) Stats {
	nd := f.nodes[id]
	return Stats{
		Received:       nd.received.Value(),
		Injected:       nd.injected.Value(),
		Forwarded:      nd.forwarded.Value(),
		Deflected:      nd.deflected.Value(),
		Delivered:      nd.delivered.Value(),
		DropNoRoute:    nd.dropNoRoute.Value(),
		DropValleyFree: nd.dropValleyFree.Value(),
		DropTTL:        nd.dropTTL.Value(),
		ParseErrors:    nd.parseErrors.Value(),
	}
}

// TotalStats sums counters across all routers.
func (f *Fabric) TotalStats() Stats {
	var t Stats
	for i := range f.nodes {
		s := f.StatsOf(dataplane.RouterID(i))
		t.Received += s.Received
		t.Injected += s.Injected
		t.Forwarded += s.Forwarded
		t.Deflected += s.Deflected
		t.Delivered += s.Delivered
		t.DropNoRoute += s.DropNoRoute
		t.DropValleyFree += s.DropValleyFree
		t.DropTTL += s.DropTTL
		t.ParseErrors += s.ParseErrors
	}
	return t
}

// serve is one node's receive loop.
func (f *Fabric) serve(nd *node) {
	defer f.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := nd.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed by Stop
		}
		start := time.Now()
		nd.received.Inc()
		p, perr := dataplane.UnmarshalPacket(buf[:n])
		if perr != nil {
			nd.parseErrors.Inc()
			continue
		}
		in, known := nd.portBySender[from.String()]
		if !known {
			in = -1 // treat unknown senders as host traffic
		}
		f.process(nd, p, in)
		nd.procLatency.Observe(time.Since(start).Seconds())
	}
}

// process runs the forwarding engine and acts on its verdict.
func (f *Fabric) process(nd *node, p *dataplane.Packet, in int) {
	if p.TTL <= 0 {
		nd.router.DropExpired(p, in)
		nd.dropTTL.Inc()
		return
	}
	p.TTL--
	act := nd.router.Forward(p, in)
	switch act.Verdict {
	case dataplane.VerdictDeliver:
		nd.delivered.Inc()
		select {
		case f.deliveries <- Delivery{Packet: *p, At: nd.router.ID}:
		default: // consumer not keeping up; stats still count it
		}
	case dataplane.VerdictDrop:
		switch act.Reason {
		case dataplane.DropValleyFree:
			nd.dropValleyFree.Inc()
		case dataplane.DropTTL:
			nd.dropTTL.Inc()
		default:
			nd.dropNoRoute.Inc()
		}
	case dataplane.VerdictForward:
		addr := nd.peerAddr[act.Port]
		if addr == nil {
			nd.dropNoRoute.Inc()
			return
		}
		if act.Deflected {
			nd.deflected.Inc()
		}
		nd.forwarded.Inc()
		// Best-effort datagram send, like the real data plane.
		wire := dataplane.MarshalPacket(p)
		nd.txBytes[act.Port].Add(int64(len(wire)))
		nd.conn.WriteToUDP(wire, addr)
	}
}

// MonitorLoads starts the MIFO link monitor: every interval each node
// samples its per-port transmit counters, smooths them with an EWMA meter
// (core.Meter), and publishes the result as the port's utilization and
// queue-ratio signal. From then on congestion detection — and therefore
// deflection — is driven entirely by the traffic actually crossing the
// sockets. The returned stop function halts the monitor.
func (f *Fabric) MonitorLoads(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		meters := make([][]*core.Meter, len(f.nodes))
		prev := make([][]int64, len(f.nodes))
		for i, nd := range f.nodes {
			meters[i] = make([]*core.Meter, len(nd.txBytes))
			prev[i] = make([]int64, len(nd.txBytes))
			for p := range meters[i] {
				meters[i][p] = core.NewMeter(4 * interval.Seconds())
				// Publish each meter's smoothed rate as a live gauge so
				// /metrics shows what the congestion signal actually sees.
				meters[i][p].Bind(f.linkRate.With(strconv.Itoa(i), strconv.Itoa(p)))
			}
		}
		start := time.Now()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				now := time.Since(start).Seconds()
				ts := time.Now().UnixNano()
				for i, nd := range f.nodes {
					for p := range nd.txBytes {
						cur := nd.txBytes[p].Load()
						meters[i][p].Observe(float64(cur-prev[i][p])*8, now)
						prev[i][p] = cur
						rate := meters[i][p].Rate(now)
						nd.router.SetUtilization(p, rate)
						capacity := nd.router.Ports[p].CapacityBps
						if capacity > 0 {
							ratio := rate / capacity
							if ratio > 1 {
								ratio = 1
							}
							nd.router.SetQueueRatio(p, ratio)
							if f.tsLinkUtil != nil && f.tsLinkUtil[i][p] != nil {
								f.tsLinkUtil[i][p].Sample(ts, ratio)
							}
						}
					}
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
