package netd

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/topo"
)

// fig2aGraph: AS 0 is a customer of 1, 2, 3, which peer in a triangle.
func fig2aGraph(t testing.TB) *topo.Graph {
	t.Helper()
	g, err := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func deployFig2a(t *testing.T) (*core.Deployment, *Fabric) {
	t.Helper()
	g := fig2aGraph(t)
	dep := core.NewDeployment(g, core.Config{})
	dep.InstallDestination(bgp.Compute(g, 0))
	f, err := NewFabric(dep.Net)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(f.Stop)
	return dep, f
}

func awaitDelivery(t *testing.T, f *Fabric, timeout time.Duration) (Delivery, bool) {
	t.Helper()
	select {
	case d := <-f.Deliveries():
		return d, true
	case <-time.After(timeout):
		return Delivery{}, false
	}
}

func TestUDPDefaultDelivery(t *testing.T) {
	dep, f := deployFig2a(t)
	p := &dataplane.Packet{
		Flow: dataplane.FlowKey{SrcAddr: 1, DstAddr: dataplane.PrefixAddr(0), DstPort: 80, Proto: 6},
		Dst:  0,
	}
	f.Inject(p, dep.Routers(1)[0].ID)
	d, ok := awaitDelivery(t, f, 2*time.Second)
	if !ok {
		t.Fatal("packet never delivered over UDP")
	}
	if dep.Net.Router(d.At).AS != 0 {
		t.Fatalf("delivered at AS %d, want 0", dep.Net.Router(d.At).AS)
	}
	if d.Packet.Flow.SrcAddr != 1 || d.Packet.Dst != 0 {
		t.Fatalf("payload mangled: %+v", d.Packet)
	}
}

func TestUDPDeflectionAndTagCheck(t *testing.T) {
	dep, f := deployFig2a(t)
	// Congest AS 1's default: its daemon installs the peer alternative.
	if err := dep.SetLinkLoad(1, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	dep.Refresh()
	p := &dataplane.Packet{
		Flow: dataplane.FlowKey{SrcAddr: 9, DstAddr: dataplane.PrefixAddr(0), DstPort: 80, Proto: 6},
		Dst:  0,
	}
	f.Inject(p, dep.Routers(1)[0].ID)
	d, ok := awaitDelivery(t, f, 2*time.Second)
	if !ok {
		t.Fatal("deflected packet never delivered")
	}
	if dep.Net.Router(d.At).AS != 0 {
		t.Fatalf("delivered at AS %d, want 0", dep.Net.Router(d.At).AS)
	}
	if got := f.StatsOf(dep.Routers(1)[0].ID).Deflected; got != 1 {
		t.Errorf("deflections at AS 1 = %d, want 1", got)
	}

	// Worst case: every default congested. The tag-check must drop the
	// packet at the second AS — across real sockets.
	for as := 1; as <= 3; as++ {
		dep.SetLinkLoad(as, 0, 1e9)
	}
	dep.Refresh()
	before := f.TotalStats()
	f.Inject(&dataplane.Packet{
		Flow: dataplane.FlowKey{SrcAddr: 10, DstAddr: dataplane.PrefixAddr(0), DstPort: 81, Proto: 6},
		Dst:  0,
	}, dep.Routers(1)[0].ID)
	waitStats(t, f, func(s Stats) bool { return s.DropValleyFree > before.DropValleyFree })
	after := f.TotalStats()
	if after.DropTTL != before.DropTTL {
		t.Errorf("TTL drops rose from %d to %d: a loop happened", before.DropTTL, after.DropTTL)
	}
}

func TestUDPEncapAcrossIBGP(t *testing.T) {
	// Expanded AS 0 (Fig. 2(c)): the deflection crosses iBGP with real
	// IP-in-IP datagrams between the two border routers' sockets.
	b := topo.NewBuilder(5)
	b.AddPC(1, 0).AddPC(2, 0).AddPC(3, 0)
	b.AddPC(1, 4).AddPC(2, 4).AddPC(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dep := core.NewDeployment(g, core.Config{ExpandASes: []int{0}})
	dep.InstallDestination(bgp.Compute(g, 4))
	if err := dep.SetLinkLoad(0, 1, 1e9); err != nil {
		t.Fatal(err)
	}
	dep.Refresh()
	f, err := NewFabric(dep.Net)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	egress, _, err := dep.EgressPort(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Inject(&dataplane.Packet{
		Flow: dataplane.FlowKey{SrcAddr: 5, DstAddr: dataplane.PrefixAddr(4), DstPort: 80, Proto: 6},
		Dst:  4,
	}, egress.ID)
	d, ok := awaitDelivery(t, f, 2*time.Second)
	if !ok {
		t.Fatal("encapsulated packet never delivered")
	}
	if dep.Net.Router(d.At).AS != 4 {
		t.Fatalf("delivered at AS %d, want 4", dep.Net.Router(d.At).AS)
	}
	if d.Packet.Encap {
		t.Error("packet still encapsulated at delivery")
	}
	if got := f.TotalStats().Deflected; got < 2 {
		t.Errorf("deflections = %d, want encap hand-off plus exit", got)
	}
}

func TestUDPLoopFreedomUnderStress(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 60, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	dep := core.NewDeployment(g, core.Config{})
	dep.InstallDestination(bgp.Compute(g, 0))
	// Congest a third of all links.
	for v := 0; v < g.N(); v++ {
		for j, nb := range g.Neighbors(v) {
			if (v+j)%3 == 0 {
				dep.SetLinkLoad(v, int(nb.AS), 1e9)
			}
		}
	}
	dep.Refresh()
	f, err := NewFabric(dep.Net)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	const packets = 300
	for i := 0; i < packets; i++ {
		if i%16 == 15 {
			// Pace slightly: a full-rate burst can overrun loopback UDP
			// buffers, and a lost datagram would stall the tally below.
			time.Sleep(time.Millisecond)
		}
		src := 1 + i%(g.N()-1)
		f.Inject(&dataplane.Packet{
			Flow: dataplane.FlowKey{SrcAddr: uint32(src), DstAddr: dataplane.PrefixAddr(0), SrcPort: uint16(i), Proto: 6},
			Dst:  0,
		}, dep.Routers(src)[0].ID)
	}
	// Every packet must terminate: delivered or dropped by the tag-check,
	// never by TTL (that would be a loop).
	waitStats(t, f, func(s Stats) bool {
		return s.Delivered+s.DropValleyFree+s.DropNoRoute >= packets
	})
	s := f.TotalStats()
	if s.DropTTL != 0 {
		t.Fatalf("%d packets looped over UDP", s.DropTTL)
	}
	if s.Delivered == 0 {
		t.Fatal("nothing was delivered")
	}
	if s.ParseErrors != 0 {
		t.Fatalf("%d datagrams failed to parse", s.ParseErrors)
	}
}

// Garbage datagrams from outside must be counted and ignored, never crash
// a node or corrupt forwarding.
func TestUDPGarbageHardening(t *testing.T) {
	dep, f := deployFig2a(t)
	conn, err := net.Dial("udp", f.Addr(dep.Routers(1)[0].ID).String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payloads := [][]byte{
		{},
		{0x00},
		[]byte("not an ip packet at all, definitely"),
		bytes.Repeat([]byte{0x45}, 64),
	}
	for _, p := range payloads {
		if len(p) == 0 {
			continue // zero-length UDP writes are dropped by the stack
		}
		if _, err := conn.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	waitStats(t, f, func(s Stats) bool { return s.ParseErrors >= 3 })
	// The node still forwards fine afterwards.
	f.Inject(&dataplane.Packet{
		Flow: dataplane.FlowKey{SrcAddr: 1, DstAddr: dataplane.PrefixAddr(0), Proto: 6},
		Dst:  0,
	}, dep.Routers(1)[0].ID)
	if _, ok := awaitDelivery(t, f, 2*time.Second); !ok {
		t.Fatal("node stopped forwarding after garbage input")
	}
}

func waitStats(t *testing.T, f *Fabric, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(f.TotalStats()) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("stats condition not reached; totals: %+v", f.TotalStats())
}
