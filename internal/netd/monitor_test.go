package netd

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dataplane"
)

// Fully self-driving MIFO over sockets: heavy traffic on the default link
// raises the measured rate, the monitor publishes it as the congestion
// signal, the concurrent daemons install alternatives, and the forwarding
// engine starts deflecting — no SetLinkLoad anywhere.
func TestSelfDrivingDeflection(t *testing.T) {
	g := fig2aGraph(t)
	// Tiny capacities so a test-sized packet stream reads as congestion.
	dep := core.NewDeployment(g, core.Config{LinkCapacityBps: 200_000})
	dep.InstallDestination(bgp.Compute(g, 0))

	f, err := NewFabric(dep.Net)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()
	stopMon := f.MonitorLoads(5 * time.Millisecond)
	defer stopMon()
	rt := core.NewRuntime(dep, 5*time.Millisecond)
	rt.Start()
	defer rt.Stop()

	origin := dep.Routers(1)[0].ID
	deadline := time.Now().Add(10 * time.Second)
	seq := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 20; i++ {
			f.Inject(&dataplane.Packet{
				Flow: dataplane.FlowKey{
					SrcAddr: 1, DstAddr: dataplane.PrefixAddr(0),
					SrcPort: uint16(seq), DstPort: 80, Proto: 6,
				},
				Dst: 0,
			}, origin)
			seq++
		}
		if f.StatsOf(origin).Deflected > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s := f.StatsOf(origin)
	if s.Deflected == 0 {
		t.Fatalf("traffic never triggered a measured deflection; stats %+v", s)
	}
	if tot := f.TotalStats(); tot.DropTTL != 0 {
		t.Fatalf("loops under self-driving deflection: %+v", tot)
	}
	// Deflected packets must still be delivered at AS 0.
	waitStats(t, f, func(tot Stats) bool { return tot.Delivered > 0 })
}
