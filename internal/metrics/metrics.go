// Package metrics provides the statistics containers used to regenerate the
// paper's tables and figures: empirical CDFs (Figs. 5, 6, 7, 12b), bar
// histograms (Figs. 8, 9), time series (Fig. 12a), and scalar summaries.
//
// All containers print themselves as plain gnuplot-style rows so the output
// of cmd/mifo-sim can be compared line-by-line with the paper's plots.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF returns a CDF seeded with the given samples.
func NewCDF(samples ...float64) *CDF {
	c := &CDF{}
	c.AddAll(samples)
	return c
}

// Add appends one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// AddAll appends a batch of samples.
func (c *CDF) AddAll(vs []float64) {
	c.samples = append(c.samples, vs...)
	c.sorted = false
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns P(X <= v) in [0, 1]. It returns 0 for an empty CDF.
func (c *CDF) At(v float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(v, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// FractionAtLeast returns P(X >= v). This is the form the paper quotes
// ("40% of the flows can use at least 50% of the link capacity").
func (c *CDF) FractionAtLeast(v float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	i := sort.SearchFloat64s(c.samples, v)
	return float64(len(c.samples)-i) / float64(len(c.samples))
}

// Quantile returns the q-th quantile for q in [0, 1], using the nearest-rank
// method. It returns NaN for an empty CDF.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	i := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if i < 0 {
		i = 0
	}
	return c.samples[i]
}

// Mean returns the sample mean, or NaN for an empty CDF.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Min returns the smallest sample, or NaN for an empty CDF.
func (c *CDF) Min() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	return c.samples[0]
}

// Max returns the largest sample, or NaN for an empty CDF.
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	return c.samples[len(c.samples)-1]
}

// Rows evaluates the CDF at n+1 evenly spaced points spanning [lo, hi] and
// returns (x, P(X<=x)·100%) pairs — the series the paper's CDF figures plot.
func (c *CDF) Rows(lo, hi float64, n int) []Row {
	if n < 1 {
		n = 1
	}
	rows := make([]Row, 0, n+1)
	for i := 0; i <= n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n)
		rows = append(rows, Row{X: x, Y: 100 * c.At(x)})
	}
	return rows
}

// Row is a single (x, y) point of a printed series.
type Row struct {
	X, Y float64
}

// Series is a named sequence of rows, e.g. one curve of a figure.
type Series struct {
	Name string
	Rows []Row
}

// String formats the series as "# name" followed by "x y" lines.
func (s Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%g\t%.2f\n", r.X, r.Y)
	}
	return b.String()
}

// WriteGnuplot writes series as gnuplot-ready blocks: each series is one
// data block ("# name" then x<TAB>y rows) separated by two blank lines, so
// `plot 'file' index N` selects one curve.
func WriteGnuplot(w io.Writer, series ...Series) error {
	for i, s := range series {
		if i > 0 {
			if _, err := fmt.Fprint(w, "\n\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprint(w, s.String()); err != nil {
			return err
		}
	}
	return nil
}

// Histogram is a counting histogram over small non-negative integer keys
// (e.g. path-switch counts in Fig. 9).
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add increments the count for key k.
func (h *Histogram) Add(k int) {
	h.counts[k]++
	h.total++
}

// Count returns the count recorded for key k.
func (h *Histogram) Count(k int) int { return h.counts[k] }

// Total returns the total number of additions.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of additions that had key k, in [0, 1].
func (h *Histogram) Fraction(k int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[k]) / float64(h.total)
}

// FractionAtMost returns the share of additions with key <= k.
func (h *Histogram) FractionAtMost(k int) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for key, c := range h.counts {
		if key <= k {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// Keys returns the recorded keys in ascending order.
func (h *Histogram) Keys() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// String prints "key count percent" lines in key order.
func (h *Histogram) String() string {
	var b strings.Builder
	for _, k := range h.Keys() {
		fmt.Fprintf(&b, "%d\t%d\t%.1f%%\n", k, h.counts[k], 100*h.Fraction(k))
	}
	return b.String()
}

// TimeSeries accumulates (t, v) samples, e.g. aggregate throughput over time.
type TimeSeries struct {
	Name string
	Rows []Row
}

// Add appends a sample. Samples are expected in non-decreasing time order.
func (ts *TimeSeries) Add(t, v float64) {
	ts.Rows = append(ts.Rows, Row{X: t, Y: v})
}

// Max returns the largest value in the series, or 0 if empty.
func (ts *TimeSeries) Max() float64 {
	m := 0.0
	for _, r := range ts.Rows {
		if r.Y > m {
			m = r.Y
		}
	}
	return m
}

// MeanOver returns the time-weighted mean value of the series over [t0, t1],
// treating the series as a step function. It returns 0 when the window is
// empty or degenerate.
func (ts *TimeSeries) MeanOver(t0, t1 float64) float64 {
	if t1 <= t0 || len(ts.Rows) == 0 {
		return 0
	}
	var area float64
	for i, r := range ts.Rows {
		start := r.X
		var end float64
		if i+1 < len(ts.Rows) {
			end = ts.Rows[i+1].X
		} else {
			end = t1
		}
		if end <= t0 || start >= t1 {
			continue
		}
		if start < t0 {
			start = t0
		}
		if end > t1 {
			end = t1
		}
		area += r.Y * (end - start)
	}
	return area / (t1 - t0)
}

// String formats the series like Series.String.
func (ts *TimeSeries) String() string {
	return Series{Name: ts.Name, Rows: ts.Rows}.String()
}

// Summary holds scalar key/value results for a table-like artifact.
type Summary struct {
	Title string
	keys  []string
	vals  map[string]string
}

// NewSummary returns an empty summary with the given title.
func NewSummary(title string) *Summary {
	return &Summary{Title: title, vals: make(map[string]string)}
}

// Set records a formatted value under key, preserving insertion order.
func (s *Summary) Set(key, format string, args ...any) {
	if _, ok := s.vals[key]; !ok {
		s.keys = append(s.keys, key)
	}
	s.vals[key] = fmt.Sprintf(format, args...)
}

// Get returns the recorded value for key, or "".
func (s *Summary) Get(key string) string { return s.vals[key] }

// String prints the summary as aligned "key: value" lines.
func (s *Summary) String() string {
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", s.Title)
	}
	width := 0
	for _, k := range s.keys {
		if len(k) > width {
			width = len(k)
		}
	}
	for _, k := range s.keys {
		fmt.Fprintf(&b, "%-*s  %s\n", width+1, k+":", s.vals[k])
	}
	return b.String()
}
