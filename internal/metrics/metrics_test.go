package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF(1, 2, 3, 4)
	cases := []struct {
		v, want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.5}, {4, 1}, {5, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.v); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestCDFFractionAtLeast(t *testing.T) {
	c := NewCDF(100, 200, 300, 400, 500)
	if got := c.FractionAtLeast(300); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("FractionAtLeast(300) = %v, want 0.6", got)
	}
	if got := c.FractionAtLeast(501); got != 0 {
		t.Errorf("FractionAtLeast(501) = %v, want 0", got)
	}
	if got := c.FractionAtLeast(0); got != 1 {
		t.Errorf("FractionAtLeast(0) = %v, want 1", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(1) != 0 || c.FractionAtLeast(1) != 0 {
		t.Error("empty CDF should report 0 probabilities")
	}
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Mean()) {
		t.Error("empty CDF quantile/mean should be NaN")
	}
	if !math.IsNaN(c.Min()) || !math.IsNaN(c.Max()) {
		t.Error("empty CDF min/max should be NaN")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	if got := c.Quantile(0.5); got != 50 {
		t.Errorf("median = %v, want 50", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Errorf("q0 = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 100 {
		t.Errorf("q1 = %v, want 100", got)
	}
	if got := c.Quantile(0.91); got != 100 {
		t.Errorf("q0.91 = %v, want 100", got)
	}
}

func TestCDFMeanMinMax(t *testing.T) {
	c := NewCDF(2, 4, 9)
	if got := c.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", got)
	}
	if c.Min() != 2 || c.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", c.Min(), c.Max())
	}
}

func TestCDFRows(t *testing.T) {
	c := NewCDF(0, 500, 1000)
	rows := c.Rows(0, 1000, 10)
	if len(rows) != 11 {
		t.Fatalf("len(rows) = %d, want 11", len(rows))
	}
	if rows[0].X != 0 || rows[10].X != 1000 {
		t.Errorf("row endpoints = %v..%v, want 0..1000", rows[0].X, rows[10].X)
	}
	last := -1.0
	for _, r := range rows {
		if r.Y < last {
			t.Fatalf("CDF rows must be monotone, got %v after %v", r.Y, last)
		}
		last = r.Y
	}
	if rows[10].Y != 100 {
		t.Errorf("final row = %v%%, want 100%%", rows[10].Y)
	}
}

// Property: At is monotone and bounded in [0, 1].
func TestQuickCDFMonotone(t *testing.T) {
	f := func(samples []float64, probes []float64) bool {
		c := NewCDF(samples...)
		sort.Float64s(probes)
		prev := 0.0
		for _, p := range probes {
			v := c.At(p)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: At(v) + FractionAtLeast(v') roughly partition the samples when v'
// is just above v (strict/non-strict complement).
func TestQuickCDFComplement(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		c := NewCDF(raw...)
		if c.N() == 0 {
			return true
		}
		le := c.At(probe) * float64(c.N())
		gt := float64(c.N()) - le
		ge := c.FractionAtLeast(probe) * float64(c.N())
		// ge counts samples == probe too, so ge >= gt always.
		return ge >= gt-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 6; i++ {
		h.Add(1)
	}
	for i := 0; i < 3; i++ {
		h.Add(2)
	}
	h.Add(5)
	if h.Total() != 10 {
		t.Fatalf("total = %d, want 10", h.Total())
	}
	if got := h.Fraction(1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("fraction(1) = %v, want 0.6", got)
	}
	if got := h.FractionAtMost(2); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("fractionAtMost(2) = %v, want 0.9", got)
	}
	if keys := h.Keys(); len(keys) != 3 || keys[0] != 1 || keys[2] != 5 {
		t.Errorf("keys = %v, want [1 2 5]", keys)
	}
	if !strings.Contains(h.String(), "60.0%") {
		t.Errorf("String() missing percentage: %q", h.String())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Fraction(0) != 0 || h.FractionAtMost(10) != 0 {
		t.Error("empty histogram fractions should be 0")
	}
}

func TestTimeSeriesMeanOver(t *testing.T) {
	ts := &TimeSeries{Name: "x"}
	ts.Add(0, 10)
	ts.Add(1, 20)
	ts.Add(2, 0)
	// Step function: 10 on [0,1), 20 on [1,2), 0 after.
	if got := ts.MeanOver(0, 2); math.Abs(got-15) > 1e-9 {
		t.Errorf("MeanOver(0,2) = %v, want 15", got)
	}
	if got := ts.MeanOver(0.5, 1.5); math.Abs(got-15) > 1e-9 {
		t.Errorf("MeanOver(0.5,1.5) = %v, want 15", got)
	}
	if got := ts.MeanOver(5, 5); got != 0 {
		t.Errorf("degenerate window = %v, want 0", got)
	}
	if got := ts.Max(); got != 20 {
		t.Errorf("Max = %v, want 20", got)
	}
}

func TestSummary(t *testing.T) {
	s := NewSummary("Table I")
	s.Set("# of Nodes", "%d", 44340)
	s.Set("# of Links", "%d", 109360)
	s.Set("# of Nodes", "%d", 44341) // overwrite keeps order
	out := s.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "44341") {
		t.Errorf("summary output wrong: %q", out)
	}
	if strings.Index(out, "Nodes") > strings.Index(out, "Links") {
		t.Error("summary must preserve insertion order")
	}
	if got := s.Get("# of Links"); got != "109360" {
		t.Errorf("Get = %q, want 109360", got)
	}
}

func TestSeriesString(t *testing.T) {
	s := Series{Name: "bgp", Rows: []Row{{X: 0, Y: 0}, {X: 100, Y: 42.5}}}
	out := s.String()
	if !strings.HasPrefix(out, "# bgp\n") || !strings.Contains(out, "100\t42.50") {
		t.Errorf("series output wrong: %q", out)
	}
}

func BenchmarkCDFAt(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	c := &CDF{}
	for i := 0; i < 100000; i++ {
		c.Add(rng.Float64() * 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.At(float64(i % 1000))
	}
}
