package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteGnuplot(t *testing.T) {
	a := Series{Name: "alpha", Rows: []Row{{X: 1, Y: 2}}}
	b := Series{Name: "beta", Rows: []Row{{X: 3, Y: 4}, {X: 5, Y: 6}}}
	var buf bytes.Buffer
	if err := WriteGnuplot(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# alpha") || !strings.Contains(out, "# beta") {
		t.Fatalf("missing series headers:\n%s", out)
	}
	// Blocks must be separated by exactly one blank-line pair for
	// gnuplot's `index` selection.
	if !strings.Contains(out, "2.00\n\n\n# beta") {
		t.Fatalf("blocks not separated by two newlines:\n%q", out)
	}
	// Single series: no separator.
	buf.Reset()
	if err := WriteGnuplot(&buf, a); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\n\n\n") {
		t.Error("single series should have no separator")
	}
}
