package jsonl

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type rec struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func readLines(t *testing.T, path string) []rec {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var out []rec
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	return out
}

func TestCreateEncodeClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Encode(rec{N: i}); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got := readLines(t, path)
	if len(got) != 10 || got[0].N != 0 || got[9].N != 9 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Close is idempotent and encode-after-close errors without panicking.
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := s.Encode(rec{N: 99}); err == nil {
		t.Fatal("encode on closed sink should fail")
	}
}

func TestFlushMakesDataVisible(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Encode(rec{N: 1}); err != nil {
		t.Fatal(err)
	}
	if n := len(readLines(t, path)); n != 0 {
		t.Fatalf("buffered record already on disk (%d lines)", n)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := len(readLines(t, path)); n != 1 {
		t.Fatalf("flush did not land the record (%d lines)", n)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ left int }

var errSink = errors.New("sink broke")

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, errSink
	}
	w.left -= len(p)
	return len(p), nil
}

func TestFirstErrorWins(t *testing.T) {
	s := New(&failWriter{left: 16})
	if err := s.Encode(rec{N: 1}); err != nil {
		t.Fatalf("first encode should fit: %v", err)
	}
	if err := s.Encode(rec{N: 2, S: strings.Repeat("x", 64)}); !errors.Is(err, errSink) {
		t.Fatalf("want errSink, got %v", err)
	}
	s.Note(errors.New("later error"))
	if err := s.Close(); !errors.Is(err, errSink) {
		t.Fatalf("close must report the FIRST error, got %v", err)
	}
	if err := s.Err(); !errors.Is(err, errSink) {
		t.Fatalf("err must report the first error, got %v", err)
	}
}

func TestNoteRetainsExternalError(t *testing.T) {
	s := New(&strings.Builder{})
	s.Note(nil) // no-op
	if s.Err() != nil {
		t.Fatal("nil note must not retain")
	}
	want := errors.New("hash failed")
	s.Note(want)
	if err := s.Close(); !errors.Is(err, want) {
		t.Fatalf("want noted error, got %v", err)
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	s, err := Create(path, Options{MaxBytes: 64, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.Encode(rec{N: i, S: "padding-padding"}); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Rotations() == 0 {
		t.Fatal("expected at least one rotation")
	}
	// Every surviving file must hold whole JSONL lines.
	total := len(readLines(t, path))
	for _, suffix := range []string{".1", ".2"} {
		if _, err := os.Stat(path + suffix); err == nil {
			total += len(readLines(t, path+suffix))
		}
	}
	if total == 0 {
		t.Fatal("no records survived rotation")
	}
	// Keep=2 bounds retention: path.3 must not exist.
	if _, err := os.Stat(path + ".3"); err == nil {
		t.Fatal("rotation kept more files than Keep allows")
	}
}

func TestSinkAsIOWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// A component that owns its own encoder writes through the sink.
	enc := json.NewEncoder(s)
	for i := 0; i < 3; i++ {
		if err := enc.Encode(rec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readLines(t, path); len(got) != 3 {
		t.Fatalf("want 3 lines, got %d", len(got))
	}
}
