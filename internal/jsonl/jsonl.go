// Package jsonl is the shared JSONL sink used by every component that
// streams newline-delimited JSON to disk: the audit flight recorder, the
// span collector, and the tsdb dump writer. It folds the plumbing those
// sinks previously duplicated — buffered file creation, serialized
// encoding, first-error retention, flush, close-with-first-error, and
// optional size-based rotation — into one type with one error policy:
//
//	the first error wins, every later operation keeps running
//	best-effort, and Close/Err report that first error.
//
// A Sink is safe for concurrent use; writers that already serialize
// (single background batcher goroutines) pay one uncontended mutex.
package jsonl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Options tune a file-backed Sink. The zero value buffers 1 MiB and
// never rotates.
type Options struct {
	// BufferSize is the write-buffer size in bytes (default 1 MiB).
	BufferSize int
	// MaxBytes, when > 0, rotates the file once it grows past this many
	// bytes: the current file is renamed path.1 (shifting path.1 to
	// path.2 and so on, keeping Keep old files) and a fresh file is
	// opened at path. Rotation happens between records, so every file
	// holds whole JSONL lines.
	MaxBytes int64
	// Keep is how many rotated files are retained (default 3).
	Keep int
}

func (o Options) withDefaults() Options {
	if o.BufferSize <= 0 {
		o.BufferSize = 1 << 20
	}
	if o.Keep <= 0 {
		o.Keep = 3
	}
	return o
}

// Sink writes newline-delimited JSON with first-error retention. Build
// one with Create (owned file, buffered, optional rotation) or New
// (caller-owned writer).
type Sink struct {
	mu  sync.Mutex
	out io.Writer // current raw target: bw in file mode, the wrapped writer otherwise
	enc *json.Encoder
	err error

	// File mode only.
	path      string
	f         *os.File
	bw        *bufio.Writer
	opt       Options
	size      int64
	rotations int
	closed    bool
}

// countWriter routes the encoder's output through the sink's current
// target while accounting bytes for rotation. Only driven with s.mu held
// (by Encode), so the unguarded size update is safe.
type countWriter struct{ s *Sink }

func (c countWriter) Write(p []byte) (int, error) {
	n, err := c.s.out.Write(p)
	c.s.size += int64(n)
	return n, err
}

// New wraps a caller-owned writer. Close flushes nothing and does not
// close w; it only reports the first error. w must not be nil.
func New(w io.Writer) *Sink {
	s := &Sink{out: w}
	s.enc = json.NewEncoder(countWriter{s})
	return s
}

// Create opens path for writing (truncating) with a buffered writer the
// sink owns: Flush drains the buffer, Close flushes and closes the file.
func Create(path string, opts ...Options) (*Sink, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	o = o.withDefaults()
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := &Sink{path: path, f: f, opt: o}
	s.bw = bufio.NewWriterSize(f, o.BufferSize)
	s.out = s.bw
	s.enc = json.NewEncoder(countWriter{s})
	return s, nil
}

// Encode writes one JSONL line. It returns the error of this encode (or
// the retained first error if this one succeeded after a failure), so
// callers may either check per-record or rely on Close.
func (s *Sink) Encode(v any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.firstLocked(fmt.Errorf("jsonl: encode on closed sink %q", s.path))
	}
	if s.f != nil && s.opt.MaxBytes > 0 && s.size >= s.opt.MaxBytes {
		s.rotateLocked()
	}
	if err := s.enc.Encode(v); err != nil {
		return s.firstLocked(err)
	}
	return s.err
}

// Write implements io.Writer so a file Sink can stand in wherever an
// io.Writer sink is expected (e.g. audit.Options.Writer); errors are
// retained like Encode's.
func (s *Sink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, s.firstLocked(fmt.Errorf("jsonl: write on closed sink %q", s.path))
	}
	n, err := s.out.Write(p)
	s.size += int64(n)
	if err != nil {
		return n, s.firstLocked(err)
	}
	return n, nil
}

// Note retains err as the sink's first error if none is retained yet.
// Components use it to funnel non-write failures (e.g. hashing a record
// before encoding it) into the same close-with-first-error report.
func (s *Sink) Note(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	s.firstLocked(err)
	s.mu.Unlock()
}

// Err returns the retained first error.
func (s *Sink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Flush drains the write buffer (file mode) and returns the first error.
func (s *Sink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bw != nil && !s.closed {
		if err := s.bw.Flush(); err != nil {
			return s.firstLocked(err)
		}
	}
	return s.err
}

// Close flushes, closes the owned file, and returns the first error seen
// across the sink's whole life. Closing twice is safe; a wrapped-writer
// sink only reports. Encoding after Close fails but never panics.
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.bw != nil {
		if err := s.bw.Flush(); err != nil {
			s.firstLocked(err)
		}
	}
	if s.f != nil {
		if err := s.f.Close(); err != nil {
			s.firstLocked(err)
		}
	}
	return s.err
}

// Rotations reports how many times the sink rotated its file.
func (s *Sink) Rotations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rotations
}

// Size reports the bytes written to the current file (file mode).
func (s *Sink) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// firstLocked retains err if it is the first and returns the retained
// error (mu held).
func (s *Sink) firstLocked(err error) error {
	if s.err == nil {
		s.err = err
	}
	return s.err
}

// rotateLocked shifts path.1..path.Keep-1 up, renames the current file
// to path.1, and reopens path (mu held). Any step failing retains the
// error and keeps writing to the old file.
func (s *Sink) rotateLocked() {
	if err := s.bw.Flush(); err != nil {
		s.firstLocked(err)
		return
	}
	if err := s.f.Close(); err != nil {
		s.firstLocked(err)
		return
	}
	for i := s.opt.Keep - 1; i >= 1; i-- {
		from := fmt.Sprintf("%s.%d", s.path, i)
		if _, err := os.Stat(from); err == nil {
			os.Rename(from, fmt.Sprintf("%s.%d", s.path, i+1))
		}
	}
	if err := os.Rename(s.path, s.path+".1"); err != nil {
		s.firstLocked(err)
	}
	f, err := os.Create(s.path)
	if err != nil {
		// Keep going: reopen the renamed file so records are not lost.
		s.firstLocked(err)
		if f2, err2 := os.OpenFile(s.path+".1", os.O_APPEND|os.O_WRONLY, 0o644); err2 == nil {
			f = f2
		} else {
			s.firstLocked(err2)
			return
		}
	}
	s.f = f
	s.bw = bufio.NewWriterSize(f, s.opt.BufferSize)
	s.out = s.bw
	s.size = 0
	s.rotations++
}
