package bgpsim

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/topo"
)

// fig2a: AS 0 is a customer of 1, 2, 3, which peer in a triangle.
func fig2a(t testing.TB) *topo.Graph {
	t.Helper()
	g, err := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// assertMatchesStatic verifies the converged message-level routes equal
// the static solver's for every AS.
func assertMatchesStatic(t *testing.T, s *Sim, g *topo.Graph, dst int) {
	t.Helper()
	d := bgp.Compute(g, dst)
	for v := 0; v < g.N(); v++ {
		want := d.ASPath(v)
		got := s.Best(v)
		if want == nil {
			if got != nil {
				t.Fatalf("AS %d: converged to %v, static says unreachable", v, got)
			}
			continue
		}
		if got == nil {
			t.Fatalf("AS %d: unreachable, static says %v", v, want)
		}
		if len(got) != len(want) {
			t.Fatalf("AS %d: %v != static %v", v, got, want)
		}
		for i := range want {
			if int(got[i]) != want[i] {
				t.Fatalf("AS %d: %v != static %v", v, got, want)
			}
		}
	}
}

func TestConvergesToStaticFig2a(t *testing.T) {
	g := fig2a(t)
	s := New(g, 0, Config{})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	assertMatchesStatic(t, s, g, 0)
	if s.Messages < 3 {
		t.Errorf("messages = %d, want at least one per neighbor of the origin", s.Messages)
	}
}

func TestConvergesToStaticGenerated(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g, err := topo.Generate(topo.GenConfig{N: 250, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, dst := range []int{0, 100, 249} {
			s := New(g, dst, Config{})
			if err := s.Run(); err != nil {
				t.Fatalf("seed %d dst %d: %v", seed, dst, err)
			}
			assertMatchesStatic(t, s, g, dst)
		}
	}
}

func TestValleyFreeExportInMessages(t *testing.T) {
	// Peer routes must not propagate to peers: same topology as
	// TestValleyBlocked in the bgp package.
	b := topo.NewBuilder(4)
	b.AddPC(1, 0).AddPeer(1, 2).AddPeer(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, 0, Config{})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Reachable(2) {
		t.Error("AS 2 should learn the peer route")
	}
	if s.Reachable(3) {
		t.Error("AS 3 must not learn a route across two peer links")
	}
}

// failoverGraph: 1 provides 0 (dst), 2 and 3; 2 also provides 0; 1 provides
// 2. AS 3 only learns routes through 1, so failing the 1-0 link forces 1 to
// fail over to its route via 2 and *re-announce* to 3 — measurable
// reconvergence downstream.
func failoverGraph(t testing.TB) *topo.Graph {
	t.Helper()
	g, err := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(1, 2).AddPC(1, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFailoverReconvergence(t *testing.T) {
	g := failoverGraph(t)
	s := New(g, 0, Config{})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Best(3); len(got) != 3 || got[1] != 1 {
		t.Fatalf("pre-failure path %v, want [3 1 0]", got)
	}
	failAt := s.Now()
	if err := s.FailLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	reconv := s.LastChange - failAt
	if reconv <= 0 {
		t.Fatalf("no reconvergence recorded (last change %v, fail %v)", s.LastChange, failAt)
	}
	// The repaired routes must match the static solver on the cut graph.
	cut, err := topo.RemoveLinks(g, []topo.LinkRef{{A: 1, B: 0}})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesStatic(t, s, cut, 0)
	if got := s.Best(3); len(got) != 4 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("post-failure path %v, want [3 1 2 0]", got)
	}
}

func TestPartitionWithdrawsRoutes(t *testing.T) {
	g, err := topo.NewBuilder(3).AddPC(0, 1).AddPC(1, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, 0, Config{})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Reachable(2) {
		t.Fatal("pre-failure: 2 should be reachable")
	}
	if err := s.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Reachable(1) || s.Reachable(2) {
		t.Error("withdraw cascade failed: partitioned ASes still have routes")
	}
	if err := s.FailLink(0, 1); err == nil {
		t.Error("failing a dead session must error")
	}
}

func TestRestoreLinkConvergesBack(t *testing.T) {
	g := failoverGraph(t)
	s := New(g, 0, Config{})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.FailLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Back to the original best routes.
	assertMatchesStatic(t, s, g, 0)
	if got := s.Best(3); len(got) != 3 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("restored path %v, want [3 1 0]", got)
	}
	// Guards.
	if err := s.RestoreLink(1, 0); err == nil {
		t.Error("restoring an up session must error")
	}
	if err := s.RestoreLink(0, 3); err == nil {
		t.Error("restoring a nonexistent link must error")
	}
}

func TestMRAISlowsReconvergence(t *testing.T) {
	// MRAI rate-limits *re*-advertisements: the failover re-announcement
	// from 1 to 3 must wait out the timer, so downstream reconvergence
	// scales with MRAI.
	reconv := func(mrai float64) float64 {
		g := failoverGraph(t)
		s := New(g, 0, Config{MRAI: mrai})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		failAt := s.Now()
		if err := s.FailLink(1, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.LastChange - failAt
	}
	fast := reconv(0.01)
	slow := reconv(5.0)
	if slow < 4 {
		t.Errorf("reconvergence %v s under MRAI 5 s, want the timer to dominate", slow)
	}
	if slow <= fast {
		t.Errorf("MRAI 5 s reconverged in %v, faster than MRAI 10 ms (%v)", slow, fast)
	}
}

func TestMessageCountScalesSanely(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := New(g, 0, Config{})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Every AS must have been reached at least once, and MRAI batching
	// keeps the total within a small multiple of the session count.
	if s.Messages < g.N()-1 {
		t.Errorf("messages = %d, fewer than ASes", s.Messages)
	}
	if s.Messages > 20*g.Links() {
		t.Errorf("messages = %d for %d links; suspicious chatter", s.Messages, g.Links())
	}
}

func BenchmarkConverge300(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 300, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(g, i%g.N(), Config{})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
