package bgpsim

import (
	"sort"
	"testing"

	"repro/internal/bgp"
	"repro/internal/topo"
)

// The static RIB (what MIFO mines for alternatives) must equal the
// Adj-RIB-In that message-level BGP actually builds: same announcing
// neighbors, same paths. This ties the paper's "zero overhead" claim to a
// concrete protocol run — the alternatives really are already there.
func TestAdjRIBInMatchesStaticRIB(t *testing.T) {
	for _, seed := range []int64{2, 13} {
		g, err := topo.Generate(topo.GenConfig{N: 180, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		dst := 5
		s := New(g, dst, Config{})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		table := bgp.Compute(g, dst)
		for v := 0; v < g.N(); v++ {
			if v == dst {
				continue
			}
			// Static RIB's announcing neighbors.
			var want []int
			for _, alt := range bgp.RIB(g, table, v) {
				want = append(want, int(alt.Via))
			}
			sort.Ints(want)
			// Message-level Adj-RIB-In, with the same loop filter the
			// static RIB applies.
			var got []int
			sp := s.speakers[v]
			for from, r := range sp.adjIn {
				if r != nil && !r.contains(int32(v)) {
					got = append(got, int(from))
				}
			}
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("seed %d AS %d: adj-RIB-in %v != static RIB %v", seed, v, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d AS %d: adj-RIB-in %v != static RIB %v", seed, v, got, want)
				}
			}
			// And each announced path must equal the splice the MIFO
			// daemon would install.
			for from, r := range sp.adjIn {
				if r == nil || r.contains(int32(v)) {
					continue
				}
				splice := bgp.PathVia(table, v, int(from))
				if len(splice) != len(r.path)+1 {
					t.Fatalf("seed %d AS %d via %d: announced %v vs spliced %v",
						seed, v, from, r.path, splice)
				}
				for i, as := range r.path {
					if splice[i+1] != int(as) {
						t.Fatalf("seed %d AS %d via %d: announced %v vs spliced %v",
							seed, v, from, r.path, splice)
					}
				}
			}
		}
	}
}
