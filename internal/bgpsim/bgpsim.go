// Package bgpsim is an event-driven, message-level BGP simulator for a
// single prefix: speakers exchange UPDATE messages (announce/withdraw) over
// the inter-AS sessions of a topo.Graph, apply valley-free export policy
// and standard route selection, and rate-limit advertisements with an MRAI
// timer.
//
// It serves three purposes in this reproduction:
//
//   - It cross-validates internal/bgp: the converged routes must equal the
//     static three-phase solver's output on every topology.
//   - It measures control-plane convergence time after failures — the
//     quantity MIFO's data-plane failover sidesteps and the justification
//     for netsim's ReconvergenceDelay.
//   - It counts UPDATE messages, grounding the paper's "zero overhead"
//     claim (Section II-B): MIFO adds no messages on top of BGP, unlike
//     MIRO's negotiation or PDAR's extra advertisements.
package bgpsim

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/eventq"
	"repro/internal/obs/span"
	"repro/internal/topo"
)

// Config tunes the message-level dynamics.
type Config struct {
	// ProcDelay is per-message propagation plus processing time
	// (default 50 ms).
	ProcDelay float64
	// MRAI is the per-neighbor minimum route advertisement interval
	// (default 500 ms; RFC 4271 suggests 30 s for eBGP, which would just
	// scale all convergence results linearly).
	MRAI float64
	// MaxEvents bounds the run (default 10 million).
	MaxEvents int
}

func (c Config) withDefaults() Config {
	if c.ProcDelay <= 0 {
		c.ProcDelay = 0.05
	}
	if c.MRAI <= 0 {
		c.MRAI = 0.5
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 10_000_000
	}
	return c
}

// route is one announced path; nil *route means "no route".
type route struct {
	// path is the AS-level path [announcer, ..., dst].
	path []int32
}

func (r *route) contains(as int32) bool {
	if r == nil {
		return false
	}
	for _, v := range r.path {
		if v == as {
			return true
		}
	}
	return false
}

func (r *route) equal(o *route) bool {
	if r == nil || o == nil {
		return r == o
	}
	if len(r.path) != len(o.path) {
		return false
	}
	for i := range r.path {
		if r.path[i] != o.path[i] {
			return false
		}
	}
	return true
}

// speaker is one AS's BGP process for the prefix.
type speaker struct {
	as     int32
	origin bool

	adjIn    map[int32]*route // latest route announced by each neighbor
	best     *route           // selected route (nil = unreachable)
	bestFrom int32            // neighbor the best was learned from (-1)

	sent     map[int32]*route        // last advertisement per neighbor
	lastSend map[int32]float64       // MRAI bookkeeping
	pending  map[int32]*eventq.Event // scheduled per-neighbor send timers
}

// Sim is one single-prefix BGP network.
type Sim struct {
	g   *topo.Graph
	cfg Config
	dst int

	speakers []*speaker
	sessions map[[2]int32]bool // down sessions are absent (true = up)

	q   eventq.Queue
	now float64

	// Messages counts UPDATEs delivered (announcements and withdrawals).
	Messages int
	// LastChange is the time of the last best-route change anywhere.
	LastChange float64

	// Session-event tracing: FailLink/RestoreLink open a root span per
	// event; Run finalizes them when the update queue drains.
	spans *span.Tracer
	open  []sessionEvent
}

// sessionEvent is a root span awaiting convergence, with the virtual
// time its session event was injected.
type sessionEvent struct {
	sp span.Span
	at float64
}

// SetTracer attaches a span tracer: every subsequent FailLink /
// RestoreLink opens a bgp_session_down / bgp_session_up root span that
// the next Run finalizes once the network is quiet. The root's A/B carry
// the session endpoints and V the reconvergence latency in virtual
// seconds (negative when the run never converged — the analyzer judges
// such events incomplete).
func (s *Sim) SetTracer(tr *span.Tracer) { s.spans = tr }

const (
	evDeliver = iota // a message arrives at a speaker
	evSend           // a speaker's per-neighbor MRAI timer fires
)

type message struct {
	from, to int32
	r        *route // nil = withdraw
}

type sendRef struct {
	as, neighbor int32
}

// New builds the simulator with every session up and the destination
// originating the prefix. Call Run to converge.
func New(g *topo.Graph, dst int, cfg Config) *Sim {
	s := &Sim{
		g:        g,
		cfg:      cfg.withDefaults(),
		dst:      dst,
		sessions: make(map[[2]int32]bool),
	}
	s.speakers = make([]*speaker, g.N())
	for v := 0; v < g.N(); v++ {
		s.speakers[v] = &speaker{
			as:       int32(v),
			origin:   v == dst,
			bestFrom: -1,
			adjIn:    make(map[int32]*route),
			sent:     make(map[int32]*route),
			lastSend: make(map[int32]float64),
			pending:  make(map[int32]*eventq.Event),
		}
		for _, nb := range g.Neighbors(v) {
			if int32(v) < nb.AS {
				s.sessions[[2]int32{int32(v), nb.AS}] = true
			}
		}
	}
	org := s.speakers[dst]
	org.best = &route{path: []int32{int32(dst)}}
	org.bestFrom = -1
	s.scheduleExports(org)
	return s
}

func (s *Sim) sessionUp(a, b int32) bool {
	if a > b {
		a, b = b, a
	}
	return s.sessions[[2]int32{a, b}]
}

// Run processes events until the network is quiet or budget is exhausted.
// It returns an error if MaxEvents fires (persistent oscillation — cannot
// happen under valley-free policies, by Gao–Rexford stability).
func (s *Sim) Run() error {
	for n := 0; n < s.cfg.MaxEvents; n++ {
		ev := s.q.Pop()
		if ev == nil {
			s.finalizeRoots(true)
			return nil
		}
		s.now = ev.Time
		switch ev.Kind {
		case evDeliver:
			m := ev.Data.(message)
			s.deliver(m)
		case evSend:
			ref := ev.Data.(sendRef)
			sp := s.speakers[ref.as]
			delete(sp.pending, ref.neighbor)
			s.flushNeighbor(sp, ref.neighbor)
		}
	}
	s.finalizeRoots(false)
	return fmt.Errorf("bgpsim: exceeded %d events without converging", s.cfg.MaxEvents)
}

// finalizeRoots closes the session-event root spans opened since the
// last Run. Converged events carry V = reconvergence latency (virtual
// seconds, clamped at zero for events that changed no best route); a run
// that exhausted its event budget leaves V at -1, which the analyzer
// reports as a session event without reconvergence.
func (s *Sim) finalizeRoots(converged bool) {
	for i := range s.open {
		e := &s.open[i]
		if converged {
			lat := s.LastChange - e.at
			if lat < 0 {
				lat = 0
			}
			e.sp.V = lat
		}
		e.sp.End()
	}
	s.open = s.open[:0]
}

// trackRoot stamps a freshly opened session root and queues it for
// finalization by Run.
func (s *Sim) trackRoot(sp span.Span, a, b int) {
	sp.A, sp.B = int64(a), int64(b)
	sp.V = -1 // finalized by Run once the network reconverges
	s.open = append(s.open, sessionEvent{sp: sp, at: s.now})
}

// deliver processes one UPDATE at its receiver.
func (s *Sim) deliver(m message) {
	if !s.sessionUp(m.from, m.to) {
		return // session died while the message was in flight
	}
	s.Messages++
	sp := s.speakers[m.to]
	if m.r == nil {
		delete(sp.adjIn, m.from)
	} else {
		sp.adjIn[m.from] = m.r
	}
	s.reselect(sp)
}

// reselect recomputes the best route and propagates changes.
func (s *Sim) reselect(sp *speaker) {
	if sp.origin {
		return // the origin's own route always wins
	}
	var best *route
	bestFrom := int32(-1)
	var bestClass bgp.Class
	for _, nb := range s.g.Neighbors(int(sp.as)) {
		r := sp.adjIn[nb.AS]
		if r == nil || r.contains(sp.as) {
			continue // no route or AS-path loop
		}
		class := classFromRel(nb.Rel)
		if best == nil || better(class, len(r.path), nb.AS, bestClass, len(best.path), bestFrom) {
			best, bestFrom, bestClass = r, nb.AS, class
		}
	}
	var newBest *route
	if best != nil {
		path := make([]int32, 0, len(best.path)+1)
		path = append(path, sp.as)
		path = append(path, best.path...)
		newBest = &route{path: path}
	}
	if newBest.equal(sp.best) && bestFrom == sp.bestFrom {
		return
	}
	sp.best = newBest
	sp.bestFrom = bestFrom
	s.LastChange = s.now
	s.scheduleExports(sp)
}

func classFromRel(rel topo.Rel) bgp.Class {
	switch rel {
	case topo.Customer:
		return bgp.ClassCustomer
	case topo.Peer:
		return bgp.ClassPeer
	default:
		return bgp.ClassProvider
	}
}

// better implements standard selection: class, then path length, then
// lowest announcing neighbor.
func better(c bgp.Class, l int, from int32, bc bgp.Class, bl int, bfrom int32) bool {
	if c != bc {
		return c < bc
	}
	if l != bl {
		return l < bl
	}
	return from < bfrom
}

// export returns what sp advertises to neighbor n under valley-free policy
// (nil = nothing / withdraw).
func (s *Sim) export(sp *speaker, n topo.Neighbor) *route {
	if sp.best == nil {
		return nil
	}
	if !sp.origin {
		// Routes from peers/providers go only to customers.
		rel, _ := s.g.Rel(int(sp.as), int(sp.bestFrom))
		if rel != topo.Customer && n.Rel != topo.Customer {
			return nil
		}
		// Split horizon: never advertise back to the neighbor that gave
		// us the route (it would be loop-filtered anyway).
		if n.AS == sp.bestFrom {
			return nil
		}
	}
	return sp.best
}

// scheduleExports arms the per-neighbor send timers after a best change.
func (s *Sim) scheduleExports(sp *speaker) {
	for _, nb := range s.g.Neighbors(int(sp.as)) {
		if !s.sessionUp(sp.as, nb.AS) {
			continue
		}
		if _, armed := sp.pending[nb.AS]; armed {
			continue // a pending timer will pick up the latest state
		}
		want := s.export(sp, nb)
		if want.equal(sp.sent[nb.AS]) {
			continue
		}
		at := s.now
		if last, sentBefore := sp.lastSend[nb.AS]; sentBefore {
			if next := last + s.cfg.MRAI; next > at {
				at = next
			}
		}
		sp.pending[nb.AS] = s.q.Push(at, evSend, sendRef{as: sp.as, neighbor: nb.AS})
	}
}

// flushNeighbor sends the current advertisement to one neighbor if it
// still differs from what was last sent.
func (s *Sim) flushNeighbor(sp *speaker, neighbor int32) {
	if !s.sessionUp(sp.as, neighbor) {
		return
	}
	var nb topo.Neighbor
	found := false
	for _, cand := range s.g.Neighbors(int(sp.as)) {
		if cand.AS == neighbor {
			nb = cand
			found = true
			break
		}
	}
	if !found {
		return
	}
	want := s.export(sp, nb)
	if want.equal(sp.sent[neighbor]) {
		return
	}
	sp.sent[neighbor] = want
	sp.lastSend[neighbor] = s.now
	s.q.Push(s.now+s.cfg.ProcDelay, evDeliver, message{from: sp.as, to: neighbor, r: want})
}

// FailLink tears down the session between a and b: both sides drop the
// adjacency's routes and repropagate. Call Run afterwards to converge; the
// returned LastChange minus the failure time is the reconvergence latency.
func (s *Sim) FailLink(a, b int) error {
	ka, kb := int32(a), int32(b)
	if ka > kb {
		ka, kb = kb, ka
	}
	if !s.sessions[[2]int32{ka, kb}] {
		return fmt.Errorf("bgpsim: no session between %d and %d", a, b)
	}
	delete(s.sessions, [2]int32{ka, kb})
	if s.spans.Enabled() {
		s.trackRoot(s.spans.StartRoot("bgp_session_down", -1), a, b)
	}
	for _, pair := range [2][2]int32{{int32(a), int32(b)}, {int32(b), int32(a)}} {
		sp := s.speakers[pair[0]]
		delete(sp.adjIn, pair[1])
		delete(sp.sent, pair[1])
		if e, ok := sp.pending[pair[1]]; ok {
			s.q.Cancel(e)
			delete(sp.pending, pair[1])
		}
		s.reselect(sp)
	}
	return nil
}

// RestoreLink re-establishes a failed session: both sides re-advertise
// their current best routes over it, as BGP does when a session comes back
// up. Call Run afterwards to converge.
func (s *Sim) RestoreLink(a, b int) error {
	ka, kb := int32(a), int32(b)
	if ka > kb {
		ka, kb = kb, ka
	}
	if s.sessions[[2]int32{ka, kb}] {
		return fmt.Errorf("bgpsim: session between %d and %d is already up", a, b)
	}
	if !s.g.HasLink(a, b) {
		return fmt.Errorf("bgpsim: no link between %d and %d", a, b)
	}
	s.sessions[[2]int32{ka, kb}] = true
	if s.spans.Enabled() {
		s.trackRoot(s.spans.StartRoot("bgp_session_up", -1), a, b)
	}
	// Fresh session: nothing has been sent on it yet.
	for _, pair := range [2][2]int32{{int32(a), int32(b)}, {int32(b), int32(a)}} {
		sp := s.speakers[pair[0]]
		delete(sp.sent, pair[1])
		delete(sp.lastSend, pair[1])
		s.scheduleExports(sp)
	}
	return nil
}

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Best returns the converged AS path at v, or nil.
func (s *Sim) Best(v int) []int32 {
	if s.speakers[v].best == nil {
		return nil
	}
	return s.speakers[v].best.path
}

// Reachable reports whether v currently has a route.
func (s *Sim) Reachable(v int) bool { return s.speakers[v].best != nil }
