package bgpsim

import (
	"bytes"
	"testing"

	"repro/internal/obs/span"
	"repro/internal/topo"
)

// A fail/restore cycle with a tracer attached must emit one finalized
// root span per session event, carrying the endpoints and a non-negative
// virtual reconvergence latency, and the analyzer must judge both
// complete.
func TestSessionEventsTraced(t *testing.T) {
	// Chain 2 -> 1 -> 0: failing 1-0 withdraws the prefix from the whole
	// chain, so reconvergence needs message propagation and the traced
	// latency is strictly positive (unlike a local failover, which is 0).
	g, err := topo.NewBuilder(3).AddPC(0, 1).AddPC(1, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := span.New(span.Options{Writer: &buf})

	s := New(g, 0, Config{})
	s.SetTracer(tr)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.FailLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	failConverged := s.LastChange
	if err := s.RestoreLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := span.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := span.Analyze(recs)
	if len(rep.Events) != 2 {
		t.Fatalf("events = %d, want 2 (down + up)", len(rep.Events))
	}
	down, up := rep.Events[0], rep.Events[1]
	if down.Root.Name != span.RootSessionDown || up.Root.Name != span.RootSessionUp {
		t.Fatalf("root names = %q, %q", down.Root.Name, up.Root.Name)
	}
	for _, ev := range rep.Events {
		if !ev.Complete {
			t.Errorf("%s incomplete: %s", ev.Root.Name, ev.Why)
		}
		if ev.Root.A != 1 || ev.Root.B != 0 {
			t.Errorf("%s endpoints = (%d, %d), want (1, 0)", ev.Root.Name, ev.Root.A, ev.Root.B)
		}
		if ev.Root.V < 0 {
			t.Errorf("%s latency = %v, want >= 0", ev.Root.Name, ev.Root.V)
		}
	}
	// The failure cut AS 1's customer route; reconvergence took real
	// virtual time, which the root's V must reflect.
	if failConverged <= 0 || down.Root.V <= 0 {
		t.Errorf("down event latency = %v (LastChange %v), want > 0", down.Root.V, failConverged)
	}
}

// An untraced sim must carry zero tracing state through fail/restore.
func TestNoTracerNoRoots(t *testing.T) {
	g := fig2a(t)
	s := New(g, 0, Config{})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.FailLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.open) != 0 {
		t.Fatalf("open roots = %d without a tracer", len(s.open))
	}
}
