// Package lpm implements an IPv4 longest-prefix-match table as a binary
// trie — the lookup structure behind a real router FIB. The paper's
// prototype modifies the Linux kernel's fib_table and re-implements
// ip_mkroute_input(); this package is the corresponding substrate so the
// forwarding engine can run on genuine prefixes instead of dense
// destination identifiers.
//
// The table is versioned the way the kernel's RCU-protected fib_trie is:
// every published generation is immutable, lookups are a single atomic
// root load plus a walk over nodes nobody will ever mutate, and writers
// path-copy the touched branch and publish with one pointer swap. The
// MIFO daemon batches a whole control epoch of updates into one
// transaction (Begin / Insert / Update / Remove / Commit), so the
// forwarding engine never sees a half-applied epoch and never takes a
// lock.
package lpm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// node is one binary-trie vertex. A node carries a value when a prefix
// ends exactly here. stamp identifies the transaction that created the
// node: a transaction may mutate its own nodes freely but must copy any
// node published by an earlier generation.
type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
	stamp uint64
}

// gen is one immutable published generation.
type gen[V any] struct {
	root *node[V] // nil for an empty table
	n    int
	id   uint64
}

// Table is a longest-prefix-match table from IPv4 prefixes to values.
type Table[V any] struct {
	cur atomic.Pointer[gen[V]]
	// mu serializes writers; a transaction holds it from Begin to Commit.
	// Readers never touch it.
	mu sync.Mutex
}

// New returns an empty table.
func New[V any]() *Table[V] {
	t := &Table[V]{}
	t.cur.Store(&gen[V]{})
	return t
}

func checkPrefix(addr uint32, bits int) error {
	if bits < 0 || bits > 32 {
		return fmt.Errorf("lpm: prefix length %d out of range", bits)
	}
	if bits < 32 && addr<<bits != 0 {
		return fmt.Errorf("lpm: %08x/%d has host bits set", addr, bits)
	}
	return nil
}

// Lookup returns the value of the longest prefix covering addr. It is
// wait-free: an atomic root load and a walk over immutable nodes.
//
//mifo:hotpath
func (t *Table[V]) Lookup(addr uint32) (V, bool) {
	var best V
	found := false
	cur := t.cur.Load().root
	for i := 0; cur != nil; i++ {
		if cur.set {
			best = cur.val
			found = true
		}
		if i == 32 {
			break
		}
		cur = cur.child[(addr>>(31-i))&1]
	}
	return best, found
}

// Exact returns the value stored at exactly addr/bits.
func (t *Table[V]) Exact(addr uint32, bits int) (V, bool) {
	var zero V
	if checkPrefix(addr, bits) != nil {
		return zero, false
	}
	cur := t.cur.Load().root
	for i := 0; i < bits && cur != nil; i++ {
		cur = cur.child[(addr>>(31-i))&1]
	}
	if cur == nil || !cur.set {
		return zero, false
	}
	return cur.val, true
}

// Len returns the number of stored prefixes.
func (t *Table[V]) Len() int { return t.cur.Load().n }

// Generation returns the identifier of the published generation. It
// increments by one per committed transaction that changed anything.
func (t *Table[V]) Generation() uint64 { return t.cur.Load().id }

// Walk visits every stored prefix of the current generation in address
// order. The snapshot is immutable, so the callback may take as long as it
// likes without blocking writers (and must not assume later generations
// are visible).
func (t *Table[V]) Walk(fn func(addr uint32, bits int, v V) bool) {
	walk(t.cur.Load().root, 0, 0, fn)
}

func walk[V any](nd *node[V], addr uint32, depth int, fn func(uint32, int, V) bool) bool {
	if nd == nil {
		return true
	}
	if nd.set && !fn(addr, depth, nd.val) {
		return false
	}
	if depth == 32 {
		return true
	}
	if !walk(nd.child[0], addr, depth+1, fn) {
		return false
	}
	return walk(nd.child[1], addr|1<<(31-depth), depth+1, fn)
}

// Txn is a staged next generation: a private path-copied trie the
// transaction may mutate freely until Commit publishes it atomically. A
// transaction holds the table's writer lock for its whole lifetime:
// always Commit, and never leak one.
type Txn[V any] struct {
	t     *Table[V]
	root  *node[V]
	n     int
	stamp uint64
	dirty bool
}

// Begin opens a transaction against the current generation. Unlike the
// map FIB, nothing is copied up front — only the branches the transaction
// touches are path-copied, so a small batch against a large table stays
// cheap.
func (t *Table[V]) Begin() *Txn[V] {
	t.mu.Lock()
	cur := t.cur.Load()
	return &Txn[V]{t: t, root: cur.root, n: cur.n, stamp: cur.id + 1}
}

// Dirty reports whether the transaction has staged an effective change.
func (tx *Txn[V]) Dirty() bool { return tx.dirty }

// Commit publishes the staged generation with a single pointer swap and
// releases the writer lock, returning the published generation id.
func (tx *Txn[V]) Commit() uint64 {
	cur := tx.t.cur.Load()
	id := cur.id
	if tx.dirty {
		id++
		tx.t.cur.Store(&gen[V]{root: tx.root, n: tx.n, id: id})
	}
	tx.t.mu.Unlock()
	tx.t = nil // poison: a second Commit is a bug, fail loudly
	return id
}

// mutable returns a node the transaction owns and may mutate: nd itself
// when this transaction created it, a copy otherwise (nil allocates a
// fresh node). Stamps strictly increase across generations, so a stamp
// match can only mean "created by this transaction".
func (tx *Txn[V]) mutable(nd *node[V]) *node[V] {
	if nd == nil {
		return &node[V]{stamp: tx.stamp}
	}
	if nd.stamp == tx.stamp {
		return nd
	}
	cp := *nd
	cp.stamp = tx.stamp
	return &cp
}

// Insert stages an add-or-replace of the value for addr/bits. Host bits
// must be zero.
func (tx *Txn[V]) Insert(addr uint32, bits int, v V) error {
	if err := checkPrefix(addr, bits); err != nil {
		return err
	}
	tx.root = tx.mutable(tx.root)
	cur := tx.root
	for i := 0; i < bits; i++ {
		b := (addr >> (31 - i)) & 1
		cur.child[b] = tx.mutable(cur.child[b])
		cur = cur.child[b]
	}
	if !cur.set {
		tx.n++
	}
	cur.val = v
	cur.set = true
	tx.dirty = true
	return nil
}

// Update stages fn applied to the value stored at exactly addr/bits, if
// present — the daemon's read-modify-write for alt ports. It reports
// whether the prefix existed.
func (tx *Txn[V]) Update(addr uint32, bits int, fn func(V) V) bool {
	if checkPrefix(addr, bits) != nil {
		return false
	}
	// Probe read-only first so a missing prefix stages no copies.
	probe := tx.root
	for i := 0; i < bits && probe != nil; i++ {
		probe = probe.child[(addr>>(31-i))&1]
	}
	if probe == nil || !probe.set {
		return false
	}
	tx.root = tx.mutable(tx.root)
	cur := tx.root
	for i := 0; i < bits; i++ {
		b := (addr >> (31 - i)) & 1
		cur.child[b] = tx.mutable(cur.child[b])
		cur = cur.child[b]
	}
	cur.val = fn(cur.val)
	tx.dirty = true
	return true
}

// Remove stages deletion of the exact prefix addr/bits and reports whether
// it existed. Empty sub-tries are pruned.
func (tx *Txn[V]) Remove(addr uint32, bits int) bool {
	if checkPrefix(addr, bits) != nil {
		return false
	}
	// Probe read-only first so a missing prefix stages no copies.
	probe := tx.root
	for i := 0; i < bits && probe != nil; i++ {
		probe = probe.child[(addr>>(31-i))&1]
	}
	if probe == nil || !probe.set {
		return false
	}
	tx.root = tx.mutable(tx.root)
	path := make([]*node[V], 0, bits+1)
	cur := tx.root
	path = append(path, cur)
	for i := 0; i < bits; i++ {
		b := (addr >> (31 - i)) & 1
		cur.child[b] = tx.mutable(cur.child[b])
		cur = cur.child[b]
		path = append(path, cur)
	}
	var zero V
	cur.val = zero
	cur.set = false
	tx.n--
	tx.dirty = true
	// Prune childless, valueless nodes bottom-up. Every node on the path is
	// transaction-owned, so in-place surgery is safe.
	for i := len(path) - 1; i >= 0; i-- {
		nd := path[i]
		if nd.set || nd.child[0] != nil || nd.child[1] != nil {
			break
		}
		if i == 0 {
			tx.root = nil
			break
		}
		path[i-1].child[(addr>>(31-(i-1)))&1] = nil
	}
	return true
}

// Insert adds or replaces the value for addr/bits in a single-op
// transaction. Host bits must be zero.
func (t *Table[V]) Insert(addr uint32, bits int, v V) error {
	tx := t.Begin()
	err := tx.Insert(addr, bits, v)
	tx.Commit()
	return err
}

// Remove deletes the exact prefix addr/bits and reports whether it
// existed.
func (t *Table[V]) Remove(addr uint32, bits int) bool {
	tx := t.Begin()
	ok := tx.Remove(addr, bits)
	tx.Commit()
	return ok
}

// Update applies fn to the value stored at exactly addr/bits, if present.
func (t *Table[V]) Update(addr uint32, bits int, fn func(V) V) bool {
	tx := t.Begin()
	ok := tx.Update(addr, bits, fn)
	tx.Commit()
	return ok
}
