// Package lpm implements an IPv4 longest-prefix-match table as a binary
// trie — the lookup structure behind a real router FIB. The paper's
// prototype modifies the Linux kernel's fib_table and re-implements
// ip_mkroute_input(); this package is the corresponding substrate so the
// forwarding engine can run on genuine prefixes instead of dense
// destination identifiers.
//
// The table is safe for concurrent use: lookups take a read lock while the
// MIFO daemon inserts and updates entries, matching the FE/daemon split.
package lpm

import (
	"fmt"
	"sync"
)

// node is one binary-trie vertex. A node carries a value when a prefix
// ends exactly here.
type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// Table is a longest-prefix-match table from IPv4 prefixes to values.
type Table[V any] struct {
	mu   sync.RWMutex
	root node[V]
	n    int
}

// New returns an empty table.
func New[V any]() *Table[V] { return &Table[V]{} }

func checkPrefix(addr uint32, bits int) error {
	if bits < 0 || bits > 32 {
		return fmt.Errorf("lpm: prefix length %d out of range", bits)
	}
	if bits < 32 && addr<<bits != 0 {
		return fmt.Errorf("lpm: %08x/%d has host bits set", addr, bits)
	}
	return nil
}

// Insert adds or replaces the value for addr/bits. Host bits must be zero.
func (t *Table[V]) Insert(addr uint32, bits int, v V) error {
	if err := checkPrefix(addr, bits); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := &t.root
	for i := 0; i < bits; i++ {
		b := (addr >> (31 - i)) & 1
		if cur.child[b] == nil {
			cur.child[b] = &node[V]{}
		}
		cur = cur.child[b]
	}
	if !cur.set {
		t.n++
	}
	cur.val = v
	cur.set = true
	return nil
}

// Remove deletes the exact prefix addr/bits and reports whether it existed.
// Empty sub-tries are pruned.
func (t *Table[V]) Remove(addr uint32, bits int) bool {
	if checkPrefix(addr, bits) != nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	path := make([]*node[V], 0, bits+1)
	cur := &t.root
	path = append(path, cur)
	for i := 0; i < bits; i++ {
		b := (addr >> (31 - i)) & 1
		if cur.child[b] == nil {
			return false
		}
		cur = cur.child[b]
		path = append(path, cur)
	}
	if !cur.set {
		return false
	}
	var zero V
	cur.val = zero
	cur.set = false
	t.n--
	// Prune childless, valueless nodes bottom-up.
	for i := len(path) - 1; i > 0; i-- {
		nd := path[i]
		if nd.set || nd.child[0] != nil || nd.child[1] != nil {
			break
		}
		b := (addr >> (31 - (i - 1))) & 1
		path[i-1].child[b] = nil
	}
	return true
}

// Lookup returns the value of the longest prefix covering addr.
func (t *Table[V]) Lookup(addr uint32) (V, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var best V
	found := false
	cur := &t.root
	for i := 0; ; i++ {
		if cur.set {
			best = cur.val
			found = true
		}
		if i == 32 {
			break
		}
		b := (addr >> (31 - i)) & 1
		if cur.child[b] == nil {
			break
		}
		cur = cur.child[b]
	}
	return best, found
}

// Exact returns the value stored at exactly addr/bits.
func (t *Table[V]) Exact(addr uint32, bits int) (V, bool) {
	var zero V
	if checkPrefix(addr, bits) != nil {
		return zero, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	cur := &t.root
	for i := 0; i < bits; i++ {
		b := (addr >> (31 - i)) & 1
		if cur.child[b] == nil {
			return zero, false
		}
		cur = cur.child[b]
	}
	if !cur.set {
		return zero, false
	}
	return cur.val, true
}

// Update applies fn to the value stored at exactly addr/bits, if present,
// under the write lock — the daemon's read-modify-write for alt ports.
func (t *Table[V]) Update(addr uint32, bits int, fn func(V) V) bool {
	if checkPrefix(addr, bits) != nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := &t.root
	for i := 0; i < bits; i++ {
		b := (addr >> (31 - i)) & 1
		if cur.child[b] == nil {
			return false
		}
		cur = cur.child[b]
	}
	if !cur.set {
		return false
	}
	cur.val = fn(cur.val)
	return true
}

// Len returns the number of stored prefixes.
func (t *Table[V]) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.n
}

// Walk visits every stored prefix in address order. The callback must not
// mutate the table.
func (t *Table[V]) Walk(fn func(addr uint32, bits int, v V) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.walk(&t.root, 0, 0, fn)
}

func (t *Table[V]) walk(nd *node[V], addr uint32, depth int, fn func(uint32, int, V) bool) bool {
	if nd == nil {
		return true
	}
	if nd.set && !fn(addr, depth, nd.val) {
		return false
	}
	if depth == 32 {
		return true
	}
	if !t.walk(nd.child[0], addr, depth+1, fn) {
		return false
	}
	return t.walk(nd.child[1], addr|1<<(31-depth), depth+1, fn)
}
