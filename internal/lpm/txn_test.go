package lpm

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestTxnAtomicVisibility: staged operations are invisible until Commit,
// then all visible at once, with one generation bump per dirty commit.
func TestTxnAtomicVisibility(t *testing.T) {
	tb := New[int]()
	mustInsertInt(t, tb, 0x0A000000, 8, 1)
	gen := tb.Generation()

	tx := tb.Begin()
	if err := tx.Insert(0x0B000000, 8, 2); err != nil {
		t.Fatal(err)
	}
	if !tx.Update(0x0A000000, 8, func(v int) int { return v + 10 }) {
		t.Fatal("Update missed existing prefix")
	}
	if _, ok := tb.Exact(0x0B000000, 8); ok {
		t.Fatal("staged insert visible before commit")
	}
	if v, _ := tb.Exact(0x0A000000, 8); v != 1 {
		t.Fatalf("staged update visible before commit: %d", v)
	}
	if got := tx.Commit(); got != gen+1 {
		t.Fatalf("commit generation = %d, want %d", got, gen+1)
	}
	if v, ok := tb.Exact(0x0B000000, 8); !ok || v != 2 {
		t.Fatalf("committed insert missing: %d %v", v, ok)
	}
	if v, _ := tb.Exact(0x0A000000, 8); v != 11 {
		t.Fatalf("committed update missing: %d", v)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

// TestTxnNoOpKeepsGeneration: a transaction whose operations all miss
// publishes nothing.
func TestTxnNoOpKeepsGeneration(t *testing.T) {
	tb := New[int]()
	mustInsertInt(t, tb, 0x0A000000, 8, 1)
	gen := tb.Generation()
	tx := tb.Begin()
	if tx.Update(0x0C000000, 8, func(v int) int { return v }) {
		t.Fatal("Update hit a missing prefix")
	}
	if tx.Remove(0x0C000000, 8) {
		t.Fatal("Remove hit a missing prefix")
	}
	if got := tx.Commit(); got != gen {
		t.Fatalf("no-op commit moved generation %d -> %d", gen, got)
	}
}

// TestTxnRemovePrunes: removal inside a transaction prunes empty branches
// without disturbing the published snapshot readers hold.
func TestTxnRemovePrunes(t *testing.T) {
	tb := New[int]()
	mustInsertInt(t, tb, 0x80000000, 1, 1)
	mustInsertInt(t, tb, 0x80000000, 9, 2)

	tx := tb.Begin()
	if !tx.Remove(0x80000000, 9) {
		t.Fatal("Remove missed")
	}
	tx.Commit()
	if v, ok := tb.Lookup(0x80000001); !ok || v != 1 {
		t.Fatalf("covering prefix lost after prune: %d %v", v, ok)
	}
	if _, ok := tb.Exact(0x80000000, 9); ok {
		t.Fatal("removed prefix still present")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tb.Len())
	}

	// Remove the last prefix: the root itself prunes away.
	tb.Remove(0x80000000, 1)
	if tb.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tb.Len())
	}
	if _, ok := tb.Lookup(0x80000000); ok {
		t.Fatal("lookup hit in an empty table")
	}
}

// TestTxnSnapshotIsolation: a reader that captured the table before a
// commit keeps seeing its snapshot through Walk while a writer publishes
// new generations (the RCU property the forwarding engine relies on).
func TestTxnSnapshotIsolation(t *testing.T) {
	tb := New[int]()
	mustInsertInt(t, tb, 0x0A000000, 8, 1)

	sawDuringWalk := 0
	tb.Walk(func(addr uint32, bits int, v int) bool {
		// Publish a new generation mid-walk; the walk must not see it.
		tb.Insert(0x0B000000, 8, 2)
		sawDuringWalk++
		return true
	})
	if sawDuringWalk != 1 {
		t.Fatalf("walk over snapshot visited %d prefixes, want 1", sawDuringWalk)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after mid-walk insert", tb.Len())
	}
}

// TestLPMConcurrentCommitLookup is the -race stress for the prefix FIB:
// readers look up continuously while a writer batch-updates values. The
// invariant: both prefixes always carry the same committed batch number.
func TestLPMConcurrentCommitLookup(t *testing.T) {
	tb := New[int]()
	mustInsertInt(t, tb, 0x0A000000, 8, 0)
	mustInsertInt(t, tb, 0x0B000000, 8, 0)

	const commits = 1000
	var stop atomic.Bool
	var readers, writers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				a, ok1 := tb.Lookup(0x0A000001)
				if !ok1 {
					t.Error("prefix vanished")
					return
				}
				_ = a
				// A single generation must be internally consistent.
				var va, vb int
				n := 0
				tb.Walk(func(_ uint32, _ int, v int) bool {
					if n == 0 {
						va = v
					} else {
						vb = v
					}
					n++
					return true
				})
				if n != 2 || va != vb {
					t.Errorf("torn generation: saw %d prefixes, values %d/%d", n, va, vb)
					return
				}
			}
		}()
	}
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 1; i <= commits; i++ {
			tx := tb.Begin()
			tx.Update(0x0A000000, 8, func(int) int { return i })
			tx.Update(0x0B000000, 8, func(int) int { return i })
			tx.Commit()
		}
	}()
	writers.Wait()
	stop.Store(true)
	readers.Wait()
	if v, _ := tb.Exact(0x0A000000, 8); v != commits {
		t.Fatalf("final value %d, want %d", v, commits)
	}
}
