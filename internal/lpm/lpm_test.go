package lpm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustInsert(t testing.TB, tb *Table[string], addr uint32, bits int, v string) {
	t.Helper()
	if err := tb.Insert(addr, bits, v); err != nil {
		t.Fatal(err)
	}
}

func TestBasicLongestMatch(t *testing.T) {
	tb := New[string]()
	mustInsert(t, tb, 0x0A000000, 8, "ten-slash-8")
	mustInsert(t, tb, 0x0A010000, 16, "ten-one")
	mustInsert(t, tb, 0x0A010100, 24, "ten-one-one")
	mustInsert(t, tb, 0x00000000, 0, "default")

	cases := []struct {
		addr uint32
		want string
	}{
		{0x0A010101, "ten-one-one"},
		{0x0A010201, "ten-one"},
		{0x0A020101, "ten-slash-8"},
		{0x0B000001, "default"},
	}
	for _, c := range cases {
		got, ok := tb.Lookup(c.addr)
		if !ok || got != c.want {
			t.Errorf("lookup %08x = %q,%v, want %q", c.addr, got, ok, c.want)
		}
	}
	if tb.Len() != 4 {
		t.Errorf("len = %d", tb.Len())
	}
}

func TestNoMatch(t *testing.T) {
	tb := New[int]()
	mustInsert2 := tb.Insert(0xC0000000, 8, 1)
	if mustInsert2 != nil {
		t.Fatal(mustInsert2)
	}
	if _, ok := tb.Lookup(0x0A000001); ok {
		t.Error("lookup outside any prefix must miss")
	}
}

func TestInsertValidation(t *testing.T) {
	tb := New[int]()
	if err := tb.Insert(0x0A000001, 8, 1); err == nil {
		t.Error("host bits set must error")
	}
	if err := tb.Insert(0, -1, 1); err == nil {
		t.Error("negative bits must error")
	}
	if err := tb.Insert(0, 33, 1); err == nil {
		t.Error("bits > 32 must error")
	}
	if err := tb.Insert(0xFFFFFFFF, 32, 1); err != nil {
		t.Errorf("/32 insert failed: %v", err)
	}
}

func TestRemoveAndPrune(t *testing.T) {
	tb := New[int]()
	mustInsertInt(t, tb, 0x0A000000, 8, 1)
	mustInsertInt(t, tb, 0x0A010000, 16, 2)
	if !tb.Remove(0x0A010000, 16) {
		t.Fatal("remove failed")
	}
	if tb.Remove(0x0A010000, 16) {
		t.Fatal("double remove succeeded")
	}
	if got, _ := tb.Lookup(0x0A010101); got != 1 {
		t.Errorf("after removal lookup = %d, want the /8", got)
	}
	if tb.Len() != 1 {
		t.Errorf("len = %d", tb.Len())
	}
	// Removing a prefix whose path exists but has no value.
	if tb.Remove(0x0A000000, 6) {
		t.Error("removed a prefix that was never inserted")
	}
}

func mustInsertInt(t testing.TB, tb *Table[int], addr uint32, bits int, v int) {
	t.Helper()
	if err := tb.Insert(addr, bits, v); err != nil {
		t.Fatal(err)
	}
}

func TestExactAndUpdate(t *testing.T) {
	tb := New[int]()
	mustInsertInt(t, tb, 0x0A000000, 8, 7)
	if v, ok := tb.Exact(0x0A000000, 8); !ok || v != 7 {
		t.Errorf("exact = %d,%v", v, ok)
	}
	if _, ok := tb.Exact(0x0A000000, 9); ok {
		t.Error("exact with wrong length matched")
	}
	if !tb.Update(0x0A000000, 8, func(v int) int { return v + 1 }) {
		t.Fatal("update failed")
	}
	if v, _ := tb.Exact(0x0A000000, 8); v != 8 {
		t.Errorf("after update = %d", v)
	}
	if tb.Update(0x0B000000, 8, func(v int) int { return v }) {
		t.Error("update of missing prefix succeeded")
	}
}

func TestWalkOrder(t *testing.T) {
	tb := New[int]()
	prefixes := []struct {
		addr uint32
		bits int
	}{
		{0x0A000000, 8}, {0x00000000, 0}, {0xC0000000, 4}, {0x0A010000, 16},
	}
	for i, p := range prefixes {
		mustInsertInt(t, tb, p.addr, p.bits, i)
	}
	var seen []uint32
	tb.Walk(func(addr uint32, bits int, v int) bool {
		seen = append(seen, addr)
		return true
	})
	if len(seen) != 4 {
		t.Fatalf("walk visited %d, want 4", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("walk not in address order: %x", seen)
		}
	}
	// Early termination.
	count := 0
	tb.Walk(func(uint32, int, int) bool { count++; return false })
	if count != 1 {
		t.Errorf("walk did not stop early: %d", count)
	}
}

// naive is the reference implementation: linear scan over prefixes.
type naiveEntry struct {
	addr uint32
	bits int
	val  int
}

func naiveLookup(entries []naiveEntry, addr uint32) (int, bool) {
	best, bestBits, found := 0, -1, false
	for _, e := range entries {
		var mask uint32
		if e.bits > 0 {
			mask = ^uint32(0) << (32 - e.bits)
		}
		if addr&mask == e.addr && e.bits > bestBits {
			best, bestBits, found = e.val, e.bits, true
		}
	}
	return best, found
}

// Property: the trie agrees with the naive reference on random prefix sets
// and random probes, including after removals.
func TestQuickAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New[int]()
		var entries []naiveEntry
		for i := 0; i < 60; i++ {
			bits := rng.Intn(33)
			var addr uint32
			if bits > 0 {
				addr = rng.Uint32() &^ (^uint32(0) >> bits)
			}
			// Replace semantics on duplicates, in both implementations.
			replaced := false
			for j := range entries {
				if entries[j].addr == addr && entries[j].bits == bits {
					entries[j].val = i
					replaced = true
				}
			}
			if !replaced {
				entries = append(entries, naiveEntry{addr, bits, i})
			}
			if err := tb.Insert(addr, bits, i); err != nil {
				return false
			}
		}
		// Random removals.
		for i := 0; i < 15 && len(entries) > 0; i++ {
			k := rng.Intn(len(entries))
			e := entries[k]
			if !tb.Remove(e.addr, e.bits) {
				return false
			}
			entries = append(entries[:k], entries[k+1:]...)
		}
		if tb.Len() != len(entries) {
			return false
		}
		for i := 0; i < 300; i++ {
			addr := rng.Uint32()
			wantV, wantOK := naiveLookup(entries, addr)
			gotV, gotOK := tb.Lookup(addr)
			if wantOK != gotOK || (wantOK && wantV != gotV) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tb := New[int]()
	// A routing-table-like mix: /8 to /24.
	for i := 0; i < 100000; i++ {
		bits := 8 + rng.Intn(17)
		addr := rng.Uint32() &^ (^uint32(0) >> bits)
		tb.Insert(addr, bits, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(rng.Uint32())
	}
}
