package dataplane

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalPacket hardens the wire parser: arbitrary bytes must never
// panic, and anything that parses must re-marshal to a parseable datagram
// carrying the same fields.
func FuzzUnmarshalPacket(f *testing.F) {
	plain := samplePacket()
	plain.Flow.DstAddr = PrefixAddr(plain.Dst)
	f.Add(MarshalPacket(plain))
	encap := samplePacket()
	encap.Flow.DstAddr = PrefixAddr(encap.Dst)
	encap.Encap = true
	encap.OuterSrc, encap.OuterDst = 1, 2
	f.Add(MarshalPacket(encap))
	f.Add([]byte{})
	f.Add([]byte{0x45, 0x00, 0x00, 0x14})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPacket(data)
		if err != nil {
			return
		}
		// Successful parses must round trip stably.
		again, err := UnmarshalPacket(MarshalPacket(p))
		if err != nil {
			t.Fatalf("re-marshal failed: %v (packet %+v)", err, p)
		}
		if again.Flow != p.Flow || again.Tag != p.Tag || again.Encap != p.Encap {
			t.Fatalf("unstable round trip:\n  %+v\n  %+v", p, again)
		}
	})
}
