package dataplane

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestFIBTransactionAtomicity: a reader must never observe a half-applied
// transaction — every lookup sees either the whole previous generation or
// the whole committed one.
func TestFIBTransactionAtomicity(t *testing.T) {
	f := NewFIB()
	tx := f.Begin()
	tx.Set(1, FIBEntry{Out: 1, Alt: -1, AltVia: -1})
	tx.Set(2, FIBEntry{Out: 2, Alt: -1, AltVia: -1})
	tx.Commit()
	if f.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", f.Generation())
	}

	// Stage a correlated update of both entries...
	tx = f.Begin()
	tx.SetAlt(1, 9, 9)
	tx.SetAlt(2, 9, 9)
	// ...not yet visible before Commit.
	if e, _ := f.Lookup(1); e.Alt != -1 {
		t.Fatalf("staged write visible before commit: %+v", e)
	}
	tx.Commit()
	e1, _ := f.Lookup(1)
	e2, _ := f.Lookup(2)
	if e1.Alt != 9 || e2.Alt != 9 {
		t.Fatalf("committed writes not visible: %+v %+v", e1, e2)
	}
	if f.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", f.Generation())
	}
}

// TestFIBCleanCommitKeepsGeneration: a transaction that changes nothing
// effective publishes nothing.
func TestFIBCleanCommitKeepsGeneration(t *testing.T) {
	f := NewFIB()
	f.Set(1, FIBEntry{Out: 1, Alt: 3, AltVia: 7})
	gen := f.Generation()

	tx := f.Begin()
	if !tx.SetAlt(1, 3, 7) {
		t.Fatal("SetAlt on existing entry reported missing")
	}
	if tx.SetAlt(42, 1, 1) {
		t.Fatal("SetAlt on missing entry reported success")
	}
	if got := tx.Commit(); got != gen {
		t.Fatalf("no-op commit moved generation %d -> %d", gen, got)
	}
}

// TestFIBConcurrentCommitLookup is the -race stress for the FE/daemon
// split: readers hammer Lookup while writers commit batched generations.
// Each committed generation keeps the invariant Alt == Out+1 across both
// entries, so any torn read surfaces as a broken pair.
func TestFIBConcurrentCommitLookup(t *testing.T) {
	f := NewFIB()
	tx := f.Begin()
	tx.Set(1, FIBEntry{Out: 0, Alt: 1, AltVia: 1})
	tx.Set(2, FIBEntry{Out: 0, Alt: 1, AltVia: 1})
	tx.Commit()

	const commits = 2000
	var stop atomic.Bool
	var readers, writers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				e1, ok1 := f.Lookup(1)
				e2, ok2 := f.Lookup(2)
				if !ok1 || !ok2 {
					t.Error("entry vanished mid-run")
					return
				}
				if e1.Alt != e1.Out+1 || e2.Alt != e2.Out+1 {
					t.Errorf("torn read: %+v %+v", e1, e2)
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < commits; i++ {
				tx := f.Begin()
				// Disjoint per-writer value ranges: every staged entry
				// differs from the incumbent (whichever writer published
				// it), so identical-entry skipping never cleans a commit
				// and the generation count below stays exact.
				out := w*7 + i%7 + 1
				tx.Set(1, FIBEntry{Out: out, Alt: out + 1, AltVia: 1})
				tx.Set(2, FIBEntry{Out: out, Alt: out + 1, AltVia: 1})
				tx.Commit()
			}
		}(w)
	}
	writers.Wait()
	stop.Store(true)
	readers.Wait()
	if got := f.Generation(); got != 1+2*commits {
		t.Fatalf("generation = %d, want %d (one bump per dirty commit)", got, 1+2*commits)
	}
}

// TestFIBDelete: withdrawing a route removes the entry (a lookup must
// drop as no-route, not follow a stale path) and publishes a generation;
// re-withdrawing an absent entry stays clean.
func TestFIBDelete(t *testing.T) {
	f := NewFIB()
	f.Set(1, FIBEntry{Out: 1, Alt: -1, AltVia: -1})
	gen := f.Generation()

	tx := f.Begin()
	tx.Delete(1)
	if !tx.Dirty() {
		t.Error("Delete of a present entry left the transaction clean")
	}
	if got := tx.Commit(); got != gen+1 {
		t.Fatalf("withdraw commit generation = %d, want %d", got, gen+1)
	}
	if _, ok := f.Lookup(1); ok {
		t.Fatal("withdrawn entry still resolves")
	}

	tx = f.Begin()
	tx.Delete(1)
	if tx.Dirty() {
		t.Error("Delete of an absent entry dirtied the transaction")
	}
	if got := tx.Commit(); got != gen+1 {
		t.Errorf("clean re-withdraw moved generation %d -> %d", gen+1, got)
	}
}

// TestFIBSetIdenticalIsClean: re-staging the incumbent entry must not
// dirty the transaction — unchanged routers publish no new generation,
// which is what keeps fib_swap spans (and generation counts) meaningful
// as "forwarding actually changed here" signals.
func TestFIBSetIdenticalIsClean(t *testing.T) {
	f := NewFIB()
	e := FIBEntry{Out: 3, Alt: 5, AltVia: 2}
	f.Set(7, e)
	gen := f.Generation()

	tx := f.Begin()
	tx.Set(7, e)
	if tx.Dirty() {
		t.Error("identical Set dirtied the transaction")
	}
	if got := tx.Commit(); got != gen {
		t.Errorf("clean commit moved generation %d -> %d", gen, got)
	}

	tx = f.Begin()
	tx.Set(7, FIBEntry{Out: 4, Alt: 5, AltVia: 2})
	if !tx.Dirty() {
		t.Error("changed Set left the transaction clean")
	}
	if got := tx.Commit(); got != gen+1 {
		t.Errorf("dirty commit generation = %d, want %d", got, gen+1)
	}
}
