package dataplane

import (
	"fmt"

	"repro/internal/topo"
)

// Network wires routers together so packets can be stepped hop by hop.
// It is the in-process stand-in for the paper's testbed wiring.
type Network struct {
	// Routers is indexed by RouterID.
	Routers []*Router
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{} }

// AddRouter creates a router in the given AS and returns it.
func (n *Network) AddRouter(as int32) *Router {
	r := NewRouter(RouterID(len(n.Routers)), as)
	n.Routers = append(n.Routers, r)
	return r
}

// Router returns the router with the given id.
func (n *Network) Router(id RouterID) *Router { return n.Routers[id] }

// Connect links routers a and b with a bidirectional link of the given
// capacity. relAtoB is the business relationship of b's AS as seen from a's
// AS (ignored for iBGP links). It returns the port indices created on a and
// b respectively.
func (n *Network) Connect(a, b RouterID, kind PortKind, relAtoB topo.Rel, capacityBps float64) (int, int) {
	ra, rb := n.Routers[a], n.Routers[b]
	if kind == IBGP && ra.AS != rb.AS {
		panic(fmt.Sprintf("dataplane: iBGP link between different ASes %d and %d", ra.AS, rb.AS))
	}
	if kind == EBGP && ra.AS == rb.AS {
		panic(fmt.Sprintf("dataplane: eBGP link within AS %d", ra.AS))
	}
	pa := ra.AddPort(Port{Kind: kind, Peer: b, PeerAS: rb.AS, Rel: relAtoB, CapacityBps: capacityBps})
	pb := rb.AddPort(Port{Kind: kind, Peer: a, PeerAS: ra.AS, Rel: relAtoB.Invert(), CapacityBps: capacityBps})
	ra.Ports[pa].PeerPort = pb
	rb.Ports[pb].PeerPort = pa
	return pa, pb
}

// AttachHost adds a host port to router r and returns its index.
func (n *Network) AttachHost(r RouterID, capacityBps float64) int {
	return n.Routers[r].AddPort(Port{Kind: Host, Peer: -1, PeerPort: -1, PeerAS: n.Routers[r].AS, CapacityBps: capacityBps})
}

// Hop records one step of a packet's journey.
type Hop struct {
	Router    RouterID
	InPort    int
	OutPort   int
	Deflected bool
}

// Result summarizes a packet's fate.
type Result struct {
	// Verdict is VerdictDeliver or VerdictDrop (never VerdictForward).
	Verdict Verdict
	// Reason explains a drop.
	Reason DropReason
	// At is the router where the packet's journey ended.
	At RouterID
	// Hops is the full trace, one entry per router visited.
	Hops []Hop
	// Deflections counts hops on which the packet took an alternative path.
	Deflections int
}

// ASPath extracts the sequence of ASes visited, collapsing consecutive
// routers of the same AS.
func (res Result) ASPath(n *Network) []int32 {
	var path []int32
	for _, h := range res.Hops {
		as := n.Routers[h.Router].AS
		if len(path) == 0 || path[len(path)-1] != as {
			path = append(path, as)
		}
	}
	return path
}

// DefaultTTL bounds packet journeys. Interdomain paths average under five
// AS hops; 64 mirrors a conventional IP TTL.
const DefaultTTL = 64

// Send injects packet p at origin (as locally originated traffic) and steps
// it through the network until it is delivered or dropped. The packet's TTL
// is honored if positive, else DefaultTTL is used.
func (n *Network) Send(p *Packet, origin RouterID) Result {
	if p.TTL <= 0 {
		p.TTL = DefaultTTL
	}
	res := Result{}
	cur := origin
	in := -1
	for {
		if p.TTL == 0 {
			n.Routers[cur].DropExpired(p, in)
			res.Verdict = VerdictDrop
			res.Reason = DropTTL
			res.At = cur
			return res
		}
		p.TTL--
		r := n.Routers[cur]
		act := r.Forward(p, in)
		res.Hops = append(res.Hops, Hop{Router: cur, InPort: in, OutPort: act.Port, Deflected: act.Deflected})
		if act.Deflected {
			res.Deflections++
		}
		switch act.Verdict {
		case VerdictDeliver:
			res.Verdict = VerdictDeliver
			res.At = cur
			return res
		case VerdictDrop:
			res.Verdict = VerdictDrop
			res.Reason = act.Reason
			res.At = cur
			return res
		}
		port := &r.Ports[act.Port]
		if port.Peer < 0 {
			res.Verdict = VerdictDrop
			res.Reason = DropNoRoute
			res.At = cur
			return res
		}
		cur = port.Peer
		in = port.PeerPort
	}
}
