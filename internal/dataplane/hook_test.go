package dataplane

import (
	"testing"

	"repro/internal/topo"
)

// installHook attaches one capturing hook to every router and returns the
// captured hop sequence.
func installHook(n *Network) *[]HopInfo {
	var hops []HopInfo
	hook := func(p *Packet, h HopInfo) { hops = append(hops, h) }
	for _, r := range n.Routers {
		r.Hop = hook
	}
	return &hops
}

func TestHopHookSeesCleanJourney(t *testing.T) {
	n, r, _ := fig2aNet(t)
	hops := installHook(n)
	p := &Packet{Flow: FlowKey{SrcAddr: 9, DstAddr: 0}, Dst: 0}
	res := n.Send(p, r[3].ID)
	if res.Verdict != VerdictDeliver {
		t.Fatalf("send: %+v", res)
	}
	got := *hops
	if len(got) != 2 {
		t.Fatalf("hook saw %d hops, want 2: %+v", len(got), got)
	}
	h0 := got[0]
	if h0.Router != r[3].ID || h0.AS != 3 || h0.InKind != Host || h0.Verdict != VerdictForward {
		t.Fatalf("first hop = %+v", h0)
	}
	if h0.OutKind != EBGP || h0.OutRel != topo.Customer || h0.ToAS != 0 {
		t.Fatalf("first hop egress context = %+v", h0)
	}
	if !h0.Tag {
		t.Fatal("locally originated traffic must carry the entry tag")
	}
	h1 := got[1]
	if h1.AS != 0 || h1.Verdict != VerdictDeliver || h1.Out != -1 {
		t.Fatalf("delivery hop = %+v", h1)
	}
	if h1.InKind != EBGP || h1.InRel != topo.Provider || h1.FromAS != 3 {
		t.Fatalf("delivery hop arrival context = %+v", h1)
	}
}

func TestHopHookSeesDeflectionAndTagDrop(t *testing.T) {
	n, r, toZero := fig2aNet(t)
	congestAllDefaults(r, toZero)
	hops := installHook(n)
	p := &Packet{Flow: FlowKey{SrcAddr: 1, DstAddr: 0}, Dst: 0}
	res := n.Send(p, r[1].ID)
	if res.Verdict != VerdictDrop || res.Reason != DropValleyFree {
		t.Fatalf("send: %+v", res)
	}
	got := *hops
	if len(got) != 2 {
		t.Fatalf("hook saw %d hops: %+v", len(got), got)
	}
	if !got[0].Deflected || !got[0].AltTried || got[0].AltRel != topo.Peer {
		t.Fatalf("deflection hop = %+v", got[0])
	}
	drop := got[1]
	if drop.Verdict != VerdictDrop || drop.Reason != DropValleyFree {
		t.Fatalf("drop hop = %+v", drop)
	}
	// The refused alternative context: AS 2's only escape was another
	// peer, which the clear tag forbids — the auditor's justification.
	if !drop.AltTried || drop.AltRel != topo.Peer {
		t.Fatalf("drop hop alternative context = %+v", drop)
	}
	if drop.Tag {
		t.Fatal("packet entered AS 2 from a peer; tag must be clear")
	}
}

func TestHopHookSeesEncapHandoff(t *testing.T) {
	n, r1, r2, _, rz := fig2bNet(t)
	r1.SetQueueRatio(0, 1.0)
	hops := installHook(n)
	p := &Packet{Flow: FlowKey{SrcAddr: 7, DstAddr: 0}, Dst: 0}
	res := n.Send(p, r1.ID)
	if res.Verdict != VerdictDeliver || res.At != rz.ID {
		t.Fatalf("send: %+v", res)
	}
	got := *hops
	if len(got) != 3 {
		t.Fatalf("hook saw %d hops: %+v", len(got), got)
	}
	// R1 encapsulates towards its iBGP peer.
	if !got[0].LeftEncap || got[0].OutKind != IBGP || !got[0].Deflected {
		t.Fatalf("encap hop = %+v", got[0])
	}
	if got[0].ArrivedEncap {
		t.Fatalf("packet arrived at R1 unencapsulated: %+v", got[0])
	}
	// R2 receives it encapsulated over iBGP and decapsulates to exit.
	if !got[1].ArrivedEncap || got[1].Router != r2.ID || got[1].InKind != IBGP {
		t.Fatalf("decap hop = %+v", got[1])
	}
	if got[1].LeftEncap {
		t.Fatalf("packet left R2 still encapsulated: %+v", got[1])
	}
}

func TestHopHookSeesTTLExpiry(t *testing.T) {
	n := NewNetwork()
	a := n.AddRouter(1)
	b := n.AddRouter(2)
	pa, pb := n.Connect(a.ID, b.ID, EBGP, topo.Customer, 1e9)
	a.FIB.Set(7, FIBEntry{Out: pa, Alt: -1, AltVia: -1})
	b.FIB.Set(7, FIBEntry{Out: pb, Alt: -1, AltVia: -1})
	hops := installHook(n)
	res := n.Send(&Packet{Dst: 7, TTL: 6}, a.ID)
	if res.Reason != DropTTL {
		t.Fatalf("send: %+v", res)
	}
	got := *hops
	if len(got) == 0 {
		t.Fatal("hook saw nothing")
	}
	last := got[len(got)-1]
	if last.Verdict != VerdictDrop || last.Reason != DropTTL {
		t.Fatalf("last hop = %+v, want the TTL expiry", last)
	}
	if int32(last.Router) != int32(res.At) {
		t.Fatalf("TTL drop observed at router %d, result says %d", last.Router, res.At)
	}
}

func TestNilHookCostsNothingBehaviorally(t *testing.T) {
	// Same scenario with and without a hook must produce identical results.
	run := func(withHook bool) Result {
		n, r, toZero := fig2aNet(t)
		congestAllDefaults(r, toZero)
		if withHook {
			installHook(n)
		}
		return n.Send(&Packet{Flow: FlowKey{SrcAddr: 1, DstAddr: 0}, Dst: 0}, r[1].ID)
	}
	plain, hooked := run(false), run(true)
	if plain.Verdict != hooked.Verdict || plain.Reason != hooked.Reason ||
		plain.At != hooked.At || plain.Deflections != hooked.Deflections {
		t.Fatalf("hook changed the outcome: %+v vs %+v", plain, hooked)
	}
}

// The flight-recorder overhead contract: a nil hook costs one branch.
func BenchmarkForwardDefaultPathNilHook(b *testing.B) {
	r := NewRouter(0, 1)
	out := r.AddPort(Port{Kind: EBGP, Peer: 1, PeerAS: 2, Rel: topo.Customer, CapacityBps: 1e9})
	r.FIB.Set(7, FIBEntry{Out: out, Alt: -1, AltVia: -1})
	p := &Packet{Dst: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.TTL = 8
		p.Tag = false
		r.Forward(p, -1)
	}
}

// An attached no-op hook pays for HopInfo construction — the recorder-side
// sampling decision happens inside the hook, so this is the ceiling any
// always-on hook pays per forwarding decision.
func BenchmarkForwardDefaultPathNoopHook(b *testing.B) {
	r := NewRouter(0, 1)
	out := r.AddPort(Port{Kind: EBGP, Peer: 1, PeerAS: 2, Rel: topo.Customer, CapacityBps: 1e9})
	r.FIB.Set(7, FIBEntry{Out: out, Alt: -1, AltVia: -1})
	r.Hop = func(p *Packet, h HopInfo) {}
	p := &Packet{Dst: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.TTL = 8
		p.Tag = false
		r.Forward(p, -1)
	}
}
