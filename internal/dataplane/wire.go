package dataplane

import (
	"encoding/binary"
	"fmt"
)

// Wire (de)serialization of MIFO packets as real IPv4 datagrams — the
// representation the paper's kernel-module forwarding engine manipulates:
//
//   - the valley-free tag travels in the IPv4 reserved flag bit
//     (Section III-A4's "one reserved bit in IP header" option);
//   - deflection across iBGP peers is genuine IP-in-IP (protocol 4): an
//     outer IPv4 header whose source/destination are the router addresses.
//
// Router IDs and destination prefixes map into the 10.0.0.0/8 and
// 198.18.0.0/15 spaces respectively, which keeps the headers valid and
// readable in hex dumps while staying inside documentation/benchmark
// address ranges.

const (
	ipv4Version    = 4
	ipv4MinIHL     = 5
	protoIPinIP    = 4
	protoTCP       = 6
	defaultWireTTL = 64
)

// RouterAddr returns the 10.x.y.z address of a router.
func RouterAddr(id RouterID) uint32 {
	return 0x0A000000 | uint32(id)&0x00FFFFFF
}

// RouterFromAddr inverts RouterAddr.
func RouterFromAddr(addr uint32) RouterID {
	return RouterID(addr & 0x00FFFFFF)
}

// PrefixAddr returns the 198.18.x.y address of a destination prefix.
func PrefixAddr(dst int32) uint32 {
	return 0xC6120000 | uint32(dst)&0x0000FFFF
}

// PrefixFromAddr inverts PrefixAddr.
func PrefixFromAddr(addr uint32) int32 {
	return int32(addr & 0x0000FFFF)
}

// MarshalPacket serializes p as an IPv4 datagram (with an outer IP-in-IP
// header when p.Encap is set). The inner payload carries the five-tuple as
// a minimal TCP-like header (ports only) so the flow hash survives the
// wire.
func MarshalPacket(p *Packet) []byte {
	dstAddr := p.Flow.DstAddr
	if dstAddr == 0 {
		dstAddr = PrefixAddr(p.Dst)
	}
	inner := marshalIPv4(ipv4Header{
		srcAddr:  p.Flow.SrcAddr,
		dstAddr:  dstAddr,
		protocol: p.Flow.Proto,
		ttl:      uint8(clampTTL(p.TTL)),
		ident:    p.ID,
		tag:      p.Tag,
		payload:  marshalPorts(p.Flow.SrcPort, p.Flow.DstPort),
	})
	if !p.Encap {
		return inner
	}
	return marshalIPv4(ipv4Header{
		srcAddr:  RouterAddr(p.OuterSrc),
		dstAddr:  RouterAddr(p.OuterDst),
		protocol: protoIPinIP,
		ttl:      defaultWireTTL,
		ident:    p.ID,
		payload:  inner,
	})
}

// UnmarshalPacket parses a datagram produced by MarshalPacket.
func UnmarshalPacket(b []byte) (*Packet, error) {
	hdr, err := parseIPv4(b)
	if err != nil {
		return nil, err
	}
	p := &Packet{}
	if hdr.protocol == protoIPinIP {
		p.Encap = true
		p.OuterSrc = RouterFromAddr(hdr.srcAddr)
		p.OuterDst = RouterFromAddr(hdr.dstAddr)
		hdr, err = parseIPv4(hdr.payload)
		if err != nil {
			return nil, fmt.Errorf("dataplane: inner packet: %w", err)
		}
	}
	sp, dp, err := parsePorts(hdr.payload)
	if err != nil {
		return nil, err
	}
	p.Flow = FlowKey{
		SrcAddr: hdr.srcAddr,
		DstAddr: hdr.dstAddr,
		SrcPort: sp,
		DstPort: dp,
		Proto:   hdr.protocol,
	}
	p.Dst = PrefixFromAddr(hdr.dstAddr)
	p.ID = hdr.ident
	p.Tag = hdr.tag
	p.TTL = int(hdr.ttl)
	return p, nil
}

type ipv4Header struct {
	srcAddr, dstAddr uint32
	protocol         uint8
	ttl              uint8
	ident            uint16 // Identification: the flight recorder's packet ID
	tag              bool   // the reserved flag bit
	payload          []byte
}

func marshalIPv4(h ipv4Header) []byte {
	total := 20 + len(h.payload)
	b := make([]byte, total)
	b[0] = ipv4Version<<4 | ipv4MinIHL
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], h.ident)
	var flags uint16
	if h.tag {
		flags |= 1 << 15 // the reserved bit carries MIFO's tag
	}
	binary.BigEndian.PutUint16(b[6:8], flags)
	b[8] = h.ttl
	b[9] = h.protocol
	binary.BigEndian.PutUint32(b[12:16], h.srcAddr)
	binary.BigEndian.PutUint32(b[16:20], h.dstAddr)
	binary.BigEndian.PutUint16(b[10:12], ipv4Checksum(b[:20]))
	copy(b[20:], h.payload)
	return b
}

func parseIPv4(b []byte) (ipv4Header, error) {
	var h ipv4Header
	if len(b) < 20 {
		return h, fmt.Errorf("dataplane: datagram too short (%d bytes)", len(b))
	}
	if b[0]>>4 != ipv4Version {
		return h, fmt.Errorf("dataplane: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl < 20 || ihl > len(b) {
		return h, fmt.Errorf("dataplane: bad IHL %d", ihl)
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return h, fmt.Errorf("dataplane: bad total length %d (have %d)", total, len(b))
	}
	if ipv4Checksum(b[:ihl]) != 0 {
		return h, fmt.Errorf("dataplane: header checksum mismatch")
	}
	h.ident = binary.BigEndian.Uint16(b[4:6])
	h.tag = binary.BigEndian.Uint16(b[6:8])&(1<<15) != 0
	h.ttl = b[8]
	h.protocol = b[9]
	h.srcAddr = binary.BigEndian.Uint32(b[12:16])
	h.dstAddr = binary.BigEndian.Uint32(b[16:20])
	h.payload = b[ihl:total]
	return h, nil
}

// ipv4Checksum computes the RFC 1071 header checksum. Over a header whose
// checksum field is zero it returns the value to store; over a complete
// valid header it returns zero.
func ipv4Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + sum>>16
	}
	return ^uint16(sum)
}

func marshalPorts(src, dst uint16) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint16(b[0:2], src)
	binary.BigEndian.PutUint16(b[2:4], dst)
	return b
}

func parsePorts(b []byte) (uint16, uint16, error) {
	if len(b) < 4 {
		return 0, 0, fmt.Errorf("dataplane: transport header too short (%d bytes)", len(b))
	}
	return binary.BigEndian.Uint16(b[0:2]), binary.BigEndian.Uint16(b[2:4]), nil
}

func clampTTL(ttl int) int {
	if ttl <= 0 {
		return defaultWireTTL
	}
	if ttl > 255 {
		return 255
	}
	return ttl
}
