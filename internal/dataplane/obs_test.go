package dataplane

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/topo"
)

// twoPortRouter builds a router with a congested default eBGP port and a
// peer-class alternative, plus a FIB entry for dst 7.
func twoPortRouter(alt topo.Rel) *Router {
	r := NewRouter(0, 1)
	out := r.AddPort(Port{Kind: EBGP, Peer: 1, PeerAS: 2, Rel: topo.Provider, CapacityBps: 1e9})
	altP := r.AddPort(Port{Kind: EBGP, Peer: 2, PeerAS: 3, Rel: alt, CapacityBps: 1e9})
	r.FIB.Set(7, FIBEntry{Out: out, Alt: altP, AltVia: 2})
	r.SetQueueRatio(out, 1) // congested default
	return r
}

func TestRouterDropCountersByReason(t *testing.T) {
	r := NewRouter(0, 1)
	p := &Packet{Dst: 9, TTL: 8}
	if act := r.Forward(p, -1); act.Reason != DropNoRoute {
		t.Fatalf("verdict = %+v, want no-route drop", act)
	}
	if got := r.Drops(DropNoRoute); got != 1 {
		t.Errorf("Drops(no-route) = %d, want 1", got)
	}

	// A peer-class alternative with an unset tag fails the tag-check.
	r2 := twoPortRouter(topo.Peer)
	p2 := &Packet{Dst: 7, TTL: 8}
	in := 0 // entered from the provider port: tag stays false
	if act := r2.Forward(p2, in); act.Reason != DropValleyFree {
		t.Fatalf("verdict = %+v, want valley-free drop", act)
	}
	if got := r2.Drops(DropValleyFree); got != 1 {
		t.Errorf("Drops(valley-free) = %d, want 1", got)
	}
	if got := r2.Drops(DropNone); got != 0 {
		t.Errorf("Drops(none) = %d, want 0", got)
	}
	if got := r2.Drops(DropReason(99)); got != 0 {
		t.Errorf("Drops(out-of-range) = %d, want 0", got)
	}
}

func TestRouterDeflectionCounterAndTrace(t *testing.T) {
	r := twoPortRouter(topo.Customer)
	tr := obs.NewTrace(16)
	r.Trace = tr
	p := &Packet{Dst: 7, TTL: 8}
	act := r.Forward(p, -1) // host-originated: tag set, deflection admissible
	if act.Verdict != VerdictForward || !act.Deflected {
		t.Fatalf("verdict = %+v, want deflected forward", act)
	}
	if got := r.Deflections(); got != 1 {
		t.Errorf("Deflections = %d, want 1", got)
	}
	events := tr.Snapshot()
	if len(events) != 1 {
		t.Fatalf("trace events = %d, want 1", len(events))
	}
	e := events[0]
	if e.Type != obs.EvDeflect || e.Node != 0 || e.A != 7 || e.B != 3 {
		t.Errorf("deflect event = %+v", e)
	}
	if e.Note != "congested default" {
		t.Errorf("note = %q", e.Note)
	}
}

func TestRouterEncapTraceEvent(t *testing.T) {
	r := NewRouter(0, 1)
	out := r.AddPort(Port{Kind: EBGP, Peer: 1, PeerAS: 2, Rel: topo.Provider, CapacityBps: 1e9})
	ib := r.AddPort(Port{Kind: IBGP, Peer: 5, PeerAS: 1, CapacityBps: 1e10})
	r.FIB.Set(7, FIBEntry{Out: out, Alt: ib, AltVia: 5})
	r.SetQueueRatio(out, 1)
	tr := obs.NewTrace(16)
	r.Trace = tr

	p := &Packet{Dst: 7, TTL: 8}
	act := r.Forward(p, -1)
	if !act.Deflected || !p.Encap {
		t.Fatalf("want encapsulating deflection, got %+v (encap=%v)", act, p.Encap)
	}
	events := tr.Snapshot()
	if len(events) != 1 || events[0].Type != obs.EvEncap || events[0].B != 5 {
		t.Fatalf("encap event = %+v", events)
	}
}

func TestRouterTraceDropEvent(t *testing.T) {
	r := twoPortRouter(topo.Peer)
	tr := obs.NewTrace(16)
	r.Trace = tr
	if act := r.Forward(&Packet{Dst: 7, TTL: 8}, 0); act.Reason != DropValleyFree {
		t.Fatalf("want valley-free drop, got %+v", act)
	}
	events := tr.Snapshot()
	if len(events) != 1 || events[0].Type != obs.EvTagDrop {
		t.Fatalf("tag-drop event = %+v", events)
	}
}

func TestNetworkSendCountsTTLDrop(t *testing.T) {
	// Two routers forwarding to each other forever: TTL must expire and be
	// counted at the router where it died.
	n := NewNetwork()
	a := n.AddRouter(1)
	b := n.AddRouter(2)
	pa, pb := n.Connect(a.ID, b.ID, EBGP, topo.Customer, 1e9)
	a.FIB.Set(7, FIBEntry{Out: pa, Alt: -1, AltVia: -1})
	b.FIB.Set(7, FIBEntry{Out: pb, Alt: -1, AltVia: -1})
	res := n.Send(&Packet{Dst: 7, TTL: 6}, a.ID)
	if res.Reason != DropTTL {
		t.Fatalf("want TTL drop, got %+v", res)
	}
	if got := n.Router(res.At).Drops(DropTTL); got != 1 {
		t.Errorf("TTL drops at router %d = %d, want 1", res.At, got)
	}
}

// The hot path must not pay for tracing when no trace is attached.
func BenchmarkForwardDefaultPathNoTrace(b *testing.B) {
	r := NewRouter(0, 1)
	out := r.AddPort(Port{Kind: EBGP, Peer: 1, PeerAS: 2, Rel: topo.Customer, CapacityBps: 1e9})
	r.FIB.Set(7, FIBEntry{Out: out, Alt: -1, AltVia: -1})
	p := &Packet{Dst: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.TTL = 8
		p.Tag = false
		r.Forward(p, -1)
	}
}
