// Package dataplane implements MIFO's forwarding engine — the part the
// paper ships as a Linux kernel module — as an in-process router network.
//
// It provides the packet model (including the one-bit valley-free tag and
// IP-in-IP encapsulation headers), the FIB extended with an alternative
// port, and Algorithm 1's per-packet forwarding procedure, plus a Network
// that wires routers together so packets can be traced hop by hop.
package dataplane

import "fmt"

// FlowKey is the five-tuple that identifies a flow. Forwarding decisions
// are deterministic per flow to avoid packet reordering (Section II-A).
type FlowKey struct {
	SrcAddr uint32
	DstAddr uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Hash returns a stable FNV-1a hash of the five-tuple.
//
//mifo:hotpath
func (k FlowKey) Hash() uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime
	}
	for i := 0; i < 4; i++ {
		mix(byte(k.SrcAddr >> (8 * i)))
	}
	for i := 0; i < 4; i++ {
		mix(byte(k.DstAddr >> (8 * i)))
	}
	mix(byte(k.SrcPort))
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.DstPort))
	mix(byte(k.DstPort >> 8))
	mix(k.Proto)
	return h
}

// RouterID identifies a router within a Network.
type RouterID int32

// Packet is the unit the forwarding engine operates on.
type Packet struct {
	// Flow is the five-tuple; hashing it pins the packet's flow to one path.
	Flow FlowKey
	// ID distinguishes packets of the same flow, so a flight recorder can
	// stitch hops observed at different routers into one journey. It rides
	// in the IPv4 Identification field on the wire (see MarshalPacket) and
	// is otherwise ignored by the forwarding engine.
	ID uint16
	// Dst is the destination prefix identifier looked up in the FIB
	// (an AS identifier at the granularity this repository simulates).
	Dst int32
	// Tag is the paper's "one more bit": set when the packet entered the
	// current AS from a customer (Vi-1 < Vi), cleared otherwise. It is
	// written by the AS's entering border router and read by the exit
	// border router's valley-free check.
	Tag bool
	// Encap marks an IP-in-IP encapsulated packet travelling between iBGP
	// peers; OuterSrc and OuterDst are the outer header's addresses.
	Encap    bool
	OuterSrc RouterID
	OuterDst RouterID
	// TTL bounds the number of forwarding steps; Deliver decrements it.
	TTL int
}

// Verdict is the outcome of one forwarding decision.
type Verdict int8

const (
	// VerdictForward means the packet leaves through Action.Port.
	VerdictForward Verdict = iota
	// VerdictDeliver means the packet reached its destination router.
	VerdictDeliver
	// VerdictDrop means the packet was discarded; Action.Reason says why.
	VerdictDrop
)

// String returns a short verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictForward:
		return "forward"
	case VerdictDeliver:
		return "deliver"
	case VerdictDrop:
		return "drop"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// DropReason explains a VerdictDrop.
type DropReason int8

const (
	// DropNone is set on non-drop actions.
	DropNone DropReason = iota
	// DropNoRoute means the FIB had no entry for the destination.
	DropNoRoute
	// DropValleyFree means the tag-check failed: forwarding to the
	// alternative path would have violated the valley-free constraint
	// (this is the drop on line 20 of Algorithm 1 that cuts loops).
	DropValleyFree
	// DropTTL means the packet exceeded its hop budget — in a correct
	// MIFO deployment this never fires; it exists to catch loops in tests.
	DropTTL
)

// String returns a short reason name.
//
//mifo:hotpath
func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "none"
	case DropNoRoute:
		return "no-route"
	case DropValleyFree:
		return "valley-free"
	case DropTTL:
		return "ttl"
	default:
		//mifolint:ignore hotpathalloc unreachable for valid reasons; formats only corrupted values, which already left the fast path
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// Action is the result of Router.Forward for one packet.
type Action struct {
	Verdict Verdict
	// Port is the output port index when Verdict == VerdictForward.
	Port int
	// Reason is set when Verdict == VerdictDrop.
	Reason DropReason
	// Deflected reports that the packet was sent to the alternative path
	// (either directly or via encapsulation to an iBGP peer).
	Deflected bool
}
