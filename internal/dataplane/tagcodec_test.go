package dataplane

import (
	"testing"
	"testing/quick"
)

func TestCodecsRoundTrip(t *testing.T) {
	for _, c := range Codecs() {
		for _, tag := range []bool{true, false, true, true, false} {
			var hdr WireHeader
			c.Encode(&hdr, tag)
			if got := c.Decode(&hdr); got != tag {
				t.Errorf("%s: round trip %v -> %v", c.Name(), tag, got)
			}
		}
		// Re-encoding must toggle, not accumulate.
		var hdr WireHeader
		c.Encode(&hdr, true)
		c.Encode(&hdr, false)
		if c.Decode(&hdr) {
			t.Errorf("%s: clearing the tag failed", c.Name())
		}
	}
}

func TestMPLSCodecPreservesLabel(t *testing.T) {
	c := MPLSTagCodec{TCBit: 1}
	hdr := WireHeader{MPLSLabel: 0xABCDE<<12 | 0x1<<8 | 0x3F} // label, S bit, TTL
	orig := hdr.MPLSLabel
	c.Encode(&hdr, true)
	if !c.Decode(&hdr) {
		t.Fatal("tag lost")
	}
	c.Encode(&hdr, false)
	if hdr.MPLSLabel != orig {
		t.Errorf("label corrupted: %#x -> %#x", orig, hdr.MPLSLabel)
	}
	// Out-of-range TC bit clamps rather than clobbering the S bit.
	wild := MPLSTagCodec{TCBit: 7}
	hdr2 := WireHeader{}
	wild.Encode(&hdr2, true)
	if hdr2.MPLSLabel&(1<<8) != 0 {
		t.Error("clamped codec touched the S bit")
	}
}

func TestIPReservedBitPreservesFragment(t *testing.T) {
	c := IPReservedBitCodec{}
	hdr := WireHeader{IPv4FlagsFragment: 0x2ABC} // DF set, fragment offset
	c.Encode(&hdr, true)
	if hdr.IPv4FlagsFragment&0x7FFF != 0x2ABC {
		t.Errorf("flags/fragment corrupted: %#x", hdr.IPv4FlagsFragment)
	}
	c.Encode(&hdr, false)
	if hdr.IPv4FlagsFragment != 0x2ABC {
		t.Errorf("clearing corrupted header: %#x", hdr.IPv4FlagsFragment)
	}
}

func TestIPOptionCoexistsWithOtherOptions(t *testing.T) {
	c := IPOptionCodec{}
	// Router-alert option (type 148, len 4) followed by a no-op.
	hdr := WireHeader{Options: []byte{148, 4, 0, 0, 1}}
	c.Encode(&hdr, true)
	if !c.Decode(&hdr) {
		t.Fatal("tag not found after other options")
	}
	if hdr.Options[0] != 148 {
		t.Error("existing option clobbered")
	}
	c.Encode(&hdr, false)
	if c.Decode(&hdr) {
		t.Error("in-place rewrite failed")
	}
	if len(hdr.Options) != 5+3 {
		t.Errorf("options grew on rewrite: %v", hdr.Options)
	}
}

func TestIPOptionMalformedInput(t *testing.T) {
	c := IPOptionCodec{}
	// Truncated option length — decode must not panic or loop.
	hdr := WireHeader{Options: []byte{148, 0}}
	if c.Decode(&hdr) {
		t.Error("malformed options decoded a tag")
	}
}

// Property: any prior header state round-trips through every codec.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(label uint32, flags uint16, opts []byte, tag bool) bool {
		for _, c := range Codecs() {
			hdr := WireHeader{MPLSLabel: label, IPv4FlagsFragment: flags,
				Options: append([]byte(nil), opts...)}
			// Sanitize random options into valid framing for the option
			// codec: use them as opaque padding behind a no-op wall.
			if _, ok := c.(IPOptionCodec); ok {
				hdr.Options = nil
			}
			c.Encode(&hdr, tag)
			if c.Decode(&hdr) != tag {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
