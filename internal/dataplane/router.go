package dataplane

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/lpm"
	"repro/internal/obs"
	"repro/internal/topo"
)

// PortKind distinguishes the three kinds of router attachment.
type PortKind int8

const (
	// EBGP ports connect to a border router of another AS.
	EBGP PortKind = iota
	// IBGP ports connect to a border router of the same AS.
	IBGP
	// Host ports connect to traffic sources/sinks inside the AS.
	Host
)

// String returns a short kind name.
func (k PortKind) String() string {
	switch k {
	case EBGP:
		return "eBGP"
	case IBGP:
		return "iBGP"
	case Host:
		return "host"
	default:
		return fmt.Sprintf("PortKind(%d)", int(k))
	}
}

// Port is one attachment point of a router.
type Port struct {
	// Kind classifies the far end.
	Kind PortKind
	// Peer is the router on the other side (-1 for an unconnected host port).
	Peer RouterID
	// PeerPort is the port index on the peer router that faces back here
	// (-1 for host ports). Maintained by Network.Connect.
	PeerPort int
	// PeerAS is the AS of the far-end router.
	PeerAS int32
	// Rel is the business relationship of the far-end AS as seen from this
	// router's AS. Meaningful for EBGP ports only.
	Rel topo.Rel
	// CapacityBps is the link capacity in bits per second, used by the MIFO
	// daemon's local link monitoring.
	CapacityBps float64

	// queueRatioBits in [0,1] is the congestion signal: the paper uses the
	// tx queue occupancy of the output port (Section II-A). Stored as
	// float64 bits, accessed atomically through the accessors below, so
	// the forwarding path and the daemon never race (ports are wired
	// before any concurrency starts).
	queueRatioBits uint64
	// utilizedBits is the measured load (float64 bits) for spare-capacity
	// ranking.
	utilizedBits uint64
}

// FIBEntry is a forwarding entry extended with MIFO's alternative port.
type FIBEntry struct {
	// Out is the default output port index, or -1 for local delivery.
	Out int
	// Alt is the alternative output port index, or -1 when no alternative
	// is installed.
	Alt int
	// AltVia is the router the alternative path goes through. For an iBGP
	// alternative this is the egress iBGP peer and becomes the outer
	// destination of the encapsulated packet.
	AltVia RouterID
}

// DeflectPolicy decides, per flow, whether a flow crossing a congested
// default port moves to the alternative path. Hash-based policies keep the
// decision deterministic per flow, avoiding reordering.
type DeflectPolicy func(k FlowKey) bool

// DeflectAll moves every flow while congestion lasts.
func DeflectAll(FlowKey) bool { return true }

// DeflectShare moves the given fraction of flows, chosen by five-tuple
// hash. share is clamped to [0,1].
func DeflectShare(share float64) DeflectPolicy {
	if share < 0 {
		share = 0
	}
	if share > 1 {
		share = 1
	}
	limit := uint32(share * float64(1<<32-1))
	return func(k FlowKey) bool { return k.Hash() <= limit }
}

// Router is one MIFO-capable (or legacy) border router.
type Router struct {
	// ID is the router's identity within its Network.
	ID RouterID
	// AS is the AS the router belongs to.
	AS int32
	// Ports are the router's attachments; indices are FIB port references.
	Ports []Port
	// FIB is the forwarding table keyed by dense destination identifiers.
	FIB *FIB
	// PrefixFIB, when non-nil, takes precedence over FIB: the engine then
	// resolves the packet's real destination address by longest-prefix
	// match, the way the paper's kernel fib_table does. Entries with
	// Out < 0 deliver locally.
	PrefixFIB *lpm.Table[FIBEntry]
	// Local marks destination prefixes delivered by this router.
	Local map[int32]bool
	// CongestionThreshold is the tx-queue ratio at which a port counts as
	// congested. The paper leaves the signal open; queue ratio is its
	// running example. Default 0.8 (set by NewRouter).
	CongestionThreshold float64
	// Deflect decides which flows leave the congested default path.
	// Defaults to DeflectAll.
	Deflect DeflectPolicy
	// MIFOEnabled gates the whole mechanism: a legacy router never uses
	// the alternative port (but still participates in tagging-free
	// forwarding as plain BGP would).
	MIFOEnabled bool
	// DisableTagCheck turns off the valley-free tag-check (lines 16-20 of
	// Algorithm 1) while leaving deflection active. It exists to
	// demonstrate and measure the data-plane loops the check prevents
	// (Fig. 2(a)); never disable it in a real deployment.
	DisableTagCheck bool
	// Trace, when non-nil and enabled, receives a structured event for
	// every deflection, encapsulation, and drop the engine decides — the
	// forwarding-decision audit stream. A nil trace costs one pointer
	// check on the affected branches and nothing on the default path.
	Trace *obs.Trace
	// Hop, when non-nil, is called once per Forward with the full decision
	// context — the flight-recorder hook (see internal/audit). A nil hook
	// costs a single pointer check on the hot path.
	Hop HopFunc

	// drops counts discarded packets by DropReason; deflections counts
	// packets sent to the alternative path. Exposed via Drops and
	// Deflections so operators can ask a live router where traffic dies.
	drops       [4]atomic.Int64
	deflections atomic.Int64
}

// NewRouter returns a MIFO-enabled router with an empty FIB.
func NewRouter(id RouterID, as int32) *Router {
	return &Router{
		ID:                  id,
		AS:                  as,
		FIB:                 NewFIB(),
		Local:               make(map[int32]bool),
		CongestionThreshold: 0.8,
		Deflect:             DeflectAll,
		MIFOEnabled:         true,
	}
}

// AddPort appends a port and returns its index.
func (r *Router) AddPort(p Port) int {
	r.Ports = append(r.Ports, p)
	return len(r.Ports) - 1
}

// SetQueueRatio sets the congestion signal of a port.
func (r *Router) SetQueueRatio(port int, ratio float64) {
	atomic.StoreUint64(&r.Ports[port].queueRatioBits, math.Float64bits(ratio))
}

// QueueRatio returns the congestion signal of a port.
//
//mifo:hotpath
func (r *Router) QueueRatio(port int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&r.Ports[port].queueRatioBits))
}

// SetUtilization records the measured load (bits/s) on a port.
func (r *Router) SetUtilization(port int, bps float64) {
	atomic.StoreUint64(&r.Ports[port].utilizedBits, math.Float64bits(bps))
}

// SpareCapacity returns capacity minus measured load of a port, floored at 0.
//
//mifo:hotpath
func (r *Router) SpareCapacity(port int) float64 {
	s := r.Ports[port].CapacityBps - math.Float64frombits(atomic.LoadUint64(&r.Ports[port].utilizedBits))
	if s < 0 {
		return 0
	}
	return s
}

// Congested reports whether a port's queue ratio crosses the threshold.
//
//mifo:hotpath
func (r *Router) Congested(port int) bool {
	return r.QueueRatio(port) >= r.CongestionThreshold
}

// Drops returns how many packets this router discarded for the given
// reason (DropNone always reads 0).
func (r *Router) Drops(reason DropReason) int64 {
	if reason < 0 || int(reason) >= len(r.drops) {
		return 0
	}
	return r.drops[reason].Load()
}

// Deflections returns how many packets this router sent to an alternative
// path (directly or via iBGP encapsulation).
func (r *Router) Deflections() int64 { return r.deflections.Load() }

// HopInfo is the flight recorder's view of one forwarding decision: the
// packet's arrival context, the tag/encap state it left with, and the
// verdict. Router.Hop receives one per Forward call.
type HopInfo struct {
	// Router and AS identify the deciding router.
	Router RouterID
	AS     int32
	// In is the arrival port (-1 for locally originated traffic); InKind,
	// InRel and FromAS describe it (InKind is Host when In < 0, InRel is
	// meaningful for eBGP in-ports only).
	In     int
	InKind PortKind
	InRel  topo.Rel
	FromAS int32
	// Out describes the egress when Verdict == VerdictForward (Out is -1
	// otherwise); OutRel is meaningful for eBGP out-ports only.
	Out     int
	OutKind PortKind
	OutRel  topo.Rel
	ToAS    int32
	// Tag is the valley-free bit after entry stamping; ArrivedEncap and
	// LeftEncap are the IP-in-IP state on arrival and departure.
	Tag          bool
	ArrivedEncap bool
	LeftEncap    bool
	// Deflected reports the packet took an alternative path at this hop.
	Deflected bool
	Verdict   Verdict
	Reason    DropReason
	// AltTried is set when an alternative egress was taken or refused;
	// AltRel is that egress' relationship class (the tag-check input).
	AltTried bool
	AltRel   topo.Rel
}

// HopFunc observes forwarding decisions. The packet pointer is only valid
// for the duration of the call.
type HopFunc func(p *Packet, h HopInfo)

// lookupEntry resolves the packet's FIB entry the way Forward does:
// longest-prefix match when a prefix FIB is installed, dense id otherwise.
//
//mifo:hotpath
func (r *Router) lookupEntry(p *Packet) (FIBEntry, bool) {
	if r.PrefixFIB != nil {
		return r.PrefixFIB.Lookup(p.Flow.DstAddr)
	}
	return r.FIB.Lookup(p.Dst)
}

// DropExpired records a TTL-exhausted packet: transports that manage TTL
// outside Forward (Network.Send, netd, packetsim) route the drop through
// here so counters, trace and the flight-recorder hook all see it.
//
//mifo:hotpath
func (r *Router) DropExpired(p *Packet, in int) Action {
	act := r.countDrop(DropTTL, p)
	if r.Hop != nil {
		h := r.hopInfo(p, in)
		h.Tag = p.Tag
		h.LeftEncap = p.Encap
		h.Verdict = VerdictDrop
		h.Reason = DropTTL
		r.Hop(p, h)
	}
	return act
}

// hopInfo seeds a HopInfo with the arrival-side context.
//
//mifo:hotpath
func (r *Router) hopInfo(p *Packet, in int) HopInfo {
	h := HopInfo{
		Router: r.ID, AS: r.AS, In: in, InKind: Host, FromAS: r.AS,
		Out: -1, ArrivedEncap: p.Encap,
	}
	if in >= 0 && in < len(r.Ports) {
		pt := &r.Ports[in]
		h.InKind = pt.Kind
		h.InRel = pt.Rel
		h.FromAS = pt.PeerAS
	}
	return h
}

// countDrop records a drop and traces it, then builds the drop action. It
// is the single bookkeeping point for every discard the engine decides.
//
//mifo:hotpath
func (r *Router) countDrop(reason DropReason, p *Packet) Action {
	r.drops[reason].Add(1)
	if r.Trace.Enabled() {
		typ := obs.EvDrop
		if reason == DropValleyFree {
			typ = obs.EvTagDrop
		}
		r.Trace.Emit(obs.Event{
			Time: time.Now().UnixNano(), Type: typ, Node: int32(r.ID),
			A: int64(reason), B: int64(p.Dst), Note: reason.String(),
		})
	}
	return Action{Verdict: VerdictDrop, Reason: reason}
}
