package dataplane

import (
	"time"

	"repro/internal/obs"
	"repro/internal/topo"
)

// Forward executes Algorithm 1 (the MIFO forwarding engine) for one packet
// arriving on input port in (-1 for locally originated traffic). It mutates
// the packet's tag and encapsulation headers exactly as a border router
// would and returns the action to take.
//
// Note on line 11 of the paper's pseudocode: it reads
// "isCongest(Iout) or s = GetNextHop(Ialt)", but the prose of Section III-B
// compares the sender with the next hop of the *default* route ("If the
// nexthop equals to sender ... the packet is deflected from the default
// path"). We implement the prose; the pseudocode's Ialt is a typo (with
// Ialt the comparison could never detect a bounce, since the sender sits on
// the default path, not the alternative one).
//
//mifo:hotpath
func (r *Router) Forward(p *Packet, in int) Action {
	if r.Hop == nil {
		return r.forward(p, in)
	}
	// Flight-recorder path: capture the arrival context, run the engine,
	// then report the decision. Kept out of line so the common case pays
	// one nil check.
	h := r.hopInfo(p, in)
	act := r.forward(p, in)
	h.Tag = p.Tag
	h.LeftEncap = p.Encap
	h.Deflected = act.Deflected
	h.Verdict = act.Verdict
	h.Reason = act.Reason
	if act.Verdict == VerdictForward {
		pt := &r.Ports[act.Port]
		h.Out = act.Port
		h.OutKind = pt.Kind
		h.OutRel = pt.Rel
		h.ToAS = pt.PeerAS
	}
	switch {
	case act.Deflected:
		h.AltTried = true
		h.AltRel = h.OutRel
	case act.Reason == DropValleyFree:
		// The refused alternative: re-resolve the entry the engine used.
		if e, ok := r.lookupEntry(p); ok && e.Alt >= 0 && e.Alt < len(r.Ports) {
			h.AltTried = true
			h.AltRel = r.Ports[e.Alt].Rel
		}
	}
	r.Hop(p, h)
	return act
}

//mifo:hotpath
func (r *Router) forward(p *Packet, in int) Action {
	// Lines 1-3: strip the outer IP header of an encapsulated packet and
	// remember the sender (an iBGP peer).
	sender := RouterID(-1)
	if p.Encap {
		if p.OuterDst != r.ID {
			// iBGP peers are directly connected (full mesh, Section IV);
			// a foreign outer destination is a wiring error.
			return r.countDrop(DropNoRoute, p)
		}
		sender = p.OuterSrc
		p.Encap = false
		p.OuterSrc, p.OuterDst = -1, -1
	}

	// Local delivery: the packet reached its destination AS.
	if r.Local[p.Dst] {
		return Action{Verdict: VerdictDeliver}
	}

	// Line 4: FIB lookup — longest-prefix match on the destination
	// address when a prefix FIB is installed, dense identifier otherwise.
	e, ok := r.lookupEntry(p)
	if !ok {
		return r.countDrop(DropNoRoute, p)
	}
	if e.Out < 0 {
		return Action{Verdict: VerdictDeliver}
	}

	// Lines 5-10: at the packet entering point, tag one bit with the
	// relationship to the upstream neighbor. Locally originated traffic is
	// tagged as if from a customer: the source AS may use any RIB path.
	if in < 0 || r.Ports[in].Kind == Host {
		p.Tag = true
	} else if r.Ports[in].Kind == EBGP {
		p.Tag = r.Ports[in].Rel == topo.Customer
	}

	// Line 11: deflect on congestion (for flows the hash policy selects)
	// or when an iBGP peer bounced the packet to us because we own the
	// alternative path (sender equals the default next hop).
	bounced := sender >= 0 && sender == r.Ports[e.Out].Peer
	congested := r.MIFOEnabled && r.Congested(e.Out) && r.deflect(p.Flow)
	if (bounced || congested) && r.MIFOEnabled && e.Alt >= 0 {
		alt := &r.Ports[e.Alt]
		if alt.Kind == IBGP {
			// Lines 12-15: the alternative egress is another border
			// router; encapsulate and hand over.
			p.Encap = true
			p.OuterSrc = r.ID
			p.OuterDst = e.AltVia
			r.countDeflect(obs.EvEncap, p, e.Alt, int64(e.AltVia), bounced)
			return Action{Verdict: VerdictForward, Port: e.Alt, Deflected: true}
		}
		// Lines 16-20: tag-check. The alternative is valley-free iff the
		// downstream neighbor is a customer or the packet entered this AS
		// from a customer.
		if r.DisableTagCheck || alt.Rel == topo.Customer || p.Tag {
			r.countDeflect(obs.EvDeflect, p, e.Alt, int64(alt.PeerAS), bounced)
			return Action{Verdict: VerdictForward, Port: e.Alt, Deflected: true}
		}
		return r.countDrop(DropValleyFree, p)
	}

	// Line 22: default path.
	return Action{Verdict: VerdictForward, Port: e.Out}
}

//mifo:hotpath
func (r *Router) deflect(k FlowKey) bool {
	if r.Deflect == nil {
		return true
	}
	return r.Deflect(k)
}

// countDeflect records an alternative-path decision: the deflection
// counter always, a trace event when a trace is attached. via is the
// next-hop identity (outer destination router for encap, peer AS for a
// direct eBGP deflection); bounced distinguishes the iBGP hand-back case
// from a congestion-triggered deflection.
//
//mifo:hotpath
func (r *Router) countDeflect(typ obs.EventType, p *Packet, port int, via int64, bounced bool) {
	r.deflections.Add(1)
	if !r.Trace.Enabled() {
		return
	}
	note := "congested default"
	if bounced {
		note = "bounced by iBGP peer"
	}
	r.Trace.Emit(obs.Event{
		Time: time.Now().UnixNano(), Type: typ, Node: int32(r.ID),
		A: int64(p.Dst), B: via, V: r.SpareCapacity(port), Note: note,
	})
}
