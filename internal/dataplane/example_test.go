package dataplane_test

import (
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/topo"
)

// The Fig. 2(a) scenario as library usage: three peering ASes with a
// shared customer, all defaults congested, the tag-check cutting the loop.
func Example() {
	n := dataplane.NewNetwork()
	var r [4]*dataplane.Router
	for as := int32(0); as < 4; as++ {
		r[as] = n.AddRouter(as)
	}
	var toZero [4]int
	for as := 1; as <= 3; as++ {
		toZero[as], _ = n.Connect(r[as].ID, r[0].ID, dataplane.EBGP, topo.Customer, 1e9)
	}
	p12, _ := n.Connect(r[1].ID, r[2].ID, dataplane.EBGP, topo.Peer, 1e9)
	p23, _ := n.Connect(r[2].ID, r[3].ID, dataplane.EBGP, topo.Peer, 1e9)
	p31, _ := n.Connect(r[3].ID, r[1].ID, dataplane.EBGP, topo.Peer, 1e9)

	r[0].Local[0] = true
	r[1].FIB.Set(0, dataplane.FIBEntry{Out: toZero[1], Alt: p12, AltVia: r[2].ID})
	r[2].FIB.Set(0, dataplane.FIBEntry{Out: toZero[2], Alt: p23, AltVia: r[3].ID})
	r[3].FIB.Set(0, dataplane.FIBEntry{Out: toZero[3], Alt: p31, AltVia: r[1].ID})
	for as := 1; as <= 3; as++ {
		r[as].SetQueueRatio(toZero[as], 1.0) // all defaults congested
	}

	res := n.Send(&dataplane.Packet{
		Flow: dataplane.FlowKey{SrcAddr: 1, DstAddr: dataplane.PrefixAddr(0)},
		Dst:  0,
	}, r[1].ID)
	fmt.Println(res.Verdict, res.Reason)
	// Output: drop valley-free
}

// Wire round trip: a tagged, encapsulated packet as a real IPv4 datagram.
func ExampleMarshalPacket() {
	p := &dataplane.Packet{
		Flow:     dataplane.FlowKey{SrcAddr: dataplane.RouterAddr(1), DstAddr: dataplane.PrefixAddr(7), DstPort: 80, Proto: 6},
		Dst:      7,
		Tag:      true,
		TTL:      64,
		Encap:    true,
		OuterSrc: 1,
		OuterDst: 2,
	}
	wire := dataplane.MarshalPacket(p)
	back, _ := dataplane.UnmarshalPacket(wire)
	fmt.Println(back)
	// Output: [IPinIP 10.0.0.1 > 10.0.0.2] 10.0.0.1:0 > 198.18.0.7:80 proto 6 dst-prefix=7 ttl=64 tag=1
}
