package dataplane

import (
	"testing"

	"repro/internal/topo"
)

const gbps = 1e9

// fig2aNet builds the Fig. 2(a) scenario as a router network: one router
// per AS; AS 0 (the destination, prefix 0) is a customer of ASes 1, 2, 3,
// which peer in a triangle. Each of 1, 2, 3 uses its direct link to 0 as
// the default and its clockwise peer (1->2->3->1) as the alternative.
func fig2aNet(t testing.TB) (*Network, [4]*Router, [4]int) {
	t.Helper()
	n := NewNetwork()
	var r [4]*Router
	for as := int32(0); as < 4; as++ {
		r[as] = n.AddRouter(as)
	}
	// Direct customer links to AS 0.
	var toZero [4]int
	for as := 1; as <= 3; as++ {
		p, _ := n.Connect(r[as].ID, r[0].ID, EBGP, topo.Customer, gbps)
		toZero[as] = p
	}
	// Peering triangle.
	p12, p21 := n.Connect(r[1].ID, r[2].ID, EBGP, topo.Peer, gbps)
	p23, p32 := n.Connect(r[2].ID, r[3].ID, EBGP, topo.Peer, gbps)
	p31, p13 := n.Connect(r[3].ID, r[1].ID, EBGP, topo.Peer, gbps)
	_ = p21
	_ = p32
	_ = p13

	r[0].Local[0] = true
	r[1].FIB.Set(0, FIBEntry{Out: toZero[1], Alt: p12, AltVia: r[2].ID})
	r[2].FIB.Set(0, FIBEntry{Out: toZero[2], Alt: p23, AltVia: r[3].ID})
	r[3].FIB.Set(0, FIBEntry{Out: toZero[3], Alt: p31, AltVia: r[1].ID})
	return n, r, toZero
}

func congestAllDefaults(r [4]*Router, toZero [4]int) {
	for as := 1; as <= 3; as++ {
		r[as].SetQueueRatio(toZero[as], 1.0)
	}
}

func TestFig2aTagCheckCutsLoop(t *testing.T) {
	n, r, toZero := fig2aNet(t)
	congestAllDefaults(r, toZero)
	p := &Packet{Flow: FlowKey{SrcAddr: 1, DstAddr: 0}, Dst: 0}
	res := n.Send(p, r[1].ID)
	// AS 1 deflects to AS 2 (locally originated traffic is tagged).
	// AS 2 entered from a peer and its alternative is another peer:
	// the tag-check must drop the packet, cutting the 1->2->3->1 loop.
	if res.Verdict != VerdictDrop || res.Reason != DropValleyFree {
		t.Fatalf("verdict = %v/%v at router %d, want valley-free drop", res.Verdict, res.Reason, res.At)
	}
	if res.At != r[2].ID {
		t.Errorf("drop happened at router %d, want AS 2's router", res.At)
	}
	if res.Deflections != 1 {
		t.Errorf("deflections = %d, want 1 (only AS 1 deflected)", res.Deflections)
	}
}

func TestFig2aLoopsWithoutTagCheck(t *testing.T) {
	n, r, toZero := fig2aNet(t)
	congestAllDefaults(r, toZero)
	for as := 1; as <= 3; as++ {
		r[as].DisableTagCheck = true
	}
	p := &Packet{Flow: FlowKey{SrcAddr: 1, DstAddr: 0}, Dst: 0}
	res := n.Send(p, r[1].ID)
	// Without the valley-free constraint the packet cycles 1->2->3->1...
	// until the TTL backstop fires — exactly the loop the paper proves
	// the tag-check prevents.
	if res.Verdict != VerdictDrop || res.Reason != DropTTL {
		t.Fatalf("verdict = %v/%v, want TTL drop (loop)", res.Verdict, res.Reason)
	}
	if len(res.Hops) < DefaultTTL {
		t.Errorf("hops = %d, want the full TTL budget consumed", len(res.Hops))
	}
}

func TestFig2aNoCongestionUsesDefault(t *testing.T) {
	n, r, _ := fig2aNet(t)
	p := &Packet{Flow: FlowKey{SrcAddr: 9, DstAddr: 0}, Dst: 0}
	res := n.Send(p, r[3].ID)
	if res.Verdict != VerdictDeliver || res.At != r[0].ID {
		t.Fatalf("verdict = %v at %d, want delivery at AS 0", res.Verdict, res.At)
	}
	if len(res.Hops) != 2 || res.Deflections != 0 {
		t.Errorf("hops=%d deflections=%d, want direct 2-hop default path", len(res.Hops), res.Deflections)
	}
}

func TestFig2aDeflectionViaPeerWhenTagged(t *testing.T) {
	// Only AS 1's default is congested: traffic originated at AS 1 deflects
	// to peer AS 2, which then delivers over its (uncongested) default.
	// This is legal: the packet entered AS 2 *from* AS 2's peer, but AS 2
	// forwards it to its customer (AS 0) — no valley.
	n, r, toZero := fig2aNet(t)
	r[1].SetQueueRatio(toZero[1], 0.95)
	p := &Packet{Flow: FlowKey{SrcAddr: 1, DstAddr: 0}, Dst: 0}
	res := n.Send(p, r[1].ID)
	if res.Verdict != VerdictDeliver {
		t.Fatalf("verdict = %v/%v, want delivery", res.Verdict, res.Reason)
	}
	wantAS := []int32{1, 2, 0}
	got := res.ASPath(n)
	if len(got) != len(wantAS) {
		t.Fatalf("AS path = %v, want %v", got, wantAS)
	}
	for i := range wantAS {
		if got[i] != wantAS[i] {
			t.Fatalf("AS path = %v, want %v", got, wantAS)
		}
	}
}

// fig2bNet builds the Fig. 2(b) scenario: AS X has two border routers, R1
// (default egress to Y) and R2 (alternative egress to Z), connected by
// iBGP. Both Y and Z deliver prefix 0.
func fig2bNet(t testing.TB) (n *Network, r1, r2, ry, rz *Router) {
	t.Helper()
	n = NewNetwork()
	r1 = n.AddRouter(10) // AS X
	r2 = n.AddRouter(10) // AS X
	ry = n.AddRouter(20) // AS Y
	rz = n.AddRouter(30) // AS Z
	p1y, _ := n.Connect(r1.ID, ry.ID, EBGP, topo.Provider, gbps)
	p2z, _ := n.Connect(r2.ID, rz.ID, EBGP, topo.Provider, gbps)
	p12, p21 := n.Connect(r1.ID, r2.ID, IBGP, topo.Peer, 10*gbps)

	ry.Local[0] = true
	rz.Local[0] = true
	// R1: default out to Y; alternative via iBGP peer R2.
	r1.FIB.Set(0, FIBEntry{Out: p1y, Alt: p12, AltVia: r2.ID})
	// R2: default is via R1 (iBGP); its own eBGP link to Z is the alternative.
	r2.FIB.Set(0, FIBEntry{Out: p21, Alt: p2z, AltVia: rz.ID})
	return n, r1, r2, ry, rz
}

func TestFig2bEncapAvoidsCycle(t *testing.T) {
	n, r1, r2, _, rz := fig2bNet(t)
	// Congest R1's default egress.
	r1.SetQueueRatio(0, 1.0)
	p := &Packet{Flow: FlowKey{SrcAddr: 7, DstAddr: 0}, Dst: 0}
	res := n.Send(p, r1.ID)
	if res.Verdict != VerdictDeliver || res.At != rz.ID {
		t.Fatalf("verdict = %v/%v at %d, want delivery via Z", res.Verdict, res.Reason, res.At)
	}
	// Journey: R1 (encap, deflect) -> R2 (decap, bounce-detect, deflect) -> Z.
	if len(res.Hops) != 3 {
		t.Fatalf("hops = %v, want 3", res.Hops)
	}
	if res.Hops[0].Router != r1.ID || !res.Hops[0].Deflected {
		t.Errorf("hop 0 = %+v, want deflection at R1", res.Hops[0])
	}
	if res.Hops[1].Router != r2.ID || !res.Hops[1].Deflected {
		t.Errorf("hop 1 = %+v, want deflection at R2 (sender == default next hop)", res.Hops[1])
	}
	if p.Encap {
		t.Error("packet should be decapsulated on delivery path")
	}
}

func TestFig2bNoCongestionStaysOnDefault(t *testing.T) {
	n, r1, _, ry, _ := fig2bNet(t)
	p := &Packet{Flow: FlowKey{SrcAddr: 7, DstAddr: 0}, Dst: 0}
	res := n.Send(p, r1.ID)
	if res.Verdict != VerdictDeliver || res.At != ry.ID {
		t.Fatalf("delivery at %d, want via Y (default)", res.At)
	}
}

func TestFig2bTrafficFromR2SideUsesDefaultThroughR1(t *testing.T) {
	// Un-congested: traffic entering at R2 goes R2 -> R1 -> Y over iBGP.
	n, r1, r2, ry, _ := fig2bNet(t)
	_ = r1
	p := &Packet{Flow: FlowKey{SrcAddr: 8, DstAddr: 0}, Dst: 0}
	res := n.Send(p, r2.ID)
	if res.Verdict != VerdictDeliver || res.At != ry.ID {
		t.Fatalf("delivery at %d (%v/%v), want via Y", res.At, res.Verdict, res.Reason)
	}
	if res.Deflections != 0 {
		t.Errorf("deflections = %d, want 0", res.Deflections)
	}
}

func TestMisconfiguredAltPingPongHitsTTL(t *testing.T) {
	// Deliberately broken daemon state: R1 and R2 point their alternatives
	// at each other and both defaults are congested. The TTL backstop must
	// terminate the intra-AS ping-pong.
	n, r1, r2, _, _ := fig2bNet(t)
	p12 := 1 // R1's iBGP port (port 0 is the eBGP link, added first)
	p21 := 1
	r1.FIB.Set(0, FIBEntry{Out: 0, Alt: p12, AltVia: r2.ID})
	r2.FIB.Set(0, FIBEntry{Out: p21, Alt: p21, AltVia: r1.ID})
	r1.SetQueueRatio(0, 1.0)
	r2.SetQueueRatio(0, 1.0)
	p := &Packet{Flow: FlowKey{SrcAddr: 7, DstAddr: 0}, Dst: 0}
	res := n.Send(p, r1.ID)
	if res.Verdict != VerdictDrop || res.Reason != DropTTL {
		t.Fatalf("verdict = %v/%v, want TTL drop", res.Verdict, res.Reason)
	}
}

func TestTaggingAtEntry(t *testing.T) {
	n := NewNetwork()
	rCust := n.AddRouter(1) // upstream customer
	rMid := n.AddRouter(2)  // AS under test
	rPeer := n.AddRouter(3) // upstream peer
	rDst := n.AddRouter(4)  // destination
	pc, _ := n.Connect(rMid.ID, rCust.ID, EBGP, topo.Customer, gbps)
	pp, _ := n.Connect(rMid.ID, rPeer.ID, EBGP, topo.Peer, gbps)
	pd, _ := n.Connect(rMid.ID, rDst.ID, EBGP, topo.Customer, gbps)
	rMid.FIB.Set(4, FIBEntry{Out: pd, Alt: -1})
	rDst.Local[4] = true

	// From the customer: tag must be set.
	p := &Packet{Dst: 4, TTL: 8}
	act := rMid.Forward(p, pc)
	if act.Verdict != VerdictForward || !p.Tag {
		t.Errorf("customer entry: tag=%v verdict=%v, want tag set", p.Tag, act.Verdict)
	}
	// From the peer: tag must be cleared, even if previously set.
	p2 := &Packet{Dst: 4, Tag: true, TTL: 8}
	act = rMid.Forward(p2, pp)
	if act.Verdict != VerdictForward || p2.Tag {
		t.Errorf("peer entry: tag=%v, want cleared", p2.Tag)
	}
	// Locally originated: tag set.
	p3 := &Packet{Dst: 4, TTL: 8}
	if rMid.Forward(p3, -1); !p3.Tag {
		t.Error("locally originated packet should be tagged")
	}
}

func TestNoRouteDrop(t *testing.T) {
	n := NewNetwork()
	r := n.AddRouter(1)
	p := &Packet{Dst: 99}
	res := n.Send(p, r.ID)
	if res.Verdict != VerdictDrop || res.Reason != DropNoRoute {
		t.Fatalf("verdict = %v/%v, want no-route drop", res.Verdict, res.Reason)
	}
}

func TestLegacyRouterNeverDeflects(t *testing.T) {
	n, r, toZero := fig2aNet(t)
	congestAllDefaults(r, toZero)
	r[1].MIFOEnabled = false
	p := &Packet{Flow: FlowKey{SrcAddr: 1, DstAddr: 0}, Dst: 0}
	res := n.Send(p, r[1].ID)
	// Legacy AS 1 ignores congestion and uses its default: delivered.
	if res.Verdict != VerdictDeliver || res.Deflections != 0 {
		t.Fatalf("legacy router deflected: %v, deflections=%d", res.Verdict, res.Deflections)
	}
}

func TestCongestedWithoutAltFallsBackToDefault(t *testing.T) {
	n := NewNetwork()
	a := n.AddRouter(1)
	b := n.AddRouter(2)
	pab, _ := n.Connect(a.ID, b.ID, EBGP, topo.Customer, gbps)
	a.FIB.Set(2, FIBEntry{Out: pab, Alt: -1})
	b.Local[2] = true
	a.SetQueueRatio(pab, 1.0)
	p := &Packet{Dst: 2}
	res := n.Send(p, a.ID)
	if res.Verdict != VerdictDeliver {
		t.Fatalf("want best-effort delivery on congested default, got %v/%v", res.Verdict, res.Reason)
	}
}

func TestDeflectSharePolicy(t *testing.T) {
	n, r, toZero := fig2aNet(t)
	r[1].SetQueueRatio(toZero[1], 1.0)
	r[1].Deflect = DeflectShare(0.5)
	deflected, direct := 0, 0
	for i := 0; i < 2000; i++ {
		p := &Packet{Flow: FlowKey{SrcAddr: uint32(i), DstAddr: 0, SrcPort: uint16(i)}, Dst: 0}
		res := n.Send(p, r[1].ID)
		if res.Verdict != VerdictDeliver {
			t.Fatalf("flow %d: %v/%v", i, res.Verdict, res.Reason)
		}
		if res.Deflections > 0 {
			deflected++
		} else {
			direct++
		}
	}
	frac := float64(deflected) / 2000
	if frac < 0.40 || frac > 0.60 {
		t.Errorf("deflected share = %v, want ~0.5", frac)
	}
	// Determinism: the same flow always takes the same path.
	p := &Packet{Flow: FlowKey{SrcAddr: 42, DstAddr: 0}, Dst: 0}
	first := n.Send(&Packet{Flow: p.Flow, Dst: 0}, r[1].ID).Deflections
	for i := 0; i < 10; i++ {
		if n.Send(&Packet{Flow: p.Flow, Dst: 0}, r[1].ID).Deflections != first {
			t.Fatal("flow path not deterministic under DeflectShare")
		}
	}
}

func TestEncapToWrongRouterDrops(t *testing.T) {
	// An encapsulated packet whose outer destination is not this router is
	// a wiring error (iBGP peers are directly connected); it must drop
	// rather than be misdelivered.
	n, r1, r2, _, _ := fig2bNet(t)
	_ = r2
	p := &Packet{Dst: 0, Encap: true, OuterSrc: 99, OuterDst: 98, TTL: 8}
	act := r1.Forward(p, 1)
	if act.Verdict != VerdictDrop || act.Reason != DropNoRoute {
		t.Fatalf("action = %v/%v, want no-route drop", act.Verdict, act.Reason)
	}
	_ = n
}

func TestActionAndPacketStrings(t *testing.T) {
	if (Action{Verdict: VerdictDeliver}).String() != "deliver" {
		t.Error("deliver string")
	}
	if got := (Action{Verdict: VerdictForward, Port: 3, Deflected: true}).String(); got != "forward(port 3, deflected)" {
		t.Errorf("deflected forward string = %q", got)
	}
	if got := (Action{Verdict: VerdictForward, Port: 1}).String(); got != "forward(port 1)" {
		t.Errorf("forward string = %q", got)
	}
	if got := (Action{Verdict: VerdictDrop, Reason: DropValleyFree}).String(); got != "drop(valley-free)" {
		t.Errorf("drop string = %q", got)
	}
	p := &Packet{Flow: FlowKey{SrcAddr: 0x0A000001, DstAddr: 0xC6120001, SrcPort: 5, DstPort: 80, Proto: 6}, Dst: 1, TTL: 9}
	want := "10.0.0.1:5 > 198.18.0.1:80 proto 6 dst-prefix=1 ttl=9 tag=0"
	if p.String() != want {
		t.Errorf("packet string = %q, want %q", p.String(), want)
	}
}

func TestDeflectShareBounds(t *testing.T) {
	always := DeflectShare(1.5)
	never := DeflectShare(-1)
	k := FlowKey{SrcAddr: 1}
	if !always(k) {
		t.Error("share > 1 should deflect everything")
	}
	if never(k) {
		t.Error("share < 0 should deflect nothing")
	}
}
