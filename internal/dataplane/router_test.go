package dataplane

import (
	"testing"
	"testing/quick"

	"repro/internal/topo"
)

func TestFIBOperations(t *testing.T) {
	f := NewFIB()
	if _, ok := f.Lookup(1); ok {
		t.Fatal("empty FIB should miss")
	}
	f.Set(1, FIBEntry{Out: 2, Alt: -1})
	e, ok := f.Lookup(1)
	if !ok || e.Out != 2 || e.Alt != -1 {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	f.SetAlt(1, 3, 7)
	if e, _ = f.Lookup(1); e.Alt != 3 || e.AltVia != 7 || e.Out != 2 {
		t.Fatalf("after SetAlt: %+v", e)
	}
	f.ClearAlt(1)
	if e, _ = f.Lookup(1); e.Alt != -1 {
		t.Fatalf("after ClearAlt: %+v", e)
	}
	// SetAlt on missing destination is a no-op.
	f.SetAlt(9, 1, 1)
	if _, ok = f.Lookup(9); ok {
		t.Fatal("SetAlt must not create entries")
	}
	if f.Len() != 1 {
		t.Fatalf("len = %d, want 1", f.Len())
	}
}

func TestFlowKeyHashStability(t *testing.T) {
	k := FlowKey{SrcAddr: 0x0a000001, DstAddr: 0x0a000002, SrcPort: 1234, DstPort: 80, Proto: 6}
	if k.Hash() != k.Hash() {
		t.Fatal("hash must be deterministic")
	}
	k2 := k
	k2.SrcPort = 1235
	if k.Hash() == k2.Hash() {
		t.Error("different tuples should (almost surely) hash differently")
	}
}

func TestFlowKeyHashDispersion(t *testing.T) {
	buckets := make([]int, 16)
	for i := 0; i < 16000; i++ {
		k := FlowKey{SrcAddr: uint32(i), DstAddr: uint32(i * 7), SrcPort: uint16(i), Proto: 6}
		buckets[k.Hash()%16]++
	}
	for b, c := range buckets {
		if c < 500 || c > 1500 {
			t.Errorf("bucket %d has %d entries; hash poorly dispersed", b, c)
		}
	}
}

func TestRouterCongestionSignal(t *testing.T) {
	n := NewNetwork()
	r := n.AddRouter(1)
	r2 := n.AddRouter(2)
	p, _ := n.Connect(r.ID, r2.ID, EBGP, topo.Peer, 1e9)
	if r.Congested(p) {
		t.Error("fresh port should not be congested")
	}
	r.SetQueueRatio(p, 0.79)
	if r.Congested(p) {
		t.Error("below threshold should not be congested")
	}
	r.SetQueueRatio(p, 0.8)
	if !r.Congested(p) {
		t.Error("at threshold should be congested")
	}
	if got := r.QueueRatio(p); got != 0.8 {
		t.Errorf("QueueRatio = %v", got)
	}
}

func TestSpareCapacity(t *testing.T) {
	n := NewNetwork()
	r := n.AddRouter(1)
	r2 := n.AddRouter(2)
	p, _ := n.Connect(r.ID, r2.ID, EBGP, topo.Peer, 1e9)
	if got := r.SpareCapacity(p); got != 1e9 {
		t.Errorf("unused spare = %v, want 1e9", got)
	}
	r.SetUtilization(p, 4e8)
	if got := r.SpareCapacity(p); got != 6e8 {
		t.Errorf("spare = %v, want 6e8", got)
	}
	r.SetUtilization(p, 2e9)
	if got := r.SpareCapacity(p); got != 0 {
		t.Errorf("overloaded spare = %v, want 0", got)
	}
}

func TestConnectValidation(t *testing.T) {
	n := NewNetwork()
	a := n.AddRouter(1)
	b := n.AddRouter(1)
	c := n.AddRouter(2)
	mustPanic(t, "iBGP across ASes", func() { n.Connect(a.ID, c.ID, IBGP, topo.Peer, 1) })
	mustPanic(t, "eBGP within AS", func() { n.Connect(a.ID, b.ID, EBGP, topo.Peer, 1) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestConnectRelationshipInversion(t *testing.T) {
	n := NewNetwork()
	prov := n.AddRouter(1)
	cust := n.AddRouter(2)
	pp, pc := n.Connect(prov.ID, cust.ID, EBGP, topo.Customer, 1e9)
	if prov.Ports[pp].Rel != topo.Customer {
		t.Errorf("provider-side rel = %v, want customer", prov.Ports[pp].Rel)
	}
	if cust.Ports[pc].Rel != topo.Provider {
		t.Errorf("customer-side rel = %v, want provider", cust.Ports[pc].Rel)
	}
	if prov.Ports[pp].Peer != cust.ID || prov.Ports[pp].PeerPort != pc {
		t.Error("peer back-references wrong")
	}
	if cust.Ports[pc].Peer != prov.ID || cust.Ports[pc].PeerPort != pp {
		t.Error("peer back-references wrong on far side")
	}
}

func TestAttachHost(t *testing.T) {
	n := NewNetwork()
	r := n.AddRouter(5)
	h := n.AttachHost(r.ID, 1e9)
	if r.Ports[h].Kind != Host || r.Ports[h].Peer != -1 {
		t.Errorf("host port = %+v", r.Ports[h])
	}
}

func TestVerdictAndReasonStrings(t *testing.T) {
	if VerdictForward.String() != "forward" || VerdictDeliver.String() != "deliver" ||
		VerdictDrop.String() != "drop" || Verdict(9).String() != "Verdict(9)" {
		t.Error("Verdict.String wrong")
	}
	if DropNone.String() != "none" || DropNoRoute.String() != "no-route" ||
		DropValleyFree.String() != "valley-free" || DropTTL.String() != "ttl" ||
		DropReason(9).String() != "DropReason(9)" {
		t.Error("DropReason.String wrong")
	}
	if EBGP.String() != "eBGP" || IBGP.String() != "iBGP" || Host.String() != "host" ||
		PortKind(9).String() != "PortKind(9)" {
		t.Error("PortKind.String wrong")
	}
}

// Property: DeflectShare is monotone — a flow deflected at share s is also
// deflected at any share s' >= s.
func TestQuickDeflectShareMonotone(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, a, b float64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		k := FlowKey{SrcAddr: src, DstAddr: dst, SrcPort: sp, DstPort: dp, Proto: 6}
		if DeflectShare(clamp01(lo))(k) && !DeflectShare(clamp01(hi))(k) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func BenchmarkForward(b *testing.B) {
	n, r, toZero := fig2aNet(b)
	r[1].SetQueueRatio(toZero[1], 1.0)
	_ = n
	p := &Packet{Flow: FlowKey{SrcAddr: 1, DstAddr: 0}, Dst: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.TTL = 8
		r[1].Forward(p, -1)
	}
}

func BenchmarkSendEndToEnd(b *testing.B) {
	n, r, toZero := fig2aNet(b)
	r[1].SetQueueRatio(toZero[1], 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &Packet{Flow: FlowKey{SrcAddr: uint32(i), DstAddr: 0}, Dst: 0}
		n.Send(p, r[1].ID)
	}
}
