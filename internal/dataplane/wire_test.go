package dataplane

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Flow: FlowKey{
			SrcAddr: 0x0A000001,
			SrcPort: 43211,
			DstPort: 80,
			Proto:   protoTCP,
		},
		Dst: 1234,
		Tag: true,
		TTL: 17,
	}
}

func TestWireRoundTripPlain(t *testing.T) {
	p := samplePacket()
	p.Flow.DstAddr = PrefixAddr(p.Dst)
	b := MarshalPacket(p)
	got, err := UnmarshalPacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *p {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, p)
	}
}

func TestWireRoundTripEncap(t *testing.T) {
	p := samplePacket()
	p.Flow.DstAddr = PrefixAddr(p.Dst)
	p.Encap = true
	p.OuterSrc = 7
	p.OuterDst = 42
	b := MarshalPacket(p)
	// Outer header must be protocol 4 (IP-in-IP).
	if b[9] != protoIPinIP {
		t.Fatalf("outer protocol = %d, want 4", b[9])
	}
	got, err := UnmarshalPacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Encap || got.OuterSrc != 7 || got.OuterDst != 42 {
		t.Fatalf("encap fields lost: %+v", got)
	}
	if got.Flow != p.Flow || got.Tag != p.Tag || got.Dst != p.Dst {
		t.Fatalf("inner fields lost: %+v", got)
	}
}

func TestWireTagBitPlacement(t *testing.T) {
	p := samplePacket()
	p.Flow.DstAddr = PrefixAddr(p.Dst)
	p.Tag = true
	b := MarshalPacket(p)
	flags := binary.BigEndian.Uint16(b[6:8])
	if flags&(1<<15) == 0 {
		t.Error("tag must sit in the IPv4 reserved flag bit")
	}
	p.Tag = false
	b = MarshalPacket(p)
	if binary.BigEndian.Uint16(b[6:8])&(1<<15) != 0 {
		t.Error("cleared tag still set on the wire")
	}
}

func TestWireChecksumValidity(t *testing.T) {
	p := samplePacket()
	p.Flow.DstAddr = PrefixAddr(p.Dst)
	b := MarshalPacket(p)
	if ipv4Checksum(b[:20]) != 0 {
		t.Error("serialized header checksum does not verify")
	}
	// Corrupt one byte: parse must fail.
	b[16] ^= 0xFF
	if _, err := UnmarshalPacket(b); err == nil {
		t.Error("corrupted datagram parsed successfully")
	}
}

func TestWireMalformedInputs(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short":       {0x45, 0, 0, 10},
		"not-ipv4":    append([]byte{0x65}, make([]byte, 30)...),
		"bad-ihl":     append([]byte{0x4F}, make([]byte, 30)...),
		"bad-total":   func() []byte { b := MarshalPacket(samplePacket()); binary.BigEndian.PutUint16(b[2:4], 9); return b }(),
		"short-ports": func() []byte { b := MarshalPacket(samplePacket()); return b[:21] }(),
	}
	for name, b := range cases {
		if _, err := UnmarshalPacket(b); err == nil {
			t.Errorf("%s: want parse error", name)
		}
	}
}

func TestAddrMappings(t *testing.T) {
	if got := RouterFromAddr(RouterAddr(99)); got != 99 {
		t.Errorf("router addr round trip = %d", got)
	}
	if got := PrefixFromAddr(PrefixAddr(4321)); got != 4321 {
		t.Errorf("prefix addr round trip = %d", got)
	}
	if RouterAddr(1)>>24 != 10 {
		t.Error("router addresses must live in 10/8")
	}
	if PrefixAddr(1)>>16 != 0xC612 {
		t.Error("prefix addresses must live in 198.18/15")
	}
}

// Property: marshal/unmarshal is the identity on the carried fields.
func TestQuickWireRoundTrip(t *testing.T) {
	f := func(srcAddr uint32, sp, dp uint16, dst int16, tag, encap bool, outerSrc, outerDst uint16, ttl uint8) bool {
		if ttl == 0 {
			ttl = 1
		}
		p := &Packet{
			Flow: FlowKey{SrcAddr: srcAddr, SrcPort: sp, DstPort: dp, Proto: protoTCP},
			Dst:  int32(uint16(dst)),
			Tag:  tag,
			TTL:  int(ttl),
		}
		p.Flow.DstAddr = PrefixAddr(p.Dst)
		if encap {
			p.Encap = true
			p.OuterSrc = RouterID(outerSrc)
			p.OuterDst = RouterID(outerDst)
		}
		b := MarshalPacket(p)
		got, err := UnmarshalPacket(b)
		if err != nil {
			return false
		}
		return *got == *p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A forwarded-then-marshaled packet equals a marshaled-then-forwarded one:
// the wire format commutes with the engine's mutations (tagging, encap).
func TestWireCommutesWithForwarding(t *testing.T) {
	n, r1, r2, _, _ := fig2bNet(t)
	_ = r2
	r1.SetQueueRatio(0, 1.0) // congest the default: R1 will encapsulate
	p := &Packet{Flow: FlowKey{SrcAddr: 7, DstAddr: PrefixAddr(0), DstPort: 80, Proto: protoTCP}, Dst: 0, TTL: 32}
	act := r1.Forward(p, -1)
	if act.Verdict != VerdictForward || !p.Encap {
		t.Fatalf("expected encapsulating forward, got %+v (encap=%v)", act, p.Encap)
	}
	onWire := MarshalPacket(p)
	back, err := UnmarshalPacket(onWire)
	if err != nil {
		t.Fatal(err)
	}
	// TTL is not decremented by Forward (the Network does it), so the
	// packet must survive the wire unchanged.
	if *back != *p {
		t.Fatalf("wire altered the packet:\n got %+v\nwant %+v", back, p)
	}
	if !bytes.Equal(onWire, MarshalPacket(back)) {
		t.Fatal("re-marshaling is not stable")
	}
	_ = n
}
