package dataplane

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs/span"
)

// FIB maps destination identifiers to forwarding entries as a sequence of
// immutable generations: the forwarding engine's lookup is a single atomic
// pointer load into a map nobody will ever mutate again, and the MIFO
// daemon publishes changes by building the next generation and swapping
// the pointer. This is the generation-swapped split real routers (and the
// paper's kernel fib_table, Fig. 10) use — the FE reads at line speed with
// zero locks while the daemon batches writes.
//
// Writers stage changes in a transaction (Begin / Set / SetAlt / Commit):
// one control epoch's worth of alt re-selections becomes one map copy and
// one pointer swap instead of a per-entry write lock. The single-shot
// Set/SetAlt/ClearAlt methods remain for setup code and each cost a full
// generation (copy + swap); batch through a transaction on any hot path.
type FIB struct {
	cur atomic.Pointer[fibGen]
	// mu serializes writers: a transaction holds it from Begin to Commit,
	// so generations advance one at a time and no staged copy is ever lost
	// to a concurrent writer. Readers never touch it.
	mu sync.Mutex
	// spans/node emit a fib_swap span at the publication instant of every
	// dirty commit — the moment the data plane becomes consistent with the
	// control plane's latest epoch. Nil tracer (the default) is free.
	spans *span.Tracer
	node  int32
}

// SetTracer attaches a span tracer and this FIB's node identity (its
// router ID); subsequent dirty commits emit fib_swap spans under the
// context given to FIBTx.TraceUnder.
func (f *FIB) SetTracer(tr *span.Tracer, node int32) {
	f.spans = tr
	f.node = node
}

// fibGen is one immutable FIB generation. The entries map is never written
// after the generation is published.
type fibGen struct {
	gen     uint64
	entries map[int32]FIBEntry
}

var emptyFIBGen = &fibGen{entries: map[int32]FIBEntry{}}

// NewFIB returns an empty FIB at generation zero.
func NewFIB() *FIB {
	f := &FIB{}
	f.cur.Store(emptyFIBGen)
	return f
}

// Lookup returns the entry for dst. It is wait-free: one atomic load and a
// read of an immutable map, safe under any number of concurrent commits.
//
//mifo:hotpath
func (f *FIB) Lookup(dst int32) (FIBEntry, bool) {
	e, ok := f.cur.Load().entries[dst]
	return e, ok
}

// Len returns the number of installed entries.
func (f *FIB) Len() int { return len(f.cur.Load().entries) }

// Generation returns the identifier of the published generation. It
// increments by exactly one per committed transaction that changed
// anything, so an operator (or test) can count FIB updates.
func (f *FIB) Generation() uint64 { return f.cur.Load().gen }

// FIBTx is a staged next generation. It is created by Begin, mutated by
// Set/SetAlt/ClearAlt, and published (atomically, all-or-nothing from the
// reader's point of view) by Commit. A transaction holds the FIB's writer
// lock for its whole lifetime: always Commit, and never leak one.
type FIBTx struct {
	f       *FIB
	entries map[int32]FIBEntry
	dirty   bool
	parent  span.Context
}

// TraceUnder parents the transaction's fib_swap span (emitted at Commit
// when the FIB carries a tracer and the transaction changed anything)
// under the given span context.
func (tx *FIBTx) TraceUnder(parent span.Context) { tx.parent = parent }

// Dirty reports whether the transaction has staged an effective change.
func (tx *FIBTx) Dirty() bool { return tx.dirty }

// Begin opens a transaction against the current generation, copying its
// entries. The copy is what makes the published generations immutable —
// and why batching matters: N staged changes cost one copy, not N.
func (f *FIB) Begin() *FIBTx {
	f.mu.Lock()
	cur := f.cur.Load()
	entries := make(map[int32]FIBEntry, len(cur.entries)+1)
	for k, v := range cur.entries {
		entries[k] = v
	}
	return &FIBTx{f: f, entries: entries}
}

// Set stages an install or replacement of the entry for dst. Staging an
// entry identical to the incumbent is a no-op, so re-installing an
// unchanged table does not dirty the generation — routers whose
// forwarding did not actually change publish nothing.
func (tx *FIBTx) Set(dst int32, e FIBEntry) {
	if old, ok := tx.entries[dst]; ok && old == e {
		return
	}
	tx.entries[dst] = e
	tx.dirty = true
}

// SetAlt stages an update of only the alternative of an existing entry.
// It reports false (and stages nothing) when dst has no entry.
func (tx *FIBTx) SetAlt(dst int32, alt int, via RouterID) bool {
	e, ok := tx.entries[dst]
	if !ok {
		return false
	}
	if e.Alt == alt && e.AltVia == via {
		return true // already current: avoid dirtying the generation
	}
	e.Alt = alt
	e.AltVia = via
	tx.entries[dst] = e
	tx.dirty = true
	return true
}

// ClearAlt stages removal of the alternative of an existing entry.
func (tx *FIBTx) ClearAlt(dst int32) { tx.SetAlt(dst, -1, -1) }

// Delete stages withdrawal of the entry for dst — the control plane lost
// its route, so forwarding must drop as no-route rather than follow a
// stale entry into a black hole. Deleting an absent entry is a no-op and
// does not dirty the generation.
func (tx *FIBTx) Delete(dst int32) {
	if _, ok := tx.entries[dst]; !ok {
		return
	}
	delete(tx.entries, dst)
	tx.dirty = true
}

// Commit publishes the staged generation with a single pointer swap and
// releases the writer lock, returning the published generation id. A
// transaction that staged no effective change publishes nothing and the
// generation id stays put.
func (tx *FIBTx) Commit() uint64 {
	cur := tx.f.cur.Load()
	gen := cur.gen
	if tx.dirty {
		gen++
		sp := tx.f.spans.Start("fib_swap", tx.parent, tx.f.node)
		tx.f.cur.Store(&fibGen{gen: gen, entries: tx.entries})
		sp.A = int64(gen)
		sp.End()
	}
	tx.f.mu.Unlock()
	tx.f = nil // poison: a second Commit is a bug, fail loudly
	return gen
}

// Set installs or replaces the entry for dst in a single-op transaction.
func (f *FIB) Set(dst int32, e FIBEntry) {
	tx := f.Begin()
	tx.Set(dst, e)
	tx.Commit()
}

// SetAlt updates only the alternative of an existing entry. It is a no-op
// when dst has no entry.
func (f *FIB) SetAlt(dst int32, alt int, via RouterID) {
	tx := f.Begin()
	tx.SetAlt(dst, alt, via)
	tx.Commit()
}

// ClearAlt removes the alternative of an existing entry.
func (f *FIB) ClearAlt(dst int32) {
	tx := f.Begin()
	tx.ClearAlt(dst)
	tx.Commit()
}
