package dataplane

import (
	"fmt"
	"strings"
)

// String renders the five-tuple the way tcpdump would.
func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d > %s:%d proto %d",
		ipString(k.SrcAddr), k.SrcPort, ipString(k.DstAddr), k.DstPort, k.Proto)
}

// String renders the packet with its MIFO state — tag bit and
// encapsulation — for traces and demos.
func (p *Packet) String() string {
	var b strings.Builder
	if p.Encap {
		fmt.Fprintf(&b, "[IPinIP %s > %s] ", ipString(RouterAddr(p.OuterSrc)), ipString(RouterAddr(p.OuterDst)))
	}
	fmt.Fprintf(&b, "%s dst-prefix=%d ttl=%d", p.Flow, p.Dst, p.TTL)
	if p.Tag {
		b.WriteString(" tag=1")
	} else {
		b.WriteString(" tag=0")
	}
	return b.String()
}

// String summarizes an action.
func (a Action) String() string {
	switch a.Verdict {
	case VerdictForward:
		if a.Deflected {
			return fmt.Sprintf("forward(port %d, deflected)", a.Port)
		}
		return fmt.Sprintf("forward(port %d)", a.Port)
	case VerdictDeliver:
		return "deliver"
	default:
		return fmt.Sprintf("drop(%s)", a.Reason)
	}
}

func ipString(addr uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(addr>>24), byte(addr>>16), byte(addr>>8), byte(addr))
}
