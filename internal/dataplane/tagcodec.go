package dataplane

// Section III-A4 discusses three concrete encodings for MIFO's one bit on
// the wire: an unused bit of an MPLS label (MPLS is widely deployed inside
// ASes and labels are pushed at the entering point and popped at the exit
// point — exactly the tag's lifecycle), the reserved bit of the IPv4
// header, or an IP option. The simulator carries the tag as a boolean;
// these codecs show the bit actually fits each header and are used by the
// wire-format tests.

// WireHeader is the subset of header fields the tag encodings touch.
type WireHeader struct {
	// MPLSLabel is a full 32-bit MPLS stack entry:
	// label(20) | TC(3) | S(1) | TTL(8).
	MPLSLabel uint32
	// IPv4FlagsFragment is the IPv4 flags+fragment-offset halfword; bit 15
	// is the reserved flag.
	IPv4FlagsFragment uint16
	// Options is the IPv4 options area.
	Options []byte
}

// TagCodec encodes and decodes the valley-free bit in a wire header.
type TagCodec interface {
	// Encode writes the tag into the header.
	Encode(hdr *WireHeader, tag bool)
	// Decode reads the tag back.
	Decode(hdr *WireHeader) bool
	// Name identifies the encoding.
	Name() string
}

// MPLSTagCodec stores the tag in one bit of the 3-bit MPLS traffic-class
// field (the paper: "consuming an unused bit in the label").
type MPLSTagCodec struct {
	// TCBit selects which TC bit to use (0-2).
	TCBit uint
}

// Name implements TagCodec.
func (c MPLSTagCodec) Name() string { return "mpls-tc" }

func (c MPLSTagCodec) mask() uint32 {
	bit := c.TCBit
	if bit > 2 {
		bit = 2
	}
	// TC occupies bits 9-11 of the label stack entry.
	return 1 << (9 + bit)
}

// Encode implements TagCodec.
func (c MPLSTagCodec) Encode(hdr *WireHeader, tag bool) {
	if tag {
		hdr.MPLSLabel |= c.mask()
	} else {
		hdr.MPLSLabel &^= c.mask()
	}
}

// Decode implements TagCodec.
func (c MPLSTagCodec) Decode(hdr *WireHeader) bool {
	return hdr.MPLSLabel&c.mask() != 0
}

// IPReservedBitCodec stores the tag in the IPv4 header's reserved flag
// (bit 15 of the flags/fragment halfword).
type IPReservedBitCodec struct{}

// Name implements TagCodec.
func (IPReservedBitCodec) Name() string { return "ipv4-reserved-bit" }

// Encode implements TagCodec.
func (IPReservedBitCodec) Encode(hdr *WireHeader, tag bool) {
	if tag {
		hdr.IPv4FlagsFragment |= 1 << 15
	} else {
		hdr.IPv4FlagsFragment &^= 1 << 15
	}
}

// Decode implements TagCodec.
func (IPReservedBitCodec) Decode(hdr *WireHeader) bool {
	return hdr.IPv4FlagsFragment&(1<<15) != 0
}

// IPOptionCodec stores the tag in a two-byte IPv4 option using an
// experimental option number.
type IPOptionCodec struct{}

// mifoOptionType is copied-flag 1, class 2 (debugging/measurement),
// number 30 (experimental).
const mifoOptionType = 0x80 | 0x40 | 30

// Name implements TagCodec.
func (IPOptionCodec) Name() string { return "ipv4-option" }

// Encode implements TagCodec. An existing MIFO option is rewritten in
// place; otherwise a three-byte option is appended.
func (IPOptionCodec) Encode(hdr *WireHeader, tag bool) {
	v := byte(0)
	if tag {
		v = 1
	}
	if i := findOption(hdr.Options, mifoOptionType); i >= 0 {
		hdr.Options[i+2] = v
		return
	}
	hdr.Options = append(hdr.Options, mifoOptionType, 3, v)
}

// Decode implements TagCodec.
func (IPOptionCodec) Decode(hdr *WireHeader) bool {
	if i := findOption(hdr.Options, mifoOptionType); i >= 0 {
		return hdr.Options[i+2] != 0
	}
	return false
}

// findOption returns the index of the option with the given type, walking
// the options area per RFC 791 framing, or -1.
func findOption(opts []byte, typ byte) int {
	for i := 0; i < len(opts); {
		if opts[i] == typ && i+2 < len(opts) {
			return i
		}
		l := optLen(opts, i)
		if l == 0 {
			return -1
		}
		i += l
	}
	return -1
}

// optLen returns the length of the option starting at i (1 for the
// single-byte padding/end options, 0 on malformed input).
func optLen(opts []byte, i int) int {
	if i >= len(opts) {
		return 0
	}
	switch opts[i] {
	case 0, 1: // end-of-options, no-op
		return 1
	}
	if i+1 >= len(opts) || opts[i+1] < 2 {
		return 0
	}
	return int(opts[i+1])
}

// Codecs lists every available tag encoding.
func Codecs() []TagCodec {
	return []TagCodec{MPLSTagCodec{}, IPReservedBitCodec{}, IPOptionCodec{}}
}
