package dataplane

import (
	"testing"

	"repro/internal/lpm"
	"repro/internal/topo"
)

// prefixNet wires two upstreams (default AS 2, alternative AS 3) behind
// router A, with prefix-based FIBs: a covering /16 routed via the default
// and one special /32 pinned to the alternative — a pure longest-prefix-
// match decision that the dense FIB cannot express.
func prefixNet(t *testing.T) (n *Network, a, b, c *Router) {
	t.Helper()
	n = NewNetwork()
	a = n.AddRouter(1)
	b = n.AddRouter(2)
	c = n.AddRouter(3)
	pab, _ := n.Connect(a.ID, b.ID, EBGP, topo.Customer, 1e9)
	pac, _ := n.Connect(a.ID, c.ID, EBGP, topo.Customer, 1e9)

	a.PrefixFIB = lpm.New[FIBEntry]()
	if err := a.PrefixFIB.Insert(0xC6120000, 16, FIBEntry{Out: pab, Alt: pac, AltVia: c.ID}); err != nil {
		t.Fatal(err)
	}
	if err := a.PrefixFIB.Insert(0xC6120042, 32, FIBEntry{Out: pac, Alt: -1, AltVia: -1}); err != nil {
		t.Fatal(err)
	}
	// B and C deliver everything they receive (stub providers).
	b.PrefixFIB = lpm.New[FIBEntry]()
	if err := b.PrefixFIB.Insert(0, 0, FIBEntry{Out: -1}); err != nil {
		t.Fatal(err)
	}
	c.PrefixFIB = lpm.New[FIBEntry]()
	if err := c.PrefixFIB.Insert(0, 0, FIBEntry{Out: -1}); err != nil {
		t.Fatal(err)
	}
	return n, a, b, c
}

func TestPrefixFIBLongestMatchRouting(t *testing.T) {
	n, _, b, c := prefixNet(t)
	// Generic address in the /16: via the default towards B.
	res := n.Send(&Packet{Flow: FlowKey{SrcAddr: 9, DstAddr: 0xC6120001}, Dst: 0}, 0)
	if res.Verdict != VerdictDeliver || res.At != b.ID {
		t.Fatalf("generic address delivered at %v (%v), want B", res.At, res.Verdict)
	}
	// The pinned /32: longest match wins, via C.
	res = n.Send(&Packet{Flow: FlowKey{SrcAddr: 9, DstAddr: 0xC6120042}, Dst: 0}, 0)
	if res.Verdict != VerdictDeliver || res.At != c.ID {
		t.Fatalf("pinned /32 delivered at %v (%v), want C", res.At, res.Verdict)
	}
	// Outside the table: no route.
	res = n.Send(&Packet{Flow: FlowKey{SrcAddr: 9, DstAddr: 0x08080808}, Dst: 0}, 0)
	if res.Verdict != VerdictDrop || res.Reason != DropNoRoute {
		t.Fatalf("unknown address = %v/%v, want no-route", res.Verdict, res.Reason)
	}
}

func TestPrefixFIBDeflection(t *testing.T) {
	n, a, _, c := prefixNet(t)
	a.SetQueueRatio(0, 1.0) // congest the default port towards B
	res := n.Send(&Packet{Flow: FlowKey{SrcAddr: 9, DstAddr: 0xC6120001}, Dst: 0}, 0)
	if res.Verdict != VerdictDeliver || res.At != c.ID {
		t.Fatalf("congested default: delivered at %v, want deflection to C", res.At)
	}
	if res.Deflections != 1 {
		t.Errorf("deflections = %d, want 1", res.Deflections)
	}
}

// The daemon-style update path: rewrite only the alt of an existing prefix
// under concurrent lookups (run with -race).
func TestPrefixFIBConcurrentUpdate(t *testing.T) {
	n, a, _, _ := prefixNet(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			a.PrefixFIB.Update(0xC6120000, 16, func(e FIBEntry) FIBEntry {
				e.AltVia = RouterID(i % 3)
				return e
			})
		}
	}()
	for i := 0; i < 2000; i++ {
		res := n.Send(&Packet{Flow: FlowKey{SrcAddr: uint32(i), DstAddr: 0xC6120001}, Dst: 0}, 0)
		if res.Verdict != VerdictDeliver {
			t.Fatalf("iteration %d: %v", i, res.Verdict)
		}
	}
	<-done
}
