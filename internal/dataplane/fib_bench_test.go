package dataplane

import (
	"sync"
	"testing"
)

// lockedFIB replicates the pre-refactor FIB — a map guarded by a
// read-write lock — as the benchmark baseline the generation-swapped
// design is measured against (BENCH_routing.json).
type lockedFIB struct {
	mu      sync.RWMutex
	entries map[int32]FIBEntry
}

func newLockedFIB() *lockedFIB { return &lockedFIB{entries: make(map[int32]FIBEntry)} }

func (f *lockedFIB) Set(dst int32, e FIBEntry) {
	f.mu.Lock()
	f.entries[dst] = e
	f.mu.Unlock()
}

func (f *lockedFIB) SetAlt(dst int32, alt int, via RouterID) {
	f.mu.Lock()
	if e, ok := f.entries[dst]; ok {
		e.Alt = alt
		e.AltVia = via
		f.entries[dst] = e
	}
	f.mu.Unlock()
}

func (f *lockedFIB) Lookup(dst int32) (FIBEntry, bool) {
	f.mu.RLock()
	e, ok := f.entries[dst]
	f.mu.RUnlock()
	return e, ok
}

const benchFIBSize = 4096

func fillFIB(set func(int32, FIBEntry)) {
	for i := int32(0); i < benchFIBSize; i++ {
		set(i, FIBEntry{Out: int(i % 8), Alt: -1, AltVia: -1})
	}
}

// BenchmarkFIBLookup measures the uncontended forwarding-path lookup:
// generation-swapped (one atomic load) vs the RWMutex baseline.
func BenchmarkFIBLookup(b *testing.B) {
	b.Run("lockfree", func(b *testing.B) {
		f := NewFIB()
		tx := f.Begin()
		fillFIB(tx.Set)
		tx.Commit()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := f.Lookup(int32(i) % benchFIBSize); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("locked", func(b *testing.B) {
		f := newLockedFIB()
		fillFIB(f.Set)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := f.Lookup(int32(i) % benchFIBSize); !ok {
				b.Fatal("miss")
			}
		}
	})
}

// BenchmarkFIBLookupContended measures lookup throughput while a daemon
// goroutine continuously rewrites alt ports — the workload of a border
// router forwarding at line speed during control-epoch churn. The
// generation swap keeps readers wait-free; the baseline's readers stall
// behind the writer's lock.
func BenchmarkFIBLookupContended(b *testing.B) {
	b.Run("lockfree", func(b *testing.B) {
		f := NewFIB()
		tx := f.Begin()
		fillFIB(tx.Set)
		tx.Commit()
		stop := make(chan struct{})
		go func() {
			for alt := 0; ; alt++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := f.Begin()
				for d := int32(0); d < benchFIBSize; d += 16 {
					tx.SetAlt(d, alt%8, RouterID(alt%4))
				}
				tx.Commit()
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int32(0)
			for pb.Next() {
				i++
				if _, ok := f.Lookup(i % benchFIBSize); !ok {
					b.Fatal("miss")
				}
			}
		})
		b.StopTimer()
		close(stop)
	})
	b.Run("locked", func(b *testing.B) {
		f := newLockedFIB()
		fillFIB(f.Set)
		stop := make(chan struct{})
		go func() {
			for alt := 0; ; alt++ {
				select {
				case <-stop:
					return
				default:
				}
				for d := int32(0); d < benchFIBSize; d += 16 {
					f.SetAlt(d, alt%8, RouterID(alt%4))
				}
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int32(0)
			for pb.Next() {
				i++
				if _, ok := f.Lookup(i % benchFIBSize); !ok {
					b.Fatal("miss")
				}
			}
		})
		b.StopTimer()
		close(stop)
	})
}

// BenchmarkFIBCommit measures publishing one control epoch's batch of alt
// re-selections: one transaction (copy + swap) vs the baseline's
// per-entry write locks.
func BenchmarkFIBCommit(b *testing.B) {
	const batch = 256
	b.Run("tx", func(b *testing.B) {
		f := NewFIB()
		tx := f.Begin()
		fillFIB(tx.Set)
		tx.Commit()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx := f.Begin()
			for d := int32(0); d < batch; d++ {
				tx.SetAlt(d, i%8, RouterID(i%4))
			}
			tx.Commit()
		}
	})
	b.Run("perEntryLocked", func(b *testing.B) {
		f := newLockedFIB()
		fillFIB(f.Set)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for d := int32(0); d < batch; d++ {
				f.SetAlt(d, i%8, RouterID(i%4))
			}
		}
	})
}
