package packetsim

// source is a reliable AIMD transport endpoint: additive increase per ACK,
// multiplicative decrease on loss (at most once per round trip), immediate
// retransmission of lost sequence numbers. It captures the TCP behaviors
// the testbed experiment depends on — fair sharing on shared bottlenecks
// and goodput proportional to the achieved rate — without modeling
// slow-start timers or SACK.
type source struct {
	spec  FlowSpec
	total int // payload packets to deliver

	cwnd     float64
	ssthresh float64 // slow-start threshold; exponential growth below it
	inflight int
	nextSeq  int
	resend   []int
	acked    map[int]bool

	started  float64
	finished float64
	running  bool
	done     bool
	aborted  bool

	lastCut float64 // time of the last multiplicative decrease

	retransmits     int
	queueDrops      int
	hardDrops       int
	deflected       int
	delivered       int
	consecutiveHard int
}

// startFlow begins a flow's transmission.
func (s *Sim) startFlow(idx int) {
	src := s.sources[idx]
	if src.running || src.done {
		return
	}
	src.running = true
	src.started = s.now
	src.acked = make(map[int]bool, src.total)
	src.lastCut = -1
	src.ssthresh = 1e18 // slow-start until the first loss
	s.pump(idx)
}

// pump injects packets while the window allows.
func (s *Sim) pump(idx int) {
	src := s.sources[idx]
	if !src.running || src.done || src.aborted {
		return
	}
	for src.inflight < int(src.cwnd) {
		seq := -1
		if len(src.resend) > 0 {
			seq = src.resend[0]
			src.resend = src.resend[1:]
			src.retransmits++
		} else if src.nextSeq < src.total {
			seq = src.nextSeq
			src.nextSeq++
		} else {
			return
		}
		src.inflight++
		s.inject(idx, seq)
	}
}

// ack processes a delivered packet.
func (s *Sim) ack(idx, seq int) {
	src := s.sources[idx]
	if src.done || src.aborted {
		return
	}
	src.inflight--
	src.consecutiveHard = 0
	if !src.acked[seq] {
		src.acked[seq] = true
		src.delivered++
		s.bucket += float64(s.cfg.PacketBytes * 8)
		s.totalBits += float64(s.cfg.PacketBytes * 8)
	}
	if src.cwnd < src.ssthresh {
		src.cwnd++ // slow start: exponential growth per RTT
	} else {
		src.cwnd += 1 / src.cwnd // congestion avoidance: additive increase
	}
	if src.delivered >= src.total {
		src.done = true
		src.running = false
		src.finished = s.now
		s.onComplete(idx)
		return
	}
	s.pump(idx)
}

// loss processes a dropped packet: the sequence is queued for
// retransmission and the window is halved (at most once per round trip).
// hard marks drops by the forwarding engine itself rather than full queues.
func (s *Sim) loss(idx, seq int, hard bool) {
	src := s.sources[idx]
	if src.done || src.aborted {
		return
	}
	src.inflight--
	if !src.acked[seq] {
		src.resend = append(src.resend, seq)
	}
	if hard {
		src.consecutiveHard++
		if src.consecutiveHard >= s.cfg.MaxConsecutiveHardDrops {
			src.aborted = true
			src.running = false
			s.onComplete(idx)
			return
		}
	}
	rtt := 2*s.cfg.AckDelay + 4*s.cfg.PropDelay
	if src.lastCut < 0 || s.now-src.lastCut > rtt {
		src.cwnd /= 2
		if src.cwnd < 2 {
			src.cwnd = 2
		}
		src.ssthresh = src.cwnd
		src.lastCut = s.now
	}
	s.pump(idx)
}

// onComplete releases successors waiting on this flow.
func (s *Sim) onComplete(idx int) {
	for j, other := range s.sources {
		if other.spec.After == idx && !other.running && !other.done && !other.aborted {
			s.queue.Push(s.now, evFlowStart, j)
		}
	}
}
