// Package packetsim is a packet-level discrete-event simulator on top of
// the MIFO forwarding engine — the granularity the paper's NS-3 evaluation
// and kernel prototype operate at, complementing the flow-level fluid
// model in internal/netsim.
//
// Every output port of every router has a finite FIFO tx queue served at
// line rate; the queue occupancy *is* the congestion signal Algorithm 1
// reads (the paper's "queuing ratio of output ports"), so deflection
// emerges from real packet dynamics instead of an externally set flag.
// Traffic sources run a reliable AIMD window (TCP-like additive increase,
// multiplicative decrease on loss), which reproduces fair sharing and
// goodput overheads without a full TCP stack.
package packetsim

import (
	"fmt"
	"strconv"

	"repro/internal/audit"
	"repro/internal/dataplane"
	"repro/internal/eventq"
	"repro/internal/metrics"
	"repro/internal/obs/tsdb"
)

// Config tunes the packet-level engine.
type Config struct {
	// PacketBytes is the data payload per packet (paper: 1 KB).
	PacketBytes int
	// WireOverheadBytes is added per packet on the wire (Ethernet + IP +
	// TCP framing; default 66, giving ~0.94 goodput at 1 KB payloads —
	// the paper's GbE testbed baseline).
	WireOverheadBytes int
	// EncapOverheadBytes is the extra outer IP header carried by packets
	// deflected across iBGP peers (default 20).
	EncapOverheadBytes int
	// QueuePackets is each port's tx queue capacity (default 128).
	QueuePackets int
	// PropDelay is the per-link propagation delay in seconds (default 50µs).
	PropDelay float64
	// AckDelay is the receiver-to-sender ACK latency (default 100µs).
	AckDelay float64
	// InitialWindow is the AIMD start window in packets (default 10).
	InitialWindow float64
	// MaxConsecutiveHardDrops aborts a flow whose packets keep being
	// dropped by the forwarding engine itself (no route / valley-free),
	// since no retransmission strategy can get them through (default 64).
	MaxConsecutiveHardDrops int
	// Recorder, when non-nil, is installed as the hop hook on every router
	// of the network: each sampled packet's full journey is recorded and
	// audited, and tx-queue drops finalize the journey as lost.
	Recorder *audit.Recorder
	// TSDB, when non-nil, receives per-port queue-ratio samples (the
	// engine's actual congestion signal) and the 100 ms aggregate-goodput
	// series. Port series are materialized lazily once a queue first
	// crosses half occupancy; timestamps are virtual time in nanoseconds.
	TSDB *tsdb.Store
}

func (c Config) withDefaults() Config {
	if c.PacketBytes <= 0 {
		c.PacketBytes = 1000
	}
	if c.WireOverheadBytes <= 0 {
		c.WireOverheadBytes = 66
	}
	if c.EncapOverheadBytes <= 0 {
		c.EncapOverheadBytes = 20
	}
	if c.QueuePackets <= 0 {
		c.QueuePackets = 128
	}
	if c.PropDelay <= 0 {
		c.PropDelay = 50e-6
	}
	if c.AckDelay <= 0 {
		c.AckDelay = 100e-6
	}
	if c.InitialWindow <= 0 {
		c.InitialWindow = 10
	}
	if c.MaxConsecutiveHardDrops <= 0 {
		c.MaxConsecutiveHardDrops = 64
	}
	return c
}

// FlowSpec describes one transfer.
type FlowSpec struct {
	// Key identifies the flow; the engine hashes it for deflection.
	Key dataplane.FlowKey
	// Origin is the router where packets are injected.
	Origin dataplane.RouterID
	// Dst is the destination prefix looked up in FIBs.
	Dst int32
	// SizeBytes is the total payload to deliver.
	SizeBytes int
	// Start is the earliest start time in seconds. If After is >= 0 the
	// flow instead starts when that flow (by index) completes.
	Start float64
	// After is the index of a predecessor flow, or -1.
	After int
}

// FlowResult reports one flow's packet-level outcome.
type FlowResult struct {
	Spec FlowSpec
	// Start and Finish are the observed first-send and last-ack times.
	Start, Finish float64
	// GoodputBps is payload bits delivered per second of transfer.
	GoodputBps float64
	// Retransmits counts packets resent after a loss.
	Retransmits int
	// QueueDrops counts packets lost to full tx queues.
	QueueDrops int
	// HardDrops counts forwarding-engine drops (no-route / valley-free).
	HardDrops int
	// DeflectedPkts counts delivered packets that took an alternative path.
	DeflectedPkts int
	// DeliveredPkts counts distinct delivered payload packets.
	DeliveredPkts int
	// Aborted marks flows stopped by MaxConsecutiveHardDrops.
	Aborted bool
}

// Sim is one packet-level run over a dataplane.Network.
type Sim struct {
	net *dataplane.Network
	cfg Config

	queues   []txQueue // indexed by portBase[router] + port
	portBase []int

	sources []*source
	queue   eventq.Queue
	now     float64

	// Aggregate goodput accounting.
	bucket      float64
	bucketStart float64
	series      metrics.TimeSeries
	totalBits   float64

	// TSDB instrumentation (nil unless cfg.TSDB is set). The event loop
	// is the single writer every series requires.
	tsRun      string
	tsQueueVec *tsdb.SeriesVec
	tsQueue    []*tsdb.Series // per qindex, materialized lazily
	tsGoodput  *tsdb.Series
}

type txQueue struct {
	pkts []*inFlight
	busy bool
}

// inFlight is a simulated packet in the network.
type inFlight struct {
	pkt  dataplane.Packet
	seq  int
	src  int // index into sources
	sent float64
	defl bool // took an alternative path at least once
	wire int  // wire bytes including overheads
}

// New builds a simulator over an existing router network. The network's
// routers keep whatever FIBs, thresholds and deflection policies they have;
// queue ratios are owned by the simulator from here on.
func New(net *dataplane.Network, cfg Config) *Sim {
	cfg = cfg.withDefaults()
	s := &Sim{net: net, cfg: cfg}
	s.portBase = make([]int, len(net.Routers)+1)
	for i, r := range net.Routers {
		s.portBase[i+1] = s.portBase[i] + len(r.Ports)
	}
	s.queues = make([]txQueue, s.portBase[len(net.Routers)])
	s.series.Name = "aggregate-gbps"
	if cfg.Recorder != nil {
		hook := cfg.Recorder.RouterHook()
		for _, r := range net.Routers {
			r.Hop = hook
		}
	}
	if cfg.TSDB != nil {
		s.tsRun = strconv.FormatInt(cfg.TSDB.NextRun(), 10)
		s.tsQueueVec = cfg.TSDB.SeriesVec("packetsim_queue_ratio", "tx-queue occupancy per output port (the congestion signal)", "run", "router", "port")
		s.tsQueue = make([]*tsdb.Series, len(s.queues))
		s.tsGoodput = cfg.TSDB.SeriesVec("packetsim_goodput_gbps", "aggregate delivered goodput per 100 ms bucket", "run").With(s.tsRun)
		cfg.TSDB.SetEpisodeSpec(tsdb.EpisodeSpec{
			Util: "packetsim_queue_ratio",
			// A full queue deflects; sustained >=95% occupancy for a
			// millisecond of virtual time is a congestion episode at
			// packet granularity.
			Threshold: 0.95,
			Window:    1e6,
			MaxGap:    1e8,
		})
	}
	return s
}

// AddFlow registers a transfer and returns its index.
func (s *Sim) AddFlow(spec FlowSpec) int {
	if spec.After < 0 && spec.Start < 0 {
		spec.Start = 0
	}
	src := &source{
		spec:  spec,
		cwnd:  s.cfg.InitialWindow,
		total: (spec.SizeBytes + s.cfg.PacketBytes - 1) / s.cfg.PacketBytes,
	}
	s.sources = append(s.sources, src)
	return len(s.sources) - 1
}

// Results holds a run's outputs.
type Results struct {
	Flows []FlowResult
	// Aggregate is goodput over time, bucketed per 100 ms, in Gbps.
	Aggregate metrics.TimeSeries
	// FCT is the distribution of flow completion times.
	FCT *metrics.CDF
	// TotalTime is when the last flow finished.
	TotalTime float64
	// MeanAggregateGbps is total payload over total time.
	MeanAggregateGbps float64
}

const (
	evFlowStart = iota
	evPktArrive
	evTxDone
	evAck
	evLoss
)

type pktArrival struct {
	p  *inFlight
	at dataplane.RouterID
	in int
}

type txRef struct {
	router dataplane.RouterID
	port   int
}

type ackRef struct {
	src  int
	seq  int
	hard bool
}

// Run executes the simulation until every flow completes or aborts.
func (s *Sim) Run() (*Results, error) {
	if len(s.sources) == 0 {
		return &Results{FCT: &metrics.CDF{}}, nil
	}
	for i, src := range s.sources {
		if src.spec.After < 0 {
			s.queue.Push(src.spec.Start, evFlowStart, i)
		} else if src.spec.After >= len(s.sources) || src.spec.After == i {
			return nil, fmt.Errorf("packetsim: flow %d has invalid After=%d", i, src.spec.After)
		}
	}
	const maxEvents = 500_000_000 // hard safety valve
	for n := 0; n < maxEvents; n++ {
		ev := s.queue.Pop()
		if ev == nil {
			break
		}
		s.account(ev.Time)
		s.now = ev.Time
		switch ev.Kind {
		case evFlowStart:
			s.startFlow(ev.Data.(int))
		case evPktArrive:
			a := ev.Data.(pktArrival)
			s.arrive(a.p, a.at, a.in)
		case evTxDone:
			r := ev.Data.(txRef)
			s.txDone(r.router, r.port)
		case evAck:
			a := ev.Data.(ackRef)
			s.ack(a.src, a.seq)
		case evLoss:
			a := ev.Data.(ackRef)
			s.loss(a.src, a.seq, a.hard)
		}
	}

	res := &Results{FCT: &metrics.CDF{}}
	for _, src := range s.sources {
		fr := FlowResult{
			Spec:          src.spec,
			Start:         src.started,
			Finish:        src.finished,
			Retransmits:   src.retransmits,
			QueueDrops:    src.queueDrops,
			HardDrops:     src.hardDrops,
			DeflectedPkts: src.deflected,
			DeliveredPkts: src.delivered,
			Aborted:       src.aborted,
		}
		if !src.aborted && src.finished > src.started {
			fr.GoodputBps = float64(src.spec.SizeBytes*8) / (src.finished - src.started)
			res.FCT.Add(src.finished - src.started)
			if src.finished > res.TotalTime {
				res.TotalTime = src.finished
			}
		}
		res.Flows = append(res.Flows, fr)
	}
	s.flushBucket()
	res.Aggregate = s.series
	if res.TotalTime > 0 {
		res.MeanAggregateGbps = s.totalBits / res.TotalTime / 1e9
	}
	return res, nil
}

// account adds delivered bits to the 100ms aggregate buckets.
func (s *Sim) account(t float64) {
	for t-s.bucketStart >= 0.1 {
		gbps := s.bucket / 0.1 / 1e9
		s.series.Add(s.bucketStart, gbps)
		if s.tsGoodput != nil {
			s.tsGoodput.Sample(int64(s.bucketStart*1e9), gbps)
		}
		s.bucket = 0
		s.bucketStart += 0.1
	}
}

func (s *Sim) flushBucket() {
	if s.bucket > 0 {
		s.series.Add(s.bucketStart, s.bucket/0.1/1e9)
		s.bucket = 0
	}
}

func (s *Sim) qindex(r dataplane.RouterID, port int) int {
	return s.portBase[r] + port
}

// inject creates and routes one payload packet from a source.
func (s *Sim) inject(srcIdx, seq int) {
	src := s.sources[srcIdx]
	p := &inFlight{
		// The sequence number doubles as the wire-level packet ID the
		// flight recorder stitches journeys by; AIMD never has two packets
		// of one flow with the same seq in flight, so the uint16 wrap on
		// very long transfers cannot collide within a window.
		pkt:  dataplane.Packet{Flow: src.spec.Key, ID: uint16(seq), Dst: src.spec.Dst, TTL: dataplane.DefaultTTL},
		seq:  seq,
		src:  srcIdx,
		sent: s.now,
		wire: s.cfg.PacketBytes + s.cfg.WireOverheadBytes,
	}
	s.arrive(p, src.spec.Origin, -1)
}

// arrive runs the forwarding engine for a packet at a router.
func (s *Sim) arrive(p *inFlight, at dataplane.RouterID, in int) {
	r := s.net.Router(at)
	if p.pkt.TTL <= 0 {
		r.DropExpired(&p.pkt, in)
		s.hardDrop(p)
		return
	}
	p.pkt.TTL--
	wasEncap := p.pkt.Encap
	act := r.Forward(&p.pkt, in)
	if wasEncap && !p.pkt.Encap {
		p.wire -= s.cfg.EncapOverheadBytes // outer header stripped
	}
	switch act.Verdict {
	case dataplane.VerdictDeliver:
		s.deliver(p)
	case dataplane.VerdictDrop:
		s.hardDrop(p)
	case dataplane.VerdictForward:
		if act.Deflected {
			p.defl = true
			if p.pkt.Encap {
				p.wire += s.cfg.EncapOverheadBytes
			}
		}
		s.enqueue(p, at, act.Port)
	}
}

// enqueue places a packet in a port's tx queue, dropping at capacity.
func (s *Sim) enqueue(p *inFlight, at dataplane.RouterID, port int) {
	qi := s.qindex(at, port)
	q := &s.queues[qi]
	if len(q.pkts) >= s.cfg.QueuePackets {
		src := s.sources[p.src]
		src.queueDrops++
		if s.cfg.Recorder != nil {
			s.cfg.Recorder.Lost(&p.pkt, "queue-overflow")
		}
		s.queue.Push(s.now, evLoss, ackRef{src: p.src, seq: p.seq})
		return
	}
	q.pkts = append(q.pkts, p)
	s.updateQueueRatio(at, port, qi)
	if !q.busy {
		q.busy = true
		s.startTx(at, port, qi)
	}
}

// startTx begins serializing the head-of-line packet.
func (s *Sim) startTx(at dataplane.RouterID, port int, qi int) {
	q := &s.queues[qi]
	p := q.pkts[0]
	rate := s.net.Router(at).Ports[port].CapacityBps
	txTime := float64(p.wire*8) / rate
	s.queue.Push(s.now+txTime, evTxDone, txRef{router: at, port: port})
}

// txDone moves the head packet onto the wire and serves the next one.
func (s *Sim) txDone(at dataplane.RouterID, port int) {
	qi := s.qindex(at, port)
	q := &s.queues[qi]
	p := q.pkts[0]
	copy(q.pkts, q.pkts[1:])
	q.pkts = q.pkts[:len(q.pkts)-1]
	s.updateQueueRatio(at, port, qi)

	pp := &s.net.Router(at).Ports[port]
	s.queue.Push(s.now+s.cfg.PropDelay, evPktArrive, pktArrival{p: p, at: pp.Peer, in: pp.PeerPort})

	if len(q.pkts) > 0 {
		s.startTx(at, port, qi)
	} else {
		q.busy = false
	}
}

// updateQueueRatio publishes the occupancy as the congestion signal.
func (s *Sim) updateQueueRatio(at dataplane.RouterID, port int, qi int) {
	ratio := float64(len(s.queues[qi].pkts)) / float64(s.cfg.QueuePackets)
	s.net.Router(at).SetQueueRatio(port, ratio)
	if s.tsQueueVec != nil {
		ser := s.tsQueue[qi]
		if ser == nil {
			if ratio < 0.5 {
				return // only ports that actually build queues get series
			}
			ser = s.tsQueueVec.With(s.tsRun, strconv.Itoa(int(at)), strconv.Itoa(port))
			s.tsQueue[qi] = ser
		}
		ser.Sample(int64(s.now*1e9), ratio)
	}
}

// deliver hands the payload to the destination and schedules the ACK.
func (s *Sim) deliver(p *inFlight) {
	src := s.sources[p.src]
	if p.defl {
		src.deflected++
	}
	s.queue.Push(s.now+s.cfg.AckDelay, evAck, ackRef{src: p.src, seq: p.seq})
}

// hardDrop handles a forwarding-engine drop (no route, valley-free, TTL).
func (s *Sim) hardDrop(p *inFlight) {
	s.sources[p.src].hardDrops++
	s.queue.Push(s.now, evLoss, ackRef{src: p.src, seq: p.seq, hard: true})
}
