package packetsim

import (
	"bytes"
	"testing"

	"repro/internal/audit"
	"repro/internal/dataplane"
	"repro/internal/topo"
)

// TestFlightRecorderAuditsPacketRun drives the emergent-deflection MIFO
// scenario with a recorder at 100% sampling and checks the acceptance
// properties at packet granularity: zero invariant violations, and the
// deflection count reconstructed from JSONL alone equals the routers' own
// deflection counters.
func TestFlightRecorderAuditsPacketRun(t *testing.T) {
	n := dataplane.NewNetwork()
	r1 := n.AddRouter(1)
	r2 := n.AddRouter(2)
	r3 := n.AddRouter(3)
	r4 := n.AddRouter(4)
	p12, _ := n.Connect(r1.ID, r2.ID, dataplane.EBGP, topo.Customer, gbps)
	p13, _ := n.Connect(r1.ID, r3.ID, dataplane.EBGP, topo.Customer, gbps)
	p24, _ := n.Connect(r2.ID, r4.ID, dataplane.EBGP, topo.Customer, gbps)
	p34, _ := n.Connect(r3.ID, r4.ID, dataplane.EBGP, topo.Customer, gbps)
	r4.Local[4] = true
	r1.FIB.Set(4, dataplane.FIBEntry{Out: p12, Alt: p13, AltVia: r3.ID})
	r2.FIB.Set(4, dataplane.FIBEntry{Out: p24, Alt: -1, AltVia: -1})
	r3.FIB.Set(4, dataplane.FIBEntry{Out: p34, Alt: -1, AltVia: -1})
	for _, r := range n.Routers {
		r.MIFOEnabled = true
		r.CongestionThreshold = 0.5
	}
	r1.Deflect = dataplane.DeflectShare(0.5)

	var buf bytes.Buffer
	// The sim bursts hops faster than the batcher encodes them; size the
	// rings for the whole run so the shed policy never fires and the
	// exact-count assertions below hold.
	rec := audit.NewRecorder(audit.Options{Writer: &buf, SegmentCap: 1 << 13})
	sim := New(n, Config{Recorder: rec})
	for _, k := range []dataplane.FlowKey{
		{SrcAddr: 1, DstAddr: 4, SrcPort: 2, Proto: 6},
		{SrcAddr: 1, DstAddr: 4, SrcPort: 1, Proto: 6},
	} {
		sim.AddFlow(FlowSpec{Key: k, Origin: r1.ID, Dst: 4, SizeBytes: 3_000_000, After: -1})
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	deflPkts := res.Flows[0].DeflectedPkts + res.Flows[1].DeflectedPkts
	if deflPkts == 0 {
		t.Fatal("scenario drifted: no deflected packets")
	}

	st := rec.Stats()
	if st.RingDropped != 0 {
		t.Fatalf("rings shed %d records despite workload-sized capacity", st.RingDropped)
	}
	if st.Violations != 0 {
		t.Fatalf("invariant violations in a correct MIFO run: %+v\nrecords: %+v",
			st, rec.ViolatingRecords())
	}
	var routerDeflections int64
	for _, r := range n.Routers {
		routerDeflections += r.Deflections()
	}
	if routerDeflections == 0 || int64(st.Deflections) != routerDeflections {
		t.Fatalf("recorder saw %d deflected steps, router counters say %d",
			st.Deflections, routerDeflections)
	}

	sum, err := audit.Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(sum.TotalDeflections) != routerDeflections {
		t.Fatalf("JSONL reconstructs %d deflections, router counters say %d",
			sum.TotalDeflections, routerDeflections)
	}
	if sum.TotalViolations != 0 {
		t.Fatalf("JSONL carries violations: %v", sum.Violations)
	}
	// Every delivered payload packet must have a delivered journey. Queue
	// drops appear as lost records; retransmissions start fresh journeys.
	delivered := res.Flows[0].DeliveredPkts + res.Flows[1].DeliveredPkts
	if int(st.Delivered) < delivered {
		t.Fatalf("recorder finalized %d delivered journeys, sim delivered %d packets",
			st.Delivered, delivered)
	}
	queueDrops := res.Flows[0].QueueDrops + res.Flows[1].QueueDrops
	if int(st.Lost) != queueDrops {
		t.Fatalf("recorder counted %d lost journeys, sim dropped %d at queues",
			st.Lost, queueDrops)
	}
}

// TestFlightRecorderSamplingIsPerFlow: with one flow sampled out, its
// packets leave no records while the other flow's journeys are complete.
func TestFlightRecorderSamplingIsPerFlow(t *testing.T) {
	n, a, _ := line(t)
	keys := []dataplane.FlowKey{
		{SrcAddr: 1, DstAddr: 2, SrcPort: 1, Proto: 6},
		{SrcAddr: 1, DstAddr: 2, SrcPort: 2, Proto: 6},
	}
	// Pick a rate that keeps exactly one of the two flows.
	var sample float64
	h0, h1 := keys[0].Hash(), keys[1].Hash()
	lo, hi := h0, h1
	if lo > hi {
		lo, hi = hi, lo
	}
	sample = (float64(lo) + 1) / float64(^uint32(0))
	rec := audit.NewRecorder(audit.Options{Sample: sample})
	sim := New(n, Config{Recorder: rec})
	for _, k := range keys {
		sim.AddFlow(FlowSpec{Key: k, Origin: a.ID, Dst: 2, SizeBytes: 100_000, After: -1})
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	keptDelivered := res.Flows[0].DeliveredPkts
	if h1 == lo {
		keptDelivered = res.Flows[1].DeliveredPkts
	}
	st := rec.Stats()
	if int(st.Delivered) < keptDelivered || st.Records == 0 {
		t.Fatalf("sampled flow under-recorded: stats %+v, want >= %d delivered", st, keptDelivered)
	}
	// Both flows delivered the same payload; if the unsampled one had been
	// recorded too, Delivered would be ~2x keptDelivered.
	if int(st.Delivered) > keptDelivered+keptDelivered/2 {
		t.Fatalf("unsampled flow leaked into the recorder: %+v", st)
	}
}
