package packetsim

import (
	"math"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/topo"
)

const gbps = 1e9

// line builds a two-router chain: src router (AS 1) -> dst router (AS 2)
// delivering prefix 2.
func line(t testing.TB) (*dataplane.Network, *dataplane.Router, *dataplane.Router) {
	t.Helper()
	n := dataplane.NewNetwork()
	a := n.AddRouter(1)
	b := n.AddRouter(2)
	pab, _ := n.Connect(a.ID, b.ID, dataplane.EBGP, topo.Customer, gbps)
	a.FIB.Set(2, dataplane.FIBEntry{Out: pab, Alt: -1, AltVia: -1})
	b.Local[2] = true
	return n, a, b
}

func TestSingleFlowGoodput(t *testing.T) {
	n, a, _ := line(t)
	sim := New(n, Config{})
	sim.AddFlow(FlowSpec{
		Key:    dataplane.FlowKey{SrcAddr: 1, DstAddr: 2, Proto: 6},
		Origin: a.ID, Dst: 2, SizeBytes: 2_000_000, After: -1,
	})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.Aborted || f.DeliveredPkts != 2000 {
		t.Fatalf("flow = %+v", f)
	}
	// Goodput ~ payload/wire fraction of line rate: 1000/1066 ≈ 0.938 Gbps.
	want := gbps * 1000 / 1066
	if f.GoodputBps < 0.85*want || f.GoodputBps > 1.01*want {
		t.Errorf("goodput = %.0f, want ~%.0f", f.GoodputBps, want)
	}
	// Slow start may overshoot the queue once — classic TCP — but a lone
	// flow on a clean path must not suffer sustained loss.
	if f.Retransmits > 5 || f.HardDrops != 0 {
		t.Errorf("single flow lost too much: %+v", f)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	n, a, _ := line(t)
	sim := New(n, Config{})
	for i := 0; i < 2; i++ {
		sim.AddFlow(FlowSpec{
			Key:    dataplane.FlowKey{SrcAddr: uint32(i + 10), DstAddr: 2, SrcPort: uint16(i), Proto: 6},
			Origin: a.ID, Dst: 2, SizeBytes: 2_000_000, After: -1,
		})
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Flows {
		if f.Aborted {
			t.Fatalf("flow aborted: %+v", f)
		}
		// Two TCP-like flows race; neither may starve or exceed the wire.
		if f.GoodputBps < 0.15*gbps || f.GoodputBps > 0.95*gbps {
			t.Errorf("flow goodput = %.0f, want a plausible share of the link", f.GoodputBps)
		}
	}
	// The link itself must be near fully used while both flows are active:
	// total payload divided by the last finish time.
	if res.MeanAggregateGbps < 0.70 || res.MeanAggregateGbps > 0.94 {
		t.Errorf("aggregate = %v Gbps, want close to goodput capacity", res.MeanAggregateGbps)
	}
}

func TestSequentialFlows(t *testing.T) {
	n, a, _ := line(t)
	sim := New(n, Config{})
	first := sim.AddFlow(FlowSpec{
		Key:    dataplane.FlowKey{SrcAddr: 1, DstAddr: 2, SrcPort: 0, Proto: 6},
		Origin: a.ID, Dst: 2, SizeBytes: 500_000, After: -1,
	})
	sim.AddFlow(FlowSpec{
		Key:    dataplane.FlowKey{SrcAddr: 1, DstAddr: 2, SrcPort: 1, Proto: 6},
		Origin: a.ID, Dst: 2, SizeBytes: 500_000, After: first,
	})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[1].Start < res.Flows[0].Finish {
		t.Errorf("flow 1 started at %v before flow 0 finished at %v",
			res.Flows[1].Start, res.Flows[0].Finish)
	}
}

func TestUnroutableFlowAborts(t *testing.T) {
	n := dataplane.NewNetwork()
	a := n.AddRouter(1) // no FIB entry at all
	sim := New(n, Config{MaxConsecutiveHardDrops: 8})
	sim.AddFlow(FlowSpec{
		Key:    dataplane.FlowKey{SrcAddr: 1, DstAddr: 9, Proto: 6},
		Origin: a.ID, Dst: 9, SizeBytes: 100_000, After: -1,
	})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flows[0].Aborted {
		t.Fatalf("flow should abort on persistent no-route drops: %+v", res.Flows[0])
	}
	if res.Flows[0].HardDrops < 8 {
		t.Errorf("hard drops = %d, want >= limit", res.Flows[0].HardDrops)
	}
}

func TestInvalidAfter(t *testing.T) {
	n, a, _ := line(t)
	sim := New(n, Config{})
	sim.AddFlow(FlowSpec{
		Key:    dataplane.FlowKey{SrcAddr: 1, DstAddr: 2, Proto: 6},
		Origin: a.ID, Dst: 2, SizeBytes: 1000, After: 5,
	})
	if _, err := sim.Run(); err == nil {
		t.Fatal("invalid After must error")
	}
}

func TestEmptyRun(t *testing.T) {
	n, _, _ := line(t)
	sim := New(n, Config{})
	res, err := sim.Run()
	if err != nil || len(res.Flows) != 0 {
		t.Fatalf("empty run: %v, %v", res, err)
	}
}

// Queue-driven deflection: two concurrent flows on a topology with an
// alternative path; with MIFO the queue occupancy itself triggers the
// deflection, and aggregate goodput rises well above one link's worth.
func TestEmergentDeflection(t *testing.T) {
	build := func(mifo bool) (*dataplane.Network, *dataplane.Router) {
		// AS 1 --(default)--> AS 2 --> dst AS 4
		//    \--(alt)-------> AS 3 --> dst AS 4
		n := dataplane.NewNetwork()
		r1 := n.AddRouter(1)
		r2 := n.AddRouter(2)
		r3 := n.AddRouter(3)
		r4 := n.AddRouter(4)
		p12, _ := n.Connect(r1.ID, r2.ID, dataplane.EBGP, topo.Customer, gbps)
		p13, _ := n.Connect(r1.ID, r3.ID, dataplane.EBGP, topo.Customer, gbps)
		p24, _ := n.Connect(r2.ID, r4.ID, dataplane.EBGP, topo.Customer, gbps)
		p34, _ := n.Connect(r3.ID, r4.ID, dataplane.EBGP, topo.Customer, gbps)
		r4.Local[4] = true
		r1.FIB.Set(4, dataplane.FIBEntry{Out: p12, Alt: p13, AltVia: r3.ID})
		r2.FIB.Set(4, dataplane.FIBEntry{Out: p24, Alt: -1, AltVia: -1})
		r3.FIB.Set(4, dataplane.FIBEntry{Out: p34, Alt: -1, AltVia: -1})
		for _, r := range n.Routers {
			r.MIFOEnabled = mifo
			r.CongestionThreshold = 0.5
		}
		r1.Deflect = dataplane.DeflectShare(0.5)
		return n, r1
	}
	run := func(mifo bool) float64 {
		n, r1 := build(mifo)
		sim := New(n, Config{})
		// Keys chosen so one hashes below the 50% share and one above.
		keys := []dataplane.FlowKey{
			{SrcAddr: 1, DstAddr: 4, SrcPort: 2, Proto: 6},
			{SrcAddr: 1, DstAddr: 4, SrcPort: 1, Proto: 6},
		}
		limit := dataplane.DeflectShare(0.5)
		if limit(keys[0]) == limit(keys[1]) {
			t.Fatalf("test keys hash to the same side; pick different ports")
		}
		for _, k := range keys {
			sim.AddFlow(FlowSpec{Key: k, Origin: r1.ID, Dst: 4, SizeBytes: 3_000_000, After: -1})
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, f := range res.Flows {
			if f.Aborted {
				t.Fatalf("aborted: %+v", f)
			}
			sum += f.GoodputBps
		}
		if mifo {
			defl := res.Flows[0].DeflectedPkts + res.Flows[1].DeflectedPkts
			if defl == 0 {
				t.Fatal("MIFO run never deflected a packet")
			}
		}
		return sum
	}
	bgp := run(false)
	mifo := run(true)
	if mifo < 1.25*bgp {
		t.Errorf("MIFO aggregate %.2e should clearly beat BGP %.2e", mifo, bgp)
	}
	if bgp > 0.95*gbps {
		t.Errorf("BGP aggregate %.2e should be capped by the single default link", bgp)
	}
}

func TestAggregateSeriesSane(t *testing.T) {
	n, a, _ := line(t)
	sim := New(n, Config{})
	sim.AddFlow(FlowSpec{
		Key:    dataplane.FlowKey{SrcAddr: 1, DstAddr: 2, Proto: 6},
		Origin: a.ID, Dst: 2, SizeBytes: 30_000_000, After: -1,
	})
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aggregate.Rows) == 0 {
		t.Fatal("no aggregate samples")
	}
	for _, r := range res.Aggregate.Rows {
		if r.Y < 0 || r.Y > 1.01 {
			t.Fatalf("aggregate sample %v outside [0, line rate]", r)
		}
	}
	if math.Abs(res.MeanAggregateGbps-0.9) > 0.15 {
		t.Errorf("mean aggregate = %v, want ~0.94", res.MeanAggregateGbps)
	}
}

func BenchmarkPacketLevel2MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, a, _ := line(b)
		sim := New(n, Config{})
		sim.AddFlow(FlowSpec{
			Key:    dataplane.FlowKey{SrcAddr: 1, DstAddr: 2, Proto: 6},
			Origin: a.ID, Dst: 2, SizeBytes: 2_000_000, After: -1,
		})
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
