package core

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/topo"
)

// BenchmarkSelectAlternative measures the daemon's greedy per-destination
// selection on an Internet-like topology, at the best-connected AS (the
// largest RIB). "alloc" is the public entry point, which builds a fresh RIB
// slice per call; "scratch" is the refresh path, which threads one buffer
// through the whole control epoch (bgp.RIBInto) and must not allocate.
func BenchmarkSelectAlternative(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 500, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	d := NewDeployment(g, Config{})
	table := bgp.Compute(g, 0)
	d.InstallDestination(table)

	// Pick the AS with the widest RIB that still has an alternative — the
	// worst case for per-call allocation.
	busiest, widest := -1, 0
	for v := 1; v < g.N(); v++ {
		if size := bgp.RIBSize(g, table, v); size > widest {
			if _, ok := d.Daemon(v).SelectAlternative(table); ok {
				busiest, widest = v, size
			}
		}
	}
	if busiest < 0 {
		b.Fatal("no AS has an alternative")
	}
	dm := d.Daemon(busiest)

	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dm.SelectAlternative(table)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		var buf []bgp.Alt
		for i := 0; i < b.N; i++ {
			_, _, buf = dm.selectInto(table, buf)
		}
	})
}
