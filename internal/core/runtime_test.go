package core

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/dataplane"
	"repro/internal/topo"
)

func TestRuntimeConvergesAltPorts(t *testing.T) {
	// Fig. 2(c)-style setup: AS 0 with expanded routers, alternatives via
	// 2 and 3 towards destination 4.
	b := topo.NewBuilder(5)
	b.AddPC(1, 0).AddPC(2, 0).AddPC(3, 0)
	b.AddPC(1, 4).AddPC(2, 4).AddPC(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeployment(g, Config{ExpandASes: []int{0}})
	table := bgp.Compute(g, 4)
	d.InstallDestination(table)

	rt := NewRuntime(d, 2*time.Millisecond)
	rt.Start()
	defer rt.Stop()

	// Shift the spare-capacity balance at runtime: first 3 is widest.
	if err := d.SetLinkLoad(0, 2, 9e8); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		sel, ok := d.Daemon(0).SelectAlternative(table)
		if !ok || sel.Alt.Via != 3 {
			return false
		}
		r := d.Net.Router(sel.Router)
		e, exists := r.FIB.Lookup(4)
		return exists && e.Alt == sel.Port
	})

	// Now make 2 the widest; the daemons must converge without an
	// explicit Refresh call.
	if err := d.SetLinkLoad(0, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.SetLinkLoad(0, 3, 9e8); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		sel, ok := d.Daemon(0).SelectAlternative(table)
		return ok && sel.Alt.Via == 2
	})
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

// Forwarding while the daemons rewrite FIBs concurrently: run under -race
// to prove the data plane / control plane split is safe.
func TestRuntimeConcurrentWithForwarding(t *testing.T) {
	g := fig2aGraph(t)
	d := NewDeployment(g, Config{})
	table := bgp.Compute(g, 0)
	d.InstallDestination(table)

	rt := NewRuntime(d, time.Millisecond)
	rt.Start()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3000; i++ {
			// Oscillate the congestion signal while packets fly.
			d.SetLinkLoad(1, 0, float64(i%2)*1e9)
		}
	}()
	loops := 0
	for i := 0; i < 3000; i++ {
		res := d.Send(dataplane.FlowKey{SrcAddr: uint32(i), DstAddr: 0}, 1, 0)
		if res.Verdict == dataplane.VerdictDrop && res.Reason == dataplane.DropTTL {
			loops++
		}
	}
	<-done
	rt.Stop()
	if loops != 0 {
		t.Fatalf("%d packets looped under concurrent daemon updates", loops)
	}
	// Stop is idempotent; Start works again after Stop.
	rt.Stop()
	rt.Start()
	rt.Stop()
}
