package core

import (
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/obs"
)

// Runtime runs every daemon of a Deployment as its own goroutine, the way
// the paper's prototype runs a XORP module per router: each daemon
// periodically collects the data plane's link measurements and rewrites
// its AS's alternative ports, concurrently with packet forwarding.
//
// The data plane is safe for this concurrency: each daemon publishes a
// control epoch as one immutable FIB generation per router (an atomic
// pointer swap; forwarding lookups never take a lock) and the
// queue/utilization signals are atomics, mirroring the kernel/daemon split
// of the prototype (Fig. 10).
type Runtime struct {
	dep      *Deployment
	interval time.Duration

	// epochDur, when instrumented, records how long one daemon control
	// epoch (a full refresh pass over every destination) takes — the
	// Fig. 10 control-loop latency an operator watches to size the
	// update interval.
	epochDur *obs.Histogram
	epochs   *obs.Counter

	mu      sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// NewRuntime wraps a deployment. interval is each daemon's measurement and
// update period.
func NewRuntime(dep *Deployment, interval time.Duration) *Runtime {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &Runtime{dep: dep, interval: interval}
}

// Instrument registers the runtime's control-loop metrics on reg:
// core_daemon_epoch_seconds (histogram) and core_daemon_epochs_total
// (counter), plus the deployment's FIB publication metrics
// (core_fib_commit_seconds, core_fib_generation). Call before Start.
func (rt *Runtime) Instrument(reg *obs.Registry) {
	rt.epochDur = reg.Histogram("core_daemon_epoch_seconds",
		"duration of one MIFO daemon control epoch (refresh of every destination)", obs.DurationBuckets)
	rt.epochs = reg.Counter("core_daemon_epochs_total", "control epochs executed across all daemons")
	rt.dep.Instrument(reg)
}

// Start launches one goroutine per capable AS. It is a no-op if already
// running.
func (rt *Runtime) Start() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return
	}
	rt.started = true
	rt.stop = make(chan struct{})
	for _, dm := range rt.dep.daemons {
		if dm == nil {
			continue
		}
		rt.wg.Add(1)
		go rt.loop(dm)
	}
}

func (rt *Runtime) loop(dm *Daemon) {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.interval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			start := time.Now()
			dm.RefreshAll(rt.dep.Tables())
			if rt.epochDur != nil {
				rt.epochDur.Observe(time.Since(start).Seconds())
				rt.epochs.Inc()
			}
		}
	}
}

// Stop halts all daemon goroutines and waits for them to exit. It is a
// no-op if not running.
func (rt *Runtime) Stop() {
	rt.mu.Lock()
	if !rt.started {
		rt.mu.Unlock()
		return
	}
	rt.started = false
	close(rt.stop)
	rt.mu.Unlock()
	rt.wg.Wait()
}

// Tables returns a snapshot of the installed per-destination routing
// tables in ascending destination order, safe to iterate while
// destinations are being added.
func (d *Deployment) Tables() []*bgp.Dest {
	d.tablesMu.RLock()
	defer d.tablesMu.RUnlock()
	return d.tables.All()
}
