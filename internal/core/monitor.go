package core

import (
	"math"
	"sync"

	"repro/internal/obs"
)

// Meter estimates a link's transmit rate from byte observations with an
// exponentially weighted moving average — the MIFO daemon's "constantly
// collects available link capacity from the data plane" (Fig. 10) without
// any per-packet cost beyond a counter.
type Meter struct {
	mu sync.Mutex
	// halfLife is the EWMA half-life in seconds.
	halfLife float64
	rate     float64 // bits per second
	// pending accumulates bits observed at the same instant as lastAt;
	// they are folded into the EWMA at the next time-advancing
	// observation. (Adding raw bits straight into rate would mix units:
	// bits into a bits-per-second average.)
	pending float64
	lastAt  float64
	started bool
	// gauge, when bound, mirrors the current estimate for exposition.
	gauge *obs.Gauge
}

// NewMeter returns a meter with the given half-life (seconds; default 0.5).
func NewMeter(halfLife float64) *Meter {
	if halfLife <= 0 {
		halfLife = 0.5
	}
	return &Meter{halfLife: halfLife}
}

// Bind mirrors every rate update into the given gauge (bits per second),
// typically one registered as a labeled series of a metrics registry.
// Pass nil to unbind.
func (m *Meter) Bind(g *obs.Gauge) {
	m.mu.Lock()
	m.gauge = g
	if g != nil {
		g.Set(m.rate)
	}
	m.mu.Unlock()
}

// Observe records that `bits` were sent during the interval ending at
// time `now` (seconds, any monotonic origin). Calls must have
// non-decreasing now.
func (m *Meter) Observe(bits float64, now float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		m.started = true
		m.lastAt = now
		return
	}
	dt := now - m.lastAt
	if dt <= 0 {
		// Same instant: no interval to divide by yet. Hold the bits and
		// fold them in when time advances.
		m.pending += bits
		return
	}
	inst := (m.pending + bits) / dt
	m.pending = 0
	w := math.Exp2(-dt / m.halfLife)
	m.rate = w*m.rate + (1-w)*inst
	m.lastAt = now
	if m.gauge != nil {
		m.gauge.Set(m.rate)
	}
}

// Rate returns the current estimate in bits per second, decayed to `now`.
func (m *Meter) Rate(now float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		return 0
	}
	dt := now - m.lastAt
	if dt <= 0 {
		return m.rate
	}
	// No observations since lastAt: the estimate decays toward zero.
	return m.rate * math.Exp2(-dt/m.halfLife)
}
