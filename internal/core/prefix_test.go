package core

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/dataplane"
	"repro/internal/obs/span"
)

// The prefix-FIB deployment must behave identically to the dense one —
// same default forwarding, same daemon-driven deflection — with routes
// resolved by longest-prefix match on real addresses.
func TestPrefixFIBDeploymentEquivalence(t *testing.T) {
	g := fig2aGraph(t)
	table := bgp.Compute(g, 0)

	dense := NewDeployment(g, Config{})
	dense.InstallDestination(table)
	prefix := NewDeployment(g, Config{UsePrefixFIB: true})
	prefix.InstallDestination(table)

	send := func(d *Deployment, src int) dataplane.Result {
		p := &dataplane.Packet{
			Flow: dataplane.FlowKey{
				SrcAddr: uint32(src),
				DstAddr: dataplane.PrefixAddr(0), // LPM resolves on this
			},
			Dst: 0,
		}
		return d.Net.Send(p, d.Routers(src)[0].ID)
	}

	for src := 1; src <= 3; src++ {
		a, b := send(dense, src), send(prefix, src)
		if a.Verdict != b.Verdict || len(a.Hops) != len(b.Hops) {
			t.Fatalf("src %d: dense %v/%d hops vs prefix %v/%d hops",
				src, a.Verdict, len(a.Hops), b.Verdict, len(b.Hops))
		}
	}

	// Congestion + daemon refresh must deflect identically.
	for _, d := range []*Deployment{dense, prefix} {
		if err := d.SetLinkLoad(1, 0, 1e9); err != nil {
			t.Fatal(err)
		}
		d.Refresh()
	}
	a, b := send(dense, 1), send(prefix, 1)
	if a.Deflections != 1 || b.Deflections != a.Deflections {
		t.Fatalf("deflections: dense %d, prefix %d, want 1", a.Deflections, b.Deflections)
	}
	pa, pb := a.ASPath(dense.Net), b.ASPath(prefix.Net)
	if len(pa) != len(pb) {
		t.Fatalf("paths differ: %v vs %v", pa, pb)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("paths differ: %v vs %v", pa, pb)
		}
	}
	// The prefix router really is using an LPM table.
	if prefix.Routers(1)[0].PrefixFIB.Len() == 0 {
		t.Fatal("prefix deployment installed nothing in the LPM table")
	}
}

// Clearing alternatives works in prefix mode too.
func TestPrefixFIBClearAlt(t *testing.T) {
	g := fig2aGraph(t)
	d := NewDeployment(g, Config{UsePrefixFIB: true})
	table := bgp.Compute(g, 0)
	d.InstallDestination(table)
	d.SetLinkLoad(1, 0, 1e9)
	d.Refresh()
	r := d.Routers(1)[0]
	e, ok := r.PrefixFIB.Lookup(dataplane.PrefixAddr(0))
	if !ok || e.Alt < 0 {
		t.Fatalf("alt not installed: %+v", e)
	}
	// With the whole RIB reduced to one route the daemon clears the alt.
	// Simulate by clearing directly through the abstraction.
	tx := beginFIB(r, span.Context{})
	ok = tx.setAlt(0, -1, -1)
	tx.commit()
	if !ok {
		t.Fatal("setAlt failed")
	}
	e, _ = r.PrefixFIB.Lookup(dataplane.PrefixAddr(0))
	if e.Alt != -1 {
		t.Fatalf("alt not cleared: %+v", e)
	}
}
