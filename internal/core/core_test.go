package core

import (
	"math/rand"
	"testing"

	"repro/internal/bgp"
	"repro/internal/dataplane"
	"repro/internal/topo"
)

// fig2aGraph: AS 0 is a customer of 1, 2, 3, which peer in a triangle.
func fig2aGraph(t testing.TB) *topo.Graph {
	t.Helper()
	g, err := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDeploymentWiring(t *testing.T) {
	g := fig2aGraph(t)
	d := NewDeployment(g, Config{})
	if got := len(d.Net.Routers); got != 4 {
		t.Fatalf("routers = %d, want 4 (one per AS)", got)
	}
	r, port, err := d.EgressPort(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.AS != 1 || r.Ports[port].PeerAS != 0 || r.Ports[port].Rel != topo.Customer {
		t.Errorf("egress 1->0: AS=%d peerAS=%d rel=%v", r.AS, r.Ports[port].PeerAS, r.Ports[port].Rel)
	}
	if _, _, err := d.EgressPort(0, 2); err != nil {
		t.Error("egress 0->2 should exist")
	}
	if _, _, err := d.EgressPort(1, 99); err == nil {
		t.Error("nonexistent link should error")
	}
}

func TestInstallAndDefaultForwarding(t *testing.T) {
	g := fig2aGraph(t)
	d := NewDeployment(g, Config{})
	d.InstallDestination(bgp.Compute(g, 0))
	for src := 1; src <= 3; src++ {
		res := d.Send(dataplane.FlowKey{SrcAddr: uint32(src), DstAddr: 0}, src, 0)
		if res.Verdict != dataplane.VerdictDeliver {
			t.Fatalf("src %d: %v/%v", src, res.Verdict, res.Reason)
		}
		if len(res.Hops) != 2 {
			t.Errorf("src %d: hops = %d, want direct", src, len(res.Hops))
		}
	}
}

func TestDeflectionEndToEnd(t *testing.T) {
	g := fig2aGraph(t)
	d := NewDeployment(g, Config{})
	table := bgp.Compute(g, 0)
	d.InstallDestination(table)
	// Congest AS 1's default link to 0; the daemon installs the peer
	// alternative (via AS 2, the lowest tie-break).
	if err := d.SetLinkLoad(1, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	d.Refresh()
	res := d.Send(dataplane.FlowKey{SrcAddr: 1, DstAddr: 0}, 1, 0)
	if res.Verdict != dataplane.VerdictDeliver {
		t.Fatalf("verdict = %v/%v", res.Verdict, res.Reason)
	}
	asPath := res.ASPath(d.Net)
	if len(asPath) != 3 || asPath[0] != 1 || asPath[1] != 2 || asPath[2] != 0 {
		t.Errorf("AS path = %v, want [1 2 0]", asPath)
	}
	if res.Deflections != 1 {
		t.Errorf("deflections = %d, want 1", res.Deflections)
	}
}

func TestFig2cGreedySelection(t *testing.T) {
	// AS 0 (X) is a customer of 1, 2, 3; destination 4 is a customer of
	// 1, 2, 3. X's default is via 1; alternatives via 2 and 3. The link
	// X->3 has more spare capacity, so the daemon must pick 3 even though
	// 2 wins the route-preference tie-break.
	b := topo.NewBuilder(5)
	b.AddPC(1, 0).AddPC(2, 0).AddPC(3, 0)
	b.AddPC(1, 4).AddPC(2, 4).AddPC(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Expand AS 0 to one router per link, full-mesh iBGP — the Fig. 2(c)
	// situation where alternatives live on different border routers.
	d := NewDeployment(g, Config{ExpandASes: []int{0}})
	if got := len(d.Routers(0)); got != 3 {
		t.Fatalf("AS 0 routers = %d, want 3", got)
	}
	table := bgp.Compute(g, 4)
	if table.NextHop(0) != 1 {
		t.Fatalf("default next hop = %d, want 1", table.NextHop(0))
	}
	d.InstallDestination(table)

	// Spare: X->2 has 10 Mbps left, X->3 has 100 Mbps left.
	if err := d.SetLinkLoad(0, 2, 1e9-10e6); err != nil {
		t.Fatal(err)
	}
	if err := d.SetLinkLoad(0, 3, 1e9-100e6); err != nil {
		t.Fatal(err)
	}
	sel, ok := d.Daemon(0).SelectAlternative(table)
	if !ok {
		t.Fatal("no alternative selected")
	}
	if sel.Alt.Via != 3 {
		t.Errorf("selected via %d, want 3 (most spare capacity)", sel.Alt.Via)
	}
	if sel.SpareBps != 100e6 {
		t.Errorf("spare = %v, want 100e6", sel.SpareBps)
	}

	// Install and verify the FIBs: the owner router points at its eBGP
	// port, siblings at their iBGP port towards the owner.
	d.Refresh()
	owner := d.Net.Router(sel.Router)
	e, ok := owner.FIB.Lookup(4)
	if !ok || e.Alt != sel.Port {
		t.Errorf("owner alt = %+v, want eBGP port %d", e, sel.Port)
	}
	for _, r := range d.Routers(0) {
		if r.ID == sel.Router {
			continue
		}
		e, ok := r.FIB.Lookup(4)
		if !ok || e.Alt < 0 || r.Ports[e.Alt].Kind != dataplane.IBGP || e.AltVia != sel.Router {
			t.Errorf("sibling %d alt = %+v, want iBGP towards owner %d", r.ID, e, sel.Router)
		}
	}

	// Tie-break check: with equal spare everywhere the daemon falls back
	// to route preference (lowest neighbor).
	d.ResetLoads()
	sel, ok = d.Daemon(0).SelectAlternative(table)
	if !ok || sel.Alt.Via != 2 {
		t.Errorf("equal spare: selected %d, want 2 (route-preference tie-break)", sel.Alt.Via)
	}
}

func TestEncapDeflectionAcrossIBGP(t *testing.T) {
	// Same topology as Fig. 2(c)/2(b): congest AS 0's default egress; a
	// packet from AS 0 must be encapsulated at the default egress router,
	// handed to the alternative's owner over iBGP, and exit there.
	b := topo.NewBuilder(5)
	b.AddPC(1, 0).AddPC(2, 0).AddPC(3, 0)
	b.AddPC(1, 4).AddPC(2, 4).AddPC(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeployment(g, Config{ExpandASes: []int{0}})
	table := bgp.Compute(g, 4)
	d.InstallDestination(table)
	if err := d.SetLinkLoad(0, 1, 1e9); err != nil { // congest default egress link
		t.Fatal(err)
	}
	d.Refresh()

	// Send from the *default egress* router so the deflection must cross iBGP.
	egressR, _, err := d.EgressPort(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := &dataplane.Packet{Flow: dataplane.FlowKey{SrcAddr: 5, DstAddr: 4}, Dst: 4}
	res := d.Net.Send(p, egressR.ID)
	if res.Verdict != dataplane.VerdictDeliver {
		t.Fatalf("verdict = %v/%v", res.Verdict, res.Reason)
	}
	asPath := res.ASPath(d.Net)
	if asPath[len(asPath)-1] != 4 || asPath[1] == 1 {
		t.Errorf("AS path = %v, want deflection away from AS 1", asPath)
	}
	if res.Deflections == 0 {
		t.Error("expected at least one deflection")
	}
}

func TestLegacyASNeverDeflects(t *testing.T) {
	g := fig2aGraph(t)
	capable := []bool{false, false, false, false}
	d := NewDeployment(g, Config{Capable: capable})
	table := bgp.Compute(g, 0)
	d.InstallDestination(table)
	d.SetLinkLoad(1, 0, 1e9)
	d.Refresh()
	res := d.Send(dataplane.FlowKey{SrcAddr: 1, DstAddr: 0}, 1, 0)
	if res.Verdict != dataplane.VerdictDeliver || res.Deflections != 0 {
		t.Fatalf("legacy deployment deflected: %v, %d deflections", res.Verdict, res.Deflections)
	}
	if d.Daemon(1) != nil {
		t.Error("legacy AS should have no daemon")
	}
}

func TestUnreachableGetsNoFIBEntry(t *testing.T) {
	// Disconnected component: AS 3 has no route to 0.
	b := topo.NewBuilder(4)
	b.AddPC(1, 0).AddPC(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeployment(g, Config{})
	d.InstallDestination(bgp.Compute(g, 0))
	res := d.Send(dataplane.FlowKey{SrcAddr: 3, DstAddr: 0}, 3, 0)
	if res.Verdict != dataplane.VerdictDrop || res.Reason != dataplane.DropNoRoute {
		t.Fatalf("verdict = %v/%v, want no-route drop", res.Verdict, res.Reason)
	}
}

// The paper's theorem, exercised end to end: on random Internet-like
// topologies with arbitrary congestion and full MIFO deployment, no packet
// ever loops (TTL drops are loops by construction).
func TestLoopFreedomUnderRandomCongestion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		g, err := topo.Generate(topo.GenConfig{N: 120, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		d := NewDeployment(g, Config{})
		dsts := []int{0, g.N() / 2, g.N() - 1}
		for _, dst := range dsts {
			d.InstallDestination(bgp.Compute(g, dst))
		}
		// Congest a random third of all directional links.
		for v := 0; v < g.N(); v++ {
			for _, nb := range g.Neighbors(v) {
				if rng.Intn(3) == 0 {
					d.SetLinkLoad(v, int(nb.AS), 1e9)
				}
			}
		}
		d.Refresh()
		delivered, vfDrops := 0, 0
		for _, dst := range dsts {
			for src := 0; src < g.N(); src++ {
				if src == dst {
					continue
				}
				res := d.Send(dataplane.FlowKey{SrcAddr: uint32(src), DstAddr: uint32(dst), SrcPort: uint16(trial)}, src, dst)
				switch {
				case res.Verdict == dataplane.VerdictDeliver:
					delivered++
				case res.Reason == dataplane.DropValleyFree:
					vfDrops++
				case res.Reason == dataplane.DropTTL:
					t.Fatalf("trial %d: LOOP src=%d dst=%d hops=%v", trial, src, dst, res.Hops)
				default:
					t.Fatalf("trial %d: unexpected %v/%v src=%d dst=%d", trial, res.Verdict, res.Reason, src, dst)
				}
			}
		}
		if delivered == 0 {
			t.Fatal("nothing delivered — setup broken")
		}
	}
}

// Same property under partial deployment: legacy ASes forward on default
// routes, capable ASes deflect; still no loops.
func TestLoopFreedomPartialDeployment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := topo.Generate(topo.GenConfig{N: 150, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	capable := make([]bool, g.N())
	for v := range capable {
		capable[v] = rng.Intn(2) == 0
	}
	d := NewDeployment(g, Config{Capable: capable})
	dst := 3
	d.InstallDestination(bgp.Compute(g, dst))
	for v := 0; v < g.N(); v++ {
		for _, nb := range g.Neighbors(v) {
			if rng.Intn(2) == 0 {
				d.SetLinkLoad(v, int(nb.AS), 1e9)
			}
		}
	}
	d.Refresh()
	for src := 0; src < g.N(); src++ {
		if src == dst {
			continue
		}
		res := d.Send(dataplane.FlowKey{SrcAddr: uint32(src), DstAddr: uint32(dst)}, src, dst)
		if res.Verdict == dataplane.VerdictDrop && res.Reason == dataplane.DropTTL {
			t.Fatalf("LOOP with partial deployment: src=%d", src)
		}
	}
}

// Ablation: with the tag-check disabled, the Fig. 2(a) pressure pattern
// loops — demonstrating the check is what provides loop freedom.
func TestTagCheckAblationLoops(t *testing.T) {
	g := fig2aGraph(t)
	d := NewDeployment(g, Config{})
	d.InstallDestination(bgp.Compute(g, 0))
	for as := 1; as <= 3; as++ {
		d.SetLinkLoad(as, 0, 1e9)
	}
	d.Refresh()
	for _, r := range d.Net.Routers {
		r.DisableTagCheck = true
	}
	sawLoop := false
	for src := 1; src <= 3; src++ {
		res := d.Send(dataplane.FlowKey{SrcAddr: uint32(src), DstAddr: 0}, src, 0)
		if res.Verdict == dataplane.VerdictDrop && res.Reason == dataplane.DropTTL {
			sawLoop = true
		}
	}
	if !sawLoop {
		t.Error("expected a data-plane loop with the tag-check disabled")
	}
}

func TestRefreshClearsAltWhenNoAlternative(t *testing.T) {
	// Chain 2 -> 1 -> 0: AS 2 has exactly one route to 0, no alternatives.
	b := topo.NewBuilder(3)
	b.AddPC(1, 0).AddPC(2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := NewDeployment(g, Config{})
	table := bgp.Compute(g, 0)
	d.InstallDestination(table)
	d.Refresh()
	r := d.Routers(2)[0]
	e, ok := r.FIB.Lookup(0)
	if !ok || e.Alt != -1 {
		t.Errorf("entry = %+v, want no alternative", e)
	}
	if _, ok := d.Daemon(2).SelectAlternative(table); ok {
		t.Error("SelectAlternative should report no alternative")
	}
}

func BenchmarkDeploymentBuild(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 500, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewDeployment(g, Config{})
	}
}

func BenchmarkRefresh(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 500, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	d := NewDeployment(g, Config{})
	d.InstallDestination(bgp.Compute(g, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Refresh()
	}
}
