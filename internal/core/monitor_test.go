package core

import (
	"math"
	"testing"

	"repro/internal/obs"
)

func TestMeterConvergesToSteadyRate(t *testing.T) {
	m := NewMeter(0.5)
	// 1 Mbit every 10 ms = 100 Mbit/s steady.
	now := 0.0
	for i := 0; i < 500; i++ {
		now += 0.01
		m.Observe(1e6, now)
	}
	got := m.Rate(now)
	if math.Abs(got-1e8) > 5e6 {
		t.Errorf("steady rate = %v, want ~1e8", got)
	}
}

func TestMeterDecaysWhenIdle(t *testing.T) {
	m := NewMeter(0.25)
	now := 0.0
	for i := 0; i < 200; i++ {
		now += 0.01
		m.Observe(1e6, now)
	}
	busy := m.Rate(now)
	idleHalf := m.Rate(now + 0.25)
	idleLong := m.Rate(now + 5)
	if math.Abs(idleHalf-busy/2) > busy/10 {
		t.Errorf("after one half-life rate = %v, want ~%v", idleHalf, busy/2)
	}
	if idleLong > busy/100 {
		t.Errorf("after 20 half-lives rate = %v, want near zero", idleLong)
	}
}

func TestMeterTracksRateChanges(t *testing.T) {
	m := NewMeter(0.2)
	now := 0.0
	for i := 0; i < 300; i++ {
		now += 0.01
		m.Observe(1e6, now) // 100 Mbit/s
	}
	for i := 0; i < 300; i++ {
		now += 0.01
		m.Observe(5e6, now) // 500 Mbit/s
	}
	if got := m.Rate(now); math.Abs(got-5e8) > 5e7 {
		t.Errorf("after rate change = %v, want ~5e8", got)
	}
}

// TestMeterSameInstantBitsKeepUnits is the regression test for a units bug:
// bits observed at the same instant as the previous observation used to be
// added raw into the bits-per-second EWMA (bits into a rate), inflating the
// estimate by orders of magnitude. They must instead be held pending and
// divided by the next real interval — so a stream delivered in same-instant
// chunks reads the same rate as one delivered whole.
func TestMeterSameInstantBitsKeepUnits(t *testing.T) {
	split := NewMeter(0.5)
	whole := NewMeter(0.5)
	now := 0.0
	for i := 0; i < 500; i++ {
		now += 0.01
		// 1 Mbit per 10 ms = 100 Mbit/s, delivered as four chunks that
		// share a timestamp (a burst draining in one poll).
		for j := 0; j < 4; j++ {
			split.Observe(2.5e5, now)
		}
		whole.Observe(1e6, now)
	}
	s, w := split.Rate(now), whole.Rate(now)
	if math.Abs(s-1e8) > 5e6 {
		t.Errorf("chunked stream rate = %v, want ~1e8 bps", s)
	}
	if math.Abs(s-w) > 1e6 {
		t.Errorf("chunked rate %v diverges from whole-observation rate %v", s, w)
	}
}

func TestMeterBindMirrorsGauge(t *testing.T) {
	g := obs.NewRegistry().Gauge("test_rate_bps", "test")
	m := NewMeter(0.5)
	m.Bind(g)
	now := 0.0
	for i := 0; i < 50; i++ {
		now += 0.01
		m.Observe(1e6, now)
	}
	if got, want := g.Value(), m.Rate(now); got != want {
		t.Errorf("bound gauge = %v, meter rate = %v", got, want)
	}
	m.Bind(nil)
	before := g.Value()
	m.Observe(1e6, now+0.01)
	if g.Value() != before {
		t.Error("unbound gauge still updated")
	}
}

func TestMeterEdgeCases(t *testing.T) {
	m := NewMeter(0)
	if m.Rate(0) != 0 {
		t.Error("fresh meter should read 0")
	}
	m.Observe(1e6, 1)
	// First observation only sets the clock.
	if m.Rate(1) != 0 {
		t.Errorf("rate after first observation = %v, want 0", m.Rate(1))
	}
	// Same-instant observations accumulate instead of dividing by zero.
	m.Observe(1e6, 2)
	m.Observe(1e6, 2)
	if r := m.Rate(2); math.IsNaN(r) || math.IsInf(r, 0) {
		t.Fatalf("degenerate rate %v", r)
	}
}
