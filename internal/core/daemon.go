package core

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/bgp"
	"repro/internal/dataplane"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
)

// Daemon is one AS's MIFO daemon. In the paper's prototype this is a XORP
// module per border router; here one daemon manages all border routers of
// an AS, which models the iBGP measurement exchange (each pair of border
// routers is an iBGP peer and shares link measurements over the existing
// TCP session, Section III-C).
type Daemon struct {
	dep *Deployment
	as  int
	// rib is the scratch buffer RIB mining reuses across the destinations of
	// one control epoch (see bgp.RIBInto). It makes RefreshAll and
	// RefreshDestination unsafe to call concurrently on the same daemon; the
	// Runtime gives each daemon exactly one goroutine, and the read-only
	// SelectAlternative does not touch it.
	rib []bgp.Alt
	// tsSpare holds the AS's materialized spare-capacity series keyed by
	// the neighbor the egress link leads to. Owned by the daemon's
	// goroutine, like rib (see Deployment.AttachTSDB).
	tsSpare map[int32]*tsdb.Series
}

func newDaemon(dep *Deployment, as int) *Daemon {
	return &Daemon{dep: dep, as: as}
}

// AS returns the AS this daemon serves.
func (dm *Daemon) AS() int { return dm.as }

// Selection is the daemon's choice of alternative path for one destination.
type Selection struct {
	// Alt is the chosen RIB alternative.
	Alt bgp.Alt
	// Router owns the eBGP port to Alt.Via.
	Router dataplane.RouterID
	// Port is that eBGP port's index.
	Port int
	// SpareBps is the measured spare capacity of the local link — the
	// greedy proxy for path available bandwidth.
	SpareBps float64
}

// SelectAlternative implements Section III-C's greedy choice: among the
// RIB's alternatives (every entry except the default route), pick the one
// whose directly connected inter-AS link has the most spare capacity; ties
// fall back to standard route preference. ok is false when the RIB offers
// no alternative.
func (dm *Daemon) SelectAlternative(t *bgp.Dest) (sel Selection, ok bool) {
	sel, ok, _ = dm.selectInto(t, nil)
	return sel, ok
}

// selectInto is SelectAlternative with a caller-provided RIB scratch buffer
// (built in buf[:0], returned for reuse). The refresh path threads one
// buffer through a whole control epoch so per-destination selection does
// not allocate.
func (dm *Daemon) selectInto(t *bgp.Dest, buf []bgp.Alt) (sel Selection, ok bool, out []bgp.Alt) {
	if dm.as == t.Dst() || !t.Reachable(dm.as) {
		return Selection{}, false, buf
	}
	def := int32(t.NextHop(dm.as))
	buf = bgp.RIBInto(dm.dep.Graph, t, dm.as, buf)
	for _, alt := range buf {
		if alt.Via == def {
			continue // the default route is not an alternative
		}
		ref, exists := dm.dep.egress[dm.as][alt.Via]
		if !exists {
			continue
		}
		r := dm.dep.Net.Router(ref.router)
		spare := r.SpareCapacity(ref.port)
		cand := Selection{Alt: alt, Router: ref.router, Port: ref.port, SpareBps: spare}
		if !ok || better(cand, sel) {
			sel, ok = cand, true
		}
	}
	return sel, ok, buf
}

func better(a, b Selection) bool {
	if !almostEqual(a.SpareBps, b.SpareBps) {
		return a.SpareBps > b.SpareBps
	}
	return a.Alt.Better(b.Alt)
}

// RefreshAll runs one control epoch: it re-selects the alternative for
// every given destination and publishes the results as exactly one FIB
// commit per border router of the AS. The forwarding engine therefore sees
// either the whole previous epoch or the whole new one — never a half-
// updated mix — and the per-commit map/trie copy is amortized over every
// destination instead of paid per entry.
func (dm *Daemon) RefreshAll(tables []*bgp.Dest) {
	dm.RefreshAllCtx(tables, span.Context{})
}

// RefreshAllCtx is RefreshAll with a causal parent: the whole epoch is
// traced as one daemon_epoch span, with one fib_commit child per border
// router that actually changed (and a fib_swap grandchild under each at
// the publication instant).
func (dm *Daemon) RefreshAllCtx(tables []*bgp.Dest, parent span.Context) {
	dep := dm.dep
	rs := dep.routersOf[dm.as]
	start := time.Now()
	ep := dep.spans.Start("daemon_epoch", parent, int32(dm.as))
	ep.A = int64(len(tables))
	txs := make([]fibTx, len(rs))
	for i, id := range rs {
		txs[i] = beginFIB(dep.Net.Router(id), ep.Context())
	}
	for _, t := range tables {
		dm.refreshInto(txs, t)
	}
	for i, id := range rs {
		gen := dep.commitTx(txs[i], id, ep.Context())
		if dep.fibGen != nil {
			dep.fibGen.With(strconv.Itoa(int(id))).Set(float64(gen))
		}
	}
	dm.sampleSpare()
	ep.End()
	if dep.fibCommit != nil {
		dep.fibCommit.Observe(time.Since(start).Seconds())
	}
}

// RefreshDestination re-selects the alternative for one destination and
// rewrites the alt port on every border router of the AS: the router owning
// the chosen link points its alt at the eBGP port; every sibling points its
// alt at the iBGP port towards that owner (packets will be IP-in-IP
// encapsulated to it). It is a control epoch of one destination; use
// RefreshAll to batch.
func (dm *Daemon) RefreshDestination(t *bgp.Dest) {
	dm.RefreshAll([]*bgp.Dest{t})
}

// refreshInto stages one destination's alt re-selection into the epoch's
// per-router transactions (txs parallel to routersOf[dm.as]).
func (dm *Daemon) refreshInto(txs []fibTx, t *bgp.Dest) {
	dst := int32(t.Dst())
	var sel Selection
	var ok bool
	sel, ok, dm.rib = dm.selectInto(t, dm.rib)
	rs := dm.dep.routersOf[dm.as]
	if !ok {
		for i := range rs {
			txs[i].setAlt(dst, -1, -1)
		}
		dm.traceUpdate(dst, Selection{Port: -1}, false)
		return
	}
	for i, id := range rs {
		if id == sel.Router {
			r := dm.dep.Net.Router(id)
			txs[i].setAlt(dst, sel.Port, r.Ports[sel.Port].Peer)
		} else {
			txs[i].setAlt(dst, dm.dep.ibgp[id][sel.Router], sel.Router)
		}
	}
	dm.noteSelection(sel)
	dm.traceUpdate(dst, sel, true)
}

// noteSelection materializes the spare-capacity series for a chosen
// egress link on first selection.
func (dm *Daemon) noteSelection(sel Selection) {
	if dm.dep.tsSpareVec == nil {
		return
	}
	if _, have := dm.tsSpare[sel.Alt.Via]; have {
		return
	}
	if dm.tsSpare == nil {
		dm.tsSpare = make(map[int32]*tsdb.Series)
	}
	dm.tsSpare[sel.Alt.Via] = dm.dep.tsSpareVec.With(strconv.Itoa(dm.as), strconv.Itoa(int(sel.Alt.Via)))
}

// sampleSpare records, once per epoch, the current spare capacity of
// every egress link this AS has ever selected an alternative through.
func (dm *Daemon) sampleSpare() {
	if len(dm.tsSpare) == 0 {
		return
	}
	ts := time.Now().UnixNano()
	for via, ser := range dm.tsSpare {
		ref := dm.dep.egress[dm.as][via]
		ser.Sample(ts, dm.dep.Net.Router(ref.router).SpareCapacity(ref.port))
	}
}

// traceUpdate emits the FIB-update audit event for one destination
// refresh when the deployment carries an enabled trace.
func (dm *Daemon) traceUpdate(dst int32, sel Selection, chose bool) {
	if !dm.dep.Trace.Enabled() {
		return
	}
	e := obs.Event{
		Time: time.Now().UnixNano(), Type: obs.EvFIBUpdate,
		Node: int32(dm.as), A: int64(dst), B: int64(sel.Port),
	}
	if chose {
		e.V = sel.SpareBps
		e.Note = fmt.Sprintf("alt via AS %d (router %d port %d, spare %.0f bps)",
			sel.Alt.Via, sel.Router, sel.Port, sel.SpareBps)
	} else {
		e.Note = "no alternative in RIB"
	}
	dm.dep.Trace.Emit(e)
}
