// Package core implements MIFO's control side: the per-AS MIFO daemon the
// paper prototypes as a XORP module, and a Deployment that assembles a
// whole multi-AS router network (data plane included) from an AS-level
// topology and BGP routing tables.
//
// The daemon does three things, mirroring Section III and Fig. 10:
//
//  1. It mines the local BGP RIB for alternative paths — no protocol
//     changes, no extra messages (Section II-B).
//  2. It monitors the spare capacity of directly connected inter-AS links
//     — the paper's greedy substitute for end-to-end path measurement
//     (Section III-C) — and shares the measurements among the AS's border
//     routers (the iBGP measurement exchange).
//  3. It installs/updates the 'alt' port of the data-plane FIB so the
//     forwarding engine can deflect packets at line speed.
package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/bgp"
	"repro/internal/dataplane"
	"repro/internal/lpm"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
	"repro/internal/topo"
)

// Config parameterizes a Deployment.
type Config struct {
	// LinkCapacityBps is the capacity of every inter-AS link.
	// Default 1 Gbps, as in the paper's simulations.
	LinkCapacityBps float64
	// Capable marks MIFO-capable ASes; nil means full deployment.
	Capable []bool
	// ExpandASes lists ASes expanded to router level: one border router
	// per inter-AS link, full-mesh iBGP (the paper does this for tier-1
	// ASes in Section IV). All other ASes get a single border router.
	ExpandASes []int
	// CongestionThreshold overrides the routers' queue-ratio threshold
	// when > 0.
	CongestionThreshold float64
	// UsePrefixFIB programs routers with longest-prefix-match tables
	// (internal/lpm) instead of dense identifier maps: destination d is
	// installed as the prefix PrefixAddr(d)/32, the representation the
	// paper's kernel fib_table uses.
	UsePrefixFIB bool
}

// Deployment is a fully wired MIFO network: the AS graph, the router-level
// data plane, and one daemon per AS.
type Deployment struct {
	Graph *topo.Graph
	Net   *dataplane.Network
	// Trace, when non-nil and enabled, receives an EvFIBUpdate event each
	// time a daemon re-selects a destination's alternative — the audit
	// trail of the control loop's choices.
	Trace *obs.Trace
	cfg   Config

	// routersOf[v] lists the border routers of AS v.
	routersOf [][]dataplane.RouterID
	// egress[v][u] locates AS v's eBGP attachment towards neighbor AS u.
	egress []map[int32]portRef
	// ibgp[r][s] is the iBGP port on router r facing sibling router s.
	ibgp map[dataplane.RouterID]map[dataplane.RouterID]int

	daemons []*Daemon // indexed by AS; nil for non-capable ASes
	// tables holds the installed per-destination routing tables, guarded
	// for concurrent access by the Runtime's daemon goroutines.
	tablesMu sync.RWMutex
	tables   *bgp.Table

	// FIB publication metrics, nil unless Instrument was called.
	fibCommit *obs.Histogram
	fibGen    *obs.GaugeVec

	// spans, when non-nil, traces the control pipeline: daemon_epoch and
	// fib_commit spans from here, fib_swap spans from the routers' FIBs
	// (SetTracer wires those through).
	spans *span.Tracer

	// tsSpareVec, when non-nil, is the per-egress spare-capacity series
	// family sampled once per daemon epoch (see AttachTSDB).
	tsSpareVec *tsdb.SeriesVec
}

// AttachTSDB registers the spare-capacity time-series family: each
// daemon samples, once per control epoch, the measured spare capacity
// of every egress link that has ever carried its selected alternative.
// Series are labeled (as, via) and materialized lazily at first
// selection, so only links the control loop actually chose are stored.
// Each daemon is the single writer for its own AS's series (the
// Runtime gives every daemon one goroutine), which satisfies the tsdb
// sample-path contract. Call before daemons start refreshing.
func (d *Deployment) AttachTSDB(db *tsdb.Store) {
	if db == nil {
		d.tsSpareVec = nil
		return
	}
	d.tsSpareVec = db.SeriesVec("core_spare_capacity_bps",
		"measured spare capacity of egress links chosen as alternatives, sampled per daemon epoch", "as", "via")
}

// SetTracer attaches a span tracer to the deployment's control pipeline
// and to every router's map FIB, so control epochs, per-router FIB
// commits, and data-plane generation swaps emit causally linked spans.
// (Prefix-FIB routers trace down to fib_commit; the trie's swap is not
// separately instrumented.) Pass the parent context per call via
// RefreshAllCtx / InstallDestinationsCtx.
func (d *Deployment) SetTracer(tr *span.Tracer) {
	d.spans = tr
	for _, r := range d.Net.Routers {
		if r.FIB != nil {
			r.FIB.SetTracer(tr, int32(r.ID))
		}
	}
}

type portRef struct {
	router dataplane.RouterID
	port   int
}

// NewDeployment builds the router network for graph g: routers, eBGP links
// with relationships and capacities, iBGP full meshes for expanded ASes,
// and a MIFO daemon on every capable AS. Non-capable ASes run legacy
// routers (forwarding engine present, MIFO disabled).
func NewDeployment(g *topo.Graph, cfg Config) *Deployment {
	if cfg.LinkCapacityBps <= 0 {
		cfg.LinkCapacityBps = 1e9
	}
	d := &Deployment{
		Graph:     g,
		Net:       dataplane.NewNetwork(),
		cfg:       cfg,
		routersOf: make([][]dataplane.RouterID, g.N()),
		egress:    make([]map[int32]portRef, g.N()),
		daemons:   make([]*Daemon, g.N()),
		ibgp:      make(map[dataplane.RouterID]map[dataplane.RouterID]int),
		tables:    bgp.NewEmptyTable(g, 0),
	}
	expanded := make([]bool, g.N())
	for _, v := range cfg.ExpandASes {
		expanded[v] = true
	}
	capable := func(v int) bool { return cfg.Capable == nil || cfg.Capable[v] }

	// Create routers: one per inter-AS link for expanded ASes, one otherwise.
	for v := 0; v < g.N(); v++ {
		count := 1
		if expanded[v] && g.Degree(v) > 1 {
			count = g.Degree(v)
		}
		for i := 0; i < count; i++ {
			r := d.Net.AddRouter(int32(v))
			r.MIFOEnabled = capable(v)
			if cfg.CongestionThreshold > 0 {
				r.CongestionThreshold = cfg.CongestionThreshold
			}
			if cfg.UsePrefixFIB {
				r.PrefixFIB = lpm.New[dataplane.FIBEntry]()
			}
			d.routersOf[v] = append(d.routersOf[v], r.ID)
		}
		d.egress[v] = make(map[int32]portRef, g.Degree(v))
	}

	// eBGP links. Expanded ASes dedicate one router per link, assigned in
	// neighbor order.
	next := make([]int, g.N()) // next unused router slot for expanded ASes
	slot := func(v int) dataplane.RouterID {
		rs := d.routersOf[v]
		if len(rs) == 1 {
			return rs[0]
		}
		id := rs[next[v]%len(rs)]
		next[v]++
		return id
	}
	for v := 0; v < g.N(); v++ {
		for _, nb := range g.Neighbors(v) {
			u := int(nb.AS)
			if u < v {
				continue // each undirected link wired once
			}
			rv, ru := slot(v), slot(u)
			pv, pu := d.Net.Connect(rv, ru, dataplane.EBGP, nb.Rel, cfg.LinkCapacityBps)
			d.egress[v][nb.AS] = portRef{router: rv, port: pv}
			d.egress[u][int32(v)] = portRef{router: ru, port: pu}
		}
	}

	// iBGP full meshes.
	for v := 0; v < g.N(); v++ {
		rs := d.routersOf[v]
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				pi, pj := d.Net.Connect(rs[i], rs[j], dataplane.IBGP, topo.Peer, 10*cfg.LinkCapacityBps)
				d.ibgpSet(rs[i], rs[j], pi)
				d.ibgpSet(rs[j], rs[i], pj)
			}
		}
	}

	// Daemons on capable ASes.
	for v := 0; v < g.N(); v++ {
		if capable(v) {
			d.daemons[v] = newDaemon(d, v)
		}
	}
	return d
}

func (d *Deployment) ibgpSet(r, sibling dataplane.RouterID, port int) {
	m := d.ibgp[r]
	if m == nil {
		m = make(map[dataplane.RouterID]int)
		d.ibgp[r] = m
	}
	m[sibling] = port
}

// Routers returns the border routers of AS v.
func (d *Deployment) Routers(v int) []*dataplane.Router {
	out := make([]*dataplane.Router, len(d.routersOf[v]))
	for i, id := range d.routersOf[v] {
		out[i] = d.Net.Router(id)
	}
	return out
}

// Daemon returns AS v's MIFO daemon, or nil when v is legacy.
func (d *Deployment) Daemon(v int) *Daemon { return d.daemons[v] }

// EgressPort locates AS v's attachment towards neighbor u.
func (d *Deployment) EgressPort(v, u int) (*dataplane.Router, int, error) {
	ref, ok := d.egress[v][int32(u)]
	if !ok {
		return nil, 0, fmt.Errorf("core: AS %d has no link to AS %d", v, u)
	}
	return d.Net.Router(ref.router), ref.port, nil
}

// InstallDestination programs every router's FIB with the default route for
// table t's destination and records the table for later daemon refreshes.
// Routers of the destination AS deliver locally. ASes without a route get
// no entry (their packets drop as no-route, matching an empty BGP table).
func (d *Deployment) InstallDestination(t *bgp.Dest) {
	d.InstallDestinations([]*bgp.Dest{t})
}

// InstallDestinations programs a batch of destinations with one FIB commit
// per router: N destinations cost each router one staged generation instead
// of N, which keeps bulk installation linear in table size.
func (d *Deployment) InstallDestinations(ts []*bgp.Dest) {
	d.InstallDestinationsCtx(ts, span.Context{})
}

// InstallDestinationsCtx is InstallDestinations with a causal parent:
// each router's FIB commit (and the generation swap below it) is traced
// as a child of parent.
func (d *Deployment) InstallDestinationsCtx(ts []*bgp.Dest, parent span.Context) {
	d.tablesMu.Lock()
	for _, t := range ts {
		d.tables.Install(t)
	}
	d.tablesMu.Unlock()
	txs := make([]fibTx, len(d.Net.Routers))
	for i, r := range d.Net.Routers {
		txs[i] = beginFIB(r, parent)
	}
	for _, t := range ts {
		dst := int32(t.Dst())
		for _, id := range d.routersOf[t.Dst()] {
			d.Net.Router(id).Local[dst] = true
		}
		for v := 0; v < d.Graph.N(); v++ {
			if v == t.Dst() {
				continue
			}
			if !t.Reachable(v) {
				// Withdrawn (or never-offered) route: the AS keeps no entry,
				// so its packets drop as no-route instead of following a
				// stale entry from an earlier install into a black hole.
				for _, id := range d.routersOf[v] {
					txs[id].del(dst)
				}
				continue
			}
			ref := d.egress[v][int32(t.NextHop(v))]
			for _, id := range d.routersOf[v] {
				if id == ref.router {
					txs[id].set(dst, dataplane.FIBEntry{Out: ref.port, Alt: -1, AltVia: -1})
				} else {
					txs[id].set(dst, dataplane.FIBEntry{
						Out: d.ibgp[id][ref.router], Alt: -1, AltVia: ref.router,
					})
				}
			}
		}
	}
	for i, tx := range txs {
		d.commitTx(tx, dataplane.RouterID(i), parent)
	}
}

// fibTx stages updates against whichever FIB representation a router runs —
// the dense identifier map or the longest-prefix-match trie — behind one
// transactional surface, so the daemon's epoch batching does not care which
// one the deployment uses. Exactly one of the two fields is non-nil.
type fibTx struct {
	fib *dataplane.FIBTx
	px  *lpm.Txn[dataplane.FIBEntry]
}

// beginFIB opens a transaction on r's FIB, parenting its eventual
// fib_swap span under parent. The transaction holds the router's writer
// lock until commit; forwarding lookups stay wait-free on the published
// generation throughout.
func beginFIB(r *dataplane.Router, parent span.Context) fibTx {
	if r.PrefixFIB != nil {
		return fibTx{px: r.PrefixFIB.Begin()}
	}
	tx := r.FIB.Begin()
	tx.TraceUnder(parent)
	return fibTx{fib: tx}
}

// set stages an install or replacement of the entry for dst.
func (tx fibTx) set(dst int32, e dataplane.FIBEntry) {
	if tx.px != nil {
		// Installation of a /32 cannot fail: the address has no host bits
		// beyond the mask.
		if err := tx.px.Insert(dataplane.PrefixAddr(dst), 32, e); err != nil {
			panic("core: prefix install: " + err.Error())
		}
		return
	}
	tx.fib.Set(dst, e)
}

// setAlt stages a rewrite of only the alternative of an existing entry,
// reporting whether dst had one.
func (tx fibTx) setAlt(dst int32, alt int, via dataplane.RouterID) bool {
	if tx.px != nil {
		return tx.px.Update(dataplane.PrefixAddr(dst), 32, func(e dataplane.FIBEntry) dataplane.FIBEntry {
			e.Alt = alt
			e.AltVia = via
			return e
		})
	}
	return tx.fib.SetAlt(dst, alt, via)
}

// del stages withdrawal of the entry for dst (a no-op when absent).
func (tx fibTx) del(dst int32) {
	if tx.px != nil {
		tx.px.Remove(dataplane.PrefixAddr(dst), 32)
		return
	}
	tx.fib.Delete(dst)
}

// commit publishes the staged generation and returns its id.
func (tx fibTx) commit() uint64 {
	if tx.px != nil {
		return tx.px.Commit()
	}
	return tx.fib.Commit()
}

// dirty reports whether the transaction staged an effective change.
func (tx fibTx) dirty() bool {
	if tx.px != nil {
		return tx.px.Dirty()
	}
	return tx.fib.Dirty()
}

// commitTx publishes one router's staged generation under a fib_commit
// span — the single Start site shared by epoch refreshes and bulk
// installs. Clean transactions commit without a span: nothing was
// published, so there is nothing to time.
func (d *Deployment) commitTx(tx fibTx, id dataplane.RouterID, parent span.Context) uint64 {
	if !tx.dirty() {
		return tx.commit()
	}
	sp := d.spans.Start("fib_commit", parent, int32(id))
	gen := tx.commit()
	sp.A = int64(gen)
	sp.End()
	return gen
}

// Instrument registers the deployment's FIB publication metrics on reg:
// core_fib_commit_seconds (histogram of one epoch's stage-and-publish
// latency per daemon) and core_fib_generation (gauge of each router's
// published FIB generation). Call before daemons start refreshing.
func (d *Deployment) Instrument(reg *obs.Registry) {
	d.fibCommit = reg.Histogram("core_fib_commit_seconds",
		"time for one daemon control epoch to stage and publish its routers' batched FIB updates", obs.DurationBuckets)
	d.fibGen = reg.GaugeVec("core_fib_generation",
		"published FIB generation per router; one increment per effective commit", "router")
}

// SetLinkLoad records the directional load (bits/s) on the link from AS v
// to AS u: the egress router's utilization and tx-queue ratio are updated,
// which is both the congestion signal and the daemon's measurement input.
func (d *Deployment) SetLinkLoad(v, u int, bps float64) error {
	ref, ok := d.egress[v][int32(u)]
	if !ok {
		return fmt.Errorf("core: AS %d has no link to AS %d", v, u)
	}
	r := d.Net.Router(ref.router)
	r.SetUtilization(ref.port, bps)
	ratio := bps / r.Ports[ref.port].CapacityBps
	if ratio > 1 {
		ratio = 1
	}
	r.SetQueueRatio(ref.port, ratio)
	return nil
}

// ResetLoads clears all utilization and queue signals.
func (d *Deployment) ResetLoads() {
	for _, r := range d.Net.Routers {
		for p := range r.Ports {
			r.SetUtilization(p, 0)
			r.SetQueueRatio(p, 0)
		}
	}
}

// Refresh runs every daemon's control epoch once: alternative paths are
// re-selected from the RIBs using current spare-capacity measurements and
// each router's FIB is republished in a single batched commit. Call it
// after load changes, as the periodic daemon would.
func (d *Deployment) Refresh() {
	tables := d.Tables()
	for _, dm := range d.daemons {
		if dm == nil {
			continue
		}
		dm.RefreshAll(tables)
	}
}

// Send forwards a packet from AS src towards dst through the data plane and
// reports the outcome. Flows originate at the AS's first border router.
func (d *Deployment) Send(flow dataplane.FlowKey, src, dst int) dataplane.Result {
	p := &dataplane.Packet{Flow: flow, Dst: int32(dst)}
	return d.Net.Send(p, d.routersOf[src][0])
}

// almostEqual guards float comparisons in tie-breaks.
func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}
