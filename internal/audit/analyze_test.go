package audit

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/topo"
)

// buildLog records a few journeys and returns the JSONL bytes.
func buildLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(Options{Writer: &buf})
	hook := rec.RouterHook()

	// Three delivered packets to dst 7, one of them deflected.
	for i := 0; i < 3; i++ {
		p := &dataplane.Packet{Flow: dataplane.FlowKey{SrcAddr: uint32(i), DstAddr: 7}, ID: uint16(i), Dst: 7}
		h := forwardHop(0, 1, dataplane.EBGP, topo.Provider, true)
		h.Deflected = i == 0
		hook(p, h)
		hook(p, dataplane.HopInfo{Router: 1, AS: 7, Out: -1, Verdict: dataplane.VerdictDeliver})
	}
	// One tag-dropped packet to dst 5.
	p := &dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 5}, Dst: 5}
	hook(p, forwardHop(0, 1, dataplane.EBGP, topo.Provider, true))
	hook(p, dataplane.HopInfo{
		Router: 1, AS: 2, Out: -1,
		Verdict: dataplane.VerdictDrop, Reason: dataplane.DropValleyFree,
		AltTried: true, AltRel: topo.Peer,
	})
	// One flow-path record with a known baseline, so stretch shows up.
	rec.RecordPath(PathRecord{Flow: 11, Dst: 7, BaselineLen: 2, Steps: []Step{
		{Router: -1, AS: 1, Edge: EdgeUp, Tag: true},
		{Router: -1, AS: 2, Edge: EdgeDown, Tag: true, Deflected: true},
		{Router: -1, AS: 7, Edge: EdgeNone},
	}})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSummarize(t *testing.T) {
	log := buildLog(t)
	s, err := Summarize(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if s.Records != 5 || s.PacketRecords != 4 || s.PathRecords != 1 {
		t.Fatalf("record counts: %+v", s)
	}
	if s.Verdicts[VerdictDelivered] != 3 || s.Verdicts[VerdictDropped] != 1 || s.Verdicts[VerdictPath] != 1 {
		t.Fatalf("verdicts = %v", s.Verdicts)
	}
	if s.DropReasons["valley-free"] != 1 {
		t.Fatalf("drop reasons = %v", s.DropReasons)
	}
	if s.DeflectedRecords != 2 || s.TotalDeflections != 2 {
		t.Fatalf("deflections: %d records / %d total", s.DeflectedRecords, s.TotalDeflections)
	}
	if s.TotalViolations != 0 {
		t.Fatalf("violations = %v", s.Violations)
	}
	if s.Stretch[1] != 1 || s.StretchN != 1 {
		t.Fatalf("stretch = %v (n=%d), want one +1 sample", s.Stretch, s.StretchN)
	}

	tops := s.TopPrefixes(10)
	if len(tops) != 2 || tops[0].Dst != 7 || tops[0].Records != 4 {
		t.Fatalf("top prefixes = %+v", tops)
	}
	if r := tops[0].DeflectionRate(); r != 0.5 {
		t.Fatalf("deflection rate for dst 7 = %v, want 0.5", r)
	}

	var out bytes.Buffer
	s.Format(&out, 5)
	report := out.String()
	for _, want := range []string{"5 records", "valley-free", "invariant violations: 0", "top 5 prefixes"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestFormatRecordDrillDown(t *testing.T) {
	log := buildLog(t)
	var target *Record
	if err := ReadRecords(bytes.NewReader(log), func(r Record) error {
		if r.Verdict == VerdictDropped {
			rc := r
			target = &rc
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if target == nil {
		t.Fatal("no dropped record in log")
	}
	var out bytes.Buffer
	FormatRecord(&out, *target)
	text := out.String()
	for _, want := range []string{"verdict=dropped", "valley-free", "refused=across", "AS1/r0", "tag=T"} {
		if !strings.Contains(text, want) {
			t.Fatalf("drill-down missing %q:\n%s", want, text)
		}
	}
}

func TestReadRecordsRejectsGarbage(t *testing.T) {
	err := ReadRecords(strings.NewReader("{\"seq\":1}\nnot json\n"), func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}
