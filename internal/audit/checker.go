package audit

import "fmt"

// Checker validates the per-journey invariants online, one Step at a
// time. The zero value is ready to use; Reset recycles it without
// allocating. It never panics on malformed input — garbage steps produce
// violations (or nothing), not crashes, because the checker runs inside
// recording hot paths.
type Checker struct {
	visited   []int32 // ASes entered, in order
	curAS     int32
	started   bool
	descended bool // a down or across inter-AS edge has been taken
	prevEdge  EdgeClass
	steps     int
	vs        []Violation
}

// Reset clears the checker for a new journey, keeping its allocations.
func (c *Checker) Reset() {
	c.visited = c.visited[:0]
	c.started = false
	c.descended = false
	c.prevEdge = EdgeNone
	c.steps = 0
	c.vs = c.vs[:0]
}

// Violations returns the breaches found so far. The slice is owned by the
// checker and invalidated by Reset.
func (c *Checker) Violations() []Violation { return c.vs }

// Step appends one hop and evaluates every invariant it can affect. It
// returns how many new violations the hop introduced.
func (c *Checker) Step(s Step) int {
	idx := c.steps
	c.steps++
	before := len(c.vs)

	// Loop-freedom: entering an AS we already left is a forwarding loop.
	// Consecutive steps in the same AS (iBGP hand-offs, multi-router
	// transit) are one visit.
	if !c.started || s.AS != c.curAS {
		for _, as := range c.visited {
			if as == s.AS {
				c.add(InvLoopFree, idx, fmt.Sprintf("packet re-entered AS %d", s.AS))
				break
			}
		}
		c.visited = append(c.visited, s.AS)
		c.curAS = s.AS
		c.started = true
	}

	// Encap arrival side: an encapsulated packet may only come over an
	// iBGP link, i.e. the previous step of this journey handed it off
	// internally.
	if s.EncapArrival && (idx == 0 || c.prevEdge != EdgeInternal) {
		c.add(InvEncapIBGP, idx, fmt.Sprintf("AS %d received an encapsulated packet over a non-iBGP link", s.AS))
	}

	// Valley-freedom, both formulations. The sequence form is the
	// theorem's statement (up* [across] down*); the tag form is Eq. 3
	// applied at every hop: exporting to a non-customer requires the
	// customer-entry tag. They coincide when tags are stamped honestly;
	// checking both catches a dishonest stamp too.
	switch s.Edge {
	case EdgeUp, EdgeAcross:
		if c.descended {
			c.add(InvValleyFree, idx, fmt.Sprintf("%s edge out of AS %d after the path already descended", s.Edge, s.AS))
		}
		if !s.Tag {
			c.add(InvValleyFree, idx, fmt.Sprintf("AS %d exported to a non-customer without the customer-entry tag", s.AS))
		}
		if s.Edge == EdgeAcross {
			c.descended = true // at most one peering edge, then only down
		}
	case EdgeDown:
		c.descended = true
	}

	// Encap departure side: encapsulation is the iBGP hand-off mechanism;
	// sending an encapsulated packet anywhere else leaks the outer header
	// across an AS boundary.
	if s.Encap && s.Edge != EdgeInternal {
		c.add(InvEncapIBGP, idx, fmt.Sprintf("AS %d sent an encapsulated packet over a %s edge", s.AS, s.Edge))
	}

	// Tag-drop justification: a valley-free drop (Refused set) must mean
	// the tag-check really failed — tag clear, refused egress a
	// non-customer. Anything else is a packet wrongly discarded.
	if s.Refused != EdgeNone {
		switch {
		case s.Tag:
			c.add(InvTagDrop, idx, fmt.Sprintf("AS %d tag-dropped a packet whose tag bit was set", s.AS))
		case s.Refused == EdgeDown:
			c.add(InvTagDrop, idx, fmt.Sprintf("AS %d tag-dropped a packet bound for a customer egress", s.AS))
		case s.Refused == EdgeInternal:
			c.add(InvTagDrop, idx, fmt.Sprintf("AS %d tag-dropped instead of encapsulating to an iBGP peer", s.AS))
		}
	}

	c.prevEdge = s.Edge
	return len(c.vs) - before
}

func (c *Checker) add(inv Invariant, step int, detail string) {
	c.vs = append(c.vs, Violation{Invariant: inv, Step: step, Detail: detail})
}
