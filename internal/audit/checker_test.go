package audit

import "testing"

// step builders keep the tables readable.
func hop(as int32, edge EdgeClass, tag bool) Step {
	return Step{Router: -1, AS: as, Edge: edge, Tag: tag}
}

func TestCheckerTable(t *testing.T) {
	cases := []struct {
		name  string
		steps []Step
		want  []Invariant // expected violations, in detection order
	}{
		{
			name: "clean up-across-down path",
			steps: []Step{
				hop(1, EdgeUp, true),     // stub origin to provider
				hop(2, EdgeAcross, true), // entered from customer: may peer
				hop(3, EdgeDown, false),  // entered from peer: down only
				hop(4, EdgeNone, false),  // delivered
			},
		},
		{
			name: "clean multi-router transit within one AS",
			steps: []Step{
				hop(1, EdgeUp, true),
				{Router: 10, AS: 2, Edge: EdgeInternal, Tag: true, Encap: true, Deflected: true},
				{Router: 11, AS: 2, Edge: EdgeDown, Tag: true, EncapArrival: true},
				hop(3, EdgeNone, false),
			},
		},
		{
			name: "AS revisit is a loop",
			steps: []Step{
				hop(1, EdgeUp, true),
				hop(2, EdgeDown, false),
				hop(1, EdgeDown, false), // back to AS 1: loop
			},
			want: []Invariant{InvLoopFree},
		},
		{
			name: "consecutive same-AS steps are one visit",
			steps: []Step{
				hop(1, EdgeUp, true),
				{Router: 5, AS: 2, Edge: EdgeInternal, Tag: true},
				{Router: 6, AS: 2, Edge: EdgeDown, Tag: true},
			},
		},
		{
			name: "valley: up after descending",
			steps: []Step{
				hop(1, EdgeUp, true),
				hop(2, EdgeDown, true), // descends (tag honest: entered from customer)
				hop(3, EdgeUp, true),   // climbing out of the valley
			},
			want: []Invariant{InvValleyFree},
		},
		{
			name: "valley: second peering edge",
			steps: []Step{
				hop(1, EdgeAcross, true),
				hop(2, EdgeAcross, true), // tag claims customer entry — sequence still invalid
			},
			want: []Invariant{InvValleyFree},
		},
		{
			name: "tag rule: export to provider without customer-entry tag",
			steps: []Step{
				hop(1, EdgeDown, true),
				hop(2, EdgeNone, false),
			},
		},
		{
			name: "tag rule: non-customer egress with tag clear",
			steps: []Step{
				hop(1, EdgeUp, true),
				hop(2, EdgeUp, false), // entered from provider yet exports up
			},
			want: []Invariant{InvValleyFree},
		},
		{
			name: "encap to non-iBGP peer",
			steps: []Step{
				hop(1, EdgeUp, true),
				{Router: -1, AS: 2, Edge: EdgeDown, Tag: true, Encap: true}, // outer header leaks across AS edge
			},
			want: []Invariant{InvEncapIBGP},
		},
		{
			name: "encap arrival over a non-iBGP link",
			steps: []Step{
				hop(1, EdgeUp, true),
				{Router: -1, AS: 2, Edge: EdgeDown, Tag: true, EncapArrival: true},
			},
			want: []Invariant{InvEncapIBGP},
		},
		{
			name: "justified tag-drop",
			steps: []Step{
				hop(1, EdgeUp, true),
				{Router: -1, AS: 2, Edge: EdgeNone, Tag: false, Refused: EdgeAcross},
			},
		},
		{
			name: "tag-drop with tag set",
			steps: []Step{
				hop(1, EdgeUp, true),
				{Router: -1, AS: 2, Edge: EdgeNone, Tag: true, Refused: EdgeAcross},
			},
			want: []Invariant{InvTagDrop},
		},
		{
			name: "tag-drop refusing a customer egress",
			steps: []Step{
				hop(1, EdgeUp, true),
				{Router: -1, AS: 2, Edge: EdgeNone, Tag: false, Refused: EdgeDown},
			},
			want: []Invariant{InvTagDrop},
		},
		{
			name: "loop and valley reported together",
			steps: []Step{
				hop(1, EdgeUp, true),
				hop(2, EdgeDown, true),
				hop(3, EdgeUp, false), // valley + tagless export
				hop(1, EdgeNone, false),
			},
			want: []Invariant{InvValleyFree, InvValleyFree, InvLoopFree},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var c Checker
			for _, s := range tc.steps {
				c.Step(s)
			}
			got := c.Violations()
			if len(got) != len(tc.want) {
				t.Fatalf("violations = %v, want invariants %v", got, tc.want)
			}
			for i, v := range got {
				if v.Invariant != tc.want[i] {
					t.Errorf("violation %d = %v, want %v (all: %v)", i, v.Invariant, tc.want[i], got)
				}
				if v.Detail == "" {
					t.Errorf("violation %d has no detail", i)
				}
			}
		})
	}
}

func TestCheckerReset(t *testing.T) {
	var c Checker
	c.Step(hop(1, EdgeUp, true))
	c.Step(hop(1, EdgeNone, false)) // same AS again: fine
	c.Step(hop(2, EdgeDown, false))
	c.Step(hop(1, EdgeNone, false)) // revisit
	if len(c.Violations()) != 1 {
		t.Fatalf("violations = %v, want exactly the revisit", c.Violations())
	}
	c.Reset()
	if len(c.Violations()) != 0 {
		t.Fatalf("violations survive Reset: %v", c.Violations())
	}
	// The same path is clean again after Reset (no leaked visited state).
	c.Step(hop(1, EdgeUp, true))
	c.Step(hop(2, EdgeDown, false))
	if len(c.Violations()) != 0 {
		t.Fatalf("reset checker reports stale violations: %v", c.Violations())
	}
}

func TestCheckerStepReturnsNewViolationCount(t *testing.T) {
	var c Checker
	if n := c.Step(hop(1, EdgeUp, true)); n != 0 {
		t.Fatalf("clean step reported %d violations", n)
	}
	if n := c.Step(hop(2, EdgeUp, false)); n != 1 {
		t.Fatalf("tagless up edge reported %d violations, want 1", n)
	}
}
