package audit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
)

// This file is the commitment layer of the tamper-evident flight log.
//
// Every finished journey becomes a Merkle leaf: the SHA-256 of its
// canonical JSON encoding (the record with the commitment fields Batch,
// Leaf and Proof cleared, so the hash covers exactly what the auditor
// observed, not where the sealer happened to place it). The batcher
// groups leaves into batches, computes a Merkle root per batch, and
// writes a BatchSeal line whose seal hash chains to the previous batch's
// seal — so a verifier that replays the log can detect any mutated,
// dropped, injected or reordered record, and any batch removed from the
// middle of the log. Removing a *suffix* of whole batches is the one
// edit a self-contained log cannot expose; pinning the head seal
// (mifo-trace -verify -head) closes that hole.
//
// Leaf and interior hashes are domain-separated (0x00 / 0x01 prefixes)
// so an interior node can never be replayed as a leaf (the classic
// second-preimage trick against naive Merkle trees). Odd nodes promote
// to the next level unhashed, RFC 6962 style trees are not required —
// the proof layout below matches the promotion rule exactly.

// KindSeal marks a batch-seal line in the JSONL stream. Seal lines are
// commitments, not journeys: ReadRecords skips them, VerifyLog consumes
// them.
const KindSeal = "batch-seal"

// BatchSeal is the commitment line written after each sealed batch.
type BatchSeal struct {
	Kind string `json:"kind"`
	// Batch is the 1-based batch number; Records the number of journey
	// lines sealed by this batch (the lines since the previous seal).
	Batch   uint64 `json:"batch"`
	Records int    `json:"records"`
	// Root is the hex Merkle root over the batch's leaf hashes; Prev is
	// the previous batch's Seal (all-zero for the first batch).
	Root string `json:"root"`
	Prev string `json:"prev"`
	// Seal is H(0x02 || prev || root || batch || records) — the chain
	// link the next batch commits to, and the log's head when this is
	// the last seal.
	Seal string `json:"seal"`
}

// leafHash computes the canonical leaf hash of a record: SHA-256 over a
// 0x00 domain byte and the record's JSON encoding with Batch, Leaf and
// Proof cleared. The shallow copy shares Steps/Violations, which the
// encoder only reads.
func leafHash(r *Record) ([32]byte, error) {
	c := *r
	c.Batch, c.Leaf, c.Proof = 0, 0, nil
	b, err := json.Marshal(&c)
	if err != nil {
		return [32]byte{}, err
	}
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(b)
	var out [32]byte
	h.Sum(out[:0])
	return out, nil
}

// hashPair hashes an interior node from its two children.
func hashPair(l, r [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// sealHash computes the chain link committed by a BatchSeal.
func sealHash(prev, root [32]byte, batch uint64, records int) [32]byte {
	var b [8]byte
	h := sha256.New()
	h.Write([]byte{0x02})
	h.Write(prev[:])
	h.Write(root[:])
	binary.BigEndian.PutUint64(b[:], batch)
	h.Write(b[:])
	binary.BigEndian.PutUint64(b[:], uint64(records))
	h.Write(b[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// merkleLevels builds the tree bottom-up: levels[0] is the leaves,
// the last level has exactly one node (the root). A level's trailing odd
// node promotes to the next level unhashed. Empty input yields nil.
func merkleLevels(leaves [][32]byte) [][][32]byte {
	if len(leaves) == 0 {
		return nil
	}
	levels := [][][32]byte{leaves}
	for len(levels[len(levels)-1]) > 1 {
		cur := levels[len(levels)-1]
		next := make([][32]byte, 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			if i+1 < len(cur) {
				next = append(next, hashPair(cur[i], cur[i+1]))
			} else {
				next = append(next, cur[i])
			}
		}
		levels = append(levels, next)
	}
	return levels
}

// merkleRoot returns the root of a built tree.
func merkleRoot(levels [][][32]byte) [32]byte {
	return levels[len(levels)-1][0]
}

// proofSteps collects the sibling hashes on the path from leaf i to the
// root — the inclusion proof. Levels where the node was promoted (no
// sibling) contribute nothing, matching VerifyInclusion's width walk.
func proofSteps(levels [][][32]byte, i int) [][32]byte {
	var steps [][32]byte
	for _, lvl := range levels[:len(levels)-1] {
		if sib := i ^ 1; sib < len(lvl) {
			steps = append(steps, lvl[sib])
		}
		i >>= 1
	}
	return steps
}

// VerifyInclusion replays an inclusion proof: it folds the sibling
// hashes over the leaf at index (of a batch with n leaves) and reports
// whether the result is root. The fold mirrors merkleLevels' promotion
// rule, so proof length is checked implicitly — extra or missing
// siblings fail.
func VerifyInclusion(leaf [32]byte, index, n int, proof [][32]byte, root [32]byte) bool {
	if index < 0 || index >= n {
		return false
	}
	h := leaf
	for i, width := index, n; width > 1; {
		if sib := i ^ 1; sib < width {
			if len(proof) == 0 {
				return false
			}
			if i&1 == 0 {
				h = hashPair(h, proof[0])
			} else {
				h = hashPair(proof[0], h)
			}
			proof = proof[1:]
		}
		i >>= 1
		width = (width + 1) / 2
	}
	return len(proof) == 0 && h == root
}

// hexHash renders a hash for the JSONL stream.
func hexHash(h [32]byte) string { return hex.EncodeToString(h[:]) }

// parseHash parses a hex hash from the stream.
func parseHash(s string) ([32]byte, bool) {
	var out [32]byte
	if len(s) != 2*len(out) {
		return out, false
	}
	if _, err := hex.Decode(out[:], []byte(s)); err != nil {
		return out, false
	}
	return out, true
}

// proofHex renders an inclusion proof for embedding in a record.
func proofHex(steps [][32]byte) []string {
	if len(steps) == 0 {
		return nil
	}
	out := make([]string, len(steps))
	for i, s := range steps {
		out[i] = hexHash(s)
	}
	return out
}

// parseProof parses an embedded proof; ok is false on any malformed
// sibling hash.
func parseProof(ss []string) ([][32]byte, bool) {
	if len(ss) == 0 {
		return nil, true
	}
	out := make([][32]byte, len(ss))
	for i, s := range ss {
		h, ok := parseHash(s)
		if !ok {
			return nil, false
		}
		out[i] = h
	}
	return out, true
}
