package audit

import "testing"

// FuzzChecker feeds arbitrary hop sequences to the online checker. The
// checker runs inside forwarding hot paths, so the property under test is
// simply that no input — however malformed — makes it panic, and that its
// bookkeeping stays coherent (violation step indices in range, Reset
// restores a clean state).
func FuzzChecker(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02})
	// A plausible up-across-down journey: each hop is 3 bytes
	// (AS, edge, flags).
	f.Add([]byte{1, 1, 0x01, 2, 2, 0x01, 3, 3, 0x00, 4, 0, 0x00})
	// Hostile bytes: out-of-range edges, every flag set, AS revisits.
	f.Add([]byte{9, 200, 0xff, 9, 7, 0xff, 9, 200, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		var c Checker
		steps := 0
		for i := 0; i+3 <= len(data); i += 3 {
			s := Step{
				Router:       int32(i/3) - 1,
				AS:           int32(data[i]),
				Edge:         EdgeClass(data[i+1]), // may be far out of range
				Tag:          data[i+2]&0x01 != 0,
				Encap:        data[i+2]&0x02 != 0,
				EncapArrival: data[i+2]&0x04 != 0,
				Deflected:    data[i+2]&0x08 != 0,
				Refused:      EdgeClass(data[i+2] >> 4),
			}
			n := c.Step(s)
			if n < 0 {
				t.Fatalf("Step returned negative violation count %d", n)
			}
			steps++
		}
		for _, v := range c.Violations() {
			if v.Step < 0 || v.Step >= steps {
				t.Fatalf("violation step %d out of range [0,%d)", v.Step, steps)
			}
		}
		c.Reset()
		if len(c.Violations()) != 0 {
			t.Fatal("violations survived Reset")
		}
		if n := c.Step(Step{AS: 1, Edge: EdgeUp, Tag: true}); n != 0 {
			t.Fatalf("reset checker flagged a clean first hop: %d violations", n)
		}
	})
}
