package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// VerifyResult summarizes a successful log verification.
type VerifyResult struct {
	// Batches and Records count what was verified.
	Batches int
	Records int
	// Head is the last batch's seal hash (hex) — the log's commitment
	// head. Pinning it out-of-band (mifo-trace -verify -head) closes the
	// one hole a self-contained log has: silent removal of a suffix of
	// whole batches.
	Head string
}

// VerifyProof checks one record against its batch seal: the canonical
// leaf hash is recomputed from the record and the embedded inclusion
// proof is replayed to the seal's Merkle root. A nil error means the
// record is byte-identical (in canonical form) to what the recorder
// sealed, at the position it was sealed in.
func VerifyProof(rec *Record, seal *BatchSeal) error {
	if rec.Batch != seal.Batch {
		return fmt.Errorf("audit: record seq %d claims batch %d, sealed in batch %d", rec.Seq, rec.Batch, seal.Batch)
	}
	root, ok := parseHash(seal.Root)
	if !ok {
		return fmt.Errorf("audit: batch %d: malformed root %q", seal.Batch, seal.Root)
	}
	proof, ok := parseProof(rec.Proof)
	if !ok {
		return fmt.Errorf("audit: record seq %d: malformed inclusion proof", rec.Seq)
	}
	leaf, err := leafHash(rec)
	if err != nil {
		return fmt.Errorf("audit: record seq %d: %w", rec.Seq, err)
	}
	if !VerifyInclusion(leaf, rec.Leaf, seal.Records, proof, root) {
		return fmt.Errorf("audit: record seq %d: inclusion proof does not reach batch %d root (record mutated or misplaced)", rec.Seq, seal.Batch)
	}
	return nil
}

// VerifyLog replays a sealed JSONL flight log and fails on any mutation,
// truncation, or reordering:
//
//   - every record's canonical leaf hash must rebuild its batch's Merkle
//     root (a single flipped byte anywhere in a record changes its leaf);
//   - every record's embedded inclusion proof must verify at its claimed
//     leaf index, and indices must be the write order (reordering within
//     a batch fails both checks);
//   - each seal's record count must match the lines since the previous
//     seal (dropped or injected records fail);
//   - each seal must chain to the previous seal's hash, and its own seal
//     hash must recompute (removing or reordering whole batches fails);
//   - records after the last seal fail (a truncated or still-unsealed
//     tail is not verifiable).
//
// Only removal of a suffix of entire batches is invisible to a
// self-contained log; compare VerifyResult.Head against a pinned value
// to detect it.
func VerifyLog(r io.Reader) (*VerifyResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	res := &VerifyResult{}
	var (
		pending []Record
		prev    [32]byte
		line    int
	)
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(b, &probe); err != nil {
			return nil, fmt.Errorf("audit: line %d: %w", line, err)
		}
		if probe.Kind != KindSeal {
			var rec Record
			if err := json.Unmarshal(b, &rec); err != nil {
				return nil, fmt.Errorf("audit: line %d: %w", line, err)
			}
			pending = append(pending, rec)
			continue
		}
		var seal BatchSeal
		if err := json.Unmarshal(b, &seal); err != nil {
			return nil, fmt.Errorf("audit: line %d: %w", line, err)
		}
		if err := verifyBatch(pending, &seal, prev, res.Batches+1); err != nil {
			return nil, fmt.Errorf("audit: line %d: %w", line, err)
		}
		sh, _ := parseHash(seal.Seal)
		prev = sh
		res.Batches++
		res.Records += len(pending)
		res.Head = seal.Seal
		pending = pending[:0]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("audit: %d record(s) after the last seal: log truncated mid-batch or never flushed", len(pending))
	}
	if res.Batches == 0 {
		return nil, fmt.Errorf("audit: no batch seals found: not a sealed log (recorded with Plain?)")
	}
	return res, nil
}

// verifyBatch checks one sealed batch against its pending records.
func verifyBatch(pending []Record, seal *BatchSeal, prev [32]byte, wantBatch int) error {
	if seal.Batch != uint64(wantBatch) {
		return fmt.Errorf("batch number %d, want %d: batch removed or reordered", seal.Batch, wantBatch)
	}
	if seal.Records != len(pending) {
		return fmt.Errorf("batch %d seals %d record(s) but %d precede it: record dropped or injected", seal.Batch, seal.Records, len(pending))
	}
	if seal.Records == 0 {
		return fmt.Errorf("batch %d seals zero records", seal.Batch)
	}
	prevHex, ok := parseHash(seal.Prev)
	if !ok || prevHex != prev {
		return fmt.Errorf("batch %d prev-seal link broken: batch removed, reordered, or mutated", seal.Batch)
	}
	root, ok := parseHash(seal.Root)
	if !ok {
		return fmt.Errorf("batch %d: malformed root %q", seal.Batch, seal.Root)
	}
	// Recompute the root from the records in file order. Any mutated,
	// swapped, or substituted record changes a leaf and breaks the root.
	leaves := make([][32]byte, len(pending))
	for i := range pending {
		lh, err := leafHash(&pending[i])
		if err != nil {
			return fmt.Errorf("batch %d record %d: %w", seal.Batch, i, err)
		}
		leaves[i] = lh
	}
	levels := merkleLevels(leaves)
	if merkleRoot(levels) != root {
		return fmt.Errorf("batch %d Merkle root mismatch: a record was mutated or reordered", seal.Batch)
	}
	// The seal itself must recompute from its fields and the chain.
	if wantSeal, ok := parseHash(seal.Seal); !ok || wantSeal != sealHash(prev, root, seal.Batch, seal.Records) {
		return fmt.Errorf("batch %d seal hash mismatch: seal line mutated", seal.Batch)
	}
	// Each record's embedded proof must verify at its claimed position,
	// and positions must be the write order.
	for i := range pending {
		if pending[i].Leaf != i {
			return fmt.Errorf("batch %d: record at position %d claims leaf %d: records reordered", seal.Batch, i, pending[i].Leaf)
		}
		if err := VerifyProof(&pending[i], seal); err != nil {
			return err
		}
	}
	return nil
}
