package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadRecords streams a JSONL flight log, invoking fn per record. Blank
// lines and batch-seal commitment lines are skipped (seals are consumed
// by VerifyLog, not by analysis); a malformed line aborts with an error
// naming it.
func ReadRecords(r io.Reader, fn func(Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return fmt.Errorf("audit: line %d: %w", line, err)
		}
		if rec.Kind == KindSeal {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// PrefixStat aggregates one destination prefix's records.
type PrefixStat struct {
	Dst         int32
	Records     int
	Deflected   int // records with at least one deflected step
	Deflections int // total deflected steps
	Violations  int
}

// DeflectionRate is the share of this prefix's journeys that used an
// alternative path.
func (p PrefixStat) DeflectionRate() float64 {
	if p.Records == 0 {
		return 0
	}
	return float64(p.Deflected) / float64(p.Records)
}

// Summary is the aggregate view of a flight log, the payload behind
// mifo-trace's default report.
type Summary struct {
	Records       int
	PacketRecords int
	PathRecords   int
	Verdicts      map[string]int
	DropReasons   map[string]int

	// Deflection accounting.
	DeflectedRecords int
	TotalDeflections int

	// Path length and stretch (AS hops; stretch only where BaselineLen
	// is known).
	PathLen    map[int]int
	Stretch    map[int]int
	StretchN   int
	lenSamples int
	lenSum     int

	// Invariant accounting — all zero in a correct run.
	Violations       map[string]int
	TotalViolations  int
	ViolationSamples []string

	PerPrefix map[int32]*PrefixStat
}

// Summarize aggregates every record of a JSONL flight log.
func Summarize(r io.Reader) (*Summary, error) {
	s := &Summary{
		Verdicts:    map[string]int{},
		DropReasons: map[string]int{},
		PathLen:     map[int]int{},
		Stretch:     map[int]int{},
		Violations:  map[string]int{},
		PerPrefix:   map[int32]*PrefixStat{},
	}
	err := ReadRecords(r, func(rec Record) error {
		s.add(rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

const maxViolationSamples = 8

func (s *Summary) add(rec Record) {
	s.Records++
	switch rec.Kind {
	case KindPath:
		s.PathRecords++
	default:
		s.PacketRecords++
	}
	s.Verdicts[rec.Verdict]++
	if rec.Verdict == VerdictDropped && rec.Reason != "" {
		s.DropReasons[rec.Reason]++
	}
	if rec.Deflections > 0 {
		s.DeflectedRecords++
		s.TotalDeflections += rec.Deflections
	}
	n := rec.ASPathLen()
	s.PathLen[n]++
	s.lenSamples++
	s.lenSum += n
	if rec.BaselineLen > 0 {
		s.Stretch[n-rec.BaselineLen]++
		s.StretchN++
	}
	for _, v := range rec.Violations {
		s.Violations[v.Invariant.String()]++
		s.TotalViolations++
		if len(s.ViolationSamples) < maxViolationSamples {
			s.ViolationSamples = append(s.ViolationSamples,
				fmt.Sprintf("record %d step %d: %s: %s", rec.Seq, v.Step, v.Invariant, v.Detail))
		}
	}
	ps := s.PerPrefix[rec.Dst]
	if ps == nil {
		ps = &PrefixStat{Dst: rec.Dst}
		s.PerPrefix[rec.Dst] = ps
	}
	ps.Records++
	if rec.Deflections > 0 {
		ps.Deflected++
		ps.Deflections += rec.Deflections
	}
	ps.Violations += len(rec.Violations)
}

// TopPrefixes returns the n busiest prefixes by record count,
// deflection-heavy first among ties.
func (s *Summary) TopPrefixes(n int) []*PrefixStat {
	out := make([]*PrefixStat, 0, len(s.PerPrefix))
	for _, p := range s.PerPrefix {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Records != out[j].Records {
			return out[i].Records > out[j].Records
		}
		if out[i].Deflections != out[j].Deflections {
			return out[i].Deflections > out[j].Deflections
		}
		return out[i].Dst < out[j].Dst
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// MeanPathLen is the mean journey length in AS hops.
func (s *Summary) MeanPathLen() float64 {
	if s.lenSamples == 0 {
		return 0
	}
	return float64(s.lenSum) / float64(s.lenSamples)
}

// Format renders the report mifo-trace prints. top bounds the per-prefix
// table (0 = 10).
func (s *Summary) Format(w io.Writer, top int) {
	if top <= 0 {
		top = 10
	}
	fmt.Fprintf(w, "flight log: %d records (%d packet, %d flow-path)\n",
		s.Records, s.PacketRecords, s.PathRecords)
	for _, v := range sortedKeys(s.Verdicts) {
		fmt.Fprintf(w, "  %-10s %d\n", v, s.Verdicts[v])
	}
	if len(s.DropReasons) > 0 {
		fmt.Fprintf(w, "drop reasons:\n")
		for _, k := range sortedKeys(s.DropReasons) {
			fmt.Fprintf(w, "  %-12s %d\n", k, s.DropReasons[k])
		}
	}

	rate := 0.0
	if s.Records > 0 {
		rate = 100 * float64(s.DeflectedRecords) / float64(s.Records)
	}
	fmt.Fprintf(w, "\ndeflections: %d across %d records (%.1f%% of journeys deflected)\n",
		s.TotalDeflections, s.DeflectedRecords, rate)

	fmt.Fprintf(w, "\npath length (AS hops): mean %.2f\n", s.MeanPathLen())
	writeIntHist(w, s.PathLen)
	if s.StretchN > 0 {
		fmt.Fprintf(w, "stretch vs BGP default path (AS hops, %d journeys with a baseline):\n", s.StretchN)
		writeIntHist(w, s.Stretch)
	}

	fmt.Fprintf(w, "\ninvariant violations: %d (should be zero)\n", s.TotalViolations)
	if s.TotalViolations > 0 {
		for _, k := range sortedKeys(s.Violations) {
			fmt.Fprintf(w, "  %-12s %d\n", k, s.Violations[k])
		}
		for _, sample := range s.ViolationSamples {
			fmt.Fprintf(w, "  ! %s\n", sample)
		}
	}

	fmt.Fprintf(w, "\ntop %d prefixes by journeys:\n", top)
	fmt.Fprintf(w, "  %-8s %8s %10s %12s %6s\n", "prefix", "records", "deflected", "deflections", "viol")
	for _, p := range s.TopPrefixes(top) {
		fmt.Fprintf(w, "  %-8d %8d %9.1f%% %12d %6d\n",
			p.Dst, p.Records, 100*p.DeflectionRate(), p.Deflections, p.Violations)
	}
}

func writeIntHist(w io.Writer, h map[int]int) {
	keys := make([]int, 0, len(h))
	total := 0
	for k, n := range h {
		keys = append(keys, k)
		total += n
	}
	sort.Ints(keys)
	for _, k := range keys {
		n := h[k]
		bar := strings.Repeat("#", int(40*float64(n)/float64(total)+0.5))
		fmt.Fprintf(w, "  %4d  %8d  %s\n", k, n, bar)
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FormatRecord pretty-prints one journey hop by hop — the mifo-trace
// --packet drill-down.
func FormatRecord(w io.Writer, rec Record) {
	fmt.Fprintf(w, "record %d: %s flow=%d", rec.Seq, rec.Kind, rec.Flow)
	if rec.PktID != 0 {
		fmt.Fprintf(w, " pkt=%d", rec.PktID)
	}
	fmt.Fprintf(w, " dst=%d verdict=%s", rec.Dst, rec.Verdict)
	if rec.Reason != "" {
		fmt.Fprintf(w, " (%s)", rec.Reason)
	}
	if rec.BaselineLen > 0 {
		fmt.Fprintf(w, " baseline=%d AS hops", rec.BaselineLen)
	}
	fmt.Fprintln(w)
	for i, s := range rec.Steps {
		marks := ""
		if s.Deflected {
			marks += " DEFLECTED"
		}
		if s.EncapArrival {
			marks += " encap-in"
		}
		if s.Encap {
			marks += " encap-out"
		}
		if s.Refused != EdgeNone {
			marks += fmt.Sprintf(" refused=%s", s.Refused)
		}
		tag := "-"
		if s.Tag {
			tag = "T"
		}
		loc := fmt.Sprintf("AS%d", s.AS)
		if s.Router >= 0 {
			loc = fmt.Sprintf("AS%d/r%d", s.AS, s.Router)
		}
		fmt.Fprintf(w, "  hop %2d  %-12s tag=%s edge=%-8s%s\n", i, loc, tag, s.Edge, marks)
	}
	for _, v := range rec.Violations {
		fmt.Fprintf(w, "  ! step %d: %s: %s\n", v.Step, v.Invariant, v.Detail)
	}
}
