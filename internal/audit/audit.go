// Package audit is the packet flight recorder and online invariant
// auditor for the MIFO forwarding stack.
//
// The paper's central correctness claim (Section III-A, Theorem 1) is that
// the one-bit valley-free tag-check makes multi-path interdomain
// forwarding loop-free on the data plane. This package lets every
// simulator and the UDP fabric *verify* that claim empirically, on live
// traffic: a Recorder captures each packet's full hop journey — AS and
// router visited, relationship class of every inter-AS edge, tag bit,
// encapsulation state, deflection events — into compact append-only
// records, and a Checker validates per-packet invariants online as hops
// are appended:
//
//   - loop-free: no AS is revisited after the packet left it;
//   - valley-free: the inter-AS edge sequence is up* [across] down*, and
//     every export to a non-customer carries the customer-entry tag
//     (Eq. 3 at every hop, not just at deflections);
//   - encap-ibgp: IP-in-IP encapsulation travels only between iBGP peers
//     of the same AS;
//   - tag-drop: a valley-free drop happens only when the tag-check
//     actually fails (tag clear and the refused alternative is a
//     non-customer edge).
//
// Records stream as JSONL for offline analysis by cmd/mifo-trace;
// violations increment obs counters and emit structured trace events so a
// live run surfaces them immediately. In a correct deployment every
// violation count is zero — the auditor is the experiment-scale witness
// for Theorem 1.
package audit

import "fmt"

// EdgeClass classifies the edge a packet takes when leaving a router,
// in Gao-Rexford terms relative to the current AS.
type EdgeClass int8

const (
	// EdgeNone marks a final hop (delivery or drop): no egress edge.
	EdgeNone EdgeClass = iota
	// EdgeUp goes to a provider of the current AS.
	EdgeUp
	// EdgeAcross goes to a settlement-free peer.
	EdgeAcross
	// EdgeDown goes to a customer.
	EdgeDown
	// EdgeInternal goes to an iBGP peer inside the same AS.
	EdgeInternal
)

// String returns a short edge-class name.
func (e EdgeClass) String() string {
	switch e {
	case EdgeNone:
		return "none"
	case EdgeUp:
		return "up"
	case EdgeAcross:
		return "across"
	case EdgeDown:
		return "down"
	case EdgeInternal:
		return "internal"
	default:
		return fmt.Sprintf("EdgeClass(%d)", int(e))
	}
}

// MarshalText renders the class as its name so JSONL records read well.
func (e EdgeClass) MarshalText() ([]byte, error) { return []byte(e.String()), nil }

// UnmarshalText parses an edge-class name.
func (e *EdgeClass) UnmarshalText(b []byte) error {
	for c := EdgeNone; c <= EdgeInternal; c++ {
		if c.String() == string(b) {
			*e = c
			return nil
		}
	}
	return fmt.Errorf("audit: unknown edge class %q", b)
}

// Invariant identifies one of the audited per-packet invariants.
type Invariant int8

const (
	// InvLoopFree fires when a packet re-enters an AS it already left.
	InvLoopFree Invariant = iota
	// InvValleyFree fires when the edge sequence has a valley — an up or
	// across edge after the path already descended — or when a router
	// exports to a non-customer without the customer-entry tag.
	InvValleyFree
	// InvEncapIBGP fires when IP-in-IP encapsulation crosses anything but
	// an iBGP link (or arrives over one that is not iBGP).
	InvEncapIBGP
	// InvTagDrop fires when a valley-free drop was not justified: the tag
	// bit was set, or the refused alternative was a customer egress.
	InvTagDrop

	numInvariants = 4
)

// Invariants lists every audited invariant, for iteration.
var Invariants = [numInvariants]Invariant{InvLoopFree, InvValleyFree, InvEncapIBGP, InvTagDrop}

// String returns the invariant's short name.
func (v Invariant) String() string {
	switch v {
	case InvLoopFree:
		return "loop-free"
	case InvValleyFree:
		return "valley-free"
	case InvEncapIBGP:
		return "encap-ibgp"
	case InvTagDrop:
		return "tag-drop"
	default:
		return fmt.Sprintf("Invariant(%d)", int(v))
	}
}

// MarshalText renders the invariant as its name.
func (v Invariant) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText parses an invariant name.
func (v *Invariant) UnmarshalText(b []byte) error {
	for _, c := range Invariants {
		if c.String() == string(b) {
			*v = c
			return nil
		}
	}
	return fmt.Errorf("audit: unknown invariant %q", b)
}

// Violation is one detected invariant breach, anchored at a step index of
// its record.
type Violation struct {
	Invariant Invariant `json:"invariant"`
	// Step is the index into Record.Steps where the breach was detected.
	Step int `json:"step"`
	// Detail is a human-readable explanation.
	Detail string `json:"detail,omitempty"`
}

// Step is one recorded hop of a journey. At packet granularity a step is
// one forwarding decision at one router; at flow granularity (netsim) a
// step is one AS of an installed path and Router is -1.
type Step struct {
	// Router is the deciding router, or -1 for AS-granularity records.
	Router int32 `json:"router"`
	// AS is the AS making the decision.
	AS int32 `json:"as"`
	// Edge classifies the egress edge (EdgeNone on the final hop).
	Edge EdgeClass `json:"edge"`
	// Tag is the valley-free bit after entry stamping at this hop.
	Tag bool `json:"tag,omitempty"`
	// Encap marks an IP-in-IP hand-off leaving this hop; EncapArrival
	// marks the packet arriving encapsulated.
	Encap        bool `json:"encap,omitempty"`
	EncapArrival bool `json:"encap_arrival,omitempty"`
	// Deflected marks a hop that moved the packet onto its alternative
	// path (directly or via encapsulation).
	Deflected bool `json:"deflected,omitempty"`
	// Refused is the relationship class of an alternative egress refused
	// by the tag-check (set on valley-free drop steps only).
	Refused EdgeClass `json:"refused,omitempty"`
}

// Record kinds.
const (
	// KindPacket is a per-packet journey recorded via the dataplane hook.
	KindPacket = "packet"
	// KindPath is a flow-granularity path install recorded by netsim.
	KindPath = "flow-path"
)

// Record verdicts.
const (
	// VerdictDelivered: the packet reached its destination AS.
	VerdictDelivered = "delivered"
	// VerdictDropped: the forwarding engine discarded it (Reason says why).
	VerdictDropped = "dropped"
	// VerdictLost: the packet left the engine but never finished — tx
	// queue overflow, or still in flight when the recorder closed.
	VerdictLost = "lost"
	// VerdictPath: a flow-granularity path install (not a packet fate).
	VerdictPath = "path"
)

// Record is one journey: a packet's hop-by-hop trip through the network,
// or one path installed for a flow. It is the JSONL unit mifo-trace
// consumes.
type Record struct {
	// Seq is the recorder-assigned sequence number (1-based).
	Seq uint64 `json:"seq"`
	// Kind is KindPacket or KindPath.
	Kind string `json:"kind"`
	// Flow identifies the flow (five-tuple hash at packet granularity,
	// flow ID at flow granularity); PktID separates packets of a flow.
	Flow  uint64 `json:"flow"`
	PktID uint16 `json:"pkt_id,omitempty"`
	// Dst is the destination prefix identifier.
	Dst int32 `json:"dst"`
	// Steps is the journey, in order.
	Steps []Step `json:"steps"`
	// Verdict is one of the Verdict* constants; Reason explains a drop or
	// loss.
	Verdict string `json:"verdict"`
	Reason  string `json:"reason,omitempty"`
	// Deflections counts deflected steps.
	Deflections int `json:"deflections,omitempty"`
	// BaselineLen is the default BGP path length in AS hops (for stretch
	// analysis); 0 when unknown.
	BaselineLen int `json:"baseline_len,omitempty"`
	// Violations lists every invariant breach found in this journey —
	// empty in a correct deployment.
	Violations []Violation `json:"violations,omitempty"`
	// Batch and Leaf place the record in its sealed batch (1-based batch
	// number, 0-based leaf index) and Proof is its Merkle inclusion proof
	// (sibling hashes, hex, leaf to root). All three are written by the
	// sealing sink and excluded from the canonical leaf hash, so a
	// record's identity covers exactly what the auditor observed.
	Batch uint64   `json:"batch,omitempty"`
	Leaf  int      `json:"leaf,omitempty"`
	Proof []string `json:"proof,omitempty"`
}

// ASPathLen returns the journey length in AS hops (consecutive steps in
// the same AS collapse, the way dataplane.Result.ASPath does).
func (r *Record) ASPathLen() int {
	n := 0
	var last int32
	for i, s := range r.Steps {
		if i == 0 || s.AS != last {
			n++
			last = s.AS
		}
	}
	return n
}
