package audit

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/obs"
	"repro/internal/topo"
)

func forwardHop(router int32, as int32, kind dataplane.PortKind, rel topo.Rel, tag bool) dataplane.HopInfo {
	return dataplane.HopInfo{
		Router:  dataplane.RouterID(router),
		AS:      as,
		Out:     0,
		OutKind: kind,
		OutRel:  rel,
		Tag:     tag,
		Verdict: dataplane.VerdictForward,
	}
}

func TestRecorderPacketJourney(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	rec := NewRecorder(Options{Writer: &buf, Registry: reg})
	defer rec.Close()
	hook := rec.RouterHook()

	p := &dataplane.Packet{
		Flow: dataplane.FlowKey{SrcAddr: 1, DstAddr: 2, SrcPort: 3, DstPort: 4, Proto: 6},
		ID:   7,
		Dst:  3,
	}
	// AS 1 exports up, AS 2 deflects onto a peer, AS 3 delivers.
	p.Tag = true
	hook(p, forwardHop(0, 1, dataplane.EBGP, topo.Provider, true))
	h := forwardHop(1, 2, dataplane.EBGP, topo.Peer, true)
	h.Deflected = true
	hook(p, h)
	hook(p, dataplane.HopInfo{Router: 2, AS: 3, Out: -1, Verdict: dataplane.VerdictDeliver})

	st := rec.Stats()
	if st.Records != 1 || st.Delivered != 1 || st.Steps != 3 || st.Deflections != 1 {
		t.Fatalf("stats = %+v, want 1 delivered record, 3 steps, 1 deflection", st)
	}
	if st.Violations != 0 {
		t.Fatalf("clean journey produced violations: %+v", st)
	}
	if got := reg.Snapshot()["audit_records_total"]; got != int64(1) {
		t.Fatalf("audit_records_total = %v, want 1", got)
	}
	if got := reg.Snapshot()["audit_deflections_total"]; got != int64(1) {
		t.Fatalf("audit_deflections_total = %v, want 1", got)
	}

	// The JSONL stream must round-trip through the reader. Flush is the
	// durability barrier: it seals the partial batch onto the writer.
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := ReadRecords(&buf, func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("read %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Kind != KindPacket || r.Verdict != VerdictDelivered || r.PktID != 7 || r.Dst != 3 {
		t.Fatalf("record = %+v", r)
	}
	if len(r.Steps) != 3 || !r.Steps[1].Deflected || r.Deflections != 1 {
		t.Fatalf("steps = %+v", r.Steps)
	}
	if r.ASPathLen() != 3 {
		t.Fatalf("ASPathLen = %d, want 3", r.ASPathLen())
	}
}

func TestRecorderDetectsLoopAndCountsPerInvariant(t *testing.T) {
	reg := obs.NewRegistry()
	rec := NewRecorder(Options{Registry: reg})
	defer rec.Close()
	hook := rec.RouterHook()

	p := &dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 9}, Dst: 9}
	hook(p, forwardHop(0, 1, dataplane.EBGP, topo.Provider, true))
	hook(p, forwardHop(1, 2, dataplane.EBGP, topo.Customer, true))
	hook(p, forwardHop(2, 1, dataplane.EBGP, topo.Customer, false)) // back to AS 1
	hook(p, dataplane.HopInfo{Router: 3, AS: 4, Out: -1, Verdict: dataplane.VerdictDeliver})

	st := rec.Stats()
	if st.ByInvariant[InvLoopFree] != 1 {
		t.Fatalf("loop not counted: %+v", st)
	}
	bad := rec.ViolatingRecords()
	if len(bad) != 1 || len(bad[0].Violations) == 0 {
		t.Fatalf("violating record not retained: %+v", bad)
	}
	if got := reg.Snapshot()[`audit_violations_total{invariant="loop-free"}`]; got != int64(1) {
		t.Fatalf("violation counter = %v, want 1 (snapshot %v)", got, reg.Snapshot())
	}
}

func TestRecorderTagDropJourney(t *testing.T) {
	rec := NewRecorder(Options{})
	defer rec.Close()
	hook := rec.RouterHook()

	p := &dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 5}, Dst: 5}
	hook(p, forwardHop(0, 1, dataplane.EBGP, topo.Provider, true))
	// AS 2 entered from a provider (tag clear) and refuses a peer egress:
	// a justified tag-drop.
	hook(p, dataplane.HopInfo{
		Router: 1, AS: 2, Out: -1,
		Verdict: dataplane.VerdictDrop, Reason: dataplane.DropValleyFree,
		AltTried: true, AltRel: topo.Peer,
	})

	st := rec.Stats()
	if st.Records != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want one dropped record", st)
	}
	if st.Violations != 0 {
		t.Fatalf("justified tag-drop flagged: %+v", rec.ViolatingRecords())
	}
}

func TestRecorderLostAndClose(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(Options{Writer: &buf})
	hook := rec.RouterHook()

	lost := &dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 1}, ID: 1, Dst: 1}
	hook(lost, forwardHop(0, 1, dataplane.EBGP, topo.Provider, true))
	rec.Lost(lost, "queue-overflow")

	dangling := &dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 1}, ID: 2, Dst: 1}
	hook(dangling, forwardHop(0, 1, dataplane.EBGP, topo.Provider, true))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	st := rec.Stats()
	if st.Lost != 2 || st.Records != 2 {
		t.Fatalf("stats = %+v, want 2 lost records", st)
	}
	out := buf.String()
	if !strings.Contains(out, "queue-overflow") || !strings.Contains(out, "recorder close") {
		t.Fatalf("loss reasons missing from JSONL:\n%s", out)
	}
	// Lost on an unknown packet must be a no-op.
	rec.Lost(&dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 99}, Dst: 99}, "x")
	if rec.Stats().Records != 2 {
		t.Fatal("Lost on unknown packet created a record")
	}
}

func TestRecorderSampling(t *testing.T) {
	rec := NewRecorder(Options{Sample: 0.25})
	defer rec.Close()
	kept := 0
	const flows = 4096
	for i := 0; i < flows; i++ {
		if rec.Sampled(mix64(uint64(i))) {
			kept++
		}
	}
	frac := float64(kept) / flows
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("sampled %.3f of flows, want ~0.25", frac)
	}

	// Sampling is per flow: every packet of a kept flow is captured, and
	// unsampled flows never reach the inflight map.
	all := NewRecorder(Options{Sample: 1})
	defer all.Close()
	if !all.Sampled(0) || !all.Sampled(^uint32(0)) {
		t.Fatal("Sample=1 must record everything")
	}
	none := NewRecorder(Options{Sample: 0.0000001})
	defer none.Close()
	hook := none.RouterHook()
	for i := 0; i < 64; i++ {
		p := &dataplane.Packet{Flow: dataplane.FlowKey{SrcAddr: uint32(i), DstAddr: 1}, Dst: 1}
		hook(p, dataplane.HopInfo{Router: 0, AS: 1, Out: -1, Verdict: dataplane.VerdictDeliver})
	}
	if st := none.Stats(); st.Records > 4 {
		t.Fatalf("tiny sample rate recorded %d of 64 flows", st.Records)
	}
}

func TestRecordPathAndPathSteps(t *testing.T) {
	// 0 <- 1 -> is provider chain: 2 is provider of 1, 1 provider of 0;
	// peering 2 -- 3; 3 provider of 4.
	g, err := topo.NewBuilder(5).
		AddPC(1, 0).AddPC(2, 1).AddPeer(2, 3).AddPC(3, 4).
		Build()
	if err != nil {
		t.Fatal(err)
	}

	steps := PathSteps(g, []int{0, 1, 2, 3, 4}, 2)
	wantEdge := []EdgeClass{EdgeUp, EdgeUp, EdgeAcross, EdgeDown, EdgeNone}
	// Tag set at the origin and wherever the path enters from a customer;
	// AS 3 enters from a peer and AS 4 from a provider, so theirs are clear.
	wantTag := []bool{true, true, true, false, false}
	for i, s := range steps {
		if s.Edge != wantEdge[i] {
			t.Fatalf("step %d edge = %v, want %v (steps %+v)", i, s.Edge, wantEdge[i], steps)
		}
		if s.Tag != wantTag[i] {
			t.Fatalf("step %d tag = %v, want %v: %+v", i, s.Tag, wantTag[i], s)
		}
		if s.Deflected != (i == 2) {
			t.Fatalf("step %d deflected = %v", i, s.Deflected)
		}
	}

	var buf bytes.Buffer
	rec := NewRecorder(Options{Writer: &buf})
	defer rec.Close()
	rec.RecordPath(PathRecord{Flow: 42, Dst: 4, BaselineLen: 4, Steps: steps})
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	if st.Paths != 1 || st.Deflections != 1 || st.Violations != 0 {
		t.Fatalf("stats = %+v", st)
	}

	var recs []Record
	if err := ReadRecords(&buf, func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != KindPath || recs[0].Verdict != VerdictPath {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].BaselineLen != 4 || recs[0].ASPathLen() != 5 {
		t.Fatalf("baseline/len = %d/%d", recs[0].BaselineLen, recs[0].ASPathLen())
	}
}

// failWriter fails every write after the first `after`.
type failWriter struct {
	after  int
	writes int
}

func (w *failWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.after {
		return 0, errSinkDown
	}
	return len(p), nil
}

var errSinkDown = &sinkDownError{}

type sinkDownError struct{}

func (*sinkDownError) Error() string { return "sink down" }

// TestRecorderCloseReturnsSinkError: Close must drain, attempt the final
// seal, and surface the first sink error instead of swallowing it.
func TestRecorderCloseReturnsSinkError(t *testing.T) {
	w := &failWriter{after: 0}
	rec := NewRecorder(Options{Writer: w})
	hook := rec.RouterHook()
	p := &dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 3}, Dst: 3}
	hook(p, dataplane.HopInfo{Router: 0, AS: 3, Out: -1, Verdict: dataplane.VerdictDeliver})
	if err := rec.Close(); err != errSinkDown {
		t.Fatalf("Close = %v, want the sink error", err)
	}
	// The error stays visible on later calls.
	if err := rec.Close(); err != errSinkDown {
		t.Fatalf("second Close = %v, want the retained sink error", err)
	}
	if err := rec.Flush(); err != errSinkDown {
		t.Fatalf("Flush after Close = %v, want the retained sink error", err)
	}
}

// TestRecorderCloseSealsFinalBatch: a journey pushed moments before
// Close must be drained from the rings, sealed into a final partial
// batch, and be verifiable — the Close ordering contract.
func TestRecorderCloseSealsFinalBatch(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(Options{Writer: &buf, BatchSize: 1 << 20, FlushInterval: time.Hour})
	hook := rec.RouterHook()
	p := &dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 3}, Dst: 3}
	hook(p, forwardHop(0, 1, dataplane.EBGP, topo.Provider, true))
	hook(p, dataplane.HopInfo{Router: 1, AS: 3, Out: -1, Verdict: dataplane.VerdictDeliver})
	// Leave a second journey dangling so Close also finalizes it as lost.
	q := &dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 3}, ID: 9, Dst: 3}
	hook(q, forwardHop(0, 1, dataplane.EBGP, topo.Provider, true))
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := VerifyLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("log written by Close does not verify: %v", err)
	}
	if res.Records != 2 || res.Batches != 1 {
		t.Fatalf("verified %d records / %d batches, want 2 / 1", res.Records, res.Batches)
	}
	st := rec.Stats()
	if st.Delivered != 1 || st.Lost != 1 || st.BatchesSealed != 1 {
		t.Fatalf("stats = %+v, want 1 delivered + 1 lost in 1 sealed batch", st)
	}
}

// TestRecorderLostUnsampledFlow: Lost on a flow the sampler rejected
// must be a pure branch-and-return — no record, no stats movement.
func TestRecorderLostUnsampledFlow(t *testing.T) {
	rec := NewRecorder(Options{Sample: 0.000001})
	var p dataplane.Packet
	for i := uint32(0); ; i++ {
		p = dataplane.Packet{Flow: dataplane.FlowKey{SrcAddr: i, DstAddr: 9}, Dst: 9}
		if !rec.Sampled(p.Flow.Hash()) {
			break
		}
	}
	rec.Lost(&p, "queue-overflow")
	if st := rec.Stats(); st.Records != 0 || st.Lost != 0 || st.Steps != 0 {
		t.Fatalf("Lost on unsampled flow moved stats: %+v", st)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestViolationInFinalUnsealedBatch: a violating journey that is still
// sitting in the unsealed batch at Close must be retained, sealed, and
// provable like any other record.
func TestViolationInFinalUnsealedBatch(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(Options{Writer: &buf, BatchSize: 1 << 20, FlushInterval: time.Hour})
	hook := rec.RouterHook()
	p := &dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 9}, Dst: 9}
	hook(p, forwardHop(0, 1, dataplane.EBGP, topo.Provider, true))
	hook(p, forwardHop(1, 2, dataplane.EBGP, topo.Customer, true))
	hook(p, forwardHop(2, 1, dataplane.EBGP, topo.Customer, false)) // loop back into AS 1
	hook(p, dataplane.HopInfo{Router: 3, AS: 4, Out: -1, Verdict: dataplane.VerdictDeliver})

	bad := rec.ViolatingRecords()
	if len(bad) != 1 || len(bad[0].Violations) == 0 {
		t.Fatalf("violating record not retained before seal: %+v", bad)
	}
	if buf.Len() != 0 {
		t.Fatal("batch sealed early; test wants the violation in the final unsealed batch")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyLog(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("log with violating record does not verify: %v", err)
	}
	found := false
	if err := ReadRecords(bytes.NewReader(buf.Bytes()), func(r Record) error {
		if len(r.Violations) > 0 {
			found = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("violations did not survive the sealed sink")
	}
}

// TestRecorderHotPathZeroAlloc is the benchmark assertion behind the
// disabled-path satellite: both the unsampled branch and the steady-state
// sampled push must not allocate.
func TestRecorderHotPathZeroAlloc(t *testing.T) {
	// Unsampled: one hash, one compare, return.
	cold := NewRecorder(Options{Sample: 0.000001})
	defer cold.Close()
	hook := cold.RouterHook()
	var p dataplane.Packet
	for i := uint32(0); ; i++ {
		p = dataplane.Packet{Flow: dataplane.FlowKey{SrcAddr: i, DstAddr: 9}, Dst: 9}
		if !cold.Sampled(p.Flow.Hash()) {
			break
		}
	}
	h := forwardHop(0, 1, dataplane.EBGP, topo.Provider, true)
	if n := testing.AllocsPerRun(1000, func() { hook(&p, h) }); n != 0 {
		t.Fatalf("unsampled hook allocates %.1f per op, want 0", n)
	}
	cold.Lost(&p, "queue-overflow")
	if n := testing.AllocsPerRun(1000, func() { cold.Lost(&p, "queue-overflow") }); n != 0 {
		t.Fatalf("unsampled Lost allocates %.1f per op, want 0", n)
	}

	// Sampled, no sink: the full record path. Warm the journey pool and
	// the batcher's scratch space first, then measure; Go's allocation
	// accounting is process-global, so this also proves the batcher's
	// steady state is allocation-free.
	hot := NewRecorder(Options{})
	defer hot.Close()
	hhook := hot.RouterHook()
	q := dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 3}, Dst: 3}
	deliver := dataplane.HopInfo{Router: 1, AS: 3, Out: -1, Verdict: dataplane.VerdictDeliver}
	journey := func() {
		hhook(&q, h)
		hhook(&q, deliver)
	}
	for i := 0; i < 4096; i++ {
		journey()
	}
	hot.Stats() // drain barrier: warmup fully processed
	if n := testing.AllocsPerRun(2000, journey); n != 0 {
		t.Fatalf("sampled record path allocates %.2f per op, want 0", n)
	}
}

func TestRecorderJourneyRecycling(t *testing.T) {
	rec := NewRecorder(Options{})
	defer rec.Close()
	hook := rec.RouterHook()
	for i := 0; i < 100; i++ {
		p := &dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 1}, ID: uint16(i), Dst: 1}
		hook(p, forwardHop(0, 1, dataplane.EBGP, topo.Provider, true))
		hook(p, dataplane.HopInfo{Router: 1, AS: 2, Out: -1, Verdict: dataplane.VerdictDeliver})
	}
	st := rec.Stats()
	if st.Records != 100 || st.Delivered != 100 || st.Steps != 200 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Violations != 0 {
		t.Fatal("recycled journeys leaked checker state")
	}
}
