package audit

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/topo"
)

// sealedLog records n delivered two-hop journeys through the async sink
// and returns the sealed JSONL bytes.
func sealedLog(t *testing.T, opts Options, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	opts.Writer = &buf
	if opts.FlushInterval == 0 {
		// Keep batch boundaries count-driven: a deadline seal firing on a
		// slow CI machine would change the expected batch shape.
		opts.FlushInterval = time.Hour
	}
	rec := NewRecorder(opts)
	hook := rec.RouterHook()
	for i := 0; i < n; i++ {
		p := &dataplane.Packet{Flow: dataplane.FlowKey{SrcAddr: uint32(i), DstAddr: 7}, ID: uint16(i), Dst: 7}
		hook(p, forwardHop(0, 1, dataplane.EBGP, topo.Provider, true))
		hook(p, dataplane.HopInfo{Router: 1, AS: 7, Out: -1, Verdict: dataplane.VerdictDeliver})
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// logLines splits a JSONL log, dropping the trailing empty element.
func logLines(log []byte) [][]byte {
	lines := bytes.Split(log, []byte("\n"))
	for len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	return lines
}

func isSealLine(line []byte) bool {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return false
	}
	return probe.Kind == KindSeal
}

func TestMerkleInclusionProofs(t *testing.T) {
	for n := 1; n <= 9; n++ {
		leaves := make([][32]byte, n)
		for i := range leaves {
			leaves[i] = sha256.Sum256([]byte{byte(i)})
		}
		levels := merkleLevels(leaves)
		root := merkleRoot(levels)
		for i := 0; i < n; i++ {
			proof := proofSteps(levels, i)
			if !VerifyInclusion(leaves[i], i, n, proof, root) {
				t.Fatalf("n=%d leaf %d: valid proof rejected", n, i)
			}
			// The same proof must fail at any other index and against a
			// different leaf.
			if n > 1 && VerifyInclusion(leaves[i], (i+1)%n, n, proof, root) {
				t.Fatalf("n=%d leaf %d: proof accepted at wrong index", n, i)
			}
			wrong := sha256.Sum256([]byte("not the leaf"))
			if VerifyInclusion(wrong, i, n, proof, root) {
				t.Fatalf("n=%d leaf %d: proof accepted for wrong leaf", n, i)
			}
		}
	}
	if VerifyInclusion([32]byte{}, 0, 0, nil, [32]byte{}) {
		t.Fatal("empty tree verified")
	}
}

func TestVerifyLogAcceptsUntampered(t *testing.T) {
	log := sealedLog(t, Options{BatchSize: 2}, 5)
	res, err := VerifyLog(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 5 || res.Batches != 3 {
		t.Fatalf("verified %d records in %d batches, want 5 in 3", res.Records, res.Batches)
	}
	if len(res.Head) != 64 {
		t.Fatalf("head seal = %q, want 64 hex chars", res.Head)
	}
	// The analysis reader must coexist with seal lines.
	count := 0
	if err := ReadRecords(bytes.NewReader(log), func(Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("ReadRecords saw %d records, want 5 (seal lines must be skipped)", count)
	}
}

// TestProofAcrossBatchBoundary pins the chain semantics: each record's
// proof verifies only inside its own batch, and every batch links to the
// previous seal, so a verifier walking the log crosses batch boundaries
// without trusting anything but the head.
func TestProofAcrossBatchBoundary(t *testing.T) {
	log := sealedLog(t, Options{BatchSize: 2}, 5)
	lines := logLines(log)

	var seals []BatchSeal
	var records []Record
	for _, line := range lines {
		if isSealLine(line) {
			var s BatchSeal
			if err := json.Unmarshal(line, &s); err != nil {
				t.Fatal(err)
			}
			seals = append(seals, s)
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatal(err)
		}
		records = append(records, r)
	}
	if len(seals) != 3 || len(records) != 5 {
		t.Fatalf("log shape: %d seals, %d records", len(seals), len(records))
	}
	// Chain: seal i+1 must point at seal i.
	for i := 1; i < len(seals); i++ {
		if seals[i].Prev != seals[i-1].Seal {
			t.Fatalf("seal %d prev = %s, want %s", i+1, seals[i].Prev, seals[i-1].Seal)
		}
	}
	// A record from batch 2 verifies against batch 2's seal and against
	// nothing else.
	var b2 *Record
	for i := range records {
		if records[i].Batch == 2 {
			b2 = &records[i]
			break
		}
	}
	if b2 == nil {
		t.Fatal("no record in batch 2")
	}
	if err := VerifyProof(b2, &seals[1]); err != nil {
		t.Fatalf("proof rejected in its own batch: %v", err)
	}
	if err := VerifyProof(b2, &seals[0]); err == nil {
		t.Fatal("batch-2 record verified against batch-1 seal")
	}
	if err := VerifyProof(b2, &seals[2]); err == nil {
		t.Fatal("batch-2 record verified against batch-3 seal")
	}
}

// mustFailVerify asserts VerifyLog rejects the log, returning the error.
func mustFailVerify(t *testing.T, log []byte, why string) {
	t.Helper()
	if _, err := VerifyLog(bytes.NewReader(log)); err == nil {
		t.Fatalf("VerifyLog accepted a log with %s", why)
	}
}

func TestVerifyLogDetectsTampering(t *testing.T) {
	log := sealedLog(t, Options{BatchSize: 2}, 5)
	lines := logLines(log)
	recIdx := make([]int, 0, len(lines)) // indices of record lines
	sealIdx := make([]int, 0, len(lines))
	for i, line := range lines {
		if isSealLine(line) {
			sealIdx = append(sealIdx, i)
		} else {
			recIdx = append(recIdx, i)
		}
	}
	rejoin := func(ls [][]byte) []byte {
		return append(bytes.Join(ls, []byte("\n")), '\n')
	}
	clone := func() [][]byte {
		out := make([][]byte, len(lines))
		for i, l := range lines {
			out[i] = append([]byte(nil), l...)
		}
		return out
	}

	// Mutation: flip one field of a mid-log record (valid JSON, wrong
	// leaf hash).
	mut := clone()
	target := recIdx[2]
	mut[target] = bytes.Replace(mut[target], []byte(`"verdict":"delivered"`), []byte(`"verdict":"dropped"`), 1)
	if bytes.Equal(mut[target], lines[target]) {
		t.Fatal("mutation did not apply")
	}
	mustFailVerify(t, rejoin(mut), "a mutated record")

	// Drop: remove one record line (count mismatch).
	drop := clone()
	drop = append(drop[:recIdx[1]], drop[recIdx[1]+1:]...)
	mustFailVerify(t, rejoin(drop), "a dropped record")

	// Reorder: swap two record lines inside one batch.
	swap := clone()
	swap[recIdx[0]], swap[recIdx[1]] = swap[recIdx[1]], swap[recIdx[0]]
	mustFailVerify(t, rejoin(swap), "reordered records")

	// Truncation mid-batch: keep records but cut their seal.
	trunc := clone()
	trunc = trunc[:sealIdx[len(sealIdx)-1]]
	mustFailVerify(t, rejoin(trunc), "a truncated tail")

	// Removing a whole middle batch breaks the seal chain.
	var cut [][]byte
	for i, line := range lines {
		inBatch2 := i > sealIdx[0] && i <= sealIdx[1]
		if !inBatch2 {
			cut = append(cut, line)
		}
	}
	mustFailVerify(t, rejoin(cut), "a removed middle batch")

	// Mutating a seal line is caught by the seal hash.
	badSeal := clone()
	badSeal[sealIdx[0]] = bytes.Replace(badSeal[sealIdx[0]], []byte(`"records":2`), []byte(`"records":3`), 1)
	mustFailVerify(t, rejoin(badSeal), "a mutated seal")

	// The untampered original still verifies (the clones really were
	// copies).
	if _, err := VerifyLog(bytes.NewReader(log)); err != nil {
		t.Fatalf("pristine log rejected after tamper tests: %v", err)
	}
}

func TestVerifyLogRejectsPlainAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(Options{Writer: &buf, Plain: true})
	hook := rec.RouterHook()
	p := &dataplane.Packet{Flow: dataplane.FlowKey{DstAddr: 7}, Dst: 7}
	hook(p, dataplane.HopInfo{Router: 0, AS: 7, Out: -1, Verdict: dataplane.VerdictDeliver})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"verdict":"delivered"`) {
		t.Fatalf("plain mode did not stream the record: %q", buf.String())
	}
	if strings.Contains(buf.String(), KindSeal) {
		t.Fatal("plain mode wrote a seal line")
	}
	if _, err := VerifyLog(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("VerifyLog accepted a plain (unsealed) log")
	}
	if _, err := VerifyLog(strings.NewReader("")); err == nil {
		t.Fatal("VerifyLog accepted an empty log")
	}
}
