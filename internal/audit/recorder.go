package audit

import (
	"encoding/json"
	"io"
	"sync"

	"repro/internal/dataplane"
	"repro/internal/obs"
	"repro/internal/topo"
)

// Options configure a Recorder. The zero value records every flow, keeps
// no JSONL output, and exports no metrics.
type Options struct {
	// Sample is the fraction of flows recorded, selected by a stable hash
	// of the flow identity so every packet of a chosen flow is captured.
	// Values <= 0 or >= 1 record everything.
	Sample float64
	// Writer, when non-nil, receives one JSON record per finished journey
	// (JSONL). The recorder serializes writes; buffering and closing are
	// the caller's job.
	Writer io.Writer
	// Registry, when non-nil, exports audit_records_total,
	// audit_steps_total, audit_deflections_total and
	// audit_violations_total{invariant}.
	Registry *obs.Registry
	// Trace, when non-nil and enabled, receives an EvCustom event per
	// violation, so live debug endpoints surface breaches immediately.
	Trace *obs.Trace
	// KeepViolating bounds how many violating records are retained in
	// memory for inspection (default 16, negative keeps none).
	KeepViolating int
}

// Stats is a snapshot of a recorder's counters.
type Stats struct {
	// Records counts finalized journeys; Steps counts recorded hops.
	Records uint64
	Steps   uint64
	// Deflections counts deflected steps — at packet granularity one per
	// alternative-path forwarding decision, at flow granularity one per
	// deflection-installed path.
	Deflections uint64
	// Delivered/Dropped/Lost/Paths break Records down by verdict.
	Delivered, Dropped, Lost, Paths uint64
	// Violations is the total breach count; ByInvariant splits it.
	Violations  uint64
	ByInvariant [numInvariants]uint64
}

// pktKey stitches hook callbacks into per-packet journeys.
type pktKey struct {
	flow dataplane.FlowKey
	dst  int32
	id   uint16
}

// journey is one in-flight record plus its online checker.
type journey struct {
	rec Record
	chk Checker
}

// Recorder is the packet flight recorder: it accumulates journeys from
// dataplane hop hooks (packet granularity) and from netsim path installs
// (flow granularity), checks invariants online, and streams finished
// records as JSONL. All methods are safe for concurrent use.
type Recorder struct {
	sampleLimit uint32

	mu       sync.Mutex
	enc      *json.Encoder
	inflight map[pktKey]*journey
	free     []*journey // recycled journeys
	seq      uint64
	stats    Stats
	keep     int
	bad      []Record

	recTotal, stepTotal, deflTotal *obs.Counter
	violVec                        *obs.CounterVec
	trace                          *obs.Trace
}

// NewRecorder builds a recorder from options.
func NewRecorder(o Options) *Recorder {
	rec := &Recorder{
		sampleLimit: ^uint32(0),
		inflight:    make(map[pktKey]*journey),
		keep:        o.KeepViolating,
		trace:       o.Trace,
	}
	if o.Sample > 0 && o.Sample < 1 {
		rec.sampleLimit = uint32(o.Sample * float64(^uint32(0)))
	}
	if o.Writer != nil {
		rec.enc = json.NewEncoder(o.Writer)
	}
	if rec.keep == 0 {
		rec.keep = 16
	}
	if o.Registry != nil {
		rec.recTotal = o.Registry.Counter("audit_records_total", "flight records finalized")
		rec.stepTotal = o.Registry.Counter("audit_steps_total", "hops recorded across all journeys")
		rec.deflTotal = o.Registry.Counter("audit_deflections_total", "deflected steps recorded")
		rec.violVec = o.Registry.CounterVec("audit_violations_total", "invariant violations found by the online auditor", "invariant")
	}
	return rec
}

// Sampled reports whether the flow with the given 32-bit identity hash is
// recorded under the sampling knob.
func (rec *Recorder) Sampled(flowHash uint32) bool { return flowHash <= rec.sampleLimit }

// mix64 spreads a flow ID over 32 bits (splitmix64 finalizer) so integer
// flow IDs sample uniformly.
func mix64(x uint64) uint32 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x >> 32)
}

// RouterHook returns the hop hook to install as dataplane.Router.Hop on
// every instrumented router. Hops of unsampled flows cost one hash and a
// compare.
func (rec *Recorder) RouterHook() dataplane.HopFunc {
	return func(p *dataplane.Packet, h dataplane.HopInfo) {
		if !rec.Sampled(p.Flow.Hash()) {
			return
		}
		rec.mu.Lock()
		defer rec.mu.Unlock()
		k := pktKey{flow: p.Flow, dst: p.Dst, id: p.ID}
		j, ok := rec.inflight[k]
		if !ok {
			j = rec.begin(KindPacket, uint64(p.Flow.Hash()), p.Dst, 0)
			j.rec.PktID = p.ID
			rec.inflight[k] = j
		}
		rec.appendStep(j, stepFromHop(h))
		switch h.Verdict {
		case dataplane.VerdictDeliver:
			delete(rec.inflight, k)
			rec.finish(j, VerdictDelivered, "")
		case dataplane.VerdictDrop:
			delete(rec.inflight, k)
			rec.finish(j, VerdictDropped, h.Reason.String())
		}
	}
}

// Lost finalizes an in-flight packet journey that will never see another
// hop — a tx-queue drop, or a transport giving up. It is a no-op for
// unsampled or unknown packets.
func (rec *Recorder) Lost(p *dataplane.Packet, detail string) {
	if !rec.Sampled(p.Flow.Hash()) {
		return
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	k := pktKey{flow: p.Flow, dst: p.Dst, id: p.ID}
	if j, ok := rec.inflight[k]; ok {
		delete(rec.inflight, k)
		rec.finish(j, VerdictLost, detail)
	}
}

// PathRecord is a flow-granularity journey: one path installed for one
// flow by the flow-level simulator.
type PathRecord struct {
	// Flow is the flow's ID; Dst its destination AS/prefix.
	Flow uint64
	Dst  int32
	// BaselineLen is the flow's default BGP path length in AS hops.
	BaselineLen int
	// Steps is the installed path, one step per AS (Router -1).
	Steps []Step
}

// RecordPath records one installed path, running the invariant checker
// over it. Sampling applies per flow.
func (rec *Recorder) RecordPath(pr PathRecord) {
	if !rec.Sampled(mix64(pr.Flow)) {
		return
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	j := rec.begin(KindPath, pr.Flow, pr.Dst, pr.BaselineLen)
	for _, s := range pr.Steps {
		rec.appendStep(j, s)
	}
	rec.finish(j, VerdictPath, "")
}

// PathSteps converts an AS-level path into checker steps against the
// given topology: edge classes from the business relationships, tag bits
// from the entry rule (set at the origin and wherever the path enters
// from a customer). deflectedAt marks the index of the AS that installed
// this path by deflection (-1 for none).
func PathSteps(g *topo.Graph, path []int, deflectedAt int) []Step {
	steps := make([]Step, len(path))
	for i, as := range path {
		s := Step{Router: -1, AS: int32(as), Edge: EdgeNone}
		s.Tag = i == 0 || g.IsCustomer(as, path[i-1])
		if i+1 < len(path) {
			if rel, ok := g.Rel(as, path[i+1]); ok {
				s.Edge = ClassOf(rel)
			}
		}
		s.Deflected = i == deflectedAt
		steps[i] = s
	}
	return steps
}

// ClassOf maps a Gao-Rexford relationship to the edge class of an egress
// towards that neighbor.
func ClassOf(rel topo.Rel) EdgeClass {
	switch rel {
	case topo.Customer:
		return EdgeDown
	case topo.Peer:
		return EdgeAcross
	case topo.Provider:
		return EdgeUp
	default:
		return EdgeNone
	}
}

// stepFromHop translates the dataplane's view of a decision into a step.
func stepFromHop(h dataplane.HopInfo) Step {
	s := Step{
		Router:       int32(h.Router),
		AS:           h.AS,
		Tag:          h.Tag,
		Encap:        h.LeftEncap,
		EncapArrival: h.ArrivedEncap,
		Deflected:    h.Deflected,
	}
	if h.Verdict == dataplane.VerdictForward {
		switch h.OutKind {
		case dataplane.IBGP:
			s.Edge = EdgeInternal
		case dataplane.EBGP:
			s.Edge = ClassOf(h.OutRel)
		}
	}
	if h.Reason == dataplane.DropValleyFree && h.AltTried {
		s.Refused = ClassOf(h.AltRel)
	}
	return s
}

// begin starts a journey (callers hold mu).
func (rec *Recorder) begin(kind string, flow uint64, dst int32, baseline int) *journey {
	var j *journey
	if n := len(rec.free); n > 0 {
		j = rec.free[n-1]
		rec.free = rec.free[:n-1]
	} else {
		j = &journey{}
	}
	rec.seq++
	j.rec = Record{
		Seq: rec.seq, Kind: kind, Flow: flow, Dst: dst,
		BaselineLen: baseline, Steps: j.rec.Steps[:0],
	}
	j.chk.Reset()
	return j
}

// appendStep records a hop and checks it online (callers hold mu).
func (rec *Recorder) appendStep(j *journey, s Step) {
	j.rec.Steps = append(j.rec.Steps, s)
	rec.stats.Steps++
	if rec.stepTotal != nil {
		rec.stepTotal.Inc()
	}
	if s.Deflected {
		j.rec.Deflections++
		rec.stats.Deflections++
		if rec.deflTotal != nil {
			rec.deflTotal.Inc()
		}
	}
	if n := j.chk.Step(s); n > 0 {
		vs := j.chk.Violations()
		for _, v := range vs[len(vs)-n:] {
			rec.noteViolation(j, v)
		}
	}
}

// noteViolation publishes one breach to stats, metrics and trace.
func (rec *Recorder) noteViolation(j *journey, v Violation) {
	rec.stats.Violations++
	rec.stats.ByInvariant[v.Invariant]++
	if rec.violVec != nil {
		rec.violVec.With(v.Invariant.String()).Inc()
	}
	if rec.trace.Enabled() {
		node := int32(-1)
		if v.Step < len(j.rec.Steps) {
			node = j.rec.Steps[v.Step].AS
		}
		rec.trace.Emit(obs.Event{
			Type: obs.EvCustom, Node: node, A: int64(j.rec.Dst), B: int64(v.Step),
			Note: "audit: " + v.Invariant.String() + ": " + v.Detail,
		})
	}
}

// finish finalizes a journey: copies violations into the record, updates
// stats, writes JSONL, and recycles the journey (callers hold mu).
func (rec *Recorder) finish(j *journey, verdict, reason string) {
	j.rec.Verdict = verdict
	j.rec.Reason = reason
	if vs := j.chk.Violations(); len(vs) > 0 {
		j.rec.Violations = append([]Violation(nil), vs...)
		if rec.keep > 0 && len(rec.bad) < rec.keep {
			bad := j.rec
			bad.Steps = append([]Step(nil), j.rec.Steps...)
			rec.bad = append(rec.bad, bad)
		}
	} else {
		j.rec.Violations = nil
	}
	rec.stats.Records++
	switch verdict {
	case VerdictDelivered:
		rec.stats.Delivered++
	case VerdictDropped:
		rec.stats.Dropped++
	case VerdictLost:
		rec.stats.Lost++
	case VerdictPath:
		rec.stats.Paths++
	}
	if rec.recTotal != nil {
		rec.recTotal.Inc()
	}
	if rec.enc != nil {
		rec.enc.Encode(&j.rec) // best-effort, like the data plane itself
	}
	rec.free = append(rec.free, j)
}

// Close finalizes every journey still in flight (verdict "lost"). The
// recorder stays usable afterwards; Close exists so short-lived runs do
// not leak half-recorded packets.
func (rec *Recorder) Close() error {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for k, j := range rec.inflight {
		delete(rec.inflight, k)
		rec.finish(j, VerdictLost, "in flight at recorder close")
	}
	return nil
}

// Stats returns a snapshot of the recorder's counters.
func (rec *Recorder) Stats() Stats {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.stats
}

// ViolatingRecords returns up to KeepViolating retained records that had
// violations, for post-mortem inspection without a JSONL sink.
func (rec *Recorder) ViolatingRecords() []Record {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]Record(nil), rec.bad...)
}
