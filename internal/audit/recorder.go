package audit

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataplane"
	"repro/internal/jsonl"
	"repro/internal/obs"
	"repro/internal/topo"
)

// Options configure a Recorder. The zero value records every flow, keeps
// no JSONL output, and exports no metrics.
type Options struct {
	// Sample is the fraction of flows recorded, selected by a stable hash
	// of the flow identity so every packet of a chosen flow is captured.
	// Values <= 0 or >= 1 record everything.
	Sample float64
	// Writer, when non-nil, receives the JSONL flight log. By default the
	// log is tamper-evident: journeys are written in Merkle-sealed batches
	// (each record carries its batch number, leaf index and inclusion
	// proof, followed by a batch-seal line chained to the previous seal)
	// and land on the writer only when a batch seals — call Flush or Close
	// to make buffered journeys durable. The recorder serializes writes;
	// buffering and closing the underlying file are the caller's job.
	Writer io.Writer
	// Plain disables sealing: journeys stream as bare JSONL the moment
	// they finish, with no batches, proofs or seal lines. Plain logs
	// cannot be verified by mifo-trace -verify.
	Plain bool
	// BatchSize is the number of journeys per sealed batch (default 256).
	BatchSize int
	// FlushInterval bounds how long a finished journey may sit in an
	// unsealed batch before a partial batch is sealed anyway
	// (default 50ms).
	FlushInterval time.Duration
	// Segments is the number of ring segments hop records are sharded
	// over, rounded up to a power of two (default 8). SegmentCap is each
	// segment's capacity in hop records, rounded up to a power of two
	// (default 2048). A full segment sheds records rather than stalling
	// the forwarding engine.
	Segments   int
	SegmentCap int
	// Registry, when non-nil, exports audit_records_total,
	// audit_steps_total, audit_deflections_total,
	// audit_violations_total{invariant}, and the async-sink pipeline
	// metrics (queue depth/high-water gauges, dropped/backpressure
	// counters, flush-latency and batch-size histograms, batches-sealed
	// and proofs-emitted counters).
	Registry *obs.Registry
	// Trace, when non-nil and enabled, receives an EvCustom event per
	// violation, so live debug endpoints surface breaches immediately.
	Trace *obs.Trace
	// KeepViolating bounds how many violating records are retained in
	// memory for inspection (default 16, negative keeps none).
	KeepViolating int
}

// Stats is a snapshot of a recorder's counters.
type Stats struct {
	// Records counts finalized journeys; Steps counts recorded hops.
	Records uint64
	Steps   uint64
	// Deflections counts deflected steps — at packet granularity one per
	// alternative-path forwarding decision, at flow granularity one per
	// deflection-installed path.
	Deflections uint64
	// Delivered/Dropped/Lost/Paths break Records down by verdict.
	Delivered, Dropped, Lost, Paths uint64
	// Violations is the total breach count; ByInvariant splits it.
	Violations  uint64
	ByInvariant [numInvariants]uint64
	// RingDropped counts hop records shed because a ring segment stayed
	// full (the journeys they belonged to are incomplete or missing);
	// Backpressure counts ring-full events where the producer yielded
	// once before retrying.
	RingDropped  uint64
	Backpressure uint64
	// BatchesSealed counts Merkle-sealed batches written to the sink.
	BatchesSealed uint64
}

// asmKey stitches drained hop records back into journeys. kind keeps
// packet journeys and flow paths in separate key spaces; the packet side
// keys on the full five-tuple plus destination and packet ID, so hash
// collisions can never merge two journeys.
type asmKey struct {
	flow   dataplane.FlowKey
	flowID uint64
	dst    int32
	pktID  uint16
	kind   uint8
}

const (
	keyPacket uint8 = iota
	keyPath
)

// journey is one in-flight record plus its online checker.
type journey struct {
	rec Record
	chk Checker
}

// batcher commands.
type cmdKind uint8

const (
	// cmdDrain: drain every ring segment and return (Stats barrier).
	cmdDrain cmdKind = iota
	// cmdSeal: drain, then seal the current partial batch (Flush).
	cmdSeal
	// cmdClose: drain, finalize in-flight journeys as lost, seal the
	// final partial batch, and stop the batcher.
	cmdClose
)

type cmd struct {
	kind cmdKind
	done chan error
}

// Recorder is the packet flight recorder: it accumulates journeys from
// dataplane hop hooks (packet granularity) and from netsim path installs
// (flow granularity), checks invariants online, and streams finished
// records as a tamper-evident JSONL log. All methods are safe for
// concurrent use.
//
// The record path is asynchronous: hooks write fixed-size hop records
// into lock-free ring segments (see ring.go) and return; a background
// batcher drains the rings, assembles journeys, runs the invariant
// checker, and seals Merkle-committed batches (see merkle.go). Stats,
// Flush, Close and ViolatingRecords are synchronization barriers — each
// drains everything the hooks pushed before the call.
type Recorder struct {
	sampleLimit uint32
	segs        []segment
	segMask     uint64

	// Hot-side shed accounting; mirrored into Stats and obs by the
	// batcher so producers touch nothing but these atomics.
	hotDropped      atomic.Int64
	hotBackpressure atomic.Int64

	closed atomic.Bool
	cmds   chan cmd
	done   chan struct{}

	// mu guards the snapshot state shared with callers: stats and the
	// retained violating records. The first sink error lives in the jsonl
	// sink itself.
	mu    sync.Mutex
	stats Stats
	bad   []Record

	// Batcher-owned state; no locking (single goroutine). The sink
	// serializes internally and retains the first write error.
	sink       *jsonl.Sink
	plain      bool
	batchSize  int
	flushEvery time.Duration
	poll       time.Duration
	inflight   map[asmKey]*journey
	// One-entry journey cache: consecutive hops of the same journey (the
	// overwhelmingly common drain pattern, since a journey's hops are
	// pushed back to back into one segment) skip the inflight map
	// entirely. lastInMap records whether lastJ was also spilled to the
	// map after an interleaving journey touched the cache.
	lastKey                     asmKey
	lastJ                       *journey
	lastInMap                   bool
	pool                        []*journey
	seq                         uint64
	batch                       []*journey
	batchStart                  time.Time
	batchNo                     uint64
	prevSeal                    [32]byte
	leaves                      [][32]byte
	highwater                   uint64
	pubDropped, pubBackpressure int64
	keep                        int
	trace                       *obs.Trace

	recTotal, stepTotal, deflTotal  *obs.Counter
	violVec                         *obs.CounterVec
	droppedTotal, backpressureTotal *obs.Counter
	batchesSealed, proofsEmitted    *obs.Counter
	queueDepth, queueHigh           *obs.Gauge
	flushSeconds, batchRecords      *obs.Histogram
}

// ceilPow2 rounds n up to a power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewRecorder builds a recorder from options and starts its batcher.
// Call Close when done; a recorder that is never closed leaks one
// goroutine and leaves its last partial batch unsealed.
func NewRecorder(o Options) *Recorder {
	rec := &Recorder{
		sampleLimit: ^uint32(0),
		inflight:    make(map[asmKey]*journey),
		keep:        o.KeepViolating,
		trace:       o.Trace,
		plain:       o.Plain,
		batchSize:   o.BatchSize,
		flushEvery:  o.FlushInterval,
		cmds:        make(chan cmd),
		done:        make(chan struct{}),
	}
	if o.Sample > 0 && o.Sample < 1 {
		rec.sampleLimit = uint32(o.Sample * float64(^uint32(0)))
	}
	if o.Writer != nil {
		rec.sink = jsonl.New(o.Writer)
	}
	if rec.keep == 0 {
		rec.keep = 16
	}
	if rec.batchSize <= 0 {
		rec.batchSize = 256
	}
	if rec.flushEvery <= 0 {
		rec.flushEvery = 50 * time.Millisecond
	}
	rec.poll = rec.flushEvery / 16
	if rec.poll < 200*time.Microsecond {
		rec.poll = 200 * time.Microsecond
	}
	if rec.poll > 2*time.Millisecond {
		rec.poll = 2 * time.Millisecond
	}
	nseg := o.Segments
	if nseg <= 0 {
		nseg = 8
	}
	nseg = ceilPow2(nseg)
	segCap := o.SegmentCap
	if segCap <= 0 {
		segCap = 2048
	}
	segCap = ceilPow2(segCap)
	rec.segs = make([]segment, nseg)
	rec.segMask = uint64(nseg - 1)
	for i := range rec.segs {
		rec.segs[i].init(segCap)
	}
	if o.Registry != nil {
		rec.recTotal = o.Registry.Counter("audit_records_total", "flight records finalized")
		rec.stepTotal = o.Registry.Counter("audit_steps_total", "hops recorded across all journeys")
		rec.deflTotal = o.Registry.Counter("audit_deflections_total", "deflected steps recorded")
		rec.violVec = o.Registry.CounterVec("audit_violations_total", "invariant violations found by the online auditor", "invariant")
		rec.droppedTotal = o.Registry.Counter("audit_records_dropped_total", "hop records shed because a ring segment stayed full")
		rec.backpressureTotal = o.Registry.Counter("audit_backpressure_total", "ring-full events where a producer yielded before retrying")
		rec.batchesSealed = o.Registry.Counter("audit_batches_sealed", "Merkle-sealed batches written to the flight log")
		rec.proofsEmitted = o.Registry.Counter("audit_proofs_emitted", "per-journey inclusion proofs written to the flight log")
		rec.queueDepth = o.Registry.Gauge("audit_queue_depth", "hop records pending in the async ring segments")
		rec.queueHigh = o.Registry.Gauge("audit_queue_highwater", "highest pending hop-record count observed")
		rec.flushSeconds = o.Registry.Histogram("audit_flush_seconds", "time from first buffered journey to batch seal",
			[]float64{0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1})
		rec.batchRecords = o.Registry.Histogram("audit_batch_records", "journeys per sealed batch",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	}
	go rec.run()
	return rec
}

// Sampled reports whether the flow with the given 32-bit identity hash is
// recorded under the sampling knob.
//
//mifo:hotpath
func (rec *Recorder) Sampled(flowHash uint32) bool { return flowHash <= rec.sampleLimit }

// mix64 spreads a flow ID over 32 bits (splitmix64 finalizer) so integer
// flow IDs sample uniformly.
func mix64(x uint64) uint32 { return uint32(jmix(x) >> 32) }

// segFor picks the ring segment for a journey key. Every record of one
// journey hashes to the same segment, so the batcher observes its hops
// in push order.
//
//mifo:hotpath
func (rec *Recorder) segFor(flowID uint64, dst int32, id uint16) *segment {
	k := flowID ^ uint64(uint32(dst))<<29 ^ uint64(id)<<47
	return &rec.segs[jmix(k)&rec.segMask]
}

// offer pushes one record group into seg with the shed policy: on a full
// ring, count backpressure, yield once to let the batcher drain, retry,
// and drop (counted) if the ring is still full. The forwarding engine
// never blocks on the recorder.
//
//mifo:hotpath
func (rec *Recorder) offer(seg *segment, h *hopRec, rest []hopRec) {
	if seg.tryPushN(h, rest) {
		return
	}
	rec.hotBackpressure.Add(1)
	runtime.Gosched()
	if seg.tryPushN(h, rest) {
		return
	}
	rec.hotDropped.Add(int64(1 + len(rest)))
}

// hookHop is the per-forwarding-decision record path: one flow hash, a
// sampling compare, one fixed-size hopRec copied into a lock-free ring.
// No allocation, no lock, no formatting — mifolint enforces the budget
// transitively from here.
//
//mifo:hotpath
func (rec *Recorder) hookHop(p *dataplane.Packet, h dataplane.HopInfo) {
	fh := p.Flow.Hash()
	if !rec.Sampled(fh) {
		return
	}
	hr := hopRec{
		op:      opHop,
		flow:    p.Flow,
		flowID:  uint64(fh),
		dst:     p.Dst,
		pktID:   p.ID,
		verdict: h.Verdict,
		reason:  h.Reason,
		step:    stepFromHop(h),
	}
	rec.offer(rec.segFor(hr.flowID, hr.dst, hr.pktID), &hr, nil)
}

// RouterHook returns the hop hook to install as dataplane.Router.Hop on
// every instrumented router. Hops of unsampled flows cost one flow hash
// and a compare; sampled hops cost one ring push.
func (rec *Recorder) RouterHook() dataplane.HopFunc {
	return rec.hookHop
}

// Lost finalizes an in-flight packet journey that will never see another
// hop — a tx-queue drop, or a transport giving up. It is a no-op for
// unsampled or unknown packets. detail should be a constant string; it
// is carried by reference through the ring.
//
//mifo:hotpath
func (rec *Recorder) Lost(p *dataplane.Packet, detail string) {
	fh := p.Flow.Hash()
	if !rec.Sampled(fh) {
		return
	}
	hr := hopRec{
		op:     opLost,
		flow:   p.Flow,
		flowID: uint64(fh),
		dst:    p.Dst,
		pktID:  p.ID,
		detail: detail,
	}
	rec.offer(rec.segFor(hr.flowID, hr.dst, hr.pktID), &hr, nil)
}

// PathRecord is a flow-granularity journey: one path installed for one
// flow by the flow-level simulator.
type PathRecord struct {
	// Flow is the flow's ID; Dst its destination AS/prefix.
	Flow uint64
	Dst  int32
	// BaselineLen is the flow's default BGP path length in AS hops.
	BaselineLen int
	// Steps is the installed path, one step per AS (Router -1).
	Steps []Step
}

// RecordPath records one installed path, running the invariant checker
// over it off the hot path. Sampling applies per flow. The whole path is
// pushed as one atomic ring block, so a path is either recorded complete
// or shed complete.
func (rec *Recorder) RecordPath(pr PathRecord) {
	if !rec.Sampled(mix64(pr.Flow)) {
		return
	}
	head := hopRec{
		op:       opPath,
		flags:    flagPathFirst,
		flowID:   pr.Flow,
		dst:      pr.Dst,
		baseline: int32(pr.BaselineLen),
	}
	var rest []hopRec
	if len(pr.Steps) == 0 {
		head.flags |= flagPathLast | flagPathEmpty
	} else {
		head.step = pr.Steps[0]
		if len(pr.Steps) == 1 {
			head.flags |= flagPathLast
		} else {
			rest = make([]hopRec, len(pr.Steps)-1)
			for i := range rest {
				rest[i] = hopRec{op: opPath, flowID: pr.Flow, dst: pr.Dst, step: pr.Steps[i+1]}
			}
			rest[len(rest)-1].flags = flagPathLast
		}
	}
	rec.offer(rec.segFor(pr.Flow, pr.Dst, 0), &head, rest)
}

// PathSteps converts an AS-level path into checker steps against the
// given topology: edge classes from the business relationships, tag bits
// from the entry rule (set at the origin and wherever the path enters
// from a customer). deflectedAt marks the index of the AS that installed
// this path by deflection (-1 for none).
func PathSteps(g *topo.Graph, path []int, deflectedAt int) []Step {
	steps := make([]Step, len(path))
	for i, as := range path {
		s := Step{Router: -1, AS: int32(as), Edge: EdgeNone}
		s.Tag = i == 0 || g.IsCustomer(as, path[i-1])
		if i+1 < len(path) {
			if rel, ok := g.Rel(as, path[i+1]); ok {
				s.Edge = ClassOf(rel)
			}
		}
		s.Deflected = i == deflectedAt
		steps[i] = s
	}
	return steps
}

// ClassOf maps a Gao-Rexford relationship to the edge class of an egress
// towards that neighbor.
//
//mifo:hotpath
func ClassOf(rel topo.Rel) EdgeClass {
	switch rel {
	case topo.Customer:
		return EdgeDown
	case topo.Peer:
		return EdgeAcross
	case topo.Provider:
		return EdgeUp
	default:
		return EdgeNone
	}
}

// stepFromHop translates the dataplane's view of a decision into a step.
//
//mifo:hotpath
func stepFromHop(h dataplane.HopInfo) Step {
	s := Step{
		Router:       int32(h.Router),
		AS:           h.AS,
		Tag:          h.Tag,
		Encap:        h.LeftEncap,
		EncapArrival: h.ArrivedEncap,
		Deflected:    h.Deflected,
	}
	if h.Verdict == dataplane.VerdictForward {
		switch h.OutKind {
		case dataplane.IBGP:
			s.Edge = EdgeInternal
		case dataplane.EBGP:
			s.Edge = ClassOf(h.OutRel)
		}
	}
	if h.Reason == dataplane.DropValleyFree && h.AltTried {
		s.Refused = ClassOf(h.AltRel)
	}
	return s
}

// run is the batcher: it drains the ring segments on a short poll,
// assembles journeys, seals batches on size or deadline, and services
// the barrier commands behind Stats, Flush and Close.
func (rec *Recorder) run() {
	defer close(rec.done)
	tick := time.NewTicker(rec.poll)
	defer tick.Stop()
	for {
		select {
		case c := <-rec.cmds:
			rec.drainAll()
			if c.kind == cmdClose {
				rec.loseInflight()
			}
			if c.kind != cmdDrain {
				rec.sealBatch()
			}
			rec.publish()
			c.done <- rec.firstSinkErr()
			if c.kind == cmdClose {
				return
			}
		case <-tick.C:
			rec.drainAll()
			rec.maybeSeal()
			rec.publish()
		}
	}
}

// drainAll sweeps every segment until one full sweep finds nothing,
// bounded so a saturating producer cannot starve the command channel.
func (rec *Recorder) drainAll() {
	for sweep := 0; sweep < 1024; sweep++ {
		var depth uint64
		for i := range rec.segs {
			depth += rec.segs[i].pending()
		}
		if depth > rec.highwater {
			rec.highwater = depth
		}
		n := 0
		for i := range rec.segs {
			n += rec.segs[i].drain(rec.process)
		}
		if n == 0 {
			return
		}
	}
}

// lookup resolves a journey through the one-entry cache, then the map.
func (rec *Recorder) lookup(k asmKey) (*journey, bool) {
	if rec.lastJ != nil && rec.lastKey == k {
		return rec.lastJ, true
	}
	j, ok := rec.inflight[k]
	return j, ok
}

// track makes j the cached journey, spilling the previous occupant to
// the map. inMap says whether j is (also) in the map already.
func (rec *Recorder) track(k asmKey, j *journey, inMap bool) {
	if rec.lastJ != nil && rec.lastKey != k && !rec.lastInMap {
		rec.inflight[rec.lastKey] = rec.lastJ
	}
	rec.lastKey, rec.lastJ, rec.lastInMap = k, j, inMap
}

// retire removes a finished journey from the cache and, if spilled, the
// map. In the steady single-journey-at-a-time pattern this touches no
// map at all.
func (rec *Recorder) retire(k asmKey) {
	if rec.lastJ != nil && rec.lastKey == k {
		if rec.lastInMap {
			delete(rec.inflight, k)
		}
		rec.lastJ = nil
		return
	}
	delete(rec.inflight, k)
}

// process folds one drained hop record into its journey.
func (rec *Recorder) process(h *hopRec) {
	switch h.op {
	case opHop:
		k := asmKey{kind: keyPacket, flow: h.flow, flowID: h.flowID, dst: h.dst, pktID: h.pktID}
		j, ok := rec.lookup(k)
		if !ok {
			j = rec.begin(KindPacket, h.flowID, h.dst, 0)
			j.rec.PktID = h.pktID
			rec.track(k, j, false)
		} else if rec.lastJ != j || rec.lastKey != k {
			rec.track(k, j, true)
		}
		rec.appendStep(j, h.step)
		switch h.verdict {
		case dataplane.VerdictDeliver:
			rec.retire(k)
			rec.finish(j, VerdictDelivered, "")
		case dataplane.VerdictDrop:
			rec.retire(k)
			rec.finish(j, VerdictDropped, h.reason.String())
		}
	case opLost:
		k := asmKey{kind: keyPacket, flow: h.flow, flowID: h.flowID, dst: h.dst, pktID: h.pktID}
		if j, ok := rec.lookup(k); ok {
			rec.retire(k)
			rec.finish(j, VerdictLost, h.detail)
		}
	case opPath:
		k := asmKey{kind: keyPath, flowID: h.flowID, dst: h.dst}
		if h.flags&flagPathFirst != 0 {
			rec.track(k, rec.begin(KindPath, h.flowID, h.dst, int(h.baseline)), false)
		}
		j, ok := rec.lookup(k)
		if !ok {
			return // head was shed with its tail; cannot happen with atomic pushes
		}
		if h.flags&flagPathEmpty == 0 {
			rec.appendStep(j, h.step)
		}
		if h.flags&flagPathLast != 0 {
			rec.retire(k)
			rec.finish(j, VerdictPath, "")
		}
	}
}

// begin starts a journey from the pool (batcher only).
func (rec *Recorder) begin(kind string, flow uint64, dst int32, baseline int) *journey {
	var j *journey
	if n := len(rec.pool); n > 0 {
		j = rec.pool[n-1]
		rec.pool = rec.pool[:n-1]
	} else {
		j = &journey{}
	}
	j.rec = Record{
		Kind: kind, Flow: flow, Dst: dst,
		BaselineLen: baseline, Steps: j.rec.Steps[:0],
	}
	j.chk.Reset()
	return j
}

// appendStep records a hop and checks it online (batcher only).
func (rec *Recorder) appendStep(j *journey, s Step) {
	j.rec.Steps = append(j.rec.Steps, s)
	if rec.stepTotal != nil {
		rec.stepTotal.Inc()
	}
	if s.Deflected {
		j.rec.Deflections++
		if rec.deflTotal != nil {
			rec.deflTotal.Inc()
		}
	}
	if n := j.chk.Step(s); n > 0 {
		vs := j.chk.Violations()
		for _, v := range vs[len(vs)-n:] {
			rec.noteViolation(j, v)
		}
	}
}

// noteViolation publishes one breach to metrics and trace (stats are
// folded in at finish time, under the snapshot lock).
func (rec *Recorder) noteViolation(j *journey, v Violation) {
	if rec.violVec != nil {
		rec.violVec.With(v.Invariant.String()).Inc()
	}
	if rec.trace.Enabled() {
		node := int32(-1)
		if v.Step < len(j.rec.Steps) {
			node = j.rec.Steps[v.Step].AS
		}
		rec.trace.Emit(obs.Event{
			Type: obs.EvCustom, Node: node, A: int64(j.rec.Dst), B: int64(v.Step),
			Note: "audit: " + v.Invariant.String() + ": " + v.Detail,
		})
	}
}

// finish finalizes a journey: copies violations into the record, updates
// the stats snapshot, and hands the record to the sink — immediately in
// plain mode, via the current batch in sealed mode (batcher only).
func (rec *Recorder) finish(j *journey, verdict, reason string) {
	j.rec.Verdict = verdict
	j.rec.Reason = reason
	rec.seq++
	j.rec.Seq = rec.seq
	vs := j.chk.Violations()
	if len(vs) > 0 {
		j.rec.Violations = append([]Violation(nil), vs...)
	} else {
		j.rec.Violations = nil
	}

	rec.mu.Lock()
	rec.stats.Records++
	rec.stats.Steps += uint64(len(j.rec.Steps))
	rec.stats.Deflections += uint64(j.rec.Deflections)
	switch verdict {
	case VerdictDelivered:
		rec.stats.Delivered++
	case VerdictDropped:
		rec.stats.Dropped++
	case VerdictLost:
		rec.stats.Lost++
	case VerdictPath:
		rec.stats.Paths++
	}
	for _, v := range vs {
		rec.stats.Violations++
		rec.stats.ByInvariant[v.Invariant]++
	}
	if len(vs) > 0 && rec.keep > 0 && len(rec.bad) < rec.keep {
		bad := j.rec
		bad.Steps = append([]Step(nil), j.rec.Steps...)
		rec.bad = append(rec.bad, bad)
	}
	rec.mu.Unlock()

	if rec.recTotal != nil {
		rec.recTotal.Inc()
	}
	if rec.sink == nil {
		rec.recycle(j)
		return
	}
	if rec.plain {
		rec.sink.Encode(&j.rec)
		rec.recycle(j)
		return
	}
	if len(rec.batch) == 0 {
		rec.batchStart = time.Now()
	}
	rec.batch = append(rec.batch, j)
	if len(rec.batch) >= rec.batchSize {
		rec.sealBatch()
	}
}

// recycle returns a journey to the pool (batcher only).
func (rec *Recorder) recycle(j *journey) {
	j.rec.Violations = nil
	j.rec.Proof = nil
	rec.pool = append(rec.pool, j)
}

// sealBatch commits the current batch: canonical leaf hashes, Merkle
// root, per-record inclusion proofs, and the chained seal line (batcher
// only; no-op when nothing is buffered or the sink is plain/absent).
func (rec *Recorder) sealBatch() {
	n := len(rec.batch)
	if n == 0 || rec.sink == nil || rec.plain {
		return
	}
	rec.leaves = rec.leaves[:0]
	for _, j := range rec.batch {
		lh, err := leafHash(&j.rec)
		if err != nil {
			rec.sink.Note(err)
		}
		rec.leaves = append(rec.leaves, lh)
	}
	levels := merkleLevels(rec.leaves)
	root := merkleRoot(levels)
	rec.batchNo++
	for i, j := range rec.batch {
		j.rec.Batch = rec.batchNo
		j.rec.Leaf = i
		j.rec.Proof = proofHex(proofSteps(levels, i))
		rec.sink.Encode(&j.rec)
	}
	sh := sealHash(rec.prevSeal, root, rec.batchNo, n)
	seal := BatchSeal{
		Kind: KindSeal, Batch: rec.batchNo, Records: n,
		Root: hexHash(root), Prev: hexHash(rec.prevSeal), Seal: hexHash(sh),
	}
	rec.sink.Encode(&seal)
	rec.prevSeal = sh
	for _, j := range rec.batch {
		rec.recycle(j)
	}
	rec.batch = rec.batch[:0]

	if rec.batchesSealed != nil {
		rec.batchesSealed.Inc()
		rec.proofsEmitted.Add(int64(n))
		rec.flushSeconds.Observe(time.Since(rec.batchStart).Seconds())
		rec.batchRecords.Observe(float64(n))
	}
	rec.mu.Lock()
	rec.stats.BatchesSealed++
	rec.mu.Unlock()
}

// maybeSeal seals a partial batch whose oldest journey has waited past
// the flush deadline (batcher only).
func (rec *Recorder) maybeSeal() {
	if len(rec.batch) > 0 && time.Since(rec.batchStart) >= rec.flushEvery {
		rec.sealBatch()
	}
}

// loseInflight finalizes every journey still being assembled — cached
// and mapped (batcher only; Close path).
func (rec *Recorder) loseInflight() {
	if j := rec.lastJ; j != nil {
		if rec.lastInMap {
			delete(rec.inflight, rec.lastKey)
		}
		rec.lastJ = nil
		rec.finish(j, VerdictLost, "in flight at recorder close")
	}
	for k, j := range rec.inflight {
		delete(rec.inflight, k)
		rec.finish(j, VerdictLost, "in flight at recorder close")
	}
}

// publish mirrors the hot-side shed counters and queue gauges into the
// stats snapshot and the obs registry (batcher only).
func (rec *Recorder) publish() {
	d := rec.hotDropped.Load()
	bp := rec.hotBackpressure.Load()
	rec.mu.Lock()
	rec.stats.RingDropped = uint64(d)
	rec.stats.Backpressure = uint64(bp)
	rec.mu.Unlock()
	if rec.droppedTotal == nil {
		return
	}
	rec.droppedTotal.Add(d - rec.pubDropped)
	rec.pubDropped = d
	rec.backpressureTotal.Add(bp - rec.pubBackpressure)
	rec.pubBackpressure = bp
	var depth uint64
	for i := range rec.segs {
		depth += rec.segs[i].pending()
	}
	rec.queueDepth.Set(float64(depth))
	rec.queueHigh.Set(float64(rec.highwater))
}

// firstSinkErr snapshots the sink's retained first error.
func (rec *Recorder) firstSinkErr() error {
	if rec.sink == nil {
		return nil
	}
	return rec.sink.Err()
}

// command runs one barrier command through the batcher; after Close it
// degrades to reporting the retained sink error.
func (rec *Recorder) command(kind cmdKind) error {
	c := cmd{kind: kind, done: make(chan error, 1)}
	select {
	case rec.cmds <- c:
		return <-c.done
	case <-rec.done:
		return rec.firstSinkErr()
	}
}

// Flush drains everything the hooks have pushed, seals the current
// partial batch, and returns the first sink error seen so far.
func (rec *Recorder) Flush() error {
	return rec.command(cmdSeal)
}

// Close drains every ring segment, finalizes journeys still in flight
// (verdict "lost"), seals the final partial batch, stops the batcher,
// and returns the first sink error. Hooks left installed after Close are
// harmless: their pushes land in the rings and are never drained.
func (rec *Recorder) Close() error {
	if rec.closed.Swap(true) {
		return rec.command(cmdDrain)
	}
	return rec.command(cmdClose)
}

// Stats drains everything the hooks have pushed (without sealing) and
// returns a snapshot of the recorder's counters.
func (rec *Recorder) Stats() Stats {
	c := cmd{kind: cmdDrain, done: make(chan error, 1)}
	select {
	case rec.cmds <- c:
		<-c.done
	case <-rec.done:
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.stats
}

// ViolatingRecords returns up to KeepViolating retained records that had
// violations, for post-mortem inspection without a JSONL sink. Like
// Stats, it is a drain barrier.
func (rec *Recorder) ViolatingRecords() []Record {
	c := cmd{kind: cmdDrain, done: make(chan error, 1)}
	select {
	case rec.cmds <- c:
		<-c.done
	case <-rec.done:
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]Record(nil), rec.bad...)
}
