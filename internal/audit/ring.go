package audit

import (
	"runtime"
	"sync/atomic"

	"repro/internal/dataplane"
)

// The hot half of the async recorder: fixed-size hop records pushed into
// lock-free ring segments. A producer (a forwarding goroutine running the
// router hook) claims a segment with a CAS latch, copies one hopRec into
// the ring, bumps the write cursor, and releases — no mutex, no channel,
// no allocation. Segments are selected by journey-key hash, so every
// record of one journey lands in the same segment and the batcher sees
// its hops in push order (per-producer the segment degenerates to an
// SPSC ring; cross-goroutine hand-offs in netd are ordered by the UDP
// send/receive happens-before edge, so the per-segment FIFO is enough).
//
// When a segment is full the producer yields once and retries (counted
// as backpressure); if the segment is still full the record is dropped
// and counted — the recorder sheds load rather than stalling the
// forwarding engine, and dropped records never enter a sealed batch, so
// the tamper-evident log stays internally consistent.

// hopRec ops.
const (
	opHop uint8 = iota
	opLost
	opPath
)

// hopRec flags.
const (
	flagPathFirst uint8 = 1 << iota
	flagPathLast
	flagPathEmpty // head of a zero-step path: carries no step of its own
)

// hopRec is the fixed-size unit the hot path writes: one forwarding
// decision (or loss notice, or one step of a flow path) plus the journey
// identity needed to stitch it back together off the hot path. detail
// only ever holds compile-time constant strings (loss reasons), so
// copying a hopRec never allocates.
type hopRec struct {
	flow     dataplane.FlowKey
	flowID   uint64
	dst      int32
	baseline int32
	pktID    uint16
	op       uint8
	flags    uint8
	verdict  dataplane.Verdict
	reason   dataplane.DropReason
	detail   string
	step     Step
}

// segment is one ring: a power-of-two buffer with a producer-side CAS
// latch and atomic cursors. The latch serializes concurrent producers
// that hash to the same segment; the cursors carry the release/acquire
// edge to the single consumer (the batcher), which never takes the
// latch.
//
//mifo:ring payload=buf cursor=w read=r latch=latch
type segment struct {
	buf   []hopRec
	mask  uint64
	latch atomic.Uint32
	w     atomic.Uint64
	// rCache is the producers' stale copy of r (guarded by the latch):
	// the consumer's cursor cache line is touched only when the ring
	// looks full, not on every push.
	rCache uint64
	_      [40]byte // keep the consumer cursor off the producers' cache line
	r      atomic.Uint64
}

func (s *segment) init(capacity int) {
	s.buf = make([]hopRec, capacity)
	s.mask = uint64(capacity - 1)
}

// pending returns how many records are buffered (approximate under
// concurrent pushes; exact from the consumer side).
func (s *segment) pending() uint64 { return s.w.Load() - s.r.Load() }

// tryPushN copies h and then every element of rest into the ring as one
// atomic block — either the whole group is buffered or none of it, so a
// flow path can never be half-recorded. rest may be nil. It returns
// false without blocking when the ring lacks room; the recorder owns
// the retry/shed policy and its accounting.
//
//mifo:hotpath
func (s *segment) tryPushN(h *hopRec, rest []hopRec) bool {
	need := uint64(1 + len(rest))
	if need > uint64(len(s.buf)) {
		return false
	}
	s.lock()
	w := s.w.Load()
	if w+need-s.rCache > uint64(len(s.buf)) {
		s.rCache = s.r.Load()
		if w+need-s.rCache > uint64(len(s.buf)) {
			s.unlock()
			return false
		}
	}
	s.buf[w&s.mask] = *h
	for i := range rest {
		s.buf[(w+1+uint64(i))&s.mask] = rest[i]
	}
	s.w.Store(w + need)
	s.unlock()
	return true
}

// lock spins on the CAS latch. Producers hold it for a handful of plain
// stores, so contention is bounded and brief.
//
//mifo:hotpath
func (s *segment) lock() {
	for !s.latch.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

//mifo:hotpath
func (s *segment) unlock() { s.latch.Store(0) }

// drain invokes fn on every buffered record in place, then advances the
// read cursor, and returns the number drained. Only the batcher calls
// it. Processing in place is safe: producers never overwrite a slot
// until r has advanced past it.
func (s *segment) drain(fn func(*hopRec)) int {
	r := s.r.Load()
	w := s.w.Load()
	for i := r; i != w; i++ {
		fn(&s.buf[i&s.mask])
	}
	s.r.Store(w)
	return int(w - r)
}

// jmix spreads a journey key over 64 bits (splitmix64 finalizer) for
// segment selection.
//
//mifo:hotpath
func jmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
