package audit

import (
	"io"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/topo"
)

// benchRouters is a two-router line: AS 1 forwards every packet to AS 2,
// which owns prefix 2 — a complete begin-to-deliver journey per run.
// The benchmarks drive Router.Forward directly (like the dataplane's own
// BenchmarkForwardDefaultPathNilHook) rather than Network.Send, whose
// Result.Hops bookkeeping allocates and would mask the recorder's cost.
func benchRouters(b *testing.B) (a, d *dataplane.Router, pd int, hookable []*dataplane.Router) {
	b.Helper()
	n := dataplane.NewNetwork()
	a = n.AddRouter(1)
	d = n.AddRouter(2)
	pa, pdi := n.Connect(a.ID, d.ID, dataplane.EBGP, topo.Customer, 1e9)
	a.FIB.Set(2, dataplane.FIBEntry{Out: pa, Alt: -1, AltVia: -1})
	d.Local[2] = true
	return a, d, pdi, []*dataplane.Router{a, d}
}

// runJourneys drives b.N complete two-hop journeys.
func runJourneys(b *testing.B, a, d *dataplane.Router, pd int) {
	b.Helper()
	p := &dataplane.Packet{Flow: dataplane.FlowKey{SrcAddr: 1, DstAddr: 2, Proto: 6}, Dst: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ID = uint16(i)
		p.TTL = 8
		p.Tag = false
		p.Encap = false
		a.Forward(p, -1)
		d.Forward(p, pd)
	}
	b.StopTimer()
}

// BenchmarkJourneyRecorderDisabled is the baseline: no hook attached,
// the recorder costs one nil check per forwarding decision. Guarded at
// 0 allocs by TestRecorderHotPathZeroAlloc.
func BenchmarkJourneyRecorderDisabled(b *testing.B) {
	a, d, pd, _ := benchRouters(b)
	runJourneys(b, a, d, pd)
}

// BenchmarkJourneyRecorderUnsampledFlow: hook attached but the flow
// falls outside the sampling rate — the per-hop cost is one flow hash
// and a compare, 0 allocs.
func BenchmarkJourneyRecorderUnsampledFlow(b *testing.B) {
	a, d, pd, rs := benchRouters(b)
	rec := NewRecorder(Options{Sample: 1e-9})
	defer rec.Close()
	hook := rec.RouterHook()
	for _, r := range rs {
		r.Hop = hook
	}
	runJourneys(b, a, d, pd)
	if rec.Stats().Records != 0 {
		b.Fatal("flow was sampled; benchmark measures the wrong path")
	}
}

// BenchmarkJourneyRecorderNoSink: 100% sampling without a JSONL writer —
// the amortised record-path cost a live run pays to keep counters,
// online invariant checking, and violation retention. The hot side is
// two ring pushes per journey; assembly and checking happen on the
// batcher goroutine (allocation accounting is process-global, so the
// 0 allocs/op this benchmark reports covers the batcher's steady state
// too).
func BenchmarkJourneyRecorderNoSink(b *testing.B) {
	a, d, pd, rs := benchRouters(b)
	rec := NewRecorder(Options{})
	hook := rec.RouterHook()
	for _, r := range rs {
		r.Hop = hook
	}
	runJourneys(b, a, d, pd)
	if err := rec.Close(); err != nil {
		b.Fatal(err)
	}
	if st := rec.Stats(); st.Violations != 0 {
		b.Fatalf("benchmark journeys violated invariants: %+v", st)
	}
}

// BenchmarkJourneyRecorderFullSampling: every journey recorded, checked,
// Merkle-sealed in batches, and encoded to a discarded JSONL sink — the
// full-cost ceiling. The JSON marshalling and hashing run on the batcher
// goroutine; the allocs/op reported here are the batcher's encoding
// cost (process-global accounting), not the hot record path's.
func BenchmarkJourneyRecorderFullSampling(b *testing.B) {
	a, d, pd, rs := benchRouters(b)
	rec := NewRecorder(Options{Writer: io.Discard})
	hook := rec.RouterHook()
	for _, r := range rs {
		r.Hop = hook
	}
	runJourneys(b, a, d, pd)
	if err := rec.Close(); err != nil {
		b.Fatal(err)
	}
	if st := rec.Stats(); st.Violations != 0 {
		b.Fatalf("benchmark journeys violated invariants: %+v", st)
	}
}
