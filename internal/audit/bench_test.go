package audit

import (
	"io"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/topo"
)

// benchNet is a two-router line: AS 1 forwards every packet to AS 2,
// which owns prefix 2 — a complete begin-to-deliver journey per Send.
func benchNet(b *testing.B) (*dataplane.Network, *dataplane.Router) {
	b.Helper()
	n := dataplane.NewNetwork()
	a := n.AddRouter(1)
	d := n.AddRouter(2)
	p, _ := n.Connect(a.ID, d.ID, dataplane.EBGP, topo.Customer, 1e9)
	a.FIB.Set(2, dataplane.FIBEntry{Out: p, Alt: -1, AltVia: -1})
	d.Local[2] = true
	return n, a
}

func runSend(b *testing.B, n *dataplane.Network, a *dataplane.Router) {
	p := &dataplane.Packet{Flow: dataplane.FlowKey{SrcAddr: 1, DstAddr: 2, Proto: 6}, Dst: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ID = uint16(i)
		p.TTL = 8
		p.Tag = false
		p.Encap = false
		n.Send(p, a.ID)
	}
}

// BenchmarkJourneyRecorderDisabled is the baseline: no hook attached, the
// wrapper costs one nil check per forwarding decision.
func BenchmarkJourneyRecorderDisabled(b *testing.B) {
	n, a := benchNet(b)
	runSend(b, n, a)
}

// BenchmarkJourneyRecorderUnsampledFlow: hook attached but the flow falls
// outside the sampling rate — the per-hop cost is one flow hash and a
// compare.
func BenchmarkJourneyRecorderUnsampledFlow(b *testing.B) {
	n, a := benchNet(b)
	rec := NewRecorder(Options{Sample: 1e-9})
	hook := rec.RouterHook()
	for _, r := range n.Routers {
		r.Hop = hook
	}
	runSend(b, n, a)
	if rec.Stats().Records != 0 {
		b.Fatal("flow was sampled; benchmark measures the wrong path")
	}
}

// BenchmarkJourneyRecorderFullSampling: every journey recorded, checked
// online, and encoded to a discarded JSONL sink — the full-cost ceiling.
func BenchmarkJourneyRecorderFullSampling(b *testing.B) {
	n, a := benchNet(b)
	rec := NewRecorder(Options{Writer: io.Discard})
	hook := rec.RouterHook()
	for _, r := range n.Routers {
		r.Hop = hook
	}
	runSend(b, n, a)
	if st := rec.Stats(); st.Violations != 0 {
		b.Fatalf("benchmark journeys violated invariants: %+v", st)
	}
}

// BenchmarkJourneyRecorderNoSink: full sampling without a JSONL writer —
// what a live run pays to keep only counters and violation retention.
func BenchmarkJourneyRecorderNoSink(b *testing.B) {
	n, a := benchNet(b)
	rec := NewRecorder(Options{})
	hook := rec.RouterHook()
	for _, r := range n.Routers {
		r.Hop = hook
	}
	runSend(b, n, a)
}
