package netsim

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteCSV serializes per-flow results for external analysis
// (id,src,dst,arrival,finish,throughput_mbps,switches,used_alt,reroutes,
// stalled_s,state).
func (r *Results) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"id", "src", "dst", "arrival", "finish", "throughput_mbps",
		"switches", "used_alt", "reroutes", "stalled_s", "state",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range r.Flows {
		f := &r.Flows[i]
		state := "done"
		switch {
		case f.Unroutable:
			state = "unroutable"
		case f.Stalled:
			state = "stalled"
		}
		rec := []string{
			strconv.Itoa(f.ID),
			strconv.Itoa(f.Src),
			strconv.Itoa(f.Dst),
			strconv.FormatFloat(f.Arrival, 'g', -1, 64),
			strconv.FormatFloat(f.Finish, 'g', -1, 64),
			strconv.FormatFloat(f.ThroughputBps/1e6, 'f', 3, 64),
			strconv.Itoa(f.Switches),
			strconv.FormatBool(f.UsedAlt),
			strconv.Itoa(f.Reroutes),
			strconv.FormatFloat(f.StalledTime, 'f', 6, 64),
			state,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
