package netsim

import (
	"math"
	"testing"

	"repro/internal/topo"
	"repro/internal/traffic"
)

const (
	mb   = 8e6 // bits
	gbps = 1e9 // bits/s
)

// fig2aGraph: AS 0 customer of 1, 2, 3; the latter peer in a triangle.
func fig2aGraph(t testing.TB) *topo.Graph {
	t.Helper()
	g, err := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// diamond: dst 0 provides 1 and 2; both provide src 3. Two same-class paths.
func diamond(t testing.TB) *topo.Graph {
	t.Helper()
	g, err := topo.NewBuilder(4).
		AddPC(0, 1).AddPC(0, 2).AddPC(1, 3).AddPC(2, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestSingleFlowFullRate(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{{ID: 0, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0}}
	res, err := Run(g, flows, Config{Policy: PolicyBGP})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "finish", res.Flows[0].Finish, 0.08, 1e-9)
	approx(t, "throughput", res.Flows[0].ThroughputBps, gbps, 1)
	if res.Flows[0].Switches != 0 || res.Flows[0].UsedAlt {
		t.Error("BGP flow must not switch paths")
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
	}
	res, err := Run(g, flows, Config{Policy: PolicyBGP})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		approx(t, "finish", res.Flows[i].Finish, 0.16, 1e-9)
		approx(t, "throughput", res.Flows[i].ThroughputBps, gbps/2, 1)
	}
}

func TestStaggeredArrivalsMaxMin(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0.04},
	}
	res, err := Run(g, flows, Config{Policy: PolicyBGP})
	if err != nil {
		t.Fatal(err)
	}
	// Flow 0: 0.04s at 1G (40 Mb), then shares at 0.5G: 40 Mb left -> done 0.12.
	approx(t, "flow0 finish", res.Flows[0].Finish, 0.12, 1e-9)
	// Flow 1: 0.5G until 0.12 (40 Mb), then 1G: done at 0.16.
	approx(t, "flow1 finish", res.Flows[1].Finish, 0.16, 1e-9)
}

func TestMIFODeflectsSecondFlow(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0.001},
	}
	res, err := Run(g, flows, Config{Policy: PolicyMIFO})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flows[1].UsedAlt {
		t.Fatal("second flow should have been deflected to the peer path")
	}
	// Both flows get the full link rate on disjoint paths.
	approx(t, "flow0 throughput", res.Flows[0].ThroughputBps, gbps, 1e6)
	approx(t, "flow1 throughput", res.Flows[1].ThroughputBps, gbps, 1e6)
	if res.OffloadFraction() != 0.5 {
		t.Errorf("offload = %v, want 0.5", res.OffloadFraction())
	}
}

func TestMIFOBeatsBGPUnderContention(t *testing.T) {
	g := fig2aGraph(t)
	var flows []traffic.Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, traffic.Flow{
			ID: i, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: float64(i) * 0.001,
		})
	}
	bgpRes, err := Run(g, flows, Config{Policy: PolicyBGP})
	if err != nil {
		t.Fatal(err)
	}
	mifoRes, err := Run(g, flows, Config{Policy: PolicyMIFO})
	if err != nil {
		t.Fatal(err)
	}
	if mifoRes.MeanThroughputMbps() <= bgpRes.MeanThroughputMbps() {
		t.Errorf("MIFO mean %v Mbps should beat BGP %v Mbps",
			mifoRes.MeanThroughputMbps(), bgpRes.MeanThroughputMbps())
	}
}

func TestMIFOSwitchBack(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 100 * mb, Arrival: 0},    // hog, done at 0.8
		{ID: 1, Src: 1, Dst: 0, SizeBits: 200 * mb, Arrival: 0.05}, // deflected, then returns
	}
	res, err := Run(g, flows, Config{Policy: PolicyMIFO})
	if err != nil {
		t.Fatal(err)
	}
	f1 := res.Flows[1]
	if !f1.UsedAlt {
		t.Fatal("flow 1 should have deflected")
	}
	if f1.Switches != 2 {
		t.Errorf("flow 1 switches = %d, want 2 (deflect + return)", f1.Switches)
	}
	h := res.SwitchHistogram()
	if h.Count(2) != 1 || h.Total() != 1 {
		t.Errorf("switch histogram = %v", h)
	}
}

func TestMIFOZeroDeploymentEqualsBGP(t *testing.T) {
	g := fig2aGraph(t)
	capable := make([]bool, g.N())
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0.001},
	}
	res, err := Run(g, flows, Config{Policy: PolicyMIFO, Capable: capable})
	if err != nil {
		t.Fatal(err)
	}
	if res.OffloadFraction() != 0 {
		t.Error("no AS is capable; nothing may deflect")
	}
	bgpRes, _ := Run(g, flows, Config{Policy: PolicyBGP})
	for i := range res.Flows {
		approx(t, "throughput parity", res.Flows[i].ThroughputBps, bgpRes.Flows[i].ThroughputBps, 1)
	}
}

func TestMIROChoosesWiderAlternate(t *testing.T) {
	g := diamond(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 3, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
		{ID: 1, Src: 3, Dst: 0, SizeBits: 10 * mb, Arrival: 0.001},
	}
	res, err := Run(g, flows, Config{Policy: PolicyMIRO})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flows[1].UsedAlt {
		t.Fatal("MIRO should move the second flow to the same-class alternate")
	}
	approx(t, "flow0 throughput", res.Flows[0].ThroughputBps, gbps, 1e6)
	approx(t, "flow1 throughput", res.Flows[1].ThroughputBps, gbps, 1e6)
}

func TestMIRONeverSwitchesMidFlow(t *testing.T) {
	g := diamond(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 3, Dst: 0, SizeBits: 100 * mb, Arrival: 0},
		{ID: 1, Src: 3, Dst: 0, SizeBits: 100 * mb, Arrival: 0.01},
	}
	res, err := Run(g, flows, Config{Policy: PolicyMIRO})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Flows {
		if f.Switches > 1 {
			t.Errorf("flow %d switched %d times; MIRO picks once at arrival", f.ID, f.Switches)
		}
	}
}

func TestMIFOStrictlyBeatsMIROOnPeerAlternatives(t *testing.T) {
	// In fig2a the alternatives are peer routes while the default is a
	// customer route: MIRO's strict same-class policy cannot use them, MIFO
	// can. This is the paper's core qualitative difference.
	g := fig2aGraph(t)
	var flows []traffic.Flow
	for i := 0; i < 6; i++ {
		flows = append(flows, traffic.Flow{
			ID: i, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: float64(i) * 0.002,
		})
	}
	miroRes, err := Run(g, flows, Config{Policy: PolicyMIRO})
	if err != nil {
		t.Fatal(err)
	}
	mifoRes, err := Run(g, flows, Config{Policy: PolicyMIFO})
	if err != nil {
		t.Fatal(err)
	}
	if miroRes.OffloadFraction() != 0 {
		t.Errorf("MIRO offload = %v, want 0 (no same-class alternatives)", miroRes.OffloadFraction())
	}
	if mifoRes.MeanThroughputMbps() <= miroRes.MeanThroughputMbps() {
		t.Errorf("MIFO %v Mbps should beat MIRO %v Mbps",
			mifoRes.MeanThroughputMbps(), miroRes.MeanThroughputMbps())
	}
}

func TestUnroutableFlow(t *testing.T) {
	g, err := topo.NewBuilder(4).AddPC(0, 1).AddPC(2, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
		{ID: 1, Src: 2, Dst: 0, SizeBits: 10 * mb, Arrival: 0}, // no route
	}
	res, err := Run(g, flows, Config{Policy: PolicyMIFO})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flows[1].Unroutable || res.Flows[1].ThroughputBps != 0 {
		t.Errorf("flow 1 = %+v, want unroutable", res.Flows[1])
	}
	if res.Flows[0].Unroutable || res.Flows[0].ThroughputBps != gbps {
		t.Errorf("flow 0 = %+v, want full rate", res.Flows[0])
	}
	if res.Routable() != 1 {
		t.Errorf("routable = %d, want 1", res.Routable())
	}
}

func TestRunValidation(t *testing.T) {
	g := fig2aGraph(t)
	if _, err := Run(g, []traffic.Flow{{Src: 1, Dst: 1}}, Config{}); err == nil {
		t.Error("src == dst must error")
	}
	if _, err := Run(g, []traffic.Flow{{Src: 1, Dst: 99}}, Config{}); err == nil {
		t.Error("out-of-range dst must error")
	}
	res, err := Run(g, nil, Config{})
	if err != nil || len(res.Flows) != 0 {
		t.Error("empty flow set should return empty results")
	}
}

func TestDeterminism(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := traffic.Uniform(traffic.UniformConfig{N: g.N(), Flows: 300, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(g, flows, Config{Policy: PolicyMIFO})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, flows, Config{Policy: PolicyMIFO})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs across identical runs:\n%+v\n%+v", i, a.Flows[i], b.Flows[i])
		}
	}
}

// Physical sanity on a random workload, for each policy: every routable
// flow completes after its arrival, at no more than link rate, and the
// conservation of bytes holds (throughput * duration == size).
func TestPhysicalInvariants(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := traffic.Uniform(traffic.UniformConfig{N: g.N(), Flows: 500, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{PolicyBGP, PolicyMIRO, PolicyMIFO} {
		res, err := Run(g, flows, Config{Policy: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		for i := range res.Flows {
			f := &res.Flows[i]
			if f.Unroutable {
				continue
			}
			if f.Finish <= f.Arrival {
				t.Fatalf("%v flow %d: finish %v <= arrival %v", pol, f.ID, f.Finish, f.Arrival)
			}
			if f.ThroughputBps > gbps*(1+1e-9) {
				t.Fatalf("%v flow %d: throughput %v exceeds capacity", pol, f.ID, f.ThroughputBps)
			}
			dur := f.Finish - f.Arrival
			if math.Abs(f.ThroughputBps*dur-f.SizeBits) > 1 {
				t.Fatalf("%v flow %d: conservation violated", pol, f.ID)
			}
			if pol == PolicyBGP && (f.Switches != 0 || f.UsedAlt) {
				t.Fatalf("BGP flow %d switched", f.ID)
			}
		}
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyBGP.String() != "BGP" || PolicyMIRO.String() != "MIRO" ||
		PolicyMIFO.String() != "MIFO" || Policy(9).String() != "Policy(9)" {
		t.Error("Policy.String wrong")
	}
}

func BenchmarkRunMIFO(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 500, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	flows, err := traffic.Uniform(traffic.UniformConfig{N: g.N(), Flows: 1000, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, flows, Config{Policy: PolicyMIFO}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunBGP(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 500, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	flows, err := traffic.Uniform(traffic.UniformConfig{N: g.N(), Flows: 1000, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, flows, Config{Policy: PolicyBGP}); err != nil {
			b.Fatal(err)
		}
	}
}
