package netsim

import (
	"repro/internal/bgp"
	"repro/internal/metrics"
)

// Results aggregates a run's per-flow outcomes and derives the paper's
// metrics.
type Results struct {
	// Policy is the routing policy that produced these results.
	Policy Policy
	// Capacity is the link capacity used, for normalizing throughput.
	Capacity float64
	// Flows holds one result per input flow, in input order.
	Flows []FlowResult
	// Routing counts the route-computation work of the run: the intact
	// table's full computes plus the repaired table's incremental work
	// across link failures and recoveries. CleanSkipped is the work a
	// from-scratch rebuild would have done for nothing.
	Routing bgp.TableStats
}

// Routable returns the number of flows that had a route.
func (r *Results) Routable() int {
	n := 0
	for i := range r.Flows {
		if !r.Flows[i].Unroutable {
			n++
		}
	}
	return n
}

// ThroughputCDF returns the distribution of per-flow throughput in Mbps —
// the quantity on the x axis of Figs. 5 and 6.
func (r *Results) ThroughputCDF() *metrics.CDF {
	c := &metrics.CDF{}
	for i := range r.Flows {
		if r.Flows[i].Unroutable {
			continue
		}
		c.Add(r.Flows[i].ThroughputBps / 1e6)
	}
	return c
}

// FractionAtLeastMbps returns the share of routable flows whose throughput
// reached the given Mbps — e.g. FractionAtLeastMbps(500) is the paper's
// "flows that can use at least 50% of the inter-AS link capacity".
func (r *Results) FractionAtLeastMbps(mbps float64) float64 {
	return r.ThroughputCDF().FractionAtLeast(mbps)
}

// OffloadFraction returns the share of routable flows that ever traveled an
// alternative path (Fig. 8).
func (r *Results) OffloadFraction() float64 {
	total, offloaded := 0, 0
	for i := range r.Flows {
		if r.Flows[i].Unroutable {
			continue
		}
		total++
		if r.Flows[i].UsedAlt {
			offloaded++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(offloaded) / float64(total)
}

// OffloadedBits returns the total traffic carried over alternative paths
// by data-plane deflection. It is exactly the sum the tsdb per-link
// offload series reach at the end of the run (both integrate the same
// rate*dt products), so the episode report can be cross-checked against
// the simulator's own accounting.
func (r *Results) OffloadedBits() float64 {
	total := 0.0
	for i := range r.Flows {
		total += r.Flows[i].OffloadedBits
	}
	return total
}

// SwitchHistogram returns the distribution of path-switch counts over the
// flows that switched at least once (Fig. 9 reports "of the flows that
// switched, 67.7% switched only once").
func (r *Results) SwitchHistogram() *metrics.Histogram {
	h := metrics.NewHistogram()
	for i := range r.Flows {
		if r.Flows[i].Switches > 0 {
			h.Add(r.Flows[i].Switches)
		}
	}
	return h
}

// CompletionCDF returns the distribution of flow completion times in
// seconds (Fig. 12(b)'s metric).
func (r *Results) CompletionCDF() *metrics.CDF {
	c := &metrics.CDF{}
	for i := range r.Flows {
		f := &r.Flows[i]
		if f.Unroutable {
			continue
		}
		c.Add(f.Finish - f.Arrival)
	}
	return c
}

// MeanThroughputMbps returns the average per-flow throughput in Mbps.
func (r *Results) MeanThroughputMbps() float64 {
	return r.ThroughputCDF().Mean()
}
