package netsim

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/topo"
)

// TestRepairedTableCacheAcrossFailRecoverFail drives the failure handlers
// directly through a fail → recover → fail-again cycle of the same link and
// checks the repaired-table cache the incremental bgp.Table provides:
//
//   - repairedTable always matches a from-scratch compute on the
//     equivalently cut graph (correctness),
//   - a destination whose route tree never touches the link keeps sharing
//     the intact table's memory through the whole cycle (no wasted work),
//   - the counters show one incremental compute and one skip per event —
//     where the old wholesale rebuild would have recomputed everything on
//     every event, including the recovery back to the intact topology.
func TestRepairedTableCacheAcrossFailRecoverFail(t *testing.T) {
	// failGraph plus a stub chain under AS 0. Destinations: 0 (route tree
	// uses link 1-3) and 2 (tree never touches 1-3: AS 3 reaches 2
	// directly, AS 1 goes through its provider 0).
	g, err := topo.NewBuilder(6).
		AddPC(0, 1).AddPC(0, 2).AddPC(1, 3).AddPC(2, 3).
		AddPC(0, 4).AddPC(4, 5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	dsts := []int{0, 2}
	s := &Sim{g: g, cfg: Config{Policy: PolicyBGP}.withDefaults()}
	s.buildLinks()
	s.tab = bgp.NewTable(g, dsts, 0)

	cut, err := topo.RemoveLinks(g, []topo.LinkRef{{A: 1, B: 3}})
	if err != nil {
		t.Fatal(err)
	}
	check := func(step string, want *topo.Graph) {
		t.Helper()
		for _, dst := range dsts {
			if got, scratch := s.repairedTable(dst), bgp.Compute(want, dst); !got.Equal(scratch) {
				t.Fatalf("%s: repairedTable(%d) diverges from scratch compute", step, dst)
			}
		}
	}
	clean := func(step string) {
		t.Helper()
		if s.repairedTab.Dest(2) != s.tab.Dest(2) {
			t.Fatalf("%s: clean destination 2 no longer shares the intact table", step)
		}
	}

	link := LinkFailure{A: 1, B: 3}
	s.handleFail(link)
	check("after fail", cut)
	clean("after fail")

	s.handleRecover(link)
	check("after recover", g)
	clean("after recover")
	if s.repairedTab == nil {
		t.Fatal("recovery discarded the repaired-table cache")
	}

	s.handleFail(link)
	check("after fail-again", cut)
	clean("after fail-again")

	st := s.repairedTab.Stats()
	if st.LinkEvents != 3 {
		t.Errorf("LinkEvents = %d, want 3", st.LinkEvents)
	}
	if st.FullComputes != 0 {
		t.Errorf("FullComputes = %d on the clone, want 0 (tables are shared, not rebuilt)", st.FullComputes)
	}
	// Each event dirties exactly destination 0 and skips destination 2.
	if st.IncrementalComputes != 3 || st.CleanSkipped != 3 {
		t.Errorf("incremental/skipped = %d/%d, want 3/3", st.IncrementalComputes, st.CleanSkipped)
	}
	// The intact table never recomputed anything after construction.
	if it := s.tab.Stats(); it.FullComputes != int64(len(dsts)) || it.IncrementalComputes != 0 {
		t.Errorf("intact table stats moved: %+v", it)
	}
}
