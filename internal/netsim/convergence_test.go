package netsim

import (
	"bytes"
	"testing"

	"repro/internal/obs/span"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// runTraced runs a sim with a span tracer attached and returns the
// analyzed span log.
func runTraced(t *testing.T, g *topo.Graph, flows []traffic.Flow, cfg Config) *span.Report {
	t.Helper()
	var buf bytes.Buffer
	tr := span.New(span.Options{Writer: &buf})
	cfg.Spans = tr
	if _, err := Run(g, flows, cfg); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := span.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return span.Analyze(recs)
}

// Every injected link event must open exactly one root span, and every
// event must reach data-plane consistency: the repair pipeline under the
// root carries recompute, daemon epoch, FIB commit, and generation swap
// spans in causal order.
func TestConvergenceTracingCoversEveryFailure(t *testing.T) {
	g := failGraph(t)
	flows := []traffic.Flow{{ID: 0, Src: 3, Dst: 0, SizeBits: 100 * mb, Arrival: 0}}
	rep := runTraced(t, g, flows, Config{
		Policy:             PolicyBGP,
		Failures:           []LinkFailure{{A: 3, B: 1, At: 0.2, RecoverAt: 1.0}},
		ReconvergenceDelay: 0.5,
	})

	if len(rep.Events) != 2 {
		t.Fatalf("events = %d, want 2 (one down, one up)", len(rep.Events))
	}
	if rep.OrphanTraces != 0 {
		t.Errorf("orphan traces = %d, want 0", rep.OrphanTraces)
	}
	down, up := rep.Events[0], rep.Events[1]
	if down.Root.Name != span.RootLinkDown || up.Root.Name != span.RootLinkUp {
		t.Fatalf("root names = %q, %q", down.Root.Name, up.Root.Name)
	}
	for _, ev := range rep.Events {
		if !ev.Complete {
			t.Errorf("%s (%d-%d) incomplete: %s", ev.Root.Name, ev.Root.A, ev.Root.B, ev.Why)
		}
		if ev.Dirty == 0 {
			t.Errorf("%s recomputed no destinations; the failed link is on the default path", ev.Root.Name)
		}
		for _, stage := range []string{"route_recompute", "daemon_epoch", "fib_commit", "fib_swap"} {
			if ev.Stage[stage].Count == 0 {
				t.Errorf("%s has no %s span", ev.Root.Name, stage)
			}
		}
		if ev.Root.A != 3 || ev.Root.B != 1 {
			t.Errorf("%s endpoints = (%d, %d), want (3, 1)", ev.Root.Name, ev.Root.A, ev.Root.B)
		}
	}
	if got := rep.CompleteEvents(); got != 2 {
		t.Errorf("complete events = %d, want 2", got)
	}
}

// A failure of a link no destination routes over must still be traced
// (the operator wants to see the event) and judged complete with zero
// dirty destinations and no data-plane work.
func TestConvergenceTracingZeroDirtyEvent(t *testing.T) {
	g := failGraph(t)
	flows := []traffic.Flow{{ID: 0, Src: 3, Dst: 0, SizeBits: 10 * mb, Arrival: 0}}
	rep := runTraced(t, g, flows, Config{
		Policy: PolicyBGP,
		// 3-2 is the unused alternative: dst 0's route tree (0<-1<-3,
		// 0<-2) does not traverse it.
		Failures: []LinkFailure{{A: 3, B: 2, At: 0.01}},
	})
	if len(rep.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(rep.Events))
	}
	ev := rep.Events[0]
	if !ev.Complete || ev.Dirty != 0 {
		t.Errorf("unused-link event: complete=%v dirty=%d (%s)", ev.Complete, ev.Dirty, ev.Why)
	}
	if ev.Stage["fib_swap"].Count != 0 {
		t.Errorf("unused-link failure swapped a FIB generation")
	}
}

// A partitioning failure withdraws routes; recovery restores them. Both
// events must be complete — withdrawal is a data-plane change (the entry
// is deleted, not left stale), so both directions swap generations.
func TestConvergenceTracingPartitionAndRecovery(t *testing.T) {
	g, err := topo.NewBuilder(3).AddPC(0, 1).AddPC(1, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	flows := []traffic.Flow{{ID: 0, Src: 2, Dst: 0, SizeBits: 100 * mb, Arrival: 0}}
	rep := runTraced(t, g, flows, Config{
		Policy:             PolicyBGP,
		Failures:           []LinkFailure{{A: 1, B: 0, At: 0.1, RecoverAt: 1.0}},
		ReconvergenceDelay: 0.5,
	})
	if len(rep.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(rep.Events))
	}
	for _, ev := range rep.Events {
		if !ev.Complete {
			t.Errorf("%s incomplete: %s", ev.Root.Name, ev.Why)
		}
		if ev.Stage["fib_swap"].Count == 0 {
			t.Errorf("%s: no generation swap; withdrawal must change the data plane", ev.Root.Name)
		}
	}
}

// With no tracer attached the failure path must not build the mirror
// deployment or emit anything.
func TestNoTracerNoMirror(t *testing.T) {
	g := failGraph(t)
	flows := []traffic.Flow{{ID: 0, Src: 3, Dst: 0, SizeBits: 10 * mb, Arrival: 0}}
	s := &Sim{g: g, cfg: Config{Policy: PolicyBGP}.withDefaults()}
	s.buildLinks()
	if err := s.precomputeRoutes(flows); err != nil {
		t.Fatal(err)
	}
	s.handleFail(LinkFailure{A: 3, B: 1})
	if s.mirror != nil {
		t.Fatal("mirror deployment built without a tracer")
	}
}
