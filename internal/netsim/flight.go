package netsim

import "repro/internal/audit"

// recordFlowPath hands the flow's just-installed path to the flight
// recorder as one flow-granularity record, with the online invariant
// checker run over it. deflectedAt is the index (into path) of the AS
// that installed this path by deflection, or -1 for default-path installs
// (arrival, return, control-plane repair).
//
// MIRO paths are not recorded: MIRO is control-plane negotiated multipath
// whose tunnels legitimately traverse segments a classic valley-free
// audit would reject, so the invariants do not apply to it.
func (s *Sim) recordFlowPath(st *flowState, deflectedAt int) {
	rec := s.cfg.Recorder
	if rec == nil || s.cfg.Policy == PolicyMIRO || len(st.path) == 0 {
		return
	}
	rec.RecordPath(audit.PathRecord{
		Flow:        uint64(st.ID),
		Dst:         int32(st.Dst),
		BaselineLen: len(st.defPath),
		Steps:       audit.PathSteps(s.g, st.path, deflectedAt),
	})
}
