// Package netsim is the flow-level network simulator used to reproduce the
// paper's NS-3 evaluation (Section IV): flows arrive as a Poisson process,
// links are 1 Gbps, bandwidth is shared max-min fairly, and the routing
// policy is plain BGP, MIRO, or MIFO.
//
// It is a fluid discrete-event simulator: between events every active flow
// transfers at its max-min fair rate; events are flow arrivals, flow
// completions, and periodic control epochs at which MIFO border routers
// re-evaluate deflections (and deflected flows fall back to a decongested
// default path). The per-packet mechanics — tag-check, encapsulation — are
// exercised separately in internal/dataplane; here their *decisions* are
// modeled at flow granularity, which is what the paper's throughput,
// offload, and stability figures measure.
package netsim

import (
	"fmt"
	"sort"

	"repro/internal/audit"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/miro"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Policy selects the routing behavior.
type Policy int8

const (
	// PolicyBGP uses single default paths (the baseline).
	PolicyBGP Policy = iota
	// PolicyMIRO negotiates control-plane alternatives at flow start.
	PolicyMIRO
	// PolicyMIFO deflects flows on the data plane at congested egresses.
	PolicyMIFO
)

// String returns a short policy name.
func (p Policy) String() string {
	switch p {
	case PolicyBGP:
		return "BGP"
	case PolicyMIRO:
		return "MIRO"
	case PolicyMIFO:
		return "MIFO"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Quality selects how a MIFO border router ranks alternative paths
// (Section III-C describes both mechanisms).
type Quality int8

const (
	// QualityProbe estimates each alternative's end-to-end available
	// bandwidth (the "selective probing" of Section II/III-C): the
	// bottleneck spare capacity along the spliced path.
	QualityProbe Quality = iota
	// QualityLocalLink is the paper's greedy shortcut: rank only by the
	// spare capacity of the directly connected inter-AS link. Cheaper and
	// fully local, but blind to downstream congestion — kept as an
	// ablation (see BenchmarkAblationQuality).
	QualityLocalLink
	// QualityFirst ignores measurements entirely and takes the best
	// admissible RIB alternative by route preference — an ablation
	// showing the value of load-aware selection.
	QualityFirst
)

// Config parameterizes a simulation run.
type Config struct {
	// Policy is the routing policy under test.
	Policy Policy
	// Quality is MIFO's alternative-ranking mechanism (default QualityProbe).
	Quality Quality
	// Capable marks MIFO/MIRO-capable ASes (nil = all capable).
	Capable []bool
	// LinkCapacityBps is the uniform inter-AS link capacity (default 1 Gbps).
	LinkCapacityBps float64
	// CongestionThreshold is the utilization at which an egress link counts
	// as congested and deflects flows (default 0.95).
	CongestionThreshold float64
	// ReturnThreshold is the utilization below which a deflected flow's
	// trigger link must fall before the flow returns to its default path
	// (default 0.3). The hysteresis gap keeps path switching stable.
	ReturnThreshold float64
	// ControlInterval is the spacing of MIFO control epochs in seconds
	// (default 0.005). MIFO reacts on the data plane — the tx queue is
	// observed per packet — so the flow-level model must re-evaluate at a
	// few-RTT granularity; coarser intervals under-sell the mechanism
	// (see BenchmarkAblationControlInterval).
	ControlInterval float64
	// MaxSwitches stops adapting a flow after this many path switches
	// (default 16); a safety valve, rarely reached thanks to hysteresis.
	MaxSwitches int
	// SwitchDamping multiplies the gain a further deflection must justify
	// for every switch a flow has already made (default 1.6); it is what
	// concentrates Fig. 9's switch distribution at one or two switches.
	SwitchDamping float64
	// MIRO configures the MIRO baseline.
	MIRO miro.Config
	// Workers bounds parallelism for route precomputation (0 = all CPUs).
	Workers int
	// Trace, when non-nil and enabled, receives the forwarding-decision
	// audit stream: every deflection and return with the flow, the
	// deciding border AS, and the spare-capacity ranking that drove the
	// choice (Section III-C), plus a snapshot event per control epoch.
	// Event times are virtual simulation time in nanoseconds.
	Trace *obs.Trace
	// Recorder, when non-nil, receives one flow-granularity flight record
	// per installed path (arrival, deflection, return, control-plane
	// repair), each run through the online invariant auditor. MIRO paths
	// are not recorded (see recordFlowPath).
	Recorder *audit.Recorder

	// Spans, when non-nil, traces every injected link event end to end:
	// the incremental route recompute, and — on a router-level mirror
	// deployment kept consistent with the repaired control plane — the
	// daemon epochs, per-router FIB commits, and data-plane generation
	// swaps the event causes. Each event becomes one span tree rooted at
	// conv_link_down / conv_link_up whose root duration is the wall-clock
	// time from failure injection to data-plane consistency (see
	// internal/obs/span and cmd/mifo-conv).
	Spans *span.Tracer

	// TSDB, when non-nil, receives per-epoch link-utilization samples
	// plus the cumulative deflection and offloaded-bits series the
	// episode analyzer attributes offload with (see tsdb.go). Sampling
	// happens at MIFO control epochs, so only MIFO runs produce series.
	TSDB *tsdb.Store
	// TSDBWatermark is the utilization above which a link's series are
	// materialized (default 0.8 x CongestionThreshold). Links that
	// deflect a flow are materialized regardless.
	TSDBWatermark float64

	// Failures injects link failures (an extension experiment: MIFO's
	// data-plane deflection reacts to a dead egress instantly, while BGP
	// and MIRO traffic stalls until routes reconverge).
	Failures []LinkFailure
	// ReconvergenceDelay is how long the control plane takes to repair
	// default routes after a failure or recovery (default 5 s).
	ReconvergenceDelay float64
}

func (c Config) withDefaults() Config {
	if c.LinkCapacityBps <= 0 {
		c.LinkCapacityBps = 1e9
	}
	if c.CongestionThreshold <= 0 {
		c.CongestionThreshold = 0.95
	}
	if c.ReturnThreshold <= 0 {
		c.ReturnThreshold = 0.3
	}
	if c.ControlInterval <= 0 {
		c.ControlInterval = 0.005
	}
	if c.MaxSwitches <= 0 {
		c.MaxSwitches = 16
	}
	if c.SwitchDamping <= 0 {
		c.SwitchDamping = 1.6
	}
	if c.ReconvergenceDelay <= 0 {
		c.ReconvergenceDelay = 5
	}
	return c
}

// FlowResult records one flow's fate.
type FlowResult struct {
	traffic.Flow
	// Finish is the completion time (seconds).
	Finish float64
	// ThroughputBps is SizeBits / (Finish - Arrival).
	ThroughputBps float64
	// Switches counts path switches (deflections plus returns), Fig. 9.
	Switches int
	// UsedAlt reports whether the flow ever traveled an alternative path
	// (Fig. 8's offload metric).
	UsedAlt bool
	// OffloadedBits is the traffic the flow transferred while deflected
	// onto an alternative path (MIFO data-plane offload; MIRO's
	// control-plane choice is not counted — see advance).
	OffloadedBits float64
	// Unroutable marks flows whose source had no BGP route to the
	// destination; they carry zero throughput.
	Unroutable bool

	// StalledTime is the total time the flow spent at zero rate (e.g.
	// black-holed behind a failed link awaiting reconvergence).
	StalledTime float64
	// Reroutes counts control-plane path repairs after failures
	// (distinct from MIFO's data-plane Switches).
	Reroutes int
	// Stalled marks flows that never completed (dead path, no recovery).
	Stalled bool
}

// flowState is the simulator's mutable view of one flow.
type flowState struct {
	traffic.Flow
	path    []int   // current AS path
	links   []int32 // directed link ids of path
	defPath []int   // default (BGP) path
	rate    float64
	left    float64 // bits remaining
	fixed   bool    // scratch for max-min computation

	onAlt    bool
	usedAlt  bool
	switches int
	trigLink int32 // link whose congestion pushed the flow off the default
	// offloadBits accumulates the bits the flow transferred while
	// deflected (MIFO only; see advance).
	offloadBits float64

	stalledTime float64
	reroutes    int
	repairEvt   *eventq.Event // pending reconvergence for this flow
	// withdrawn marks a flow whose route was withdrawn by the control
	// plane (destination unreachable after a failure): it gets no
	// bandwidth until a later reconvergence restores a route, even if the
	// failed link itself comes back in the meantime.
	withdrawn bool

	done       bool
	finish     float64
	unroutable bool
}

// Sim holds one simulation run.
type Sim struct {
	g   *topo.Graph
	cfg Config
	// tab holds the intact topology's routing tables for every flow
	// destination.
	tab *bgp.Table

	// CSR directed-link indexing: link v->u has id linkOff[v] + index of u
	// in g.Neighbors(v).
	linkOff  []int32
	numLinks int
	capac    []float64 // per-link capacity; 0 while failed
	load     []float64 // allocated bits/s per directed link
	residual []float64 // scratch for max-min
	count    []int32   // scratch for max-min
	flowsOn  [][]int32 // scratch: active flow indices per link
	touched  []int32   // links referenced by active flows
	rank     []string  // scratch: candidate ranking for trace notes

	// Failure state. repairedTab is the control plane's post-failure view:
	// a clone of tab (sharing its per-destination tables) evolved by
	// incremental LinkDown/LinkUp as failures come and go, so each topology
	// change recomputes only the destinations whose route trees it touches
	// instead of discarding every cached table. It is created on the first
	// failure and kept for the rest of the run — a fail → recover → fail
	// cycle of the same link reuses the evolved tables.
	repairedTab  *bgp.Table
	lastChangeAt float64 // time of the latest failure or recovery
	// mirror is the convergence-tracing router mirror (see convergence.go),
	// built lazily on the first traced link event.
	mirror *core.Deployment

	flows   []*flowState
	active  []int32 // indices of in-flight flows, insertion order
	queue   eventq.Queue
	now     float64
	compEvt *eventq.Event
	epochOn bool

	miroAlts map[int64][]miro.Alternate // memoized per (src,dst)

	// pathScratch backs the repaired-route walk in handleReconverge: the
	// common outcome is "path unchanged", so the walk reuses one buffer and
	// only paths that actually moved are copied out.
	pathScratch []int

	// Streaming mode (RunStream): flows are pulled one at a time from
	// stream, retired flows recycle their slot through free, and outcomes
	// fold into sres as they finish — nothing per-flow is retained. All
	// nil/zero in batch mode.
	stream      traffic.Stream
	streamLimit int // max flows to pull; <= 0 means drain the stream
	pulled      int
	free        []int32
	sres        *StreamResults
	streamErr   error

	// TSDB instrumentation (nil unless cfg.TSDB is set; see tsdb.go).
	tsRun       string
	tsWatermark float64
	tsUtilVec   *tsdb.SeriesVec
	tsDeflVec   *tsdb.SeriesVec
	tsOffVec    *tsdb.SeriesVec
	tsLinkU     []*tsdb.Series // per-link handles, materialized lazily
	tsLinkD     []*tsdb.Series
	tsLinkO     []*tsdb.Series
	deflCount   []float64 // cumulative deflections per link
	offBits     []float64 // cumulative offloaded bits per trigger link
	tsActive    *tsdb.Series
	tsAlt       *tsdb.Series
	tsMaxUtil   *tsdb.Series
}

const (
	evArrival = iota
	evCompletion
	evEpoch
	evFail
	evRecover
	evReconverge
)

// Run simulates the given flows over topology g and returns per-flow
// results in flow order.
func Run(g *topo.Graph, flows []traffic.Flow, cfg Config) (*Results, error) {
	cfg = cfg.withDefaults()
	if len(flows) == 0 {
		return &Results{Capacity: cfg.LinkCapacityBps}, nil
	}
	for _, f := range flows {
		if f.Src == f.Dst || f.Src < 0 || f.Src >= g.N() || f.Dst < 0 || f.Dst >= g.N() {
			return nil, fmt.Errorf("netsim: flow %d has bad endpoints (%d -> %d)", f.ID, f.Src, f.Dst)
		}
	}
	s := &Sim{g: g, cfg: cfg, miroAlts: make(map[int64][]miro.Alternate)}
	s.buildLinks()
	s.initTSDB()
	if err := s.precomputeRoutes(flows); err != nil {
		return nil, err
	}

	s.flows = make([]*flowState, len(flows))
	for i, f := range flows {
		st := &flowState{Flow: f, left: f.SizeBits, trigLink: -1}
		s.flows[i] = st
		s.queue.Push(f.Arrival, evArrival, int32(i))
	}
	for i := range cfg.Failures {
		fl := cfg.Failures[i]
		s.queue.Push(fl.At, evFail, i)
		if fl.RecoverAt > fl.At {
			s.queue.Push(fl.RecoverAt, evRecover, i)
		}
	}

	s.eventLoop()

	// One final sample pins the cumulative counters' end state, so the
	// episode report's totals match Results exactly.
	s.sampleTSDB()

	res := &Results{Capacity: cfg.LinkCapacityBps, Policy: cfg.Policy}
	res.Routing = s.tab.Stats()
	if s.repairedTab != nil {
		res.Routing.Add(s.repairedTab.Stats())
	}
	res.Flows = make([]FlowResult, len(flows))
	for i, st := range s.flows {
		fr := FlowResult{
			Flow:          st.Flow,
			Finish:        st.finish,
			Switches:      st.switches,
			UsedAlt:       st.usedAlt,
			OffloadedBits: st.offloadBits,
			Unroutable:    st.unroutable,
			StalledTime:   st.stalledTime,
			Reroutes:      st.reroutes,
			Stalled:       !st.done && !st.unroutable,
		}
		if !st.unroutable && st.done && st.finish > st.Arrival {
			fr.ThroughputBps = st.SizeBits / (st.finish - st.Arrival)
		}
		res.Flows[i] = fr
	}
	return res, nil
}

// eventLoop drains the queue. In streaming mode each handled arrival pulls
// the next flow from the source (arrival times are monotone, so one
// outstanding arrival event suffices); batch mode pre-pushed every arrival
// and pullNext is a no-op.
func (s *Sim) eventLoop() {
	for {
		ev := s.queue.Pop()
		if ev == nil {
			break
		}
		s.advance(ev.Time)
		switch ev.Kind {
		case evArrival:
			s.handleArrival(int(ev.Data.(int32)))
			s.pullNext()
			if s.streamErr != nil {
				return
			}
		case evCompletion:
			s.compEvt = nil
			s.handleCompletions()
		case evEpoch:
			s.epochOn = false
			s.handleEpoch()
		case evFail:
			s.handleFail(s.cfg.Failures[ev.Data.(int)])
		case evRecover:
			s.handleRecover(s.cfg.Failures[ev.Data.(int)])
		case evReconverge:
			s.handleReconverge(int(ev.Data.(int32)))
		}
	}
}

// buildLinks prepares the CSR directed-link index.
func (s *Sim) buildLinks() {
	n := s.g.N()
	s.linkOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		s.linkOff[v+1] = s.linkOff[v] + int32(s.g.Degree(v))
	}
	s.numLinks = int(s.linkOff[n])
	s.capac = make([]float64, s.numLinks)
	for i := range s.capac {
		s.capac[i] = s.cfg.LinkCapacityBps
	}
	s.load = make([]float64, s.numLinks)
	s.residual = make([]float64, s.numLinks)
	s.count = make([]int32, s.numLinks)
	s.flowsOn = make([][]int32, s.numLinks)
}

// linkID returns the id of the directed link v -> u. u must be a neighbor.
func (s *Sim) linkID(v, u int) int32 {
	nbs := s.g.Neighbors(v)
	i := sort.Search(len(nbs), func(i int) bool { return nbs[i].AS >= int32(u) })
	return s.linkOff[v] + int32(i)
}

// linkOwner returns the AS that owns directed link l (the v of v -> u).
func (s *Sim) linkOwner(l int32) int {
	return sort.Search(s.g.N(), func(v int) bool { return s.linkOff[v+1] > l })
}

// precomputeRoutes computes a BGP table for every distinct destination.
func (s *Sim) precomputeRoutes(flows []traffic.Flow) error {
	seen := map[int]bool{}
	var dsts []int
	for _, f := range flows {
		if !seen[f.Dst] {
			seen[f.Dst] = true
			dsts = append(dsts, f.Dst)
		}
	}
	sort.Ints(dsts)
	s.tab = bgp.NewTable(s.g, dsts, s.cfg.Workers)
	// The repaired table is a Clone of this one, so attaching the tracer
	// here makes every incremental recompute after a link event traced.
	s.tab.SetTracer(s.cfg.Spans)
	return nil
}

// advance progresses all active flows to time t.
func (s *Sim) advance(t float64) {
	dt := t - s.now
	if dt > 0 {
		for _, fi := range s.active {
			st := s.flows[fi]
			if st.rate <= 0 {
				st.stalledTime += dt
				continue
			}
			st.left -= st.rate * dt
			if st.left < 0 {
				st.left = 0
			}
			// Bits carried while deflected are the offload the episode
			// analyzer attributes to the trigger link. MIRO's one-shot
			// alternative choice never sets onAlt, so this accounting is
			// MIFO data-plane offload only.
			if st.onAlt {
				st.offloadBits += st.rate * dt
				if s.offBits != nil && st.trigLink >= 0 {
					s.offBits[st.trigLink] += st.rate * dt
				}
			}
		}
	}
	s.now = t
}

func (s *Sim) capable(v int) bool {
	return s.cfg.Capable == nil || s.cfg.Capable[v]
}

func (s *Sim) handleArrival(fi int) {
	st := s.flows[fi]
	table := s.tab.Dest(st.Dst)
	if table == nil || !table.Reachable(st.Src) {
		st.unroutable = true
		st.done = true
		st.finish = s.now
		s.retire(int32(fi))
		return
	}
	st.defPath = table.ASPath(st.Src)
	st.path = st.defPath
	st.links = s.pathLinks(st.path)
	s.recordFlowPath(st, -1) // the default install; adaptFlow records its own

	switch s.cfg.Policy {
	case PolicyMIRO:
		s.miroChoose(st, table)
	case PolicyMIFO:
		// A border router sees the congested egress the moment the first
		// packets queue; model that as an immediate deflection check.
		// Dead links read as fully congested, so this also covers fast
		// failover at flow start.
		s.adaptFlow(st, table)
	}
	// If the flow still lands on a failed link, it is black-holed until
	// the control plane repairs the route.
	if s.crossesDead(st.links) {
		s.scheduleRepair(fi)
	}

	s.active = append(s.active, int32(fi))
	if s.sres != nil && len(s.active) > s.sres.PeakActive {
		s.sres.PeakActive = len(s.active)
	}
	s.afterTopologyChange()
	if !s.epochOn && s.cfg.Policy == PolicyMIFO {
		s.queue.Push(s.now+s.cfg.ControlInterval, evEpoch, nil)
		s.epochOn = true
	}
}

func (s *Sim) handleCompletions() {
	const eps = 1e-3 // bits
	changed := false
	kept := s.active[:0]
	for _, fi := range s.active {
		st := s.flows[fi]
		if st.left <= eps {
			st.done = true
			st.left = 0
			st.finish = s.now
			changed = true
			s.retire(fi)
		} else {
			kept = append(kept, fi)
		}
	}
	s.active = kept
	if changed {
		s.afterTopologyChange()
	}
}

func (s *Sim) handleEpoch() {
	if s.cfg.Policy == PolicyMIFO {
		moved := 0
		for _, fi := range s.active {
			st := s.flows[fi]
			if st.switches >= s.cfg.MaxSwitches {
				continue
			}
			table := s.tab.Dest(st.Dst)
			if s.adaptFlow(st, table) {
				moved++
			}
		}
		if moved > 0 {
			s.afterTopologyChange()
		}
		s.traceEpoch(moved)
		s.sampleTSDB()
	}
	// Keep ticking while there is anything an epoch could still influence.
	// If every active flow is permanently stalled and no other event is
	// pending (no arrival, completion, failure or recovery), the epoch
	// chain must end or the simulation would spin forever.
	if len(s.active) > 0 && !s.queue.Empty() {
		s.queue.Push(s.now+s.cfg.ControlInterval, evEpoch, nil)
		s.epochOn = true
	}
}

// traceEpoch emits the control-epoch summary snapshot: active flows, flows
// moved this epoch, flows currently on an alternative path, and the worst
// link utilization (over intact links).
func (s *Sim) traceEpoch(moved int) {
	if !s.cfg.Trace.Enabled() {
		return
	}
	onAlt := 0
	for _, fi := range s.active {
		if s.flows[fi].onAlt {
			onAlt++
		}
	}
	maxUtil := 0.0
	for l := 0; l < s.numLinks; l++ {
		if s.capac[l] <= 0 {
			continue
		}
		if u := s.load[l] / s.capac[l]; u > maxUtil {
			maxUtil = u
		}
	}
	s.cfg.Trace.Emit(obs.Event{
		Time: int64(s.now * 1e9), Type: obs.EvEpoch,
		A: int64(len(s.active)), B: int64(moved), V: maxUtil,
		Note: fmt.Sprintf("%d/%d flows on alt paths, max link util %.2f", onAlt, len(s.active), maxUtil),
	})
}

// afterTopologyChange recomputes fair rates and reschedules the next
// completion event.
func (s *Sim) afterTopologyChange() {
	s.recomputeRates()
	s.queue.Cancel(s.compEvt)
	s.compEvt = nil
	next := -1.0
	for _, fi := range s.active {
		st := s.flows[fi]
		if st.rate <= 0 {
			continue
		}
		t := s.now + st.left/st.rate
		if next < 0 || t < next {
			next = t
		}
	}
	if next >= 0 {
		s.compEvt = s.queue.Push(next, evCompletion, nil)
	}
}

// pathLinks maps an AS path to directed link ids.
func (s *Sim) pathLinks(path []int) []int32 {
	links := make([]int32, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		links[i] = s.linkID(path[i], path[i+1])
	}
	return links
}

func (s *Sim) util(l int32) float64 {
	if s.capac[l] <= 0 {
		return 2 // a failed link is beyond congested
	}
	return s.load[l] / s.capac[l]
}

func (s *Sim) spare(l int32) float64 {
	sp := s.capac[l] - s.load[l]
	if sp < 0 {
		return 0
	}
	return sp
}
