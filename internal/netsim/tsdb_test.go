package netsim

import (
	"math"
	"testing"

	"repro/internal/obs/tsdb"
	"repro/internal/traffic"
)

// TestTSDBOffloadMatchesResults runs the hog-and-returner scenario with a
// TSDB attached and checks the acceptance property end to end: the
// congestion episode is detected, and the offloaded-bits total
// reconstructed from the per-link tsdb series agrees with the per-flow
// accounting in Results. Both sides accumulate the same rate*dt addends
// (advance feeds them in one statement), so the totals may differ only by
// floating-point regrouping across flows vs links.
func TestTSDBOffloadMatchesResults(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 100 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 200 * mb, Arrival: 0.05},
	}
	db := tsdb.NewStore(tsdb.Options{})
	res, err := Run(g, flows, Config{Policy: PolicyMIFO, TSDB: db})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flows[1].UsedAlt {
		t.Fatal("scenario drifted: flow 1 never deflected")
	}

	rep := tsdb.AnalyzeStore(db, tsdb.EpisodeSpec{})
	if rep.SeriesScanned == 0 {
		t.Fatal("no utilization series registered despite congestion")
	}
	if len(rep.Episodes) == 0 {
		t.Fatal("no congestion episodes detected in a run with deflections")
	}
	if rep.TotalDeflections == 0 {
		t.Fatal("deflection series recorded nothing")
	}

	want := res.OffloadedBits()
	if want == 0 {
		t.Fatal("Results counted no offloaded bits despite UsedAlt")
	}
	if diff := math.Abs(rep.TotalOffloadBits - want); diff > 1e-9*want {
		t.Fatalf("tsdb offload total %.6f != Results offload total %.6f (diff %.3g)",
			rep.TotalOffloadBits, want, diff)
	}

	// The episode on the congested egress must attribute some of that
	// offload: deflections happened because of it.
	attributed := 0.0
	for _, e := range rep.Episodes {
		attributed += e.OffloadBits
	}
	if attributed <= 0 {
		t.Fatalf("episodes attribute no offload: %+v", rep.Episodes)
	}
	if attributed > want*(1+1e-9) {
		t.Fatalf("episodes attribute %.0f bits, more than the run total %.0f", attributed, want)
	}
}

// TestTSDBRunLabelsSeparateRuns: two simulations sharing one store must
// land in disjoint series (distinct run labels), never panic on
// re-registration, and keep per-run totals separate.
func TestTSDBRunLabelsSeparateRuns(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 100 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 200 * mb, Arrival: 0.05},
	}
	db := tsdb.NewStore(tsdb.Options{})
	for i := 0; i < 2; i++ {
		if _, err := Run(g, flows, Config{Policy: PolicyMIFO, TSDB: db}); err != nil {
			t.Fatal(err)
		}
	}
	runs := map[string]bool{}
	for _, sd := range db.Gather("netsim_link_util") {
		if len(sd.Values) > 0 {
			runs[sd.Values[0]] = true
		}
	}
	if len(runs) != 2 {
		t.Fatalf("expected 2 distinct run labels, got %v", runs)
	}
}

// TestTSDBAbsentLeavesRunIdentical: instrumentation must not change
// simulation outcomes.
func TestTSDBAbsentLeavesRunIdentical(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 100 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 200 * mb, Arrival: 0.05},
	}
	plain, err := Run(g, flows, Config{Policy: PolicyMIFO})
	if err != nil {
		t.Fatal(err)
	}
	instr, err := Run(g, flows, Config{Policy: PolicyMIFO, TSDB: tsdb.NewStore(tsdb.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Flows {
		p, q := plain.Flows[i], instr.Flows[i]
		if p.ThroughputBps != q.ThroughputBps || p.UsedAlt != q.UsedAlt || p.Switches != q.Switches ||
			p.OffloadedBits != q.OffloadedBits {
			t.Fatalf("flow %d diverged with TSDB attached: %+v vs %+v", i, p, q)
		}
	}
}
