package netsim

// recomputeRates assigns every active flow its max-min fair rate via
// progressive filling: repeatedly find the most constrained link, freeze
// its flows at the link's equal share, and subtract their demand from the
// rest of the network.
//
// Scratch arrays are indexed by directed link id and reset lazily through
// the touched list, so each recomputation costs O(active links × rounds +
// flows × path length), independent of total topology size.
func (s *Sim) recomputeRates() {
	// Reset loads from the previous allocation.
	for _, l := range s.touched {
		s.load[l] = 0
	}
	s.touched = s.touched[:0]

	if len(s.active) == 0 {
		return
	}

	// Seed scratch state for links used by active flows. Withdrawn flows
	// have no route and consume nothing.
	unallocated := 0
	for _, fi := range s.active {
		st := s.flows[fi]
		st.fixed = false
		st.rate = 0
		if st.withdrawn {
			st.fixed = true
			unallocated++
			continue
		}
		for _, l := range st.links {
			if s.count[l] == 0 {
				s.residual[l] = s.capac[l]
				s.flowsOn[l] = s.flowsOn[l][:0]
				s.touched = append(s.touched, l)
			}
			s.count[l]++
			s.flowsOn[l] = append(s.flowsOn[l], fi)
		}
	}

	remaining := len(s.active) - unallocated
	for remaining > 0 {
		// Find the bottleneck: the unfrozen link with the smallest equal
		// share.
		best := int32(-1)
		bestShare := 0.0
		for _, l := range s.touched {
			if s.count[l] == 0 {
				continue
			}
			share := s.residual[l] / float64(s.count[l])
			if best < 0 || share < bestShare {
				best, bestShare = l, share
			}
		}
		if best < 0 {
			// No constrained links left (flows with zero-length paths do
			// not exist, so this cannot happen; guard anyway).
			break
		}
		if bestShare < 0 {
			bestShare = 0
		}
		// Freeze every unfixed flow crossing the bottleneck.
		for _, fi := range s.flowsOn[best] {
			st := s.flows[fi]
			if st.fixed {
				continue
			}
			st.fixed = true
			st.rate = bestShare
			remaining--
			for _, l := range st.links {
				s.residual[l] -= bestShare
				s.count[l]--
			}
		}
	}

	// Publish loads.
	for _, l := range s.touched {
		s.load[l] = s.capac[l] - s.residual[l]
		if s.load[l] < 0 {
			s.load[l] = 0
		}
		s.count[l] = 0
	}
}
