package netsim

import (
	"testing"

	"repro/internal/topo"
	"repro/internal/traffic"
)

// failGraph: src 3 reaches dst 0 via two same-length provider paths
// (3 -> 1 -> 0 default, 3 -> 2 -> 0 alternative).
func failGraph(t testing.TB) *topo.Graph {
	t.Helper()
	g, err := topo.NewBuilder(4).
		AddPC(0, 1).AddPC(0, 2).AddPC(1, 3).AddPC(2, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMIFOFastFailover(t *testing.T) {
	g := failGraph(t)
	flows := []traffic.Flow{{ID: 0, Src: 3, Dst: 0, SizeBits: 100 * mb, Arrival: 0}}
	res, err := Run(g, flows, Config{
		Policy:   PolicyMIFO,
		Failures: []LinkFailure{{A: 3, B: 1, At: 0.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.Stalled {
		t.Fatalf("MIFO flow stalled despite an alternative: %+v", f)
	}
	// Data-plane failover is immediate: zero (or epsilon) stall time.
	if f.StalledTime > 0.01 {
		t.Errorf("stalled %v s, want instant deflection", f.StalledTime)
	}
	if !f.UsedAlt || f.Switches == 0 {
		t.Errorf("flow did not deflect: %+v", f)
	}
	// 100 Mb... 800 Mbit at 1 Gbps ~ 0.8 s; failover adds nothing visible.
	if f.Finish > 0.9 {
		t.Errorf("finish = %v, want ~0.8 s", f.Finish)
	}
}

func TestBGPStallsUntilReconvergence(t *testing.T) {
	g := failGraph(t)
	flows := []traffic.Flow{{ID: 0, Src: 3, Dst: 0, SizeBits: 100 * mb, Arrival: 0}}
	res, err := Run(g, flows, Config{
		Policy:             PolicyBGP,
		Failures:           []LinkFailure{{A: 3, B: 1, At: 0.2}},
		ReconvergenceDelay: 2.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.Stalled {
		t.Fatalf("flow never repaired: %+v", f)
	}
	if f.StalledTime < 1.9 || f.StalledTime > 2.1 {
		t.Errorf("stalled %v s, want ~2 s (the reconvergence delay)", f.StalledTime)
	}
	if f.Reroutes != 1 {
		t.Errorf("reroutes = %d, want 1", f.Reroutes)
	}
	if f.Switches != 0 || f.UsedAlt {
		t.Errorf("BGP repair must not count as a MIFO switch: %+v", f)
	}
	// Total: 0.2 s transfer + 2 s stall + remaining transfer.
	if f.Finish < 2.7 || f.Finish > 3.0 {
		t.Errorf("finish = %v, want ~2.8 s", f.Finish)
	}
}

func TestStalledForeverWhenPartitioned(t *testing.T) {
	// Chain 2 -> 1 -> 0: cutting 1-0 partitions the destination.
	g, err := topo.NewBuilder(3).AddPC(0, 1).AddPC(1, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	flows := []traffic.Flow{{ID: 0, Src: 2, Dst: 0, SizeBits: 100 * mb, Arrival: 0}}
	res, err := Run(g, flows, Config{
		Policy:             PolicyMIFO,
		Failures:           []LinkFailure{{A: 1, B: 0, At: 0.1}},
		ReconvergenceDelay: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if !f.Stalled {
		t.Fatalf("flow should stall forever across a partition: %+v", f)
	}
	if f.ThroughputBps != 0 {
		t.Errorf("stalled flow reports throughput %v", f.ThroughputBps)
	}
}

func TestRecoveryRestoresService(t *testing.T) {
	g, err := topo.NewBuilder(3).AddPC(0, 1).AddPC(1, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	flows := []traffic.Flow{{ID: 0, Src: 2, Dst: 0, SizeBits: 100 * mb, Arrival: 0}}
	res, err := Run(g, flows, Config{
		Policy:             PolicyBGP,
		Failures:           []LinkFailure{{A: 1, B: 0, At: 0.1, RecoverAt: 1.0}},
		ReconvergenceDelay: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.Stalled {
		t.Fatalf("flow should resume after recovery: %+v", f)
	}
	// Stalls from 0.1 until recovery (1.0) + reconvergence (0.5) = 1.4 s.
	if f.StalledTime < 1.3 || f.StalledTime > 1.5 {
		t.Errorf("stalled %v s, want ~1.4 s", f.StalledTime)
	}
}

func TestFailureOnUnusedLinkIsHarmless(t *testing.T) {
	g := failGraph(t)
	flows := []traffic.Flow{{ID: 0, Src: 3, Dst: 0, SizeBits: 10 * mb, Arrival: 0}}
	res, err := Run(g, flows, Config{
		Policy:   PolicyBGP,
		Failures: []LinkFailure{{A: 3, B: 2, At: 0.01}, {A: 9, B: 1, At: 0.01}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.StalledTime > 0 || f.Stalled || f.Reroutes != 0 {
		t.Errorf("unrelated failure affected the flow: %+v", f)
	}
}

func TestMIROReconvergesLikeBGP(t *testing.T) {
	g := failGraph(t)
	flows := []traffic.Flow{{ID: 0, Src: 3, Dst: 0, SizeBits: 100 * mb, Arrival: 0}}
	res, err := Run(g, flows, Config{
		Policy:             PolicyMIRO,
		Failures:           []LinkFailure{{A: 3, B: 1, At: 0.2}},
		ReconvergenceDelay: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.Stalled {
		t.Fatalf("%+v", f)
	}
	if f.StalledTime < 0.9 {
		t.Errorf("MIRO stalled only %v s; its multipath is control-plane and should wait for reconvergence", f.StalledTime)
	}
}

func TestFailoverUnderLoadStillLoopFreeAndComplete(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 250, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := traffic.Uniform(traffic.UniformConfig{N: g.N(), Flows: 400, ArrivalRate: 2000, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Fail three well-connected links mid-run, recover one.
	failures := []LinkFailure{
		{A: 0, B: int(g.Neighbors(0)[0].AS), At: 0.05, RecoverAt: 0.5},
		{A: 1, B: int(g.Neighbors(1)[0].AS), At: 0.1},
		{A: 2, B: int(g.Neighbors(2)[0].AS), At: 0.15},
	}
	res, err := Run(g, flows, Config{
		Policy: PolicyMIFO, Failures: failures, ReconvergenceDelay: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	done, stalled := 0, 0
	for i := range res.Flows {
		f := &res.Flows[i]
		switch {
		case f.Unroutable:
		case f.Stalled:
			stalled++
		default:
			done++
			if f.ThroughputBps > gbps*(1+1e-9) {
				t.Fatalf("flow %d exceeds capacity", f.ID)
			}
		}
	}
	if done == 0 {
		t.Fatal("no flow completed")
	}
	// The topology is richly connected; only a tiny fraction may stall.
	if stalled > len(flows)/20 {
		t.Errorf("%d of %d flows stalled; failover not working", stalled, len(flows))
	}
}
