package netsim

import (
	"repro/internal/core"
	"repro/internal/obs/span"
)

// Convergence tracing.
//
// When Config.Spans carries a tracer, every injected link event becomes one
// causal span tree: a root span (conv_link_down / conv_link_up) opened at
// the moment the event is applied, with the whole repair pipeline under it —
// the control plane's incremental route recompute (route_recompute and its
// per-destination dest_recompute children, emitted by bgp.Table), then the
// daemon epochs, per-router FIB commits, and data-plane generation swaps the
// new routes cause. The root closes only after every affected router has
// republished, so its duration is the wall-clock time from failure event to
// data-plane consistency — the quantity cmd/mifo-conv turns into convergence
// CDFs and per-stage breakdowns.
//
// The flow-level simulator has no routers of its own, so the data-plane half
// runs on a mirror: a real core.Deployment over the same AS graph (one
// border router per AS, dense map FIBs), kept consistent with the repaired
// control-plane tables. The mirror's initial installation is untraced — the
// tracer is attached only after it, so the first traced spans belong to the
// first link event rather than to setup.

// tracing reports whether link events should be traced.
func (s *Sim) tracing() bool { return s.cfg.Spans.Enabled() }

// ensureMirror lazily builds the router-level mirror deployment.
func (s *Sim) ensureMirror() *core.Deployment {
	if s.mirror == nil {
		s.mirror = core.NewDeployment(s.g, core.Config{LinkCapacityBps: s.cfg.LinkCapacityBps})
		s.mirror.InstallDestinations(s.tab.All())
		s.mirror.SetTracer(s.cfg.Spans)
	}
	return s.mirror
}

// linkDownRepair runs the control-plane repair for one failed link,
// wrapped in a conv_link_down root span when tracing. Node -1 marks a
// network-scope event; A/B carry the endpoints and V the virtual
// simulation time of the injection.
func (s *Sim) linkDownRepair(f LinkFailure) {
	if !s.tracing() || s.repairedTab.LinkFailed(f.A, f.B) {
		s.repairedTab.LinkDown(f.A, f.B)
		return
	}
	root := s.cfg.Spans.StartRoot("conv_link_down", -1)
	root.A, root.B = int64(f.A), int64(f.B)
	root.V = s.now
	if s.repairedTab.LinkDownCtx(f.A, f.B, root.Context()) > 0 {
		s.mirrorConverge(root.Context(), f)
	}
	root.End()
}

// linkUpRepair is linkDownRepair's counterpart for a recovered link.
func (s *Sim) linkUpRepair(f LinkFailure) {
	if !s.tracing() || !s.repairedTab.LinkFailed(f.A, f.B) {
		s.repairedTab.LinkUp(f.A, f.B)
		return
	}
	root := s.cfg.Spans.StartRoot("conv_link_up", -1)
	root.A, root.B = int64(f.A), int64(f.B)
	root.V = s.now
	if s.repairedTab.LinkUpCtx(f.A, f.B, root.Context()) > 0 {
		s.mirrorConverge(root.Context(), f)
	}
	root.End()
}

// mirrorConverge pushes the repaired tables through the mirror deployment
// under parent: reinstall every destination (changed default routes and
// withdrawals become per-router FIB commits; untouched routers commit
// clean and stay silent), then run a daemon control epoch on each endpoint
// AS so alternative re-selection is part of the traced pipeline.
func (s *Sim) mirrorConverge(parent span.Context, f LinkFailure) {
	dep := s.ensureMirror()
	tables := s.repairedTab.All()
	dep.InstallDestinationsCtx(tables, parent)
	dep.Daemon(f.A).RefreshAllCtx(tables, parent)
	dep.Daemon(f.B).RefreshAllCtx(tables, parent)
}
