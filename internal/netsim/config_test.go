package netsim

import (
	"testing"

	"repro/internal/topo"
	"repro/internal/traffic"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.LinkCapacityBps != 1e9 || c.CongestionThreshold != 0.95 ||
		c.ReturnThreshold != 0.3 || c.ControlInterval != 0.005 ||
		c.MaxSwitches != 16 || c.SwitchDamping != 1.6 || c.ReconvergenceDelay != 5 {
		t.Errorf("defaults = %+v", c)
	}
	// Explicit values survive.
	c2 := Config{LinkCapacityBps: 5, MaxSwitches: 3}.withDefaults()
	if c2.LinkCapacityBps != 5 || c2.MaxSwitches != 3 {
		t.Errorf("overrides lost: %+v", c2)
	}
}

func TestMaxSwitchesHonored(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 250, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := traffic.Uniform(traffic.UniformConfig{N: g.N(), Flows: 600, ArrivalRate: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, flows, Config{Policy: PolicyMIFO, MaxSwitches: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Flows {
		// A flow may reach the cap and perform at most one final switch
		// already in flight; it must never exceed cap + 1.
		if f.Switches > 3 {
			t.Fatalf("flow %d switched %d times with MaxSwitches=2", f.ID, f.Switches)
		}
	}
}

func TestQualityFirstStillHelps(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0.001},
	}
	res, err := Run(g, flows, Config{Policy: PolicyMIFO, Quality: QualityFirst})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flows[1].UsedAlt {
		t.Fatal("route-preference quality should still deflect the contending flow")
	}
	if res.Flows[1].ThroughputBps < 0.9e9 {
		t.Errorf("deflected flow got %v bps", res.Flows[1].ThroughputBps)
	}
}

func TestCompletionCDF(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
		{ID: 1, Src: 2, Dst: 0, SizeBits: 10 * mb, Arrival: 1},
	}
	res, err := Run(g, flows, Config{Policy: PolicyBGP})
	if err != nil {
		t.Fatal(err)
	}
	cdf := res.CompletionCDF()
	if cdf.N() != 2 {
		t.Fatalf("FCT samples = %d", cdf.N())
	}
	// Disjoint flows: both complete in exactly 0.08 s.
	if cdf.Max() > 0.081 || cdf.Min() < 0.079 {
		t.Errorf("FCTs = [%v, %v], want ~0.08", cdf.Min(), cdf.Max())
	}
}
