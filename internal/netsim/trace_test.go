package netsim

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/traffic"
)

// TestTraceAuditsDeflectionDecisions drives the hog-and-returner scenario of
// TestMIFOSwitchBack with a trace attached and checks the audit trail names
// which flow was deflected, at which border AS, toward which neighbor, and
// the spare-capacity ranking that drove the choice (Section III-C).
func TestTraceAuditsDeflectionDecisions(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 100 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 200 * mb, Arrival: 0.05},
	}
	tr := obs.NewTrace(0)
	res, err := Run(g, flows, Config{Policy: PolicyMIFO, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flows[1].UsedAlt || res.Flows[1].Switches != 2 {
		t.Fatalf("scenario drifted: flow 1 usedAlt=%v switches=%d",
			res.Flows[1].UsedAlt, res.Flows[1].Switches)
	}

	var deflects, returns, epochs []obs.Event
	for _, e := range tr.Snapshot() {
		switch e.Type {
		case obs.EvDeflect:
			deflects = append(deflects, e)
		case obs.EvReturn:
			returns = append(returns, e)
		case obs.EvEpoch:
			epochs = append(epochs, e)
		}
	}
	if len(deflects) == 0 || len(returns) == 0 || len(epochs) == 0 {
		t.Fatalf("trace missing event kinds: %d deflects, %d returns, %d epochs",
			len(deflects), len(returns), len(epochs))
	}

	d := deflects[0]
	if d.Node != 1 {
		t.Errorf("deflection decided at AS %d, want border AS 1", d.Node)
	}
	if d.A != 1 {
		t.Errorf("deflected flow id = %d, want 1", d.A)
	}
	if d.B != 2 && d.B != 3 {
		t.Errorf("deflection via AS %d, want peer 2 or 3", d.B)
	}
	if d.V <= 0 {
		t.Errorf("deflection spare-capacity estimate = %v, want > 0", d.V)
	}
	if d.Time != int64(0.05*1e9) {
		t.Errorf("deflection at %d ns, want virtual arrival time %d", d.Time, int64(0.05*1e9))
	}
	// The ranking must list both admissible peer alternatives with their
	// quality estimates — the evidence for why d.B won.
	for _, want := range []string{"ranking [", "AS2:", "AS3:"} {
		if !strings.Contains(d.Note, want) {
			t.Errorf("deflection note %q missing %q", d.Note, want)
		}
	}

	r := returns[0]
	if r.A != 1 {
		t.Errorf("returned flow id = %d, want 1", r.A)
	}
	if r.Node != 1 {
		t.Errorf("return decided at AS %d, want trigger-link owner 1", r.Node)
	}
	if r.Time <= d.Time {
		t.Errorf("return at %d ns not after deflection at %d ns", r.Time, d.Time)
	}

	// The return is an epoch decision, so some epoch snapshot must count a
	// moved flow; while the flow is deflected, snapshots must count it on an
	// alternative path.
	var sawMoved, sawOnAlt bool
	last := int64(-1)
	for _, e := range epochs {
		if e.Time < last {
			t.Fatalf("epoch events out of order: %d after %d", e.Time, last)
		}
		last = e.Time
		if e.B >= 1 {
			sawMoved = true
		}
		if strings.HasPrefix(e.Note, "1/") {
			sawOnAlt = true
		}
		if e.A < 0 || e.V < 0 {
			t.Fatalf("bad epoch snapshot: %+v", e)
		}
	}
	if !sawMoved {
		t.Error("no epoch snapshot recorded a moved flow")
	}
	if !sawOnAlt {
		t.Error("no epoch snapshot counted the deflected flow on an alt path")
	}
}

// TestTraceDisabledLeavesRunIdentical checks a disabled (or absent) trace
// changes nothing about the simulation result.
func TestTraceDisabledLeavesRunIdentical(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0.001},
	}
	base, err := Run(g, flows, Config{Policy: PolicyMIFO})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace(8)
	tr.SetEnabled(false)
	traced, err := Run(g, flows, Config{Policy: PolicyMIFO, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 0 {
		t.Errorf("disabled trace recorded %d events", tr.Total())
	}
	for i := range base.Flows {
		if base.Flows[i] != traced.Flows[i] {
			t.Errorf("flow %d differs with trace attached: %+v vs %+v",
				i, base.Flows[i], traced.Flows[i])
		}
	}
}
