package netsim

import (
	"repro/internal/bgp"
)

// LinkFailure describes one injected failure of an undirected inter-AS
// link: both directions die at At and come back at RecoverAt (0 = never).
type LinkFailure struct {
	A, B      int
	At        float64
	RecoverAt float64
}

// handleFail kills both directions of the link and lets the policies react:
// MIFO-capable ASes adjacent to the failure deflect affected flows on the
// data plane immediately (a dead egress is the ultimate congestion signal);
// everything else waits for control-plane reconvergence.
func (s *Sim) handleFail(f LinkFailure) {
	if !s.validLink(f) {
		return
	}
	s.capac[s.linkID(f.A, f.B)] = 0
	s.capac[s.linkID(f.B, f.A)] = 0
	if s.repairedTab == nil {
		s.repairedTab = s.tab.Clone()
	}
	s.linkDownRepair(f)
	s.lastChangeAt = s.now

	for _, fi := range s.active {
		st := s.flows[fi]
		if !s.crossesDead(st.links) {
			continue
		}
		if s.cfg.Policy == PolicyMIFO {
			// Fast data-plane failover: the dead hop reads as congested,
			// so the standard deflection logic applies right now.
			s.adaptFlow(st, s.tab.Dest(st.Dst))
		}
		if s.crossesDead(st.links) {
			s.scheduleRepair(int(fi))
		}
	}
	s.afterTopologyChange()
}

// handleRecover restores the link and schedules control-plane convergence
// back to the original best paths.
func (s *Sim) handleRecover(f LinkFailure) {
	if !s.validLink(f) {
		return
	}
	s.capac[s.linkID(f.A, f.B)] = s.cfg.LinkCapacityBps
	s.capac[s.linkID(f.B, f.A)] = s.cfg.LinkCapacityBps
	if s.repairedTab != nil {
		s.linkUpRepair(f)
	}
	s.lastChangeAt = s.now

	// Every flow's control-plane route converges back towards the original
	// best path after the delay (the handler is a no-op for flows already
	// there); MIFO's data-plane deviations (onAlt) are untouched.
	for _, fi := range s.active {
		if !s.flows[fi].onAlt {
			s.scheduleRepair(int(fi))
		}
	}
	s.afterTopologyChange()
}

// handleReconverge applies the repaired control-plane route to one flow.
func (s *Sim) handleReconverge(fi int) {
	st := s.flows[fi]
	st.repairEvt = nil
	if st.done || st.unroutable || st.onAlt {
		return
	}
	table := s.repairedTable(st.Dst)
	if table == nil || !table.Reachable(st.Src) {
		// The destination is unreachable: the route is withdrawn and the
		// flow stays black-holed until a later reconvergence (triggered
		// by recovery) restores one.
		if !st.withdrawn {
			st.withdrawn = true
			s.afterTopologyChange()
		}
		return
	}
	walked := table.ASPathInto(st.Src, s.pathScratch)
	s.pathScratch = walked[:0]
	if samePath(walked, st.path) && !st.withdrawn {
		return
	}
	newPath := append([]int(nil), walked...) // escaping: flow state keeps it
	st.withdrawn = false
	s.setPath(st, newPath, st.rate)
	st.reroutes++
	// The repaired route is the flow's default until topology changes back.
	st.defPath = newPath
	s.recordFlowPath(st, -1)
	s.afterTopologyChange()
}

// scheduleRepair arms (once) the control-plane reconvergence timer for a
// flow. Convergence is network-wide: it completes ReconvergenceDelay after
// the topology change, so a flow arriving into an already-converged
// network is repaired immediately rather than waiting its own full delay.
// MIFO ASes run the same BGP underneath, so the fallback applies to every
// policy; MIFO's advantage is the instant data-plane reaction.
func (s *Sim) scheduleRepair(fi int) {
	st := s.flows[fi]
	if st.repairEvt != nil && !st.repairEvt.Canceled() {
		return
	}
	at := s.lastChangeAt + s.cfg.ReconvergenceDelay
	if at < s.now {
		at = s.now
	}
	st.repairEvt = s.queue.Push(at, evReconverge, int32(fi))
}

// repairedTable returns the BGP table for dst on the current (possibly
// degraded) topology. The repaired table is maintained incrementally — each
// link event only recomputed the destinations it could affect, and
// untouched destinations still share the intact table's memory — so this is
// a plain map read, never a from-scratch compute.
func (s *Sim) repairedTable(dst int) *bgp.Dest {
	if s.repairedTab == nil {
		return s.tab.Dest(dst)
	}
	return s.repairedTab.Dest(dst)
}

// crossesDead reports whether any link of the path has failed.
func (s *Sim) crossesDead(links []int32) bool {
	for _, l := range links {
		if s.capac[l] <= 0 {
			return true
		}
	}
	return false
}

// validLink reports whether the failure names an existing inter-AS link.
func (s *Sim) validLink(f LinkFailure) bool {
	n := s.g.N()
	if f.A < 0 || f.A >= n || f.B < 0 || f.B >= n {
		return false
	}
	return s.g.HasLink(f.A, f.B)
}

func samePath(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
