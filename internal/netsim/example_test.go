package netsim_test

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Two synchronized flows contend for one customer link; MIFO deflects the
// second onto a peer path and both transfer at full rate.
func ExampleRun() {
	g, _ := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 8e7, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 8e7, Arrival: 0.001},
	}

	bgpRes, _ := netsim.Run(g, flows, netsim.Config{Policy: netsim.PolicyBGP})
	mifoRes, _ := netsim.Run(g, flows, netsim.Config{Policy: netsim.PolicyMIFO})

	fmt.Printf("BGP : %.0f and %.0f Mbps\n",
		bgpRes.Flows[0].ThroughputBps/1e6, bgpRes.Flows[1].ThroughputBps/1e6)
	fmt.Printf("MIFO: %.0f and %.0f Mbps (offload %.0f%%)\n",
		mifoRes.Flows[0].ThroughputBps/1e6, mifoRes.Flows[1].ThroughputBps/1e6,
		100*mifoRes.OffloadFraction())
	// Output:
	// BGP : 503 and 503 Mbps
	// MIFO: 1000 and 1000 Mbps (offload 50%)
}
