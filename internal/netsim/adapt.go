package netsim

import (
	"fmt"
	"strings"

	"repro/internal/bgp"
	"repro/internal/obs"
)

// adaptFlow performs one MIFO control decision for a flow: return to a
// decongested default path, or deflect away from the first congested egress
// owned by a capable AS. It returns true when the flow's path changed.
//
// The decision mirrors the daemon + forwarding engine at flow granularity:
//
//   - congestion signal: utilization of the AS's egress link on the flow's
//     current path (the tx-queue ratio proxy);
//   - alternative choice: the RIB entry whose local link has the most spare
//     capacity (Section III-C's greedy rule);
//   - admissibility: the data-plane valley-free check with the entry bit
//     the packet would carry (Section III-A).
func (s *Sim) adaptFlow(st *flowState, table *bgp.Dest) bool {
	if st.done || st.unroutable || st.withdrawn {
		return false
	}

	// Switch back once the congestion that pushed the flow away clears
	// (hysteresis: ReturnThreshold < CongestionThreshold). The returning
	// flow books the link's spare capacity, so at most a couple of flows
	// return per control epoch — a stampede of returners would just
	// re-congest the default and oscillate.
	if st.onAlt && st.trigLink >= 0 && s.util(st.trigLink) <= s.cfg.ReturnThreshold {
		claim := s.spare(st.trigLink)
		if claim < st.rate {
			claim = st.rate
		}
		if s.cfg.Trace.Enabled() {
			s.cfg.Trace.Emit(obs.Event{
				Time: int64(s.now * 1e9), Type: obs.EvReturn,
				Node: int32(s.linkOwner(st.trigLink)), A: int64(st.ID), V: claim,
				Note: fmt.Sprintf("flow %d back on default: trigger link util %.2f <= %.2f",
					st.ID, s.util(st.trigLink), s.cfg.ReturnThreshold),
			})
		}
		s.setPath(st, st.defPath, claim)
		st.onAlt = false
		st.trigLink = -1
		st.switches++
		s.recordFlowPath(st, -1)
		return true
	}

	// Walk the current path looking for a congested egress at a capable AS.
	for i := 0; i+1 < len(st.path); i++ {
		u := st.path[i]
		if !s.capable(u) {
			continue
		}
		egress := st.links[i]
		if s.util(egress) < s.cfg.CongestionThreshold {
			continue
		}
		// Expected gain gate: moving must plausibly raise the flow's rate.
		// The border router knows the flow's current rate through the
		// queue; a new flow's expectation is the egress' remaining spare.
		// Every switch the flow has already made raises the bar — the
		// damping that keeps path switching stable (Fig. 9): almost all
		// flows should settle after one or two switches.
		expected := st.rate
		if expected <= 0 {
			expected = s.spare(egress)
		}
		if s.capac[egress] <= 0 {
			expected = 0 // the egress is dead: any live alternative wins
		}
		for k := 0; k < st.switches; k++ {
			expected *= s.cfg.SwitchDamping
		}
		// Entry bit at u: set when the packet entered from a customer or
		// originated here.
		bit := i == 0 || s.g.IsCustomer(u, st.path[i-1])
		if newPath, claim, ok := s.bestAlternative(table, st.path, i, bit, expected); ok {
			if s.cfg.Trace.Enabled() {
				s.cfg.Trace.Emit(obs.Event{
					Time: int64(s.now * 1e9), Type: obs.EvDeflect,
					Node: int32(u), A: int64(st.ID), B: int64(newPath[i+1]), V: claim,
					Note: fmt.Sprintf(
						"flow %d deflected at border AS %d: egress util %.2f, via AS %d; ranking [%s]",
						st.ID, u, s.util(egress), newPath[i+1], strings.Join(s.rank, " ")),
				})
			}
			if !st.onAlt {
				st.trigLink = egress
			}
			s.noteDeflection(egress)
			// Reserve the rate the flow expects to reach on the new path,
			// not its current (congested) rate: later decisions in this
			// control epoch must see the alternative as taken, or every
			// congested flow herds onto it and re-shares the congestion.
			if claim < st.rate {
				claim = st.rate
			}
			s.setPath(st, newPath, claim)
			st.onAlt = true
			st.usedAlt = true
			st.switches++
			s.recordFlowPath(st, i)
			return true
		}
	}
	return false
}

// deflectGain is the multiplicative improvement an alternative's spare
// capacity must offer over the flow's expected rate before a deflection is
// worthwhile. It keeps a flow that saturates a link alone (or the whole
// set of alternatives equally) from bouncing between paths.
const deflectGain = 1.1

// bestAlternative selects the alternative path at hop i of the current
// path: among RIB entries other than the current next hop, admissible
// under the valley-free check and loop-free after splicing, pick the one
// with the best quality (probe: spliced-path bottleneck spare; local-link:
// spare of the direct link). The winner must beat the flow's expected rate
// by deflectGain. It returns the full new path and the rate the flow can
// expect there (the quality estimate).
//
// When the trace is enabled it also rebuilds s.rank with every admissible
// candidate's quality estimate ("AS<via>:<spare bps>", RIB order), so the
// caller's deflection event records the ranking that drove the choice.
func (s *Sim) bestAlternative(table *bgp.Dest, path []int, i int, bit bool, expected float64) ([]int, float64, bool) {
	u := path[i]
	curNext := path[i+1]
	ranking := s.cfg.Trace.Enabled()
	if ranking {
		s.rank = s.rank[:0]
	}
	var bestPath []int
	bestSpare := -1.0
	for _, alt := range bgp.RIB(s.g, table, u) {
		if int(alt.Via) == curNext {
			continue
		}
		// Tag-check (Eq. 3): entered from customer, or exiting to customer.
		if !bit && alt.Class != bgp.ClassCustomer {
			continue
		}
		l := s.linkID(u, int(alt.Via))
		if s.util(l) >= s.cfg.CongestionThreshold {
			continue // no point moving onto an equally congested link
		}
		sp := s.spare(l)
		if sp <= 0 || sp <= expected*deflectGain {
			continue // not enough local headroom to be worth a switch
		}
		cand := s.splice(path[:i], table, u, int(alt.Via))
		if cand == nil {
			continue // splicing would revisit an AS
		}
		switch s.cfg.Quality {
		case QualityProbe:
			// Selective probing: quality is the bottleneck spare of the
			// path from the deflection point onward.
			sp = s.bottleneckSpare(s.pathLinks(cand[i:]))
			if sp <= expected*deflectGain {
				continue
			}
		case QualityFirst:
			// Route preference only: the RIB is sorted best-first, so
			// the first admissible candidate wins.
			if ranking {
				s.rank = append(s.rank, fmt.Sprintf("AS%d:%.0f", alt.Via, sp))
			}
			return cand, sp, true
		}
		if ranking {
			s.rank = append(s.rank, fmt.Sprintf("AS%d:%.0f", alt.Via, sp))
		}
		if sp > bestSpare {
			bestPath, bestSpare = cand, sp
		}
	}
	return bestPath, bestSpare, bestPath != nil
}

// splice builds prefix + u's RIB route via the given neighbor, rejecting
// paths that would revisit an AS. (The valley-free check makes true
// forwarding loops impossible; a revisit can still arise transiently in
// the fluid model when the prefix itself was already deflected, so we
// refuse such splices the way the loop filter would.)
func (s *Sim) splice(prefix []int, table *bgp.Dest, u, via int) []int {
	suffix := bgp.PathVia(table, u, via)
	if suffix == nil {
		return nil
	}
	path := make([]int, 0, len(prefix)+len(suffix))
	path = append(path, prefix...)
	path = append(path, suffix...)
	seen := make(map[int]struct{}, len(path))
	for _, v := range path {
		if _, dup := seen[v]; dup {
			return nil
		}
		seen[v] = struct{}{}
	}
	// Never splice across a failed link: the border router's RIB entry may
	// predate the failure, but its line card knows the link is down.
	for i := 0; i+1 < len(path); i++ {
		if s.capac[s.linkID(path[i], path[i+1])] <= 0 {
			return nil
		}
	}
	return path
}

// setPath moves a flow onto a new path, releasing its current rate from
// the old links and booking `claim` on the new ones so that decisions made
// later in the same control epoch see the shift; exact loads are restored
// by the next recomputeRates.
func (s *Sim) setPath(st *flowState, path []int, claim float64) {
	for _, l := range st.links {
		s.load[l] -= st.rate
		if s.load[l] < 0 {
			s.load[l] = 0
		}
	}
	st.path = path
	st.links = s.pathLinks(path)
	for _, l := range st.links {
		s.load[l] += claim
	}
}

// miroChoose picks the flow's path at arrival under MIRO: if the default
// path's bottleneck is congested and the source can negotiate, use the
// negotiated alternative with the widest bottleneck. MIRO is control-plane
// multipath: the choice is made once, at flow start.
func (s *Sim) miroChoose(st *flowState, table *bgp.Dest) {
	bn := s.bottleneckUtil(st.links)
	if bn < s.cfg.CongestionThreshold {
		return // default path is fine
	}
	key := int64(st.Src)<<32 | int64(st.Dst)
	alts, ok := s.miroAlts[key]
	if !ok {
		alts = s.cfg.MIRO.Alternates(s.g, table, st.Src, s.cfg.Capable)
		s.miroAlts[key] = alts
	}
	bestSpare := s.bottleneckSpare(st.links)
	var bestPath []int
	for _, a := range alts {
		links := s.pathLinks(a.Path)
		if sp := s.bottleneckSpare(links); sp > bestSpare {
			bestSpare = sp
			bestPath = a.Path
		}
	}
	if bestPath != nil {
		st.path = bestPath
		st.links = s.pathLinks(bestPath)
		st.usedAlt = true
		st.switches++
	}
}

func (s *Sim) bottleneckUtil(links []int32) float64 {
	worst := 0.0
	for _, l := range links {
		if u := s.util(l); u > worst {
			worst = u
		}
	}
	return worst
}

func (s *Sim) bottleneckSpare(links []int32) float64 {
	best := s.cfg.LinkCapacityBps
	for _, l := range links {
		if sp := s.spare(l); sp < best {
			best = sp
		}
	}
	return best
}
