package netsim

import (
	"fmt"
	"strconv"

	"repro/internal/obs/tsdb"
)

// TSDB instrumentation: when Config.TSDB is set, every control epoch
// samples per-link utilization plus the cumulative deflection and
// offloaded-bits counters the episode analyzer joins against, and a few
// run-wide gauges. Link series are registered lazily — only links that
// climb past the watermark (or actually deflect a flow) get a series —
// so a 1000-AS topology with ~9000 directed links stays cheap: the
// sample path touches an O(numLinks) float scan (the same cost as the
// existing traceEpoch) and a handful of ring writes.
//
// Series are labeled (run, link): one simulator process runs many sims
// (a fig8 sweep is ten), and the run label keeps their time axes and
// cumulative counters from mixing. Timestamps are virtual simulation
// time in nanoseconds, like trace events.

// initTSDB resolves series handles and installs the episode spec.
// Called from Run after buildLinks; everything is nil when no store is
// configured, and every hook checks that.
func (s *Sim) initTSDB() {
	db := s.cfg.TSDB
	if db == nil {
		return
	}
	s.tsWatermark = s.cfg.TSDBWatermark
	if s.tsWatermark <= 0 {
		s.tsWatermark = 0.8 * s.cfg.CongestionThreshold
	}
	s.tsRun = strconv.FormatInt(db.NextRun(), 10)
	s.tsUtilVec = db.SeriesVec("netsim_link_util", "directed inter-AS link utilization (fraction of capacity; 2 = failed)", "run", "link")
	s.tsDeflVec = db.SeriesVec("netsim_link_deflections", "cumulative flows deflected off this link (per run)", "run", "link")
	s.tsOffVec = db.SeriesVec("netsim_link_offload_bits", "cumulative bits moved off this link by deflection (per run)", "run", "link")
	s.tsActive = db.SeriesVec("netsim_active_flows", "flows in flight", "run").With(s.tsRun)
	s.tsAlt = db.SeriesVec("netsim_alt_flows", "flows currently on an alternative path", "run").With(s.tsRun)
	s.tsMaxUtil = db.SeriesVec("netsim_max_link_util", "worst intact-link utilization", "run").With(s.tsRun)
	s.tsLinkU = make([]*tsdb.Series, s.numLinks)
	s.tsLinkD = make([]*tsdb.Series, s.numLinks)
	s.tsLinkO = make([]*tsdb.Series, s.numLinks)
	s.deflCount = make([]float64, s.numLinks)
	s.offBits = make([]float64, s.numLinks)
	db.SetEpisodeSpec(tsdb.EpisodeSpec{
		Util:        "netsim_link_util",
		Deflections: "netsim_link_deflections",
		OffloadBits: "netsim_link_offload_bits",
		Threshold:   s.cfg.CongestionThreshold,
		// Congestion must span at least two control epochs to be an
		// episode; anything shorter is the single-epoch transient that
		// deflection itself resolves.
		Window: int64(2 * s.cfg.ControlInterval * 1e9),
		// A gap wider than ~20 epochs means the epoch chain paused (all
		// flows done or stalled), not that congestion persisted.
		MaxGap: int64(20 * s.cfg.ControlInterval * 1e9),
	})
}

// linkLabel renders directed link l as "v->u".
func (s *Sim) linkLabel(l int32) string {
	v := s.linkOwner(l)
	u := s.g.Neighbors(v)[l-s.linkOff[v]].AS
	return fmt.Sprintf("%d->%d", v, u)
}

// registerLinkSeries materializes the three per-link series for l.
func (s *Sim) registerLinkSeries(l int32) {
	lbl := s.linkLabel(l)
	s.tsLinkU[l] = s.tsUtilVec.With(s.tsRun, lbl)
	s.tsLinkD[l] = s.tsDeflVec.With(s.tsRun, lbl)
	s.tsLinkO[l] = s.tsOffVec.With(s.tsRun, lbl)
}

// noteDeflection attributes one deflection to the congested egress and
// force-registers its series: a link that deflected a flow is
// interesting even if sampling never caught it above the watermark.
func (s *Sim) noteDeflection(egress int32) {
	if s.deflCount == nil {
		return
	}
	s.deflCount[egress]++
	if s.tsLinkU[egress] == nil {
		s.registerLinkSeries(egress)
	}
}

// sampleTSDB records one control-epoch snapshot: utilization plus the
// cumulative counters for every materialized link, and the run gauges.
// Run calls it once more after the event loop so the final cumulative
// values always land in the store — that last sample is what makes the
// episode report's offload totals agree exactly with Results.
func (s *Sim) sampleTSDB() {
	if s.tsUtilVec == nil {
		return
	}
	ts := int64(s.now * 1e9)
	maxUtil := 0.0
	for l := 0; l < s.numLinks; l++ {
		u := s.util(int32(l))
		if s.capac[l] > 0 && u > maxUtil {
			maxUtil = u
		}
		if s.tsLinkU[l] == nil {
			if u < s.tsWatermark {
				continue
			}
			s.registerLinkSeries(int32(l))
		}
		s.tsLinkU[l].Sample(ts, u)
		s.tsLinkD[l].Sample(ts, s.deflCount[l])
		s.tsLinkO[l].Sample(ts, s.offBits[l])
	}
	onAlt := 0
	for _, fi := range s.active {
		if s.flows[fi].onAlt {
			onAlt++
		}
	}
	s.tsActive.Sample(ts, float64(len(s.active)))
	s.tsAlt.Sample(ts, float64(onAlt))
	s.tsMaxUtil.Sample(ts, maxUtil)
}
