package netsim

// Streaming simulation mode: RunStream drives flows pulled one at a time
// from a traffic.Stream through the same event loop as Run, with bounded
// memory. Only one arrival event is outstanding at a time (generators emit
// monotone arrival times), finished flows fold their outcome into a
// StreamResults aggregate and recycle their flow slot, and nothing per-flow
// is retained — a paper-scale run pushes millions of flows through a few
// hundred live slots. Flight-recorder sampling, span tracing, and TSDB
// instrumentation work exactly as in batch mode: they hook the same
// handlers.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bgp"
	"repro/internal/miro"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Throughput histogram geometry: fixed 5 Mbps buckets to 1 Gbps (the
// uniform link capacity), plus one overflow bucket. Fixed buckets keep the
// aggregate O(1) per flow where metrics.CDF would retain every sample.
const (
	tpBucketMbps = 5.0
	numTPBuckets = 200
)

// StreamResults aggregates a streaming run. Unlike Results it holds no
// per-flow state — counters, sums, and a fixed-bucket throughput histogram.
type StreamResults struct {
	// Policy and Capacity mirror the run configuration.
	Policy   Policy
	Capacity float64

	// Flows is the total number of flows pulled from the stream.
	Flows int
	// Unroutable counts flows whose source had no route (including flows
	// towards destinations not in the installed set).
	Unroutable int
	// Completed counts flows that transferred all their bits.
	Completed int
	// StalledForever counts routable flows that never completed.
	StalledForever int
	// UsedAlt counts flows that ever traveled an alternative path.
	UsedAlt int
	// Switches sums path switches across all flows.
	Switches int
	// Reroutes sums control-plane repairs across all flows.
	Reroutes int
	// OffloadedBits totals traffic carried over alternative paths.
	OffloadedBits float64
	// StalledTime totals zero-rate seconds across all flows.
	StalledTime float64
	// PeakActive is the maximum number of concurrently active flows.
	PeakActive int
	// PeakFlowSlots is the flow-state high-water mark — the run's actual
	// per-flow memory footprint (≈ PeakActive + 1, regardless of Flows).
	PeakFlowSlots int
	// Routing counts the run's route-computation work, as in Results.
	Routing bgp.TableStats

	hist    [numTPBuckets + 1]int64
	sumMbps float64
	samples int64
}

// observe folds one finished (or end-of-run stalled) flow's outcome in.
func (r *StreamResults) observe(st *flowState) {
	if st.unroutable {
		r.Unroutable++
		return
	}
	if st.done {
		r.Completed++
		mbps := 0.0
		if st.finish > st.Arrival {
			mbps = st.SizeBits / (st.finish - st.Arrival) / 1e6
		}
		r.addThroughput(mbps)
	} else {
		r.StalledForever++
		r.addThroughput(0)
	}
	if st.usedAlt {
		r.UsedAlt++
	}
	r.Switches += st.switches
	r.Reroutes += st.reroutes
	r.OffloadedBits += st.offloadBits
	r.StalledTime += st.stalledTime
}

func (r *StreamResults) addThroughput(mbps float64) {
	idx := int(mbps / tpBucketMbps)
	if idx > numTPBuckets {
		idx = numTPBuckets
	}
	r.hist[idx]++
	r.sumMbps += mbps
	r.samples++
}

// Routable returns the number of flows that had a route.
func (r *StreamResults) Routable() int { return r.Flows - r.Unroutable }

// MeanThroughputMbps returns the average per-flow throughput in Mbps over
// routable flows (stalled flows count as zero, matching Results).
func (r *StreamResults) MeanThroughputMbps() float64 {
	if r.samples == 0 {
		return 0
	}
	return r.sumMbps / float64(r.samples)
}

// FractionAtLeastMbps returns the share of routable flows whose throughput
// reached the given Mbps, at the histogram's 5 Mbps granularity (exact for
// thresholds that are multiples of the bucket width; conservative — the
// partial bucket is excluded — otherwise).
func (r *StreamResults) FractionAtLeastMbps(mbps float64) float64 {
	if r.samples == 0 {
		return 0
	}
	idx := int(math.Ceil(mbps / tpBucketMbps))
	if idx < 0 {
		idx = 0
	}
	if idx > numTPBuckets {
		idx = numTPBuckets
	}
	var n int64
	for i := idx; i <= numTPBuckets; i++ {
		n += r.hist[i]
	}
	return float64(n) / float64(r.samples)
}

// OffloadFraction returns the share of routable flows that ever traveled an
// alternative path.
func (r *StreamResults) OffloadFraction() float64 {
	if r.Routable() == 0 {
		return 0
	}
	return float64(r.UsedAlt) / float64(r.Routable())
}

// RunStream simulates flows pulled from src over topology g with routes
// installed for exactly the given destinations; flows towards other
// destinations count as unroutable. maxFlows bounds the pull count
// (<= 0 drains the stream — the stream must be bounded then, or the run
// never ends). Aggregation is online: memory stays proportional to the
// peak number of concurrently active flows, not to maxFlows.
func RunStream(g *topo.Graph, src traffic.Stream, dsts []int, maxFlows int, cfg Config) (*StreamResults, error) {
	cfg = cfg.withDefaults()
	for _, d := range dsts {
		if d < 0 || d >= g.N() {
			return nil, fmt.Errorf("netsim: destination %d out of range [0, %d)", d, g.N())
		}
	}
	sorted := append([]int(nil), dsts...)
	sort.Ints(sorted)

	s := &Sim{g: g, cfg: cfg, miroAlts: make(map[int64][]miro.Alternate)}
	s.sres = &StreamResults{Policy: cfg.Policy, Capacity: cfg.LinkCapacityBps}
	s.stream = src
	s.streamLimit = maxFlows
	s.buildLinks()
	s.initTSDB()
	s.tab = bgp.NewTable(g, sorted, cfg.Workers)
	s.tab.SetTracer(cfg.Spans)

	for i := range cfg.Failures {
		fl := cfg.Failures[i]
		s.queue.Push(fl.At, evFail, i)
		if fl.RecoverAt > fl.At {
			s.queue.Push(fl.RecoverAt, evRecover, i)
		}
	}
	s.pullNext()
	if s.streamErr == nil {
		s.eventLoop()
	}
	if s.streamErr != nil {
		return nil, s.streamErr
	}
	s.sampleTSDB()

	// Flows still active at queue exhaustion are stalled forever.
	for _, fi := range s.active {
		s.sres.observe(s.flows[fi])
	}
	s.sres.PeakFlowSlots = len(s.flows)
	s.sres.Routing = s.tab.Stats()
	if s.repairedTab != nil {
		s.sres.Routing.Add(s.repairedTab.Stats())
	}
	return s.sres, nil
}

// pullNext pulls one flow from the stream (if any remain under the limit),
// assigns it a slot — recycled when possible — and schedules its arrival.
// A no-op in batch mode.
func (s *Sim) pullNext() {
	if s.stream == nil {
		return
	}
	if s.streamLimit > 0 && s.pulled >= s.streamLimit {
		return
	}
	f, ok := s.stream.Next()
	if !ok {
		return
	}
	if f.Src == f.Dst || f.Src < 0 || f.Src >= s.g.N() || f.Dst < 0 || f.Dst >= s.g.N() {
		s.streamErr = fmt.Errorf("netsim: flow %d has bad endpoints (%d -> %d)", f.ID, f.Src, f.Dst)
		return
	}
	if f.Arrival < s.now {
		s.streamErr = fmt.Errorf("netsim: flow %d arrives at %v, before current time %v (streams must be arrival-ordered)",
			f.ID, f.Arrival, s.now)
		return
	}
	var fi int32
	if n := len(s.free); n > 0 {
		fi = s.free[n-1]
		s.free = s.free[:n-1]
		*s.flows[fi] = flowState{Flow: f, left: f.SizeBits, trigLink: -1}
	} else {
		fi = int32(len(s.flows))
		s.flows = append(s.flows, &flowState{Flow: f, left: f.SizeBits, trigLink: -1})
	}
	s.pulled++
	s.sres.Flows++
	s.queue.Push(f.Arrival, evArrival, fi)
}

// retire folds a finished flow into the streaming aggregate and recycles
// its slot. Any pending reconvergence event is cancelled first — it is the
// only event kind that references a specific flow slot, so cancellation
// makes recycling safe. A no-op in batch mode, where Results are built
// from the retained flow states at the end.
func (s *Sim) retire(fi int32) {
	if s.sres == nil {
		return
	}
	st := s.flows[fi]
	s.queue.Cancel(st.repairEvt)
	st.repairEvt = nil
	s.sres.observe(st)
	s.free = append(s.free, fi)
}
