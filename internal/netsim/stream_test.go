package netsim

import (
	"math"
	"sort"
	"testing"

	"repro/internal/topo"
	"repro/internal/traffic"
)

// sliceStream adapts a pre-generated flow slice to the Stream interface.
type sliceStream struct {
	flows []traffic.Flow
	i     int
}

func (s *sliceStream) Next() (traffic.Flow, bool) {
	if s.i >= len(s.flows) {
		return traffic.Flow{}, false
	}
	f := s.flows[s.i]
	s.i++
	return f, true
}

func distinctDests(flows []traffic.Flow) []int {
	seen := map[int]bool{}
	var dsts []int
	for _, f := range flows {
		if !seen[f.Dst] {
			seen[f.Dst] = true
			dsts = append(dsts, f.Dst)
		}
	}
	sort.Ints(dsts)
	return dsts
}

// TestRunStreamMatchesBatch drives the identical workload through Run and
// RunStream (with a mid-run failure) and requires every aggregate to
// agree: the streaming mode must change memory behavior, not outcomes.
func TestRunStreamMatchesBatch(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 150, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	flows, err := traffic.Uniform(traffic.UniformConfig{N: g.N(), Flows: 800, ArrivalRate: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	horizon := flows[len(flows)-1].Arrival
	hub := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	failure := LinkFailure{A: hub, B: int(g.Neighbors(hub)[0].AS), At: horizon / 3, RecoverAt: 2 * horizon / 3}

	for _, pol := range []Policy{PolicyBGP, PolicyMIRO, PolicyMIFO} {
		cfg := Config{Policy: pol, Failures: []LinkFailure{failure}, ReconvergenceDelay: horizon / 12}
		batch, err := Run(g, flows, cfg)
		if err != nil {
			t.Fatalf("%v: batch: %v", pol, err)
		}
		stream, err := RunStream(g, &sliceStream{flows: flows}, distinctDests(flows), 0, cfg)
		if err != nil {
			t.Fatalf("%v: stream: %v", pol, err)
		}

		if stream.Flows != len(flows) {
			t.Errorf("%v: stream pulled %d flows, want %d", pol, stream.Flows, len(flows))
		}
		if got, want := stream.Routable(), batch.Routable(); got != want {
			t.Errorf("%v: routable %d, batch %d", pol, got, want)
		}
		var completed, usedAlt, switches, reroutes, stalledForever int
		var offBits, stalledTime float64
		for i := range batch.Flows {
			f := &batch.Flows[i]
			if f.Unroutable {
				continue
			}
			if !f.Stalled {
				completed++
			} else {
				stalledForever++
			}
			if f.UsedAlt {
				usedAlt++
			}
			switches += f.Switches
			reroutes += f.Reroutes
			offBits += f.OffloadedBits
			stalledTime += f.StalledTime
		}
		if stream.Completed != completed {
			t.Errorf("%v: completed %d, batch %d", pol, stream.Completed, completed)
		}
		if stream.StalledForever != stalledForever {
			t.Errorf("%v: stalled %d, batch %d", pol, stream.StalledForever, stalledForever)
		}
		if stream.UsedAlt != usedAlt {
			t.Errorf("%v: usedAlt %d, batch %d", pol, stream.UsedAlt, usedAlt)
		}
		if stream.Switches != switches {
			t.Errorf("%v: switches %d, batch %d", pol, stream.Switches, switches)
		}
		if stream.Reroutes != reroutes {
			t.Errorf("%v: reroutes %d, batch %d", pol, stream.Reroutes, reroutes)
		}
		if math.Abs(stream.OffloadedBits-offBits) > 1e-6*(1+math.Abs(offBits)) {
			t.Errorf("%v: offloaded %v, batch %v", pol, stream.OffloadedBits, offBits)
		}
		if math.Abs(stream.StalledTime-stalledTime) > 1e-6*(1+math.Abs(stalledTime)) {
			t.Errorf("%v: stalledTime %v, batch %v", pol, stream.StalledTime, stalledTime)
		}
		if got, want := stream.MeanThroughputMbps(), batch.MeanThroughputMbps(); math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("%v: mean throughput %v, batch %v", pol, got, want)
		}
		if got, want := stream.Routing, batch.Routing; got != want {
			t.Errorf("%v: routing stats %+v, batch %+v", pol, got, want)
		}

		// The memory-bound claim: slots scale with concurrency, not Flows.
		if stream.PeakFlowSlots > stream.PeakActive+1 {
			t.Errorf("%v: PeakFlowSlots %d exceeds PeakActive+1 (%d)", pol, stream.PeakFlowSlots, stream.PeakActive+1)
		}
		if stream.PeakFlowSlots >= len(flows)/2 {
			t.Errorf("%v: PeakFlowSlots %d not bounded (%d flows)", pol, stream.PeakFlowSlots, len(flows))
		}
	}
}

// TestRunStreamFractionGranularity pins the histogram semantics: exact at
// bucket multiples, conservative otherwise.
func TestRunStreamFractionGranularity(t *testing.T) {
	var r StreamResults
	r.Flows = 4
	r.addThroughput(3)   // bucket 0
	r.addThroughput(5)   // bucket 1
	r.addThroughput(12)  // bucket 2
	r.addThroughput(999) // bucket 199
	if got := r.FractionAtLeastMbps(5); got != 0.75 {
		t.Fatalf("FractionAtLeastMbps(5) = %v, want 0.75", got)
	}
	if got := r.FractionAtLeastMbps(0); got != 1 {
		t.Fatalf("FractionAtLeastMbps(0) = %v, want 1", got)
	}
	if got := r.FractionAtLeastMbps(1200); got != 0 {
		t.Fatalf("FractionAtLeastMbps(1200) = %v, want 0", got)
	}
}

func TestRunStreamRejectsBadFlows(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := []traffic.Flow{{ID: 0, Src: 5, Dst: 5, SizeBits: 1, Arrival: 0.1}}
	if _, err := RunStream(g, &sliceStream{flows: bad}, []int{5}, 0, Config{}); err == nil {
		t.Fatal("want error for self-pair flow")
	}
	unordered := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 2, SizeBits: 1, Arrival: 5},
		{ID: 1, Src: 2, Dst: 3, SizeBits: 1, Arrival: 1},
	}
	if _, err := RunStream(g, &sliceStream{flows: unordered}, []int{2, 3}, 0, Config{}); err == nil {
		t.Fatal("want error for non-monotone arrivals")
	}
	if _, err := RunStream(g, &sliceStream{}, []int{99}, 0, Config{}); err == nil {
		t.Fatal("want error for out-of-range destination")
	}
}
