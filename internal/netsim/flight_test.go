package netsim

import (
	"bytes"
	"testing"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/traffic"
)

// TestFlightRecorderAuditsMIFORun re-runs the hog-and-returner scenario of
// TestTraceAuditsDeflectionDecisions with a flight recorder at 100%
// sampling and checks the acceptance properties: every installed path
// passes the invariant auditor, and the deflection count reconstructed
// from the JSONL stream alone matches the trace's EvDeflect events.
func TestFlightRecorderAuditsMIFORun(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 100 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 200 * mb, Arrival: 0.05},
	}
	var buf bytes.Buffer
	rec := audit.NewRecorder(audit.Options{Writer: &buf})
	tr := obs.NewTrace(0)
	res, err := Run(g, flows, Config{Policy: PolicyMIFO, Trace: tr, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flows[1].UsedAlt {
		t.Fatal("scenario drifted: flow 1 never deflected")
	}
	// Seal the async sink so the JSONL checks below see every record.
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	st := rec.Stats()
	if st.Violations != 0 {
		t.Fatalf("invariant violations in a correct MIFO run: %+v\nrecords: %+v",
			st, rec.ViolatingRecords())
	}
	deflectEvents := 0
	for _, e := range tr.Snapshot() {
		if e.Type == obs.EvDeflect {
			deflectEvents++
		}
	}
	if deflectEvents == 0 {
		t.Fatal("scenario drifted: no EvDeflect events")
	}
	if int(st.Deflections) != deflectEvents {
		t.Fatalf("recorder counted %d deflections, trace saw %d", st.Deflections, deflectEvents)
	}

	// The JSONL stream alone must reproduce the same deflection count and
	// carry one record per installed path: two arrivals plus one per
	// switch (deflections and returns).
	sum, err := audit.Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalDeflections != deflectEvents {
		t.Fatalf("JSONL reconstructs %d deflections, trace saw %d", sum.TotalDeflections, deflectEvents)
	}
	if sum.TotalViolations != 0 {
		t.Fatalf("JSONL carries violations: %v", sum.Violations)
	}
	switches := res.Flows[0].Switches + res.Flows[1].Switches
	if want := len(flows) + switches; sum.Records != want {
		t.Fatalf("records = %d, want %d (one per install: %d arrivals + %d switches)",
			sum.Records, want, len(flows), switches)
	}
	if sum.PathRecords != sum.Records {
		t.Fatalf("netsim must emit flow-path records only: %+v", sum)
	}
	// Deflected installs are longer than the two-hop default, so stretch
	// samples must exist and include a positive bucket.
	if sum.StretchN != sum.Records {
		t.Fatalf("every flow-path record has a baseline; stretch n = %d of %d", sum.StretchN, sum.Records)
	}
	if sum.Stretch[1] == 0 {
		t.Fatalf("no +1 stretch sample despite deflections: %v", sum.Stretch)
	}
}

// TestFlightRecorderSkipsMIRO: MIRO's negotiated tunnels are exempt from
// the classic valley-free audit, so a MIRO run must record nothing.
func TestFlightRecorderSkipsMIRO(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
	}
	rec := audit.NewRecorder(audit.Options{})
	if _, err := Run(g, flows, Config{Policy: PolicyMIRO, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	if st := rec.Stats(); st.Records != 0 {
		t.Fatalf("MIRO run recorded %d flight records, want 0", st.Records)
	}
}

// TestFlightRecorderBGPBaseline: a BGP run records exactly one default-path
// install per routable flow, none deflected.
func TestFlightRecorderBGPBaseline(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
		{ID: 1, Src: 2, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
	}
	rec := audit.NewRecorder(audit.Options{})
	if _, err := Run(g, flows, Config{Policy: PolicyBGP, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	if st.Records != 2 || st.Paths != 2 || st.Deflections != 0 || st.Violations != 0 {
		t.Fatalf("stats = %+v, want 2 clean path records", st)
	}
}

// TestFlightRecorderAbsentLeavesRunIdentical: recording must not perturb
// the simulation.
func TestFlightRecorderAbsentLeavesRunIdentical(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 100 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 200 * mb, Arrival: 0.05},
	}
	base, err := Run(g, flows, Config{Policy: PolicyMIFO})
	if err != nil {
		t.Fatal(err)
	}
	rec := audit.NewRecorder(audit.Options{})
	recorded, err := Run(g, flows, Config{Policy: PolicyMIFO, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Flows {
		if base.Flows[i] != recorded.Flows[i] {
			t.Fatalf("flow %d differs with recorder attached: %+v vs %+v",
				i, base.Flows[i], recorded.Flows[i])
		}
	}
}
