package netsim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/traffic"
)

func TestResultsWriteCSV(t *testing.T) {
	g := fig2aGraph(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0},
		{ID: 1, Src: 1, Dst: 0, SizeBits: 10 * mb, Arrival: 0.001},
	}
	res, err := Run(g, flows, Config{Policy: PolicyMIFO})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 rows:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "id,src,dst") {
		t.Errorf("missing header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "true") {
		t.Errorf("deflected flow row should record used_alt=true: %q", lines[2])
	}
	if !strings.Contains(lines[1], "done") || !strings.Contains(lines[2], "done") {
		t.Errorf("completed flows should be state=done:\n%s", out)
	}
}
