// Package testbed emulates the paper's prototype experiments (Section V):
// the Fig. 11 topology — six ASes, eleven border routers, four hosts, all
// Gigabit links — carrying 30 back-to-back 100 MB TCP flows from S1 to D1
// and another 30 from S2 to D2.
//
// The data plane is the real forwarding engine from internal/dataplane:
// every control epoch each active flow is probed through the router network
// and Algorithm 1 decides its path (including IP-in-IP hand-off from Rd to
// Ra inside AS 3). TCP itself is modeled as a fluid fair share with a
// goodput efficiency factor per path (the alternative path pays extra for
// the longer route and encapsulation overhead), which is the level of
// detail Fig. 12 measures.
package testbed

import (
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/metrics"
	"repro/internal/topo"
)

// Config parameterizes a testbed run.
type Config struct {
	// MIFO enables the MIFO mechanism; false reproduces the BGP baseline.
	MIFO bool
	// FlowsPerPair is the number of sequential flows per (S, D) pair
	// (default 30).
	FlowsPerPair int
	// FlowSizeBits is the per-flow transfer size (default 100 MB).
	FlowSizeBits float64
	// LinkCapacityBps is the capacity of every link (default 1 Gbps).
	LinkCapacityBps float64
	// DefaultEfficiency is TCP goodput over the default path as a fraction
	// of link rate (default 0.94, matching the paper's 0.94 Gbps BGP
	// aggregate on a GbE testbed).
	DefaultEfficiency float64
	// AltEfficiency is goodput over the alternative path (default 0.80:
	// one more AS hop plus IP-in-IP encapsulation overhead; yields the
	// paper's ~1.7 Gbps MIFO aggregate).
	AltEfficiency float64
	// Step is the fluid integration step in seconds (default 1 ms).
	Step float64
	// ControlInterval is the deflection re-evaluation period (default 10 ms).
	ControlInterval float64
}

func (c Config) withDefaults() Config {
	if c.FlowsPerPair <= 0 {
		c.FlowsPerPair = 30
	}
	if c.FlowSizeBits <= 0 {
		c.FlowSizeBits = 100 * 8e6
	}
	if c.LinkCapacityBps <= 0 {
		c.LinkCapacityBps = 1e9
	}
	if c.DefaultEfficiency <= 0 {
		c.DefaultEfficiency = 0.94
	}
	if c.AltEfficiency <= 0 {
		c.AltEfficiency = 0.80
	}
	if c.Step <= 0 {
		c.Step = 1e-3
	}
	if c.ControlInterval <= 0 {
		c.ControlInterval = 10e-3
	}
	return c
}

// Result holds a run's outputs in Fig. 12's terms.
type Result struct {
	// Aggregate is the network-wide goodput over time, sampled per second
	// (Fig. 12(a); Gbps).
	Aggregate *metrics.TimeSeries
	// FCT is the distribution of flow transfer times in seconds
	// (Fig. 12(b)).
	FCT *metrics.CDF
	// TotalTime is when the last flow completed.
	TotalTime float64
	// MeanAggregateGbps is the time-averaged aggregate goodput.
	MeanAggregateGbps float64
	// AltFlowCount is how many flows traveled the alternative path.
	AltFlowCount int
	// PathSwitches counts path changes observed across all flows.
	PathSwitches int
}

// Testbed is the wired Fig. 11 network.
type Testbed struct {
	cfg Config
	net *dataplane.Network

	r1, r2       *dataplane.Router // AS 1 and AS 2 border routers
	rin, rd, ra  *dataplane.Router // AS 3: ingress, default egress, alternative egress
	r4a, r4b     *dataplane.Router // AS 4
	r5a, r5b     *dataplane.Router // AS 5 (destination)
	r6a, r6b     *dataplane.Router // AS 6
	rdEgressPort int               // Rd's port on the 3->4 bottleneck link
	deflected    map[dataplane.FlowKey]bool
}

// dstPrefix identifies AS 5's prefix in the FIBs.
const dstPrefix = 5

// Build wires the Fig. 11 topology and programs the FIBs.
func Build(cfg Config) *Testbed {
	cfg = cfg.withDefaults()
	tb := &Testbed{cfg: cfg, deflected: make(map[dataplane.FlowKey]bool)}
	n := dataplane.NewNetwork()
	tb.net = n
	cap := cfg.LinkCapacityBps

	tb.r1 = n.AddRouter(1)
	tb.r2 = n.AddRouter(2)
	tb.rin = n.AddRouter(3)
	tb.rd = n.AddRouter(3)
	tb.ra = n.AddRouter(3)
	tb.r4a = n.AddRouter(4)
	tb.r4b = n.AddRouter(4)
	tb.r5a = n.AddRouter(5)
	tb.r5b = n.AddRouter(5)
	tb.r6a = n.AddRouter(6)
	tb.r6b = n.AddRouter(6)

	// eBGP: AS 3 is the provider of ASes 1 and 2 and of ASes 4 and 6;
	// AS 5 is a customer of both AS 4 and AS 6. All paths are downhill
	// after AS 3, so the valley-free check always admits the alternative.
	// S-side ASes attach directly to Rd, making the 3->4 egress the
	// shared bottleneck exactly as in Fig. 11.
	p1d, _ := n.Connect(tb.r1.ID, tb.rd.ID, dataplane.EBGP, topo.Provider, cap)
	p2d, _ := n.Connect(tb.r2.ID, tb.rd.ID, dataplane.EBGP, topo.Provider, cap)
	pd4, _ := n.Connect(tb.rd.ID, tb.r4a.ID, dataplane.EBGP, topo.Customer, cap)
	pa6, _ := n.Connect(tb.ra.ID, tb.r6a.ID, dataplane.EBGP, topo.Customer, cap)
	p4b5, _ := n.Connect(tb.r4b.ID, tb.r5a.ID, dataplane.EBGP, topo.Customer, cap)
	p6b5, _ := n.Connect(tb.r6b.ID, tb.r5b.ID, dataplane.EBGP, topo.Customer, cap)

	// iBGP meshes; the intra-AS fabric runs at 10x the access links.
	icap := 10 * cap
	pinD, _ := n.Connect(tb.rin.ID, tb.rd.ID, dataplane.IBGP, topo.Peer, icap)
	n.Connect(tb.rin.ID, tb.ra.ID, dataplane.IBGP, topo.Peer, icap)
	pdA, paD := n.Connect(tb.rd.ID, tb.ra.ID, dataplane.IBGP, topo.Peer, icap)
	p4a4b, _ := n.Connect(tb.r4a.ID, tb.r4b.ID, dataplane.IBGP, topo.Peer, icap)
	n.Connect(tb.r5a.ID, tb.r5b.ID, dataplane.IBGP, topo.Peer, icap)
	p6a6b, _ := n.Connect(tb.r6a.ID, tb.r6b.ID, dataplane.IBGP, topo.Peer, icap)

	// FIBs towards AS 5's prefix.
	tb.r5a.Local[dstPrefix] = true
	tb.r5b.Local[dstPrefix] = true
	tb.r1.FIB.Set(dstPrefix, dataplane.FIBEntry{Out: p1d, Alt: -1, AltVia: -1})
	tb.r2.FIB.Set(dstPrefix, dataplane.FIBEntry{Out: p2d, Alt: -1, AltVia: -1})
	tb.rin.FIB.Set(dstPrefix, dataplane.FIBEntry{Out: pinD, Alt: -1, AltVia: -1})
	// Rd: default out to AS 4; alternative via iBGP peer Ra (the MIFO
	// daemon's installation, Fig. 11's green path).
	tb.rd.FIB.Set(dstPrefix, dataplane.FIBEntry{Out: pd4, Alt: pdA, AltVia: tb.ra.ID})
	// Ra: its default is through Rd; its own eBGP link to AS 6 is the alt.
	tb.ra.FIB.Set(dstPrefix, dataplane.FIBEntry{Out: paD, Alt: pa6, AltVia: tb.r6a.ID})
	tb.r4a.FIB.Set(dstPrefix, dataplane.FIBEntry{Out: p4a4b, Alt: -1, AltVia: -1})
	tb.r4b.FIB.Set(dstPrefix, dataplane.FIBEntry{Out: p4b5, Alt: -1, AltVia: -1})
	tb.r6a.FIB.Set(dstPrefix, dataplane.FIBEntry{Out: p6a6b, Alt: -1, AltVia: -1})
	tb.r6b.FIB.Set(dstPrefix, dataplane.FIBEntry{Out: p6b5, Alt: -1, AltVia: -1})

	tb.rdEgressPort = pd4
	for _, r := range n.Routers {
		r.MIFOEnabled = cfg.MIFO
		// Below the single-flow queue level (DefaultEfficiency), so a flow
		// deflected to Ra stays there while one flow keeps the default
		// port busy; the control loop only *adds* flows to the deflected
		// set at full saturation (>= 2 flows). The gap is the hysteresis
		// that keeps path switching stable (cf. Fig. 9).
		r.CongestionThreshold = cfg.DefaultEfficiency - 0.05
	}
	// Which flows move when Rd's queue builds: membership in the
	// deflected set, maintained by the control loop below. This plays the
	// role of the paper's flow hashing — deterministic per flow.
	tb.rd.Deflect = func(k dataplane.FlowKey) bool { return tb.deflected[k] }
	return tb
}

// Probe sends one packet of the given flow from its source AS and returns
// the dataplane's verdict and AS-level path.
func (tb *Testbed) Probe(k dataplane.FlowKey) (dataplane.Result, []int32) {
	var origin dataplane.RouterID
	switch k.SrcAddr {
	case 1:
		origin = tb.r1.ID
	case 2:
		origin = tb.r2.ID
	default:
		panic(fmt.Sprintf("testbed: unknown source host %d", k.SrcAddr))
	}
	p := &dataplane.Packet{Flow: k, Dst: dstPrefix}
	res := tb.net.Send(p, origin)
	return res, res.ASPath(tb.net)
}

// viaAlt reports whether an AS path travels the alternative route (AS 6).
func viaAlt(path []int32) bool {
	for _, as := range path {
		if as == 6 {
			return true
		}
	}
	return false
}
