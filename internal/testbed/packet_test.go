package testbed

import (
	"testing"

	"repro/internal/packetsim"
)

// Packet-level cross-validation of the fluid testbed model: smaller flows
// (2 MB) keep the event count test-friendly; the qualitative Fig. 12
// results must match — BGP capped by the shared bottleneck, MIFO well
// above it thanks to queue-driven deflection through Ra.
func TestPacketLevelCrossValidation(t *testing.T) {
	cfg := Config{FlowsPerPair: 4, FlowSizeBits: 2 * 8e6}

	cfg.MIFO = false
	bgpRes, err := RunPacketLevel(cfg, packetsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.MIFO = true
	mifoRes, err := RunPacketLevel(cfg, packetsim.Config{})
	if err != nil {
		t.Fatal(err)
	}

	for _, res := range []*packetsim.Results{bgpRes, mifoRes} {
		for _, f := range res.Flows {
			if f.Aborted {
				t.Fatalf("flow aborted: %+v", f)
			}
			if f.DeliveredPkts == 0 {
				t.Fatalf("flow delivered nothing: %+v", f)
			}
		}
	}

	// BGP: both sequences share the 3->4 link; aggregate near (but not
	// above) one link's goodput.
	if bgpRes.MeanAggregateGbps > 0.96 || bgpRes.MeanAggregateGbps < 0.70 {
		t.Errorf("BGP packet-level aggregate = %v Gbps, want ~0.9", bgpRes.MeanAggregateGbps)
	}
	// MIFO must exceed a single link's capacity — only possible by using
	// the alternative path through AS 6.
	if mifoRes.MeanAggregateGbps < 1.1 {
		t.Errorf("MIFO packet-level aggregate = %v Gbps, want > 1.1", mifoRes.MeanAggregateGbps)
	}
	deflected := 0
	for _, f := range mifoRes.Flows {
		deflected += f.DeflectedPkts
	}
	if deflected == 0 {
		t.Error("no packet ever took the alternative path under MIFO")
	}
	// And it must beat BGP clearly (the paper reports +81% at full scale).
	if mifoRes.MeanAggregateGbps < 1.2*bgpRes.MeanAggregateGbps {
		t.Errorf("MIFO %v vs BGP %v: improvement too small",
			mifoRes.MeanAggregateGbps, bgpRes.MeanAggregateGbps)
	}
	// Fluid and packet models must agree on the BGP baseline within ~10%.
	fluid, err := Run(Config{MIFO: false, FlowsPerPair: 4, FlowSizeBits: 2 * 8e6})
	if err != nil {
		t.Fatal(err)
	}
	ratio := bgpRes.MeanAggregateGbps / fluid.MeanAggregateGbps
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("packet/fluid BGP aggregate ratio = %v, want within 15%%", ratio)
	}
}
