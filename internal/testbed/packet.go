package testbed

import (
	"repro/internal/dataplane"
	"repro/internal/packetsim"
)

// RunPacketLevel executes the Section V experiment at packet granularity:
// the same Fig. 11 network, but with per-port tx queues, AIMD sources and
// the congestion signal emerging from real queue occupancy. It
// cross-validates the fluid model in Run — goodput factors are not
// assumed, they come out of the wire overheads and queue dynamics.
//
// Flow deflection uses the paper's five-tuple hashing (DeflectShare): when
// Rd's queue builds, the hash decides which flows move to Ra.
func RunPacketLevel(cfg Config, pcfg packetsim.Config) (*packetsim.Results, error) {
	cfg = cfg.withDefaults()
	tb := Build(cfg)
	if cfg.MIFO {
		// Hash-based flow selection instead of the fluid controller's
		// membership set (Section II-A: "the eventual path for subsequent
		// packets is determined by hashing"). With two concurrent flows a
		// 65% share leaves only ~12% of flow pairs entirely on the
		// default; deflecting everything (DeflectAll) sprays packets over
		// both links and overshoots the paper's aggregate, while a 50%
		// share strands a quarter of the pairs — see EXPERIMENTS.md.
		tb.rd.Deflect = dataplane.DeflectShare(0.65)
		for _, r := range tb.net.Routers {
			// React while the queue is building, not once it is nearly
			// full: half-occupancy is the tx-queue pressure a border
			// router would act on.
			r.CongestionThreshold = 0.5
		}
	}
	sim := packetsim.New(tb.net, pcfg)
	for pair, origin := range []dataplane.RouterID{tb.r1.ID, tb.r2.ID} {
		prev := -1
		for k := 0; k < cfg.FlowsPerPair; k++ {
			idx := sim.AddFlow(packetsim.FlowSpec{
				Key: dataplane.FlowKey{
					SrcAddr: uint32(pair + 1),
					DstAddr: dstPrefix,
					SrcPort: uint16(k),
					DstPort: 5001,
					Proto:   6,
				},
				Origin:    origin,
				Dst:       dstPrefix,
				SizeBytes: int(cfg.FlowSizeBits / 8),
				Start:     0,
				After:     prev,
			})
			prev = idx
		}
	}
	return sim.Run()
}
