package testbed

import (
	"math"
	"testing"

	"repro/internal/dataplane"
)

func TestBuildWiring(t *testing.T) {
	tb := Build(Config{MIFO: true})
	if got := len(tb.net.Routers); got != 11 {
		t.Fatalf("routers = %d, want 11 (as in the paper's testbed)", got)
	}
	// Rd must have an alternative installed towards Ra (iBGP).
	e, ok := tb.rd.FIB.Lookup(dstPrefix)
	if !ok || e.Alt < 0 || tb.rd.Ports[e.Alt].Kind != dataplane.IBGP || e.AltVia != tb.ra.ID {
		t.Fatalf("Rd FIB entry = %+v, want iBGP alternative via Ra", e)
	}
}

func TestDefaultPathUncongested(t *testing.T) {
	tb := Build(Config{MIFO: true})
	key := dataplane.FlowKey{SrcAddr: 1, DstAddr: dstPrefix, SrcPort: 1, Proto: 6}
	res, path := tb.Probe(key)
	if res.Verdict != dataplane.VerdictDeliver {
		t.Fatalf("probe: %v/%v", res.Verdict, res.Reason)
	}
	want := []int32{1, 3, 4, 5}
	if len(path) != len(want) {
		t.Fatalf("AS path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("AS path = %v, want %v", path, want)
		}
	}
}

func TestDeflectedFlowTravelsViaAS6(t *testing.T) {
	tb := Build(Config{MIFO: true})
	key := dataplane.FlowKey{SrcAddr: 2, DstAddr: dstPrefix, SrcPort: 7, Proto: 6}
	tb.deflected[key] = true
	tb.rd.SetQueueRatio(tb.rdEgressPort, 1.0)
	res, path := tb.Probe(key)
	if res.Verdict != dataplane.VerdictDeliver {
		t.Fatalf("probe: %v/%v", res.Verdict, res.Reason)
	}
	if !viaAlt(path) {
		t.Fatalf("AS path = %v, want via AS 6", path)
	}
	want := []int32{2, 3, 6, 5}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("AS path = %v, want %v", path, want)
		}
	}
	if res.Deflections < 2 {
		t.Errorf("deflections = %d, want Rd encap + Ra bounce-exit", res.Deflections)
	}
}

func TestBGPNeverUsesAlternative(t *testing.T) {
	res, err := Run(Config{MIFO: false, FlowsPerPair: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.AltFlowCount != 0 || res.PathSwitches != 0 {
		t.Fatalf("BGP run used alternatives: alt=%d switches=%d", res.AltFlowCount, res.PathSwitches)
	}
	// Two flows share the 3->4 bottleneck: aggregate == DefaultEfficiency.
	if math.Abs(res.MeanAggregateGbps-0.94) > 0.02 {
		t.Errorf("BGP aggregate = %v Gbps, want ~0.94", res.MeanAggregateGbps)
	}
}

func TestMIFOFig12Shape(t *testing.T) {
	bgpRes, err := Run(Config{MIFO: false})
	if err != nil {
		t.Fatal(err)
	}
	mifoRes, err := Run(Config{MIFO: true})
	if err != nil {
		t.Fatal(err)
	}

	// Fig. 12(a): ~0.94 Gbps vs ~1.7 Gbps aggregate, an ~81% improvement.
	if math.Abs(bgpRes.MeanAggregateGbps-0.94) > 0.03 {
		t.Errorf("BGP aggregate = %v, want ~0.94 Gbps", bgpRes.MeanAggregateGbps)
	}
	if mifoRes.MeanAggregateGbps < 1.5 || mifoRes.MeanAggregateGbps > 1.85 {
		t.Errorf("MIFO aggregate = %v, want ~1.7 Gbps", mifoRes.MeanAggregateGbps)
	}
	imp := ImprovementPercent(mifoRes, bgpRes)
	if imp < 60 || imp > 100 {
		t.Errorf("improvement = %v%%, want ~81%%", imp)
	}

	// Fig. 12(b): all MIFO flows within 1.1 s; BGP flows beyond 1.6 s.
	if max := mifoRes.FCT.Max(); max > 1.1 {
		t.Errorf("MIFO max FCT = %v, want <= 1.1 s", max)
	}
	if frac := bgpRes.FCT.FractionAtLeast(1.6); frac < 0.8 {
		t.Errorf("BGP flows >= 1.6s = %v, want >= 0.8", frac)
	}

	// Total completion: ~30 s vs ~51 s.
	if mifoRes.TotalTime > 35 {
		t.Errorf("MIFO total = %v s, want ~30", mifoRes.TotalTime)
	}
	if bgpRes.TotalTime < 45 || bgpRes.TotalTime > 56 {
		t.Errorf("BGP total = %v s, want ~51", bgpRes.TotalTime)
	}

	// MIFO must actually offload flows onto the alternative path.
	if mifoRes.AltFlowCount < 10 {
		t.Errorf("alt flows = %d, want a substantial share of 60", mifoRes.AltFlowCount)
	}
}

func TestAggregateTimeSeriesShape(t *testing.T) {
	res, err := Run(Config{MIFO: true, FlowsPerPair: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aggregate.Rows) == 0 {
		t.Fatal("no aggregate samples")
	}
	// During steady state the aggregate must exceed a single link's rate —
	// the whole point of multi-path forwarding.
	if res.Aggregate.Max() < 1.2 {
		t.Errorf("peak aggregate = %v Gbps, want > 1.2 (both paths active)", res.Aggregate.Max())
	}
	for _, r := range res.Aggregate.Rows {
		if r.Y < 0 || r.Y > 2.0 {
			t.Fatalf("aggregate sample %v out of physical range", r)
		}
	}
}

func TestImprovementPercent(t *testing.T) {
	a := &Result{MeanAggregateGbps: 1.7}
	b := &Result{MeanAggregateGbps: 0.94}
	if got := ImprovementPercent(a, b); math.Abs(got-80.85) > 0.1 {
		t.Errorf("improvement = %v, want ~80.85", got)
	}
	if !math.IsInf(ImprovementPercent(a, &Result{}), 1) {
		t.Error("zero baseline should yield +Inf")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.FlowsPerPair != 30 || c.FlowSizeBits != 8e8 || c.LinkCapacityBps != 1e9 {
		t.Errorf("defaults = %+v", c)
	}
	if c.DefaultEfficiency != 0.94 || c.AltEfficiency != 0.80 {
		t.Errorf("efficiency defaults = %+v", c)
	}
}

func BenchmarkTestbedMIFO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{MIFO: true, FlowsPerPair: 5}); err != nil {
			b.Fatal(err)
		}
	}
}
