package testbed

import (
	"fmt"
	"math"

	"repro/internal/dataplane"
	"repro/internal/metrics"
)

// flowRun is one in-flight transfer.
type flowRun struct {
	key    dataplane.FlowKey
	left   float64
	start  float64
	onAlt  bool
	active bool
}

// pairState tracks one (source, destination) sequence of flows.
type pairState struct {
	src       uint32
	nextIndex int
	cur       flowRun
	done      int
}

// Run executes the Section V experiment and returns Fig. 12's data.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	tb := Build(cfg)

	pairs := []*pairState{{src: 1}, {src: 2}}
	res := &Result{
		Aggregate: &metrics.TimeSeries{Name: "aggregate-gbps"},
		FCT:       &metrics.CDF{},
	}

	const maxTime = 3600.0
	var (
		t           float64
		nextControl float64
		bucketStart float64
		bucketBits  float64
		totalBits   float64
		lastFinish  float64
	)

	startNext := func(p *pairState) error {
		if p.nextIndex >= cfg.FlowsPerPair {
			return nil
		}
		key := dataplane.FlowKey{
			SrcAddr: p.src,
			DstAddr: dstPrefix,
			SrcPort: uint16(p.nextIndex),
			DstPort: 5001,
			Proto:   6,
		}
		probe, path := tb.Probe(key)
		if probe.Verdict != dataplane.VerdictDeliver {
			return fmt.Errorf("testbed: probe for %v failed: %v/%v", key, probe.Verdict, probe.Reason)
		}
		p.cur = flowRun{key: key, left: cfg.FlowSizeBits, start: t, onAlt: viaAlt(path), active: true}
		if p.cur.onAlt {
			res.AltFlowCount++
		}
		p.nextIndex++
		return nil
	}

	allDone := func() bool {
		for _, p := range pairs {
			if p.cur.active || p.nextIndex < cfg.FlowsPerPair {
				return false
			}
		}
		return true
	}

	for t < maxTime && !allDone() {
		// Keep each pair's sequence running back to back.
		for _, p := range pairs {
			if !p.cur.active {
				if err := startNext(p); err != nil {
					return nil, err
				}
			}
		}

		// Control epoch: update Rd's congestion signal, rebalance the
		// deflected set, and let the forwarding engine re-decide paths.
		if t >= nextControl {
			nextControl = t + cfg.ControlInterval
			if err := tb.controlStep(pairs, res); err != nil {
				return nil, err
			}
		}

		// Fluid progress over one step.
		nDef, nAlt := 0, 0
		for _, p := range pairs {
			if p.cur.active {
				if p.cur.onAlt {
					nAlt++
				} else {
					nDef++
				}
			}
		}
		for _, p := range pairs {
			if !p.cur.active {
				continue
			}
			var rate float64
			if p.cur.onAlt {
				rate = cfg.AltEfficiency * cfg.LinkCapacityBps / float64(nAlt)
			} else {
				rate = cfg.DefaultEfficiency * cfg.LinkCapacityBps / float64(nDef)
			}
			sent := rate * cfg.Step
			if sent >= p.cur.left {
				// Flow completes within this step.
				frac := p.cur.left / rate
				finish := t + frac
				res.FCT.Add(finish - p.cur.start)
				bucketBits += p.cur.left
				totalBits += p.cur.left
				p.cur.active = false
				p.done++
				delete(tb.deflected, p.cur.key)
				if finish > lastFinish {
					lastFinish = finish
				}
			} else {
				p.cur.left -= sent
				bucketBits += sent
				totalBits += sent
			}
		}

		t += cfg.Step
		if t-bucketStart >= 1.0 {
			res.Aggregate.Add(bucketStart, bucketBits/(t-bucketStart)/1e9)
			bucketStart = t
			bucketBits = 0
		}
	}
	if bucketBits > 0 && t > bucketStart {
		res.Aggregate.Add(bucketStart, bucketBits/(t-bucketStart)/1e9)
	}
	if t >= maxTime {
		return nil, fmt.Errorf("testbed: experiment did not converge within %v s", maxTime)
	}
	res.TotalTime = lastFinish
	if lastFinish > 0 {
		res.MeanAggregateGbps = totalBits / lastFinish / 1e9
	}
	return res, nil
}

// controlStep refreshes the congestion signal on Rd's bottleneck port,
// moves at most one flow into the deflected set when the queue builds
// (the flow-hash tie-break picks which), and re-probes every active flow
// through the forwarding engine to observe its current path.
func (tb *Testbed) controlStep(pairs []*pairState, res *Result) error {
	nDef := 0
	for _, p := range pairs {
		if p.cur.active && !p.cur.onAlt {
			nDef++
		}
	}
	// Queue-ratio proxy: an empty port idles at 0; one TCP flow keeps the
	// queue just under the threshold; two or more saturate it.
	var ratio float64
	switch {
	case nDef == 0:
		ratio = 0
	case nDef == 1:
		ratio = tb.cfg.DefaultEfficiency
	default:
		ratio = 1.0
	}
	tb.rd.SetQueueRatio(tb.rdEgressPort, ratio)

	// Add a flow to the deflected set only at full saturation (two or more
	// flows competing); the engine's lower threshold then keeps it away
	// until the default port actually drains.
	if tb.cfg.MIFO && ratio >= 0.99 {
		// Move the default-path flow with the highest five-tuple hash.
		var pick *pairState
		var pickHash uint32
		for _, p := range pairs {
			if p.cur.active && !p.cur.onAlt && !tb.deflected[p.cur.key] {
				if h := p.cur.key.Hash(); pick == nil || h > pickHash {
					pick, pickHash = p, h
				}
			}
		}
		if pick != nil {
			tb.deflected[pick.cur.key] = true
		}
	}

	// Let the data plane decide each flow's path now.
	for _, p := range pairs {
		if !p.cur.active {
			continue
		}
		probe, path := tb.Probe(p.cur.key)
		if probe.Verdict != dataplane.VerdictDeliver {
			return fmt.Errorf("testbed: re-probe for %v failed: %v/%v", p.cur.key, probe.Verdict, probe.Reason)
		}
		alt := viaAlt(path)
		if alt != p.cur.onAlt {
			res.PathSwitches++
			if alt {
				res.AltFlowCount++
			}
			p.cur.onAlt = alt
		}
	}
	return nil
}

// ImprovementPercent returns the relative aggregate-throughput gain of a
// over b in percent, as the paper reports ("MIFO improves the aggregate
// throughput by 81% compared with BGP").
func ImprovementPercent(a, b *Result) float64 {
	if b.MeanAggregateGbps == 0 {
		return math.Inf(1)
	}
	return 100 * (a.MeanAggregateGbps - b.MeanAggregateGbps) / b.MeanAggregateGbps
}
