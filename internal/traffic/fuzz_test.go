package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the workload parser.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,src,dst,size_bits,arrival\n0,1,2,8e+07,0.5\n")
	f.Add("0,1,2,8e+07,0.5\n")
	f.Add("not,a,workload\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, input string) {
		flows, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, flows); err != nil {
			t.Fatalf("write after read: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("reread: %v", err)
		}
		if len(again) != len(flows) {
			t.Fatalf("round trip changed flow count: %d vs %d", len(flows), len(again))
		}
	})
}
