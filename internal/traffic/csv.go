package traffic

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes flows as CSV (id,src,dst,size_bits,arrival) so a
// workload can be archived and replayed across runs and tools.
func WriteCSV(w io.Writer, flows []Flow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "src", "dst", "size_bits", "arrival"}); err != nil {
		return err
	}
	for _, f := range flows {
		rec := []string{
			strconv.Itoa(f.ID),
			strconv.Itoa(f.Src),
			strconv.Itoa(f.Dst),
			strconv.FormatFloat(f.SizeBits, 'g', -1, 64),
			strconv.FormatFloat(f.Arrival, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a workload written by WriteCSV.
func ReadCSV(r io.Reader) ([]Flow, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("traffic: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, nil
	}
	start := 0
	if records[0][0] == "id" {
		start = 1 // skip header
	}
	flows := make([]Flow, 0, len(records)-start)
	for i, rec := range records[start:] {
		if len(rec) != 5 {
			return nil, fmt.Errorf("traffic: row %d: want 5 fields, got %d", i+start+1, len(rec))
		}
		id, err1 := strconv.Atoi(rec[0])
		src, err2 := strconv.Atoi(rec[1])
		dst, err3 := strconv.Atoi(rec[2])
		size, err4 := strconv.ParseFloat(rec[3], 64)
		arr, err5 := strconv.ParseFloat(rec[4], 64)
		for _, err := range []error{err1, err2, err3, err4, err5} {
			if err != nil {
				return nil, fmt.Errorf("traffic: row %d: %w", i+start+1, err)
			}
		}
		flows = append(flows, Flow{ID: id, Src: src, Dst: dst, SizeBits: size, Arrival: arr})
	}
	return flows, nil
}
