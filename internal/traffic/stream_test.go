package traffic

import "testing"

func TestStreamMatchesSlice(t *testing.T) {
	ucfg := UniformConfig{N: 500, Flows: 2000, ArrivalRate: 50, Seed: 17}
	want, err := Uniform(ucfg)
	if err != nil {
		t.Fatal(err)
	}
	us, err := NewUniformStream(ucfg)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(us)
	if len(got) != len(want) {
		t.Fatalf("uniform stream yielded %d flows, slice API %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("uniform flow %d: stream %+v != slice %+v", i, got[i], want[i])
		}
	}

	providers := []int{3, 9, 27, 81}
	consumers := []int{1, 2, 4, 5, 6, 7, 8}
	pcfg := PowerLawConfig{Providers: providers, Consumers: consumers, Alpha: 1.0, Flows: 2000, Seed: 23}
	wantP, err := PowerLaw(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPowerLawStream(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	gotP := Collect(ps)
	if len(gotP) != len(wantP) {
		t.Fatalf("powerlaw stream yielded %d flows, slice API %d", len(gotP), len(wantP))
	}
	for i := range gotP {
		if gotP[i] != wantP[i] {
			t.Fatalf("powerlaw flow %d: stream %+v != slice %+v", i, gotP[i], wantP[i])
		}
	}
}

func TestStreamUnbounded(t *testing.T) {
	s, err := NewUniformStream(UniformConfig{N: 10, Flows: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i := 0; i < 100000; i++ {
		f, ok := s.Next()
		if !ok {
			t.Fatalf("unbounded stream ended at flow %d", i)
		}
		if f.ID != i {
			t.Fatalf("flow %d has ID %d", i, f.ID)
		}
		if f.Arrival <= prev {
			t.Fatalf("arrivals not strictly increasing at flow %d", i)
		}
		prev = f.Arrival
		if f.Src == f.Dst {
			t.Fatalf("flow %d is a self-pair", i)
		}
	}
}

func TestStreamErrors(t *testing.T) {
	if _, err := NewUniformStream(UniformConfig{N: 1}); err == nil {
		t.Fatal("want error for N < 2")
	}
	if _, err := NewPowerLawStream(PowerLawConfig{Alpha: 1}); err == nil {
		t.Fatal("want error for empty providers/consumers")
	}
	if _, err := NewPowerLawStream(PowerLawConfig{Providers: []int{1}, Consumers: []int{2}, Alpha: 0}); err == nil {
		t.Fatal("want error for non-positive alpha")
	}
}
