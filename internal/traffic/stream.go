package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Stream produces flows one at a time in arrival order. It is the
// bounded-memory interface behind the slice generators: a paper-scale run
// pulls millions of flows through the simulator without materializing the
// whole workload, while Uniform/PowerLaw are Collect over the same
// streams — so the two APIs are draw-for-draw identical by construction
// (and TestStreamMatchesSlice pins it).
type Stream interface {
	// Next returns the next flow, or ok=false when the stream is exhausted.
	Next() (Flow, bool)
}

// Collect drains s into a slice. Only call on bounded streams.
func Collect(s Stream) []Flow {
	var out []Flow
	for {
		f, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, f)
	}
}

type uniformStream struct {
	n     int
	limit int // <= 0 means unbounded
	rate  float64
	size  float64
	rng   *rand.Rand
	now   float64
	i     int
}

// NewUniformStream returns a Stream over the uniform traffic matrix. A
// non-positive cfg.Flows streams without bound (the batch Uniform treats
// it as zero flows).
func NewUniformStream(cfg UniformConfig) (Stream, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("traffic: need at least 2 ASes, got %d", cfg.N)
	}
	rate, size := cfg.ArrivalRate, cfg.SizeBits
	if rate <= 0 {
		rate = DefaultArrivalRate
	}
	if size <= 0 {
		size = DefaultFlowSizeBits
	}
	return &uniformStream{
		n:     cfg.N,
		limit: cfg.Flows,
		rate:  rate,
		size:  size,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

func (s *uniformStream) Next() (Flow, bool) {
	if s.limit > 0 && s.i >= s.limit {
		return Flow{}, false
	}
	s.now += s.rng.ExpFloat64() / s.rate
	src := s.rng.Intn(s.n)
	dst := s.rng.Intn(s.n - 1)
	if dst >= src {
		dst++
	}
	f := Flow{ID: s.i, Src: src, Dst: dst, SizeBits: s.size, Arrival: s.now}
	s.i++
	return f, true
}

type powerLawStream struct {
	providers []int
	consumers []int
	cum       []float64
	total     float64
	limit     int
	rate      float64
	size      float64
	rng       *rand.Rand
	now       float64
	i         int
}

// NewPowerLawStream returns a Stream over the Zipf traffic matrix. A
// non-positive cfg.Flows streams without bound.
func NewPowerLawStream(cfg PowerLawConfig) (Stream, error) {
	if len(cfg.Providers) == 0 || len(cfg.Consumers) == 0 {
		return nil, fmt.Errorf("traffic: need providers and consumers, got %d/%d",
			len(cfg.Providers), len(cfg.Consumers))
	}
	if cfg.Alpha <= 0 {
		return nil, fmt.Errorf("traffic: alpha must be positive, got %v", cfg.Alpha)
	}
	rate, size := cfg.ArrivalRate, cfg.SizeBits
	if rate <= 0 {
		rate = DefaultArrivalRate
	}
	if size <= 0 {
		size = DefaultFlowSizeBits
	}
	// Cumulative Zipf weights over provider ranks (1-indexed).
	cum := make([]float64, len(cfg.Providers))
	total := 0.0
	for i := range cfg.Providers {
		total += math.Pow(float64(i+1), -cfg.Alpha)
		cum[i] = total
	}
	return &powerLawStream{
		providers: cfg.Providers,
		consumers: cfg.Consumers,
		cum:       cum,
		total:     total,
		limit:     cfg.Flows,
		rate:      rate,
		size:      size,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

func (s *powerLawStream) Next() (Flow, bool) {
	if s.limit > 0 && s.i >= s.limit {
		return Flow{}, false
	}
	s.now += s.rng.ExpFloat64() / s.rate
	u := s.rng.Float64() * s.total
	rank := sort.SearchFloat64s(s.cum, u)
	if rank >= len(s.providers) {
		rank = len(s.providers) - 1
	}
	src := s.providers[rank]
	dst := s.consumers[s.rng.Intn(len(s.consumers))]
	for dst == src {
		dst = s.consumers[s.rng.Intn(len(s.consumers))]
	}
	f := Flow{ID: s.i, Src: src, Dst: dst, SizeBits: s.size, Arrival: s.now}
	s.i++
	return f, true
}
