// Package traffic generates the synthetic traffic matrices of Section IV:
// uniformly random AS pairs, and a power-law (Zipf) matrix where popular
// content providers source most of the traffic and stub ASes consume it.
package traffic

import (
	"sort"

	"repro/internal/topo"
)

// Flow is one transfer request.
type Flow struct {
	// ID is a dense index, also used as the flow's hash salt.
	ID int
	// Src and Dst are AS indices.
	Src, Dst int
	// SizeBits is the transfer size in bits.
	SizeBits float64
	// Arrival is the start time in seconds.
	Arrival float64
}

// Defaults from the paper's simulation setup.
const (
	// DefaultArrivalRate is the average number of flows initiated per
	// second (Poisson process).
	DefaultArrivalRate = 100.0
	// DefaultFlowSizeBits is 10 MB per flow.
	DefaultFlowSizeBits = 10 * 8e6
)

// UniformConfig parameterizes Uniform.
type UniformConfig struct {
	// N is the number of ASes to draw pairs from.
	N int
	// Flows is the number of flows to generate.
	Flows int
	// ArrivalRate is the Poisson arrival rate (flows per second).
	ArrivalRate float64
	// SizeBits is the per-flow size.
	SizeBits float64
	// Seed seeds the PRNG.
	Seed int64
}

// Uniform generates flows between uniformly random distinct AS pairs with
// Poisson arrivals — the paper's "generic" traffic matrix. It is Collect
// over NewUniformStream: the streaming and batch forms are draw-for-draw
// identical.
func Uniform(cfg UniformConfig) ([]Flow, error) {
	s, err := NewUniformStream(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Flows <= 0 {
		return []Flow{}, nil
	}
	return Collect(s), nil
}

// PowerLawConfig parameterizes PowerLaw.
type PowerLawConfig struct {
	// Providers are candidate content-provider ASes, ranked most popular
	// first (see RankContentProviders).
	Providers []int
	// Consumers are the traffic sinks (typically stub ASes).
	Consumers []int
	// Alpha is the Zipf skew: P(rank i) ∝ i^-Alpha. The paper evaluates
	// 0.8, 1.0 and 1.2.
	Alpha float64
	// Flows, ArrivalRate, SizeBits, Seed as in UniformConfig.
	Flows       int
	ArrivalRate float64
	SizeBits    float64
	Seed        int64
}

// PowerLaw generates flows whose sources follow a Zipf distribution over
// the ranked content providers and whose destinations are uniform over the
// consumers — the paper's "realistic" matrix where the higher a content
// provider ranks, the more of its traffic is consumed. It is Collect over
// NewPowerLawStream: the streaming and batch forms are draw-for-draw
// identical.
func PowerLaw(cfg PowerLawConfig) ([]Flow, error) {
	s, err := NewPowerLawStream(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Flows <= 0 {
		return []Flow{}, nil
	}
	return Collect(s), nil
}

// RankContentProviders returns up to count ASes ranked by the number of
// providers and peers they have (descending) — the paper's popularity
// metric for content providers. Ties break towards the lower AS index.
func RankContentProviders(g *topo.Graph, count int) []int {
	type ranked struct {
		as     int
		degree int
	}
	all := make([]ranked, g.N())
	for v := 0; v < g.N(); v++ {
		all[v] = ranked{as: v, degree: g.TransitNeighborCount(v)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].degree != all[j].degree {
			return all[i].degree > all[j].degree
		}
		return all[i].as < all[j].as
	})
	if count > len(all) {
		count = len(all)
	}
	out := make([]int, count)
	for i := 0; i < count; i++ {
		out[i] = all[i].as
	}
	return out
}

// StubASes returns every AS with no customers — the consumers of the
// power-law matrix.
func StubASes(g *topo.Graph) []int {
	var out []int
	for v := 0; v < g.N(); v++ {
		if g.IsStub(v) {
			out = append(out, v)
		}
	}
	return out
}
