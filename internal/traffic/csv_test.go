package traffic

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	flows, err := Uniform(UniformConfig{N: 50, Flows: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, flows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(flows) {
		t.Fatalf("round trip lost flows: %d != %d", len(back), len(flows))
	}
	for i := range flows {
		if flows[i] != back[i] {
			t.Fatalf("flow %d: %+v != %+v", i, flows[i], back[i])
		}
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	in := "0,1,2,8e+07,0.5\n1,3,4,8e+07,0.6\n"
	flows, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 || flows[1].Src != 3 || flows[0].Arrival != 0.5 {
		t.Fatalf("parsed %+v", flows)
	}
}

func TestReadCSVErrors(t *testing.T) {
	for name, in := range map[string]string{
		"bad-int":    "x,1,2,8e7,0\n",
		"bad-float":  "0,1,2,yolo,0\n",
		"bad-fields": "0,1,2\n",
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	if flows, err := ReadCSV(strings.NewReader("")); err != nil || flows != nil {
		t.Errorf("empty input should parse to nil, got %v, %v", flows, err)
	}
}
