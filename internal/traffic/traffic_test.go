package traffic

import (
	"math"
	"testing"

	"repro/internal/topo"
)

func TestUniformBasic(t *testing.T) {
	flows, err := Uniform(UniformConfig{N: 100, Flows: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 5000 {
		t.Fatalf("flows = %d", len(flows))
	}
	prev := 0.0
	for i, f := range flows {
		if f.ID != i {
			t.Fatalf("flow %d has ID %d", i, f.ID)
		}
		if f.Src == f.Dst {
			t.Fatalf("flow %d: src == dst == %d", i, f.Src)
		}
		if f.Src < 0 || f.Src >= 100 || f.Dst < 0 || f.Dst >= 100 {
			t.Fatalf("flow %d out of range: %+v", i, f)
		}
		if f.Arrival < prev {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		prev = f.Arrival
		if f.SizeBits != DefaultFlowSizeBits {
			t.Fatalf("size = %v, want default", f.SizeBits)
		}
	}
	// Poisson(100/s): 5000 flows should span roughly 50 seconds.
	span := flows[len(flows)-1].Arrival
	if span < 30 || span > 80 {
		t.Errorf("5000 flows at 100/s span %.1fs, want ~50s", span)
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform(UniformConfig{N: 1, Flows: 10}); err == nil {
		t.Error("N=1 must error")
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, _ := Uniform(UniformConfig{N: 50, Flows: 100, Seed: 9})
	b, _ := Uniform(UniformConfig{N: 50, Flows: 100, Seed: 9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs between equal seeds", i)
		}
	}
}

func TestUniformSourceDispersion(t *testing.T) {
	flows, _ := Uniform(UniformConfig{N: 10, Flows: 10000, Seed: 3})
	counts := make([]int, 10)
	for _, f := range flows {
		counts[f.Src]++
	}
	for as, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("AS %d sourced %d flows, want ~1000", as, c)
		}
	}
}

func TestPowerLawSkew(t *testing.T) {
	providers := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	consumers := []int{10, 11, 12, 13, 14}
	flows, err := PowerLaw(PowerLawConfig{
		Providers: providers, Consumers: consumers,
		Alpha: 1.0, Flows: 20000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, f := range flows {
		counts[f.Src]++
		isConsumer := false
		for _, c := range consumers {
			if f.Dst == c {
				isConsumer = true
			}
		}
		if !isConsumer {
			t.Fatalf("dst %d not a consumer", f.Dst)
		}
	}
	// Zipf(1.0) over 10 ranks: rank 1 gets weight 1/H(10) ≈ 0.34 of traffic,
	// rank 2 half of rank 1.
	frac1 := float64(counts[0]) / float64(len(flows))
	if frac1 < 0.28 || frac1 > 0.40 {
		t.Errorf("rank-1 share = %v, want ~0.34", frac1)
	}
	if counts[0] <= counts[1] || counts[1] <= counts[3] {
		t.Errorf("popularity not decreasing: %v", counts)
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if math.Abs(ratio-2) > 0.5 {
		t.Errorf("rank1/rank2 = %v, want ~2 for alpha=1", ratio)
	}
}

func TestPowerLawAlphaEffect(t *testing.T) {
	providers := make([]int, 100)
	for i := range providers {
		providers[i] = i
	}
	consumers := []int{100, 101}
	share := func(alpha float64) float64 {
		flows, err := PowerLaw(PowerLawConfig{
			Providers: providers, Consumers: consumers,
			Alpha: alpha, Flows: 30000, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		top := 0
		for _, f := range flows {
			if f.Src < 10 {
				top++
			}
		}
		return float64(top) / float64(len(flows))
	}
	s08, s12 := share(0.8), share(1.2)
	if s12 <= s08 {
		t.Errorf("top-10 share should grow with alpha: a=0.8 -> %v, a=1.2 -> %v", s08, s12)
	}
}

func TestPowerLawErrors(t *testing.T) {
	if _, err := PowerLaw(PowerLawConfig{Alpha: 1, Consumers: []int{1}}); err == nil {
		t.Error("no providers must error")
	}
	if _, err := PowerLaw(PowerLawConfig{Alpha: 1, Providers: []int{1}}); err == nil {
		t.Error("no consumers must error")
	}
	if _, err := PowerLaw(PowerLawConfig{Alpha: 0, Providers: []int{0}, Consumers: []int{1}}); err == nil {
		t.Error("alpha <= 0 must error")
	}
}

func TestPowerLawNeverSelfFlow(t *testing.T) {
	// Provider 5 is also a consumer; flows from 5 must not target 5.
	flows, err := PowerLaw(PowerLawConfig{
		Providers: []int{5}, Consumers: []int{5, 6},
		Alpha: 1, Flows: 500, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatalf("self flow: %+v", f)
		}
	}
}

func TestRankContentProviders(t *testing.T) {
	// AS 0: stub with 3 providers+peers. AS 4 has many transit neighbors.
	b := topo.NewBuilder(6)
	b.AddPC(1, 0).AddPC(2, 0).AddPeer(0, 3)
	b.AddPC(1, 4).AddPC(2, 4).AddPC(3, 4).AddPeer(4, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ranked := RankContentProviders(g, 3)
	if len(ranked) != 3 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0] != 4 {
		t.Errorf("top provider = %d, want 4 (4 transit neighbors)", ranked[0])
	}
	if ranked[1] != 0 {
		t.Errorf("second = %d, want 0 (3 transit neighbors)", ranked[1])
	}
	// count > N clamps.
	if got := RankContentProviders(g, 100); len(got) != 6 {
		t.Errorf("clamped rank list = %d entries, want 6", len(got))
	}
}

func TestStubASes(t *testing.T) {
	b := topo.NewBuilder(4)
	b.AddPC(0, 1).AddPC(0, 2).AddPC(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stubs := StubASes(g)
	want := map[int]bool{1: true, 3: true}
	if len(stubs) != 2 || !want[stubs[0]] || !want[stubs[1]] {
		t.Errorf("stubs = %v, want [1 3]", stubs)
	}
}
