// Package parallel provides the small set of fork-join helpers used by the
// compute-heavy parts of this repository: per-destination BGP route
// computation, path-diversity counting, and bulk flow simulation.
//
// The helpers are deliberately minimal: a bounded worker pool over an index
// range with deterministic output placement, so results are identical
// regardless of the worker count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: the number of usable CPUs.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n) using the given number of
// workers. Work is distributed dynamically (atomic counter) so uneven item
// costs still balance. ForEach returns when all items are done.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every index in [0, n) and collects the results in order.
// It is ForEach with a typed result slice.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// ChunkedForEach is like ForEach but hands each worker contiguous chunks of
// the index space. It reduces scheduling overhead when fn is very cheap and
// preserves per-chunk locality.
func ChunkedForEach(n, workers, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if chunk <= 0 {
		chunk = (n + workers*4 - 1) / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	nchunks := (n + chunk - 1) / chunk
	ForEach(nchunks, workers, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}
