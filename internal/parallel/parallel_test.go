package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		seen := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) {
			seen[i].Add(1)
		})
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("fn must not be called for n <= 0")
	}
}

func TestMapDeterministicPlacement(t *testing.T) {
	got := Map(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestChunkedForEachCoversRange(t *testing.T) {
	for _, tc := range []struct{ n, workers, chunk int }{
		{1000, 4, 0}, {1000, 4, 7}, {5, 16, 3}, {1, 1, 1}, {0, 4, 10},
	} {
		seen := make([]atomic.Int32, tc.n)
		ChunkedForEach(tc.n, tc.workers, tc.chunk, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, tc.n)
			}
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
		})
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("%+v: index %d visited %d times, want 1", tc, i, got)
			}
		}
	}
}

// Property: Map output is independent of worker count.
func TestQuickMapWorkerInvariance(t *testing.T) {
	f := func(n uint8, workers uint8) bool {
		w := int(workers%16) + 1
		serial := Map(int(n), 1, func(i int) int { return 3*i + 1 })
		par := Map(int(n), w, func(i int) int { return 3*i + 1 })
		if len(serial) != len(par) {
			return false
		}
		for i := range serial {
			if serial[i] != par[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkForEach(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForEach(256, 4, func(i int) {
			_ = i * i
		})
	}
}
