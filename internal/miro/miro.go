// Package miro implements the MIRO baseline (Xu & Rexford, SIGCOMM 2006)
// the paper compares against: multi-path interdomain routing on the control
// plane, where a source AS negotiates alternative routes with ASes on its
// default path and traffic is tunneled to the chosen deviation point.
//
// Following Section IV of the MIFO paper, we adopt MIRO's *strict* policy:
// an AS only offers alternatives with the same local preference (route
// class) as its default route, and for scalability it advertises at most
// MaxAlternatives routes per destination. Both negotiation endpoints (the
// source and the deviation AS) must be MIRO-capable.
package miro

import (
	"repro/internal/bgp"
	"repro/internal/topo"
)

// Config parameterizes the MIRO baseline.
type Config struct {
	// MaxAlternatives is the per-destination cap on alternative routes an
	// AS will offer during negotiation (MIRO's scalability limit).
	MaxAlternatives int
}

// DefaultConfig mirrors the strict policy used in the paper's evaluation.
func DefaultConfig() Config { return Config{MaxAlternatives: 2} }

func (c Config) maxAlts() int {
	if c.MaxAlternatives <= 0 {
		return 2
	}
	return c.MaxAlternatives
}

// offeredAlts returns the alternatives AS u is willing to offer for d's
// destination under the strict policy: RIB entries other than the default
// whose class equals the default's class, capped at MaxAlternatives.
func (c Config) offeredAlts(g *topo.Graph, d *bgp.Dest, u int) []bgp.Alt {
	rib := bgp.RIB(g, d, u)
	if len(rib) <= 1 {
		return nil
	}
	def := rib[0]
	var out []bgp.Alt
	for _, alt := range rib[1:] {
		if alt.Class != def.Class {
			continue
		}
		out = append(out, alt)
		if len(out) >= c.maxAlts() {
			break
		}
	}
	return out
}

// AvailablePaths counts the AS-level paths usable by the pair (src, d.Dst())
// under MIRO: the default path plus every alternative negotiable with a
// capable AS on the default path. capable == nil means full deployment.
func (c Config) AvailablePaths(g *topo.Graph, d *bgp.Dest, src int, capable []bool) uint64 {
	if src == d.Dst() {
		return 1
	}
	if !d.Reachable(src) {
		return 0
	}
	isCap := func(v int) bool { return capable == nil || capable[v] }
	count := uint64(1) // the default path
	if !isCap(src) {
		return count // the source cannot negotiate
	}
	var pathBuf [24]int // Internet AS paths are short; counting only reads
	for _, u := range d.ASPathInto(src, pathBuf[:0]) {
		if u == d.Dst() || !isCap(u) {
			continue
		}
		count += uint64(len(c.offeredAlts(g, d, u)))
	}
	return count
}

// Alternate is one negotiated MIRO path: the deviation AS and the full
// AS-level path from the source through it.
type Alternate struct {
	// Deviate is the AS at which the path departs from the default route.
	Deviate int
	// Path is the complete AS path [src, ..., dst].
	Path []int
}

// Alternates enumerates the negotiated alternative paths for (src, dst):
// for every capable AS u on the default path, each offered alternative is
// spliced as default-prefix + u's alternative route. The default path
// itself is not included. Paths that would revisit an AS are discarded
// (MIRO verifies loop-freedom during negotiation).
func (c Config) Alternates(g *topo.Graph, d *bgp.Dest, src int, capable []bool) []Alternate {
	if src == d.Dst() || !d.Reachable(src) {
		return nil
	}
	isCap := func(v int) bool { return capable == nil || capable[v] }
	if !isCap(src) {
		return nil
	}
	def := d.ASPath(src)
	var out []Alternate
	for i, u := range def {
		if u == d.Dst() || !isCap(u) {
			continue
		}
		for _, alt := range c.offeredAlts(g, d, u) {
			suffix := bgp.PathVia(d, u, int(alt.Via))
			if suffix == nil {
				continue
			}
			path := make([]int, 0, i+len(suffix))
			path = append(path, def[:i]...)
			path = append(path, suffix...)
			if hasDuplicate(path) {
				continue
			}
			out = append(out, Alternate{Deviate: u, Path: path})
		}
	}
	return out
}

func hasDuplicate(path []int) bool {
	seen := make(map[int]struct{}, len(path))
	for _, v := range path {
		if _, ok := seen[v]; ok {
			return true
		}
		seen[v] = struct{}{}
	}
	return false
}
