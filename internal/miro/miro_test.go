package miro

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/topo"
)

// fig2a: ASes 1..3 peer; AS 0 is customer of all three.
func fig2a(t testing.TB) *topo.Graph {
	t.Helper()
	g, err := topo.NewBuilder(4).
		AddPC(1, 0).AddPC(2, 0).AddPC(3, 0).
		AddPeer(1, 2).AddPeer(2, 3).AddPeer(1, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAvailablePathsStrictPolicy(t *testing.T) {
	g := fig2a(t)
	d := bgp.Compute(g, 0)
	cfg := DefaultConfig()
	// AS 1's default is the direct customer route (class customer); the
	// peer alternatives via 2 and 3 have a different class, so the strict
	// policy offers nothing. MIRO sees only the default path.
	if got := cfg.AvailablePaths(g, d, 1, nil); got != 1 {
		t.Errorf("AvailablePaths(1) = %d, want 1 under strict policy", got)
	}
}

func TestAvailablePathsSameClassAlternatives(t *testing.T) {
	// src 4 has two same-class (customer) routes: via 1 and via 2.
	b := topo.NewBuilder(5)
	b.AddPC(1, 0).AddPC(2, 0).AddPC(4, 1).AddPC(4, 2).AddPC(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := bgp.Compute(g, 0)
	cfg := DefaultConfig()
	// Default from 4: customer via 1 (tie-break). Alternative via 2 has the
	// same class -> offered. 1 default + 1 alternative.
	if got := cfg.AvailablePaths(g, d, 4, nil); got != 2 {
		t.Errorf("AvailablePaths(4) = %d, want 2", got)
	}
	// From 3 (provider of 4... actually 3 is 4's provider? AddPC(3,4): 3
	// provides 4). 3's default goes through 4, which offers 1 alternative.
	got := cfg.AvailablePaths(g, d, 3, nil)
	if got < 2 {
		t.Errorf("AvailablePaths(3) = %d, want >= 2 (deviation at 4)", got)
	}
}

func TestAvailablePathsDeployment(t *testing.T) {
	b := topo.NewBuilder(5)
	b.AddPC(1, 0).AddPC(2, 0).AddPC(4, 1).AddPC(4, 2).AddPC(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := bgp.Compute(g, 0)
	cfg := DefaultConfig()

	none := make([]bool, g.N())
	if got := cfg.AvailablePaths(g, d, 4, none); got != 1 {
		t.Errorf("no deployment: %d, want 1", got)
	}
	// Source capable but deviation AS not: still just the default.
	srcOnly := make([]bool, g.N())
	srcOnly[3] = true
	if got := cfg.AvailablePaths(g, d, 3, srcOnly); got != 1 {
		t.Errorf("src-only deployment: %d, want 1", got)
	}
	// Source not capable: cannot negotiate at all.
	devOnly := make([]bool, g.N())
	devOnly[4] = true
	if got := cfg.AvailablePaths(g, d, 3, devOnly); got != 1 {
		t.Errorf("deviation-only deployment: %d, want 1", got)
	}
	both := make([]bool, g.N())
	both[3], both[4] = true, true
	if got := cfg.AvailablePaths(g, d, 3, both); got != 2 {
		t.Errorf("both capable: %d, want 2", got)
	}
}

func TestMaxAlternativesCap(t *testing.T) {
	// src 9 multi-homed to 5 providers, all with customer routes to 0.
	b := topo.NewBuilder(10)
	for p := 1; p <= 5; p++ {
		b.AddPC(p, 0)
		b.AddPC(p, 9)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := bgp.Compute(g, 0)
	cfg := Config{MaxAlternatives: 2}
	// 4 same-class alternatives exist but only 2 are offered.
	if got := cfg.AvailablePaths(g, d, 9, nil); got != 3 {
		t.Errorf("AvailablePaths = %d, want 3 (default + 2 capped)", got)
	}
	uncapped := Config{MaxAlternatives: 10}
	if got := uncapped.AvailablePaths(g, d, 9, nil); got != 5 {
		t.Errorf("AvailablePaths = %d, want 5 with high cap", got)
	}
}

func TestAlternatesPathsAreValid(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 300, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	d := bgp.Compute(g, 0)
	cfg := DefaultConfig()
	total := 0
	for src := 1; src < g.N(); src += 7 {
		alts := cfg.Alternates(g, d, src, nil)
		total += len(alts)
		for _, a := range alts {
			p := a.Path
			if p[0] != src || p[len(p)-1] != 0 {
				t.Fatalf("alternate path endpoints wrong: %v", p)
			}
			seen := map[int]bool{}
			devFound := false
			for i, v := range p {
				if seen[v] {
					t.Fatalf("alternate path revisits %d: %v", v, p)
				}
				seen[v] = true
				if v == a.Deviate {
					devFound = true
				}
				if i+1 < len(p) && !g.HasLink(v, p[i+1]) {
					t.Fatalf("alternate path uses nonexistent link %d-%d", v, p[i+1])
				}
			}
			if !devFound {
				t.Fatalf("deviation AS %d not on path %v", a.Deviate, p)
			}
		}
	}
	if total == 0 {
		t.Error("generated topology yielded no MIRO alternates at all")
	}
}

func TestAlternatesCountMatchesAvailablePaths(t *testing.T) {
	g, err := topo.Generate(topo.GenConfig{N: 200, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	d := bgp.Compute(g, 3)
	cfg := DefaultConfig()
	for src := 0; src < g.N(); src += 13 {
		if src == 3 {
			continue
		}
		alts := cfg.Alternates(g, d, src, nil)
		want := cfg.AvailablePaths(g, d, src, nil)
		// Alternates drops spliced paths that revisit an AS, so it may be
		// smaller, never larger.
		if uint64(len(alts))+1 > want {
			t.Fatalf("src %d: %d alternates + default > AvailablePaths %d",
				src, len(alts), want)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	g := fig2a(t)
	d := bgp.Compute(g, 0)
	cfg := DefaultConfig()
	if got := cfg.AvailablePaths(g, d, 0, nil); got != 1 {
		t.Errorf("src == dst should count 1, got %d", got)
	}
	if alts := cfg.Alternates(g, d, 0, nil); alts != nil {
		t.Errorf("src == dst should have no alternates, got %v", alts)
	}
	var zero Config
	if zero.maxAlts() != 2 {
		t.Errorf("zero config cap = %d, want default 2", zero.maxAlts())
	}
}
