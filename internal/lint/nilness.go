package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// nilness is a native, syntax-directed sibling of the x/tools SSA-based
// `nilness` pass (the dependency is intentionally not vendored; see
// xtools.go). It proves the one shape that needs no dataflow engine:
// inside the true branch of `if x == nil` (or the else branch of
// `if x != nil`), with no intervening reassignment of x, a dereference,
// field/method selection, or index through x must panic.

// Nilness returns the guaranteed-nil-dereference analyzer.
func Nilness() *Analyzer {
	return &Analyzer{
		Name: "nilness",
		Doc:  "dereference of a variable inside the branch that proved it nil",
		Run:  runNilness,
	}
}

func runNilness(pass *Pass) {
	info := pass.Pkg.TypesInfo

	// nilComparison decodes `x == nil` / `x != nil` over a pointer-like x.
	nilComparison := func(cond ast.Expr) (obj types.Object, name string, eq bool) {
		be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return nil, "", false
		}
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		if yid, yok := y.(*ast.Ident); !yok || yid.Name != "nil" {
			if xid, xok := x.(*ast.Ident); xok && xid.Name == "nil" {
				x = y
			} else {
				return nil, "", false
			}
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return nil, "", false
		}
		o := info.Uses[id]
		if o == nil {
			return nil, "", false
		}
		switch o.Type().Underlying().(type) {
		case *types.Pointer, *types.Map, *types.Slice, *types.Chan:
			return o, id.Name, be.Op == token.EQL
		}
		return nil, "", false
	}

	// checkBranch scans the statements executed when obj is known nil,
	// stopping at any reassignment of obj or early exit.
	checkBranch := func(obj types.Object, name string, body *ast.BlockStmt) {
		if body == nil {
			return
		}
		stopped := false
		ast.Inspect(body, func(n ast.Node) bool {
			if stopped {
				return false
			}
			switch v := n.(type) {
			case *ast.FuncLit:
				return false // may run after obj changes
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && info.Uses[id] == obj {
						stopped = true
						return false
					}
				}
			case *ast.UnaryExpr:
				if v.Op == token.AND { // &x is safe, and so is anything under it
					if id, ok := ast.Unparen(v.X).(*ast.Ident); ok && info.Uses[id] == obj {
						return false
					}
				}
			case *ast.StarExpr:
				if id, ok := ast.Unparen(v.X).(*ast.Ident); ok && info.Uses[id] == obj {
					pass.Reportf(v.Pos(), "nil dereference: this branch is only reached when %q is nil", name)
				}
			case *ast.SelectorExpr:
				id, ok := ast.Unparen(v.X).(*ast.Ident)
				if !ok || info.Uses[id] != obj {
					return true
				}
				// Selecting through a nil pointer panics; calling a method
				// with a value receiver on a nil pointer panics at the
				// implicit dereference too. Methods on the pointer itself
				// may be legal (nil-receiver methods are a Go idiom), so
				// only flag field selections and value-receiver methods.
				if sel, selOK := info.Selections[v]; selOK {
					if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
						return true
					}
					if sel.Kind() == types.FieldVal {
						pass.Reportf(v.Pos(), "nil dereference: field %s read on %q, which is nil in this branch", v.Sel.Name, name)
					} else if sel.Kind() == types.MethodVal && sel.Indirect() {
						if recv := sel.Obj().(*types.Func).Type().(*types.Signature).Recv(); recv != nil {
							if _, ptrRecv := recv.Type().(*types.Pointer); !ptrRecv {
								pass.Reportf(v.Pos(), "nil dereference: value method %s called on %q, which is nil in this branch", v.Sel.Name, name)
							}
						}
					}
				}
			case *ast.IndexExpr:
				if id, ok := ast.Unparen(v.X).(*ast.Ident); ok && info.Uses[id] == obj {
					if _, isMap := obj.Type().Underlying().(*types.Map); !isMap {
						// Reading a nil map is fine; indexing a nil slice or
						// dereferencing-for-index a nil pointer panics.
						pass.Reportf(v.Pos(), "nil index: %q is nil in this branch", name)
					}
				}
			}
			return true
		})
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || ifs.Init != nil {
				return true
			}
			obj, name, eq := nilComparison(ifs.Cond)
			if obj == nil {
				return true
			}
			if eq {
				checkBranch(obj, name, ifs.Body)
			} else if els, ok := ifs.Else.(*ast.BlockStmt); ok {
				checkBranch(obj, name, els)
			}
			return true
		})
	}
}
