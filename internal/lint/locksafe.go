package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// locksafe guards the seams between the locked control plane and the
// wait-free data plane: a sync.Mutex/RWMutex must never be held across
// an operation that can block indefinitely or re-enter another writer's
// critical section. Those are exactly the deadlock shapes the dynamic
// `make race` / `audit-race` / `fib-race` matrix can only catch when a
// test happens to interleave them; this analyzer rejects them at build
// time. While a lock is held the analyzer flags:
//
//   - channel sends (unless in a select with a default arm);
//   - calls to a Commit method — a FIB/trie/table Commit takes the
//     writer's own lock and publishes, so nesting it under another lock
//     orders locks by accident;
//   - blocking calls: package net / net/http I/O, time.Sleep,
//     sync.WaitGroup.Wait, os/exec Run/Wait.
//
// The tracking is a source-order scan per function, the same
// approximation go vet's lostcancel-style checks use: a lock acquired on
// any path is considered held until the matching Unlock in source order;
// a deferred Unlock holds to the end of the function. Goroutine bodies
// and function literals are scanned as their own scopes (they do not
// inherit the creator's locks, and a literal may run after Unlock).

// LocksafeConfig parameterizes the locksafe analyzer.
type LocksafeConfig struct {
	// CommitMethods are method names that publish a staged generation.
	CommitMethods []string
	// BlockingPkgs are import paths whose calls count as blocking I/O.
	BlockingPkgs []string
}

// DefaultLocksafeConfig covers the repository's transaction APIs.
func DefaultLocksafeConfig() LocksafeConfig {
	return LocksafeConfig{
		CommitMethods: []string{"Commit"},
		BlockingPkgs:  []string{"net", "net/http", "os/exec"},
	}
}

// Locksafe returns the lock-scope analyzer.
func Locksafe(cfg LocksafeConfig) *Analyzer {
	a := &Analyzer{
		Name: "locksafe",
		Doc:  "no mutex held across a channel send, a Commit, or a blocking call",
	}
	a.Run = func(pass *Pass) { runLocksafe(pass, cfg) }
	return a
}

type lockScanner struct {
	pass *Pass
	cfg  LocksafeConfig
	info *types.Info
	// held maps the canonical receiver expression ("t.mu") to the
	// position where the lock was taken.
	held map[string]token.Pos
	// nonblockingSends marks sends that sit in a select arm with a
	// default clause.
	nonblockingSends map[*ast.SendStmt]bool
}

func runLocksafe(pass *Pass, cfg LocksafeConfig) {
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanLockScope(pass, cfg, fd.Body)
		}
	}
}

// scanLockScope analyzes one function scope (a declared body or a
// function literal) with a fresh held-set, queueing inner literals as
// their own scopes.
func scanLockScope(pass *Pass, cfg LocksafeConfig, body *ast.BlockStmt) {
	s := &lockScanner{
		pass:             pass,
		cfg:              cfg,
		info:             pass.Pkg.TypesInfo,
		held:             map[string]token.Pos{},
		nonblockingSends: map[*ast.SendStmt]bool{},
	}
	var inner []*ast.BlockStmt
	s.scan(body, &inner)
	for _, b := range inner {
		scanLockScope(pass, cfg, b)
	}
}

// heldNames returns the held lock expressions, oldest position first.
func (s *lockScanner) heldNames() []string {
	names := make([]string, 0, len(s.held))
	for n := range s.held {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return s.held[names[i]] < s.held[names[j]] })
	return names
}

func (s *lockScanner) reportHeld(pos token.Pos, what string) {
	if len(s.held) == 0 {
		return
	}
	s.pass.Reportf(pos, "%s while holding %s: release the lock first (locks must not outlive their critical section into blocking or publishing calls)",
		what, s.heldNames()[0])
}

// scan walks n in source order, updating lock state and collecting the
// bodies of function literals and go statements for independent scans.
func (s *lockScanner) scan(n ast.Node, inner *[]*ast.BlockStmt) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			*inner = append(*inner, v.Body)
			return false // runs later, under its own lock state
		case *ast.GoStmt:
			// The goroutine does not hold the creator's locks; its calls
			// are scanned as a fresh scope.
			if fl, ok := v.Call.Fun.(*ast.FuncLit); ok {
				*inner = append(*inner, fl.Body)
			}
			return false
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held to function end (that
			// is its point); any other deferred call runs after the body,
			// so it is not "under" the locks held here.
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, c := range v.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok {
						continue
					}
					if send, ok := cc.Comm.(*ast.SendStmt); ok {
						s.nonblockingSends[send] = true
					}
				}
			}
			return true
		case *ast.SendStmt:
			if !s.nonblockingSends[v] {
				s.reportHeld(v.Pos(), "channel send")
			}
			return true
		case *ast.CallExpr:
			s.call(v)
			return true
		}
		return true
	})
}

func (s *lockScanner) call(call *ast.CallExpr) {
	fn := calleeFunc(s.info, call)
	if fn == nil {
		return
	}
	name := fn.Name()
	if lockRecvName(fn) != "" {
		recv := ""
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recv = exprString(sel.X)
		}
		switch name {
		case "Lock", "RLock":
			s.held[recv] = call.Pos()
		case "Unlock", "RUnlock":
			delete(s.held, recv)
		}
		return
	}
	for _, commit := range s.cfg.CommitMethods {
		if name == commit && isMethod(fn) {
			s.reportHeld(call.Pos(), "call to "+exprString(call.Fun))
			return
		}
	}
	if pkg := fn.Pkg(); pkg != nil {
		path := pkg.Path()
		for _, bp := range s.cfg.BlockingPkgs {
			if path == bp {
				s.reportHeld(call.Pos(), "blocking call to "+exprString(call.Fun))
				return
			}
		}
		if path == "time" && name == "Sleep" {
			s.reportHeld(call.Pos(), "time.Sleep")
			return
		}
		if path == "sync" && name == "Wait" && isMethod(fn) {
			s.reportHeld(call.Pos(), "call to "+exprString(call.Fun))
			return
		}
	}
}

func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
