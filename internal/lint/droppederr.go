package lint

import (
	"go/ast"
	"go/types"
)

// droppederr hunts silently dropped errors in the two shapes the tree
// sweep (ISSUE 5) targets:
//
//   - an error assigned to the blank identifier, in any position:
//     `_ = w.Flush()`, `n, _ := f()` where the second result is an error;
//   - an unchecked expression-statement call to a method named Close,
//     Flush, or Sync that returns an error — the calls whose failure is
//     the write actually being lost (buffered writers, files).
//
// `defer f.Close()` on a read-side file is idiomatic and stays legal
// (deferred calls are not expression statements). A drop that is truly
// intended must say so:
//
//	//mifolint:ignore droppederr <why the error is unactionable>
//
// which is exactly the justification trail the linter exists to record.

// Droppederr returns the dropped-error analyzer.
func Droppederr() *Analyzer {
	return &Analyzer{
		Name: "droppederr",
		Doc:  "errors must not be silently discarded via _ or unchecked Close/Flush/Sync calls",
		Run:  runDroppederr,
	}
}

var flushers = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func runDroppederr(pass *Pass) {
	info := pass.Pkg.TypesInfo
	errType := types.Universe.Lookup("error").Type()
	isErr := func(t types.Type) bool { return t != nil && types.Identical(t, errType) }

	// typeAt resolves the type flowing into LHS position i of an
	// assignment with the given RHS list.
	typeAt := func(lhsLen int, rhs []ast.Expr, i int) types.Type {
		if len(rhs) == lhsLen {
			if tv, ok := info.Types[rhs[i]]; ok {
				return tv.Type
			}
			return nil
		}
		if len(rhs) == 1 {
			tv, ok := info.Types[rhs[0]]
			if !ok {
				return nil
			}
			if tup, ok := tv.Type.(*types.Tuple); ok && i < tup.Len() {
				return tup.At(i).Type()
			}
		}
		return nil
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" {
						continue
					}
					if isErr(typeAt(len(v.Lhs), v.Rhs, i)) {
						pass.Reportf(lhs.Pos(), "error silently discarded with _: handle it, or justify with an ignore directive")
					}
				}
			case *ast.ExprStmt:
				call, ok := v.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || !flushers[fn.Name()] || !isMethod(fn) {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				res := sig.Results()
				if res.Len() == 0 || !isErr(res.At(res.Len()-1).Type()) {
					return true
				}
				pass.Reportf(call.Pos(), "%s's error is unchecked: a failed %s is the write being lost", exprString(call.Fun), fn.Name())
			}
			return true
		})
	}
}
