package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ringorder enforces the publish protocol of the repository's hand-rolled
// lock-free rings (the audit recorder's segments, the span tracer's
// segments, the tsdb sample and bucket rings). A ring type declares its
// field roles in its doc comment:
//
//	//mifo:ring payload=<f>[,<f>...] cursor=<f> [read=<f>] [latch=<f>] [init=<func>[,<func>...]]
//
// payload names the slot storage; cursor is the write cursor whose atomic
// store is the release edge that publishes slots; read, when present, is
// a separate consumer cursor (SPSC rings); latch is a producer CAS latch.
// Within every function of the declaring package (tests included) the
// analyzer then checks, in source order:
//
//   - writer ordering: every payload slot write must be followed by a
//     cursor publish (atomic Store/Add/Swap/CAS) in the same function —
//     a write after the last publish is visible to readers before its
//     bytes are, the exact torn-read bug the protocol exists to prevent;
//   - reader acquire: a payload slot read must be preceded by an atomic
//     cursor load — reading slots without the acquire edge reads bytes
//     the cursor has not yet ordered;
//   - torn-read discard: in overwriting rings (no read role) the cursor
//     must be re-loaded after the last payload read so the caller can
//     discard the window the writer may have lapped (the Raw/Tier/Latest
//     discipline in internal/obs/tsdb);
//   - consumer ordering: the read cursor may only be advanced after the
//     last payload read — storing it first licenses producers to
//     overwrite the very slots being consumed;
//   - atomicity and encapsulation: cursor/read/latch fields are touched
//     only through atomic method calls, payload fields only through
//     element access (index, len/cap, range) — aliasing the slice or
//     reassigning a role field outside the construction path defeats
//     every ordering guarantee.
//
// Construction is exempt: the methods named in init=, the type's init
// method, and new<Type>/New<Type> constructors run before the ring is
// shared. Role fields are expected to be unexported, so every access the
// protocol governs is in the declaring package — cross-package accesses
// to exported ring internals are outside this analyzer's reach.

// ringSpec is one parsed //mifo:ring directive.
type ringSpec struct {
	typeName string
	pos      token.Pos
	payload  map[string]bool
	cursor   string
	read     string // "" for overwriting rings
	latch    string
	initFns  map[string]bool // extra construction funcKeys
}

// roleOf classifies a field name under the spec.
func (r *ringSpec) roleOf(field string) string {
	switch {
	case r.payload[field]:
		return "payload"
	case field == r.cursor:
		return "cursor"
	case r.read != "" && field == r.read:
		return "read"
	case r.latch != "" && field == r.latch:
		return "latch"
	}
	return ""
}

// isConstruction reports whether key (funcKey form "Recv.Name" or "Name")
// is part of the ring's construction path.
func (r *ringSpec) isConstruction(key string) bool {
	if r.initFns[key] {
		return true
	}
	if key == r.typeName+".init" {
		return true
	}
	// new<Type> / New<Type> free functions, first letter either case.
	if strings.EqualFold(key, "new"+r.typeName) {
		return true
	}
	return false
}

// atomicWriteMethods publish; Load acquires.
var atomicWriteMethods = map[string]bool{
	"Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "And": true, "Or": true,
}

// ringEvent is one role-field access inside a function, in source order.
type ringEvent struct {
	role string // payload | cursor | read | latch
	kind string // write | read | pub | load | readpub | readload | latchop | bad
	msg  string // for kind == "bad"
	pos  token.Pos
}

// Ringorder returns the ring publish-protocol analyzer.
func Ringorder() *Analyzer {
	a := &Analyzer{
		Name: "ringorder",
		Doc:  "//mifo:ring types: payload writes happen-before the cursor publish, readers acquire the cursor and discard torn windows, ring fields stay atomic and encapsulated",
	}
	a.Run = runRingorder
	return a
}

func runRingorder(pass *Pass) {
	specs := parseRingDirectives(pass)
	if len(specs) == 0 {
		return
	}
	for _, file := range pass.Pkg.AllFiles() {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRingFunc(pass, specs, fd)
		}
	}
}

// parseRingDirectives scans the package's type declarations for
// //mifo:ring and validates the declared roles against the struct.
func parseRingDirectives(pass *Pass) map[string]*ringSpec {
	specs := map[string]*ringSpec{}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				tspec, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := tspec.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if doc == nil {
					continue
				}
				for _, c := range doc.List {
					if !strings.HasPrefix(c.Text, RingDirective) {
						continue
					}
					spec := parseRingSpec(pass, tspec, c)
					if spec != nil {
						specs[spec.typeName] = spec
					}
				}
			}
		}
	}
	return specs
}

func parseRingSpec(pass *Pass, tspec *ast.TypeSpec, c *ast.Comment) *ringSpec {
	malformed := func(why string) *ringSpec {
		pass.Reportf(c.Pos(), "malformed //mifo:ring directive on %s: %s (want payload=<f>[,<f>] cursor=<f> [read=<f>] [latch=<f>] [init=<func>,...])",
			tspec.Name.Name, why)
		return nil
	}
	st, ok := tspec.Type.(*ast.StructType)
	if !ok {
		return malformed("not a struct type")
	}
	fields := map[string]bool{}
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			fields[n.Name] = true
		}
	}
	spec := &ringSpec{
		typeName: tspec.Name.Name,
		pos:      c.Pos(),
		payload:  map[string]bool{},
		initFns:  map[string]bool{},
	}
	for _, kv := range strings.Fields(strings.TrimPrefix(c.Text, RingDirective)) {
		key, val, found := strings.Cut(kv, "=")
		if !found || val == "" {
			return malformed("bad clause " + kv)
		}
		switch key {
		case "payload":
			for _, f := range strings.Split(val, ",") {
				if !fields[f] {
					return malformed("payload field " + f + " not in struct")
				}
				spec.payload[f] = true
			}
		case "cursor", "read", "latch":
			if !fields[val] {
				return malformed(key + " field " + val + " not in struct")
			}
			switch key {
			case "cursor":
				spec.cursor = val
			case "read":
				spec.read = val
			case "latch":
				spec.latch = val
			}
		case "init":
			for _, f := range strings.Split(val, ",") {
				spec.initFns[f] = true
			}
		default:
			return malformed("unknown clause " + key)
		}
	}
	if len(spec.payload) == 0 || spec.cursor == "" {
		return malformed("payload= and cursor= are required")
	}
	return spec
}

// checkRingFunc collects the role accesses in one function and applies
// the ordering rules per ring type.
func checkRingFunc(pass *Pass, specs map[string]*ringSpec, fd *ast.FuncDecl) {
	info := pass.Pkg.TypesInfo
	key := funcKey(fd)

	// Parent links for context classification.
	parent := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	// ringTypeOf resolves an expression to an annotated ring spec.
	ringTypeOf := func(e ast.Expr) *ringSpec {
		tv, ok := info.Types[e]
		if !ok {
			return nil
		}
		n, ok := namedType(tv.Type)
		if !ok {
			return nil
		}
		obj := n.Obj()
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pass.Pkg.PkgPath {
			return nil
		}
		return specs[obj.Name()]
	}

	events := map[*ringSpec][]ringEvent{}
	add := func(spec *ringSpec, ev ringEvent) {
		events[spec] = append(events[spec], ev)
	}

	// assignedIn reports whether sel (or an index into it) is a target of
	// stmt's Lhs.
	inLhsOf := func(n ast.Node) bool {
		p := parent[n]
		as, ok := p.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, l := range as.Lhs {
			if l == n {
				return true
			}
		}
		return false
	}

	// atomicMethodOn classifies sel.<m>() call contexts: returns the
	// method name when parent is a SelectorExpr being called.
	atomicMethodOn := func(n ast.Node) string {
		p, ok := parent[n].(*ast.SelectorExpr)
		if !ok || p.X != n {
			return ""
		}
		call, ok := parent[p].(*ast.CallExpr)
		if !ok || call.Fun != p {
			return ""
		}
		name := p.Sel.Name
		if name == "Load" || atomicWriteMethods[name] {
			return name
		}
		return ""
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		spec := ringTypeOf(sel.X)
		if spec == nil {
			return true
		}
		role := spec.roleOf(sel.Sel.Name)
		if role == "" {
			return true
		}
		pos := sel.Pos()
		switch role {
		case "payload":
			add(spec, classifyPayload(sel, parent, inLhsOf, atomicMethodOn))
		case "cursor", "read", "latch":
			if m := atomicMethodOn(sel); m != "" {
				kind := "load"
				if atomicWriteMethods[m] {
					kind = "pub"
				}
				if role == "read" {
					kind = "read" + kind
				}
				if role == "latch" {
					kind = "latchop"
				}
				add(spec, ringEvent{role: role, kind: kind, pos: pos})
				break
			}
			if inLhsOf(sel) {
				add(spec, ringEvent{role: role, kind: "bad", pos: pos,
					msg: "ring " + role + " field " + spec.typeName + "." + sel.Sel.Name + " reassigned outside construction: cursors are atomic and initialized once"})
				break
			}
			add(spec, ringEvent{role: role, kind: "bad", pos: pos,
				msg: "ring " + role + " field " + spec.typeName + "." + sel.Sel.Name + " accessed non-atomically: every touch must be an atomic method call"})
		}
		return true
	})

	for spec, evs := range events {
		if spec.isConstruction(key) {
			continue
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		applyRingRules(pass, spec, key, evs)
	}
}

// classifyPayload decides what one payload-field access does.
func classifyPayload(sel *ast.SelectorExpr, parent map[ast.Node]ast.Node,
	inLhsOf func(ast.Node) bool, atomicMethodOn func(ast.Node) string) ringEvent {

	pos := sel.Pos()
	name := sel.Sel.Name
	switch p := parent[sel].(type) {
	case *ast.IndexExpr:
		if p.X != sel {
			break
		}
		// Element access: the slot may itself be an atomic cell.
		if m := atomicMethodOn(p); m != "" {
			if atomicWriteMethods[m] {
				return ringEvent{role: "payload", kind: "write", pos: pos}
			}
			return ringEvent{role: "payload", kind: "read", pos: pos}
		}
		if inLhsOf(p) {
			return ringEvent{role: "payload", kind: "write", pos: pos}
		}
		if inc, ok := parent[p].(*ast.IncDecStmt); ok && inc.X == p {
			return ringEvent{role: "payload", kind: "write", pos: pos}
		}
		// &buf[i] hands the slot out (in-place consumption): a read for
		// ordering purposes.
		return ringEvent{role: "payload", kind: "read", pos: pos}
	case *ast.CallExpr:
		if id, ok := p.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			return ringEvent{role: "payload", kind: "neutral", pos: pos}
		}
	case *ast.RangeStmt:
		if p.X == sel {
			if p.Value == nil {
				return ringEvent{role: "payload", kind: "neutral", pos: pos}
			}
			return ringEvent{role: "payload", kind: "read", pos: pos}
		}
	case *ast.AssignStmt:
		if inLhsOf(sel) {
			return ringEvent{role: "payload", kind: "bad", pos: pos,
				msg: "ring payload field " + name + " reassigned outside construction: the slot storage is fixed once the ring is shared"}
		}
	}
	return ringEvent{role: "payload", kind: "bad", pos: pos,
		msg: "ring payload field " + name + " aliased or escapes: slots may only be touched by element access so the cursor protocol governs every byte"}
}

// applyRingRules applies the ordering rules to one function's accesses of
// one ring type.
func applyRingRules(pass *Pass, spec *ringSpec, fnKey string, evs []ringEvent) {
	var writes, reads, pubs, loads, readpubs []ringEvent
	for _, ev := range evs {
		if ev.kind == "bad" {
			pass.Reportf(ev.pos, "%s", ev.msg)
			continue
		}
		switch ev.role + "/" + ev.kind {
		case "payload/write":
			writes = append(writes, ev)
		case "payload/read":
			reads = append(reads, ev)
		case "cursor/pub":
			pubs = append(pubs, ev)
		case "cursor/load":
			loads = append(loads, ev)
		case "read/readpub":
			readpubs = append(readpubs, ev)
		}
	}

	// Writer ordering: every slot write happens-before a cursor publish.
	for _, w := range writes {
		published := false
		for _, p := range pubs {
			if p.pos > w.pos {
				published = true
				break
			}
		}
		if published {
			continue
		}
		afterPub := false
		for _, p := range pubs {
			if p.pos < w.pos {
				afterPub = true
				break
			}
		}
		if afterPub {
			pass.Reportf(w.pos, "%s payload written after the cursor publish: readers already see this slot, so the write races their copy", spec.typeName)
		} else {
			pass.Reportf(w.pos, "%s payload written but the cursor is never published in %s: slots are invisible (or stale) to readers without the atomic cursor store", spec.typeName, fnKey)
		}
	}

	if len(reads) > 0 {
		// Reader acquire: a cursor load must precede the first read.
		first := reads[0]
		acquired := false
		for _, l := range loads {
			if l.pos < first.pos {
				acquired = true
				break
			}
		}
		if !acquired {
			pass.Reportf(first.pos, "%s payload read without an atomic cursor load first: the cursor acquire is the only edge that orders slot bytes", spec.typeName)
		}
		last := reads[len(reads)-1]
		if spec.read == "" {
			// Overwriting ring: re-load the cursor and discard the lapped
			// window.
			reloaded := false
			for _, l := range loads {
				if l.pos > last.pos {
					reloaded = true
					break
				}
			}
			if !reloaded {
				pass.Reportf(last.pos, "%s has no read cursor, so readers must re-load the cursor after copying payload and discard the window the writer may have lapped (torn-read discard)", spec.typeName)
			}
		}
	}

	// Consumer ordering: advancing the read cursor licenses producers to
	// overwrite — it must come after the last payload read.
	for _, rp := range readpubs {
		for _, r := range reads {
			if r.pos > rp.pos {
				pass.Reportf(rp.pos, "%s read cursor advanced before payload slots are consumed: producers may overwrite the slots still being read", spec.typeName)
				break
			}
		}
	}
}
