package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader turns `go list -export -deps -json` output into type-checked
// Packages. Dependencies — including the module's own packages — are
// imported from the build cache's export data, so only the packages under
// analysis are parsed and checked from source. This is the same split the
// x/tools unitchecker uses, built here on the standard library alone so
// the linter runs hermetically (no network, no module downloads).

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (a directory inside the target module), then
// parses and type-checks every non-dependency match. Test files are not
// loaded: the contracts under enforcement bind the shipped code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var targets []listPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one listed package against export
// data for its dependencies.
func checkPackage(lp listPkg, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(e)
	}
	var typeErrs []string
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	info := NewInfo()
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s:\n  %s", lp.ImportPath, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Name:      tpkg.Name(),
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
