package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader turns `go list -export -deps -json` output into type-checked
// Packages. Dependencies — including the module's own packages — are
// imported from the build cache's export data, so only the packages under
// analysis are parsed and checked from source. This is the same split the
// x/tools unitchecker uses, built here on the standard library alone so
// the linter runs hermetically (no network, no module downloads).
//
// In-package _test.go files are parsed and type-checked together with the
// package's source files (one extra `go list` round-trip resolves export
// data for test-only imports), so analyzers that opt in — lifecycle, and
// the ignore-directive index — see test code too. External test packages
// (package foo_test) hold only examples in this tree and are not loaded.
//
// Results are memoized per (dir, patterns) for the life of the process:
// every analyzer, the self-lint test and the ignore-audit test share one
// parse+typecheck of the tree instead of paying `go list -export` again.

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath  string
	Name        string
	Dir         string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	TestImports []string
	Standard    bool
	DepOnly     bool
	Error       *struct{ Err string }
}

// loadCache memoizes Load results per (dir, patterns).
var loadCache sync.Map // key string -> *loadEntry

type loadEntry struct {
	once sync.Once
	pkgs []*Package
	err  error
}

// Load lists patterns in dir (a directory inside the target module), then
// parses and type-checks every non-dependency match, in-package test
// files included.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	key := abs + "\x00" + strings.Join(patterns, "\x01")
	e, _ := loadCache.LoadOrStore(key, &loadEntry{})
	entry := e.(*loadEntry)
	entry.once.Do(func() {
		entry.pkgs, entry.err = loadUncached(dir, patterns)
	})
	return entry.pkgs, entry.err
}

func loadUncached(dir string, patterns []string) ([]*Package, error) {
	targets, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Test-only imports ("testing" and friends) are not in the -deps
	// closure of the shipped code; one more list call resolves them.
	missing := map[string]bool{}
	for _, t := range targets {
		if len(t.TestGoFiles) == 0 {
			continue
		}
		for _, imp := range t.TestImports {
			if imp != "unsafe" && imp != "C" && exports[imp] == "" {
				missing[imp] = true
			}
		}
	}
	if len(missing) > 0 {
		extra := make([]string, 0, len(missing))
		for p := range missing {
			extra = append(extra, p)
		}
		sort.Strings(extra)
		_, extraExports, err := goList(dir, extra)
		if err != nil {
			return nil, err
		}
		for p, e := range extraExports {
			if exports[p] == "" {
				exports[p] = e
			}
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -export -deps -json` and returns the non-dependency
// targets plus the export-data index of the whole closure.
func goList(dir string, patterns []string) ([]listPkg, map[string]string, error) {
	args := append([]string{"list", "-export", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var targets []listPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return targets, exports, nil
}

// checkPackage parses and type-checks one listed package (source and
// in-package test files as one unit) against export data for its
// dependencies.
func checkPackage(lp listPkg, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(lp.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		return files, nil
	}
	files, err := parse(lp.GoFiles)
	if err != nil {
		return nil, err
	}
	testFiles, err := parse(lp.TestGoFiles)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(e)
	}
	var typeErrs []string
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	info := NewInfo()
	all := make([]*ast.File, 0, len(files)+len(testFiles))
	all = append(all, files...)
	all = append(all, testFiles...)
	tpkg, err := conf.Check(lp.ImportPath, fset, all, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s:\n  %s", lp.ImportPath, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Name:      tpkg.Name(),
		Fset:      fset,
		Files:     files,
		TestFiles: testFiles,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
