package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// obsnames enforces the telemetry naming contract on every metric
// registered with the internal/obs registry:
//
//   - the name must be a compile-time string literal (a name computed at
//     runtime cannot be audited, and dynamic names explode cardinality);
//   - it must be snake_case with at least two segments, the first being
//     the owning component's prefix (netd_*, core_*, audit_*, sim_*...),
//     so /metrics groups by subsystem;
//   - each name is registered at exactly one call site across the whole
//     tree. The obs.Registry deliberately tolerates re-registration at
//     runtime (shared registries), which is precisely why two call sites
//     silently aliasing one counter is a bug the linter must catch.
//
// The registration methods watched are Counter, Gauge, Histogram and
// their *Vec variants on obs.Registry.
//
// The same contract, minus the component prefix, applies to span names
// passed to span.Tracer.Start/StartRoot: a span name is the analyzer's
// key for the convergence pipeline stage (mifo-conv groups by it), so it
// must be a compile-time snake_case literal with a single call site —
// two sites sharing "fib_commit" would silently merge two distinct
// stages in every latency breakdown. Span names live in their own
// namespace: a metric and a span may share a name.
//
// Time-series names passed to tsdb.Store.Series/SeriesVec follow the
// full metric contract (literal, prefixed snake_case, single site) plus
// one more rule: a tsdb series may not reuse a metric or span name.
// Series dumps and /metrics land in the same dashboards, and one name
// meaning a counter on one page and a ring of samples on another is a
// debugging trap the registries cannot catch at runtime.

// ObsnamesConfig parameterizes the obsnames analyzer.
type ObsnamesConfig struct {
	// RegistryPkgSuffix locates the registry type (path-suffix match).
	RegistryPkgSuffix string
	// RegistryTypeName is the registry's type name.
	RegistryTypeName string
	// PrefixOverrides maps a registering package's import-path suffix to
	// the metric prefixes it may use, when they differ from the package
	// name (package main cannot be a prefix).
	PrefixOverrides map[string][]string
	// SpanPkgSuffix locates the span tracer type (path-suffix match).
	// Empty disables span-name checking.
	SpanPkgSuffix string
	// SpanTypeName is the tracer's type name.
	SpanTypeName string
	// TSDBPkgSuffix locates the time-series store type (path-suffix
	// match). Empty disables tsdb series-name checking.
	TSDBPkgSuffix string
	// TSDBTypeName is the store's type name.
	TSDBTypeName string
}

// DefaultObsnamesConfig covers repro's internal/obs registry.
func DefaultObsnamesConfig() ObsnamesConfig {
	return ObsnamesConfig{
		RegistryPkgSuffix: "internal/obs",
		RegistryTypeName:  "Registry",
		PrefixOverrides: map[string][]string{
			// The simulator binary registers its experiment metrics as sim_*.
			"cmd/mifo-sim": {"sim"},
			// The obs package's own self-metrics, if it ever grows any.
			"internal/obs": {"obs"},
		},
		SpanPkgSuffix: "internal/obs/span",
		SpanTypeName:  "Tracer",
		TSDBPkgSuffix: "internal/obs/tsdb",
		TSDBTypeName:  "Store",
	}
}

var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

var tracerMethods = map[string]bool{
	"Start": true, "StartRoot": true,
}

var tsdbMethods = map[string]bool{
	"Series": true, "SeriesVec": true,
}

// metricNameRE: lowercase snake_case, >= 2 segments, digits allowed after
// the first character of a segment.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

const obsnamesFactKey = "obsnames"

type obsnamesFacts struct {
	sites     map[string][]token.Position // metric name -> registration sites
	spanSites map[string][]token.Position // span name -> Start/StartRoot sites
	tsdbSites map[string][]token.Position // tsdb series name -> Series/SeriesVec sites
}

func newObsnamesFacts() any {
	return &obsnamesFacts{
		sites:     map[string][]token.Position{},
		spanSites: map[string][]token.Position{},
		tsdbSites: map[string][]token.Position{},
	}
}

// Obsnames returns the metric-naming analyzer.
func Obsnames(cfg ObsnamesConfig) *Analyzer {
	a := &Analyzer{
		Name: "obsnames",
		Doc:  "obs metric and span names must be snake_case literals with a single registration site per name",
	}
	a.Run = func(pass *Pass) { runObsnames(pass, cfg) }
	a.Finish = finishObsnames
	return a
}

func runObsnames(pass *Pass, cfg ObsnamesConfig) {
	facts := pass.State.Get(obsnamesFactKey, newObsnamesFacts).(*obsnamesFacts)
	info := pass.Pkg.TypesInfo

	allowedPrefixes := []string{pass.Pkg.Name}
	for suffix, prefixes := range cfg.PrefixOverrides {
		if pathHasSuffix(pass.Pkg.PkgPath, suffix) {
			allowedPrefixes = prefixes
			break
		}
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			isMetric := registryMethods[sel.Sel.Name]
			isSpan := tracerMethods[sel.Sel.Name] && cfg.SpanPkgSuffix != ""
			isTSDB := tsdbMethods[sel.Sel.Name] && cfg.TSDBPkgSuffix != ""
			if !isMetric && !isSpan && !isTSDB {
				return true
			}
			recv, ok := info.Types[sel.X]
			if !ok {
				return true
			}
			switch {
			case isMetric && typeIs(recv.Type, cfg.RegistryPkgSuffix, cfg.RegistryTypeName):
				isSpan, isTSDB = false, false
			case isSpan && typeIs(recv.Type, cfg.SpanPkgSuffix, cfg.SpanTypeName):
				isMetric, isTSDB = false, false
			case isTSDB && typeIs(recv.Type, cfg.TSDBPkgSuffix, cfg.TSDBTypeName):
				isMetric, isSpan = false, false
			default:
				return true
			}
			kind, typeName := "metric", cfg.RegistryTypeName
			switch {
			case isSpan:
				kind, typeName = "span", cfg.SpanTypeName
			case isTSDB:
				kind, typeName = "tsdb series", cfg.TSDBTypeName
			}
			nameArg := call.Args[0]
			tv, ok := info.Types[nameArg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(nameArg.Pos(), "%s name passed to %s.%s must be a compile-time string literal", kind, typeName, sel.Sel.Name)
				return true
			}
			name, err := strconv.Unquote(tv.Value.ExactString())
			if err != nil {
				name = strings.Trim(tv.Value.ExactString(), `"`)
			}
			if !metricNameRE.MatchString(name) {
				if isSpan {
					pass.Reportf(nameArg.Pos(), "span name %q is not snake_case with >= 2 segments (want e.g. %q)", name, "fib_commit")
				} else {
					pass.Reportf(nameArg.Pos(), "%s name %q is not prefixed snake_case (want e.g. %q)", kind, name, allowedPrefixes[0]+"_total")
				}
				return true
			}
			if isSpan {
				// Span names are a repo-wide stage vocabulary (mifo-conv
				// aggregates by them across subsystems), so no component
				// prefix is required — only literal + single site.
				facts.spanSites[name] = append(facts.spanSites[name], pass.Pkg.Fset.Position(nameArg.Pos()))
				return true
			}
			prefix, _, _ := strings.Cut(name, "_")
			okPrefix := false
			for _, p := range allowedPrefixes {
				if prefix == p {
					okPrefix = true
					break
				}
			}
			if !okPrefix {
				pass.Reportf(nameArg.Pos(), "%s name %q must carry this component's prefix %v so exposition groups by subsystem", kind, name, allowedPrefixes)
				return true
			}
			if isTSDB {
				facts.tsdbSites[name] = append(facts.tsdbSites[name], pass.Pkg.Fset.Position(nameArg.Pos()))
				return true
			}
			facts.sites[name] = append(facts.sites[name], pass.Pkg.Fset.Position(nameArg.Pos()))
			return true
		})
	}
}

// finishObsnames reports names registered from more than one call site.
// The first site (in position order) is treated as the owner; every other
// site is flagged. Metric and span names are separate namespaces, each
// with its own single-site rule; tsdb series names additionally may not
// collide with either.
func finishObsnames(s *State, report func(Diagnostic)) {
	facts := s.Get(obsnamesFactKey, newObsnamesFacts).(*obsnamesFacts)
	reportDups(facts.sites, "metric %q is already registered at %s:%d: two call sites silently alias one series", report)
	reportDups(facts.spanSites, "span %q is already started at %s:%d: two call sites silently merge two pipeline stages", report)
	reportDups(facts.tsdbSites, "tsdb series %q is already registered at %s:%d: two call sites silently alias one series", report)
	for name, ps := range facts.tsdbSites {
		if owner, ok := facts.sites[name]; ok {
			reportCollision(ps, name, "metric registered", owner[0], report)
		}
		if owner, ok := facts.spanSites[name]; ok {
			reportCollision(ps, name, "span started", owner[0], report)
		}
	}
}

// reportCollision flags every tsdb registration of a name another
// namespace already owns.
func reportCollision(ps []token.Position, name, what string, owner token.Position, report func(Diagnostic)) {
	for _, p := range ps {
		report(Diagnostic{
			Pos: p,
			Message: fmt.Sprintf("tsdb series %q collides with the %s at %s:%d: series dumps and /metrics share one dashboard namespace",
				name, what, owner.Filename, owner.Line),
			Analyzer: "obsnames",
		})
	}
}

func reportDups(sites map[string][]token.Position, format string, report func(Diagnostic)) {
	for name, ps := range sites {
		if len(ps) < 2 {
			continue
		}
		owner := ps[0]
		for _, p := range ps[1:] {
			if p.Filename == owner.Filename && p.Line == owner.Line {
				continue
			}
			report(Diagnostic{
				Pos:      p,
				Message:  fmt.Sprintf(format, name, owner.Filename, owner.Line),
				Analyzer: "obsnames",
			})
		}
	}
}
