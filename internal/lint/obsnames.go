package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// obsnames enforces the telemetry naming contract on every metric
// registered with the internal/obs registry:
//
//   - the name must be a compile-time string literal (a name computed at
//     runtime cannot be audited, and dynamic names explode cardinality);
//   - it must be snake_case with at least two segments, the first being
//     the owning component's prefix (netd_*, core_*, audit_*, sim_*...),
//     so /metrics groups by subsystem;
//   - each name is registered at exactly one call site across the whole
//     tree. The obs.Registry deliberately tolerates re-registration at
//     runtime (shared registries), which is precisely why two call sites
//     silently aliasing one counter is a bug the linter must catch.
//
// The registration methods watched are Counter, Gauge, Histogram and
// their *Vec variants on obs.Registry.

// ObsnamesConfig parameterizes the obsnames analyzer.
type ObsnamesConfig struct {
	// RegistryPkgSuffix locates the registry type (path-suffix match).
	RegistryPkgSuffix string
	// RegistryTypeName is the registry's type name.
	RegistryTypeName string
	// PrefixOverrides maps a registering package's import-path suffix to
	// the metric prefixes it may use, when they differ from the package
	// name (package main cannot be a prefix).
	PrefixOverrides map[string][]string
}

// DefaultObsnamesConfig covers repro's internal/obs registry.
func DefaultObsnamesConfig() ObsnamesConfig {
	return ObsnamesConfig{
		RegistryPkgSuffix: "internal/obs",
		RegistryTypeName:  "Registry",
		PrefixOverrides: map[string][]string{
			// The simulator binary registers its experiment metrics as sim_*.
			"cmd/mifo-sim": {"sim"},
			// The obs package's own self-metrics, if it ever grows any.
			"internal/obs": {"obs"},
		},
	}
}

var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

// metricNameRE: lowercase snake_case, >= 2 segments, digits allowed after
// the first character of a segment.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

const obsnamesFactKey = "obsnames"

type obsnamesFacts struct {
	sites map[string][]token.Position // metric name -> registration sites
}

// Obsnames returns the metric-naming analyzer.
func Obsnames(cfg ObsnamesConfig) *Analyzer {
	a := &Analyzer{
		Name: "obsnames",
		Doc:  "obs registry metric names must be prefixed snake_case literals, registered once per name",
	}
	a.Run = func(pass *Pass) { runObsnames(pass, cfg) }
	a.Finish = finishObsnames
	return a
}

func runObsnames(pass *Pass, cfg ObsnamesConfig) {
	facts := pass.State.Get(obsnamesFactKey, func() any {
		return &obsnamesFacts{sites: map[string][]token.Position{}}
	}).(*obsnamesFacts)
	info := pass.Pkg.TypesInfo

	allowedPrefixes := []string{pass.Pkg.Name}
	for suffix, prefixes := range cfg.PrefixOverrides {
		if pathHasSuffix(pass.Pkg.PkgPath, suffix) {
			allowedPrefixes = prefixes
			break
		}
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			recv, ok := info.Types[sel.X]
			if !ok || !typeIs(recv.Type, cfg.RegistryPkgSuffix, cfg.RegistryTypeName) {
				return true
			}
			nameArg := call.Args[0]
			tv, ok := info.Types[nameArg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(nameArg.Pos(), "metric name passed to Registry.%s must be a compile-time string literal", sel.Sel.Name)
				return true
			}
			name, err := strconv.Unquote(tv.Value.ExactString())
			if err != nil {
				name = strings.Trim(tv.Value.ExactString(), `"`)
			}
			if !metricNameRE.MatchString(name) {
				pass.Reportf(nameArg.Pos(), "metric name %q is not prefixed snake_case (want e.g. %q)", name, allowedPrefixes[0]+"_total")
				return true
			}
			prefix, _, _ := strings.Cut(name, "_")
			okPrefix := false
			for _, p := range allowedPrefixes {
				if prefix == p {
					okPrefix = true
					break
				}
			}
			if !okPrefix {
				pass.Reportf(nameArg.Pos(), "metric name %q must carry this component's prefix %v so exposition groups by subsystem", name, allowedPrefixes)
				return true
			}
			facts.sites[name] = append(facts.sites[name], pass.Pkg.Fset.Position(nameArg.Pos()))
			return true
		})
	}
}

// finishObsnames reports names registered from more than one call site.
// The first site (in position order) is treated as the owner; every other
// site is flagged.
func finishObsnames(s *State, report func(Diagnostic)) {
	facts := s.Get(obsnamesFactKey, func() any {
		return &obsnamesFacts{sites: map[string][]token.Position{}}
	}).(*obsnamesFacts)
	for name, sites := range facts.sites {
		if len(sites) < 2 {
			continue
		}
		owner := sites[0]
		for _, p := range sites[1:] {
			if p.Filename == owner.Filename && p.Line == owner.Line {
				continue
			}
			report(Diagnostic{
				Pos: p,
				Message: fmt.Sprintf("metric %q is already registered at %s:%d: two call sites silently alias one series",
					name, owner.Filename, owner.Line),
				Analyzer: "obsnames",
			})
		}
	}
}
