package lint

import (
	"strings"
	"testing"
)

// TestRepositoryLintsClean runs the full suite over the whole module —
// the same check `make lint` and CI enforce. A finding here means a
// contract regression slipped into the tree (or an analyzer grew a false
// positive; either way it must be resolved before merging).
func TestRepositoryLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint is not a -short test")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	for _, d := range Run(pkgs, Suite()) {
		t.Errorf("%s", d)
	}
}

// TestIgnoreDirectivesJustified audits every //mifolint:ignore directive
// in the tree. Malformed directives (no analyzer list, no reason) are
// findings already and fail TestRepositoryLintsClean; this test closes
// the other gap: a well-formed directive that no longer suppresses
// anything. The finding it once justified is gone — keeping the waiver
// (and its stale reason) around silently licenses the next regression on
// that line, so it must be deleted instead.
func TestIgnoreDirectivesJustified(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint is not a -short test")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	_, unused := RunWithIgnoreAudit(pkgs, Suite())
	for _, u := range unused {
		t.Errorf("%s:%d: unused //mifolint:ignore %s: no finding is suppressed here anymore; delete the stale waiver",
			u.Pos.Filename, u.Pos.Line, strings.Join(u.Analyzers, ","))
	}
}
