package lint

import (
	"testing"
)

// TestRepositoryLintsClean runs the full suite over the whole module —
// the same check `make lint` and CI enforce. A finding here means a
// contract regression slipped into the tree (or an analyzer grew a false
// positive; either way it must be resolved before merging).
func TestRepositoryLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint is not a -short test")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	for _, d := range Run(pkgs, Suite()) {
		t.Errorf("%s", d)
	}
}
