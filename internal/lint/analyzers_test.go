package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestFibtxn(t *testing.T) {
	checkCorpus(t, "fibtxn", Fibtxn(DefaultFibtxnConfig()))
}

func TestHotpathalloc(t *testing.T) {
	checkCorpus(t, "hotpathalloc", Hotpath())
}

func TestObsnames(t *testing.T) {
	checkCorpus(t, "obsnames", Obsnames(DefaultObsnamesConfig()))
}

func TestLocksafe(t *testing.T) {
	checkCorpus(t, "locksafe", Locksafe(DefaultLocksafeConfig()))
}

func TestShadow(t *testing.T) {
	checkCorpus(t, "shadow", Shadow())
}

func TestUnusedwrite(t *testing.T) {
	checkCorpus(t, "unusedwrite", Unusedwrite())
}

func TestNilness(t *testing.T) {
	checkCorpus(t, "nilness", Nilness())
}

func TestDroppederr(t *testing.T) {
	checkCorpus(t, "droppederr", Droppederr())
}

func TestRingorder(t *testing.T) {
	checkCorpus(t, "ringorder", Ringorder())
}

func TestArenafreeze(t *testing.T) {
	checkCorpus(t, "arenafreeze", Arenafreeze(DefaultArenafreezeConfig()))
}

func TestLifecycle(t *testing.T) {
	checkCorpus(t, "lifecycle", Lifecycle())
}

func TestIgnoreDirectives(t *testing.T) {
	checkCorpus(t, "ignores", Droppederr())
}

// TestMalformedIgnoreDirective checks that a directive without analyzers
// or without a reason is itself reported — a silent suppression defeats
// the audit trail. This needs no type information, so the package is
// built from a source string directly.
func TestMalformedIgnoreDirective(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 //mifolint:ignore
	_ = 2 //mifolint:ignore droppederr
	_ = 3 //mifolint:ignore droppederr a complete directive is fine
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{PkgPath: "p", Name: "p", Fset: fset, Files: []*ast.File{f}, TypesInfo: NewInfo()}
	var diags []Diagnostic
	idx := buildIgnoreIndex([]*Package{pkg}, func(d Diagnostic) { diags = append(diags, d) })
	if len(diags) != 2 {
		t.Fatalf("want 2 malformed-directive findings, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "malformed ignore directive") {
			t.Errorf("unexpected message %q", d.Message)
		}
	}
	// Only the complete directive is indexed, at its line, for its analyzer.
	if n := len(idx["p.go"]); n != 1 {
		t.Fatalf("want exactly the well-formed directive indexed, got %d", n)
	}
	if got := idx["p.go"][0].line; got != 6 {
		t.Fatalf("directive indexed at line %d, want 6", got)
	}
	if !idx["p.go"][0].analyzers["droppederr"] {
		t.Fatal("directive does not cover droppederr")
	}
}
