package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// shadow is a native reimplementation of the non-default x/tools `shadow`
// vet pass (the dependency is intentionally not vendored; see xtools.go).
// It reports an inner declaration of a name that shadows a function-local
// variable of identical type from an enclosing scope, when the outer
// variable is still used after the inner scope ends — the combination
// where an accidental `:=` silently splits one variable into two and the
// stale outer value escapes. Package-level names are excluded: shadowing
// a global with a local is idiomatic (err, ctx) and carries none of the
// split-variable risk this pass hunts.

// Shadow returns the variable-shadowing analyzer.
func Shadow() *Analyzer {
	return &Analyzer{
		Name: "shadow",
		Doc:  "inner declaration shadows an outer variable that is used again afterwards",
		Run:  runShadow,
	}
}

// usesOf indexes every use position of every object in the package.
func usesOf(pkg *Package) map[types.Object][]token.Pos {
	m := map[types.Object][]token.Pos{}
	for id, obj := range pkg.TypesInfo.Uses {
		m[obj] = append(m[obj], id.Pos())
	}
	return m
}

func runShadow(pass *Pass) {
	info := pass.Pkg.TypesInfo
	uses := usesOf(pass.Pkg)

	// A later *read* of the outer variable is what makes a shadow
	// dangerous. A bare reassignment (`x = ...` or a `:=` that redeclares
	// x alongside a new variable) is recorded in Uses too, but it
	// overwrites the stale value instead of observing it — the idiomatic
	// `if err := f(); err != nil` guard would otherwise drown the report
	// in noise. Collect those write-only positions to exclude them.
	writePos := map[token.Pos]bool{}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					writePos[id.Pos()] = true
				}
			}
			return true
		})
	}

	check := func(file *ast.File, id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		obj, ok := info.Defs[id].(*types.Var)
		if !ok || obj.Parent() == nil || obj.Parent().Parent() == nil {
			return
		}
		inner := obj.Parent()
		_, outerObj := inner.Parent().LookupParent(id.Name, id.Pos())
		outer, ok := outerObj.(*types.Var)
		if !ok || outer == obj || outer.IsField() {
			return
		}
		// Only function-local outers: shadowing globals is idiomatic.
		if outer.Parent() == nil || outer.Pkg() == nil || outer.Parent() == outer.Pkg().Scope() {
			return
		}
		if !types.Identical(obj.Type(), outer.Type()) {
			return
		}
		fd := enclosingFunc(file, id.Pos())
		if fd == nil {
			return
		}
		// The dangerous case: the outer variable lives on after the
		// shadowing scope dies, so a write meant for it was lost.
		for _, use := range uses[outer] {
			if use > inner.End() && use < fd.End() && !writePos[use] {
				pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d; the outer variable is used again at line %d",
					id.Name, pass.Pkg.Fset.Position(outer.Pos()).Line, pass.Pkg.Fset.Position(use).Line)
				return
			}
		}
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				if v.Tok == token.DEFINE {
					for _, lhs := range v.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							check(file, id)
						}
					}
				}
			case *ast.RangeStmt:
				if v.Tok == token.DEFINE {
					if id, ok := v.Key.(*ast.Ident); ok {
						check(file, id)
					}
					if id, ok := v.Value.(*ast.Ident); ok {
						check(file, id)
					}
				}
			case *ast.GenDecl:
				if v.Tok == token.VAR {
					for _, spec := range v.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, id := range vs.Names {
								check(file, id)
							}
						}
					}
				}
			}
			return true
		})
	}
}
