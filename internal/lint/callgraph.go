package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The interprocedural layer: a package-level call graph plus lightweight
// intra-function dataflow over go/types, collected once per package into
// the shared State and resolved transitively at Finish time. Three facts
// are derived for every declared function in the analysis set:
//
//   - parameter mutation: does the function (directly or through the
//     functions it calls) write through a slice/map/pointer parameter?
//     arenafreeze uses this to prove that an interior slice handed out
//     by a frozen-arena accessor is only ever read.
//   - barrier reachability: does the function (transitively) perform a
//     synchronization that can join a background goroutine — a channel
//     send/receive/select, sync.WaitGroup.Wait, or a graceful-shutdown
//     call? lifecycle uses this to prove a Close/Stop method actually
//     waits for the goroutine its constructor spawned.
//   - goroutine spawns: which functions start goroutines that are not
//     joined in the same body (fork-join helpers join before returning
//     and own no lifecycle), and what closable type, if any, they hand
//     back to the caller.
//
// The dataflow is deliberately one level deep per function — a parameter
// is tracked through direct element writes, builtin calls, and argument
// positions of statically resolved calls; anything else (aliasing into
// a second local, storage into a field, a dynamic call) is conservatively
// treated as a potential mutation. The transitive closure then runs over
// the recorded call edges, so cross-package chains (netsim -> topo) are
// judged without source-order coupling, the same way hotpathalloc's
// budget works.

const interpFactKey = "interproc"

// paramEdge records "this parameter is passed as argument calleeIdx of
// calleeKey" — judged read-only or mutating once the whole tree is seen.
type paramEdge struct {
	calleeKey string
	calleeIdx int
}

// paramInfo is the dataflow summary for one trackable parameter.
type paramInfo struct {
	mutated    bool // written through directly (element/field store, append, copy dst)
	unresolved bool // escapes the one-level dataflow: treated as mutating
	edges      []paramEdge
}

// spawnSite is one `go` statement that outlives its enclosing function.
type spawnSite struct {
	pos token.Position
}

// funcInfo is the per-function fact record.
type funcInfo struct {
	key     string // "pkgpath\x00Recv.Name"
	pretty  string // "Recv.Name"
	pkgPath string
	pos     token.Position

	params  []*paramInfo // indexed by signature parameter order (receiver excluded)
	barrier bool         // body performs a join/synchronization directly
	calls   []string     // statically resolved callee keys, for transitive closure

	spawns     []spawnSite // unjoined `go` statements
	joinedBody bool        // body also Waits on a WaitGroup outside any literal: fork-join

	resultTypeKey string // "pkgpath\x00TypeName" of the first named-struct result in the same package
	returnsFunc   bool   // first result is a func value (a stop function)
	isMethod      bool
	recvTypeKey   string // "pkgpath\x00TypeName" for methods
}

type interpFacts struct {
	funcs    map[string]*funcInfo
	scanned  map[string]bool // package paths already collected
	analyzed map[string]bool // package paths in the analysis set
	// closers maps a type key to the closer method keys it exposes
	// (Close/Stop/Shutdown declared on T or *T).
	closers map[string][]string

	// resolution memos (Finish time).
	mutMemo     map[string]map[int]int8 // 0 unknown/in-progress, 1 readonly, 2 mutates
	barrierMemo map[string]int8
}

func getInterpFacts(s *State) *interpFacts {
	return s.Get(interpFactKey, func() any {
		return &interpFacts{
			funcs:       map[string]*funcInfo{},
			scanned:     map[string]bool{},
			analyzed:    map[string]bool{},
			closers:     map[string][]string{},
			mutMemo:     map[string]map[int]int8{},
			barrierMemo: map[string]int8{},
		}
	}).(*interpFacts)
}

// typeKeyOf names a (possibly pointered) named type across packages.
func typeKeyOf(t types.Type) string {
	n, ok := namedType(t)
	if !ok {
		return ""
	}
	if orig := n.Origin(); orig != nil {
		n = orig
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "\x00" + obj.Name()
}

// trackableParam reports whether writes through a parameter of type t are
// visible to the caller.
func trackableParam(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

// collectInterproc scans pass.Pkg once (all files, tests included) and
// records funcInfo facts. Safe to call from several analyzers.
func collectInterproc(pass *Pass) {
	facts := getInterpFacts(pass.State)
	if facts.scanned[pass.Pkg.PkgPath] {
		return
	}
	facts.scanned[pass.Pkg.PkgPath] = true
	facts.analyzed[pass.Pkg.PkgPath] = true
	info := pass.Pkg.TypesInfo

	for _, file := range pass.Pkg.AllFiles() {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fi := collectFunc(pass, info, fd)
			facts.funcs[fi.key] = fi
			if fi.isMethod {
				switch fd.Name.Name {
				case "Close", "Stop", "Shutdown":
					facts.closers[fi.recvTypeKey] = append(facts.closers[fi.recvTypeKey], fi.key)
				}
			}
		}
	}
}

// collectFunc builds the fact record for one declaration.
func collectFunc(pass *Pass, info *types.Info, fd *ast.FuncDecl) *funcInfo {
	fi := &funcInfo{
		key:     pass.Pkg.PkgPath + "\x00" + funcKey(fd),
		pretty:  funcKey(fd),
		pkgPath: pass.Pkg.PkgPath,
		pos:     pass.Pkg.Fset.Position(fd.Pos()),
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		fi.isMethod = true
		if tv, ok := info.Defs[fd.Name]; ok {
			if sig, ok := tv.Type().(*types.Signature); ok && sig.Recv() != nil {
				fi.recvTypeKey = typeKeyOf(sig.Recv().Type())
			}
		}
	}

	// Parameter objects, in signature order.
	var paramVars []*types.Var
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		if sig, ok := obj.Type().(*types.Signature); ok {
			for i := 0; i < sig.Params().Len(); i++ {
				paramVars = append(paramVars, sig.Params().At(i))
			}
			if sig.Results().Len() > 0 {
				r := sig.Results().At(0).Type()
				if _, isFunc := r.Underlying().(*types.Signature); isFunc {
					fi.returnsFunc = true
				}
				if key := typeKeyOf(r); key != "" && strings.HasPrefix(key, pass.Pkg.PkgPath+"\x00") {
					fi.resultTypeKey = key
				}
			}
		}
	}
	fi.params = make([]*paramInfo, len(paramVars))
	paramIdx := map[*types.Var]int{}
	for i, v := range paramVars {
		fi.params[i] = &paramInfo{}
		if trackableParam(v.Type()) {
			paramIdx[v] = i
		}
	}

	if fd.Body == nil {
		return fi
	}

	// paramOf resolves e to a tracked parameter index when e is the
	// parameter itself or a subslice/deref of it (the aliases through
	// which a write still lands in the caller's memory).
	var paramOf func(e ast.Expr) (int, bool)
	paramOf = func(e ast.Expr) (int, bool) {
		switch v := e.(type) {
		case *ast.Ident:
			obj := info.Uses[v]
			if obj == nil {
				obj = info.Defs[v]
			}
			if p, ok := obj.(*types.Var); ok {
				if i, tracked := paramIdx[p]; tracked {
					return i, true
				}
			}
		case *ast.ParenExpr:
			return paramOf(v.X)
		case *ast.SliceExpr:
			return paramOf(v.X)
		case *ast.StarExpr:
			return paramOf(v.X)
		}
		return -1, false
	}
	// paramBaseOfLvalue walks an assignment target to the parameter it
	// writes through, requiring at least one dereference step (an index,
	// a field, or a pointer deref) so plain rebinding `p = x` does not
	// count as caller-visible mutation.
	var paramBaseOfLvalue func(e ast.Expr, derefs int) (int, bool)
	paramBaseOfLvalue = func(e ast.Expr, derefs int) (int, bool) {
		switch v := e.(type) {
		case *ast.Ident:
			if derefs == 0 {
				return -1, false
			}
			return paramOf(v)
		case *ast.ParenExpr:
			return paramBaseOfLvalue(v.X, derefs)
		case *ast.IndexExpr:
			return paramBaseOfLvalue(v.X, derefs+1)
		case *ast.SelectorExpr:
			return paramBaseOfLvalue(v.X, derefs+1)
		case *ast.StarExpr:
			return paramBaseOfLvalue(v.X, derefs+1)
		case *ast.SliceExpr:
			return paramBaseOfLvalue(v.X, derefs)
		}
		return -1, false
	}

	mark := func(i int, mutated bool) {
		if mutated {
			fi.params[i].mutated = true
		} else {
			fi.params[i].unresolved = true
		}
	}

	goDepth := 0 // literals nested under a `go` statement
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch v := node.(type) {
			case *ast.GoStmt:
				fi.spawns = append(fi.spawns, spawnSite{pos: pass.Pkg.Fset.Position(v.Pos())})
				goDepth++
				walk(v.Call)
				goDepth--
				return false
			case *ast.SendStmt:
				if goDepth == 0 {
					fi.barrier = true
				}
			case *ast.SelectStmt:
				if goDepth == 0 {
					fi.barrier = true
				}
			case *ast.UnaryExpr:
				if v.Op == token.ARROW && goDepth == 0 {
					fi.barrier = true
				}
				if v.Op == token.AND {
					// Taking &p[i] hands out a write-capable pointer.
					if i, ok := paramBaseOfLvalue(v.X, 0); ok {
						mark(i, true)
					}
				}
			case *ast.RangeStmt:
				if goDepth == 0 {
					if tv, ok := info.Types[v.X]; ok {
						if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
							fi.barrier = true
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					if i, ok := paramBaseOfLvalue(lhs, 0); ok {
						mark(i, true)
					}
				}
				// A parameter aliased into another variable, a field, or
				// a composite leaves the one-level dataflow.
				for _, rhs := range v.Rhs {
					if i, ok := paramOf(rhs); ok {
						mark(i, false)
					}
				}
			case *ast.IncDecStmt:
				if i, ok := paramBaseOfLvalue(v.X, 0); ok {
					mark(i, true)
				}
			case *ast.ReturnStmt:
				for _, r := range v.Results {
					if i, ok := paramOf(r); ok {
						// The slice itself escapes to the caller.
						mark(i, false)
					}
				}
			case *ast.CompositeLit:
				for _, el := range v.Elts {
					e := el
					if kv, ok := e.(*ast.KeyValueExpr); ok {
						e = kv.Value
					}
					if i, ok := paramOf(e); ok {
						mark(i, false)
					}
				}
			case *ast.CallExpr:
				collectCall(pass, info, fi, v, paramOf, mark, goDepth > 0)
			case *ast.FuncLit:
				// Literal bodies are walked as part of the enclosing
				// declaration: captured parameters keep their identity, and
				// barriers inside a literal still belong to a closure this
				// function builds. WaitGroup joins are handled in the
				// top-level sweep below.
				return true
			}
			return true
		})
	}
	walk(fd.Body)

	// Fork-join detection: a Wait on a sync.WaitGroup in the body proper
	// (not inside a literal, which may run on another goroutine or later)
	// joins the spawned workers before the function returns.
	for _, stmt := range fd.Body.List {
		ast.Inspect(stmt, func(node ast.Node) bool {
			if _, ok := node.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := node.(*ast.CallExpr); ok {
				if fn := calleeFunc(info, call); fn != nil && fn.Name() == "Wait" && isWaitGroupMethod(fn) {
					fi.joinedBody = true
				}
			}
			return true
		})
	}
	return fi
}

// collectCall records call edges, builtin mutations, and barrier calls.
func collectCall(pass *Pass, info *types.Info, fi *funcInfo, call *ast.CallExpr,
	paramOf func(ast.Expr) (int, bool), mark func(int, bool), inGo bool) {

	// Builtins: append may write the shared backing array past len when
	// capacity allows — exactly the hazard for arena-interior slices;
	// copy writes its destination; delete mutates its map.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "delete":
				if len(call.Args) > 0 {
					if i, ok := paramOf(call.Args[0]); ok {
						mark(i, true)
					}
				}
			case "copy":
				if len(call.Args) > 0 {
					if i, ok := paramOf(call.Args[0]); ok {
						mark(i, true)
					}
				}
			case "len", "cap", "print", "println", "min", "max", "clear":
				// clear mutates, but takes the map/slice itself:
				if b.Name() == "clear" && len(call.Args) > 0 {
					if i, ok := paramOf(call.Args[0]); ok {
						mark(i, true)
					}
				}
			}
			return
		}
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		// Dynamic call: a tracked parameter passed to it is out of reach.
		for _, arg := range call.Args {
			if i, ok := paramOf(arg); ok {
				mark(i, false)
			}
		}
		return
	}
	key, _, _, ok := calleeKeyOf(fn)
	if !ok {
		return
	}
	if !inGo {
		fi.calls = append(fi.calls, key)
		if isBarrierCallee(fn) {
			fi.barrier = true
		}
	}
	// Map arguments onto callee parameter indices (variadic tail folds
	// onto the last parameter).
	sig, _ := fn.Type().(*types.Signature)
	nparams := 0
	if sig != nil {
		nparams = sig.Params().Len()
	}
	for ai, arg := range call.Args {
		i, tracked := paramOf(arg)
		if !tracked {
			continue
		}
		ci := ai
		if nparams > 0 && ci >= nparams {
			ci = nparams - 1
		}
		fi.params[i].edges = append(fi.params[i].edges, paramEdge{calleeKey: key, calleeIdx: ci})
	}
}

// isWaitGroupMethod reports whether fn is a method on sync.WaitGroup.
func isWaitGroupMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeIs(sig.Recv().Type(), "sync", "WaitGroup")
}

// isBarrierCallee reports whether a call outside the analysis set is a
// recognized join: WaitGroup.Wait, or a graceful-shutdown method whose
// contract is to wait for background work (http.Server.Shutdown shape).
func isBarrierCallee(fn *types.Func) bool {
	if fn.Name() == "Wait" && isWaitGroupMethod(fn) {
		return true
	}
	if fn.Name() == "Shutdown" && isMethod(fn) {
		return true
	}
	return false
}

// --- Finish-time transitive resolvers ---

// stdlibReadonlyPkgs lists packages whose functions never retain or write
// a caller's slice: formatting, pure-query helpers, and the testing
// harness. Everything else outside the analysis set is conservatively
// mutating (notably package slices and sort.Slice*, which sort in place).
var stdlibReadonlyPkgs = map[string]bool{
	"fmt": true, "strings": true, "bytes": true, "math": true,
	"strconv": true, "unicode": true, "errors": true, "testing": true,
}

// stdlibReadonlyFuncs allowlists individual read-only functions from
// otherwise-mutating packages, keyed "pkg\x00Name".
var stdlibReadonlyFuncs = map[string]bool{
	"sort\x00Search":        true,
	"sort\x00SearchInts":    true,
	"sort\x00SearchFloat64s": true,
	"sort\x00SearchStrings":  true,
	"sort\x00IsSorted":       true,
	"sort\x00SliceIsSorted":  true,
	"sort\x00IntsAreSorted":  true,
}

// paramMutates resolves, transitively, whether calleeKey's parameter idx
// can be written (or escape tracking). Unknown callees outside the
// analysis set are mutating unless their package is allowlisted.
func (f *interpFacts) paramMutates(calleeKey string, idx int) bool {
	fi, known := f.funcs[calleeKey]
	if !known {
		if stdlibReadonlyFuncs[calleeKey] {
			return false
		}
		pkg, _, _ := strings.Cut(calleeKey, "\x00")
		return !stdlibReadonlyPkgs[pkg]
	}
	if idx >= len(fi.params) {
		return true
	}
	memo := f.mutMemo[calleeKey]
	if memo == nil {
		memo = map[int]int8{}
		f.mutMemo[calleeKey] = memo
	}
	switch memo[idx] {
	case 1:
		return false
	case 2:
		return true
	}
	p := fi.params[idx]
	if p.mutated || p.unresolved {
		memo[idx] = 2
		return true
	}
	memo[idx] = 1 // optimistic: a cycle that only ever forwards is read-only
	for _, e := range p.edges {
		if f.paramMutates(e.calleeKey, e.calleeIdx) {
			memo[idx] = 2
			return true
		}
	}
	return false
}

// reachesBarrier resolves, transitively over statically resolved calls
// within the analysis set, whether key performs a join.
func (f *interpFacts) reachesBarrier(key string) bool {
	switch f.barrierMemo[key] {
	case 1:
		return true
	case 2:
		return false
	}
	fi, known := f.funcs[key]
	if !known {
		f.barrierMemo[key] = 2
		return false
	}
	if fi.barrier {
		f.barrierMemo[key] = 1
		return true
	}
	f.barrierMemo[key] = 2 // break cycles pessimistically
	for _, c := range fi.calls {
		if f.reachesBarrier(c) {
			f.barrierMemo[key] = 1
			return true
		}
	}
	return false
}
