// Package lint is mifolint: a suite of static analyzers that enforce the
// repository's concurrency and hot-path contracts at build time — the
// conventions the compiler cannot see but the versioned FIB, the
// path-copying LPM trie, and the paper's kernel fib_table FE-read /
// daemon-write split (Section IV) all depend on.
//
// The suite mirrors the shape of golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic, testdata corpora with "want" comments) but is built on
// the standard library alone, loading type information from the build
// cache's export data, so it runs in a hermetic environment with no module
// downloads. Should x/tools become available, each Analyzer maps 1:1 onto
// an *analysis.Analyzer; see xtools.go for the gated extra passes.
//
// Contracts enforced (see DESIGN.md "Static invariants"):
//
//   - fibtxn: published FIB generations and trie nodes are immutable;
//     all writes go through the Begin/Set/Commit transaction and
//     path-copy helpers.
//   - hotpathalloc: functions annotated //mifo:hotpath do not format,
//     allocate maps/slices, append to escaping slices, take locks, or
//     call unannotated project functions.
//   - obsnames: metric names registered with internal/obs are snake_case
//     literals with the owning component's prefix, registered at most
//     once per name across the tree.
//   - locksafe: no sync.Mutex/RWMutex is held across a channel send, a
//     generation Commit, or a blocking network/sleep call.
//   - ringorder: //mifo:ring-annotated lock-free rings follow the publish
//     protocol — payload writes happen-before the atomic cursor publish,
//     readers acquire the cursor first and re-load it to discard lapped
//     windows, role fields stay atomic and encapsulated.
//   - arenafreeze: builder-published arena memory (topo.Graph CSR,
//     bgp.Dest packed routes) is frozen after publish; interior slices
//     handed out by accessors are provably read-only, transitively.
//   - lifecycle: goroutine-spawning constructors expose a teardown, every
//     Close/Stop/Shutdown of a goroutine-owning type reaches a drain
//     barrier, and callers keep a path to the teardown.
//
// The last two resolve through the shared interprocedural layer in
// callgraph.go: per-function dataflow facts collected into State at Run
// time and closed transitively at Finish time.
//
// A finding can be suppressed — with a recorded justification — by a
// directive on the offending line or the line above it:
//
//	//mifolint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory: an ignore without one is itself a finding, and
// a directive that no longer suppresses anything fails the repository's
// ignore audit (TestIgnoreDirectivesJustified).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Package is one loaded, type-checked package under analysis.
type Package struct {
	PkgPath   string
	Name      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TestFiles holds the package's in-package _test.go files, type-checked
	// together with Files into the same Types/TypesInfo. Most analyzers
	// walk only Files (test code may legitimately poke internals); the
	// lifecycle analyzer also walks TestFiles, because tests leaking
	// goroutines poison every race run after them.
	TestFiles []*ast.File
}

// AllFiles returns source and test files as one slice, for analyses that
// must see call sites in tests too.
func (p *Package) AllFiles() []*ast.File {
	if len(p.TestFiles) == 0 {
		return p.Files
	}
	all := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	all = append(all, p.Files...)
	all = append(all, p.TestFiles...)
	return all
}

// NewInfo returns a types.Info with every map analyzers rely on populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// State carries cross-package facts through one Run — the whole-tree
// aggregation a per-package pass cannot do (e.g. obsnames' duplicate
// registration check).
type State struct {
	mu sync.Mutex
	m  map[string]any
}

// NewState returns an empty fact store.
func NewState() *State { return &State{m: map[string]any{}} }

// Get returns the fact under key, creating it with mk on first use.
func (s *State) Get(key string, mk func() any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		v = mk()
		s.m[key] = v
	}
	return v
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	State    *State
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Analyzer is one named check. Run is invoked once per package; Finish,
// when set, once after every package has been visited, for whole-run facts.
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Pass)
	Finish func(*State, func(Diagnostic))
}

// IgnoreDirective is the comment prefix that suppresses a finding.
const IgnoreDirective = "//mifolint:ignore"

// HotpathDirective marks a function as hot-path in its doc comment.
const HotpathDirective = "//mifo:hotpath"

// RingDirective marks a struct type as a lock-free ring in its doc
// comment, declaring the field roles ringorder enforces:
//
//	//mifo:ring payload=<f>[,<f>...] cursor=<f> [read=<f>] [latch=<f>] [init=<func>[,<func>...]]
const RingDirective = "//mifo:ring"

// ignoreRule is one parsed ignore directive.
type ignoreRule struct {
	analyzers map[string]bool
	line      int  // line the directive appears on
	hasReason bool // directives must say why
	used      bool // set when the directive suppresses a finding
	pos       token.Position
}

// ignoreIndex maps filename -> parsed directives.
type ignoreIndex map[string][]*ignoreRule

// buildIgnoreIndex parses every //mifolint:ignore directive in pkgs
// (test files included — an ignore there must justify itself the same
// way). Directives without a reason are reported immediately: a silent
// suppression defeats the point of recording why a contract is waived.
func buildIgnoreIndex(pkgs []*Package, report func(Diagnostic)) ignoreIndex {
	idx := ignoreIndex{}
	for _, pkg := range pkgs {
		for _, f := range pkg.AllFiles() {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, IgnoreDirective) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, IgnoreDirective)
					fields := strings.Fields(rest)
					pos := pkg.Fset.Position(c.Pos())
					rule := &ignoreRule{analyzers: map[string]bool{}, line: pos.Line, pos: pos}
					if len(fields) > 0 {
						for _, name := range strings.Split(fields[0], ",") {
							rule.analyzers[name] = true
						}
						rule.hasReason = len(fields) > 1
					}
					if len(rule.analyzers) == 0 || !rule.hasReason {
						report(Diagnostic{
							Pos:      pos,
							Message:  "malformed ignore directive: want //mifolint:ignore <analyzer>[,<analyzer>] <reason>",
							Analyzer: "mifolint",
						})
						continue
					}
					idx[pos.Filename] = append(idx[pos.Filename], rule)
				}
			}
		}
	}
	return idx
}

// suppressed reports whether d is covered by a directive on its own line
// or the line immediately above, marking the matching directive used.
func (idx ignoreIndex) suppressed(d Diagnostic) bool {
	hit := false
	for _, r := range idx[d.Pos.Filename] {
		if (r.line == d.Pos.Line || r.line == d.Pos.Line-1) && r.analyzers[d.Analyzer] {
			r.used = true
			hit = true
		}
	}
	return hit
}

// UnusedIgnore is a well-formed //mifolint:ignore directive that did not
// suppress anything in the run — the finding it once justified is gone,
// so the waiver (and its stale reason) should go too.
type UnusedIgnore struct {
	Pos       token.Position
	Analyzers []string
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Suppression directives are honored; a
// malformed directive is itself a finding.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunWithIgnoreAudit(pkgs, analyzers)
	return diags
}

// RunWithIgnoreAudit is Run plus a report of ignore directives that
// suppressed nothing. Plain Run (and vet's per-package unit mode, which
// never sees the whole tree) must not enforce unused-ignore hygiene —
// only the repository-wide test does.
func RunWithIgnoreAudit(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []UnusedIgnore) {
	var mu sync.Mutex
	var all []Diagnostic
	report := func(d Diagnostic) {
		mu.Lock()
		all = append(all, d)
		mu.Unlock()
	}
	idx := buildIgnoreIndex(pkgs, report)
	state := NewState()
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, State: state, report: report})
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(state, report)
		}
	}
	kept := all[:0]
	for _, d := range all {
		if !idx.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	var unused []UnusedIgnore
	for _, rules := range idx {
		for _, r := range rules {
			if r.used {
				continue
			}
			var names []string
			for n := range r.analyzers {
				names = append(names, n)
			}
			sort.Strings(names)
			unused = append(unused, UnusedIgnore{Pos: r.pos, Analyzers: names})
		}
	}
	sort.Slice(unused, func(i, j int) bool {
		a, b := unused[i], unused[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return kept, unused
}

// Suite returns the default mifolint analyzer set, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		Fibtxn(DefaultFibtxnConfig()),
		Hotpath(),
		Obsnames(DefaultObsnamesConfig()),
		Locksafe(DefaultLocksafeConfig()),
		Shadow(),
		Unusedwrite(),
		Nilness(),
		Droppederr(),
		Ringorder(),
		Arenafreeze(DefaultArenafreezeConfig()),
		Lifecycle(),
	}
}

// --- small shared helpers ---

// funcKey names a declared function the way the analyzers' allowlists do:
// "Name" for plain functions, "Recv.Name" for methods (pointer receivers
// spelled the same as value receivers).
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

// recvTypeName extracts the base type name of a receiver expression,
// unwrapping pointers and type parameter lists (Txn[V] -> Txn).
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// matchFunc reports whether key (e.g. "Txn.Insert") is covered by the
// allowlist, which may hold exact keys or "Recv.*" wildcards.
func matchFunc(allow []string, key string) bool {
	for _, a := range allow {
		if a == key {
			return true
		}
		if recv, ok := strings.CutSuffix(a, ".*"); ok {
			if cur, _, found := strings.Cut(key, "."); found && cur == recv {
				return true
			}
		}
	}
	return false
}

// namedOrAlias resolves t to its named type, unwrapping pointers.
func namedType(t types.Type) (*types.Named, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u, true
		default:
			return nil, false
		}
	}
}

// typeIs reports whether t (possibly behind pointers) is the named type
// pkgSuffix.typeName, where pkgSuffix matches the end of the import path
// (so the same analyzer config works for "repro/internal/obs" and a
// testdata corpus package called "obs"). Generic instantiations match
// their origin type.
func typeIs(t types.Type, pkgSuffix, typeName string) bool {
	n, ok := namedType(t)
	if !ok {
		return false
	}
	if orig := n.Origin(); orig != nil {
		n = orig
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != typeName {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// pathHasSuffix matches whole path segments: "internal/obs" matches
// "repro/internal/obs" but not "repro/internal/xobs".
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// enclosingFunc returns the innermost FuncDecl containing pos, using the
// precomputed decl list.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// hasDirective reports whether the function's doc comment carries the
// given directive (e.g. //mifo:hotpath).
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}
