package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lifecycle enforces goroutine ownership: every background goroutine has
// an owner that can join it, and every owner is actually asked to.
// Three rules, all resolved at Finish time over the interprocedural
// facts (callgraph.go):
//
//  1. A function that starts a goroutine it does not join in its own
//     body (fork-join helpers like parallel.ForEach Wait before
//     returning and are exempt) must hand its caller a way to stop it:
//     a method's receiver type must expose Close/Stop/Shutdown, a
//     constructor must return a type that does (or a stop function, the
//     MonitorLoads shape). `main` owns its process and is exempt; test
//     functions are judged by rule 3 at their constructor call sites
//     instead, since test goroutines routinely end by channel close.
//
//  2. Every Close/Stop/Shutdown of a goroutine-owning type must reach a
//     drain barrier — a channel operation, select, sync.WaitGroup.Wait,
//     or a graceful Shutdown call, possibly transitively — before it
//     returns. A closer that only flips a flag leaves the goroutine
//     running through resource teardown: the unbuffered-command-channel
//     deadlock the audit batcher solved is exactly what this pins down.
//
//  3. Callers (tests included) of a goroutine-spawning constructor must
//     do something with the result: call Close/Stop/Shutdown on it
//     (deferred or not, directly or from a closure), invoke a returned
//     stop function, or hand the value off (pass, return, store) to an
//     owner that can. A constructor result that is dropped or bound to
//     a local that is never closed is a goroutine leak — in tests it
//     poisons every race run that follows.

const lifecycleFactKey = "lifecycle"

// closeSite is one call to a possibly-spawning constructor, with the
// caller's handling of the result already classified.
type closeSite struct {
	pos       token.Position
	calleeKey string
	pretty    string
	handled   bool
}

type lifecycleFacts struct {
	sites []closeSite
}

func getLifecycleFacts(s *State) *lifecycleFacts {
	return s.Get(lifecycleFactKey, func() any { return &lifecycleFacts{} }).(*lifecycleFacts)
}

// closerNames are the teardown method names rule 1 accepts and rule 3
// looks for at call sites.
var closerNames = map[string]bool{"Close": true, "Stop": true, "Shutdown": true}

// Lifecycle returns the goroutine-ownership analyzer.
func Lifecycle() *Analyzer {
	a := &Analyzer{
		Name: "lifecycle",
		Doc:  "goroutine-spawning constructors expose Close/Stop, closers drain before teardown, and callers close on all paths",
	}
	a.Run = runLifecycle
	a.Finish = finishLifecycle
	return a
}

func runLifecycle(pass *Pass) {
	collectInterproc(pass)
	facts := getLifecycleFacts(pass.State)
	info := pass.Pkg.TypesInfo

	for _, file := range pass.Pkg.AllFiles() {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recordCloseSites(pass, facts, info, fd)
		}
	}
}

// recordCloseSites classifies, for every statically resolved call whose
// first result could carry a lifecycle (a named type or a func value),
// whether the caller retains a way to stop it. Whether the callee
// actually spawns is only known at Finish.
func recordCloseSites(pass *Pass, facts *lifecycleFacts, info *types.Info, fd *ast.FuncDecl) {
	parent := buildParentMap(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Results().Len() == 0 {
			return true
		}
		res := sig.Results().At(0).Type()
		_, isFunc := res.Underlying().(*types.Signature)
		if _, isNamed := namedType(res); !isNamed && !isFunc {
			return true
		}
		key, pretty, _, ok := calleeKeyOf(fn)
		if !ok {
			return true
		}
		facts.sites = append(facts.sites, closeSite{
			pos:       pass.Pkg.Fset.Position(call.Pos()),
			calleeKey: key,
			pretty:    pretty,
			handled:   resultHandled(info, parent, fd, call),
		})
		return true
	})
}

// resultHandled decides whether the call's first result keeps a path to
// teardown.
func resultHandled(info *types.Info, parent map[ast.Node]ast.Node, fd *ast.FuncDecl, call *ast.CallExpr) bool {
	switch p := parent[call].(type) {
	case *ast.ExprStmt:
		return false // result dropped on the floor
	case *ast.GoStmt, *ast.DeferStmt:
		return true
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs != call {
				continue
			}
			// v := New(...) or v, err := New(...): the first result binds
			// Lhs[i] (multi-assign pairs 1:1; a multi-result call is the
			// sole Rhs and binds Lhs[0]).
			if i >= len(p.Lhs) {
				return true
			}
			id, ok := p.Lhs[i].(*ast.Ident)
			if !ok {
				return true // stored through a selector/index: escapes to an owner
			}
			if id.Name == "_" {
				return false
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			lv, ok := obj.(*types.Var)
			if !ok || lv.IsField() {
				return true
			}
			return localReachesTeardown(info, parent, fd, lv)
		}
		return true
	case *ast.CallExpr:
		return true // passed straight to another owner (t.Cleanup, helper)
	case *ast.ReturnStmt:
		return true // caller's caller owns it
	}
	return true
}

// localReachesTeardown reports whether the local lv is closed, invoked,
// or escapes to something that could close it.
func localReachesTeardown(info *types.Info, parent map[ast.Node]ast.Node, fd *ast.FuncDecl, lv *types.Var) bool {
	handled := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if handled {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != lv {
			return true
		}
		switch p := parent[id].(type) {
		case *ast.SelectorExpr:
			if p.X == id && closerNames[p.Sel.Name] {
				handled = true // v.Close / defer v.Stop / closure calling v.Shutdown
			}
		case *ast.CallExpr:
			if p.Fun == id {
				handled = true // stop() — invoking a returned stop function
				return false
			}
			for _, arg := range p.Args {
				if arg == id {
					handled = true // handed to a helper that owns teardown
				}
			}
		case *ast.ReturnStmt:
			handled = true
		case *ast.AssignStmt:
			for i, r := range p.Rhs {
				if r != id {
					continue
				}
				// `_ = v` silences the compiler, not the goroutine.
				if i < len(p.Lhs) {
					if lid, ok := p.Lhs[i].(*ast.Ident); ok && lid.Name == "_" {
						continue
					}
				}
				handled = true // re-aliased; the new name is the owner
			}
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				handled = true
			}
		case *ast.CompositeLit, *ast.KeyValueExpr:
			handled = true // stored in a structure an owner tears down
		case *ast.GoStmt, *ast.DeferStmt:
			handled = true
		}
		return true
	})
	return handled
}

// finishLifecycle applies the three rules over the complete fact set.
func finishLifecycle(s *State, report func(Diagnostic)) {
	interp := getInterpFacts(s)
	lfacts := getLifecycleFacts(s)

	// owners: type keys whose goroutines come from a method or whose
	// constructor returns them.
	owners := map[string]bool{}
	for _, fi := range interp.funcs {
		if len(fi.spawns) == 0 || fi.joinedBody || isTestFunc(fi) {
			continue
		}
		if fi.isMethod && fi.recvTypeKey != "" {
			owners[fi.recvTypeKey] = true
		} else if fi.resultTypeKey != "" {
			owners[fi.resultTypeKey] = true
		}
	}

	// Rule 1: spawners must expose a teardown path.
	for _, fi := range interp.funcs {
		if len(fi.spawns) == 0 || fi.joinedBody || isTestFunc(fi) {
			continue
		}
		if isMainPkgFunc(fi) {
			continue // the process is the lifecycle
		}
		pos := fi.spawns[0].pos
		if fi.isMethod {
			if fi.recvTypeKey == "" || len(interp.closers[fi.recvTypeKey]) > 0 {
				continue
			}
			_, typ, _ := cutKey(fi.recvTypeKey)
			report(Diagnostic{
				Pos: pos,
				Message: fmt.Sprintf("%s starts a goroutine but %s has no Close/Stop/Shutdown: the goroutine cannot be joined",
					fi.pretty, typ),
				Analyzer: "lifecycle",
			})
			continue
		}
		if fi.returnsFunc {
			continue // stop-function shape
		}
		if fi.resultTypeKey != "" && len(interp.closers[fi.resultTypeKey]) > 0 {
			continue
		}
		report(Diagnostic{
			Pos: pos,
			Message: fmt.Sprintf("%s starts a goroutine but gives its caller no way to stop it: return a type with Close/Stop or a stop function, or join before returning",
				fi.pretty),
			Analyzer: "lifecycle",
		})
	}

	// Rule 2: closers of goroutine-owning types must drain.
	for typeKey := range owners {
		for _, closerKey := range interp.closers[typeKey] {
			ci := interp.funcs[closerKey]
			if ci == nil || isTestFunc(ci) {
				continue
			}
			if interp.reachesBarrier(closerKey) {
				continue
			}
			report(Diagnostic{
				Pos: ci.pos,
				Message: fmt.Sprintf("%s tears down a goroutine-owning type without a drain barrier (channel op, select, WaitGroup.Wait, or Shutdown): the goroutine may outlive the resources it uses",
					ci.pretty),
				Analyzer: "lifecycle",
			})
		}
	}

	// Rule 3: constructor results must keep a teardown path.
	for _, site := range lfacts.sites {
		if site.handled {
			continue
		}
		fi := interp.funcs[site.calleeKey]
		if fi == nil || len(fi.spawns) == 0 || fi.joinedBody || fi.isMethod {
			continue
		}
		report(Diagnostic{
			Pos: site.pos,
			Message: fmt.Sprintf("result of %s is never closed: it starts a background goroutine, so drop-or-forget is a goroutine leak",
				site.pretty),
			Analyzer: "lifecycle",
		})
	}
}

// isTestFunc reports whether the function is declared in a _test.go file.
func isTestFunc(fi *funcInfo) bool {
	return strings.HasSuffix(fi.pos.Filename, "_test.go")
}

// isMainPkgFunc approximates "func main in package main": the function is
// named main with no receiver. Library functions named main are
// vanishingly rare and a miss here only silences, never flags.
func isMainPkgFunc(fi *funcInfo) bool {
	return !fi.isMethod && fi.pretty == "main"
}
