// Package lpm is a corpus-local model of the path-copying trie: node
// fields may only be written inside Txn methods, and the table root is
// published only by New and Txn.Commit.
package lpm

import "sync/atomic"

type node struct {
	child [2]*node
	set   bool
	val   int
}

type gen struct{ root *node }

type Table struct{ cur atomic.Pointer[gen] }

// New publishes the empty generation: allowed.
func New() *Table {
	t := &Table{}
	t.cur.Store(&gen{})
	return t
}

type Txn struct {
	t    *Table
	root *node
}

func (t *Table) Begin() *Txn { return &Txn{t: t, root: &node{}} }

// Insert writes nodes the transaction owns: Txn.* is allowlisted.
func (x *Txn) Insert(v int) {
	n := x.root
	n.set = true
	n.val = v
}

// Commit publishes: allowed.
func (x *Txn) Commit() {
	x.t.cur.Store(&gen{root: x.root})
}

// patchLive mutates published trie nodes in place — the torn-read hazard
// the path-copy discipline exists to prevent.
func patchLive(t *Table, v int) {
	n := t.cur.Load().root
	n.val = v               // want `write to node\.val outside the transaction API`
	n.set = true            // want `write to node\.set outside the transaction API`
	n.child[0] = &node{}    // want `write to node\.child outside the transaction API`
}

// rogueStore republishes from outside the transaction API.
func rogueStore(t *Table, g *gen) {
	t.cur.Store(g) // want `Table\.cur\.Store outside`
}
