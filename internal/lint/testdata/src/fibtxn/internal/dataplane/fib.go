// Package dataplane is a corpus-local model of the versioned FIB. The
// fibtxn analyzer matches protected types by import-path suffix, so this
// package stands in for repro/internal/dataplane.
package dataplane

import "sync/atomic"

type FIBEntry struct{ Out, Alt int }

// fibGen is protected: no function may write its fields after it is built.
type fibGen struct {
	gen     uint64
	entries map[int32]FIBEntry
}

type FIB struct{ cur atomic.Pointer[fibGen] }

// NewFIB may publish: construction is an allowed Store site.
func NewFIB() *FIB {
	f := &FIB{}
	f.cur.Store(&fibGen{entries: map[int32]FIBEntry{}})
	return f
}

// FIBTx stages changes in a transaction-private map, so Set never touches
// a published generation.
type FIBTx struct {
	f       *FIB
	entries map[int32]FIBEntry
}

func (f *FIB) Begin() *FIBTx {
	cur := f.cur.Load()
	entries := make(map[int32]FIBEntry, len(cur.entries))
	for k, v := range cur.entries {
		entries[k] = v
	}
	return &FIBTx{f: f, entries: entries}
}

// Set writes the staging map, not a generation: no finding.
func (tx *FIBTx) Set(dst int32, e FIBEntry) { tx.entries[dst] = e }

// Commit is the other allowed Store site; the composite literal builds the
// next generation before anyone can see it.
func (tx *FIBTx) Commit() {
	tx.f.cur.Store(&fibGen{gen: tx.f.cur.Load().gen + 1, entries: tx.entries})
}

// badDirectWrite is the regression case the analyzer exists for: patching
// one entry of the live generation in place, racing every concurrent
// lock-free Lookup.
func badDirectWrite(f *FIB, dst int32, e FIBEntry) {
	g := f.cur.Load()
	g.entries[dst] = e // want `write to fibGen\.entries outside the transaction API`
}

func badFieldWrite(f *FIB) {
	f.cur.Load().gen++ // want `write to fibGen\.gen outside the transaction API`
}

func badPublish(f *FIB, g *fibGen) {
	f.cur.Store(g) // want `FIB\.cur\.Store outside`
}

func badAddress(f *FIB) *map[int32]FIBEntry {
	return &f.cur.Load().entries // want `taking the address of fibGen\.entries outside the transaction API`
}
