// Package uw exercises the write-through-copy analyzer.
package uw

type item struct {
	n    int
	done bool
}

// badRange mutates the iteration copy; the slice never changes.
func badRange(items []item) {
	for _, it := range items {
		it.done = true // want `write to field done of range value copy "it" is lost`
	}
}

// mark mutates the receiver copy, which dies at return.
func (i item) mark() {
	i.done = true // want `write to field done of value receiver "i" is lost`
}

// okIndex writes through the element.
func okIndex(items []item) {
	for idx := range items {
		items[idx].done = true
	}
}

// okReadAfter: the copy is read again, so the write is meaningful.
func okReadAfter(items []item) int {
	s := 0
	for _, it := range items {
		it.n *= 2
		s += it.n
	}
	return s
}

// okAliased: the copy's address escapes; source order cannot prove the
// write unobserved.
func okAliased(items []item) *item {
	var last *item
	for _, it := range items {
		it.done = true
		last = &it
	}
	return last
}

// okPointerReceiver writes through the pointer: visible to the caller.
func (i *item) markPtr() {
	i.done = true
}
