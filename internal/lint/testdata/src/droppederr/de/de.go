// Package de exercises the dropped-error analyzer.
package de

import (
	"bufio"
	"errors"
	"io"
)

func produce() (int, error) { return 0, errors.New("x") }

func blanks() {
	_ = errors.New("dropped") // want `error silently discarded with _`
	n, _ := produce()         // want `error silently discarded with _`
	_ = n
}

func flush(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Flush() // want `bw\.Flush's error is unchecked: a failed Flush is the write being lost`
	return bw.Flush()
}

type closer struct{}

func (closer) Close() error { return nil }

func closes(c closer) error {
	defer c.Close() // deferred closes stay legal: not an expression statement
	c.Close() // want `c\.Close's error is unchecked`
	return c.Close()
}
