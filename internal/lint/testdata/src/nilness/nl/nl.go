// Package nl exercises the guaranteed-nil-dereference analyzer.
package nl

type box struct{ n int }

func (b box) Value() int { return b.n }
func (b *box) Ptr() *box { return b }

func deref(p *box) int {
	if p == nil {
		return (*p).n // want `nil dereference: this branch is only reached when "p" is nil`
	}
	return p.n
}

func field(p *box) int {
	if p != nil {
		return p.n
	} else {
		return p.n // want `nil dereference: field n read on "p", which is nil in this branch`
	}
}

func valueMethod(p *box) int {
	if p == nil {
		q := p.Ptr() // a pointer-receiver method may legally run on nil
		_ = q
		return p.Value() // want `nil dereference: value method Value called on "p", which is nil in this branch`
	}
	return 0
}

func index(s []int) int {
	if s == nil {
		return s[0] // want `nil index: "s" is nil in this branch`
	}
	return s[0]
}

// okReassign: the branch repairs p before using it.
func okReassign(p *box) int {
	if p == nil {
		p = &box{}
		return p.n
	}
	return p.n
}

// okMap: reading a nil map is defined behavior.
func okMap(m map[string]int) int {
	if m == nil {
		return m["k"]
	}
	return m["k"]
}

// okAddress: taking the address of a nil variable is safe.
func okAddress(p *box) **box {
	if p == nil {
		return &p
	}
	return nil
}
