// Package ls exercises lock-scope hygiene: no mutex held across a send,
// a Commit, or a blocking call.
package ls

import (
	"net"
	"sync"
	"time"
)

type table struct{ mu sync.Mutex }

// Commit is a publish point by name (LocksafeConfig.CommitMethods).
func (t *table) Commit() {}

type guarded struct {
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
}

// badSend holds the lock across a blocking send.
func (g *guarded) badSend() {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while holding g\.mu`
	g.mu.Unlock()
}

// badCommit is the regression case: a lock held across Commit nests the
// committer's writer lock under ours and orders locks by accident.
func (g *guarded) badCommit(t *table) {
	g.mu.Lock()
	defer g.mu.Unlock()
	t.Commit() // want `call to t\.Commit while holding g\.mu`
}

func (g *guarded) badSleep() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding g\.mu`
	g.mu.Unlock()
}

func (g *guarded) badDial() {
	g.mu.Lock()
	defer g.mu.Unlock()
	conn, err := net.Dial("tcp", "localhost:1") // want `blocking call to net\.Dial while holding g\.mu`
	if err == nil && conn != nil {
		conn = nil
	}
}

func (g *guarded) badWait() {
	g.mu.Lock()
	g.wg.Wait() // want `call to g\.wg\.Wait while holding g\.mu`
	g.mu.Unlock()
}

// okSelect: a send in a select with a default arm cannot block.
func (g *guarded) okSelect() {
	g.mu.Lock()
	select {
	case g.ch <- 1:
	default:
	}
	g.mu.Unlock()
}

// okUnlockFirst releases before the send.
func (g *guarded) okUnlockFirst() {
	g.mu.Lock()
	g.mu.Unlock()
	g.ch <- 1
}

// okCommitAfterUnlock: the RWMutex variant, released before Commit.
type rwGuarded struct {
	mu sync.RWMutex
}

func (g *rwGuarded) okCommitAfterUnlock(t *table) {
	g.mu.RLock()
	g.mu.RUnlock()
	t.Commit()
}

// okLit: a function literal runs later, under its own lock state.
func (g *guarded) okLit() func() {
	g.mu.Lock()
	defer g.mu.Unlock()
	return func() { g.ch <- 1 }
}

// okGo: a spawned goroutine does not hold the creator's locks.
func (g *guarded) okGo() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() { g.ch <- 1 }()
}
