// Package linkstore registers tsdb series; names must carry the
// linkstore_ prefix, be snake_case literals registered exactly once, and
// not reuse a metric or span name (series dumps and /metrics land in the
// same dashboards).
package linkstore

import (
	"obsnames/internal/obs"
	"obsnames/internal/obs/span"
	"obsnames/internal/obs/tsdb"
)

const utilName = "linkstore_link_util"

func register(st *tsdb.Store, r *obs.Registry, tr *span.Tracer, dyn string) {
	st.Series(utilName, "a named constant is still a compile-time literal")
	st.SeriesVec("linkstore_queue_ratio", "ok", "router", "port")

	st.Series(dyn, "x")               // want `must be a compile-time string literal`
	st.Series("LinkUtil", "x")        // want `not prefixed snake_case`
	st.Series("spare", "x")           // want `not prefixed snake_case`
	st.Series("other_link_util", "x") // want `must carry this component's prefix`

	st.Series("linkstore_dup_series", "first site owns the name")
	st.SeriesVec("linkstore_dup_series", "x", "l") // want `already registered at`

	// Unlike spans, a tsdb series may NOT shadow a metric or a span: one
	// name meaning a counter on /metrics and a sample ring in the dump is
	// a debugging trap.
	r.Counter("linkstore_frames_total", "the metric owns this name")
	st.Series("linkstore_frames_total", "x") // want `collides with the metric registered`
	tr.StartRoot("linkstore_probe_done", 0)
	st.Series("linkstore_probe_done", "x") // want `collides with the span started`
}
