// Package tsdb is a corpus-local model of the time-series store: the
// obsnames analyzer locates it by the "internal/obs/tsdb" path suffix.
package tsdb

type Series struct{}
type SeriesVec struct{}

type Store struct{}

func NewStore() *Store { return &Store{} }

func (st *Store) Series(name, help string) *Series { return &Series{} }
func (st *Store) SeriesVec(name, help string, labels ...string) *SeriesVec {
	return &SeriesVec{}
}
