// Package span is a corpus-local model of the convergence tracer: the
// obsnames analyzer locates it by the "internal/obs/span" path suffix.
package span

type Context struct{ Trace, Span uint64 }

type Span struct {
	Node int32
	A, B int64
	V    float64
}

func (s *Span) End() {}

func (s Span) Context() Context { return Context{} }

type Tracer struct{}

func (t *Tracer) StartRoot(name string, node int32) Span             { return Span{} }
func (t *Tracer) Start(name string, parent Context, node int32) Span { return Span{} }
