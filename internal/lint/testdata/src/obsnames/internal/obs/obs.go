// Package obs is a corpus-local model of the metrics registry: the
// obsnames analyzer locates it by the "internal/obs" path suffix.
package obs

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type CounterVec struct{}

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge     { return &Gauge{} }
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{}
}
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}
