// Package tracing starts spans; span names must be snake_case literals
// started at exactly one call site, but carry no component prefix (they
// are the repo-wide stage vocabulary, not per-subsystem series).
package tracing

import (
	"obsnames/internal/obs"
	"obsnames/internal/obs/span"
)

const stageEpoch = "daemon_epoch"

func instrument(tr *span.Tracer, r *obs.Registry, dyn string) {
	root := tr.StartRoot("conv_link_down", -1)
	child := tr.Start("fib_commit", root.Context(), 3)
	child.End()
	ep := tr.Start(stageEpoch, root.Context(), 0) // a named constant is still a literal
	ep.End()
	root.End()

	// Span and metric names are separate namespaces: sharing one is fine.
	tr.StartRoot("tracing_ticks", 0)
	r.Counter("tracing_ticks", "same name as the span above, no conflict")

	tr.Start(dyn, root.Context(), 0)              // want `must be a compile-time string literal`
	tr.StartRoot("FibCommit", 0)                  // want `not snake_case`
	tr.StartRoot("commit", 0)                     // want `not snake_case`
	tr.StartRoot("tracing_dup_op", 0)             // first site owns the name
	tr.Start("tracing_dup_op", root.Context(), 0) // want `already started at`
}
