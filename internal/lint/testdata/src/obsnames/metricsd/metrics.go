// Package metricsd registers metrics; its names must carry the metricsd_
// prefix, be snake_case literals, and be registered exactly once.
package metricsd

import "obsnames/internal/obs"

const goodName = "metricsd_frames_total"

func register(r *obs.Registry, dyn string) {
	r.Counter("metricsd_packets_total", "ok")
	r.Gauge("metricsd_queue_depth", "ok")
	r.Histogram("metricsd_wait_seconds", "ok", []float64{1, 2})
	r.CounterVec("metricsd_drops_total", "ok", "reason")
	r.Counter(goodName, "a named constant is still a compile-time literal")

	r.Counter("Bad_Name", "x")            // want `not prefixed snake_case`
	r.Counter("packets", "x")             // want `not prefixed snake_case`
	r.Counter("other_packets_total", "x") // want `must carry this component's prefix`
	r.Counter(dyn, "x")                   // want `must be a compile-time string literal`

	r.Counter("metricsd_dup_total", "first site owns the name")
	r.Counter("metricsd_dup_total", "x") // want `already registered at`
}
