// Package sh exercises the shadow analyzer: an inner := that splits one
// variable into two is only reported when the stale outer value is read
// again afterwards.
package sh

import "errors"

func work() (int, error) { return 1, nil }

// bad loses the inner write: the := inside the if creates a second err,
// and the stale outer one is what gets returned.
func bad() error {
	v, err := work()
	if v > 0 {
		v2, err := work() // want `declaration of "err" shadows declaration at line \d+; the outer variable is used again at line \d+`
		_ = v2
		_ = err
	}
	return err
}

// badRange: the range clause can shadow too.
func badRange(errs []error) error {
	_, err := work()
	for _, err := range errs { // want `declaration of "err" shadows declaration at line \d+`
		_ = err
	}
	return err
}

// okGuard is the idiom the write-exclusion exists for: the outer err is
// never read after the inner scopes, only overwritten.
func okGuard() {
	_, err := work()
	if err != nil {
		return
	}
	if err := errors.New("inner"); err != nil {
		_ = err
	}
}

// okDifferentType: shadowing with a different type is not the
// split-variable bug this pass hunts.
func okDifferentType() error {
	_, err := work()
	{
		err := "not an error"
		_ = err
	}
	return err
}
