// Package ringbuf exercises the ringorder analyzer: an SPSC ring with a
// read cursor, an overwriting sample ring, and a ring with non-atomic
// cursors.
package ringbuf

import (
	"sync/atomic"
)

// ring is a correct SPSC ring: slots land before the write cursor
// publishes them, the consumer advances its cursor only after draining.
//
//mifo:ring payload=buf cursor=w read=r latch=latch
type ring struct {
	buf   []uint64
	mask  uint64
	latch atomic.Uint32
	w     atomic.Uint64
	r     atomic.Uint64
}

// newRing is construction: role-field assignment is exempt here.
func newRing(capacity int) *ring {
	s := &ring{}
	s.buf = make([]uint64, capacity)
	s.mask = uint64(capacity - 1)
	return s
}

func (s *ring) lock() bool { return s.latch.CompareAndSwap(0, 1) }
func (s *ring) unlock()    { s.latch.Store(0) }

// push is the correct writer: slot store, then cursor publish.
func (s *ring) push(v uint64) {
	w := s.w.Load()
	s.buf[w&s.mask] = v
	s.w.Store(w + 1)
}

// pushTorn publishes before the slot bytes land — the torn-write shape
// the protocol exists to prevent.
func (s *ring) pushTorn(v uint64) {
	w := s.w.Load()
	s.w.Store(w + 1)
	s.buf[w&s.mask] = v // want `payload written after the cursor publish`
}

// pushUnpublished stores a slot no reader will ever be shown.
func (s *ring) pushUnpublished(v uint64) {
	w := s.w.Load()
	s.buf[w&s.mask] = v // want `cursor is never published`
}

// pushIgnored is the same torn write with a recorded waiver.
func (s *ring) pushIgnored(v uint64) {
	w := s.w.Load()
	s.w.Store(w + 1)
	//mifolint:ignore ringorder corpus case: waiver with a recorded reason is honored
	s.buf[w&s.mask] = v
}

// drain is the correct consumer: acquire both cursors, consume, then
// advance the read cursor.
func (s *ring) drain(fn func(uint64)) {
	r := s.r.Load()
	w := s.w.Load()
	for i := r; i != w; i++ {
		fn(s.buf[i&s.mask])
	}
	s.r.Store(w)
}

// drainEager advances the read cursor before consuming: producers may
// overwrite the slots still being read.
func (s *ring) drainEager(fn func(uint64)) {
	r := s.r.Load()
	w := s.w.Load()
	s.r.Store(w) // want `read cursor advanced before payload slots are consumed`
	for i := r; i != w; i++ {
		fn(s.buf[i&s.mask])
	}
}

// peek reads a slot without the cursor acquire edge.
func (s *ring) peek(i uint64) uint64 {
	return s.buf[i&s.mask] // want `payload read without an atomic cursor load first`
}

// alias hands the slot storage out, defeating the cursor protocol.
func (s *ring) alias() []uint64 {
	return s.buf // want `aliased or escapes`
}

// grow swaps the slot storage outside construction.
func (s *ring) grow() {
	s.buf = make([]uint64, 2*len(s.buf)) // want `reassigned outside construction`
}
