package ringbuf

// loose declares ring roles on plain words: every touch of the cursor is
// non-atomic and flagged.
//
//mifo:ring payload=slots cursor=n
type loose struct {
	slots []uint64
	n     uint64
}

func (l *loose) bump() {
	l.n++ // want `accessed non-atomically`
}

func (l *loose) put(v uint64) {
	l.slots[0] = v // want `cursor is never published`
}

// badspec names a payload field the struct does not have.
//
//mifo:ring payload=nope cursor=w // want `malformed //mifo:ring directive`
type badspec struct {
	w uint64
}
