package ringbuf

import "sync/atomic"

// over is an overwriting sample ring with no read cursor — the
// internal/obs/tsdb shape. Readers must re-load the cursor after copying
// and discard the window the writer may have lapped.
//
//mifo:ring payload=ts cursor=cur init=over.reset
type over struct {
	mask uint64
	ts   []atomic.Int64
	cur  atomic.Uint64
}

// reset is named in init= and may assign role fields.
func (o *over) reset(n int) {
	o.ts = make([]atomic.Int64, n)
	o.mask = uint64(n - 1)
}

// sample is the correct writer: slot store, then cursor publish.
func (o *over) sample(v int64) {
	i := o.cur.Load()
	o.ts[i&o.mask].Store(v)
	o.cur.Store(i + 1)
}

// snapshot copies the window, then re-loads the cursor so the caller can
// discard lapped slots.
func (o *over) snapshot(buf []int64) ([]int64, uint64) {
	end := o.cur.Load()
	out := buf[:0]
	for i := uint64(0); i < end; i++ {
		out = append(out, o.ts[i&o.mask].Load())
	}
	return out, o.cur.Load()
}

// snapshotTorn copies without re-checking the cursor: a lapped writer
// hands the caller a half-overwritten window — the pre-fix torn-read bug.
func (o *over) snapshotTorn(buf []int64) []int64 {
	end := o.cur.Load()
	out := buf[:0]
	for i := uint64(0); i < end; i++ {
		out = append(out, o.ts[i&o.mask].Load()) // want `torn-read discard`
	}
	return out
}
