// Package hp exercises the //mifo:hotpath cost budget.
package hp

import (
	"fmt"
	"sync"
)

type ring struct {
	mu  sync.Mutex
	buf []int
}

// helper is deliberately unannotated: calling it from a hot-path function
// must be flagged, because the budget is transitive.
func helper() int { return 1 }

// fastCallee has opted into the budget.
//
//mifo:hotpath
func fastCallee() int { return 2 }

// fast is part of the per-packet path and violates every rule once.
//
//mifo:hotpath
func fast(r *ring, ch chan int, note string) {
	_ = fmt.Sprintf("x=%d", 1) // want `hot path calls fmt\.Sprintf`
	_ = map[string]int{}       // want `hot path allocates a map literal`
	_ = []int{1, 2}            // want `hot path allocates a slice literal`
	_ = make([]int, 4)         // want `hot path calls make`
	_ = note + "!"             // want `hot path concatenates strings`
	r.mu.Lock()                // want `hot path takes Mutex\.Lock`
	ch <- 1                    // want `hot path sends on a channel`
	r.buf = append(r.buf, 1)   // want `hot path appends to an escaping slice`
	_ = helper()               // want `fast is //mifo:hotpath but calls hp\.helper, which is not annotated`
	_ = fastCallee()
	r.mu.Unlock()
}

// fastLocalAppend shows the allowed shape: a buffer that never escapes.
//
//mifo:hotpath
func fastLocalAppend(seed []int) int {
	buf := seed
	buf = append(buf, 1)
	return len(buf)
}

// slow is unannotated: everything is allowed here.
func slow() {
	_ = fmt.Sprintf("%d", helper())
	_ = make([]int, 8)
}
