package worker

// UseAndClose keeps the teardown path: fine.
func UseAndClose() {
	p := NewPump()
	defer p.Close()
	p.Feed(1)
}

// Drop discards a goroutine-owning result on the floor.
func Drop() {
	NewPump() // want `never closed`
}

// Forget binds the result but never closes it; `_ = p` silences the
// compiler, not the goroutine — the pre-fix recorder-test leak shape.
func Forget() {
	p := NewPump() // want `never closed`
	_ = p
}

// UseWatch invokes the returned stop function: fine.
func UseWatch() {
	stop := Watch()
	stop()
}

// DropWatch never calls the stop function.
func DropWatch() {
	Watch() // want `never closed`
}

// FireAndForget drops a result with a recorded waiver.
func FireAndForget() {
	//mifolint:ignore lifecycle corpus case: waiver with a recorded reason is honored
	NewPump()
}
