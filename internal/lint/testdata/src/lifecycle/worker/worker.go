// Package worker exercises the lifecycle analyzer: goroutine-spawning
// constructors must expose a teardown, closers must drain, and callers
// must keep a path to the teardown.
package worker

import "sync"

// Pump drains its input in the background; Close joins the goroutine.
type Pump struct {
	ch   chan int
	done chan struct{}
}

// NewPump spawns the drain goroutine; callers own the Close.
func NewPump() *Pump {
	p := &Pump{ch: make(chan int), done: make(chan struct{})}
	go p.run()
	return p
}

func (p *Pump) run() {
	for range p.ch {
	}
	close(p.done)
}

// Feed hands one value to the pump.
func (p *Pump) Feed(v int) {
	p.ch <- v
}

// Close provides the drain barrier.
func (p *Pump) Close() {
	close(p.ch)
	<-p.done
}

// Orphan spawns a goroutine nobody can stop.
type Orphan struct {
	ch chan int
}

// NewOrphan leaks: Orphan exposes no Close/Stop/Shutdown.
func NewOrphan() *Orphan {
	o := &Orphan{ch: make(chan int)}
	go func() { // want `no way to stop it`
		for range o.ch {
		}
	}()
	return o
}

// Valve stops its goroutine by flag only: no drain barrier.
type Valve struct {
	mu   sync.Mutex
	stop bool
}

// NewValve spawns the spinner.
func NewValve() *Valve {
	v := &Valve{}
	go v.spin()
	return v
}

func (v *Valve) spin() {
	for {
		v.mu.Lock()
		s := v.stop
		v.mu.Unlock()
		if s {
			return
		}
	}
}

// Stop flips a flag and returns with the goroutine still running.
func (v *Valve) Stop() { // want `without a drain barrier`
	v.mu.Lock()
	v.stop = true
	v.mu.Unlock()
}

// Feeder spawns from a method on a type with no teardown.
type Feeder struct {
	ch chan int
}

// Start spawns; Feeder has no closer.
func (f *Feeder) Start() {
	go func() { // want `has no Close/Stop/Shutdown`
		for range f.ch {
		}
	}()
}

// Watch returns a stop function: invoking it is the teardown.
func Watch() func() {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-done
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// Fanout joins its workers before returning: fork-join owns no lifecycle.
func Fanout(items []int, fn func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			fn(x)
		}(it)
	}
	wg.Wait()
}
