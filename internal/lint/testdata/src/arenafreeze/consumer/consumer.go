// Package consumer exercises every interior-slice verdict against the
// frozen topo arena.
package consumer

import "arenafreeze/internal/topo"

// Sum ranges over the interior slice: reading is fine.
func Sum(g *topo.Graph, v int) int32 {
	var s int32
	for _, nb := range g.Neighbors(v) {
		s += nb.AS
	}
	return s
}

// First indexes for reading through a local: fine.
func First(g *topo.Graph, v int) topo.Neighbor {
	list := g.Neighbors(v)
	if len(list) == 0 {
		return topo.Neighbor{}
	}
	return list[0]
}

// Max passes the slice to a helper that provably only reads it: fine.
func Max(g *topo.Graph, v int) int32 {
	list := g.Neighbors(v)
	return maxAS(list)
}

func maxAS(nbrs []topo.Neighbor) int32 {
	var m int32
	for _, nb := range nbrs {
		if nb.AS > m {
			m = nb.AS
		}
	}
	return m
}

// Scrub writes an element through the interior slice.
func Scrub(g *topo.Graph, v int) {
	list := g.Neighbors(v) // want `an element is written through the interior slice`
	for i := range list {
		list[i].Rel = 0
	}
}

// Grow appends through the interior slice: spare capacity belongs to the
// next arena segment.
func Grow(g *topo.Graph, v int, nb topo.Neighbor) {
	list := g.Neighbors(v) // want `append writes through the interior slice`
	grown := append(list, nb)
	use(grown)
}

func use(nbrs []topo.Neighbor) {
	for range nbrs {
	}
}

// Leak returns the interior slice to an unchecked caller.
func Leak(g *topo.Graph, v int) []topo.Neighbor {
	list := g.Neighbors(v) // want `returned to an unchecked caller`
	return list
}

// Reset hands the slice to a helper that writes it: flagged transitively.
func Reset(g *topo.Graph, v int) {
	list := g.Neighbors(v) // want `cannot prove read-only`
	zero(list)
}

func zero(nbrs []topo.Neighbor) {
	for i := range nbrs {
		nbrs[i] = topo.Neighbor{}
	}
}

// Deep goes through one more hop before the write: still flagged.
func Deep(g *topo.Graph, v int) {
	list := g.Neighbors(v) // want `cannot prove read-only`
	scrubVia(list)
}

func scrubVia(nbrs []topo.Neighbor) {
	zero(nbrs)
}

// Owner mutates deliberately, with a recorded waiver.
func Owner(g *topo.Graph, v int) {
	//mifolint:ignore arenafreeze corpus case: waiver with a recorded reason is honored
	list := g.Neighbors(v)
	list[0].Rel = 1
}
