// Package topo is a miniature of the CSR arena the real topology package
// publishes: a Builder packs adjacency into two flat arrays, and the
// published Graph is frozen from that moment on.
package topo

// Neighbor is one adjacency entry.
type Neighbor struct {
	AS  int32
	Rel int8
}

// Graph is the frozen CSR arena.
type Graph struct {
	off  []int32
	nbrs []Neighbor
}

// Builder accumulates adjacency before the pack.
type Builder struct {
	n   int
	adj [][]Neighbor
}

// NewBuilder sizes the builder for n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, adj: make([][]Neighbor, n)}
}

// Add records one edge.
func (b *Builder) Add(v int, nb Neighbor) {
	b.adj[v] = append(b.adj[v], nb)
}

// Build packs and publishes: the only sanctioned write path.
func (b *Builder) Build() *Graph {
	g := &Graph{off: make([]int32, b.n+1)}
	for v := 0; v < b.n; v++ {
		g.nbrs = append(g.nbrs, b.adj[v]...)
		g.off[v+1] = int32(len(g.nbrs))
	}
	return g
}

// Neighbors hands out an interior slice of the arena; callers must not
// modify it.
func (g *Graph) Neighbors(v int) []Neighbor {
	return g.nbrs[g.off[v]:g.off[v+1]]
}

// Compact mutates the arena after publish.
func (g *Graph) Compact() {
	g.nbrs = g.nbrs[:0] // want `write to frozen Graph.nbrs`
	g.off[0]++          // want `write to frozen Graph.off`
}
