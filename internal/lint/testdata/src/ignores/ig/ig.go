// Package ig exercises the ignore-directive machinery: a directive with a
// reason suppresses, on its own line or the line above; a finding without
// one still fires.
package ig

import (
	"bufio"
	"io"
)

func flush(w io.Writer) {
	bw := bufio.NewWriter(w)
	bw.Flush() //mifolint:ignore droppederr demo sink: the read side of the pipe is already gone
	bw.Reset(w)
	bw.Flush() // want `bw\.Flush's error is unchecked`
	bw.Reset(w)
	//mifolint:ignore droppederr the directive on the line above covers the next line
	bw.Flush()
	bw.Reset(w)
	//mifolint:ignore shadow a directive for another analyzer does not suppress this one
	bw.Flush() // want `bw\.Flush's error is unchecked`
}
