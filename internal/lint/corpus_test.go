package lint

// The analysistest-style harness: each analyzer has a corpus under
// testdata/src/<name>/... whose packages carry `// want `+"`regex`"+`
// comments on the lines where a diagnostic must appear. checkCorpus loads
// the corpus from source (standard-library imports resolve against the
// build cache's export data, corpus-local imports against the corpus
// itself), runs the given analyzers through Run — so ignore directives are
// honored exactly as in production — and then requires a 1:1 match
// between diagnostics and want comments.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

const corpusRoot = "testdata/src"

// stdExportsCache memoizes `go list -export` across corpus loads: the
// corpora share a handful of stdlib imports, and export-data paths are
// stable for the life of the test process.
var stdExportsCache sync.Map // sorted joined paths -> map[string]string

// stdExports resolves export-data files for the given import paths (and
// their dependencies) via `go list -export`, the same mechanism Load uses.
func stdExports(t *testing.T, paths []string) map[string]string {
	t.Helper()
	exports := map[string]string{}
	if len(paths) == 0 {
		return exports
	}
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)
	cacheKey := strings.Join(sorted, "\x00")
	if cached, ok := stdExportsCache.Load(cacheKey); ok {
		return cached.(map[string]string)
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export", "--"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list -export %v: %v\n%s", paths, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	stdExportsCache.Store(cacheKey, exports)
	return exports
}

// corpusImporter resolves corpus-local packages from the already-checked
// set and everything else from export data.
type corpusImporter struct {
	local map[string]*types.Package
	gc    types.Importer
}

func (ci *corpusImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := ci.local[path]; p != nil {
		return p, nil
	}
	return ci.gc.Import(path)
}

// loadCorpus parses and type-checks every package under
// testdata/src/<root>, assigning each directory its src-relative slash
// path as import path (so "testdata/src/fibtxn/internal/dataplane" is the
// package "fibtxn/internal/dataplane", which path-suffix configs match).
func loadCorpus(t *testing.T, root string) []*Package {
	t.Helper()
	type rawPkg struct {
		path    string
		files   []*ast.File
		imports map[string]bool
	}
	fset := token.NewFileSet()
	var raws []*rawPkg
	walkErr := filepath.WalkDir(filepath.Join(corpusRoot, root), func(p string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(corpusRoot, p)
		if err != nil {
			return err
		}
		rp := &rawPkg{path: filepath.ToSlash(rel), imports: map[string]bool{}}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, perr := parser.ParseFile(fset, filepath.Join(p, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if perr != nil {
				return perr
			}
			rp.files = append(rp.files, f)
			for _, imp := range f.Imports {
				path, uerr := strconv.Unquote(imp.Path.Value)
				if uerr != nil {
					return uerr
				}
				rp.imports[path] = true
			}
		}
		if len(rp.files) > 0 {
			raws = append(raws, rp)
		}
		return nil
	})
	if walkErr != nil {
		t.Fatalf("loading corpus %s: %v", root, walkErr)
	}
	if len(raws) == 0 {
		t.Fatalf("corpus %s is empty", root)
	}

	local := map[string]*rawPkg{}
	for _, rp := range raws {
		local[rp.path] = rp
	}
	extSet := map[string]bool{}
	for _, rp := range raws {
		for imp := range rp.imports {
			if local[imp] == nil && imp != "unsafe" {
				extSet[imp] = true
			}
		}
	}
	ext := make([]string, 0, len(extSet))
	for p := range extSet {
		ext = append(ext, p)
	}
	exports := stdExports(t, ext)
	ci := &corpusImporter{
		local: map[string]*types.Package{},
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
	}

	// Type-check in dependency order over the corpus-local import graph.
	var pkgs []*Package
	infoOf := map[string]*types.Info{}
	for len(ci.local) < len(raws) {
		progress := false
		for _, rp := range raws {
			if ci.local[rp.path] != nil {
				continue
			}
			ready := true
			for dep := range rp.imports {
				if local[dep] != nil && ci.local[dep] == nil {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			info := NewInfo()
			conf := types.Config{Importer: ci}
			tp, err := conf.Check(rp.path, fset, rp.files, info)
			if err != nil {
				t.Fatalf("type-checking corpus package %s: %v", rp.path, err)
			}
			ci.local[rp.path] = tp
			infoOf[rp.path] = info
			progress = true
		}
		if !progress {
			t.Fatalf("import cycle among corpus packages of %s", root)
		}
	}
	for _, rp := range raws {
		pkgs = append(pkgs, &Package{
			PkgPath:   rp.path,
			Name:      ci.local[rp.path].Name(),
			Fset:      fset,
			Files:     rp.files,
			Types:     ci.local[rp.path],
			TypesInfo: infoOf[rp.path],
		})
	}
	return pkgs
}

// wantRE extracts the backquoted regexes of a `// want` comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

type wantExpect struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// checkCorpus runs analyzers over the corpus and enforces an exact match
// between the diagnostics and the corpus' want comments.
func checkCorpus(t *testing.T, root string, analyzers ...*Analyzer) {
	t.Helper()
	pkgs := loadCorpus(t, root)
	diags := Run(pkgs, analyzers)

	var wants []*wantExpect
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					i := strings.Index(c.Text, "// want ")
					if i < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRE.FindAllStringSubmatch(c.Text[i:], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants = append(wants, &wantExpect{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("corpus %s declares no want comments; an all-quiet corpus proves nothing", root)
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}
