package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// arenafreeze enforces the publish-then-freeze contract on arena-backed
// structures: memory a builder assembles and hands out (the topo.Graph
// CSR arrays, bgp.Dest packed route entries) is immutable from the moment
// it is returned. Concretely:
//
//   - no function outside the type's allowed writers may store through a
//     frozen type's fields (element assignment, field assignment, append,
//     ++/--, or taking a slot's address);
//   - accessor methods that return interior slices of the arena (the
//     Graph.Neighbors shape — "callers must not modify" in prose) are
//     verified at every call site: the returned slice may be ranged,
//     indexed for reading, and measured, and it may be passed to callees
//     that provably only read it (transitively, via the interprocedural
//     parameter-mutation facts — the same shape as hotpathalloc's
//     transitive budget). Writing an element, appending (a subslice of a
//     packed arena has spare capacity that belongs to the *next*
//     segment), re-slicing into a new alias, storing the slice into a
//     structure, or passing it to a callee the analyzer cannot prove
//     read-only is a finding.
//
// The versioned FIB and trie generations keep their own, stricter
// analyzer (fibtxn); arenafreeze covers the builder-published arenas that
// have no transaction API — their entire write surface is the builder.

// FrozenType names one arena-published type and its construction surface.
type FrozenType struct {
	// PkgSuffix locates the declaring package (path-suffix match).
	PkgSuffix string
	// TypeName is the frozen type's name.
	TypeName string
	// AllowedWriters are funcKeys ("Recv.Name", "Name", or "Recv.*") in
	// the declaring package that may write the fields: the builder path.
	AllowedWriters []string
}

// ArenafreezeConfig parameterizes the arenafreeze analyzer.
type ArenafreezeConfig struct {
	Types []FrozenType
}

// DefaultArenafreezeConfig covers the repository's builder-published
// arenas.
func DefaultArenafreezeConfig() ArenafreezeConfig {
	return ArenafreezeConfig{Types: []FrozenType{
		{
			// The CSR topology: off/nbrs packed once by Builder.Build, or
			// filtered into a fresh Graph by RemoveLinks (a copy; the
			// source graph is only read).
			PkgSuffix:      "internal/topo",
			TypeName:       "Graph",
			AllowedWriters: []string{"Builder.Build", "RemoveLinks"},
		},
		{
			// Per-destination packed route entries, possibly arena-backed:
			// written only when the dense scratch is packed.
			PkgSuffix:      "internal/bgp",
			TypeName:       "Dest",
			AllowedWriters: []string{"computeScratch.pack"},
		},
	}}
}

const arenafreezeFactKey = "arenafreeze"

// interiorSite is one call to a possible interior-slice accessor, with
// its use already classified; judged at Finish once the accessor set is
// complete.
type interiorSite struct {
	pos       token.Position
	calleeKey string // accessor identity, calleeKeyOf form
	pretty    string // "Graph.Neighbors"
	verdict   string // read | mutate | escape | edge
	detail    string // what the escape/mutation is, for the report
	edgeKey   string // for verdict == edge
	edgeIdx   int
}

type arenafreezeFacts struct {
	// accessors is the set of frozen-type methods returning interior
	// slices of the arena, in calleeKeyOf form.
	accessors map[string]bool
	sites     []interiorSite
}

func getArenafreezeFacts(s *State) *arenafreezeFacts {
	return s.Get(arenafreezeFactKey, func() any {
		return &arenafreezeFacts{accessors: map[string]bool{}}
	}).(*arenafreezeFacts)
}

// Arenafreeze returns the frozen-arena analyzer.
func Arenafreeze(cfg ArenafreezeConfig) *Analyzer {
	a := &Analyzer{
		Name: "arenafreeze",
		Doc:  "builder-published arena memory is frozen: no writes outside the builder, interior slices handed out by accessors are provably read-only",
	}
	a.Run = func(pass *Pass) { runArenafreeze(pass, cfg) }
	a.Finish = finishArenafreeze
	return a
}

// frozenTypeOf resolves t to its FrozenType config entry, if any.
func frozenTypeOf(cfg ArenafreezeConfig, t types.Type) *FrozenType {
	for i := range cfg.Types {
		ft := &cfg.Types[i]
		if typeIs(t, ft.PkgSuffix, ft.TypeName) {
			return ft
		}
	}
	return nil
}

func runArenafreeze(pass *Pass, cfg ArenafreezeConfig) {
	collectInterproc(pass)
	facts := getArenafreezeFacts(pass.State)
	info := pass.Pkg.TypesInfo

	for _, file := range pass.Pkg.AllFiles() {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := funcKey(fd)

			// The builder itself may write and re-slice freely: its whole
			// body is the construction path.
			inBuilder := false
			if ownPkg(pass, cfg, fd) {
				for i := range cfg.Types {
					if matchFunc(cfg.Types[i].AllowedWriters, key) {
						inBuilder = true
					}
				}
			}
			if !inBuilder {
				checkFrozenWrites(pass, cfg, info, fd)
			}

			recordAccessorFact(pass, cfg, facts, info, fd)
			if !inBuilder {
				recordInteriorSites(pass, cfg, facts, info, fd)
			}
		}
	}
}

// ownPkg reports whether fd's package declares one of the frozen types
// (allowed-writer keys are only meaningful there).
func ownPkg(pass *Pass, cfg ArenafreezeConfig, fd *ast.FuncDecl) bool {
	for i := range cfg.Types {
		if pathHasSuffix(pass.Pkg.PkgPath, cfg.Types[i].PkgSuffix) {
			return true
		}
	}
	return false
}

// checkFrozenWrites flags stores through frozen-type fields, the fibtxn
// lvalue discipline applied to the arena types.
func checkFrozenWrites(pass *Pass, cfg ArenafreezeConfig, info *types.Info, fd *ast.FuncDecl) {
	report := func(pos token.Pos, ft *FrozenType, field string) {
		pass.Reportf(pos, "write to frozen %s.%s outside %v: arena memory is immutable once the builder publishes it",
			ft.TypeName, field, ft.AllowedWriters)
	}
	// frozenFieldBase walks an lvalue to a selector on a frozen type.
	var frozenFieldBase func(e ast.Expr) (*FrozenType, string, token.Pos, bool)
	frozenFieldBase = func(e ast.Expr) (*FrozenType, string, token.Pos, bool) {
		switch v := e.(type) {
		case *ast.ParenExpr:
			return frozenFieldBase(v.X)
		case *ast.StarExpr:
			return frozenFieldBase(v.X)
		case *ast.IndexExpr:
			return frozenFieldBase(v.X)
		case *ast.SliceExpr:
			return frozenFieldBase(v.X)
		case *ast.SelectorExpr:
			if tv, ok := info.Types[v.X]; ok {
				if ft := frozenTypeOf(cfg, tv.Type); ft != nil {
					if sel, ok := info.Selections[v]; ok && sel.Kind() == types.FieldVal {
						return ft, v.Sel.Name, v.Pos(), true
					}
				}
			}
			return frozenFieldBase(v.X)
		}
		return nil, "", token.NoPos, false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if ft, field, pos, ok := frozenFieldBase(lhs); ok {
					report(pos, ft, field)
				}
			}
		case *ast.IncDecStmt:
			if ft, field, pos, ok := frozenFieldBase(v.X); ok {
				report(pos, ft, field)
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if _, ok := v.X.(*ast.IndexExpr); ok {
					if ft, field, pos, ok := frozenFieldBase(v.X); ok {
						report(pos, ft, field)
					}
				}
			}
		}
		return true
	})
}

// recordAccessorFact marks fd as an interior-slice accessor when it is a
// frozen-type method returning (a subslice of) a receiver slice field.
func recordAccessorFact(pass *Pass, cfg ArenafreezeConfig, facts *arenafreezeFacts, info *types.Info, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || frozenTypeOf(cfg, sig.Recv().Type()) == nil {
		return
	}
	returnsField := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			e := ast.Unparen(r)
			for {
				if se, ok := e.(*ast.SliceExpr); ok {
					e = ast.Unparen(se.X)
					continue
				}
				break
			}
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			tv, ok := info.Types[sel.X]
			if !ok || frozenTypeOf(cfg, tv.Type) == nil {
				continue
			}
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
				if _, isSlice := s.Type().Underlying().(*types.Slice); isSlice {
					returnsField = true
				}
			}
		}
		return true
	})
	if returnsField {
		if key, _, _, ok := calleeKeyOf(obj); ok {
			facts.accessors[key] = true
		}
	}
}

// recordInteriorSites classifies every call to a frozen-type method that
// returns a slice; verdicts are judged at Finish against the accessor set.
func recordInteriorSites(pass *Pass, cfg ArenafreezeConfig, facts *arenafreezeFacts, info *types.Info, fd *ast.FuncDecl) {
	parent := buildParentMap(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || !isMethod(fn) {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil || frozenTypeOf(cfg, sig.Recv().Type()) == nil {
			return true
		}
		if sig.Results().Len() != 1 {
			return true
		}
		if _, isSlice := sig.Results().At(0).Type().Underlying().(*types.Slice); !isSlice {
			return true
		}
		key, pretty, _, ok := calleeKeyOf(fn)
		if !ok {
			return true
		}
		site := interiorSite{
			pos:       pass.Pkg.Fset.Position(call.Pos()),
			calleeKey: key,
			pretty:    pretty,
		}
		site.verdict, site.detail, site.edgeKey, site.edgeIdx =
			classifyInteriorUse(info, parent, fd, call)
		facts.sites = append(facts.sites, site)
		return true
	})
}

// buildParentMap links every node in body to its parent.
func buildParentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parent := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parent
}

// classifyInteriorUse decides what the caller does with an accessor's
// returned slice.
func classifyInteriorUse(info *types.Info, parent map[ast.Node]ast.Node, fd *ast.FuncDecl, call *ast.CallExpr) (verdict, detail, edgeKey string, edgeIdx int) {
	p := parent[call]
	switch v := p.(type) {
	case *ast.RangeStmt:
		if v.X == call {
			return "read", "", "", 0
		}
	case *ast.ExprStmt:
		return "read", "", "", 0
	case *ast.IndexExpr:
		if v.X == call {
			// elem read unless the element is an lvalue.
			if isLvalueContext(parent, v) {
				return "mutate", "an element is written through the interior slice", "", 0
			}
			return "read", "", "", 0
		}
	case *ast.CallExpr:
		// Argument of another call.
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap":
					return "read", "", "", 0
				case "append":
					if len(v.Args) > 0 && v.Args[0] == call {
						return "mutate", "append through an interior slice can clobber the adjacent arena segment", "", 0
					}
					return "read", "", "", 0 // appended *onto* a local: elements are copied
				case "copy":
					if len(v.Args) > 0 && v.Args[0] == call {
						return "mutate", "copy writes into the interior slice", "", 0
					}
					return "read", "", "", 0
				}
			}
		}
		if fn := calleeFunc(info, v); fn != nil {
			if key, _, _, ok := calleeKeyOf(fn); ok {
				for i, arg := range v.Args {
					if arg == call {
						ci := i
						if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Params().Len() > 0 && ci >= sig.Params().Len() {
							ci = sig.Params().Len() - 1
						}
						return "edge", "", key, ci
					}
				}
			}
		}
		return "escape", "the interior slice is passed to a call the analyzer cannot resolve", "", 0
	case *ast.AssignStmt:
		// v := accessor() — possibly one of a parallel assignment
		// (na, nb := a.Neighbors(v), b.Neighbors(v)): track every use of
		// the matching local.
		lhs := ast.Expr(nil)
		if len(v.Lhs) == len(v.Rhs) {
			for i := range v.Rhs {
				if v.Rhs[i] == call {
					lhs = v.Lhs[i]
				}
			}
		}
		if lhs != nil {
			if id, ok := lhs.(*ast.Ident); ok {
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if lv, ok := obj.(*types.Var); ok && !lv.IsField() {
					return classifyLocalUses(info, parent, fd, lv)
				}
			}
		}
		return "escape", "the interior slice is stored somewhere the analyzer cannot track", "", 0
	}
	return "escape", "the interior slice escapes its call expression", "", 0
}

// isLvalueContext reports whether n is written (assignment target, ++/--,
// or address-taken).
func isLvalueContext(parent map[ast.Node]ast.Node, n ast.Node) bool {
	switch p := parent[n].(type) {
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if l == n {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == n
	case *ast.UnaryExpr:
		return p.Op == token.AND && p.X == n
	case *ast.SelectorExpr:
		// field of an element: writable through the chain.
		if p.X == n {
			return isLvalueContext(parent, p)
		}
	case *ast.IndexExpr:
		if p.X == n {
			return isLvalueContext(parent, p)
		}
	}
	return false
}

// classifyLocalUses inspects every use of the local holding an interior
// slice.
func classifyLocalUses(info *types.Info, parent map[ast.Node]ast.Node, fd *ast.FuncDecl, lv *types.Var) (verdict, detail, edgeKey string, edgeIdx int) {
	verdict = "read"
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if verdict != "read" && verdict != "edge" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != lv {
			return true
		}
		switch p := parent[id].(type) {
		case *ast.IndexExpr:
			if p.X == id && isLvalueContext(parent, p) {
				verdict, detail = "mutate", "an element is written through the interior slice"
			}
		case *ast.RangeStmt:
			// reading
		case *ast.CallExpr:
			if bid, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[bid].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap":
						return true
					case "append", "copy":
						if len(p.Args) > 0 && p.Args[0] == id {
							verdict, detail = "mutate", b.Name()+" writes through the interior slice"
						}
						return true
					}
				}
			}
			if fn := calleeFunc(info, p); fn != nil {
				if key, _, _, ok := calleeKeyOf(fn); ok {
					for i, arg := range p.Args {
						if arg == id {
							ci := i
							if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Params().Len() > 0 && ci >= sig.Params().Len() {
								ci = sig.Params().Len() - 1
							}
							// One edge is representable; a second distinct
							// callee degrades to escape so Finish stays simple.
							if verdict == "edge" && (edgeKey != key || edgeIdx != ci) {
								verdict, detail = "escape", "the interior slice is passed to multiple callees"
								return true
							}
							verdict, edgeKey, edgeIdx = "edge", key, ci
							return true
						}
					}
				}
				return true
			}
			for _, arg := range p.Args {
				if arg == id {
					verdict, detail = "escape", "the interior slice is passed to a dynamic call"
				}
			}
		case *ast.AssignStmt:
			// Rebinding the variable itself is fine; using it as a RHS
			// aliases the arena into another name.
			for _, l := range p.Lhs {
				if l == id {
					return true
				}
			}
			verdict, detail = "escape", "the interior slice is re-aliased into another variable"
		case *ast.ReturnStmt:
			verdict, detail = "escape", "the interior slice is returned to an unchecked caller"
		case *ast.SliceExpr:
			if p.X == id {
				verdict, detail = "escape", "the interior slice is re-sliced into a new alias"
			}
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				verdict, detail = "escape", "the interior slice's address is taken"
			}
		case *ast.CompositeLit, *ast.KeyValueExpr:
			verdict, detail = "escape", "the interior slice is stored into a composite"
		}
		return true
	})
	return verdict, detail, edgeKey, edgeIdx
}

// finishArenafreeze judges the recorded call sites against the accessor
// set and the transitive parameter-mutation facts.
func finishArenafreeze(s *State, report func(Diagnostic)) {
	facts := getArenafreezeFacts(s)
	interp := getInterpFacts(s)
	for _, site := range facts.sites {
		if !facts.accessors[site.calleeKey] {
			continue
		}
		switch site.verdict {
		case "read":
			continue
		case "edge":
			if !interp.paramMutates(site.edgeKey, site.edgeIdx) {
				continue
			}
			_, callee, _ := cutKey(site.edgeKey)
			report(Diagnostic{
				Pos: site.pos,
				Message: fmt.Sprintf("interior slice from %s is passed to %s, which the analyzer cannot prove read-only: frozen arena memory must not be writable through aliases",
					site.pretty, callee),
				Analyzer: "arenafreeze",
			})
		default:
			report(Diagnostic{
				Pos: site.pos,
				Message: fmt.Sprintf("interior slice from %s: %s — the arena is frozen after publish",
					site.pretty, site.detail),
				Analyzer: "arenafreeze",
			})
		}
	}
}

// cutKey splits a "pkgpath\x00name" key.
func cutKey(key string) (pkg, name string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i], key[i+1:], true
		}
	}
	return "", key, false
}
