package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathalloc enforces the forwarding-path cost model behind the
// committed BENCH_dataplane.json / BENCH_routing.json nanosecond budgets:
// a function annotated
//
//	//mifo:hotpath
//
// is part of the per-packet path (Forward, FIB.Lookup, the trie walk,
// Trace.Emit, the drop/deflect bookkeeping) and must stay allocation- and
// lock-free. Inside such a function (and the function literals it
// contains) the analyzer flags:
//
//   - calls into package fmt — formatting allocates and the hot path
//     must build notes only behind an Enabled() guard;
//   - map/slice composite literals and make() — per-packet heap traffic;
//   - append through an escaping destination (a field, element, or other
//     non-local lvalue on either side of the append);
//   - non-constant string concatenation;
//   - acquiring a sync.Mutex/RWMutex;
//   - channel sends (unbounded blocking);
//   - calls to project functions that are not themselves annotated
//     //mifo:hotpath — the budget is transitive, so the whole statically
//     resolvable call tree must opt in.
//
// The transitive check runs over the whole analysis set at Finish time,
// so cross-package edges (dataplane -> obs, dataplane -> lpm) are
// enforced without source-order coupling. Dynamic calls through function
// values and interface methods are outside its reach — the data plane's
// hook fields (Router.Hop, Router.Deflect) are the documented escape
// hatches and their implementations own their cost.
const hotpathFactKey = "hotpath"

type hotpathFacts struct {
	annotated map[string]bool     // "pkg.Recv.Name" -> declared hot
	analyzed  map[string]bool     // package paths seen this run
	edges     []hotpathEdge       // hot caller -> statically resolved callee
	positions map[string]struct{} // dedup for edges
}

type hotpathEdge struct {
	pos        token.Position
	caller     string
	calleeKey  string // "pkgpath\x00Recv.Name"
	calleeName string // pretty name for the report
	calleePkg  string
}

func getHotpathFacts(s *State) *hotpathFacts {
	return s.Get(hotpathFactKey, func() any {
		return &hotpathFacts{
			annotated: map[string]bool{},
			analyzed:  map[string]bool{},
			positions: map[string]struct{}{},
		}
	}).(*hotpathFacts)
}

// Hotpath returns the hot-path cost-model analyzer.
func Hotpath() *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "//mifo:hotpath functions must not allocate, format, lock, or call unannotated project functions",
	}
	a.Run = runHotpath
	a.Finish = finishHotpath
	return a
}

// calleeKeyOf builds the cross-package identity of a declared function.
func calleeKeyOf(fn *types.Func) (key, pretty, pkgPath string, ok bool) {
	if orig := fn.Origin(); orig != nil {
		fn = orig
	}
	if fn.Pkg() == nil {
		return "", "", "", false // builtins
	}
	name := fn.Name()
	if sig, sok := fn.Type().(*types.Signature); sok && sig.Recv() != nil {
		if n, nok := namedType(sig.Recv().Type()); nok {
			if orig := n.Origin(); orig != nil {
				n = orig
			}
			name = n.Obj().Name() + "." + name
		}
	}
	return fn.Pkg().Path() + "\x00" + name, name, fn.Pkg().Path(), true
}

func runHotpath(pass *Pass) {
	facts := getHotpathFacts(pass.State)
	facts.analyzed[pass.Pkg.PkgPath] = true
	info := pass.Pkg.TypesInfo

	// First pass: record every annotated function in this package.
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && hasDirective(fd, HotpathDirective) {
				facts.annotated[pass.Pkg.PkgPath+"\x00"+funcKey(fd)] = true
			}
		}
	}

	// isLocalVar reports whether e is a plain reference to a
	// function-local variable (including parameters) — the only append
	// destination that cannot alias a published structure.
	isLocalVar := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		if id.Name == "_" {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		return ok && !v.IsField() && v.Parent() != nil && v.Parent() != v.Pkg().Scope()
	}

	checkAppend := func(call *ast.CallExpr, lhs ast.Expr) {
		if len(call.Args) == 0 {
			return
		}
		if !isLocalVar(call.Args[0]) {
			pass.Reportf(call.Pos(), "hot path appends to an escaping slice %s: pre-size off the hot path or keep the buffer local", exprString(call.Args[0]))
			return
		}
		if lhs != nil && !isLocalVar(lhs) {
			pass.Reportf(call.Pos(), "hot path append result stored in escaping %s: keep hot-path buffers local", exprString(lhs))
		}
	}

	isAppend := func(call *ast.CallExpr) bool {
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "append"
	}

	checkBody := func(fd *ast.FuncDecl) {
		caller := funcKey(fd)
		appendsSeen := map[*ast.CallExpr]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				// Pair append calls with their destination before the
				// generic CallExpr case sees them.
				for i, rhs := range v.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok && isAppend(call) {
						appendsSeen[call] = true
						var lhs ast.Expr
						if len(v.Lhs) == len(v.Rhs) {
							lhs = v.Lhs[i]
						}
						checkAppend(call, lhs)
					}
				}
			case *ast.SendStmt:
				pass.Reportf(v.Pos(), "hot path sends on a channel: a full receiver blocks packet forwarding")
			case *ast.CompositeLit:
				if tv, ok := info.Types[v]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Map:
						pass.Reportf(v.Pos(), "hot path allocates a map literal: hoist it off the per-packet path")
					case *types.Slice:
						pass.Reportf(v.Pos(), "hot path allocates a slice literal: hoist it off the per-packet path")
					}
				}
			case *ast.BinaryExpr:
				if v.Op == token.ADD {
					if tv, ok := info.Types[v]; ok && tv.Value == nil {
						if b, bok := tv.Type.Underlying().(*types.Basic); bok && b.Info()&types.IsString != 0 {
							pass.Reportf(v.Pos(), "hot path concatenates strings: build notes only behind an Enabled() guard")
						}
					}
				}
			case *ast.CallExpr:
				if isAppend(v) {
					if !appendsSeen[v] {
						checkAppend(v, nil)
					}
					return true
				}
				if id, ok := v.Fun.(*ast.Ident); ok {
					if b, bok := info.Uses[id].(*types.Builtin); bok && b.Name() == "make" {
						pass.Reportf(v.Pos(), "hot path calls make: allocate off the per-packet path")
						return true
					}
				}
				// Type conversions are free of the concerns below.
				if tv, ok := info.Types[v.Fun]; ok && tv.IsType() {
					return true
				}
				fn := calleeFunc(info, v)
				if fn == nil {
					return true // dynamic call: hook fields own their cost
				}
				key, pretty, pkgPath, ok := calleeKeyOf(fn)
				if !ok {
					return true
				}
				if pkgPath == "fmt" {
					pass.Reportf(v.Pos(), "hot path calls fmt.%s: formatting allocates on every packet", fn.Name())
					return true
				}
				if pkgPath == "sync" && isLockAcquire(fn) {
					pass.Reportf(v.Pos(), "hot path takes %s.%s: the forwarding engine must stay lock-free", lockRecvName(fn), fn.Name())
					return true
				}
				facts.edges = append(facts.edges, hotpathEdge{
					pos:        pass.Pkg.Fset.Position(v.Pos()),
					caller:     caller,
					calleeKey:  key,
					calleeName: pretty,
					calleePkg:  pkgPath,
				})
			}
			return true
		})
	}

	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd, HotpathDirective) {
				continue
			}
			checkBody(fd)
		}
	}
}

// finishHotpath resolves the recorded call edges against the full
// annotation set: an edge into an analyzed package must land on an
// annotated function. Edges into packages outside the analysis set
// (standard library, generated code) are not judged.
func finishHotpath(s *State, report func(Diagnostic)) {
	facts := getHotpathFacts(s)
	for _, e := range facts.edges {
		if !facts.analyzed[e.calleePkg] || facts.annotated[e.calleeKey] {
			continue
		}
		report(Diagnostic{
			Pos: e.pos,
			Message: fmt.Sprintf("%s is //mifo:hotpath but calls %s.%s, which is not annotated: the cost budget is transitive",
				e.caller, shortPkg(e.calleePkg), e.calleeName),
			Analyzer: "hotpathalloc",
		})
	}
}

// calleeFunc statically resolves a call to its declared *types.Func, or
// nil for dynamic calls, builtins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isLockAcquire reports whether fn is a blocking lock acquisition on
// sync.Mutex or sync.RWMutex.
func isLockAcquire(fn *types.Func) bool {
	switch fn.Name() {
	case "Lock", "RLock":
	default:
		return false
	}
	return lockRecvName(fn) != ""
}

// lockRecvName returns "Mutex"/"RWMutex" when fn is a method on one.
func lockRecvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	n, ok := namedType(sig.Recv().Type())
	if !ok {
		return ""
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return n.Obj().Name()
	}
	return ""
}

func shortPkg(path string) string {
	if i := lastSlash(path); i >= 0 {
		return path[i+1:]
	}
	return path
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
