package lint

import (
	"go/ast"
	"go/types"
)

// fibtxn enforces generation immutability across the RIB->FIB pipeline:
// once a FIB generation or trie node is published behind the atomic
// pointer, nothing may write to it. The paper's kernel fib_table split
// (Section IV) only works because the forwarding engine can walk the
// table without locks — which in turn is only safe if every mutation goes
// through the Begin/Set/Commit transaction (map FIB) or the path-copy
// helpers (LPM trie), and the published pointer is stored only at
// construction and Commit.
//
// Concretely the analyzer flags, per protected struct type:
//   - assignments (including op-assign and ++/--) to a field of the type,
//   - writes through a field of the type (map index stores, element
//     stores via a slice/array field),
// outside the configured allowlist of writer functions; and, per
// protected publish point, calls to <field>.Store outside its allowlist.
// Composite literals are always allowed: building a generation before it
// is published is the whole point of the scheme.

// ProtectedStruct declares one struct type whose fields are
// transaction-private.
type ProtectedStruct struct {
	// PkgSuffix and TypeName identify the struct (path-suffix match, so
	// testdata corpora can exercise the analyzer with local types).
	PkgSuffix string
	TypeName  string
	// AllowedWriters lists the functions that may write fields, as
	// "Func", "Recv.Method", or "Recv.*".
	AllowedWriters []string
}

// ProtectedPublish declares one atomic publish point: calls to
// <TypeName>.<FieldName>.Store are confined to AllowedWriters.
type ProtectedPublish struct {
	PkgSuffix      string
	TypeName       string
	FieldName      string
	AllowedWriters []string
}

// FibtxnConfig parameterizes the fibtxn analyzer.
type FibtxnConfig struct {
	Structs   []ProtectedStruct
	Publishes []ProtectedPublish
}

// DefaultFibtxnConfig protects the repository's versioned forwarding
// structures.
func DefaultFibtxnConfig() FibtxnConfig {
	return FibtxnConfig{
		Structs: []ProtectedStruct{
			// A published map-FIB generation is immutable, full stop: it is
			// built as a composite literal inside Begin/Commit and never
			// written again, so no function may assign its fields.
			{PkgSuffix: "internal/dataplane", TypeName: "fibGen"},
			// Trie nodes may only be written by the transaction that owns
			// them, i.e. inside the Txn path-copy helpers.
			{PkgSuffix: "internal/lpm", TypeName: "node", AllowedWriters: []string{"Txn.*"}},
		},
		Publishes: []ProtectedPublish{
			{PkgSuffix: "internal/dataplane", TypeName: "FIB", FieldName: "cur",
				AllowedWriters: []string{"NewFIB", "FIBTx.Commit"}},
			{PkgSuffix: "internal/lpm", TypeName: "Table", FieldName: "cur",
				AllowedWriters: []string{"New", "Txn.Commit"}},
		},
	}
}

// Fibtxn returns the generation-immutability analyzer.
func Fibtxn(cfg FibtxnConfig) *Analyzer {
	a := &Analyzer{
		Name: "fibtxn",
		Doc:  "writes to published FIB generations / trie nodes must go through the transaction API",
	}
	a.Run = func(pass *Pass) { runFibtxn(pass, cfg) }
	return a
}

func runFibtxn(pass *Pass, cfg FibtxnConfig) {
	info := pass.Pkg.TypesInfo
	// protectedBase resolves the struct whose field an lvalue ultimately
	// writes through: x.f -> type of x; x.entries[k] -> type of x;
	// (*p).f -> type of p.
	findStruct := func(t types.Type) *ProtectedStruct {
		for i := range cfg.Structs {
			if typeIs(t, cfg.Structs[i].PkgSuffix, cfg.Structs[i].TypeName) {
				return &cfg.Structs[i]
			}
		}
		return nil
	}
	// lvalueOwner walks an assignable expression down to a selector on a
	// protected struct, if any. It sees through parens, derefs, and one
	// level of index (map/slice/array stored in a protected field).
	var lvalueOwner func(e ast.Expr) (*ProtectedStruct, *ast.SelectorExpr)
	lvalueOwner = func(e ast.Expr) (*ProtectedStruct, *ast.SelectorExpr) {
		switch v := e.(type) {
		case *ast.ParenExpr:
			return lvalueOwner(v.X)
		case *ast.StarExpr:
			return lvalueOwner(v.X)
		case *ast.IndexExpr:
			// Writing an element of a container held in a protected field
			// mutates the published structure just the same.
			return lvalueOwner(v.X)
		case *ast.SelectorExpr:
			if tv, ok := info.Types[v.X]; ok {
				if ps := findStruct(tv.Type); ps != nil {
					// Only field selections count; method values cannot be
					// assigned to.
					if sel, ok := info.Selections[v]; ok && sel.Kind() == types.FieldVal {
						return ps, v
					}
				}
			}
			return nil, nil
		default:
			return nil, nil
		}
	}

	checkWrite := func(file *ast.File, lhs ast.Expr) {
		ps, sel := lvalueOwner(lhs)
		if ps == nil {
			return
		}
		fd := enclosingFunc(file, lhs.Pos())
		if fd != nil && matchFunc(ps.AllowedWriters, funcKey(fd)) {
			return
		}
		where := "package scope"
		if fd != nil {
			where = funcKey(fd)
		}
		pass.Reportf(lhs.Pos(), "write to %s.%s outside the transaction API (in %s): published generations are immutable",
			ps.TypeName, sel.Sel.Name, where)
	}

	findPublish := func(t types.Type, field string) *ProtectedPublish {
		for i := range cfg.Publishes {
			p := &cfg.Publishes[i]
			if p.FieldName == field && typeIs(t, p.PkgSuffix, p.TypeName) {
				return p
			}
		}
		return nil
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkWrite(file, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(file, st.X)
			case *ast.UnaryExpr:
				// &gen.field escaping would allow writes out of view of this
				// analyzer; treat taking the address of a protected field
				// outside an allowed writer as a violation too.
				if st.Op.String() != "&" {
					return true
				}
				if ps, sel := lvalueOwner(st.X); ps != nil {
					fd := enclosingFunc(file, st.Pos())
					if fd == nil || !matchFunc(ps.AllowedWriters, funcKey(fd)) {
						pass.Reportf(st.Pos(), "taking the address of %s.%s outside the transaction API: published generations are immutable",
							ps.TypeName, sel.Sel.Name)
					}
				}
			case *ast.CallExpr:
				// <recv>.<field>.Store(...) — the publish point.
				sel, ok := st.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Store" {
					return true
				}
				inner, ok := sel.X.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				tv, ok := info.Types[inner.X]
				if !ok {
					return true
				}
				pp := findPublish(tv.Type, inner.Sel.Name)
				if pp == nil {
					return true
				}
				fd := enclosingFunc(file, st.Pos())
				if fd != nil && matchFunc(pp.AllowedWriters, funcKey(fd)) {
					return true
				}
				pass.Reportf(st.Pos(), "%s.%s.Store outside %v: generations are published only at construction and Commit",
					pp.TypeName, pp.FieldName, pp.AllowedWriters)
			}
			return true
		})
	}
}
