package lint

// This repository builds hermetically: golang.org/x/tools is not in the
// module graph, so the canonical go/analysis framework and its SSA-based
// passes (nilness, unusedwrite) cannot be imported here. mifolint
// therefore ships in two layers:
//
//  1. Native analyzers (this package) on the standard library's go/ast +
//     go/types, loading dependency types from `go list -export` build
//     cache export data. The x/tools passes the suite is contracted to
//     bundle — shadow, unusedwrite, nilness — are reimplemented natively
//     at the precision the syntax tree supports (see shadow.go,
//     unusedwrite.go, nilness.go for exactly which sub-shapes each
//     covers). These run everywhere, including this container.
//
//  2. An upgrade path: every Analyzer here is shaped 1:1 after
//     analysis.Analyzer (Name/Doc/Run over a Pass, testdata corpora with
//     "want" comments under testdata/src), so once x/tools is vendored
//     the native analyzers can be re-registered with
//     x/tools/go/analysis/unitchecker verbatim and the lite passes
//     swapped for the full SSA versions:
//
//	// With golang.org/x/tools vendored, cmd/mifo-lint/main.go becomes:
//	//
//	//	unitchecker.Main(
//	//	    fibtxn.Analyzer, hotpathalloc.Analyzer,
//	//	    obsnames.Analyzer, locksafe.Analyzer,
//	//	    nilness.Analyzer, unusedwrite.Analyzer, shadow.Analyzer,
//	//	)
//
// Gating rather than stubbing keeps `make lint` honest: nothing in the
// default build pretends to run an SSA pass it does not have.
