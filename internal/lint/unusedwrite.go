package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// unusedwrite is a native, syntax-directed sibling of the x/tools
// `unusedwrite` SSA pass (the dependency is intentionally not vendored;
// see xtools.go). It covers the two shapes that account for nearly every
// real instance of the bug — writing through a copy:
//
//   - a field assignment to a non-pointer `range` value variable, whose
//     copy dies at the end of the iteration;
//   - a field assignment to a non-pointer method receiver, whose copy
//     dies at return;
//
// in both cases only when the written-to variable is never read again
// afterwards, so the write provably changed nothing anyone can see.

// Unusedwrite returns the write-through-copy analyzer.
func Unusedwrite() *Analyzer {
	return &Analyzer{
		Name: "unusedwrite",
		Doc:  "field write to a non-pointer copy (range variable or value receiver) that is never read again",
		Run:  runUnusedwrite,
	}
}

func runUnusedwrite(pass *Pass) {
	info := pass.Pkg.TypesInfo
	uses := usesOf(pass.Pkg)

	// isStructValue reports whether obj is a plain (non-pointer) struct
	// variable — the only kind whose field writes can vanish with a copy.
	isStructValue := func(obj types.Object) bool {
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		_, isStruct := v.Type().Underlying().(*types.Struct)
		return isStruct
	}

	// copies collects, per enclosing scope node, the variables that are
	// doomed copies: range values and value receivers, with the position
	// after which a read would rescue the write.
	type doomed struct {
		obj   types.Object
		scope ast.Node // reads must happen before scope.End()
		kind  string
	}
	var candidates []doomed

	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				id := fd.Recv.List[0].Names[0]
				if obj := info.Defs[id]; obj != nil && isStructValue(obj) {
					candidates = append(candidates, doomed{obj: obj, scope: fd, kind: "value receiver"})
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || rs.Tok != token.DEFINE || rs.Value == nil {
					return true
				}
				if id, ok := rs.Value.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil && isStructValue(obj) {
						candidates = append(candidates, doomed{obj: obj, scope: rs, kind: "range value copy"})
					}
				}
				return true
			})
		}
	}
	if len(candidates) == 0 {
		return
	}
	byObj := map[types.Object]doomed{}
	for _, c := range candidates {
		byObj[c.obj] = c
	}
	// An aliased copy is out of scope for this pass: taking the address
	// (explicitly, or implicitly as a pointer-method receiver) creates a
	// second window onto the variable that source order cannot track.
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.UnaryExpr:
				if v.Op == token.AND {
					if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
						delete(byObj, info.Uses[id])
					}
				}
			case *ast.SelectorExpr:
				if s, ok := info.Selections[v]; ok && s.Kind() == types.MethodVal {
					if id, ok := v.X.(*ast.Ident); ok {
						delete(byObj, info.Uses[id])
					}
				}
			}
			return true
		})
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[id]
				c, doomedVar := byObj[obj]
				if !doomedVar {
					continue
				}
				if s, selOK := info.Selections[sel]; !selOK || s.Kind() != types.FieldVal {
					continue
				}
				// A later read of the copy (including returning it or
				// re-ranging it) makes the write meaningful.
				rescued := false
				for _, use := range uses[obj] {
					if use > as.End() && use < c.scope.End() {
						rescued = true
						break
					}
				}
				if !rescued {
					pass.Reportf(lhs.Pos(), "write to field %s of %s %q is lost: the copy is never read again (use a pointer or an index expression)",
						sel.Sel.Name, c.kind, id.Name)
				}
			}
			return true
		})
	}
}
