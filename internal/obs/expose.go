package obs

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
)

// WritePrometheus writes every metric in the registry in the Prometheus
// text exposition format (version 0.0.4): HELP/TYPE headers, one line per
// series, histograms expanded into cumulative _bucket/_sum/_count lines.
// Families and series are emitted in sorted order so output is stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.sortedSeries() {
			values := splitLabelKey(s.key, len(f.labels))
			switch m := s.m.(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(f.labels, values, ""), m.Value())
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(f.labels, values, ""), formatFloat(m.Value()))
			case *Histogram:
				for _, b := range m.Buckets() {
					le := "+Inf"
					if !math.IsInf(b.UpperBound, 1) {
						le = formatFloat(b.UpperBound)
					}
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, `le="`+le+`"`), b.CumulativeCount)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelString(f.labels, values, ""), formatFloat(m.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelString(f.labels, values, ""), m.Count())
			}
		}
	}
	return bw.Flush()
}

// splitLabelKey recovers label values from a series key. n == 0 yields nil.
func splitLabelKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, "\xff", n)
}

// labelString renders {k="v",...} with an optional extra pre-escaped pair
// (used for the histogram le label). Empty when there is nothing to render.
func labelString(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot returns a flat name -> value map of every series: counters and
// gauges map to their value, histograms to {count, sum, mean}. Series keys
// include labels in exposition syntax. This is the expvar view.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			values := splitLabelKey(s.key, len(f.labels))
			key := f.name + labelString(f.labels, values, "")
			switch m := s.m.(type) {
			case *Counter:
				out[key] = m.Value()
			case *Gauge:
				out[key] = m.Value()
			case *Histogram:
				out[key] = map[string]any{"count": m.Count(), "sum": m.Sum(), "mean": m.Mean()}
			}
		}
	}
	return out
}

// ExpvarFunc returns the registry as an expvar.Var whose JSON rendering is
// the Snapshot map.
func (r *Registry) ExpvarFunc() expvar.Var {
	return expvar.Func(func() any { return r.Snapshot() })
}

// expvarPublished guards expvar.Publish, which panics on duplicate names.
var expvarPublished sync.Map

// PublishExpvar publishes the registry under the given name in the
// process-wide expvar namespace (served at /debug/vars). Repeat calls with
// the same name are no-ops, even across registries: the first registry
// published under a name wins for the process lifetime.
func (r *Registry) PublishExpvar(name string) {
	if _, loaded := expvarPublished.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, r.ExpvarFunc())
}
