// Package obs is the operational telemetry layer of the repository: a
// low-overhead metrics registry (atomic counters, gauges, and bounded
// histograms with label support), a fixed-capacity ring-buffer event trace
// for forwarding-decision auditing, and a live debug HTTP endpoint that
// exposes both (plus pprof) on a running process.
//
// The paper's MIFO daemon "constantly collects available link capacity
// from the data plane" (Section III-C, Fig. 10); this package is the part
// a production deployment would add on top: the ability to ask a live
// system *why* a flow was deflected, where packets are being dropped, and
// how long control epochs take. Everything is allocation-free on the hot
// path and near-zero cost when disabled, so the forwarding engine and the
// simulators can stay instrumented permanently.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be >= 0; negative deltas are
// ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricType tags a family's kind for exposition.
type metricType int8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// family is one named metric with zero or more labeled series.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // label-value key -> *Counter | *Gauge | *Histogram
}

// labelKey joins label values into a map key. \xff cannot appear in valid
// UTF-8 label values, so the join is unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) get(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	if !ok {
		m = make()
		f.series[key] = m
	}
	return m
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use, and registering
// the same name twice returns the same family (so packages can share a
// registry without coordinating who registers first).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register finds or creates a family, panicking on redefinition with a
// different shape (same name, different type or labels is always a bug).
func (r *Registry) register(name, help string, typ metricType, labels []string, buckets []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, typ: typ,
			labels: append([]string(nil), labels...),
			series: make(map[string]any),
		}
		if typ == typeHistogram {
			f.buckets = normalizeBuckets(buckets)
		}
		r.families[name] = f
		return f
	}
	if f.typ != typ || !equalStrings(f.labels, labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
	}
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the unlabeled counter with the given name, creating it
// on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil, nil)
	return f.get(nil, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil, nil)
	return f.get(nil, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the unlabeled histogram with the given name. buckets
// are upper bounds in ascending order; nil uses DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, typeHistogram, nil, buckets)
	return f.get(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Resolve once and hold the handle on hot paths — With takes
// the family lock.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with the given name.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, typeHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// sortedFamilies snapshots the families in name order for deterministic
// exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedSeries snapshots one family's series in label-key order.
func (f *family) sortedSeries() []struct {
	key string
	m   any
} {
	f.mu.Lock()
	out := make([]struct {
		key string
		m   any
	}, 0, len(f.series))
	for k, m := range f.series {
		out = append(out, struct {
			key string
			m   any
		}{k, m})
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}
