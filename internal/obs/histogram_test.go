package obs

import (
	"math"
	"testing"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	got := h.Buckets()
	// le semantics: v == bound lands in that bound's bucket.
	wantCum := []int64{2, 4, 5, 6} // le=1: {0.5,1}; le=2: +{1.5,2}; le=5: +{3}; +Inf: +{10}
	if len(got) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(wantCum))
	}
	for i, b := range got {
		if b.CumulativeCount != wantCum[i] {
			t.Errorf("bucket %d (le=%v) cum = %d, want %d", i, b.UpperBound, b.CumulativeCount, wantCum[i])
		}
	}
	if !math.IsInf(got[len(got)-1].UpperBound, 1) {
		t.Error("last bucket must be +Inf")
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-18) > 1e-9 {
		t.Errorf("sum = %v, want 18", h.Sum())
	}
	if math.Abs(h.Mean()-3) > 1e-9 {
		t.Errorf("mean = %v, want 3", h.Mean())
	}
}

func TestHistogramBucketNormalization(t *testing.T) {
	h := NewHistogram([]float64{5, 1, 5, math.Inf(1), 2})
	if got, want := len(h.Buckets()), 4; got != want { // 1, 2, 5, +Inf
		t.Errorf("normalized bucket count = %d, want %d", got, want)
	}
	if NewHistogram(nil).Count() != 0 {
		t.Error("default-bucket histogram should start empty")
	}
	if got, want := len(NewHistogram(nil).Buckets()), len(DefBuckets)+1; got != want {
		t.Errorf("default buckets = %d, want %d", got, want)
	}
}

func TestHistogramEmptyMean(t *testing.T) {
	if m := NewHistogram(nil).Mean(); m != 0 {
		t.Errorf("empty mean = %v, want 0", m)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 1e-5)
	}
}
