package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are general-purpose histogram bounds spanning sub-millisecond
// to multi-second quantities.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// DurationBuckets are bounds in seconds tuned for code paths between a few
// hundred nanoseconds and a few seconds — receive-path latencies, daemon
// epoch durations.
var DurationBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket histogram with atomic, lock-free updates.
// Bucket semantics follow the Prometheus convention: bucket i counts
// observations v <= bounds[i]; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// normalizeBuckets sorts, dedups, and strips non-finite bounds; nil or
// empty input falls back to DefBuckets.
func normalizeBuckets(bounds []float64) []float64 {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	out := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

func newHistogram(bounds []float64) *Histogram {
	bounds = normalizeBuckets(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// NewHistogram returns a standalone histogram (not attached to a
// registry) with the given upper bounds; nil uses DefBuckets.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v's le-bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	// UpperBound is the bucket's le bound; +Inf for the last bucket.
	UpperBound float64
	// CumulativeCount counts observations <= UpperBound.
	CumulativeCount int64
}

// Buckets returns the cumulative bucket counts, ending with the +Inf
// bucket (whose count equals Count up to racing updates).
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.counts))
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		out[i] = Bucket{UpperBound: bound, CumulativeCount: cum}
	}
	return out
}

// Mean returns the average observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}
