package obs

import (
	"sync"
	"sync/atomic"
)

// EventType classifies a trace event.
type EventType uint8

const (
	// EvDeflect records a packet or flow moved onto its alternative path.
	EvDeflect EventType = iota + 1
	// EvReturn records a deflected flow returning to its default path.
	EvReturn
	// EvTagDrop records a valley-free tag-check drop (Algorithm 1 line 20).
	EvTagDrop
	// EvDrop records any other drop; A carries the reason code.
	EvDrop
	// EvEncap records an IP-in-IP hand-off to an iBGP peer.
	EvEncap
	// EvFIBUpdate records a daemon rewriting a FIB alternative.
	EvFIBUpdate
	// EvEpoch records a control-epoch summary snapshot.
	EvEpoch
	// EvCustom is free for callers; see Note.
	EvCustom
)

// String returns a short event-type name.
func (t EventType) String() string {
	switch t {
	case EvDeflect:
		return "deflect"
	case EvReturn:
		return "return"
	case EvTagDrop:
		return "tag-drop"
	case EvDrop:
		return "drop"
	case EvEncap:
		return "encap"
	case EvFIBUpdate:
		return "fib-update"
	case EvEpoch:
		return "epoch"
	case EvCustom:
		return "custom"
	default:
		return "unknown"
	}
}

// MarshalText renders the type as its name so JSON trace dumps read well.
func (t EventType) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText parses an event-type name, for consumers of trace dumps.
func (t *EventType) UnmarshalText(b []byte) error {
	for c := EvDeflect; c <= EvCustom; c++ {
		if c.String() == string(b) {
			*t = c
			return nil
		}
	}
	*t = 0
	return nil
}

// Event is one structured trace record. The numeric operand fields are
// type-specific by convention:
//
//	EvDeflect:   Node = deciding router/AS, A = flow or dst id, B = chosen
//	             egress (port or next-hop AS), V = spare capacity (bps)
//	EvReturn:    Node = the AS that had deflected the flow (owner of the
//	             trigger link), A = flow id, V = claimed rate (bps)
//	EvTagDrop:   Node = dropping router, A = dst id
//	EvDrop:      Node = dropping router, A = reason code, B = dst id
//	EvEncap:     Node = encapsulating router, A = dst id, B = outer dst
//	EvFIBUpdate: Node = AS, A = dst id, B = chosen port (-1 = cleared),
//	             V = spare capacity (bps)
//	EvEpoch:     A = active flows, B = flows moved this epoch, V = max
//	             link utilization
//
// Note is optional human-readable detail; formatting it is the caller's
// cost, so build it only when the trace is enabled.
type Event struct {
	// Seq is a 1-based sequence number assigned at emit time.
	Seq uint64 `json:"seq"`
	// Time is in nanoseconds; the origin is the emitter's (wall clock for
	// live systems, virtual time for simulators).
	Time int64     `json:"time_ns"`
	Type EventType `json:"type"`
	Node int32     `json:"node"`
	A    int64     `json:"a,omitempty"`
	B    int64     `json:"b,omitempty"`
	V    float64   `json:"v,omitempty"`
	Note string    `json:"note,omitempty"`
}

// Sink receives every event at emit time (after it is stored in the
// ring). Sinks run synchronously under the trace lock: keep them fast.
type Sink func(Event)

// Trace is a fixed-capacity ring buffer of events. Old events are
// overwritten by new ones; Total always counts every emit. A nil *Trace
// is valid and permanently disabled, so instrumented code can hold an
// optional trace without nil checks.
type Trace struct {
	enabled atomic.Bool

	mu    sync.Mutex
	buf   []Event
	total uint64
	sinks []Sink
}

// DefaultTraceCap is the ring capacity NewTrace uses for size <= 0.
const DefaultTraceCap = 4096

// NewTrace returns an enabled trace with the given ring capacity.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	t := &Trace{buf: make([]Event, 0, capacity)}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether Emit records anything. It is the cheap guard to
// place before building an Event (and especially its Note) on hot paths.
//
//mifo:hotpath
func (t *Trace) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled turns the trace on or off. Disabling does not clear the ring.
func (t *Trace) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Emit records an event, assigning its sequence number. It is a no-op —
// one atomic load — when the trace is nil or disabled, and also when the
// ring has zero capacity (a zero-value Trace that was force-enabled):
// callers are encouraged to check Enabled() first, but Emit must never
// panic on a trace that cannot store anything.
//
//mifo:hotpath
func (t *Trace) Emit(e Event) {
	if t == nil || !t.enabled.Load() || cap(t.buf) == 0 {
		return
	}
	//mifolint:ignore hotpathalloc only reached when tracing is on; the Enabled() guard keeps the default path lock-free
	t.mu.Lock()
	t.total++
	e.Seq = t.total
	if len(t.buf) < cap(t.buf) {
		//mifolint:ignore hotpathalloc bounded by the ring capacity: append only runs until the ring fills once, then the branch overwrites in place
		t.buf = append(t.buf, e)
	} else {
		t.buf[int((t.total-1)%uint64(cap(t.buf)))] = e
	}
	for _, s := range t.sinks {
		s(e)
	}
	t.mu.Unlock()
}

// AddSink registers a sink for subsequent emits.
func (t *Trace) AddSink(s Sink) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.mu.Unlock()
}

// Total returns the number of events ever emitted (including overwritten
// ones).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Len returns the number of events currently held in the ring.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Snapshot copies the retained events oldest-first. After wraparound the
// snapshot holds the most recent cap(ring) events.
func (t *Trace) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.total <= uint64(cap(t.buf)) {
		return append(out, t.buf...)
	}
	head := int(t.total % uint64(cap(t.buf))) // index of the oldest event
	out = append(out, t.buf[head:]...)
	return append(out, t.buf[:head]...)
}

// Reset discards all retained events and restarts sequence numbering.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.total = 0
	t.mu.Unlock()
}
