package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkts_total", "packets processed").Add(7)
	r.GaugeVec("link_bps", "link rate", "router", "port").With("3", "1").Set(2.5e6)
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP pkts_total packets processed\n",
		"# TYPE pkts_total counter\n",
		"pkts_total 7\n",
		"# TYPE link_bps gauge\n",
		`link_bps{router="3",port="1"} 2.5e+06` + "\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.01"} 1` + "\n",
		`lat_seconds_bucket{le="0.1"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_sum 5.055\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got:\n%s", want, out)
		}
	}
	// Families must appear in sorted name order for diff-able output.
	if strings.Index(out, "# TYPE lat_seconds") > strings.Index(out, "# TYPE link_bps") &&
		strings.Index(out, "# TYPE link_bps") > strings.Index(out, "# TYPE pkts_total") {
		t.Error("families not emitted in sorted order")
	}
}

func TestHistogramLabelSeriesExposition(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("proc_seconds", "", []float64{1}, "router")
	v.With("0").Observe(0.5)
	v.With("1").Observe(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`proc_seconds_bucket{router="0",le="1"} 1`,
		`proc_seconds_bucket{router="1",le="1"} 0`,
		`proc_seconds_bucket{router="1",le="+Inf"} 1`,
		`proc_seconds_count{router="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got:\n%s", want, out)
		}
	}
}

// TestMetricsEndpointGolden scrapes /metrics through the debug mux and
// pins the exposition byte for byte: the content type, every HELP/TYPE
// header, series ordering, and the full histogram expansion. All
// observations are exact binary fractions so float formatting is stable.
func TestMetricsEndpointGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("conv_events_total", "failure events traced").Add(3)
	r.Gauge("span_queue_depth", "spans queued for the collector").Set(4)
	v := r.HistogramVec("span_stage_seconds", "per-stage convergence latency", []float64{0.25, 2}, "stage")
	for _, o := range []float64{0.125, 0.5, 4} {
		v.With("fib_commit").Observe(o)
	}
	v.With("fib_swap").Observe(0.5)

	rec := httptest.NewRecorder()
	NewDebugMux(r, nil, nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	if got, want := rec.Header().Get("Content-Type"), "text/plain; version=0.0.4; charset=utf-8"; got != want {
		t.Errorf("Content-Type = %q, want %q", got, want)
	}

	const golden = `# HELP conv_events_total failure events traced
# TYPE conv_events_total counter
conv_events_total 3
# HELP span_queue_depth spans queued for the collector
# TYPE span_queue_depth gauge
span_queue_depth 4
# HELP span_stage_seconds per-stage convergence latency
# TYPE span_stage_seconds histogram
span_stage_seconds_bucket{stage="fib_commit",le="0.25"} 1
span_stage_seconds_bucket{stage="fib_commit",le="2"} 2
span_stage_seconds_bucket{stage="fib_commit",le="+Inf"} 3
span_stage_seconds_sum{stage="fib_commit"} 4.625
span_stage_seconds_count{stage="fib_commit"} 3
span_stage_seconds_bucket{stage="fib_swap",le="0.25"} 0
span_stage_seconds_bucket{stage="fib_swap",le="2"} 1
span_stage_seconds_bucket{stage="fib_swap",le="+Inf"} 1
span_stage_seconds_sum{stage="fib_swap"} 0.5
span_stage_seconds_count{stage="fib_swap"} 1
`
	if got := rec.Body.String(); got != golden {
		t.Errorf("exposition diverged from golden\n--- got:\n%s--- want:\n%s", got, golden)
	}
	checkBucketCumulativity(t, rec.Body.String())
}

// checkBucketCumulativity re-derives the histogram invariants from the
// exposition text itself: within each series the bucket counts are
// non-decreasing, the +Inf bucket exists, and it equals the _count line.
// This holds for any scrape, independent of the golden body above.
func checkBucketCumulativity(t *testing.T, body string) {
	t.Helper()
	type state struct {
		last   int64
		inf    int64
		hasInf bool
	}
	series := map[string]*state{}
	counts := map[string]int64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		metric, val := line[:sp], line[sp+1:]
		name, labels := metric, ""
		if i := strings.IndexByte(metric, '{'); i >= 0 {
			name, labels = metric[:i], strings.TrimSuffix(metric[i+1:], "}")
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			// The le pair is always rendered last; peel it off to key the
			// series by histogram name + the remaining labels.
			i := strings.LastIndex(labels, `le="`)
			if i < 0 {
				t.Fatalf("bucket line %q has no le label", line)
			}
			le := labels[i:]
			key := strings.TrimSuffix(name, "_bucket")
			if rest := strings.TrimSuffix(labels[:i], ","); rest != "" {
				key += "{" + rest + "}"
			}
			s := series[key]
			if s == nil {
				s = &state{}
				series[key] = s
			}
			if n < s.last {
				t.Errorf("series %s: bucket %s count %d < previous bucket %d (not cumulative)", key, le, n, s.last)
			}
			s.last = n
			if strings.Contains(le, "+Inf") {
				s.inf, s.hasInf = n, true
			}
		case strings.HasSuffix(name, "_count"):
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("count line %q: %v", line, err)
			}
			key := strings.TrimSuffix(name, "_count")
			if labels != "" {
				key += "{" + labels + "}"
			}
			counts[key] = n
		}
	}
	if len(series) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	for key, s := range series {
		if !s.hasInf {
			t.Errorf("series %s has no +Inf bucket", key)
			continue
		}
		if c, ok := counts[key]; !ok || c != s.inf {
			t.Errorf("series %s: +Inf bucket %d != _count %d", key, s.inf, c)
		}
	}
}

func TestExpvarFuncRendersJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "").Add(2)
	var m map[string]any
	if err := json.Unmarshal([]byte(r.ExpvarFunc().String()), &m); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	if m["n_total"] != float64(2) {
		t.Errorf("n_total = %v, want 2", m["n_total"])
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	// Must not panic on repeat publication (expvar.Publish would).
	r.PublishExpvar("obs_test_metrics")
	r.PublishExpvar("obs_test_metrics")
	NewRegistry().PublishExpvar("obs_test_metrics")
}
