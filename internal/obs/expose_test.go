package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkts_total", "packets processed").Add(7)
	r.GaugeVec("link_bps", "link rate", "router", "port").With("3", "1").Set(2.5e6)
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP pkts_total packets processed\n",
		"# TYPE pkts_total counter\n",
		"pkts_total 7\n",
		"# TYPE link_bps gauge\n",
		`link_bps{router="3",port="1"} 2.5e+06` + "\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.01"} 1` + "\n",
		`lat_seconds_bucket{le="0.1"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_sum 5.055\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got:\n%s", want, out)
		}
	}
	// Families must appear in sorted name order for diff-able output.
	if strings.Index(out, "# TYPE lat_seconds") > strings.Index(out, "# TYPE link_bps") &&
		strings.Index(out, "# TYPE link_bps") > strings.Index(out, "# TYPE pkts_total") {
		t.Error("families not emitted in sorted order")
	}
}

func TestHistogramLabelSeriesExposition(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("proc_seconds", "", []float64{1}, "router")
	v.With("0").Observe(0.5)
	v.With("1").Observe(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`proc_seconds_bucket{router="0",le="1"} 1`,
		`proc_seconds_bucket{router="1",le="1"} 0`,
		`proc_seconds_bucket{router="1",le="+Inf"} 1`,
		`proc_seconds_count{router="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got:\n%s", want, out)
		}
	}
}

func TestExpvarFuncRendersJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "").Add(2)
	var m map[string]any
	if err := json.Unmarshal([]byte(r.ExpvarFunc().String()), &m); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	if m["n_total"] != float64(2) {
		t.Errorf("n_total = %v, want 2", m["n_total"])
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	// Must not panic on repeat publication (expvar.Publish would).
	r.PublishExpvar("obs_test_metrics")
	r.PublishExpvar("obs_test_metrics")
	NewRegistry().PublishExpvar("obs_test_metrics")
}
