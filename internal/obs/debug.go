package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs/tsdb"
)

// NewDebugMux builds the live debug endpoint:
//
//	/metrics        Prometheus text exposition of reg
//	/debug/vars     the process expvar namespace (reg is published there)
//	/debug/pprof/   the standard pprof handlers
//	/debug/trace    JSON dump of the trace ring (404 when tr is nil)
//	/debug/tsdb/    the time-series store's query API (404 when db is nil):
//	                index, /debug/tsdb/query, /debug/tsdb/episodes
//
// reg may be nil to serve only pprof and expvar.
func NewDebugMux(reg *Registry, tr *Trace, db *tsdb.Store) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		reg.PublishExpvar("mifo")
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if tr != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			enc.Encode(struct {
				Total  uint64  `json:"total"`
				Events []Event `json:"events"`
			}{Total: tr.Total(), Events: tr.Snapshot()})
		})
	}
	if db != nil {
		mux.Handle("/debug/tsdb", http.RedirectHandler("/debug/tsdb/", http.StatusMovedPermanently))
		mux.Handle("/debug/tsdb/", http.StripPrefix("/debug/tsdb", db.Handler()))
	}
	return mux
}

// DebugServer is a running debug endpoint. Unlike a bare *http.Server it
// knows its bound address (so ":0" callers can tell tools like mifo-top
// where to point) and its Close drains in-flight handlers instead of
// snapping their connections.
type DebugServer struct {
	srv  *http.Server
	addr net.Addr
	// ShutdownTimeout bounds how long Close waits for in-flight handlers;
	// zero means a 3-second default.
	ShutdownTimeout time.Duration
}

// Addr is the bound listen address (useful after listening on ":0").
func (d *DebugServer) Addr() net.Addr { return d.addr }

// Port is the bound TCP port.
func (d *DebugServer) Port() int {
	if a, ok := d.addr.(*net.TCPAddr); ok {
		return a.Port
	}
	_, p, err := net.SplitHostPort(d.addr.String())
	if err != nil {
		return 0
	}
	n, _ := strconv.Atoi(p) //mifolint:ignore droppederr a non-numeric port renders as 0, the documented "unknown" value
	return n
}

// URL is a base URL a client on this host can dial, with unspecified
// listen hosts (":0", "0.0.0.0") rewritten to loopback. mifo-top's -addr
// flag accepts it directly.
func (d *DebugServer) URL() string {
	host, port, err := net.SplitHostPort(d.addr.String())
	if err != nil {
		return "http://" + d.addr.String()
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// Close shuts the server down gracefully: the listener stops accepting
// immediately, in-flight handlers get ShutdownTimeout to finish, and only
// then are surviving connections force-closed. A long pprof profile
// stream therefore cannot wedge process exit, and a short /metrics scrape
// is never cut off mid-body.
func (d *DebugServer) Close() error {
	timeout := d.ShutdownTimeout
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := d.srv.Shutdown(ctx)
	if err == nil {
		return nil
	}
	if cerr := d.srv.Close(); cerr != nil && err == context.DeadlineExceeded {
		return cerr
	}
	return err
}

// ServeDebug listens on addr (e.g. "localhost:6060" or ":0") and serves
// the debug mux in the background. Close the returned server to stop;
// its Addr/Port/URL report where the listener actually bound.
func ServeDebug(addr string, reg *Registry, tr *Trace, db *tsdb.Store) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(reg, tr, db)}
	go srv.Serve(ln)
	return &DebugServer{srv: srv, addr: ln.Addr()}, nil
}
