package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the live debug endpoint:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    the process expvar namespace (reg is published there)
//	/debug/pprof/  the standard pprof handlers
//	/debug/trace   JSON dump of the trace ring (404 when tr is nil)
//
// reg may be nil to serve only pprof and expvar.
func NewDebugMux(reg *Registry, tr *Trace) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		reg.PublishExpvar("mifo")
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if tr != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			enc.Encode(struct {
				Total  uint64  `json:"total"`
				Events []Event `json:"events"`
			}{Total: tr.Total(), Events: tr.Snapshot()})
		})
	}
	return mux
}

// ServeDebug listens on addr (e.g. "localhost:6060" or ":0") and serves
// the debug mux in the background. It returns the server (Close it to
// stop) and the bound address.
func ServeDebug(addr string, reg *Registry, tr *Trace) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(reg, tr)}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
