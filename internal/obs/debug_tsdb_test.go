package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs/tsdb"
)

// tsdbFixture builds a store with one deterministic utilization series
// and its episode spec: four samples crossing the threshold with relief,
// so /episodes has exactly one episode to report.
func tsdbFixture() *tsdb.Store {
	db := tsdb.NewStore(tsdb.Options{})
	db.SetEpisodeSpec(tsdb.EpisodeSpec{
		Util: "netsim_link_util", Threshold: 0.95, Window: 5, MaxGap: 1000,
	})
	s := db.SeriesVec("netsim_link_util", "link utilization fraction", "run", "link").With("1", "7")
	s.Sample(10, 0.5)
	s.Sample(20, 0.97)
	s.Sample(30, 0.99)
	s.Sample(40, 0.5)
	return db
}

func getTSDB(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.String()
}

// TestDebugTSDBGoldenJSON pins the exact JSON the mounted /debug/tsdb
// endpoint serves — the contract mifo-top and any dashboard scrape.
func TestDebugTSDBGoldenJSON(t *testing.T) {
	mux := NewDebugMux(nil, nil, tsdbFixture())

	code, body := getTSDB(t, mux, "/debug/tsdb/")
	if code != http.StatusOK {
		t.Fatalf("index code = %d\n%s", code, body)
	}
	wantIndex := `{
  "spec": {
    "util": "netsim_link_util",
    "threshold": 0.95,
    "window": 5,
    "max_gap": 1000
  },
  "series": [
    {
      "name": "netsim_link_util",
      "help": "link utilization fraction",
      "labels": [
        "run",
        "link"
      ],
      "values": [
        "1",
        "7"
      ],
      "total_points": 4,
      "latest": [
        40,
        0.5
      ]
    }
  ]
}
`
	if body != wantIndex {
		t.Errorf("index JSON drifted:\ngot:\n%s\nwant:\n%s", body, wantIndex)
	}

	code, body = getTSDB(t, mux, "/debug/tsdb/query?series=netsim_link_util&value=1&value=7&tier=raw")
	if code != http.StatusOK {
		t.Fatalf("query code = %d\n%s", code, body)
	}
	wantQuery := `{
  "series": "netsim_link_util",
  "values": [
    "1",
    "7"
  ],
  "buckets": [
    {
      "start": 10,
      "end": 10,
      "min": 0.5,
      "max": 0.5,
      "sum": 0.5,
      "count": 1
    },
    {
      "start": 20,
      "end": 20,
      "min": 0.97,
      "max": 0.97,
      "sum": 0.97,
      "count": 1
    },
    {
      "start": 30,
      "end": 30,
      "min": 0.99,
      "max": 0.99,
      "sum": 0.99,
      "count": 1
    },
    {
      "start": 40,
      "end": 40,
      "min": 0.5,
      "max": 0.5,
      "sum": 0.5,
      "count": 1
    }
  ]
}
`
	if body != wantQuery {
		t.Errorf("query JSON drifted:\ngot:\n%s\nwant:\n%s", body, wantQuery)
	}

	// The episode endpoint reports the one detected episode: [20..40],
	// relief at 40.
	code, body = getTSDB(t, mux, "/debug/tsdb/episodes")
	if code != http.StatusOK {
		t.Fatalf("episodes code = %d\n%s", code, body)
	}
	var rep tsdb.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("episodes not JSON: %v\n%s", err, body)
	}
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes = %+v, want exactly 1", rep.Episodes)
	}
	e := rep.Episodes[0]
	if e.Start != 20 || e.End != 40 || e.Active || e.Peak != 0.99 || e.Samples != 2 {
		t.Errorf("episode = %+v, want start 20 end 40 peak 0.99 samples 2", e)
	}

	// Threshold overrides flow through the query string.
	code, body = getTSDB(t, mux, "/debug/tsdb/episodes?threshold=0.999")
	if code != http.StatusOK {
		t.Fatalf("episodes override code = %d", code)
	}
	rep = tsdb.Report{}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Episodes) != 0 {
		t.Errorf("threshold 0.999 still detects %+v", rep.Episodes)
	}

	// A store with no installed spec answers 412, not a junk report.
	bare := NewDebugMux(nil, nil, tsdb.NewStore(tsdb.Options{}))
	if code, _ = getTSDB(t, bare, "/debug/tsdb/episodes"); code != http.StatusPreconditionFailed {
		t.Errorf("episodes without spec: code = %d, want 412", code)
	}
}

// TestDebugTSDBRedirect: the bare mount point redirects to the slashed
// form so curl http://host/debug/tsdb works.
func TestDebugTSDBRedirect(t *testing.T) {
	mux := NewDebugMux(nil, nil, tsdbFixture())
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/tsdb", nil))
	if rec.Code != http.StatusMovedPermanently || rec.Header().Get("Location") != "/debug/tsdb/" {
		t.Errorf("code = %d location = %q", rec.Code, rec.Header().Get("Location"))
	}
}

// TestDebugTSDBConcurrentSampling hammers every endpoint while a writer
// goroutine samples at full speed: responses must stay well-formed JSON
// with 200s throughout (run under -race via make tsdb-race).
func TestDebugTSDBConcurrentSampling(t *testing.T) {
	db := tsdb.NewStore(tsdb.Options{})
	db.SetEpisodeSpec(tsdb.EpisodeSpec{
		Util: "netsim_link_util", Threshold: 0.95, Window: 5, MaxGap: 1e9,
	})
	s := db.SeriesVec("netsim_link_util", "link utilization fraction", "run", "link").With("1", "7")
	mux := NewDebugMux(nil, nil, db)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ts := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ts += 5
			s.Sample(ts, float64(ts%100)/100)
		}
	}()

	paths := []string{
		"/debug/tsdb/",
		"/debug/tsdb/query?series=netsim_link_util&value=1&value=7",
		"/debug/tsdb/query?series=netsim_link_util&value=1&value=7&tier=1&step=100",
		"/debug/tsdb/episodes",
	}
	for i := 0; i < 100; i++ {
		for _, p := range paths {
			code, body := getTSDB(t, mux, p)
			if code != http.StatusOK {
				close(stop)
				t.Fatalf("GET %s under load: code %d\n%s", p, code, body)
			}
			var v any
			if err := json.Unmarshal([]byte(body), &v); err != nil {
				close(stop)
				t.Fatalf("GET %s under load: invalid JSON: %v", p, err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
