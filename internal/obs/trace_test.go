package obs

import (
	"sync"
	"testing"
)

func TestTraceRecordsAndSequences(t *testing.T) {
	tr := NewTrace(8)
	if !tr.Enabled() {
		t.Fatal("new trace should be enabled")
	}
	tr.Emit(Event{Type: EvDeflect, Node: 3, A: 42, V: 1e9})
	tr.Emit(Event{Type: EvTagDrop, Node: 5})
	events := tr.Snapshot()
	if len(events) != 2 {
		t.Fatalf("len = %d, want 2", len(events))
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Errorf("sequence numbers = %d, %d, want 1, 2", events[0].Seq, events[1].Seq)
	}
	if events[0].Type != EvDeflect || events[0].Node != 3 || events[0].A != 42 {
		t.Errorf("event 0 corrupted: %+v", events[0])
	}
}

func TestTraceWraparound(t *testing.T) {
	const capa = 16
	tr := NewTrace(capa)
	const emitted = 100
	for i := 0; i < emitted; i++ {
		tr.Emit(Event{Type: EvCustom, A: int64(i)})
	}
	if got := tr.Total(); got != emitted {
		t.Errorf("total = %d, want %d", got, emitted)
	}
	if got := tr.Len(); got != capa {
		t.Errorf("len = %d, want %d", got, capa)
	}
	events := tr.Snapshot()
	if len(events) != capa {
		t.Fatalf("snapshot len = %d, want %d", len(events), capa)
	}
	// Oldest-first: the retained window is the last capa emits.
	for i, e := range events {
		wantA := int64(emitted - capa + i)
		if e.A != wantA || e.Seq != uint64(wantA+1) {
			t.Fatalf("event %d = {Seq:%d A:%d}, want {Seq:%d A:%d}", i, e.Seq, e.A, wantA+1, wantA)
		}
	}
}

func TestTraceWraparoundAtExactBoundary(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 4; i++ {
		tr.Emit(Event{A: int64(i)})
	}
	events := tr.Snapshot()
	if len(events) != 4 || events[0].A != 0 || events[3].A != 3 {
		t.Fatalf("boundary snapshot wrong: %+v", events)
	}
	tr.Emit(Event{A: 4}) // first overwrite
	events = tr.Snapshot()
	if len(events) != 4 || events[0].A != 1 || events[3].A != 4 {
		t.Fatalf("post-overwrite snapshot wrong: %+v", events)
	}
}

func TestTraceDisabledAndNil(t *testing.T) {
	tr := NewTrace(4)
	tr.SetEnabled(false)
	if tr.Enabled() {
		t.Error("disabled trace reports enabled")
	}
	tr.Emit(Event{A: 1})
	if tr.Total() != 0 {
		t.Error("disabled trace recorded an event")
	}

	var nilTrace *Trace
	if nilTrace.Enabled() {
		t.Error("nil trace reports enabled")
	}
	nilTrace.Emit(Event{A: 1}) // must not panic
	nilTrace.AddSink(func(Event) {})
	if nilTrace.Snapshot() != nil || nilTrace.Total() != 0 || nilTrace.Len() != 0 {
		t.Error("nil trace not inert")
	}
	nilTrace.Reset()
}

func TestTraceZeroCapacityEmitIsNoop(t *testing.T) {
	// A zero-value Trace has a zero-capacity ring. Even when force-enabled,
	// Emit must be a safe no-op (it used to divide by cap(buf) == 0);
	// defense-in-depth for callers that skip the Enabled() guard.
	var tr Trace
	tr.SetEnabled(true)
	tr.Emit(Event{Type: EvDeflect, A: 1}) // must not panic
	if tr.Total() != 0 || tr.Len() != 0 {
		t.Errorf("zero-capacity trace stored events: total=%d len=%d", tr.Total(), tr.Len())
	}
	if got := tr.Snapshot(); len(got) != 0 {
		t.Errorf("zero-capacity trace snapshot = %v, want empty", got)
	}
}

func TestTraceSinks(t *testing.T) {
	tr := NewTrace(2)
	var got []Event
	tr.AddSink(func(e Event) { got = append(got, e) })
	for i := 0; i < 5; i++ {
		tr.Emit(Event{A: int64(i)})
	}
	// Sinks see every emit, not just the retained window.
	if len(got) != 5 {
		t.Fatalf("sink saw %d events, want 5", len(got))
	}
	if got[4].A != 4 || got[4].Seq != 5 {
		t.Errorf("last sink event = %+v", got[4])
	}
}

func TestTraceReset(t *testing.T) {
	tr := NewTrace(4)
	tr.Emit(Event{A: 1})
	tr.Reset()
	if tr.Total() != 0 || tr.Len() != 0 {
		t.Error("reset did not clear the ring")
	}
	tr.Emit(Event{A: 2})
	if got := tr.Snapshot(); len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("post-reset sequencing wrong: %+v", got)
	}
}

func TestTraceConcurrentEmit(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(Event{Type: EvCustom, A: int64(i)})
			}
		}()
	}
	wg.Wait()
	if got := tr.Total(); got != 4000 {
		t.Errorf("total = %d, want 4000", got)
	}
	seen := map[uint64]bool{}
	for _, e := range tr.Snapshot() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d in snapshot", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// The acceptance bar: an Emit on a disabled trace must cost < 50 ns so
// instrumentation can stay compiled into the forwarding hot path.
func BenchmarkTraceEmitDisabled(b *testing.B) {
	tr := NewTrace(1024)
	tr.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Type: EvDeflect, Node: 1, A: int64(i)})
	}
}

func BenchmarkTraceEmitNil(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Type: EvDeflect, Node: 1, A: int64(i)})
	}
}

func BenchmarkTraceEmitEnabled(b *testing.B) {
	tr := NewTrace(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{Type: EvDeflect, Node: 1, A: int64(i)})
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
