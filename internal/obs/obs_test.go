package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total", "requests"); again != c {
		t.Error("re-registering the same counter must return the same handle")
	}

	g := r.Gauge("queue_ratio", "ratio")
	g.Set(0.5)
	g.Add(0.25)
	if got := g.Value(); got != 0.75 {
		t.Errorf("gauge = %v, want 0.75", got)
	}
}

func TestVecLabelsResolveToDistinctSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("drops_total", "drops", "router", "reason")
	v.With("0", "no_route").Add(2)
	v.With("0", "ttl").Inc()
	v.With("1", "no_route").Inc()
	if got := v.With("0", "no_route").Value(); got != 2 {
		t.Errorf("series (0,no_route) = %d, want 2", got)
	}
	if got := v.With("1", "no_route").Value(); got != 1 {
		t.Errorf("series (1,no_route) = %d, want 1", got)
	}
}

func TestRegisterShapeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestVecWrongArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("y_total", "", "router")
	defer func() {
		if recover() == nil {
			t.Error("With with wrong label count should panic")
		}
	}()
	v.With("a", "b")
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("conc_total", "", "worker")
	h := r.Histogram("conc_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := vec.With(string(rune('a' + w%4)))
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) / 1000)
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for w := 0; w < 4; w++ {
		total += vec.With(string(rune('a' + w))).Value()
	}
	if total != 8000 {
		t.Errorf("summed counters = %d, want 8000", total)
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestSnapshotShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	r.GaugeVec("b", "", "k").With("v").Set(1.5)
	r.Histogram("h", "", []float64{1, 2}).Observe(1.5)
	snap := r.Snapshot()
	if snap["a_total"] != int64(3) {
		t.Errorf("a_total = %v", snap["a_total"])
	}
	if snap[`b{k="v"}`] != 1.5 {
		t.Errorf(`b{k="v"} = %v`, snap[`b{k="v"}`])
	}
	hm, ok := snap["h"].(map[string]any)
	if !ok || hm["count"] != int64(1) || hm["sum"] != 1.5 {
		t.Errorf("h snapshot = %v", snap["h"])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, b.String())
	}
}
