package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dbg_pkts_total", "packets").Add(9)
	tr := NewTrace(8)
	tr.Emit(Event{Type: EvDeflect, Node: 2, A: 7, V: 5e8, Note: "spare 500 Mbps"})

	srv, err := ServeDebug("127.0.0.1:0", reg, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := srv.URL()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "dbg_pkts_total 9") {
		t.Errorf("/metrics code=%d body=%q", code, body)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "dbg_pkts_total") {
		t.Errorf("/debug/vars code=%d, missing registry metrics", code)
	}

	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ code=%d", code)
	}

	code, body = get("/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace code=%d", code)
	}
	var dump struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/trace not JSON: %v\n%s", err, body)
	}
	if dump.Total != 1 || len(dump.Events) != 1 || dump.Events[0].Note != "spare 500 Mbps" {
		t.Errorf("/debug/trace dump = %+v", dump)
	}
	if !strings.Contains(body, `"type": "deflect"`) {
		t.Errorf("event type not rendered as text: %s", body)
	}
}

func TestDebugMuxWithoutTrace(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", NewRegistry(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(srv.URL() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/trace without trace: code=%d, want 404", resp.StatusCode)
	}
}
