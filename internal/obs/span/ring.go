package span

import (
	"runtime"
	"sync/atomic"
)

// The hot half of the tracer: finished spans are fixed-size Records
// pushed into lock-free ring segments, the same design as the audit
// recorder's rings. A producer (a recompute worker, a daemon epoch, a
// FIB commit) claims a segment with a CAS latch, copies one Record into
// the ring, bumps the write cursor, and releases — no mutex, no channel,
// no allocation. Segments are selected by span-ID hash so concurrent
// producers spread over latches; record order across segments does not
// matter because every Record carries its own timestamps and parent
// link, and the analyzer reassembles trees by ID.

// segment is one ring: a power-of-two buffer with a producer-side CAS
// latch and atomic cursors. The latch serializes concurrent producers
// that hash to the same segment; the cursors carry the release/acquire
// edge to the single consumer (the collector), which never takes the
// latch.
//
//mifo:ring payload=buf cursor=w read=r latch=latch
type segment struct {
	buf   []Record
	mask  uint64
	latch atomic.Uint32
	w     atomic.Uint64
	// rCache is the producers' stale copy of r (guarded by the latch):
	// the consumer's cursor cache line is touched only when the ring
	// looks full, not on every push.
	rCache uint64
	_      [40]byte // keep the consumer cursor off the producers' cache line
	r      atomic.Uint64
}

func (s *segment) init(capacity int) {
	s.buf = make([]Record, capacity)
	s.mask = uint64(capacity - 1)
}

// pending returns how many records are buffered (approximate under
// concurrent pushes; exact from the consumer side).
func (s *segment) pending() uint64 { return s.w.Load() - s.r.Load() }

// tryPush copies one record into the ring. It returns false without
// blocking when the ring lacks room; the tracer owns the retry/shed
// policy and its accounting.
//
//mifo:hotpath
func (s *segment) tryPush(rec *Record) bool {
	s.lock()
	w := s.w.Load()
	if w+1-s.rCache > uint64(len(s.buf)) {
		s.rCache = s.r.Load()
		if w+1-s.rCache > uint64(len(s.buf)) {
			s.unlock()
			return false
		}
	}
	s.buf[w&s.mask] = *rec
	s.w.Store(w + 1)
	s.unlock()
	return true
}

// lock spins on the CAS latch. Producers hold it for a handful of plain
// stores, so contention is bounded and brief.
//
//mifo:hotpath
func (s *segment) lock() {
	for !s.latch.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

//mifo:hotpath
func (s *segment) unlock() { s.latch.Store(0) }

// drain invokes fn on every buffered record in place, then advances the
// read cursor, and returns the number drained. Only the collector calls
// it. Processing in place is safe: producers never overwrite a slot
// until r has advanced past it.
func (s *segment) drain(fn func(*Record)) int {
	r := s.r.Load()
	w := s.w.Load()
	for i := r; i != w; i++ {
		fn(&s.buf[i&s.mask])
	}
	s.r.Store(w)
	return int(w - r)
}

// yield lets the collector run once when a producer finds its segment
// full (the backpressure half of the shed-not-stall policy).
//
//mifo:hotpath
func yield() { runtime.Gosched() }
