package span

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jsonl"
	"repro/internal/obs"
)

// Options configure a Tracer. The zero value keeps spans in memory only
// (ring segments with nothing draining them into a sink still feed
// Stats) and exports no metrics.
type Options struct {
	// Writer, when non-nil, receives one JSONL line per finished span as
	// the collector drains it. The collector serializes writes; buffering
	// and closing the underlying file are the caller's job.
	Writer io.Writer
	// Segments is the number of ring segments span records are sharded
	// over, rounded up to a power of two (default 8). SegmentCap is each
	// segment's capacity in records, rounded up to a power of two
	// (default 4096). A full segment sheds records rather than stalling
	// the instrumented pipeline.
	Segments   int
	SegmentCap int
	// Poll is the collector's drain period (default 1ms).
	Poll time.Duration
	// Registry, when non-nil, exports span_records_total,
	// span_traces_total, span_dropped_total, span_backpressure_total,
	// span_queue_depth/highwater gauges, and the per-stage duration
	// histogram span_stage_seconds{stage}.
	Registry *obs.Registry
	// Clock overrides the monotonic timestamp source (nanoseconds since
	// an arbitrary origin). Tests use it for deterministic durations; nil
	// uses the wall clock's monotonic reading since tracer creation.
	Clock func() int64
}

// Stats is a snapshot of a tracer's counters.
type Stats struct {
	// Records counts spans collected; Roots counts the subset that were
	// trace roots (failure events, for the convergence instrumentation).
	Records uint64
	Roots   uint64
	// Dropped counts spans shed because a ring segment stayed full;
	// Backpressure counts ring-full events where the producer yielded
	// once before retrying.
	Dropped      uint64
	Backpressure uint64
}

// collector commands.
type cmdKind uint8

const (
	// cmdDrain: drain every ring segment and return (Stats/Flush barrier).
	cmdDrain cmdKind = iota
	// cmdClose: drain, publish, and stop the collector.
	cmdClose
)

type cmd struct {
	kind cmdKind
	done chan error
}

// collector is the cold half of the Tracer: a background goroutine
// drains the ring segments on a short poll, writes records as JSONL,
// and mirrors counters into obs. The fields are grouped here so span.go
// stays all hot path.
type collector struct {
	closed atomic.Bool
	cmds   chan cmd
	done   chan struct{}

	// mu guards the snapshot state shared with callers. The first sink
	// error lives in the jsonl sink itself.
	mu    sync.Mutex
	stats Stats

	// Collector-goroutine-owned state; no locking (single goroutine). The
	// sink serializes internally and retains the first write error.
	sink                        *jsonl.Sink
	poll                        time.Duration
	records, roots              uint64
	highwater                   uint64
	pubDropped, pubBackpressure int64

	recTotal, rootTotal             *obs.Counter
	droppedTotal, backpressureTotal *obs.Counter
	queueDepth, queueHigh           *obs.Gauge
	stageVec                        *obs.HistogramVec
	// stageHist caches label resolution so the drain loop skips the
	// family lock for names it has already seen.
	stageHist map[string]*obs.Histogram
}

// ceilPow2 rounds n up to a power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New builds a tracer from options, enabled, and starts its collector.
// Call Close when done; a tracer that is never closed leaks one
// goroutine and leaves undrained spans in its rings.
func New(o Options) *Tracer {
	t := &Tracer{
		epoch: time.Now(),
		clock: o.Clock,
	}
	if t.clock == nil {
		tscOnce.Do(calibrateTSC)
		t.tscScale = tscScale
		t.tscEpoch = rdtsc()
	}
	t.cmds = make(chan cmd)
	t.done = make(chan struct{})
	t.poll = o.Poll
	if t.poll <= 0 {
		t.poll = time.Millisecond
	}
	if t.poll < 200*time.Microsecond {
		t.poll = 200 * time.Microsecond
	}
	if o.Writer != nil {
		t.sink = jsonl.New(o.Writer)
	}
	nseg := o.Segments
	if nseg <= 0 {
		nseg = 8
	}
	nseg = ceilPow2(nseg)
	segCap := o.SegmentCap
	if segCap <= 0 {
		segCap = 4096
	}
	segCap = ceilPow2(segCap)
	t.segs = make([]segment, nseg)
	t.segMask = uint64(nseg - 1)
	for i := range t.segs {
		t.segs[i].init(segCap)
	}
	if o.Registry != nil {
		t.recTotal = o.Registry.Counter("span_records_total", "spans collected from the tracing rings")
		t.rootTotal = o.Registry.Counter("span_traces_total", "root spans collected (one per traced failure event)")
		t.droppedTotal = o.Registry.Counter("span_dropped_total", "spans shed because a ring segment stayed full")
		t.backpressureTotal = o.Registry.Counter("span_backpressure_total", "ring-full events where a producer yielded before retrying")
		t.queueDepth = o.Registry.Gauge("span_queue_depth", "span records pending in the tracing ring segments")
		t.queueHigh = o.Registry.Gauge("span_queue_highwater", "highest pending span-record count observed")
		t.stageVec = o.Registry.HistogramVec("span_stage_seconds", "span duration by pipeline stage",
			[]float64{1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1}, "stage")
		t.stageHist = make(map[string]*obs.Histogram)
	}
	t.enabled.Store(true)
	go t.run()
	return t
}

// run is the collector loop: drain on a short poll, service the barrier
// commands behind Stats, Flush and Close.
func (t *Tracer) run() {
	defer close(t.done)
	tick := time.NewTicker(t.poll)
	defer tick.Stop()
	for {
		select {
		case c := <-t.cmds:
			t.drainAll()
			t.publish()
			c.done <- t.firstSinkErr()
			if c.kind == cmdClose {
				return
			}
		case <-tick.C:
			t.drainAll()
			t.publish()
		}
	}
}

// drainAll sweeps every segment until one full sweep finds nothing,
// bounded so a saturating producer cannot starve the command channel.
func (t *Tracer) drainAll() {
	for sweep := 0; sweep < 1024; sweep++ {
		var depth uint64
		for i := range t.segs {
			depth += t.segs[i].pending()
		}
		if depth > t.highwater {
			t.highwater = depth
		}
		n := 0
		for i := range t.segs {
			n += t.segs[i].drain(t.process)
		}
		if n == 0 {
			return
		}
	}
}

// process handles one drained record: count it, observe its stage
// duration, and hand it to the sink (collector only).
func (t *Tracer) process(rec *Record) {
	t.records++
	if rec.Parent == 0 {
		t.roots++
	}
	if t.recTotal != nil {
		t.recTotal.Inc()
		if rec.Parent == 0 {
			t.rootTotal.Inc()
		}
		h, ok := t.stageHist[rec.Name]
		if !ok {
			h = t.stageVec.With(rec.Name)
			t.stageHist[rec.Name] = h
		}
		h.Observe(rec.Duration().Seconds())
	}
	if t.sink != nil {
		t.sink.Encode(rec)
	}
}

// publish mirrors collector-owned counters and the hot-side shed
// accounting into the stats snapshot and the obs registry (collector
// only).
func (t *Tracer) publish() {
	d := t.hotDropped.Load()
	bp := t.hotBackpressure.Load()
	t.mu.Lock()
	t.stats.Records = t.records
	t.stats.Roots = t.roots
	t.stats.Dropped = uint64(d)
	t.stats.Backpressure = uint64(bp)
	t.mu.Unlock()
	if t.droppedTotal == nil {
		return
	}
	t.droppedTotal.Add(d - t.pubDropped)
	t.pubDropped = d
	t.backpressureTotal.Add(bp - t.pubBackpressure)
	t.pubBackpressure = bp
	var depth uint64
	for i := range t.segs {
		depth += t.segs[i].pending()
	}
	t.queueDepth.Set(float64(depth))
	t.queueHigh.Set(float64(t.highwater))
}

// firstSinkErr snapshots the sink's retained first error.
func (t *Tracer) firstSinkErr() error {
	if t.sink == nil {
		return nil
	}
	return t.sink.Err()
}

// command runs one barrier command through the collector; after Close
// it degrades to reporting the retained sink error.
func (t *Tracer) command(kind cmdKind) error {
	c := cmd{kind: kind, done: make(chan error, 1)}
	select {
	case t.cmds <- c:
		return <-c.done
	case <-t.done:
		return t.firstSinkErr()
	}
}

// Flush drains every span pushed before the call into the sink and
// returns the first sink error seen so far.
func (t *Tracer) Flush() error {
	return t.command(cmdDrain)
}

// Close disables the tracer, drains every ring segment, stops the
// collector, and returns the first sink error. Spans still live at
// Close are harmless: their End pushes land in the rings and are never
// drained.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.enabled.Store(false)
	if t.closed.Swap(true) {
		return t.command(cmdDrain)
	}
	return t.command(cmdClose)
}

// Stats drains everything pushed before the call and returns a snapshot
// of the tracer's counters. A nil tracer returns zeros.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.command(cmdDrain)
	return t.statsSnapshot()
}

func (t *Tracer) statsSnapshot() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}
