package span

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a deterministic tracer clock for tests.
type fakeClock struct{ now int64 }

func (c *fakeClock) tick(d int64) { c.now += d }
func (c *fakeClock) read() int64  { return c.now }

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{}
	tr := New(Options{Writer: &buf, Clock: clk.read})
	defer tr.Close()

	root := tr.StartRoot("conv_test_root", -1)
	root.A, root.B, root.V = 3, 7, 1.5
	clk.tick(100)
	child := tr.Start("test_stage_one", root.Context(), 3)
	clk.tick(50)
	grand := tr.Start("test_stage_two", child.Context(), 3)
	grand.A = 42
	clk.tick(25)
	grand.End()
	child.End()
	clk.tick(10)
	root.End()

	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	r, c, g := byName["conv_test_root"], byName["test_stage_one"], byName["test_stage_two"]
	if r.Parent != 0 || r.Trace != r.ID {
		t.Errorf("root not a root: %+v", r)
	}
	if c.Parent != r.ID || c.Trace != r.Trace {
		t.Errorf("child not linked to root: child=%+v root=%+v", c, r)
	}
	if g.Parent != c.ID || g.Trace != r.Trace {
		t.Errorf("grandchild not linked to child: %+v", g)
	}
	if r.A != 3 || r.B != 7 || r.V != 1.5 || g.A != 42 {
		t.Errorf("attributes lost: root=%+v grand=%+v", r, g)
	}
	if got := r.Duration(); got != 185 {
		t.Errorf("root duration = %d, want 185", got)
	}
	if got := g.Duration(); got != 25 {
		t.Errorf("grandchild duration = %d, want 25", got)
	}
	if c.Start != 100 || c.End != 175 {
		t.Errorf("child timestamps = [%d,%d], want [100,175]", c.Start, c.End)
	}

	st := tr.Stats()
	if st.Records != 3 || st.Roots != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want 3 records / 1 root / 0 dropped", st)
	}
}

func TestDisabledAndNilTracer(t *testing.T) {
	var nilTr *Tracer
	if nilTr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	nilTr.SetEnabled(true) // must not panic
	s := nilTr.StartRoot("test_nil_root", 0)
	s.End() // must not panic
	if s.Context().Valid() {
		t.Error("span from nil tracer has a valid context")
	}
	if got := nilTr.Stats(); got != (Stats{}) {
		t.Errorf("nil tracer stats = %+v, want zero", got)
	}
	if err := nilTr.Close(); err != nil {
		t.Errorf("nil tracer Close: %v", err)
	}

	tr := New(Options{})
	defer tr.Close()
	tr.SetEnabled(false)
	if tr.Enabled() {
		t.Error("tracer still enabled after SetEnabled(false)")
	}
	s = tr.StartRoot("test_disabled_root", 0)
	s.End()
	if st := tr.Stats(); st.Records != 0 {
		t.Errorf("disabled tracer recorded %d spans", st.Records)
	}
	tr.SetEnabled(true)
	s = tr.StartRoot("test_reenabled_root", 0)
	s.End()
	if st := tr.Stats(); st.Records != 1 {
		t.Errorf("re-enabled tracer recorded %d spans, want 1", st.Records)
	}
}

func TestChildOfZeroParentIsRoot(t *testing.T) {
	tr := New(Options{Clock: (&fakeClock{}).read})
	defer tr.Close()
	s := tr.Start("test_orphanless_span", Context{}, 5)
	if s.trace != s.id || s.parent != 0 {
		t.Errorf("span under zero context is not a root: %+v", s)
	}
	s.End()
}

func TestShedNotStall(t *testing.T) {
	// One two-slot segment and a collector that only wakes for barrier
	// commands: pushes beyond capacity must shed, never block.
	tr := New(Options{Segments: 1, SegmentCap: 2, Poll: time.Hour})
	defer tr.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			s := tr.StartRoot("test_shed_root", 0)
			s.End()
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("record path blocked on a full ring")
	}
	st := tr.Stats()
	if st.Records != 2 {
		t.Errorf("collected %d records, want 2 (segment capacity)", st.Records)
	}
	if st.Dropped != 8 {
		t.Errorf("dropped = %d, want 8", st.Dropped)
	}
	if st.Backpressure != 8 {
		t.Errorf("backpressure = %d, want 8", st.Backpressure)
	}
}

func TestTracerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Options{Registry: reg, Clock: (&fakeClock{}).read})
	defer tr.Close()
	root := tr.StartRoot("test_metrics_root", 0)
	c1 := tr.Start("test_metrics_stage", root.Context(), 0)
	c1.End()
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := reg.Counter("span_records_total", "").Value(); got != 2 {
		t.Errorf("span_records_total = %d, want 2", got)
	}
	if got := reg.Counter("span_traces_total", "").Value(); got != 1 {
		t.Errorf("span_traces_total = %d, want 1", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	body := buf.String()
	for _, want := range []string{
		`span_stage_seconds_count{stage="test_metrics_root"} 1`,
		`span_stage_seconds_count{stage="test_metrics_stage"} 1`,
		"span_queue_depth 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

type failWriter struct{ err error }

func (w *failWriter) Write([]byte) (int, error) { return 0, w.err }

func TestSinkErrorSurfaces(t *testing.T) {
	sinkErr := errors.New("disk on fire")
	tr := New(Options{Writer: &failWriter{err: sinkErr}})
	s := tr.StartRoot("test_sink_err_root", 0)
	s.End()
	if err := tr.Flush(); !errors.Is(err, sinkErr) {
		t.Errorf("Flush = %v, want %v", err, sinkErr)
	}
	if err := tr.Close(); !errors.Is(err, sinkErr) {
		t.Errorf("Close = %v, want %v", err, sinkErr)
	}
	// Close is idempotent and keeps reporting the retained error.
	if err := tr.Close(); !errors.Is(err, sinkErr) {
		t.Errorf("second Close = %v, want %v", err, sinkErr)
	}
}

func TestCloseDisablesAndDrains(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{Writer: &buf})
	s := tr.StartRoot("test_close_root", 0)
	s.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if tr.Enabled() {
		t.Error("tracer still enabled after Close")
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	if len(recs) != 1 {
		t.Errorf("Close drained %d records, want 1", len(recs))
	}
	// Ends after Close land in the rings and are never drained — no
	// panic, no deadlock.
	late := tr.StartRoot("test_late_root", 0)
	late.End()
}

func TestReadRecordsRejectsDamage(t *testing.T) {
	if _, err := ReadRecords(strings.NewReader("{\"trace\":1,\"id\":1,\"name\":\"x\"}\nnot json\n")); err == nil {
		t.Error("damaged line accepted")
	}
	if _, err := ReadRecords(strings.NewReader("{\"trace\":1,\"name\":\"x\"}\n")); err == nil {
		t.Error("record without id accepted")
	}
	recs, err := ReadRecords(strings.NewReader("\n{\"trace\":1,\"id\":1,\"name\":\"x\"}\n\n"))
	if err != nil || len(recs) != 1 {
		t.Errorf("blank-line log: recs=%d err=%v, want 1 record", len(recs), err)
	}
}

// The acceptance criteria require a zero-allocation record path and a
// near-free disabled path; these guards pin both.

func TestRecordPathZeroAlloc(t *testing.T) {
	tr := New(Options{Segments: 4, SegmentCap: 4096, Poll: time.Minute})
	defer tr.Close()
	parent := tr.StartRoot("test_alloc_root", 0)
	defer parent.End()
	pctx := parent.Context()
	if got := testing.AllocsPerRun(200, func() {
		s := tr.Start("test_alloc_child", pctx, 7)
		s.A = 1
		s.End()
	}); got != 0 {
		t.Errorf("record path allocates %v per op, want 0", got)
	}
}

func TestDisabledPathZeroAlloc(t *testing.T) {
	tr := New(Options{Poll: time.Minute})
	defer tr.Close()
	tr.SetEnabled(false)
	if got := testing.AllocsPerRun(200, func() {
		s := tr.StartRoot("test_disabled_alloc_root", 0)
		s.End()
	}); got != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", got)
	}
	var nilTr *Tracer
	if got := testing.AllocsPerRun(200, func() {
		s := nilTr.StartRoot("test_nil_alloc_root", 0)
		s.End()
	}); got != 0 {
		t.Errorf("nil-tracer path allocates %v per op, want 0", got)
	}
}

func TestConcurrentProducers(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{Writer: &buf, Segments: 8, SegmentCap: 8192})
	const workers, per = 8, 500
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				root := tr.StartRoot("test_conc_root", int32(w))
				child := tr.Start("test_conc_child", root.Context(), int32(w))
				child.End()
				root.End()
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := tr.Stats()
	if st.Records+st.Dropped != workers*per*2 {
		t.Errorf("records(%d)+dropped(%d) != %d", st.Records, st.Dropped, workers*per*2)
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	if uint64(len(recs)) != st.Records {
		t.Errorf("log has %d records, stats say %d", len(recs), st.Records)
	}
	ids := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if ids[r.ID] {
			t.Fatalf("duplicate span id %d", r.ID)
		}
		ids[r.ID] = true
	}
}
