package span

import (
	"fmt"
	"sort"
	"time"
)

// Offline analysis of a span log: reassemble causal trees, find the
// failure-event roots, and reduce each to the question the tracing
// layer exists to answer — how long from the failure event until the
// data plane is consistent again, and where inside the pipeline that
// time went. cmd/mifo-conv is a thin shell over this.

// Root span names that mark failure events. conv_* roots come from the
// fluid simulator's failure injection and span the full pipeline down
// to the generation swap; bgp_* roots come from the message-level
// simulator, where convergence is virtual time and there is no data
// plane below (Complete is judged accordingly).
const (
	RootLinkDown    = "conv_link_down"
	RootLinkUp      = "conv_link_up"
	RootSessionDown = "bgp_session_down"
	RootSessionUp   = "bgp_session_up"
)

// Pipeline stage names, in causal order. StageOrder doubles as the
// analyzer's closed vocabulary for per-stage breakdowns (names outside
// it aggregate under "other").
var StageOrder = []string{
	"route_recompute",
	"dest_recompute",
	"daemon_epoch",
	"fib_commit",
	"fib_swap",
}

// StageAgg accumulates one stage's spans within a trace or across a log.
type StageAgg struct {
	Count int
	Total time.Duration
	Max   time.Duration
}

func (a *StageAgg) add(d time.Duration) {
	a.Count++
	a.Total += d
	if d > a.Max {
		a.Max = d
	}
}

// Mean returns the average span duration of the stage (0 when empty).
func (a StageAgg) Mean() time.Duration {
	if a.Count == 0 {
		return 0
	}
	return a.Total / time.Duration(a.Count)
}

// Event is one analyzed failure event: a root span plus the reduction
// of its causal tree.
type Event struct {
	// Root is the failure event's root span record.
	Root Record
	// Spans counts every record of the trace, root included.
	Spans int
	// Dirty is the number of destinations the event's route recomputes
	// marked dirty (summed over route_recompute children).
	Dirty int
	// Convergence is the root span's duration: wall time from failure
	// injection to data-plane consistency for conv_* roots, wall time of
	// the session event for bgp_* roots (whose virtual reconvergence
	// time is Root.V seconds).
	Convergence time.Duration
	// Stage breaks the trace down by pipeline stage.
	Stage map[string]StageAgg
	// Complete reports the event reached data-plane consistency: for
	// conv_* roots the trace contains a route recompute, and — whenever
	// the recompute dirtied any destination — a daemon epoch, a FIB
	// commit, and a generation swap. Incomplete events carry Why.
	Complete bool
	Why      string
}

// Report is the analysis of one span log.
type Report struct {
	// Events are the analyzed failure events, in log order.
	Events []Event
	// Stage aggregates every event's stages across the log.
	Stage map[string]StageAgg
	// Records is the total span count; OrphanTraces counts traces that
	// have spans but no root record (a root shed by a full ring, or a
	// failure event still in flight when the log was cut — either way
	// the event cannot be proven consistent).
	Records      int
	OrphanTraces int
}

// CompleteEvents counts events that reached data-plane consistency.
func (r *Report) CompleteEvents() int {
	n := 0
	for i := range r.Events {
		if r.Events[i].Complete {
			n++
		}
	}
	return n
}

// ConvergenceSeconds returns each complete event's convergence time in
// seconds, in log order — the CDF input.
func (r *Report) ConvergenceSeconds() []float64 {
	out := make([]float64, 0, len(r.Events))
	for i := range r.Events {
		if r.Events[i].Complete {
			out = append(out, r.Events[i].Convergence.Seconds())
		}
	}
	return out
}

// isRootName reports whether name is a failure-event root.
func isRootName(name string) bool {
	switch name {
	case RootLinkDown, RootLinkUp, RootSessionDown, RootSessionUp:
		return true
	}
	return false
}

// stageKey folds unknown span names into "other" so the breakdown
// tables stay closed over StageOrder.
func stageKey(name string) string {
	for _, s := range StageOrder {
		if name == s {
			return s
		}
	}
	return "other"
}

// Analyze reduces a span log to its failure events. Records may be in
// any order (ring drains interleave traces).
func Analyze(recs []Record) *Report {
	rep := &Report{Records: len(recs), Stage: make(map[string]StageAgg)}

	// Group records by trace, remembering each trace's root.
	byTrace := make(map[uint64][]*Record)
	roots := make(map[uint64]*Record)
	var rootOrder []uint64
	for i := range recs {
		rec := &recs[i]
		byTrace[rec.Trace] = append(byTrace[rec.Trace], rec)
		if rec.Parent == 0 && isRootName(rec.Name) {
			if _, dup := roots[rec.Trace]; !dup {
				roots[rec.Trace] = rec
				rootOrder = append(rootOrder, rec.Trace)
			}
		}
	}
	sort.Slice(rootOrder, func(i, j int) bool {
		a, b := roots[rootOrder[i]], roots[rootOrder[j]]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ID < b.ID
	})
	for tr := range byTrace {
		if _, ok := roots[tr]; !ok {
			rep.OrphanTraces++
		}
	}

	for _, tr := range rootOrder {
		root := roots[tr]
		ev := Event{
			Root:        *root,
			Spans:       len(byTrace[tr]),
			Convergence: root.Duration(),
			Stage:       make(map[string]StageAgg),
		}
		for _, rec := range byTrace[tr] {
			if rec == root {
				continue
			}
			k := stageKey(rec.Name)
			a := ev.Stage[k]
			a.add(rec.Duration())
			ev.Stage[k] = a
			g := rep.Stage[k]
			g.add(rec.Duration())
			rep.Stage[k] = g
			if rec.Name == "route_recompute" {
				ev.Dirty += int(rec.V)
			}
		}
		ev.Complete, ev.Why = judge(&ev)
		rep.Events = append(rep.Events, ev)
	}
	return rep
}

// judge decides whether one event's trace proves data-plane
// consistency.
func judge(ev *Event) (bool, string) {
	switch ev.Root.Name {
	case RootSessionDown, RootSessionUp:
		// The message-level simulator converges when its update queue
		// drains; the root span is only finalized at that point, so its
		// existence is the proof. Negative V would mean the sim never
		// reconverged after this event.
		if ev.Root.V < 0 {
			return false, "session event without reconvergence"
		}
		return true, ""
	}
	if ev.Stage["route_recompute"].Count == 0 {
		return false, "no route recompute in trace"
	}
	if ev.Dirty == 0 {
		// The failure touched no installed route; the data plane was
		// never inconsistent.
		return true, ""
	}
	for _, stage := range []string{"daemon_epoch", "fib_commit", "fib_swap"} {
		if ev.Stage[stage].Count == 0 {
			return false, fmt.Sprintf("%d dirty destinations but no %s span", ev.Dirty, stage)
		}
	}
	return true, ""
}
