package span

import (
	"sync"
	"time"
)

// The span budget (<=50ns per recorded span) cannot afford two VDSO
// clock reads: runtime.nanotime costs ~36ns on the reference machine,
// and every span needs a start and an end stamp. On amd64 the tracer
// times spans with raw RDTSC reads instead, calibrated once per process
// against the runtime clock and converted to nanoseconds with a 32.32
// fixed-point multiply. Modern x86 has an invariant TSC (constant rate,
// monotonic across power states); the calibration still sanity-checks
// the measured rate and falls back to time.Since when the counter is
// absent or implausible, as it always is off amd64.

var (
	tscOnce sync.Once
	// tscScale is nanoseconds per TSC tick in 32.32 fixed point; 0 means
	// the counter is unusable and spans fall back to the runtime clock.
	tscScale uint64
)

// calibrateTSC measures the TSC rate against the runtime monotonic
// clock over a short spin. 200µs gives a rate within ~0.1% of the long-
// run value on an invariant TSC, and the error is shared by a span's
// two stamps, so durations are accurate to the same factor.
func calibrateTSC() {
	if !tscArch {
		return
	}
	t0 := time.Now()
	c0 := rdtsc()
	for time.Since(t0) < 200*time.Microsecond {
	}
	elapsed := time.Since(t0)
	ticks := rdtsc() - c0
	if ticks <= 0 {
		return
	}
	nsPerTick := float64(elapsed.Nanoseconds()) / float64(ticks)
	// Plausible CPU clocks are ~100MHz to ~100GHz; anything else means a
	// broken or emulated counter.
	if nsPerTick < 0.01 || nsPerTick > 10 {
		return
	}
	tscScale = uint64(nsPerTick * (1 << 32))
}
