package span

import (
	"testing"
	"time"
)

// mkTrace builds one failure-event trace: a root named rootName with
// the given child spans, using small deterministic timestamps. next is
// the ID allocator shared across traces in one synthetic log.
type traceBuilder struct {
	next uint64
	recs []Record
}

func (b *traceBuilder) root(name string, start, end int64) Record {
	b.next++
	r := Record{Trace: b.next, ID: b.next, Name: name, Start: start, End: end, Node: -1}
	b.recs = append(b.recs, r)
	return r
}

func (b *traceBuilder) child(parent Record, name string, start, end int64, v float64) Record {
	b.next++
	r := Record{
		Trace: parent.Trace, ID: b.next, Parent: parent.ID,
		Name: name, Start: start, End: end, V: v,
	}
	b.recs = append(b.recs, r)
	return r
}

func TestAnalyzeCompleteEvent(t *testing.T) {
	var b traceBuilder
	root := b.root(RootLinkDown, 0, 1000)
	rc := b.child(root, "route_recompute", 10, 400, 3)
	b.child(rc, "dest_recompute", 20, 120, 0)
	b.child(rc, "dest_recompute", 130, 250, 0)
	ep := b.child(root, "daemon_epoch", 410, 900, 0)
	fc := b.child(ep, "fib_commit", 420, 880, 0)
	b.child(fc, "fib_swap", 860, 870, 0)

	rep := Analyze(b.recs)
	if len(rep.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(rep.Events))
	}
	ev := rep.Events[0]
	if !ev.Complete {
		t.Fatalf("event incomplete: %s", ev.Why)
	}
	if ev.Dirty != 3 {
		t.Errorf("dirty = %d, want 3", ev.Dirty)
	}
	if ev.Spans != 7 {
		t.Errorf("spans = %d, want 7", ev.Spans)
	}
	if ev.Convergence != 1000 {
		t.Errorf("convergence = %d, want 1000", ev.Convergence)
	}
	if got := ev.Stage["dest_recompute"]; got.Count != 2 || got.Total != 220 || got.Max != 120 {
		t.Errorf("dest_recompute agg = %+v", got)
	}
	if got := ev.Stage["dest_recompute"].Mean(); got != 110 {
		t.Errorf("dest_recompute mean = %d, want 110", got)
	}
	if got := rep.Stage["fib_swap"]; got.Count != 1 || got.Total != 10*time.Nanosecond {
		t.Errorf("log-wide fib_swap agg = %+v", got)
	}
	if rep.OrphanTraces != 0 {
		t.Errorf("orphan traces = %d, want 0", rep.OrphanTraces)
	}
	if got := rep.ConvergenceSeconds(); len(got) != 1 || got[0] != 1000e-9 {
		t.Errorf("ConvergenceSeconds = %v", got)
	}
}

func TestAnalyzeJudgesIncompleteness(t *testing.T) {
	var b traceBuilder

	// Event 1: dirty destinations but the trace stops at the recompute —
	// the data plane was never proven consistent.
	r1 := b.root(RootLinkDown, 0, 100)
	b.child(r1, "route_recompute", 1, 50, 5)

	// Event 2: recompute found nothing dirty — trivially consistent.
	r2 := b.root(RootLinkUp, 200, 260)
	b.child(r2, "route_recompute", 210, 250, 0)

	// Event 3: no recompute at all.
	b.root(RootLinkDown, 300, 310)

	// Event 4: a session event from the message-level sim is complete by
	// construction.
	b.root(RootSessionDown, 400, 500)

	// An orphan trace: spans whose root was shed.
	b.recs = append(b.recs, Record{Trace: 9999, ID: 10000, Parent: 9999, Name: "daemon_epoch", Start: 1, End: 2})

	rep := Analyze(b.recs)
	if len(rep.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(rep.Events))
	}
	if rep.Events[0].Complete {
		t.Error("event with dirty dests and no epoch/commit/swap judged complete")
	}
	if !rep.Events[1].Complete {
		t.Errorf("zero-dirty event judged incomplete: %s", rep.Events[1].Why)
	}
	if rep.Events[2].Complete {
		t.Error("event with no recompute judged complete")
	}
	if !rep.Events[3].Complete {
		t.Errorf("session event judged incomplete: %s", rep.Events[3].Why)
	}
	if got := rep.CompleteEvents(); got != 2 {
		t.Errorf("CompleteEvents = %d, want 2", got)
	}
	if rep.OrphanTraces != 1 {
		t.Errorf("orphan traces = %d, want 1", rep.OrphanTraces)
	}
}

func TestAnalyzeOrdersEventsByStart(t *testing.T) {
	var b traceBuilder
	late := b.root(RootLinkUp, 500, 600)
	early := b.root(RootLinkDown, 100, 400)
	rep := Analyze(b.recs)
	if len(rep.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(rep.Events))
	}
	if rep.Events[0].Root.ID != early.ID || rep.Events[1].Root.ID != late.ID {
		t.Errorf("events not in start order: %d then %d", rep.Events[0].Root.ID, rep.Events[1].Root.ID)
	}
}

func TestAnalyzeFoldsUnknownStages(t *testing.T) {
	var b traceBuilder
	r := b.root(RootSessionUp, 0, 100)
	b.child(r, "mystery_stage", 10, 20, 0)
	rep := Analyze(b.recs)
	if got := rep.Stage["other"]; got.Count != 1 {
		t.Errorf("unknown stage not folded into other: %+v", rep.Stage)
	}
}
