package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The collector writes one JSON object per line (json.Encoder over
// Record); this file is the matching reader used by tests and by
// cmd/mifo-conv. Span logs may be concatenated across runs — IDs are
// only unique within one tracer, so readers that merge logs must
// namespace by file. ReadRecords reads one log.

// ReadRecords decodes a span JSONL stream. Blank lines are skipped;
// any other undecodable line is an error (span logs are machine-written,
// so damage should fail loudly, not silently shrink the dataset).
func ReadRecords(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("span log line %d: %w", line, err)
		}
		if rec.ID == 0 {
			return nil, fmt.Errorf("span log line %d: missing span id", line)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
