//go:build !amd64

package span

// rdtsc is unavailable off amd64; clock.go keeps tscScale at 0 and the
// tracer times spans with the runtime monotonic clock instead.
//
//mifo:hotpath
func rdtsc() int64 { return 0 }

const tscArch = false
