//go:build amd64

#include "textflag.h"

// func rdtsc() int64
TEXT ·rdtsc(SB), NOSPLIT, $0-8
	RDTSC
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET
