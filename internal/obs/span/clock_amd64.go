//go:build amd64

package span

// rdtsc reads the CPU timestamp counter (clock.go calibrates ticks to
// nanoseconds and falls back to the runtime clock when the counter is
// unusable). Implemented in clock_amd64.s.
//
//mifo:hotpath
func rdtsc() int64

const tscArch = true
