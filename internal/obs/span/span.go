// Package span is the causal tracing layer of the observability stack: a
// low-overhead recorder of *spans* — named intervals with monotonic
// timestamps, parent links, and typed numeric attributes — built for the
// control-plane convergence pipeline the metrics in internal/obs cannot
// time. A link failure opens a root span; the incremental route recompute
// (internal/bgp), every per-destination dirty recompute, the daemon
// control epochs and FIB transactions (internal/core), and the data-plane
// generation swaps (internal/dataplane) each emit child spans, so one
// trace shows exactly where the LinkDown → recompute → FIB commit →
// generation-swap race against local deflection spends its time.
//
// The record path follows the same shed-not-stall discipline as the audit
// recorder's rings: a finished span is one fixed-size record pushed into
// a lock-free ring segment — no allocation, no mutex, no formatting — and
// a background collector drains the rings into JSONL and the span_*
// metrics. A disabled tracer costs one atomic load per Start.
package span

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Context is a span's causal identity: the trace (root span) it belongs
// to and its own span ID, the pair children link their Parent to. The
// zero Context is "no parent": starting a span under it makes a root.
type Context struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context names a live span.
//
//mifo:hotpath
func (c Context) Valid() bool { return c.Span != 0 }

// Record is one finished span as drained from the rings and written to
// the JSONL log. The numeric attribute fields are typed by span-name
// convention (the convention each instrumentation site documents):
//
//	conv_link_down:   Node = -1, A/B = link endpoints, V = virtual event time (s)
//	conv_link_up:     Node = -1, A/B = link endpoints, V = virtual event time (s)
//	route_recompute:  A/B = link endpoints, V = dirty destinations recomputed
//	dest_recompute:   Node = destination AS
//	daemon_epoch:     Node = AS, A = destinations refreshed
//	fib_commit:       Node = router, A = published generation
//	fib_swap:         Node = router, A = published generation
//	bgp_session_down: A/B = link endpoints, V = virtual reconvergence time (s)
//	bgp_session_up:   A/B = link endpoints, V = virtual reconvergence time (s)
type Record struct {
	// Trace is the root span's ID; every span of one causal tree shares it.
	Trace uint64 `json:"trace"`
	// ID is the span's own identity; Parent links it to its cause (0 for
	// roots).
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name identifies the pipeline stage. It is always a compile-time
	// literal registered at exactly one Start site (mifolint obsnames
	// enforces this), so the analyzer's stage vocabulary is closed.
	Name string `json:"name"`
	// Start and End are nanoseconds on the tracer's monotonic clock; the
	// origin is the tracer's creation, so only differences are meaningful.
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`
	// Node is the acting AS or router (-1 when not applicable).
	Node int32 `json:"node"`
	// A, B and V are the span-typed operands (see table above).
	A int64   `json:"a,omitempty"`
	B int64   `json:"b,omitempty"`
	V float64 `json:"v,omitempty"`
}

// Duration returns the span's length on the tracer clock.
func (r Record) Duration() time.Duration { return time.Duration(r.End - r.Start) }

// Span is one live interval. It is a value, handed out by Start and
// finished by End; it never escapes to the heap on the record path. The
// exported fields are the typed attributes — set them between Start and
// End. A zero Span (from a disabled tracer) is valid and End is a no-op.
type Span struct {
	t      *Tracer
	name   string
	trace  uint64
	id     uint64
	parent uint64
	start  int64

	// Node is the acting AS or router; A, B, V the operands (see Record).
	Node int32
	A, B int64
	V    float64
}

// Context returns the span's identity for parenting children. The zero
// Span returns the zero Context, so children of a disabled span are
// themselves roots-of-nothing and cost only the disabled-path check.
//
//mifo:hotpath
func (s *Span) Context() Context { return Context{Trace: s.trace, Span: s.id} }

// Tracer assigns span identities, timestamps spans on one monotonic
// clock, and owns the ring segments finished spans are pushed into. A nil
// *Tracer is valid and permanently disabled, so instrumented code can
// hold an optional tracer without nil checks.
type Tracer struct {
	enabled atomic.Bool
	ids     atomic.Uint64
	epoch   time.Time
	clock   func() int64 // nil = TSC or monotonic wall clock since epoch
	// tscEpoch/tscScale are the calibrated RDTSC clock (see clock.go);
	// tscScale 0 means fall back to time.Since(epoch).
	tscEpoch int64
	tscScale uint64

	segs    []segment
	segMask uint64

	// Hot-side shed accounting, mirrored into Stats and span_* metrics by
	// the collector.
	hotDropped      atomic.Int64
	hotBackpressure atomic.Int64

	collector
}

// Enabled reports whether Start records anything; it is the one-atomic-
// load guard that keeps the disabled path at a few nanoseconds.
//
//mifo:hotpath
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled turns recording on or off without tearing the tracer down.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// now reads the tracer clock: the calibrated TSC when available, the
// runtime monotonic clock otherwise (see clock.go).
//
//mifo:hotpath
func (t *Tracer) now() int64 {
	if t.clock != nil {
		return t.clock()
	}
	if t.tscScale != 0 {
		d := rdtsc() - t.tscEpoch
		if d < 0 {
			// Tiny cross-core TSC skew can read before the epoch sample.
			d = 0
		}
		hi, lo := bits.Mul64(uint64(d), t.tscScale)
		return int64(hi<<32 | lo>>32)
	}
	return int64(time.Since(t.epoch))
}

// StartRoot opens a root span: a new trace whose ID doubles as the trace
// ID. node is the acting AS or router (-1 when not applicable). The
// disabled check is in this wrapper so it inlines to one atomic load.
//
//mifo:hotpath
func (t *Tracer) StartRoot(name string, node int32) Span {
	if t == nil || !t.enabled.Load() {
		return Span{}
	}
	return t.startLive(name, Context{}, node)
}

// Start opens a child span under parent. With an invalid (zero) parent it
// opens a root, so call sites need not special-case the first span of a
// causal chain.
//
//mifo:hotpath
func (t *Tracer) Start(name string, parent Context, node int32) Span {
	if t == nil || !t.enabled.Load() {
		return Span{}
	}
	return t.startLive(name, parent, node)
}

// startLive is the enabled half of Start (t known non-nil, recording on).
//
//mifo:hotpath
func (t *Tracer) startLive(name string, parent Context, node int32) Span {
	id := t.ids.Add(1)
	trace := parent.Trace
	if !parent.Valid() {
		trace = id
	}
	return Span{
		t: t, name: name,
		trace: trace, id: id, parent: parent.Span,
		start: t.now(), Node: node,
	}
}

// End finishes the span and pushes its fixed-size record into a ring
// segment. On a full segment it yields once (counted as backpressure),
// retries, and sheds the record (counted as dropped) rather than stall
// the caller — route recomputation and FIB commits never block on their
// own instrumentation.
//
//mifo:hotpath
func (s *Span) End() {
	if s.t == nil {
		return
	}
	s.t.record(s)
}

// record is the enabled half of End.
//
//mifo:hotpath
func (t *Tracer) record(s *Span) {
	rec := Record{
		Trace: s.trace, ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, End: t.now(),
		Node: s.Node, A: s.A, B: s.B, V: s.V,
	}
	seg := &t.segs[jmix(s.id)&t.segMask]
	if seg.tryPush(&rec) {
		return
	}
	t.hotBackpressure.Add(1)
	yield()
	if seg.tryPush(&rec) {
		return
	}
	t.hotDropped.Add(1)
}

// jmix spreads a span ID over 64 bits (splitmix64 finalizer) for segment
// selection, so concurrent producers land on different latches.
//
//mifo:hotpath
func jmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
