package span

import (
	"testing"
	"time"
)

// The acceptance budget: record path (Start+attrs+End with the
// collector draining) <= 50ns/op with 0 allocs; disabled path <= 5ns.
// Numbers are recorded in EXPERIMENTS.md; the zero-alloc half is pinned
// by the guards in span_test.go, so a regression fails `make test`, not
// just a bench eyeball.

func BenchmarkSpanRecord(b *testing.B) {
	tr := New(Options{Segments: 8, SegmentCap: 16384})
	defer tr.Close()
	root := tr.StartRoot("bench_record_root", 0)
	defer root.End()
	pctx := root.Context()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.Start("bench_record_child", pctx, 7)
		s.A = int64(i)
		s.End()
	}
}

func BenchmarkSpanRecordParallel(b *testing.B) {
	tr := New(Options{Segments: 16, SegmentCap: 16384})
	defer tr.Close()
	root := tr.StartRoot("bench_parallel_root", 0)
	defer root.End()
	pctx := root.Context()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := tr.Start("bench_parallel_child", pctx, 7)
			s.End()
		}
	})
}

func BenchmarkSpanDisabled(b *testing.B) {
	tr := New(Options{Poll: time.Minute})
	defer tr.Close()
	tr.SetEnabled(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.StartRoot("bench_disabled_root", 0)
		s.End()
	}
}

func BenchmarkSpanNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.StartRoot("bench_nil_root", 0)
		s.End()
	}
}
