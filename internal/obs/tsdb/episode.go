package tsdb

import (
	"fmt"
	"sort"
)

// The episode analyzer turns per-link utilization series into the report
// MIFO's evaluation actually needs: congestion episodes (utilization at
// or above a threshold for at least a window) joined against the same
// link's cumulative deflection and offloaded-bits series, so every
// episode answers "how hot, for how long, how many flows were deflected
// off this link, how much traffic moved, and how fast did relief come"
// — Fig. 8's single offload scalar, resolved per link and per episode.

// EpisodeSpec names the families the analyzer joins and tunes detection.
// Components that instrument a Store install their spec with
// SetEpisodeSpec so dumps and the debug endpoint are self-describing.
type EpisodeSpec struct {
	// Util is the utilization family (fraction of capacity, 0..1; failed
	// links may read as 2). Required.
	Util string `json:"util"`
	// Deflections is the cumulative per-link deflection-count family
	// with the same labels as Util (optional).
	Deflections string `json:"deflections,omitempty"`
	// OffloadBits is the cumulative per-link offloaded-bits family with
	// the same labels as Util (optional): bits that crossed an
	// alternative path because this link's congestion deflected them.
	OffloadBits string `json:"offload_bits,omitempty"`
	// Threshold is the congestion threshold (default 0.95).
	Threshold float64 `json:"threshold"`
	// Window is the minimum duration, in the series' timestamp unit,
	// utilization must hold at or above Threshold to count as an episode
	// (default 10e6 ns = two default netsim control epochs).
	Window int64 `json:"window"`
	// MaxGap ends an episode when consecutive samples are further apart
	// than this (default 1e9 ns): a sampling gap means the component
	// stopped observing the link, not that congestion persisted.
	MaxGap int64 `json:"max_gap"`
}

func (sp EpisodeSpec) withDefaults() EpisodeSpec {
	if sp.Threshold <= 0 {
		sp.Threshold = 0.95
	}
	if sp.Window <= 0 {
		sp.Window = 10e6
	}
	if sp.MaxGap <= 0 {
		sp.MaxGap = 1e9
	}
	return sp
}

// Episode is one detected congestion episode on one link, with offload
// attribution joined from the cumulative companion series.
type Episode struct {
	// Series identifies the link: the util series' label values joined
	// by "/" (e.g. run/link for the simulators, router/port for netd).
	Series string `json:"series"`
	// Labels are the raw label values of the util series.
	Labels []string `json:"labels,omitempty"`
	// Start is the first at-or-above-threshold sample; End is the first
	// below-threshold sample after it (relief), or the last sample when
	// the episode was still active at snapshot time.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Active marks an episode with no relief observed yet.
	Active bool `json:"active,omitempty"`
	// Peak and Mean summarize utilization over the episode's samples.
	Peak float64 `json:"peak"`
	Mean float64 `json:"mean"`
	// Samples is how many at-or-above-threshold points the episode spans.
	Samples int `json:"samples"`

	// Deflections is how many flows were deflected off this link during
	// the episode (cumulative-series delta); FirstDeflection is the
	// timestamp of the first one, or -1 if none.
	Deflections     int64 `json:"deflections"`
	FirstDeflection int64 `json:"first_deflection"`
	// OffloadBits is the traffic moved off this link during the episode
	// (cumulative-series delta, in bits).
	OffloadBits float64 `json:"offload_bits"`
	// ReliefLatency is End - FirstDeflection: how long after the first
	// deflection the link fell back below the threshold (-1 when the
	// episode saw no deflection or no relief).
	ReliefLatency int64 `json:"relief_latency"`
	// ReliefDrop is the utilization drop from the sample at the first
	// deflection to the relief sample (0 when not measurable).
	ReliefDrop float64 `json:"relief_drop"`
}

// Duration returns End - Start.
func (e Episode) Duration() int64 { return e.End - e.Start }

// Report is the analyzer's output over one snapshot or dump.
type Report struct {
	Spec EpisodeSpec `json:"spec"`
	// Episodes are sorted by start time, then series.
	Episodes []Episode `json:"episodes"`
	// SeriesScanned counts util series examined; LinksWithEpisodes the
	// subset that had at least one episode.
	SeriesScanned     int `json:"series_scanned"`
	LinksWithEpisodes int `json:"links_with_episodes"`
	// TotalDeflections and TotalOffloadBits are whole-run totals over
	// the cumulative companion series (last sample of each), not just
	// the in-episode deltas — TotalOffloadBits is the figure that must
	// agree with netsim's Results accounting.
	TotalDeflections int64   `json:"total_deflections"`
	TotalOffloadBits float64 `json:"total_offload_bits"`
	// EpisodeOffloadBits is the in-episode subset of TotalOffloadBits.
	EpisodeOffloadBits float64 `json:"episode_offload_bits"`
}

// Analyze runs episode detection over a set of dumped or gathered
// series. The util family named by the spec is scanned; companion
// cumulative families are joined by label values.
func Analyze(series []SeriesDump, spec EpisodeSpec) *Report {
	spec = spec.withDefaults()
	rep := &Report{Spec: spec}
	defl := map[string][]Point{}
	off := map[string][]Point{}
	for _, sd := range series {
		key := joinKey(sd.Values)
		switch sd.Name {
		case spec.Deflections:
			defl[key] = sd.Points
			if n := len(sd.Points); n > 0 {
				rep.TotalDeflections += int64(sd.Points[n-1].V)
			}
		case spec.OffloadBits:
			off[key] = sd.Points
			if n := len(sd.Points); n > 0 {
				rep.TotalOffloadBits += sd.Points[n-1].V
			}
		}
	}
	for _, sd := range series {
		if sd.Name != spec.Util {
			continue
		}
		rep.SeriesScanned++
		key := joinKey(sd.Values)
		eps := detect(sd, spec)
		if len(eps) == 0 {
			continue
		}
		rep.LinksWithEpisodes++
		for i := range eps {
			attribute(&eps[i], sd.Points, defl[key], off[key])
			rep.EpisodeOffloadBits += eps[i].OffloadBits
		}
		rep.Episodes = append(rep.Episodes, eps...)
	}
	sort.Slice(rep.Episodes, func(i, j int) bool {
		a, b := rep.Episodes[i], rep.Episodes[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Series < b.Series
	})
	return rep
}

// AnalyzeStore gathers the spec's families from a live store and
// analyzes them. A zero-value spec falls back to the store's installed
// default.
func AnalyzeStore(st *Store, spec EpisodeSpec) *Report {
	if spec.Util == "" {
		spec = st.EpisodeSpec()
	}
	return Analyze(st.Gather(spec.Util, spec.Deflections, spec.OffloadBits), spec)
}

// detect finds the maximal at-or-above-threshold runs in one util
// series that last at least the window and have no sampling gap wider
// than MaxGap.
func detect(sd SeriesDump, spec EpisodeSpec) []Episode {
	var out []Episode
	var cur *Episode
	var sum float64
	var lastTS int64
	flush := func(active bool) {
		if cur == nil {
			return
		}
		if active {
			cur.Active = true
			cur.End = lastTS
		}
		if cur.End-cur.Start >= spec.Window {
			cur.Mean = sum / float64(cur.Samples)
			out = append(out, *cur)
		}
		cur = nil
	}
	for _, p := range sd.Points {
		if cur != nil && p.TS-lastTS > spec.MaxGap {
			flush(true) // observation gap: close at the last seen sample
		}
		switch {
		case p.V >= spec.Threshold:
			if cur == nil {
				cur = &Episode{
					Series:          joinSlash(sd.Values),
					Labels:          sd.Values,
					Start:           p.TS,
					FirstDeflection: -1,
					ReliefLatency:   -1,
					Peak:            p.V,
				}
				sum = 0
			}
			if p.V > cur.Peak {
				cur.Peak = p.V
			}
			sum += p.V
			cur.Samples++
			cur.End = p.TS // provisional; relief or flush finalizes
		default:
			if cur != nil {
				cur.End = p.TS // relief: first below-threshold sample
				flush(false)
			}
		}
		lastTS = p.TS
	}
	flush(true)
	return out
}

// attribute joins one episode against its link's cumulative deflection
// and offload series and the util points (for relief quality).
func attribute(e *Episode, util, defl, off []Point) {
	if len(defl) > 0 {
		dStart := cumulativeAt(defl, e.Start)
		dEnd := cumulativeEnd(defl, e.End, e.Active)
		e.Deflections = int64(dEnd - dStart)
		for _, p := range defl {
			if p.TS > e.End && !e.Active {
				break
			}
			if p.V > dStart {
				e.FirstDeflection = p.TS
				break
			}
		}
	}
	if len(off) > 0 {
		e.OffloadBits = cumulativeEnd(off, e.End, e.Active) - cumulativeAt(off, e.Start)
		if e.OffloadBits < 0 {
			e.OffloadBits = 0
		}
	}
	if e.FirstDeflection >= 0 && !e.Active {
		e.ReliefLatency = e.End - e.FirstDeflection
		uAtDefl := utilAt(util, e.FirstDeflection)
		uAtEnd := utilAt(util, e.End)
		if uAtDefl > uAtEnd {
			e.ReliefDrop = uAtDefl - uAtEnd
		}
	}
}

// cumulativeAt returns the cumulative series' value at the last sample
// at or before ts (0 before the first sample: cumulative counters start
// from zero).
func cumulativeAt(pts []Point, ts int64) float64 {
	v := 0.0
	for _, p := range pts {
		if p.TS > ts {
			break
		}
		v = p.V
	}
	return v
}

// cumulativeEnd returns the value at the first sample at or after ts
// (capturing increments that landed between the episode's last two util
// samples), or the last value for still-active episodes.
func cumulativeEnd(pts []Point, ts int64, active bool) float64 {
	if active {
		if len(pts) == 0 {
			return 0
		}
		return pts[len(pts)-1].V
	}
	v := 0.0
	for _, p := range pts {
		v = p.V
		if p.TS >= ts {
			break
		}
	}
	return v
}

// utilAt returns the utilization at the last sample at or before ts.
func utilAt(pts []Point, ts int64) float64 {
	v := 0.0
	for _, p := range pts {
		if p.TS > ts {
			break
		}
		v = p.V
	}
	return v
}

func joinSlash(values []string) string {
	if len(values) == 0 {
		return ""
	}
	out := values[0]
	for _, v := range values[1:] {
		out += "/" + v
	}
	return out
}

// String renders one episode as a compact human-readable line.
func (e Episode) String() string {
	state := "relieved"
	if e.Active {
		state = "active"
	}
	return fmt.Sprintf("%s: [%d..%d] peak %.2f mean %.2f defl %d offload %.0f bits (%s)",
		e.Series, e.Start, e.End, e.Peak, e.Mean, e.Deflections, e.OffloadBits, state)
}
