package tsdb

import (
	"encoding/json"
	"fmt"
	"math"
)

// Point is one raw sample. It marshals compactly as [ts, v].
type Point struct {
	TS int64
	V  float64
}

// MarshalJSON encodes the point as a two-element array.
func (p Point) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("[%d,%s]", p.TS, formatFloat(p.V))), nil
}

// UnmarshalJSON decodes the [ts, v] form.
func (p *Point) UnmarshalJSON(b []byte) error {
	var arr [2]json.Number
	if err := json.Unmarshal(b, &arr); err != nil {
		return err
	}
	ts, err := arr[0].Int64()
	if err != nil {
		return err
	}
	v, err := arr[1].Float64()
	if err != nil {
		return err
	}
	p.TS, p.V = ts, v
	return nil
}

// formatFloat keeps JSON compact and round-trippable.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Bucket is one aggregated interval: a sealed downsampling bucket, or a
// query-time re-aggregation of raw points / finer buckets.
type Bucket struct {
	Start int64   `json:"start"`
	End   int64   `json:"end"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
}

// Avg returns the bucket's mean value.
func (b Bucket) Avg() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// Raw snapshots the series' retained raw points, oldest first, appending
// to buf. The reader copies the window and then re-loads the cursor:
// every copied index the writer could have been inside concurrently is
// discarded. The writer may be mid-write at index newCursor (its ring
// slot aliases index newCursor-cap) before advancing the cursor, so
// indices <= newCursor-cap are unsafe even when the cursor did not move
// — once the ring has wrapped, a snapshot therefore retains at most
// capacity-1 points.
func (s *Series) Raw(buf []Point) []Point {
	capacity := uint64(len(s.ts))
	end := s.cur.Load()
	lo := uint64(0)
	if end > capacity {
		lo = end - capacity
	}
	out := buf[:0]
	for i := lo; i < end; i++ {
		out = append(out, Point{
			TS: s.ts[i&s.mask].Load(),
			V:  math.Float64frombits(s.val[i&s.mask].Load()),
		})
	}
	end2 := s.cur.Load()
	var safeLo uint64
	if end2+1 > capacity {
		safeLo = end2 + 1 - capacity
	}
	if safeLo > lo {
		drop := safeLo - lo
		if drop >= uint64(len(out)) {
			return out[:0]
		}
		out = append(out[:0], out[drop:]...)
	}
	return out
}

// Latest returns the most recent point, if any.
func (s *Series) Latest() (Point, bool) {
	for {
		end := s.cur.Load()
		if end == 0 {
			return Point{}, false
		}
		i := end - 1
		p := Point{
			TS: s.ts[i&s.mask].Load(),
			V:  math.Float64frombits(s.val[i&s.mask].Load()),
		}
		if s.cur.Load() == end {
			return p, true
		}
	}
}

// Tier snapshots a downsampling tier's sealed buckets, oldest first
// (level 1 = 10 raw points per bucket, level 2 = 100). Same torn-read
// discipline as Raw.
func (s *Series) Tier(level int, buf []Bucket) []Bucket {
	var t *tier
	switch level {
	case 1:
		t = &s.t1
	case 2:
		t = &s.t2
	default:
		return buf[:0]
	}
	capacity := uint64(len(t.start))
	end := t.cur.Load()
	lo := uint64(0)
	if end > capacity {
		lo = end - capacity
	}
	out := buf[:0]
	for i := lo; i < end; i++ {
		j := i & t.mask
		out = append(out, Bucket{
			Start: t.start[j].Load(),
			End:   t.end[j].Load(),
			Min:   math.Float64frombits(t.minB[j].Load()),
			Max:   math.Float64frombits(t.maxB[j].Load()),
			Sum:   math.Float64frombits(t.sumB[j].Load()),
			Count: t.cntB[j].Load(),
		})
	}
	end2 := t.cur.Load()
	var safeLo uint64
	if end2+1 > capacity {
		safeLo = end2 + 1 - capacity
	}
	if safeLo > lo {
		drop := safeLo - lo
		if drop >= uint64(len(out)) {
			return out[:0]
		}
		out = append(out[:0], out[drop:]...)
	}
	return out
}

// QueryOpts select a time range and output resolution.
type QueryOpts struct {
	// From/To bound the range in the series' own timestamp unit
	// (nanoseconds by convention); To <= 0 means "to the newest point".
	From, To int64
	// Step, when > 0, re-aggregates the chosen resolution into buckets
	// of this width aligned to From. Step == 0 returns the source
	// resolution unchanged.
	Step int64
	// Tier forces a resolution: 0 = raw, 1, 2, or -1 (default here
	// means auto: the finest tier whose retained data still covers
	// From).
	Tier int
}

// Query returns aggregated buckets for the requested range. With
// Tier == -1 it cascades: raw if the raw ring still reaches back to
// From, else tier 1, else tier 2 — so short ranges get full detail and
// long ranges degrade gracefully instead of coming back empty.
func (s *Series) Query(q QueryOpts) []Bucket {
	var src []Bucket
	switch {
	case q.Tier == 0:
		src = pointsToBuckets(s.Raw(nil))
	case q.Tier == 1 || q.Tier == 2:
		src = s.Tier(q.Tier, nil)
	default:
		src = pointsToBuckets(s.Raw(nil))
		if len(src) > 0 && src[0].Start > q.From {
			if t1 := s.Tier(1, nil); len(t1) > 0 && t1[0].Start < src[0].Start {
				src = t1
				if src[0].Start > q.From {
					if t2 := s.Tier(2, nil); len(t2) > 0 && t2[0].Start < src[0].Start {
						src = t2
					}
				}
			}
		}
	}
	// Range filter.
	out := src[:0]
	for _, b := range src {
		if b.End < q.From {
			continue
		}
		if q.To > 0 && b.Start > q.To {
			break
		}
		out = append(out, b)
	}
	if q.Step <= 0 || len(out) == 0 {
		return out
	}
	return rebucket(out, q.From, q.Step)
}

// pointsToBuckets lifts raw points into single-sample buckets.
func pointsToBuckets(pts []Point) []Bucket {
	out := make([]Bucket, len(pts))
	for i, p := range pts {
		out[i] = Bucket{Start: p.TS, End: p.TS, Min: p.V, Max: p.V, Sum: p.V, Count: 1}
	}
	return out
}

// rebucket merges source buckets into step-wide output buckets aligned
// to origin. A source bucket lands in the output bucket its Start falls
// into (sealed buckets never straddle queries' step boundaries exactly;
// min/max/sum/count merging keeps every aggregate derivable).
func rebucket(src []Bucket, origin, step int64) []Bucket {
	var out []Bucket
	cur := -1
	var curSlot int64
	for _, b := range src {
		slot := (b.Start - origin) / step
		if b.Start < origin {
			slot = 0
		}
		if cur < 0 || slot != curSlot {
			out = append(out, Bucket{
				Start: origin + slot*step,
				End:   origin + (slot+1)*step,
				Min:   b.Min, Max: b.Max,
			})
			cur = len(out) - 1
			curSlot = slot
		}
		o := &out[cur]
		if b.Min < o.Min {
			o.Min = b.Min
		}
		if b.Max > o.Max {
			o.Max = b.Max
		}
		o.Sum += b.Sum
		o.Count += b.Count
	}
	return out
}
