// Package tsdb is an embedded, fixed-memory time-series store for link
// telemetry: the fourth observability layer next to internal/obs
// (aggregated metrics), internal/audit (per-journey flight records) and
// internal/obs/span (control-plane causality). Where a counter answers
// "how much, ever" and a flight record answers "what happened to this
// packet", a tsdb series answers MIFO's temporal question: which links
// were congested, for how long, and did deflection relieve them.
//
// Each series owns a power-of-two ring of raw (timestamp, value) points
// plus two cascading downsampling tiers — every 10 raw points seal one
// tier-1 bucket, every 10 tier-1 buckets seal one tier-2 bucket (100 raw
// points) — each bucket carrying min/max/sum/count so any aggregate is
// derivable at query time. Memory is fixed at registration: nothing
// grows, old data is overwritten in ring order, raw detail degrades into
// buckets exactly the way a query wants coarser data for longer ranges.
//
// The sample path is the contract that makes the store usable from the
// netd link monitor and the simulators' per-epoch hooks: one writer per
// series, no locks, no allocation (//mifo:hotpath, enforced by
// mifolint). Points land in parallel atomic arrays (the timestamp and
// the value's bits), and the series cursor is advanced with an atomic
// store only after the point is written, so concurrent readers snapshot
// consistent windows without ever blocking the writer (see the
// torn-read discipline in query.go).
package tsdb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Options size a Store's rings. The zero value uses defaults.
type Options struct {
	// RawCap is the per-series raw ring capacity in points, rounded up
	// to a power of two (default 2048; 16 bytes per point).
	RawCap int
	// TierCap is the per-tier bucket ring capacity, rounded up to a
	// power of two (default 512; 48 bytes per bucket). Tier 1 then
	// covers TierCap*10 raw samples, tier 2 TierCap*100.
	TierCap int
}

func (o Options) withDefaults() Options {
	if o.RawCap <= 0 {
		o.RawCap = 2048
	}
	if o.TierCap <= 0 {
		o.TierCap = 512
	}
	if o.RawCap < 16 {
		o.RawCap = 16
	}
	if o.TierCap < 16 {
		o.TierCap = 16
	}
	o.RawCap = ceilPow2(o.RawCap)
	o.TierCap = ceilPow2(o.TierCap)
	return o
}

// ceilPow2 rounds n up to a power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// tierFanout is the cascading downsampling ratio: raw -> 10x -> 100x.
const tierFanout = 10

// Store registers and owns series. Registration mirrors the obs.Registry
// idiom — Series for an unlabeled series, SeriesVec(...).With(values)
// for labeled ones — and takes locks; sampling never does. Registration
// is idempotent for identical shapes and panics on conflicts, like the
// metrics registry.
type Store struct {
	opt  Options
	mu   sync.Mutex
	fams map[string]*family
	// run hands out run-scoped label values (see NextRun).
	run atomic.Int64
	// spec is the store's default episode-analysis configuration, set by
	// whichever component instruments it (see SetEpisodeSpec).
	spec atomic.Pointer[EpisodeSpec]
}

// NewStore builds an empty store.
func NewStore(opts ...Options) *Store {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	return &Store{opt: o.withDefaults(), fams: make(map[string]*family)}
}

// family is one named series family (all series share labels and help).
type family struct {
	name   string
	help   string
	labels []string
	opt    Options

	mu     sync.Mutex
	series map[string]*Series
	order  []*Series // registration order, for stable dumps and listings
}

// Series registers (or returns) the unlabeled series called name.
func (st *Store) Series(name, help string) *Series {
	f := st.family(name, help, nil)
	return f.with(nil)
}

// SeriesVec registers (or returns) a labeled series family; use With to
// resolve a concrete series. Resolve handles once, off the sample path.
func (st *Store) SeriesVec(name, help string, labels ...string) *SeriesVec {
	if len(labels) == 0 {
		panic("tsdb: SeriesVec needs at least one label (use Series)")
	}
	return &SeriesVec{fam: st.family(name, help, labels)}
}

func (st *Store) family(name, help string, labels []string) *family {
	if name == "" {
		panic("tsdb: empty series name")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	f, ok := st.fams[name]
	if !ok {
		f = &family{name: name, help: help, labels: labels, opt: st.opt, series: make(map[string]*Series)}
		st.fams[name] = f
		return f
	}
	if len(f.labels) != len(labels) {
		panic(fmt.Sprintf("tsdb: series %q re-registered with different labels", name))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("tsdb: series %q re-registered with different labels", name))
		}
	}
	return f
}

// NextRun returns a fresh run identifier (1, 2, ...). Components that
// run repeatedly inside one process (the simulators: one run per
// deployment point of a sweep) label their series with it so cumulative
// counters and time axes never mix across runs.
func (st *Store) NextRun() int64 { return st.run.Add(1) }

// SetEpisodeSpec installs the store's default episode-analysis
// configuration: which families hold utilization, deflection counts and
// offloaded bits, and the detection knobs. The instrumenting component
// calls it so /debug/tsdb/episodes and dumps need no external config.
func (st *Store) SetEpisodeSpec(spec EpisodeSpec) {
	s := spec.withDefaults()
	st.spec.Store(&s)
}

// EpisodeSpec returns the installed default spec (zero value if none).
func (st *Store) EpisodeSpec() EpisodeSpec {
	if p := st.spec.Load(); p != nil {
		return *p
	}
	return EpisodeSpec{}
}

// families snapshots the family list sorted by name.
func (st *Store) families() []*family {
	st.mu.Lock()
	fams := make([]*family, 0, len(st.fams))
	for _, f := range st.fams {
		fams = append(fams, f)
	}
	st.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// SeriesVec resolves label values to concrete series.
type SeriesVec struct{ fam *family }

// With returns the series for the given label values, registering it on
// first use. Like obs vec handles, resolve once and keep the *Series;
// With takes the family lock and allocates on first resolution.
func (v *SeriesVec) With(values ...string) *Series {
	if len(values) != len(v.fam.labels) {
		panic(fmt.Sprintf("tsdb: series %q wants %d label values, got %d", v.fam.name, len(v.fam.labels), len(values)))
	}
	return v.fam.with(values)
}

func (f *family) with(values []string) *Series {
	key := joinKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := newSeries(f.name, f.labels, values, f.opt)
	f.series[key] = s
	f.order = append(f.order, s)
	return s
}

// snapshotSeries returns the family's series in registration order.
func (f *family) snapshotSeries() []*Series {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Series(nil), f.order...)
}

func joinKey(values []string) string {
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\x1f"
		}
		key += v
	}
	return key
}

// Series is one fixed-memory time series: a raw point ring and two
// downsampled bucket tiers. Exactly one goroutine may call Sample; any
// number may snapshot or query concurrently.
//
//mifo:ring payload=ts,val cursor=cur init=newSeries
type Series struct {
	name   string
	labels []string
	values []string

	mask uint64
	ts   []atomic.Int64
	val  []atomic.Uint64
	cur  atomic.Uint64 // points ever written; next write index

	t1, t2 tier
}

func newSeries(name string, labels, values []string, opt Options) *Series {
	s := &Series{
		name:   name,
		labels: labels,
		values: append([]string(nil), values...),
		mask:   uint64(opt.RawCap - 1),
		ts:     make([]atomic.Int64, opt.RawCap),
		val:    make([]atomic.Uint64, opt.RawCap),
	}
	s.t1.init(opt.TierCap)
	s.t2.init(opt.TierCap)
	return s
}

// Name returns the series' family name.
func (s *Series) Name() string { return s.name }

// LabelValues returns the series' label values (nil for unlabeled).
func (s *Series) LabelValues() []string { return s.values }

// Total returns how many points were ever sampled.
func (s *Series) Total() uint64 { return s.cur.Load() }

// Sample records one point. Single writer per series; timestamps must be
// non-decreasing (the store never reorders). The raw point is published
// with a release-ordered cursor advance, then cascaded into the
// downsampling tiers — all plain stores to writer-private accumulators
// and atomic stores to the bucket rings, so the whole path is lock- and
// allocation-free.
//
//mifo:hotpath
func (s *Series) Sample(ts int64, v float64) {
	i := s.cur.Load()
	s.ts[i&s.mask].Store(ts)
	s.val[i&s.mask].Store(math.Float64bits(v))
	s.cur.Store(i + 1)
	if s.t1.feed(ts, ts, v, v, v, 1) {
		t := &s.t1
		s.t2.feed(t.lastStart, t.lastEnd, t.lastMin, t.lastMax, t.lastSum, t.lastCnt)
	}
}

// tier is one downsampling level: a bucket ring plus the writer-private
// partial accumulator for the bucket being built. The sealed-bucket
// fields (last*) hand a completed bucket to the next tier without
// re-reading the atomics.
//
//mifo:ring payload=start,end,minB,maxB,sumB,cntB cursor=cur
type tier struct {
	mask  uint64
	start []atomic.Int64
	end   []atomic.Int64
	minB  []atomic.Uint64
	maxB  []atomic.Uint64
	sumB  []atomic.Uint64
	cntB  []atomic.Int64
	cur   atomic.Uint64

	// Writer-private partial accumulator (never read by snapshots).
	feeds  int
	pStart int64
	pEnd   int64
	pMin   float64
	pMax   float64
	pSum   float64
	pCnt   int64

	// Last sealed bucket, for cascading into the next tier.
	lastStart, lastEnd int64
	lastMin, lastMax   float64
	lastSum            float64
	lastCnt            int64
}

func (t *tier) init(capacity int) {
	t.mask = uint64(capacity - 1)
	t.start = make([]atomic.Int64, capacity)
	t.end = make([]atomic.Int64, capacity)
	t.minB = make([]atomic.Uint64, capacity)
	t.maxB = make([]atomic.Uint64, capacity)
	t.sumB = make([]atomic.Uint64, capacity)
	t.cntB = make([]atomic.Int64, capacity)
}

// feed folds one raw point or sealed lower-tier bucket into the partial
// accumulator, sealing a bucket of this tier every tierFanout feeds.
// It reports whether a bucket was sealed.
//
//mifo:hotpath
func (t *tier) feed(start, end int64, mn, mx, sum float64, cnt int64) bool {
	if t.feeds == 0 {
		t.pStart, t.pMin, t.pMax = start, mn, mx
		t.pSum, t.pCnt = 0, 0
	}
	t.pEnd = end
	if mn < t.pMin {
		t.pMin = mn
	}
	if mx > t.pMax {
		t.pMax = mx
	}
	t.pSum += sum
	t.pCnt += cnt
	t.feeds++
	if t.feeds < tierFanout {
		return false
	}
	t.feeds = 0
	t.seal()
	return true
}

// seal publishes the partial accumulator as one bucket: field stores
// first, cursor advance last, mirroring the raw ring's ordering.
//
//mifo:hotpath
func (t *tier) seal() {
	i := t.cur.Load()
	j := i & t.mask
	t.start[j].Store(t.pStart)
	t.end[j].Store(t.pEnd)
	t.minB[j].Store(math.Float64bits(t.pMin))
	t.maxB[j].Store(math.Float64bits(t.pMax))
	t.sumB[j].Store(math.Float64bits(t.pSum))
	t.cntB[j].Store(t.pCnt)
	t.cur.Store(i + 1)
	t.lastStart, t.lastEnd = t.pStart, t.pEnd
	t.lastMin, t.lastMax = t.pMin, t.pMax
	t.lastSum, t.lastCnt = t.pSum, t.pCnt
}
