package tsdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/jsonl"
)

// SeriesDump is one series' retained raw window in portable form: what
// Gather snapshots from a live store, what WriteDump streams to disk,
// and what the episode analyzer consumes — the same shape online and
// offline, so `mifo-top -log` and /debug/tsdb/episodes agree by
// construction.
type SeriesDump struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels,omitempty"`
	Values []string `json:"values,omitempty"`
	Points []Point  `json:"points"`
}

// Gather snapshots the named families' series (all families when no
// names are given). Empty names are skipped, so callers can pass a
// spec's optional fields directly.
func (st *Store) Gather(names ...string) []SeriesDump {
	want := map[string]bool{}
	for _, n := range names {
		if n != "" {
			want[n] = true
		}
	}
	var out []SeriesDump
	for _, f := range st.families() {
		if len(want) > 0 && !want[f.name] {
			continue
		}
		for _, s := range f.snapshotSeries() {
			out = append(out, SeriesDump{
				Name:   s.name,
				Labels: f.labels,
				Values: s.values,
				Points: s.Raw(nil),
			})
		}
	}
	return out
}

// dump file line kinds.
type dumpHeader struct {
	Kind string      `json:"kind"` // "tsdb"
	Spec EpisodeSpec `json:"spec"`
}

type dumpSeries struct {
	Kind string `json:"kind"` // "series"
	SeriesDump
}

// WriteDump streams the store's full contents to a JSONL sink: one
// header line carrying the episode spec, then one line per series.
// The caller owns the sink (and its Close); WriteDump returns the
// first error the write hit.
func (st *Store) WriteDump(sink *jsonl.Sink) error {
	if err := sink.Encode(dumpHeader{Kind: "tsdb", Spec: st.EpisodeSpec()}); err != nil {
		return err
	}
	for _, sd := range st.Gather() {
		if err := sink.Encode(dumpSeries{Kind: "series", SeriesDump: sd}); err != nil {
			return err
		}
	}
	return sink.Flush()
}

// ReadDump parses a dump written by WriteDump (or by hand: unknown line
// kinds are skipped so dumps stay forward-compatible). It returns the
// series and the spec recorded in the header.
func ReadDump(r io.Reader) ([]SeriesDump, EpisodeSpec, error) {
	var (
		series []SeriesDump
		spec   EpisodeSpec
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(b, &kind); err != nil {
			return nil, spec, fmt.Errorf("tsdb dump line %d: %w", line, err)
		}
		switch kind.Kind {
		case "tsdb":
			var h dumpHeader
			if err := json.Unmarshal(b, &h); err != nil {
				return nil, spec, fmt.Errorf("tsdb dump line %d: %w", line, err)
			}
			spec = h.Spec
		case "series":
			var ds dumpSeries
			if err := json.Unmarshal(b, &ds); err != nil {
				return nil, spec, fmt.Errorf("tsdb dump line %d: %w", line, err)
			}
			series = append(series, ds.SeriesDump)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, spec, err
	}
	return series, spec, nil
}
