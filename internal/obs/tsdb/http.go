package tsdb

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// Handler serves the store's debug API, meant to be mounted at
// /debug/tsdb on the shared debug mux:
//
//	GET <prefix>          — index: episode spec + per-series summaries
//	GET <prefix>/query    — ?series=NAME [&value=V]... [&from=N] [&to=N]
//	                        [&step=N] [&tier=raw|1|2|auto] → buckets
//	GET <prefix>/episodes — episode report; ?threshold=F&window=N
//	                        override the installed spec's knobs
//
// All responses are JSON. The handler strips its own mount prefix, so
// it works at any mount point via http.StripPrefix or the mux's
// trailing-slash redirect.
func (st *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", st.serveIndex)
	mux.HandleFunc("/query", st.serveQuery)
	mux.HandleFunc("/episodes", st.serveEpisodes)
	return mux
}

// seriesSummary is one series' index entry.
type seriesSummary struct {
	Name   string   `json:"name"`
	Help   string   `json:"help,omitempty"`
	Labels []string `json:"labels,omitempty"`
	Values []string `json:"values,omitempty"`
	Total  uint64   `json:"total_points"`
	Latest *Point   `json:"latest,omitempty"`
}

type indexResponse struct {
	Spec   EpisodeSpec     `json:"spec"`
	Series []seriesSummary `json:"series"`
}

func (st *Store) serveIndex(w http.ResponseWriter, r *http.Request) {
	if strings.Trim(r.URL.Path, "/") != "" {
		http.NotFound(w, r)
		return
	}
	resp := indexResponse{Spec: st.EpisodeSpec()}
	for _, f := range st.families() {
		for _, s := range f.snapshotSeries() {
			sum := seriesSummary{
				Name:   s.name,
				Help:   f.help,
				Labels: f.labels,
				Values: s.values,
				Total:  s.Total(),
			}
			if p, ok := s.Latest(); ok {
				sum.Latest = &p
			}
			resp.Series = append(resp.Series, sum)
		}
	}
	writeJSON(w, resp)
}

type queryResponse struct {
	Series  string   `json:"series"`
	Values  []string `json:"values,omitempty"`
	Buckets []Bucket `json:"buckets"`
}

func (st *Store) serveQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("series")
	if name == "" {
		httpError(w, http.StatusBadRequest, "missing ?series=")
		return
	}
	st.mu.Lock()
	f := st.fams[name]
	st.mu.Unlock()
	if f == nil {
		httpError(w, http.StatusNotFound, "unknown series "+name)
		return
	}
	values := q["value"]
	var s *Series
	f.mu.Lock()
	if len(f.labels) == 0 {
		s = f.series[""]
	} else if len(values) == len(f.labels) {
		s = f.series[joinKey(values)]
	}
	f.mu.Unlock()
	if s == nil {
		httpError(w, http.StatusNotFound, "no series for the given label values")
		return
	}
	opts := QueryOpts{Tier: -1}
	var err error
	if opts.From, err = intParam(q.Get("from"), 0); err != nil {
		httpError(w, http.StatusBadRequest, "bad from")
		return
	}
	if opts.To, err = intParam(q.Get("to"), 0); err != nil {
		httpError(w, http.StatusBadRequest, "bad to")
		return
	}
	if opts.Step, err = intParam(q.Get("step"), 0); err != nil {
		httpError(w, http.StatusBadRequest, "bad step")
		return
	}
	switch t := q.Get("tier"); t {
	case "", "auto":
		opts.Tier = -1
	case "raw", "0":
		opts.Tier = 0
	case "1":
		opts.Tier = 1
	case "2":
		opts.Tier = 2
	default:
		httpError(w, http.StatusBadRequest, "bad tier (raw|1|2|auto)")
		return
	}
	buckets := s.Query(opts)
	if buckets == nil {
		buckets = []Bucket{}
	}
	writeJSON(w, queryResponse{Series: name, Values: s.values, Buckets: buckets})
}

func (st *Store) serveEpisodes(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spec := st.EpisodeSpec()
	if v := q.Get("threshold"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad threshold")
			return
		}
		spec.Threshold = f
	}
	if v := q.Get("window"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad window")
			return
		}
		spec.Window = n
	}
	if spec.Util == "" {
		httpError(w, http.StatusPreconditionFailed, "no episode spec installed (store not instrumented)")
		return
	}
	writeJSON(w, AnalyzeStore(st, spec))
}

func intParam(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
