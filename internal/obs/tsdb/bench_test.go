package tsdb

import "testing"

// BenchmarkSample is the hotpath benchmark the PR commits to: one point
// through the raw ring and both downsampling tiers, zero allocations.
func BenchmarkSample(b *testing.B) {
	st := NewStore()
	s := st.Series("bench_sample", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(int64(i), 0.5)
	}
}

// BenchmarkSampleVecResolved measures the realistic instrumented-loop
// shape: the handle was resolved once at registration, sampling is the
// same hotpath.
func BenchmarkSampleVecResolved(b *testing.B) {
	st := NewStore()
	s := st.SeriesVec("bench_vec", "", "run", "link").With("1", "4->9")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(int64(i), 0.5)
	}
}

// BenchmarkQueryRaw snapshots and buckets a full raw ring.
func BenchmarkQueryRaw(b *testing.B) {
	st := NewStore()
	s := st.Series("bench_query_raw", "")
	for i := 0; i < 4096; i++ {
		s.Sample(int64(i), float64(i%10))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Query(QueryOpts{From: 0, Tier: 0}); len(got) == 0 {
			b.Fatal("empty query")
		}
	}
}

// BenchmarkQueryCascade exercises the auto-tier fallback over a range
// the raw ring no longer covers.
func BenchmarkQueryCascade(b *testing.B) {
	st := NewStore(Options{RawCap: 256, TierCap: 512})
	s := st.Series("bench_query_cascade", "")
	for i := 0; i < 50000; i++ {
		s.Sample(int64(i), float64(i%10))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Query(QueryOpts{From: 0, Step: 1000, Tier: -1}); len(got) == 0 {
			b.Fatal("empty query")
		}
	}
}

// BenchmarkAnalyze runs episode detection over a gathered store.
func BenchmarkAnalyze(b *testing.B) {
	st := NewStore(Options{RawCap: 1024, TierCap: 64})
	st.SetEpisodeSpec(EpisodeSpec{Util: "bench_util", Deflections: "bench_defl", OffloadBits: "bench_off", Threshold: 0.9, Window: 10})
	uv := st.SeriesVec("bench_util", "", "link")
	dv := st.SeriesVec("bench_defl", "", "link")
	ov := st.SeriesVec("bench_off", "", "link")
	for l := 0; l < 32; l++ {
		name := string(rune('a' + l%26))
		u, d, o := uv.With(name), dv.With(name), ov.With(name)
		for i := 0; i < 500; i++ {
			util := 0.5
			if i%100 > 50 {
				util = 0.97
			}
			u.Sample(int64(i), util)
			d.Sample(int64(i), float64(i/10))
			o.Sample(int64(i), float64(i*1000))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := AnalyzeStore(st, EpisodeSpec{})
		if len(rep.Episodes) == 0 {
			b.Fatal("no episodes detected")
		}
	}
}
