package tsdb

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/jsonl"
)

func TestRawRingRoundTrip(t *testing.T) {
	st := NewStore(Options{RawCap: 16, TierCap: 16})
	s := st.Series("test_series", "round trip")
	for i := 0; i < 10; i++ {
		s.Sample(int64(i*100), float64(i))
	}
	pts := s.Raw(nil)
	if len(pts) != 10 {
		t.Fatalf("want 10 points, got %d", len(pts))
	}
	for i, p := range pts {
		if p.TS != int64(i*100) || p.V != float64(i) {
			t.Fatalf("point %d mismatch: %+v", i, p)
		}
	}
	if p, ok := s.Latest(); !ok || p.TS != 900 || p.V != 9 {
		t.Fatalf("latest mismatch: %+v ok=%v", p, ok)
	}
}

func TestRawRingWrapKeepsNewest(t *testing.T) {
	st := NewStore(Options{RawCap: 16, TierCap: 16})
	s := st.Series("test_wrap", "")
	const n = 100
	for i := 0; i < n; i++ {
		s.Sample(int64(i), float64(i))
	}
	pts := s.Raw(nil)
	// Once wrapped, a snapshot retains at most capacity-1 points.
	if len(pts) < 15 || len(pts) > 16 {
		t.Fatalf("want 15..16 points after wrap, got %d", len(pts))
	}
	for i, p := range pts {
		want := int64(n - len(pts) + i)
		if p.TS != want {
			t.Fatalf("point %d: want ts %d, got %d (stale survived wrap)", i, want, p.TS)
		}
	}
}

func TestTierCascade(t *testing.T) {
	st := NewStore(Options{RawCap: 1024, TierCap: 16})
	s := st.Series("test_tiers", "")
	// 250 points: 25 tier-1 buckets, 2 tier-2 buckets.
	for i := 0; i < 250; i++ {
		s.Sample(int64(i), float64(i%10))
	}
	t1 := s.Tier(1, nil)
	if len(t1) == 0 || len(t1) > 16 {
		t.Fatalf("tier1: want 1..16 buckets, got %d", len(t1))
	}
	for _, b := range t1 {
		if b.Count != tierFanout {
			t.Fatalf("tier1 bucket count: want %d, got %d", tierFanout, b.Count)
		}
		// Each bucket spans 10 consecutive i%10 values: min 0, max 9, sum 45.
		if b.Min != 0 || b.Max != 9 || b.Sum != 45 {
			t.Fatalf("tier1 bucket aggregates wrong: %+v", b)
		}
		if b.End-b.Start != tierFanout-1 {
			t.Fatalf("tier1 bucket span wrong: %+v", b)
		}
	}
	t2 := s.Tier(2, nil)
	if len(t2) != 2 {
		t.Fatalf("tier2: want 2 buckets, got %d", len(t2))
	}
	for _, b := range t2 {
		if b.Count != tierFanout*tierFanout || b.Sum != 450 {
			t.Fatalf("tier2 bucket aggregates wrong: %+v", b)
		}
	}
}

func TestQueryTierCascade(t *testing.T) {
	st := NewStore(Options{RawCap: 16, TierCap: 64})
	s := st.Series("test_query", "")
	const n = 500
	for i := 0; i < n; i++ {
		s.Sample(int64(i), 1)
	}
	// Raw ring only reaches back ~16 points; a query from 0 must cascade
	// to a coarser tier instead of coming back nearly empty.
	got := s.Query(QueryOpts{From: 0, Tier: -1})
	if len(got) == 0 {
		t.Fatal("cascaded query returned nothing")
	}
	if got[0].Start > 100 {
		t.Fatalf("cascade did not reach back: first bucket starts at %d", got[0].Start)
	}
	// Forcing raw honors the request even though it covers less.
	raw := s.Query(QueryOpts{From: 0, Tier: 0})
	if len(raw) == 0 || raw[0].Start <= 100 {
		t.Fatalf("forced raw should only cover the recent window, got start %d over %d buckets", raw[0].Start, len(raw))
	}
}

func TestQueryStepRebucket(t *testing.T) {
	st := NewStore(Options{RawCap: 1024, TierCap: 64})
	s := st.Series("test_step", "")
	for i := 0; i < 100; i++ {
		s.Sample(int64(i), float64(i))
	}
	got := s.Query(QueryOpts{From: 0, To: 99, Step: 25, Tier: 0})
	if len(got) != 4 {
		t.Fatalf("want 4 step buckets, got %d: %+v", len(got), got)
	}
	var total int64
	for i, b := range got {
		if b.Start != int64(i*25) || b.End != int64((i+1)*25) {
			t.Fatalf("bucket %d bounds wrong: %+v", i, b)
		}
		total += b.Count
	}
	if total != 100 {
		t.Fatalf("rebucket lost samples: %d", total)
	}
	if got[0].Min != 0 || got[3].Max != 99 {
		t.Fatalf("rebucket aggregates wrong: %+v", got)
	}
}

func TestSeriesVecLabels(t *testing.T) {
	st := NewStore(Options{RawCap: 16, TierCap: 16})
	vec := st.SeriesVec("test_vec", "", "run", "link")
	a := vec.With("1", "a")
	b := vec.With("1", "b")
	if a == b {
		t.Fatal("distinct label values must get distinct series")
	}
	if vec.With("1", "a") != a {
		t.Fatal("With must be idempotent")
	}
	a.Sample(1, 0.5)
	if got := st.Gather("test_vec"); len(got) != 2 {
		t.Fatalf("gather: want 2 series, got %d", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("label arity mismatch must panic")
		}
	}()
	vec.With("only-one")
}

func TestRegistrationConflictPanics(t *testing.T) {
	st := NewStore()
	st.SeriesVec("test_conflict", "", "run")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registration with different labels must panic")
		}
	}()
	st.SeriesVec("test_conflict", "", "run", "link")
}

// TestConcurrentSnapshotNoTornReads hammers one writer at full rate
// while readers snapshot; every snapshot must be internally consistent
// (monotonic timestamps, value == ts for every point — a torn read
// would break the equality).
func TestConcurrentSnapshotNoTornReads(t *testing.T) {
	st := NewStore(Options{RawCap: 64, TierCap: 16})
	s := st.Series("test_torn", "")
	const writes = 200000
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []Point
			for !stop.Load() {
				pts := s.Raw(buf[:0])
				buf = pts
				last := int64(-1)
				for _, p := range pts {
					if p.TS < last {
						t.Errorf("non-monotonic snapshot: %d after %d", p.TS, last)
						return
					}
					if p.V != float64(p.TS) {
						t.Errorf("torn read: ts %d carries value %g", p.TS, p.V)
						return
					}
					last = p.TS
				}
			}
		}()
	}
	for i := 0; i < writes; i++ {
		s.Sample(int64(i), float64(i))
	}
	stop.Store(true)
	wg.Wait()
}

// TestSampleAllocFree pins the hotpath contract: zero allocations.
func TestSampleAllocFree(t *testing.T) {
	st := NewStore(Options{RawCap: 64, TierCap: 16})
	s := st.Series("test_alloc", "")
	ts := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		ts++
		s.Sample(ts, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("Sample allocates %.1f per call; hotpath must be 0", allocs)
	}
}

func TestPointJSONRoundTrip(t *testing.T) {
	for _, p := range []Point{{TS: 0, V: 0}, {TS: 12345, V: 0.875}, {TS: -5, V: 1e9}} {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var q Point
		if err := json.Unmarshal(b, &q); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if q != p {
			t.Fatalf("round trip: %+v -> %s -> %+v", p, b, q)
		}
	}
}

func TestEpisodeDetection(t *testing.T) {
	spec := EpisodeSpec{
		Util:        "link_util",
		Deflections: "link_defl",
		OffloadBits: "link_off",
		Threshold:   0.9,
		Window:      20,
		MaxGap:      1000,
	}
	util := SeriesDump{Name: "link_util", Values: []string{"1", "a"}, Points: []Point{
		{0, 0.5}, {10, 0.95}, {20, 0.97}, {30, 0.99}, {40, 0.96}, {50, 0.4}, {60, 0.3},
	}}
	defl := SeriesDump{Name: "link_defl", Values: []string{"1", "a"}, Points: []Point{
		{0, 0}, {10, 0}, {20, 3}, {30, 5}, {40, 5}, {50, 5},
	}}
	off := SeriesDump{Name: "link_off", Values: []string{"1", "a"}, Points: []Point{
		{0, 0}, {20, 1000}, {40, 4000}, {50, 5000},
	}}
	// A second link that never congests.
	cold := SeriesDump{Name: "link_util", Values: []string{"1", "b"}, Points: []Point{
		{0, 0.1}, {50, 0.2},
	}}
	rep := Analyze([]SeriesDump{util, defl, off, cold}, spec)
	if rep.SeriesScanned != 2 || rep.LinksWithEpisodes != 1 {
		t.Fatalf("scan counts wrong: %+v", rep)
	}
	if len(rep.Episodes) != 1 {
		t.Fatalf("want 1 episode, got %d", len(rep.Episodes))
	}
	e := rep.Episodes[0]
	if e.Start != 10 || e.End != 50 || e.Active {
		t.Fatalf("episode bounds wrong: %+v", e)
	}
	if e.Peak != 0.99 || e.Samples != 4 {
		t.Fatalf("episode stats wrong: %+v", e)
	}
	if e.Deflections != 5 {
		t.Fatalf("want 5 deflections attributed, got %d", e.Deflections)
	}
	if e.FirstDeflection != 20 {
		t.Fatalf("want first deflection at 20, got %d", e.FirstDeflection)
	}
	if e.ReliefLatency != 30 {
		t.Fatalf("want relief latency 30, got %d", e.ReliefLatency)
	}
	if e.OffloadBits != 5000 {
		t.Fatalf("want 5000 offloaded bits, got %g", e.OffloadBits)
	}
	if e.ReliefDrop <= 0 {
		t.Fatalf("want positive relief drop, got %g", e.ReliefDrop)
	}
	if rep.TotalDeflections != 5 || rep.TotalOffloadBits != 5000 {
		t.Fatalf("report totals wrong: %+v", rep)
	}
}

func TestEpisodeWindowFilter(t *testing.T) {
	spec := EpisodeSpec{Util: "u", Threshold: 0.9, Window: 100, MaxGap: 1000}
	blip := SeriesDump{Name: "u", Points: []Point{
		{0, 0.5}, {10, 0.95}, {20, 0.5},
	}}
	rep := Analyze([]SeriesDump{blip}, spec)
	if len(rep.Episodes) != 0 {
		t.Fatalf("a 10-tick blip must not pass a 100-tick window: %+v", rep.Episodes)
	}
}

func TestEpisodeActiveAtEnd(t *testing.T) {
	spec := EpisodeSpec{Util: "u", Threshold: 0.9, Window: 10, MaxGap: 1000}
	hot := SeriesDump{Name: "u", Points: []Point{
		{0, 0.95}, {10, 0.96}, {20, 0.97},
	}}
	rep := Analyze([]SeriesDump{hot}, spec)
	if len(rep.Episodes) != 1 || !rep.Episodes[0].Active {
		t.Fatalf("episode still above threshold at end must be active: %+v", rep.Episodes)
	}
}

func TestEpisodeGapSplits(t *testing.T) {
	spec := EpisodeSpec{Util: "u", Threshold: 0.9, Window: 10, MaxGap: 50}
	gappy := SeriesDump{Name: "u", Points: []Point{
		{0, 0.95}, {10, 0.96}, {20, 0.95},
		// 500-tick observation gap: must split, not bridge.
		{520, 0.97}, {530, 0.95}, {540, 0.4},
	}}
	rep := Analyze([]SeriesDump{gappy}, spec)
	if len(rep.Episodes) != 2 {
		t.Fatalf("want the gap to split into 2 episodes, got %d: %+v", len(rep.Episodes), rep.Episodes)
	}
	if !rep.Episodes[0].Active || rep.Episodes[0].End != 20 {
		t.Fatalf("first episode must close at the gap: %+v", rep.Episodes[0])
	}
}

func TestDumpRoundTrip(t *testing.T) {
	st := NewStore(Options{RawCap: 64, TierCap: 16})
	st.SetEpisodeSpec(EpisodeSpec{Util: "test_util", Threshold: 0.8, Window: 5})
	vec := st.SeriesVec("test_util", "link utilization", "link")
	a := vec.With("a")
	for i := 0; i < 20; i++ {
		a.Sample(int64(i), 0.9)
	}
	st.Series("test_scalar", "").Sample(5, 42)

	path := filepath.Join(t.TempDir(), "dump.jsonl")
	sink, err := jsonl.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteDump(sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	series, spec, err := ReadDump(f)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Util != "test_util" || spec.Threshold != 0.8 {
		t.Fatalf("spec did not survive the dump: %+v", spec)
	}
	if len(series) != 2 {
		t.Fatalf("want 2 series in dump, got %d", len(series))
	}
	got := st.Gather()
	if !reflect.DeepEqual(series, got) {
		t.Fatalf("dump round trip mismatch:\n  dumped: %+v\n  live:   %+v", series, got)
	}
	// The offline analyzer sees the same episodes as the live one.
	offline := Analyze(series, spec)
	live := AnalyzeStore(st, EpisodeSpec{})
	if len(offline.Episodes) != len(live.Episodes) || len(offline.Episodes) != 1 {
		t.Fatalf("offline/live episode mismatch: %d vs %d", len(offline.Episodes), len(live.Episodes))
	}
}

func TestReadDumpSkipsUnknownKinds(t *testing.T) {
	in := bytes.NewBufferString(`{"kind":"tsdb","spec":{"util":"u","threshold":0.5}}
{"kind":"future-thing","x":1}
{"kind":"series","name":"u","points":[[1,0.9],[2,0.8]]}
`)
	series, spec, err := ReadDump(in)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Util != "u" || len(series) != 1 || len(series[0].Points) != 2 {
		t.Fatalf("forward-compat read broken: spec=%+v series=%+v", spec, series)
	}
}

func TestNextRunMonotonic(t *testing.T) {
	st := NewStore()
	if a, b := st.NextRun(), st.NextRun(); a != 1 || b != 2 {
		t.Fatalf("want 1,2 got %d,%d", a, b)
	}
}

func TestLatestUnderWrap(t *testing.T) {
	st := NewStore(Options{RawCap: 16, TierCap: 16})
	s := st.Series("test_latest", "")
	for i := 0; i < 1000; i++ {
		s.Sample(int64(i), float64(i)*2)
	}
	p, ok := s.Latest()
	if !ok || p.TS != 999 || p.V != 1998 {
		t.Fatalf("latest after wrap: %+v ok=%v", p, ok)
	}
}

func TestFormatFloatCompact(t *testing.T) {
	if got := formatFloat(5); got != "5" {
		t.Fatalf("integral floats must render without exponent: %q", got)
	}
	if got := formatFloat(0.875); got != "0.875" {
		t.Fatalf("fractions must round trip: %q", got)
	}
}
