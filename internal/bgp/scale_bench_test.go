package bgp

// Paper-scale routing benchmarks (the BENCH_scale.json suite): full-table
// compute and incremental recompute on a 50k-AS generated Internet, with
// bytes/dest reported from the table's own memory accounting.

import (
	"sync"
	"testing"

	"repro/internal/topo"
)

const scaleN = 50000

var (
	scaleOnce  sync.Once
	scaleGraph *topo.Graph
)

func scaleTopology(tb testing.TB) *topo.Graph {
	tb.Helper()
	scaleOnce.Do(func() {
		g, err := topo.Generate(topo.GenConfig{N: scaleN, Seed: 2})
		if err != nil {
			tb.Fatalf("Generate(%d): %v", scaleN, err)
		}
		scaleGraph = g
	})
	return scaleGraph
}

// scaleDests spreads k destinations across the index space.
func scaleDests(g *topo.Graph, k int) []int {
	dsts := make([]int, 0, k)
	for i := 0; i < k; i++ {
		dsts = append(dsts, i*g.N()/k)
	}
	return dsts
}

// BenchmarkTableScaleFullCompute builds a 64-destination table over 50k
// ASes per iteration — the per-destination cost is what a full 44,340-dest
// paper-scale build multiplies out.
func BenchmarkTableScaleFullCompute(b *testing.B) {
	g := scaleTopology(b)
	dsts := scaleDests(g, 64)
	b.ResetTimer()
	var t *Table
	for i := 0; i < b.N; i++ {
		t = NewTable(g, dsts, 0)
	}
	b.StopTimer()
	m := t.MemStats()
	b.ReportMetric(m.BytesPerDest, "bytes/dest")
	b.ReportMetric(m.BytesPerEntry, "bytes/entry")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(dsts)), "ns/dest")
}

// BenchmarkTableScaleIncremental fails and restores a busy transit link on
// a 256-destination table over 50k ASes — the steady-state churn path.
func BenchmarkTableScaleIncremental(b *testing.B) {
	g := scaleTopology(b)
	t := NewTable(g, scaleDests(g, 256), 0)
	hub := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	nb := int(g.Neighbors(hub)[0].AS)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.LinkDown(hub, nb)
		t.LinkUp(hub, nb)
	}
	b.StopTimer()
	st := t.Stats()
	total := st.IncrementalComputes + st.CleanSkipped
	if total > 0 {
		b.ReportMetric(100*float64(st.CleanSkipped)/float64(total), "%skipped")
	}
}
