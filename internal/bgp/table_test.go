package bgp

import (
	"testing"

	"repro/internal/topo"
)

// tableTopology is a small multi-homed topology with enough path diversity
// that link events actually move routes: a two-provider core over peered
// mid-tier ASes with multi-homed stubs.
func tableTopology(t testing.TB) *topo.Graph {
	t.Helper()
	g, err := topo.NewBuilder(8).
		AddPC(0, 2).AddPC(0, 3).AddPC(1, 3).AddPC(1, 4).
		AddPeer(0, 1).AddPeer(2, 3).AddPeer(3, 4).
		AddPC(2, 5).AddPC(3, 5).AddPC(3, 6).AddPC(4, 6).
		AddPC(5, 7).AddPC(6, 7).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allDests(g *topo.Graph) []int {
	dsts := make([]int, g.N())
	for i := range dsts {
		dsts[i] = i
	}
	return dsts
}

// checkAgainstScratch asserts every destination table of tab is
// byte-identical to a from-scratch recompute on the equivalent graph.
func checkAgainstScratch(t *testing.T, tab *Table, step string) {
	t.Helper()
	g := tab.Graph()
	for _, dst := range tab.Dests() {
		want := Compute(g, dst)
		if !tab.Dest(dst).Equal(want) {
			t.Fatalf("%s: incremental table for dst %d diverges from scratch recompute", step, dst)
		}
	}
}

// TestTableIncrementalMatchesFull drives a deterministic link down/up
// schedule and proves, after every event, that the incremental result is
// identical to recomputing every destination from scratch.
func TestTableIncrementalMatchesFull(t *testing.T) {
	g := tableTopology(t)
	tab := NewTable(g, allDests(g), 0)
	checkAgainstScratch(t, tab, "initial")

	schedule := []struct {
		a, b int
		up   bool
	}{
		{3, 5, false}, // tree link down
		{0, 3, false}, // second failure while degraded
		{3, 5, true},  // restore the first
		{0, 1, false}, // peer link down
		{0, 3, true},
		{0, 1, true},
		{5, 7, false}, // stub loses one of two providers
		{5, 7, true},
	}
	for i, ev := range schedule {
		if ev.up {
			tab.LinkUp(ev.a, ev.b)
		} else {
			tab.LinkDown(ev.a, ev.b)
		}
		checkAgainstScratch(t, tab, "after event "+string(rune('0'+i)))
	}
	if tab.FailedLinks() != 0 {
		t.Fatalf("failed-link set not empty after full recovery: %d", tab.FailedLinks())
	}

	st := tab.Stats()
	if st.FullComputes != int64(g.N()) {
		t.Errorf("FullComputes = %d, want %d (initial build only)", st.FullComputes, g.N())
	}
	if st.IncrementalComputes == 0 || st.CleanSkipped == 0 {
		t.Errorf("expected both incremental work and clean skips, got %+v", st)
	}
	total := st.IncrementalComputes + st.CleanSkipped
	if want := int64(len(schedule) * g.N()); total != want {
		t.Errorf("incremental + skipped = %d, want %d (every event classifies every dest)", total, want)
	}
}

// TestTableLinkEdgeCases covers the no-op paths: unknown links, double
// failures, recovering a link that never failed.
func TestTableLinkEdgeCases(t *testing.T) {
	g := tableTopology(t)
	tab := NewTable(g, allDests(g), 0)

	if n := tab.LinkDown(0, 7); n != 0 {
		t.Errorf("LinkDown on non-existent link recomputed %d", n)
	}
	if n := tab.LinkUp(2, 3); n != 0 {
		t.Errorf("LinkUp on never-failed link recomputed %d", n)
	}
	tab.LinkDown(2, 3)
	if n := tab.LinkDown(2, 3); n != 0 {
		t.Errorf("second LinkDown of a failed link recomputed %d", n)
	}
	tab.LinkUp(2, 3)
	checkAgainstScratch(t, tab, "after down/up cycle")
}

// TestTableCloneIsolation proves incremental work on a clone leaves the
// original untouched (the simulator's intact-vs-repaired split).
func TestTableCloneIsolation(t *testing.T) {
	g := tableTopology(t)
	tab := NewTable(g, allDests(g), 0)
	before := make(map[int]*Dest)
	for _, dst := range tab.Dests() {
		before[dst] = tab.Dest(dst)
	}

	cl := tab.Clone()
	if st := cl.Stats(); st.FullComputes != 0 || st.IncrementalComputes != 0 {
		t.Fatalf("clone inherits stats: %+v", st)
	}
	cl.LinkDown(3, 5)
	checkAgainstScratch(t, cl, "clone after failure")

	for dst, d := range before {
		if tab.Dest(dst) != d {
			t.Fatalf("original table for dst %d replaced by work on the clone", dst)
		}
	}
	if tab.Graph() != g {
		t.Fatal("original graph replaced by work on the clone")
	}
}

// TestTableAddDest computes new destinations on the current (possibly
// degraded) topology.
func TestTableAddDest(t *testing.T) {
	g := tableTopology(t)
	tab := NewEmptyTable(g, 0)
	tab.LinkDown(3, 5) // no dests yet: nothing recomputed, link still cut
	d := tab.AddDest(5)
	want := Compute(tab.Graph(), 5)
	if !d.Equal(want) {
		t.Fatal("AddDest on degraded topology diverges from scratch compute")
	}
	if tab.Len() != 1 || tab.Dest(5) != d {
		t.Fatalf("table bookkeeping wrong after AddDest: len=%d", tab.Len())
	}
}

// FuzzIncrementalTable applies a random sequence of link downs/ups to a
// generated topology and asserts the incremental Table equals a
// from-scratch recompute after every step — the acceptance oracle for the
// dirty-set derivation.
func FuzzIncrementalTable(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 0, 3})
	f.Add(int64(2), []byte{7, 7, 1, 9, 4, 4, 250, 3})
	f.Add(int64(3), []byte{0xff, 0x00, 0x80, 0x21, 0x13, 0x5a})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 24 {
			ops = ops[:24] // bound the per-case schedule length
		}
		g, err := topo.Generate(topo.GenConfig{N: 40, Seed: 1 + seed%8})
		if err != nil {
			t.Skip("generator rejected config")
		}
		// Collect the links once; each op byte picks one and toggles it.
		var links []topo.LinkRef
		for v := 0; v < g.N(); v++ {
			for _, nb := range g.Neighbors(v) {
				if int32(v) < nb.AS {
					links = append(links, topo.LinkRef{A: v, B: int(nb.AS)})
				}
			}
		}
		if len(links) == 0 {
			t.Skip("no links")
		}
		dsts := []int{0, 1, g.N() / 2, g.N() - 1}
		tab := NewTable(g, dsts, 0)
		down := make(map[topo.LinkRef]bool)
		for _, op := range ops {
			l := links[int(op)%len(links)]
			if down[l] {
				tab.LinkUp(l.A, l.B)
				delete(down, l)
			} else {
				tab.LinkDown(l.A, l.B)
				down[l] = true
			}
			// Oracle: recompute from scratch on the equivalent graph.
			for _, dst := range dsts {
				want := Compute(tab.Graph(), dst)
				if !tab.Dest(dst).Equal(want) {
					t.Fatalf("after toggling link %v (down=%v): incremental table for dst %d diverges",
						l, down[l], dst)
				}
			}
		}
	})
}

// BenchmarkTableIncremental measures one link-down/link-up cycle under
// incremental recomputation on a generated topology with every AS
// installed as a destination — the workload repairedTable runs per
// topology change.
func BenchmarkTableIncremental(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 300, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tab := NewTable(g, allDests(g), 0)
	// Fail a link that carries routes: AS 1's provider link, if any.
	a, c := pickLink(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.LinkDown(a, c)
		tab.LinkUp(a, c)
	}
	b.StopTimer()
	st := tab.Stats()
	if st.IncrementalComputes > 0 {
		b.ReportMetric(float64(st.IncrementalComputes)/float64(2*b.N), "recomputes/event")
	}
}

// BenchmarkTableFullRebuild is the old-world baseline: every topology
// change recomputes every destination from scratch (what
// netsim.rebuildFailedGraph used to trigger).
func BenchmarkTableFullRebuild(b *testing.B) {
	g, err := topo.Generate(topo.GenConfig{N: 300, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	dsts := allDests(g)
	a, c := pickLink(g)
	cut, err := topo.RemoveLinks(g, []topo.LinkRef{{A: a, B: c}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeAll(cut, dsts, 0)
		ComputeAll(g, dsts, 0)
	}
}

// pickLink returns the first link of the highest-degree AS, a link likely
// to carry many route trees.
func pickLink(g *topo.Graph) (int, int) {
	best := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(best) {
			best = v
		}
	}
	return best, int(g.Neighbors(best)[0].AS)
}

// TestNewHeapTable proves the heap-backed build is byte-identical to the
// arena-backed one and retains no arena memory (its tables must be
// collectable once link events replace them).
func TestNewHeapTable(t *testing.T) {
	g := tableTopology(t)
	arena := NewTable(g, allDests(g), 0)
	heap := NewHeapTable(g, allDests(g), 0)
	if heap.Len() != arena.Len() {
		t.Fatalf("heap table has %d dests, arena %d", heap.Len(), arena.Len())
	}
	for _, dst := range arena.Dests() {
		if !heap.Dest(dst).Equal(arena.Dest(dst)) {
			t.Fatalf("heap and arena tables diverge at dst %d", dst)
		}
	}
	if got := heap.MemStats().ArenaRetainedBytes; got != 0 {
		t.Fatalf("heap table retains %d arena bytes", got)
	}
	if arena.MemStats().ArenaRetainedBytes == 0 {
		t.Fatal("arena table reports no retained arena bytes")
	}
	if got, want := heap.Stats().FullComputes, int64(g.N()); got != want {
		t.Fatalf("heap build FullComputes = %d, want %d", got, want)
	}
}

// TestRecomputeChunked forces multi-wave recomputation (the bounded-memory
// path a paper-scale dirty set takes) and proves the result still matches a
// from-scratch compute. A star topology makes every destination dirty: the
// leaf behind the failed link routes everywhere through it.
func TestRecomputeChunked(t *testing.T) {
	defer func(prev int64) { recomputeChunkBytes = prev }(recomputeChunkBytes)
	recomputeChunkBytes = 1 // chunk floor is 64 dests -> 300 dirty = 5 waves

	b := topo.NewBuilder(300)
	for v := 1; v < 300; v++ {
		b.AddPC(0, v)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(g, allDests(g), 0)
	tab.LinkDown(0, 1)
	checkAgainstScratch(t, tab, "after chunked LinkDown")
	tab.LinkUp(0, 1)
	checkAgainstScratch(t, tab, "after chunked LinkUp")
	st := tab.Stats()
	if st.IncrementalComputes < 300 {
		t.Fatalf("IncrementalComputes = %d, want >= 300 (all dests dirty on the down event)", st.IncrementalComputes)
	}
}
